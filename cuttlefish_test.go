package cuttlefish

import (
	"testing"

	"repro/internal/freq"
	"repro/internal/tipi"
)

// runPolicy executes a named benchmark under a Cuttlefish policy and
// returns the session (stopped), elapsed time and energy.
func runPolicy(t *testing.T, name string, policy Policy, scale float64) (*Session, float64, float64) {
	t.Helper()
	spec, ok := BenchmarkByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Start(m, WithPolicy(policy))
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.Build(BenchmarkParams{Cores: m.Config().Cores, Scale: scale, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m.SetSource(src)
	sec := m.Run(400)
	if !m.Finished() {
		t.Fatalf("%s did not finish", name)
	}
	if err := sess.Stop(); err != nil {
		t.Fatal(err)
	}
	return sess, sec, m.TotalEnergy()
}

// runDefaultEnv executes a benchmark under the Default environment.
func runDefaultEnv(t *testing.T, name string, scale float64) (float64, float64) {
	t.Helper()
	spec, _ := BenchmarkByName(name)
	m, err := NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Start(m, WithGovernor(GovernorDefault)); err != nil {
		t.Fatal(err)
	}
	src, err := spec.Build(BenchmarkParams{Cores: m.Config().Cores, Scale: scale, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m.SetSource(src)
	sec := m.Run(400)
	if !m.Finished() {
		t.Fatalf("%s did not finish", name)
	}
	return sec, m.TotalEnergy()
}

// frequentNode returns the slab node with the most hits.
func frequentNode(s *Session) *tipi.Node {
	var best *tipi.Node
	for _, n := range s.Daemon().List().Nodes() {
		if best == nil || n.Hits > best.Hits {
			best = n
		}
	}
	return best
}

func TestMemoryBoundConvergesToPaperOptima(t *testing.T) {
	// Heat-irt (Table 2): CFopt 1.2 GHz, UFopt ≈ 2.2 GHz (our Algorithm 3
	// window floors at 2.4 GHz given CFopt = min; the paper's 2.2 sits just
	// below its own window — see EXPERIMENTS.md).
	sess, _, _ := runPolicy(t, "Heat-irt", PolicyBoth, 0.12)
	n := frequentNode(sess)
	if n == nil {
		t.Fatal("no slabs discovered")
	}
	if !n.CF.HasOpt() {
		t.Fatal("frequent slab's CFopt unresolved")
	}
	if got := n.CF.OptRatio(); got > 14 {
		t.Errorf("Heat CFopt = %v, want ≤ 1.4GHz (memory-bound, Table 2: 1.2)", got)
	}
	if !n.UF.HasOpt() {
		t.Fatal("frequent slab's UFopt unresolved")
	}
	if got := n.UF.OptRatio(); got < 20 || got > 27 {
		t.Errorf("Heat UFopt = %v, want interior 2.0-2.7GHz (Table 2: 2.2)", got)
	}
}

func TestComputeBoundConvergesToPaperOptima(t *testing.T) {
	// UTS (Table 2): CFopt 2.3 GHz (max), UFopt ≈ 1.3 GHz.
	sess, _, _ := runPolicy(t, "UTS", PolicyBoth, 0.12)
	n := frequentNode(sess)
	if n == nil || !n.CF.HasOpt() || !n.UF.HasOpt() {
		t.Fatal("UTS frequent slab unresolved")
	}
	if got := n.CF.OptRatio(); got != 23 {
		t.Errorf("UTS CFopt = %v, want 2.3GHz (compute-bound keeps max)", got)
	}
	if got := n.UF.OptRatio(); got > 16 {
		t.Errorf("UTS UFopt = %v, want ≤ 1.6GHz (Table 2: 1.3)", got)
	}
}

func TestCuttlefishSavesEnergyOnMemoryBound(t *testing.T) {
	const scale = 0.12
	defSec, defJ := runDefaultEnv(t, "Heat-irt", scale)
	_, cfSec, cfJ := runPolicy(t, "Heat-irt", PolicyBoth, scale)
	savings := 100 * (1 - cfJ/defJ)
	slowdown := 100 * (cfSec/defSec - 1)
	if savings < 10 {
		t.Errorf("Heat energy savings = %.1f%%, want ≥ 10%% (paper: 22-29%%)", savings)
	}
	if slowdown > 15 {
		t.Errorf("Heat slowdown = %.1f%%, want ≤ 15%% (paper ≤ 8.1%%)", slowdown)
	}
}

func TestCuttlefishSavesEnergyOnComputeBound(t *testing.T) {
	const scale = 0.12
	defSec, defJ := runDefaultEnv(t, "UTS", scale)
	_, cfSec, cfJ := runPolicy(t, "UTS", PolicyBoth, scale)
	savings := 100 * (1 - cfJ/defJ)
	slowdown := 100 * (cfSec/defSec - 1)
	if savings < 3 {
		t.Errorf("UTS energy savings = %.1f%%, want ≥ 3%% (paper ≈ 8%%)", savings)
	}
	if slowdown > 6 {
		t.Errorf("UTS slowdown = %.1f%%, want ≤ 6%% (paper ≈ 1.6%%)", slowdown)
	}
}

func TestCoreOnlyLosesToDefaultOnComputeBound(t *testing.T) {
	// §5.1: Cuttlefish-Core pins UF at max and fixes CF at max for
	// compute-bound codes, so it must use MORE energy than Default (whose
	// firmware parks the quiet uncore at 2.2 GHz).
	const scale = 0.12
	_, defJ := runDefaultEnv(t, "UTS", scale)
	_, _, coreJ := runPolicy(t, "UTS", PolicyCoreOnly, scale)
	if coreJ <= defJ {
		t.Errorf("Cuttlefish-Core energy %.1f J should exceed Default %.1f J on UTS", coreJ, defJ)
	}
}

func TestUncoreOnlyBeatsCoreOnlyOnComputeBound(t *testing.T) {
	const scale = 0.12
	_, _, coreJ := runPolicy(t, "UTS", PolicyCoreOnly, scale)
	_, _, uncJ := runPolicy(t, "UTS", PolicyUncoreOnly, scale)
	if uncJ >= coreJ {
		t.Errorf("Cuttlefish-Uncore %.1f J should beat Cuttlefish-Core %.1f J on UTS", uncJ, coreJ)
	}
}

func TestStopRestoresFrequencies(t *testing.T) {
	spec, _ := BenchmarkByName("Heat-irt")
	m, _ := NewMachine()
	sess, err := Start(m)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := spec.Build(BenchmarkParams{Cores: 20, Scale: 0.08, Seed: 1})
	m.SetSource(src)
	m.Run(400)
	// Mid-run the daemon will have lowered frequencies.
	if err := sess.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := m.CoreRatio(0); got != m.Config().CoreGrid.Max {
		t.Errorf("core ratio after Stop = %v, want restored max", got)
	}
	// The daemon pinned 0x620 (min == max); Stop must restore the boot
	// limit range so the firmware owns the uncore again. The operating
	// point itself stays wherever the limits allow until firmware moves it,
	// as on hardware.
	raw, err := m.Device().Read(0x620, 0)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := raw>>8&0x7f, raw&0x7f
	if lo != uint64(m.Config().UncoreGrid.Min) || hi != uint64(m.Config().UncoreGrid.Max) {
		t.Errorf("0x620 after Stop = [%d,%d], want restored [%d,%d]",
			lo, hi, m.Config().UncoreGrid.Min, m.Config().UncoreGrid.Max)
	}
	// Idempotent.
	if err := sess.Stop(); err != nil {
		t.Errorf("second Stop errored: %v", err)
	}
}

func TestStopUnschedulesDaemonComponent(t *testing.T) {
	// The stale-daemon regression: Stop used to leave the daemon's
	// component scheduled, so its Tick kept firing (and could keep stealing
	// core time) for the rest of the machine's life.
	spec, _ := BenchmarkByName("Heat-irt")
	m, _ := NewMachine()
	sess, err := Start(m)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := spec.Build(BenchmarkParams{Cores: 20, Scale: 0.08, Seed: 1})
	m.SetSource(src)
	m.Run(400)
	if err := sess.Stop(); err != nil {
		t.Fatal(err)
	}
	samples := sess.Daemon().Samples()
	// Keep the machine alive past Stop: idle time, then a fresh workload.
	for i := 0; i < 4000; i++ { // 2 s of idle quanta
		m.Step()
	}
	src2, _ := spec.Build(BenchmarkParams{Cores: 20, Scale: 0.05, Seed: 2})
	m.SetSource(src2)
	m.Run(400)
	if got := sess.Daemon().Samples(); got != samples {
		t.Errorf("daemon processed %d further samples after Stop; component still scheduled", got-samples)
	}
}

func TestObliviousAcrossModels(t *testing.T) {
	// §5.2: the daemon's conclusions for the same benchmark should agree
	// between the OpenMP and HClib runtimes.
	opt := func(model Model) freq.Ratio {
		spec, _ := BenchmarkByName("SOR-irt")
		m, _ := NewMachine()
		sess, err := Start(m)
		if err != nil {
			t.Fatal(err)
		}
		src, err := spec.Build(BenchmarkParams{Cores: 20, Scale: 0.12, Seed: 5, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		m.SetSource(src)
		m.Run(400)
		sess.Stop()
		n := frequentNode(sess)
		if n == nil || !n.CF.HasOpt() {
			t.Fatalf("%s: CFopt unresolved", model)
		}
		return n.CF.OptRatio()
	}
	if omp, hc := opt(ModelOpenMP), opt(ModelHClib); omp != hc {
		t.Errorf("CFopt differs across models: openmp %v, hclib %v", omp, hc)
	}
}

func TestPublicGovernorRegistry(t *testing.T) {
	names := Governors()
	want := map[string]bool{GovernorDefault: true, GovernorCuttlefish: true, GovernorStatic: true, GovernorDDCM: true, GovernorPowersave: true, GovernorOndemand: true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("Governors() missing %v (got %v)", want, names)
	}
	if _, err := NewGovernor("nope"); err == nil {
		t.Error("NewGovernor must reject unknown names")
	}
	if err := RegisterGovernor(GovernorDefault, nil); err == nil {
		t.Error("RegisterGovernor must reject duplicates")
	}
}

func TestStartWithGovernorOptions(t *testing.T) {
	m, err := NewMachine(WithCores(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Config().Cores; got != 4 {
		t.Fatalf("WithCores ignored: %d cores", got)
	}
	sess, err := Start(m, WithGovernor(GovernorStatic), WithStatic(16, 22))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Governor() != GovernorStatic {
		t.Errorf("Session.Governor() = %q, want static", sess.Governor())
	}
	if sess.Daemon() != nil {
		t.Error("static session must not carry a daemon")
	}
	if got := m.CoreRatio(0); got != 16 {
		t.Errorf("static pin CF = %v, want 1.6GHz", got)
	}
	if err := sess.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := m.CoreRatio(0); got != m.Config().CoreGrid.Max {
		t.Errorf("Stop left CF at %v, want restored max", got)
	}
}

func TestStartUnknownGovernor(t *testing.T) {
	m, err := NewMachine(WithCores(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Start(m, WithGovernor("turbo")); err == nil {
		t.Error("Start must reject unknown governor names")
	}
}
