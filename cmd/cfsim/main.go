// Command cfsim runs one benchmark under one registered governor on the
// simulated machine and reports the run: time, energy, EDP, the frequency
// decisions a daemon-backed governor took, and optionally a per-Tinv CSV
// trace (TIPI, JPI, instructions, joules, CF, UF) suitable for plotting
// Fig. 2-style timelines.
//
// Examples:
//
//	cfsim -bench Heat-irt -governor cuttlefish
//	cfsim -bench AMG -governor default -trace amg.csv
//	cfsim -bench SOR-irt -governor static -cf 16 -uf 22
//	cfsim -bench UTS -governor ondemand -format json
//	cfsim -list-governors
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/freq"
	"repro/internal/governor"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/tipi"
	"repro/internal/trace"
)

func main() {
	var (
		benchName = flag.String("bench", "Heat-irt", "benchmark name (see -list)")
		govName   = flag.String("governor", governor.Cuttlefish, "registered governor (see -list-governors)")
		policy    = flag.String("policy", "", "deprecated alias for -governor")
		model     = flag.String("model", "openmp", "openmp | hclib")
		scale     = flag.Float64("scale", 0.3, "run length relative to the paper's (1.0 ≈ 60-80s)")
		seed      = flag.Int64("seed", 1, "RNG seed")
		cores     = flag.Int("cores", 20, "simulated cores")
		tinv      = flag.Float64("tinv", 20e-3, "daemon profiling interval (s)")
		cf        = flag.Int("cf", 0, "static governor core ratio, ×100 MHz (0 = grid max)")
		uf        = flag.Int("uf", 0, "static governor uncore ratio, ×100 MHz (0 = grid max)")
		format    = flag.String("format", "text", "output format: text | json | csv")
		traceOut  = flag.String("trace", "", "write per-Tinv CSV trace to this file")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		listGov   = flag.Bool("list-governors", false, "list registered governors and exit")
		workers   = flag.Int("workers", 0, "engine worker goroutines sharding the simulated cores (0/1 = serial)")
		batch     = flag.Int("batch", 0, "max quanta per engine dispatch (0 = run to next event)")
	)
	flag.Parse()
	if *list {
		fmt.Println("benchmarks (Table 1):")
		for _, s := range bench.All() {
			hclib := ""
			if s.HClibPort {
				hclib = " [hclib]"
			}
			fmt.Printf("  %-10s %-16s TIPI %.3f-%.3f%s\n", s.Name, s.Style, s.TIPILow, s.TIPIHigh, hclib)
		}
		return
	}
	if *listGov {
		for _, info := range governor.List() {
			fmt.Printf("%-18s %s\n", info.Name, info.Description)
		}
		return
	}
	if *policy != "" {
		*govName = *policy
	}
	cfg := runConfig{
		govName: *govName, model: *model, scale: *scale, seed: *seed,
		cores: *cores, tinv: *tinv, cf: freq.Ratio(*cf), uf: freq.Ratio(*uf),
		format: *format, traceOut: *traceOut, workers: *workers, batch: *batch,
	}
	if err := run(*benchName, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cfsim: %v\n", err)
		os.Exit(1)
	}
}

type runConfig struct {
	govName  string
	model    string
	scale    float64
	seed     int64
	cores    int
	tinv     float64
	cf, uf   freq.Ratio
	format   string
	traceOut string
	workers  int
	batch    int
}

func run(benchName string, rc runConfig) error {
	if !report.ValidFormat(rc.format) {
		// Fail before burning simulation time on a typo.
		return fmt.Errorf("unknown format %q (want text, json or csv)", rc.format)
	}
	spec, ok := bench.Get(benchName)
	if !ok {
		return fmt.Errorf("unknown benchmark %q (use -list)", benchName)
	}
	g, err := governor.New(rc.govName, governor.Tuning{TinvSec: rc.tinv, CF: rc.cf, UF: rc.uf})
	if err != nil {
		return err
	}
	mcfg := machine.DefaultConfig()
	mcfg.Cores = rc.cores
	mcfg.Workers = rc.workers
	mcfg.BatchQuanta = rc.batch
	m, err := machine.New(mcfg)
	if err != nil {
		return err
	}
	defer m.Close()

	att, err := g.Attach(m)
	if err != nil {
		return err
	}
	defer att.Detach()

	// An observer profiler records the timeline regardless of governor.
	rec := &trace.Recorder{}
	if rc.traceOut != "" {
		prof, err := core.NewProfiler(m.Device(), rc.cores)
		if err != nil {
			return err
		}
		if err := prof.Reset(); err != nil {
			return err
		}
		m.Schedule(&machine.Component{
			Period: rc.tinv,
			Tick: func(now float64) float64 {
				s, err := prof.Sample()
				if err != nil || !s.OK {
					return 0
				}
				rec.Add(trace.Point{
					Time: now, TIPI: s.TIPI, JPI: s.JPI,
					Instr: s.Instr, Joules: s.Joules,
					CF: m.CoreRatio(rc.cores - 1), UF: m.UncoreRatio(),
				})
				return 0
			},
		}, rc.tinv)
	}

	src, err := spec.Build(bench.Params{Cores: rc.cores, Scale: rc.scale, Seed: rc.seed, Model: bench.Model(rc.model)})
	if err != nil {
		return err
	}
	m.SetSource(src)
	sec := m.Run(spec.PaperSeconds*rc.scale*6 + 60)
	if !m.Finished() {
		return fmt.Errorf("%s did not finish", spec.Name)
	}
	daemon := att.Daemon()
	samples, slabs := 0, 0
	if daemon != nil {
		samples, slabs = daemon.Samples(), daemon.List().Len()
	}
	if err := att.Detach(); err != nil {
		return err
	}

	joules := m.TotalEnergy()
	local, remote := m.TotalMisses()

	// Write the trace before the report so the status line never lands
	// inside machine-readable output; in json/csv mode it goes to stderr.
	if rc.traceOut != "" {
		f, err := os.Create(rc.traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	switch rc.format {
	case "json", "csv":
		rep := report.New("cfsim", "benchmark", "governor", "model", "scale", "seconds", "joules", "avg_watts", "edp", "tipi", "remote_miss_pct", "avg_uncore_ghz", "daemon_samples", "daemon_slabs")
		rep.Governor = rc.govName
		rep.AddRow(spec.Name, rc.govName, rc.model, rc.scale, sec, joules, joules/sec, joules*sec,
			(local+remote)/m.TotalInstructions(), 100*remote/(local+remote), m.AvgUncoreGHz(), samples, slabs)
		if err := rep.Write(os.Stdout, rc.format); err != nil {
			return err
		}
		if rc.traceOut != "" {
			fmt.Fprintf(os.Stderr, "trace: %d samples -> %s\n", rec.Len(), rc.traceOut)
		}
	default: // text, validated above
		fmt.Printf("%s under %s (%s, scale %.2f)\n", spec.Name, rc.govName, rc.model, rc.scale)
		fmt.Printf("  time    %8.2f s\n", sec)
		fmt.Printf("  energy  %8.1f J  (%.1f W avg)\n", joules, joules/sec)
		fmt.Printf("  EDP     %8.0f Js\n", joules*sec)
		fmt.Printf("  TIPI    %8.4f  (%.0f%% remote)\n",
			(local+remote)/m.TotalInstructions(), 100*remote/(local+remote))
		fmt.Printf("  avg UF  %8.2f GHz\n", m.AvgUncoreGHz())
		if daemon != nil {
			fmt.Printf("  daemon  %d samples, %d slab(s)\n", samples, slabs)
			for _, n := range daemon.List().Nodes() {
				cfOpt, ufOpt := "-", "-"
				if n.CF.HasOpt() {
					cfOpt = n.CF.OptRatio().String()
				}
				if n.UF.HasOpt() {
					ufOpt = n.UF.OptRatio().String()
				}
				fmt.Printf("    %-13s %6d hits  CFopt %-8s UFopt %s\n",
					n.Slab.Format(tipi.DefaultSlabWidth), n.Hits, cfOpt, ufOpt)
			}
		}
		if rc.traceOut != "" {
			fmt.Printf("  trace   %d samples -> %s\n", rec.Len(), rc.traceOut)
		}
	}
	return nil
}
