// Command cfsim runs one benchmark under one policy on the simulated
// machine and reports the run: time, energy, EDP, the frequency decisions
// the daemon took, and optionally a per-Tinv CSV trace (TIPI, JPI, CF, UF)
// suitable for plotting Fig. 2-style timelines.
//
// Examples:
//
//	cfsim -bench Heat-irt -policy cuttlefish
//	cfsim -bench AMG -policy default -trace amg.csv
//	cfsim -bench SOR-irt -policy cuttlefish -model hclib -scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/governor"
	"repro/internal/machine"
	"repro/internal/tipi"
	"repro/internal/trace"
)

func main() {
	var (
		benchName = flag.String("bench", "Heat-irt", "benchmark name (see -list)")
		policy    = flag.String("policy", "cuttlefish", "default | cuttlefish | cuttlefish-core | cuttlefish-uncore")
		model     = flag.String("model", "openmp", "openmp | hclib")
		scale     = flag.Float64("scale", 0.3, "run length relative to the paper's (1.0 ≈ 60-80s)")
		seed      = flag.Int64("seed", 1, "RNG seed")
		cores     = flag.Int("cores", 20, "simulated cores")
		tinv      = flag.Float64("tinv", 20e-3, "daemon profiling interval (s)")
		traceOut  = flag.String("trace", "", "write per-Tinv CSV trace to this file")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		workers   = flag.Int("workers", 0, "engine worker goroutines sharding the simulated cores (0/1 = serial)")
		batch     = flag.Int("batch", 0, "max quanta per engine dispatch (0 = run to next event)")
	)
	flag.Parse()
	if *list {
		fmt.Println("benchmarks (Table 1):")
		for _, s := range bench.All() {
			hclib := ""
			if s.HClibPort {
				hclib = " [hclib]"
			}
			fmt.Printf("  %-10s %-16s TIPI %.3f-%.3f%s\n", s.Name, s.Style, s.TIPILow, s.TIPIHigh, hclib)
		}
		return
	}
	if err := run(*benchName, *policy, *model, *scale, *seed, *cores, *tinv, *traceOut, *workers, *batch); err != nil {
		fmt.Fprintf(os.Stderr, "cfsim: %v\n", err)
		os.Exit(1)
	}
}

func run(benchName, policy, model string, scale float64, seed int64, cores int, tinv float64, traceOut string, workers, batch int) error {
	spec, ok := bench.Get(benchName)
	if !ok {
		return fmt.Errorf("unknown benchmark %q (use -list)", benchName)
	}
	mcfg := machine.DefaultConfig()
	mcfg.Cores = cores
	mcfg.Workers = workers
	mcfg.BatchQuanta = batch
	m, err := machine.New(mcfg)
	if err != nil {
		return err
	}
	defer m.Close()

	var daemon *core.Daemon
	switch experiments.PolicyName(policy) {
	case experiments.Default:
		if err := governor.Apply(governor.Performance, m.Device(), cores, mcfg.CoreGrid); err != nil {
			return err
		}
		m.SetFirmware(governor.DefaultAutoUFS())
	case experiments.Cuttlefish, experiments.CoreOnly, experiments.UncoreOnly:
		dcfg := core.DefaultConfig()
		dcfg.TinvSec = tinv
		switch experiments.PolicyName(policy) {
		case experiments.CoreOnly:
			dcfg.Policy = core.PolicyCoreOnly
		case experiments.UncoreOnly:
			dcfg.Policy = core.PolicyUncoreOnly
		}
		daemon, err = core.NewDaemon(dcfg, m.Device(), cores, mcfg.CoreGrid, mcfg.UncoreGrid, m.Now())
		if err != nil {
			return err
		}
		m.Schedule(&machine.Component{Period: dcfg.TinvSec, Core: dcfg.PinnedCore, Tick: daemon.Tick}, dcfg.TinvSec)
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}

	// An observer profiler records the timeline regardless of policy.
	rec := &trace.Recorder{}
	if traceOut != "" {
		prof, err := core.NewProfiler(m.Device(), cores)
		if err != nil {
			return err
		}
		if err := prof.Reset(); err != nil {
			return err
		}
		m.Schedule(&machine.Component{
			Period: tinv,
			Tick: func(now float64) float64 {
				s, err := prof.Sample()
				if err != nil || !s.OK {
					return 0
				}
				rec.Add(trace.Point{
					Time: now, TIPI: s.TIPI, JPI: s.JPI,
					Instr: s.Instr, Joules: s.Joules,
					CF: m.CoreRatio(cores - 1), UF: m.UncoreRatio(),
				})
				return 0
			},
		}, tinv)
	}

	src, err := spec.Build(bench.Params{Cores: cores, Scale: scale, Seed: seed, Model: bench.Model(model)})
	if err != nil {
		return err
	}
	m.SetSource(src)
	sec := m.Run(spec.PaperSeconds*scale*6 + 60)
	if !m.Finished() {
		return fmt.Errorf("%s did not finish", spec.Name)
	}

	joules := m.TotalEnergy()
	fmt.Printf("%s under %s (%s, scale %.2f)\n", spec.Name, policy, model, scale)
	fmt.Printf("  time    %8.2f s\n", sec)
	fmt.Printf("  energy  %8.1f J  (%.1f W avg)\n", joules, joules/sec)
	fmt.Printf("  EDP     %8.0f Js\n", joules*sec)
	local, remote := m.TotalMisses()
	fmt.Printf("  TIPI    %8.4f  (%.0f%% remote)\n",
		(local+remote)/m.TotalInstructions(), 100*remote/(local+remote))
	fmt.Printf("  avg UF  %8.2f GHz\n", m.AvgUncoreGHz())

	if daemon != nil {
		if err := daemon.Err(); err != nil {
			return err
		}
		fmt.Printf("  daemon  %d samples, %d slab(s)\n", daemon.Samples(), daemon.List().Len())
		for _, n := range daemon.List().Nodes() {
			cf, uf := "-", "-"
			if n.CF.HasOpt() {
				cf = n.CF.OptRatio().String()
			}
			if n.UF.HasOpt() {
				uf = n.UF.OptRatio().String()
			}
			fmt.Printf("    %-13s %6d hits  CFopt %-8s UFopt %s\n",
				n.Slab.Format(tipi.DefaultSlabWidth), n.Hits, cf, uf)
		}
	}

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("  trace   %d samples -> %s\n", rec.Len(), traceOut)
	}
	return nil
}
