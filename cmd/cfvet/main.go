// Command cfvet is the determinism-boundary vetting tool: a multichecker
// running the internal/lint analyzer suite over the repository.
//
//	go run ./cmd/cfvet ./...          # what CI runs; exit 1 on findings
//	go run ./cmd/cfvet -list          # describe the analyzers
//	go run ./cmd/cfvet -allows ./...  # audit every //cfvet:allow suppression
//
// Findings are suppressed per line with a mandatory reason:
//
//	//cfvet:allow(detsource) profiling wall-clock; never feeds simulated state
//
// A suppression without a reason, naming no check, or suppressing nothing
// is itself reported — the audit trail is the contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "describe the analyzers and exit")
	allowsFlag := flag.Bool("allows", false, "print every //cfvet:allow suppression (and whether it is stale)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cfvet [-list] [-allows] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	code, err := run(patterns, analyzers, *allowsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfvet:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(patterns []string, analyzers []*lint.Analyzer, printAllows bool) (int, error) {
	pkgs, err := lint.Load(".", patterns)
	if err != nil {
		return 0, err
	}
	wd, _ := os.Getwd()
	findings := 0
	var allAllows []*lint.Allow
	for _, pkg := range pkgs {
		res, err := lint.RunPackage(pkg, analyzers)
		if err != nil {
			return 0, err
		}
		for _, d := range res.Diagnostics {
			findings++
			fmt.Printf("%s:%d:%d: %s: %s\n", relPath(wd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
		allAllows = append(allAllows, res.Allows...)
	}
	if printAllows {
		if len(allAllows) == 0 {
			fmt.Println("no //cfvet:allow suppressions")
		}
		for _, a := range allAllows {
			state := ""
			if !a.Used {
				state = "  [stale: suppresses nothing]"
			}
			fmt.Printf("%s:%d: allow(%s): %s%s\n", relPath(wd, a.Pos.Filename), a.Pos.Line, strings.Join(a.Checks, ","), a.Reason, state)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "cfvet: %d finding(s)\n", findings)
		return 1, nil
	}
	return 0, nil
}

func relPath(wd, path string) string {
	if wd == "" {
		return path
	}
	if rel, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
