// Command probe is a development aid: it runs benchmarks at fixed
// frequency points and under the daemon, printing the equilibria the
// calibration tests assert against.
//
// With no arguments it probes the historical calibration set; any Table 1
// benchmark names given as arguments replace it:
//
//	probe                      # Heat-irt/SOR-irt sweeps + 4 daemon runs
//	probe UTS AMG              # daemon runs for the named benchmarks
//	probe -scale 0.2 Heat-irt  # longer daemon run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/msr"
	"repro/internal/tipi"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.12, "daemon-run length relative to the paper's executions")
		sweep = flag.Bool("sweep", false, "with benchmark args: also run the fixed-frequency sweep")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: probe [flags] [benchmark ...]\n\nbenchmarks: %s\n\nflags:\n",
			strings.Join(bench.Names(), ", "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(flag.Args(), *scale, *sweep); err != nil {
		fmt.Fprintf(os.Stderr, "probe: %v\n", err)
		os.Exit(1)
	}
}

func run(names []string, scale float64, sweep bool) error {
	if len(names) == 0 {
		// The historical calibration set: two fixed-frequency sweeps plus
		// daemon runs across the TIPI regimes.
		for _, uf := range []uint8{30, 26, 22, 18, 14, 12} {
			if err := fixedRun("Heat-irt", 12, uf); err != nil {
				return err
			}
		}
		fmt.Println()
		for _, uf := range []uint8{30, 22, 14, 12} {
			if err := fixedRun("SOR-irt", 23, uf); err != nil {
				return err
			}
		}
		fmt.Println()
		names = []string{"UTS", "Heat-irt", "SOR-irt", "AMG"}
	} else if sweep {
		for _, name := range names {
			for _, uf := range []uint8{30, 22, 14, 12} {
				if err := fixedRun(name, 23, uf); err != nil {
					return err
				}
			}
		}
		fmt.Println()
	}
	for _, name := range names {
		if err := daemonRun(name, scale); err != nil {
			return err
		}
	}
	return nil
}

// getSpec resolves a Table 1 benchmark name with a self-diagnosing error.
func getSpec(name string) (bench.Spec, error) {
	spec, ok := bench.Get(name)
	if !ok {
		return bench.Spec{}, fmt.Errorf("unknown benchmark %q (known: %s)", name, strings.Join(bench.Names(), ", "))
	}
	return spec, nil
}

// fixedRun probes one benchmark with both frequency domains pinned.
func fixedRun(name string, cf, uf uint8) error {
	spec, err := getSpec(name)
	if err != nil {
		return err
	}
	m, err := machine.New(machine.DefaultConfig())
	if err != nil {
		return err
	}
	defer m.Close()
	for c := 0; c < 20; c++ {
		m.Device().Write(msr.IA32PerfCtl, c, msr.PerfCtlRaw(cf))
	}
	m.Device().Write(msr.UncoreRatioLimit, 0, msr.UncoreLimitRaw(uf, uf))
	src, err := spec.Build(bench.Params{Cores: 20, Scale: 0.04, Seed: 1})
	if err != nil {
		return err
	}
	m.SetSource(src)
	sec := m.Run(300)
	if !m.Finished() {
		return fmt.Errorf("%s at CF=%d UF=%d did not finish in 300 simulated seconds", name, cf, uf)
	}
	ips := m.TotalInstructions() / sec
	local, remote := m.TotalMisses()
	demand := (local + remote) / sec
	jpi := m.TotalEnergy() / m.TotalInstructions()
	fmt.Printf("%-9s CF=%d UF=%d  t=%6.2fs  IPS=%6.2fG  demand=%5.3fG  P=%5.1fW  JPI=%.3fnJ\n",
		name, cf, uf, sec, ips/1e9, demand/1e9, m.TotalEnergy()/sec, jpi*1e9)
	return nil
}

// daemonRun probes one benchmark under the Cuttlefish daemon and prints
// the slab list it converged to.
func daemonRun(name string, scale float64) error {
	spec, err := getSpec(name)
	if err != nil {
		return err
	}
	m, err := machine.New(machine.DefaultConfig())
	if err != nil {
		return err
	}
	defer m.Close()
	cfg := core.DefaultConfig()
	d, err := core.NewDaemon(cfg, m.Device(), 20, m.Config().CoreGrid, m.Config().UncoreGrid, 0)
	if err != nil {
		return err
	}
	m.Schedule(&machine.Component{Period: cfg.TinvSec, Core: 0, Tick: d.Tick}, cfg.TinvSec)
	src, err := spec.Build(bench.Params{Cores: 20, Scale: scale, Seed: 1})
	if err != nil {
		return err
	}
	m.SetSource(src)
	sec := m.Run(400)
	fmt.Printf("%-9s daemon t=%6.2fs E=%6.1fJ samples=%d err=%v finished=%v\n",
		name, sec, m.TotalEnergy(), d.Samples(), d.Err(), m.Finished())
	if !m.Finished() {
		return fmt.Errorf("%s daemon run did not finish in 400 simulated seconds", name)
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("%s daemon: %w", name, err)
	}
	for _, n := range d.List().Nodes() {
		cf, uf := "-", "-"
		if n.CF.HasOpt() {
			cf = n.CF.OptRatio().String()
		}
		if n.UF.HasOpt() {
			uf = n.UF.OptRatio().String()
		}
		fmt.Printf("   slab %-12s hits=%5d  CF[%d,%d] opt=%s  UF[%d,%d] opt=%s\n",
			n.Slab.Format(tipi.DefaultSlabWidth), n.Hits,
			n.CF.LB(), n.CF.RB(), cf, n.UF.LB(), n.UF.RB(), uf)
	}
	return nil
}
