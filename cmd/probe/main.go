// Command probe is a development aid: it runs benchmarks at fixed
// frequency points and under the daemon, printing the equilibria the
// calibration tests assert against.
package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/msr"
	"repro/internal/tipi"
)

func run(name string, cf, uf uint8) {
	spec, _ := bench.Get(name)
	m := machine.MustNew(machine.DefaultConfig())
	for c := 0; c < 20; c++ {
		m.Device().Write(msr.IA32PerfCtl, c, msr.PerfCtlRaw(cf))
	}
	m.Device().Write(msr.UncoreRatioLimit, 0, msr.UncoreLimitRaw(uf, uf))
	src, err := spec.Build(bench.Params{Cores: 20, Scale: 0.04, Seed: 1})
	if err != nil {
		panic(err)
	}
	m.SetSource(src)
	sec := m.Run(300)
	ips := m.TotalInstructions() / sec
	local, remote := m.TotalMisses()
	demand := (local + remote) / sec
	jpi := m.TotalEnergy() / m.TotalInstructions()
	fmt.Printf("%-9s CF=%d UF=%d  t=%6.2fs  IPS=%6.2fG  demand=%5.3fG  P=%5.1fW  JPI=%.3fnJ\n",
		name, cf, uf, sec, ips/1e9, demand/1e9, m.TotalEnergy()/sec, jpi*1e9)
}

func daemonRun(name string, scale float64) {
	spec, _ := bench.Get(name)
	m := machine.MustNew(machine.DefaultConfig())
	cfg := core.DefaultConfig()
	d, err := core.NewDaemon(cfg, m.Device(), 20, m.Config().CoreGrid, m.Config().UncoreGrid, 0)
	if err != nil {
		panic(err)
	}
	m.Schedule(&machine.Component{Period: cfg.TinvSec, Core: 0, Tick: d.Tick}, cfg.TinvSec)
	src, err := spec.Build(bench.Params{Cores: 20, Scale: scale, Seed: 1})
	if err != nil {
		panic(err)
	}
	m.SetSource(src)
	sec := m.Run(400)
	fmt.Printf("%-9s daemon t=%6.2fs E=%6.1fJ samples=%d err=%v finished=%v\n",
		name, sec, m.TotalEnergy(), d.Samples(), d.Err(), m.Finished())
	for _, n := range d.List().Nodes() {
		cf, uf := "-", "-"
		if n.CF.HasOpt() {
			cf = n.CF.OptRatio().String()
		}
		if n.UF.HasOpt() {
			uf = n.UF.OptRatio().String()
		}
		fmt.Printf("   slab %-12s hits=%5d  CF[%d,%d] opt=%s  UF[%d,%d] opt=%s\n",
			n.Slab.Format(tipi.DefaultSlabWidth), n.Hits,
			n.CF.LB(), n.CF.RB(), cf, n.UF.LB(), n.UF.RB(), uf)
	}
}

func main() {
	for _, uf := range []uint8{30, 26, 22, 18, 14, 12} {
		run("Heat-irt", 12, uf)
	}
	fmt.Println()
	for _, uf := range []uint8{30, 22, 14, 12} {
		run("SOR-irt", 23, uf)
	}
	fmt.Println()
	daemonRun("UTS", 0.12)
	daemonRun("Heat-irt", 0.12)
	daemonRun("SOR-irt", 0.12)
	daemonRun("AMG", 0.12)
}
