package main

import (
	"encoding/json"
	"testing"

	"repro/internal/experiments"
)

func tinyOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Scale = 0.02
	o.Reps = 1
	return o
}

// TestRunRejectsUnknownGovernor is the CLI-side registry check: a typo in
// -governor must fail fast, before any simulation runs.
func TestRunRejectsUnknownGovernor(t *testing.T) {
	o := tinyOptions()
	o.Governor = "turbo-boost"
	if err := run("table1", o, "json"); err == nil {
		t.Error("unknown -governor must error")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run("table9", tinyOptions(), "text"); err == nil {
		t.Error("unknown experiment must error")
	}
}

// TestTable1ReportEncodesAcrossGovernors backs the acceptance criterion:
// `cuttlefish -governor=<name> table1 -format json` must produce valid
// JSON for every registered environment the comparison covers.
func TestTable1ReportEncodesAcrossGovernors(t *testing.T) {
	for _, gov := range []string{"cuttlefish", "cuttlefish-core", "cuttlefish-uncore", "default", "static", "ddcm"} {
		o := tinyOptions()
		o.Governor = gov
		rep, err := build("table1", o)
		if err != nil {
			t.Fatalf("%s: %v", gov, err)
		}
		if rep.Governor != gov {
			t.Errorf("report governor = %q, want %q", rep.Governor, gov)
		}
		if len(rep.Rows) != 10 {
			t.Errorf("%s: rows = %d, want 10", gov, len(rep.Rows))
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("%s: marshal: %v", gov, err)
		}
		if !json.Valid(raw) {
			t.Errorf("%s: invalid JSON", gov)
		}
	}
}

// TestRunExperimentRequiresBench: the "run" experiment must fail fast
// without a -bench, before any simulation time.
func TestRunExperimentRequiresBench(t *testing.T) {
	benchName = ""
	if err := run("run", tinyOptions(), "text"); err == nil {
		t.Error("run without -bench must error")
	}
}

// TestRunExperimentReport drives the single-benchmark experiment behind
// POST /v1/runs through the same build path the CLI uses.
func TestRunExperimentReport(t *testing.T) {
	benchName = "Heat-irt"
	defer func() { benchName = "" }()
	o := tinyOptions()
	o.Reps = 2
	rep, err := build("run", o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "run" || rep.Governor != "default" {
		t.Errorf("experiment=%q governor=%q", rep.Experiment, rep.Governor)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want one per rep", len(rep.Rows))
	}
	for i, row := range rep.Rows {
		if row["benchmark"] != "Heat-irt" || row["rep"] != i {
			t.Errorf("row %d = %v", i, row)
		}
		if s, ok := row["seconds"].(float64); !ok || s <= 0 {
			t.Errorf("row %d seconds = %v", i, row["seconds"])
		}
	}
	raw, err := json.Marshal(rep)
	if err != nil || !json.Valid(raw) {
		t.Errorf("marshal: %v", err)
	}
}
