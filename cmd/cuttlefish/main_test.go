package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/store"
)

func tinyOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Scale = 0.02
	o.Reps = 1
	return o
}

// TestRunRejectsUnknownGovernor is the CLI-side registry check: a typo in
// -governor must fail fast, before any simulation runs.
func TestRunRejectsUnknownGovernor(t *testing.T) {
	o := tinyOptions()
	o.Governor = "turbo-boost"
	if err := run("table1", o, "json"); err == nil {
		t.Error("unknown -governor must error")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run("table9", tinyOptions(), "text"); err == nil {
		t.Error("unknown experiment must error")
	}
}

// TestTable1ReportEncodesAcrossGovernors backs the acceptance criterion:
// `cuttlefish -governor=<name> table1 -format json` must produce valid
// JSON for every registered environment the comparison covers.
func TestTable1ReportEncodesAcrossGovernors(t *testing.T) {
	for _, gov := range []string{"cuttlefish", "cuttlefish-core", "cuttlefish-uncore", "default", "static", "ddcm"} {
		o := tinyOptions()
		o.Governor = gov
		rep, err := build("table1", o)
		if err != nil {
			t.Fatalf("%s: %v", gov, err)
		}
		if rep.Governor != gov {
			t.Errorf("report governor = %q, want %q", rep.Governor, gov)
		}
		if len(rep.Rows) != 10 {
			t.Errorf("%s: rows = %d, want 10", gov, len(rep.Rows))
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("%s: marshal: %v", gov, err)
		}
		if !json.Valid(raw) {
			t.Errorf("%s: invalid JSON", gov)
		}
	}
}

// TestRunExperimentRequiresBench: the "run" experiment must fail fast
// without a -bench, before any simulation time.
func TestRunExperimentRequiresBench(t *testing.T) {
	benchName = ""
	if err := run("run", tinyOptions(), "text"); err == nil {
		t.Error("run without -bench must error")
	}
}

// TestSweepRequiresSpec: the sweep subcommand must fail fast without a
// -spec file, and on an unreadable or invalid one.
func TestSweepRequiresSpec(t *testing.T) {
	sweepSpec = ""
	if err := run("sweep", tinyOptions(), "text"); err == nil {
		t.Error("sweep without -spec must error")
	}
	sweepSpec = filepath.Join(t.TempDir(), "nope.json")
	if err := run("sweep", tinyOptions(), "text"); err == nil {
		t.Error("sweep with a missing spec file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"axes": {"benchmarcks": []}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sweepSpec = bad
	defer func() { sweepSpec = "" }()
	if err := run("sweep", tinyOptions(), "text"); err == nil {
		t.Error("sweep with a typoed axis must error")
	}
}

// TestSweepInProcessEndToEnd drives a tiny real sweep through the CLI
// path: in-process backend, persistent store, warm re-run from disk.
func TestSweepInProcessEndToEnd(t *testing.T) {
	dir := t.TempDir()
	specFile := filepath.Join(dir, "sweep.json")
	spec := `{
		"name": "cli-test",
		"axes": {
			"benchmarks": ["UTS"],
			"governors": ["default", "cuttlefish"],
			"scales": [0.02],
			"reps": [1]
		}
	}`
	if err := os.WriteFile(specFile, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	sweepSpec = specFile
	storeDir = filepath.Join(dir, "store")
	defer func() { sweepSpec, storeDir = "", "" }()
	o := tinyOptions()
	if err := run("sweep", o, "json"); err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	// Warm re-run: everything must come from the persistent store.
	if err := run("sweep", o, "json"); err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	st, err := store.Open(storeDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Errorf("store holds %d entries, want 2 (one per grid point)", st.Len())
	}
}

// TestRunExperimentReport drives the single-benchmark experiment behind
// POST /v1/runs through the same build path the CLI uses.
func TestRunExperimentReport(t *testing.T) {
	benchName = "Heat-irt"
	defer func() { benchName = "" }()
	o := tinyOptions()
	o.Reps = 2
	rep, err := build("run", o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "run" || rep.Governor != "default" {
		t.Errorf("experiment=%q governor=%q", rep.Experiment, rep.Governor)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want one per rep", len(rep.Rows))
	}
	for i, row := range rep.Rows {
		if row["benchmark"] != "Heat-irt" || row["rep"] != i {
			t.Errorf("row %d = %v", i, row)
		}
		if s, ok := row["seconds"].(float64); !ok || s <= 0 {
			t.Errorf("row %d seconds = %v", i, row["seconds"])
		}
	}
	raw, err := json.Marshal(rep)
	if err != nil || !json.Valid(raw) {
		t.Errorf("marshal: %v", err)
	}
}
