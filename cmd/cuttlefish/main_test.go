package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/store"
)

func tinyOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Scale = 0.02
	o.Reps = 1
	return o
}

// TestRunRejectsUnknownGovernor is the CLI-side registry check: a typo in
// -governor must fail fast, before any simulation runs.
func TestRunRejectsUnknownGovernor(t *testing.T) {
	o := tinyOptions()
	o.Governor = "turbo-boost"
	if err := run("table1", o, "json"); err == nil {
		t.Error("unknown -governor must error")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run("table9", tinyOptions(), "text"); err == nil {
		t.Error("unknown experiment must error")
	}
}

// TestTable1ReportEncodesAcrossGovernors backs the acceptance criterion:
// `cuttlefish -governor=<name> table1 -format json` must produce valid
// JSON for every registered environment the comparison covers.
func TestTable1ReportEncodesAcrossGovernors(t *testing.T) {
	for _, gov := range []string{"cuttlefish", "cuttlefish-core", "cuttlefish-uncore", "default", "static", "ddcm"} {
		o := tinyOptions()
		o.Governor = gov
		rep, err := build("table1", o)
		if err != nil {
			t.Fatalf("%s: %v", gov, err)
		}
		if rep.Governor != gov {
			t.Errorf("report governor = %q, want %q", rep.Governor, gov)
		}
		if len(rep.Rows) != 10 {
			t.Errorf("%s: rows = %d, want 10", gov, len(rep.Rows))
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("%s: marshal: %v", gov, err)
		}
		if !json.Valid(raw) {
			t.Errorf("%s: invalid JSON", gov)
		}
	}
}

// TestRunExperimentRequiresBench: the "run" experiment must fail fast
// without a -bench, before any simulation time.
func TestRunExperimentRequiresBench(t *testing.T) {
	benchName = ""
	if err := run("run", tinyOptions(), "text"); err == nil {
		t.Error("run without -bench must error")
	}
}

// TestSweepRequiresSpec: the sweep subcommand must fail fast without a
// -spec file, and on an unreadable or invalid one.
func TestSweepRequiresSpec(t *testing.T) {
	sweepSpec = ""
	if err := run("sweep", tinyOptions(), "text"); err == nil {
		t.Error("sweep without -spec must error")
	}
	sweepSpec = filepath.Join(t.TempDir(), "nope.json")
	if err := run("sweep", tinyOptions(), "text"); err == nil {
		t.Error("sweep with a missing spec file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"axes": {"benchmarcks": []}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sweepSpec = bad
	defer func() { sweepSpec = "" }()
	if err := run("sweep", tinyOptions(), "text"); err == nil {
		t.Error("sweep with a typoed axis must error")
	}
}

// TestSweepInProcessEndToEnd drives a tiny real sweep through the CLI
// path: in-process backend, persistent store, warm re-run from disk.
func TestSweepInProcessEndToEnd(t *testing.T) {
	dir := t.TempDir()
	specFile := filepath.Join(dir, "sweep.json")
	spec := `{
		"name": "cli-test",
		"axes": {
			"benchmarks": ["UTS"],
			"governors": ["default", "cuttlefish"],
			"scales": [0.02],
			"reps": [1]
		}
	}`
	if err := os.WriteFile(specFile, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	sweepSpec = specFile
	storeDir = filepath.Join(dir, "store")
	defer func() { sweepSpec, storeDir = "", "" }()
	o := tinyOptions()
	if err := run("sweep", o, "json"); err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	// Warm re-run: everything must come from the persistent store.
	if err := run("sweep", o, "json"); err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	st, err := store.Open(storeDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Errorf("store holds %d entries, want 2 (one per grid point)", st.Len())
	}
}

// parseForTest runs the CLI's two-stage parse on a fresh flag set,
// returning the experiment, the options and the globals it set.
func parseForTest(t *testing.T, args ...string) (name, gotBench string, opt experiments.Options, err error) {
	t.Helper()
	benchName, scenarioFile, format, remote = "", "", "text", ""
	listGov, listScen = false, false
	backends = nil
	t.Cleanup(func() {
		benchName, scenarioFile, format, remote = "", "", "text", ""
		listGov, listScen = false, false
		backends = nil
	})
	opt = experiments.DefaultOptions()
	fs := newFlagSet(&opt)
	name, err = parseArgs(fs, args)
	return name, benchName, opt, err
}

// TestFlagsAcceptedBeforeAndAfterSubcommand is the regression test for
// the two-stage parsing fix: `cuttlefish -seed 7 run -bench X` and
// `cuttlefish run -seed 7 -bench X` must parse identically.
func TestFlagsAcceptedBeforeAndAfterSubcommand(t *testing.T) {
	cases := [][]string{
		{"-seed", "7", "run", "-bench", "UTS"},
		{"run", "-seed", "7", "-bench", "UTS"},
		{"-bench", "UTS", "-seed", "7", "run"},
		{"run", "-seed", "7", "-bench", "UTS", "-format", "text"},
	}
	for _, args := range cases {
		name, gotBench, opt, err := parseForTest(t, args...)
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if name != "run" || gotBench != "UTS" || opt.Seed != 7 {
			t.Errorf("%v: name=%q bench=%q seed=%d, want run/UTS/7", args, name, gotBench, opt.Seed)
		}
	}
}

// TestFlagErrorsNameTheFlag: a bad flag fails with an error naming it,
// whether it appears before or after the subcommand (the old second
// parse exited without any message of its own).
func TestFlagErrorsNameTheFlag(t *testing.T) {
	for _, args := range [][]string{
		{"-sed", "7", "run"},
		{"run", "-sed", "7"},
		{"-seed", "7", "run", "-sed", "9"},
	} {
		_, _, _, err := parseForTest(t, args...)
		if err == nil || !strings.Contains(err.Error(), "-sed") {
			t.Errorf("%v: err = %v, want the offending flag named", args, err)
		}
	}
	if _, _, _, err := parseForTest(t, "run", "UTS"); err == nil ||
		!strings.Contains(err.Error(), "unexpected argument") {
		t.Errorf("second positional: err = %v, want unexpected-argument", err)
	}
}

// TestRunScenarioFile drives a JSON-only scenario through the CLI run
// path: parse, build, one report row named after the definition.
func TestRunScenarioFile(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "probe.json")
	def := `{
		"name": "cli-probe",
		"iterations": 2,
		"phases": [{"instructions": 1e9, "miss_per_instr": 0.02, "ipc": 1.5, "jitter_frac": 0.05}]
	}`
	if err := os.WriteFile(file, []byte(def), 0o644); err != nil {
		t.Fatal(err)
	}
	scenarioFile = file
	defer func() { scenarioFile = "" }()
	o := tinyOptions()
	if err := run("run", o, "text"); err != nil {
		t.Fatalf("scenario run: %v", err)
	}
	// -scenario is run-only and exclusive with -bench.
	if err := run("table1", o, "text"); err == nil {
		t.Error("-scenario with table1 must error")
	}
	benchName = "UTS"
	defer func() { benchName = "" }()
	if err := run("run", o, "text"); err == nil {
		t.Error("-bench with -scenario must error")
	}
}

// TestRunRegisteredScenarioByName: -bench accepts registry names beyond
// Table 1, so synthetic scenarios run through the same subcommand.
func TestRunRegisteredScenarioByName(t *testing.T) {
	benchName = "compute-bound"
	defer func() { benchName = "" }()
	o := tinyOptions()
	o.Scale = 0.005
	rep, err := build("run", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0]["benchmark"] != "compute-bound" {
		t.Errorf("rows = %+v", rep.Rows)
	}
}

// TestRunExperimentReport drives the single-benchmark experiment behind
// POST /v1/runs through the same build path the CLI uses.
func TestRunExperimentReport(t *testing.T) {
	benchName = "Heat-irt"
	defer func() { benchName = "" }()
	o := tinyOptions()
	o.Reps = 2
	rep, err := build("run", o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiment != "run" || rep.Governor != "default" {
		t.Errorf("experiment=%q governor=%q", rep.Experiment, rep.Governor)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want one per rep", len(rep.Rows))
	}
	for i, row := range rep.Rows {
		if row["benchmark"] != "Heat-irt" || row["rep"] != i {
			t.Errorf("row %d = %v", i, row)
		}
		if s, ok := row["seconds"].(float64); !ok || s <= 0 {
			t.Errorf("row %d seconds = %v", i, row["seconds"])
		}
	}
	raw, err := json.Marshal(rep)
	if err != nil || !json.Valid(raw) {
		t.Errorf("marshal: %v", err)
	}
}
