// Command cuttlefish regenerates the paper's evaluation: every table and
// figure has a subcommand that prints the corresponding rows or series.
//
// Usage:
//
//	cuttlefish [flags] <experiment>
//
// Experiments: table1, fig2, fig3a, fig3b, fig10, fig11, table2, table3, all
//
// Flags select the run scale (1.0 = the paper's 60–80 s executions),
// repetition count and seeds; defaults finish the full set in minutes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	opt := experiments.DefaultOptions()
	flag.Float64Var(&opt.Scale, "scale", opt.Scale, "benchmark length relative to the paper's runs (1.0 ≈ 60-80s each)")
	flag.IntVar(&opt.Reps, "reps", opt.Reps, "repetitions per data point (paper: 10)")
	flag.IntVar(&opt.Cores, "cores", opt.Cores, "simulated core count")
	flag.Int64Var(&opt.Seed, "seed", opt.Seed, "base RNG seed")
	flag.Float64Var(&opt.TinvSec, "tinv", opt.TinvSec, "daemon profiling interval in seconds")
	flag.IntVar(&opt.Workers, "workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	flag.IntVar(&opt.SimWorkers, "simworkers", 0, "engine workers sharding each simulated machine's cores (0/1 = serial)")
	flag.IntVar(&opt.BatchQuanta, "batch", 0, "max quanta per engine dispatch (0 = run to next event)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), opt); err != nil {
		fmt.Fprintf(os.Stderr, "cuttlefish: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: cuttlefish [flags] <experiment>

experiments:
  table1   benchmark census (time, TIPI range, slab counts)
  fig2     TIPI and JPI execution timelines (CSV per benchmark)
  fig3a    JPI per frequent TIPI at CF {1.2, 1.8, 2.3} GHz, UF max
  fig3b    JPI per frequent TIPI at UF {1.2, 2.1, 3.0} GHz, CF max
  fig10    OpenMP: energy / time / EDP vs Default for all three policies
  fig11    HClib: same comparison over the SOR and Heat variants
  table2   CFopt / UFopt per frequent TIPI range vs Default settings
  table3   Tinv sensitivity (10 / 20 / 40 / 60 ms)
  ablation cost of disabling the §4.4 / §4.5 / Algorithm-3 optimisations
  ddcm     DVFS vs duty-cycle modulation at matched throttle
  oracle   daemon's chosen optima vs exhaustive (CF,UF) sweep
  all      everything above in sequence

flags:
`)
	flag.PrintDefaults()
}

func run(name string, opt experiments.Options) error {
	switch name {
	case "table1":
		return table1(opt)
	case "fig2":
		return fig2(opt)
	case "fig3a":
		return fig3(opt, true)
	case "fig3b":
		return fig3(opt, false)
	case "fig10":
		cmp, err := experiments.Fig10(opt)
		if err != nil {
			return err
		}
		printComparison("Figure 10 (OpenMP)", cmp)
		return nil
	case "fig11":
		cmp, err := experiments.Fig11(opt)
		if err != nil {
			return err
		}
		printComparison("Figure 11 (HClib)", cmp)
		return nil
	case "table2":
		return table2(opt)
	case "table3":
		return table3(opt)
	case "ablation":
		return ablation(opt)
	case "ddcm":
		return ddcm(opt)
	case "oracle":
		return oracle(opt)
	case "all":
		for _, e := range []string{"table1", "fig2", "fig3a", "fig3b", "fig10", "fig11", "table2", "table3", "ablation", "ddcm"} {
			if err := run(e, opt); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

func table1(opt experiments.Options) error {
	rows, err := experiments.Table1(opt)
	if err != nil {
		return err
	}
	fmt.Printf("Table 1: benchmark census (scale %.2f, Default environment)\n", opt.Scale)
	fmt.Printf("%-10s %-16s %9s %15s %9s %9s\n", "Benchmark", "Style", "Time(s)", "TIPI range", "Distinct", "Frequent")
	for _, r := range rows {
		fmt.Printf("%-10s %-16s %9.1f %7.3f-%-7.3f %9d %9d\n",
			r.Name, r.Style, r.Seconds, r.TIPIMin, r.TIPIMax, r.Distinct, r.Frequent)
	}
	return nil
}

func fig2(opt experiments.Options) error {
	recs, err := experiments.Fig2(opt)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 2: TIPI and JPI timelines at max CF/UF (CSV)\n")
	for _, name := range experiments.Fig2Benchmarks {
		fmt.Printf("## %s\n", name)
		if err := recs[name].WriteCSV(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func fig3(opt experiments.Options, sweepCF bool) error {
	var pts []experiments.Fig3Point
	var err error
	if sweepCF {
		fmt.Println("Figure 3(a): average JPI of frequent TIPI slabs, UF = 3.0 GHz")
		pts, err = experiments.Fig3a(opt)
	} else {
		fmt.Println("Figure 3(b): average JPI of frequent TIPI slabs, CF = 2.3 GHz")
		pts, err = experiments.Fig3b(opt)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-9s %-13s %8s %12s\n", "Benchmark", "Setting", "TIPI slab", "Share%", "JPI (nJ)")
	for _, p := range pts {
		fmt.Printf("%-10s %-9s %-13s %8.1f %12.3f\n",
			p.Bench, p.Setting, p.Slab.Format(0.004), p.SharePct, p.JPI*1e9)
	}
	return nil
}

func printComparison(title string, cmp experiments.Comparison) {
	policies := experiments.CuttlefishPolicies
	fmt.Printf("%s: relative to Default (positive = better for energy/EDP, worse for time)\n", title)
	header := fmt.Sprintf("%-10s", "Benchmark")
	for _, p := range policies {
		header += fmt.Sprintf(" | %-24s", p)
	}
	fmt.Println(header)
	fmt.Printf("%-10s", "")
	for range policies {
		fmt.Printf(" | %7s %7s %8s", "energy%", "time%", "edp%")
	}
	fmt.Println()
	for _, row := range cmp.Rows {
		fmt.Printf("%-10s", row.Bench)
		for _, p := range policies {
			fmt.Printf(" | %6.1f± %-5.1f%5.1f %8.1f",
				row.EnergySavings[p].Mean, row.EnergySavings[p].CI,
				row.Slowdown[p].Mean, row.EDPSavings[p].Mean)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "geomean")
	for _, p := range policies {
		fmt.Printf(" | %6.1f        %5.1f %8.1f",
			cmp.GeoEnergySavings[p], cmp.GeoSlowdown[p], cmp.GeoEDPSavings[p])
	}
	fmt.Println()
}

func table2(opt experiments.Options) error {
	rows, err := experiments.Table2(opt)
	if err != nil {
		return err
	}
	fmt.Println("Table 2: Cuttlefish CFopt/UFopt for frequent TIPI ranges vs Default")
	fmt.Printf("%-10s %6s %6s  %-13s %7s %7s %7s %7s %7s\n",
		"Benchmark", "CF%res", "UF%res", "Freq. slab", "Share%", "CFopt", "UFopt", "DefCF", "DefUF")
	for _, r := range rows {
		first := true
		if len(r.Frequent) == 0 {
			fmt.Printf("%-10s %5.0f%% %5.0f%%  %-13s\n", r.Bench, r.PctCFResolved, r.PctUFResolved, "(none)")
			continue
		}
		for _, f := range r.Frequent {
			name, cfres, ufres := "", "", ""
			if first {
				name = r.Bench
				cfres = fmt.Sprintf("%4.0f%%", r.PctCFResolved)
				ufres = fmt.Sprintf("%4.0f%%", r.PctUFResolved)
			}
			cf, uf := "-", "-"
			if f.CFOptGHz > 0 {
				cf = fmt.Sprintf("%.1f", f.CFOptGHz)
			}
			if f.UFOptGHz > 0 {
				uf = fmt.Sprintf("%.1f", f.UFOptGHz)
			}
			fmt.Printf("%-10s %6s %6s  %-13s %6.0f%% %7s %7s %7.1f %7.1f\n",
				name, cfres, ufres, f.Range, f.SharePct, cf, uf, r.DefaultCFGHz, r.DefaultUFGHz)
			first = false
		}
	}
	return nil
}

func ablation(opt experiments.Options) error {
	rows, err := experiments.Ablation(nil, opt)
	if err != nil {
		return err
	}
	fmt.Println("Ablation: cost of removing the exploration-range optimisations")
	fmt.Printf("%-10s %-18s %10s %10s %9s %9s\n",
		"Benchmark", "Variant", "Explore%", "Resolved%", "Savings%", "Slowdown%")
	for _, r := range rows {
		fmt.Printf("%-10s %-18s %10.1f %10.1f %9.1f %9.1f\n",
			r.Bench, r.Variant, r.ExplorationPct, r.ResolvedPct, r.EnergySavingsPct, r.SlowdownPct)
	}
	return nil
}

func ddcm(opt experiments.Options) error {
	rows, err := experiments.DDCMStudy(nil, opt)
	if err != nil {
		return err
	}
	fmt.Println("DVFS vs DDCM at matched ~70% compute throttle (uncore pinned 2.2 GHz)")
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "Benchmark", "DVFS sav%", "DVFS slow%", "DDCM sav%", "DDCM slow%")
	for _, r := range rows {
		fmt.Printf("%-10s %12.1f %12.1f %12.1f %12.1f\n",
			r.Bench, r.DVFSEnergySavings, r.DVFSSlowdown, r.DDCMEnergySavings, r.DDCMSlowdown)
	}
	return nil
}

func oracle(opt experiments.Options) error {
	fmt.Println("Oracle: daemon optima vs exhaustive frequency sweep (dominant slab)")
	fmt.Printf("%-10s %14s %14s %8s\n", "Benchmark", "best (CF/UF)", "chosen (CF/UF)", "JPI gap")
	for _, name := range []string{"UTS", "SOR-irt", "Heat-irt", "MiniFE"} {
		r, err := experiments.Oracle(name, opt, 1, 2)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %6s/%-7s %6s/%-7s %7.1f%%\n",
			r.Bench, r.BestJPI.CF, r.BestJPI.UF, r.Chosen.CF, r.Chosen.UF, r.GapPct)
	}
	return nil
}

func table3(opt experiments.Options) error {
	rows, err := experiments.Table3(opt, nil)
	if err != nil {
		return err
	}
	fmt.Println("Table 3: Tinv sensitivity (geomean over OpenMP benchmarks)")
	fmt.Printf("%8s %15s %10s\n", "Tinv", "EnergySavings", "Slowdown")
	for _, r := range rows {
		fmt.Printf("%6.0fms %14.1f%% %9.1f%%\n", r.TinvSec*1e3, r.EnergySavings, r.Slowdown)
	}
	return nil
}
