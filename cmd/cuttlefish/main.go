// Command cuttlefish regenerates the paper's evaluation: every table and
// figure has a subcommand that renders the corresponding report.
//
// Usage:
//
//	cuttlefish [flags] <experiment> [flags]
//
// Experiments: table1, fig2, fig3a, fig3b, fig10, fig11, table2, table3,
// ablation, ddcm, oracle, run, sweep, all
//
// Flags may appear before or after the experiment name. -governor runs the
// single-environment experiments (table1, run) under any registered
// strategy; -format renders every report as text, json or csv; -remote
// executes against a cfserve instance instead of in-process. The remaining
// flags select the run scale (1.0 = the paper's 60–80 s executions),
// repetition count and seeds; defaults finish the full set in minutes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/fuzz"
	"repro/internal/governor"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/orchestrator"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/timeline"
)

var (
	format       = "text"
	remote       = ""
	benchName    = ""
	scenarioFile = ""
	sweepSpec    = ""
	storeDir     = ""
	memoFlag     = false
	memoDir      = ""
	memoMaxBytes = int64(0)
	traceOut     = ""
	timelineOut  = ""
	profileFlag  = false
	backends     stringList
	listGov      bool
	listScen     bool

	fuzzN         = 100
	baselineFile  = ""
	writeBaseline = ""
	replayPath    = ""
	corpusOut     = ""
	minimizeFlag  = false

	// setFlags records which flags the user spelled out, accumulated
	// across parseArgs's Parse calls; runFuzz consults it to override the
	// fuzzer's own scale/cores/reps defaults only on explicit request.
	setFlags = map[string]bool{}
)

// stringList collects a repeatable flag (-backend may be given once per
// cfserve instance).
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }
func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// newFlagSet registers every CLI flag on a fresh flag set bound to the
// package-level option variables. ContinueOnError makes Parse return an
// error naming the offending flag instead of exiting, so the two-stage
// parse below can report it uniformly wherever the flag appeared.
func newFlagSet(opt *experiments.Options) *flag.FlagSet {
	fs := flag.NewFlagSet("cuttlefish", flag.ContinueOnError)
	fs.SetOutput(io.Discard) // main prints the error and usage itself
	fs.Float64Var(&opt.Scale, "scale", opt.Scale, "benchmark length relative to the paper's runs (1.0 ≈ 60-80s each)")
	fs.IntVar(&opt.Reps, "reps", opt.Reps, "repetitions per data point (paper: 10)")
	fs.IntVar(&opt.Cores, "cores", opt.Cores, "simulated core count")
	fs.Int64Var(&opt.Seed, "seed", opt.Seed, "base RNG seed")
	fs.Float64Var(&opt.TinvSec, "tinv", opt.TinvSec, "daemon profiling interval in seconds")
	fs.Float64Var(&opt.WarmupSec, "warmup", opt.WarmupSec, "cuttlefish daemon warmup before its first wake, in simulated seconds (negative = none; part of the spec identity)")
	fs.IntVar(&opt.Workers, "workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	fs.IntVar(&opt.SimWorkers, "simworkers", 0, "engine workers sharding each simulated machine's cores (0/1 = serial)")
	fs.IntVar(&opt.BatchQuanta, "batch", 0, "max quanta per engine dispatch (0 = run to next event)")
	fs.StringVar(&opt.Governor, "governor", "", "registered governor for single-environment experiments (default: each experiment's paper environment; see -list-governors)")
	fs.StringVar(&format, "format", format, "report format: text | json | csv")
	fs.StringVar(&remote, "remote", remote, "execute against a cfserve instance at this URL instead of in-process (e.g. http://localhost:8080)")
	fs.StringVar(&benchName, "bench", benchName, "workload for the \"run\" experiment: a Table 1 benchmark or a registered scenario (see -list-scenarios)")
	fs.StringVar(&scenarioFile, "scenario", scenarioFile, "scenario definition file (JSON phase program) for the \"run\" experiment")
	fs.StringVar(&sweepSpec, "spec", sweepSpec, "sweep spec file (JSON) for the \"sweep\" subcommand")
	fs.Var(&backends, "backend", "cfserve URL the \"sweep\" subcommand dispatches to (repeatable; default: run in-process)")
	fs.StringVar(&storeDir, "store", storeDir, "persistent result store directory for in-process sweeps")
	fs.BoolVar(&memoFlag, "memo", memoFlag, "enable prefix-snapshot memoization for in-process runs: shared schedule prefixes simulate once and resume")
	fs.StringVar(&memoDir, "memo-dir", memoDir, "persistent snapshot directory below the memo LRU (implies -memo; survives invocations)")
	fs.Int64Var(&memoMaxBytes, "memo-max-bytes", memoMaxBytes, "memo LRU byte budget (0 = 64 MiB)")
	fs.StringVar(&traceOut, "trace-out", traceOut, "write the in-process run's span trace as Chrome trace-event JSON to this file (implies -profile)")
	fs.StringVar(&timelineOut, "timeline-out", timelineOut, "record the in-process run's flight-recorder timeline (per-quantum frequencies, IPC, energy, governor decisions) and write it as JSON to this file")
	fs.BoolVar(&profileFlag, "profile", profileFlag, "record per-phase and per-worker wall time into the trace's simulate spans")
	fs.BoolVar(&listGov, "list-governors", false, "list registered governors and exit")
	fs.BoolVar(&listScen, "list-scenarios", false, "list registered workloads (benchmarks and scenarios) and exit")
	fs.IntVar(&fuzzN, "n", fuzzN, "scenarios the fuzz subcommand generates before hash-dedup")
	fs.StringVar(&baselineFile, "baseline", baselineFile, "baseline file the fuzz findings are diffed against (new findings or metric regressions exit 1)")
	fs.StringVar(&writeBaseline, "write-baseline", writeBaseline, "write the fuzz pass's snapshot (corpus digest, cells, findings) to this file")
	fs.StringVar(&replayPath, "replay", replayPath, "replay a corpus entry file or directory instead of generating (fuzz)")
	fs.StringVar(&corpusOut, "corpus-out", corpusOut, "write every corpus entry as a replayable JSON file into this directory (fuzz)")
	fs.BoolVar(&minimizeFlag, "minimize", minimizeFlag, "greedily shrink each finding-bearing scenario and persist the minimized form to -corpus-out (fuzz)")
	return fs
}

// parseArgs parses flags and the experiment name in one loop: every
// positional argument boundary re-enters Parse, so flags are accepted
// before and after the subcommand identically, and a bad flag fails with
// the same error (naming the flag) wherever it appears. The previous
// two-stage parse re-parsed only the tail after the subcommand, exiting
// without a message on errors there.
func parseArgs(fs *flag.FlagSet, args []string) (experiment string, err error) {
	rest := args
	for {
		if err := fs.Parse(rest); err != nil {
			return "", err
		}
		pos := fs.Args()
		if len(pos) == 0 {
			return experiment, nil
		}
		if experiment != "" {
			return "", fmt.Errorf("unexpected argument %q after experiment %q", pos[0], experiment)
		}
		experiment = pos[0]
		rest = pos[1:]
	}
}

func main() {
	opt := experiments.DefaultOptions()
	fs := newFlagSet(&opt)
	name, err := parseArgs(fs, os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			usage(fs)
			return
		}
		fmt.Fprintf(os.Stderr, "cuttlefish: %v\n", err)
		usage(fs)
		os.Exit(2)
	}
	fs.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if listGov {
		for _, info := range governor.List() {
			fmt.Printf("%-18s %s\n", info.Name, info.Description)
		}
		return
	}
	if listScen {
		for _, info := range scenario.List() {
			fmt.Printf("%-16s %-10s %s\n", info.Name, info.Kind, info.Description)
		}
		return
	}
	if name == "" {
		usage(fs)
		os.Exit(2)
	}
	if !report.ValidFormat(format) {
		fmt.Fprintf(os.Stderr, "cuttlefish: unknown format %q (want text, json or csv)\n", format)
		os.Exit(2)
	}
	if err := run(name, opt, format); err != nil {
		fmt.Fprintf(os.Stderr, "cuttlefish: %v\n", err)
		os.Exit(1)
	}
}

func usage(fs *flag.FlagSet) {
	fmt.Fprintf(os.Stderr, `usage: cuttlefish [flags] <experiment> [flags]

experiments:
  table1   benchmark census (time, TIPI range, slab counts)
  fig2     TIPI and JPI execution timelines
  fig3a    JPI per frequent TIPI at CF {1.2, 1.8, 2.3} GHz, UF max
  fig3b    JPI per frequent TIPI at UF {1.2, 2.1, 3.0} GHz, CF max
  fig10    OpenMP: energy / time / EDP vs Default for all three policies
  fig11    HClib: same comparison over the SOR and Heat variants
  table2   CFopt / UFopt per frequent TIPI range vs Default settings
  table3   Tinv sensitivity (10 / 20 / 40 / 60 ms)
  ablation cost of disabling the §4.4 / §4.5 / Algorithm-3 optimisations
  ddcm     DVFS vs duty-cycle modulation at matched throttle
  oracle   daemon's chosen optima vs exhaustive (CF,UF) sweep
  run      one workload under one governor (-bench <name> or
           -scenario <file.json>, Reps rows)
  sweep    expand a parameter grid (-spec file.json) across backends
  fuzz     generate -n scenarios from -seed, run each under every
           registered governor, report inversions/anomalies/errors
  all      everything above in sequence (fuzz excluded)

strategies are constructed through the governor registry; -governor swaps
the execution environment of single-environment experiments (table1), e.g.
  cuttlefish -governor=powersave table1 -format json
registered: %s

workloads come from the scenario registry: Table 1 benchmarks, built-in
synthetic scenarios (-list-scenarios) and JSON phase programs:
  cuttlefish run -bench bursty
  cuttlefish run -scenario examples/scenarios/bursty.json

-remote <url> ships any experiment to a cfserve instance instead of
running in-process; identical specs are served from the server's
content-addressed result cache:
  cuttlefish -remote http://localhost:8080 run -bench Heat-irt -format json

sweep fans a declarative parameter grid (governors × benchmarks ×
scenarios × tinv/cores/reps/seeds/scales, listed or sampled) across one
or more cfserve backends with least-loaded dispatch, retry and failover,
then aggregates a cross-product comparison (best-per-cell + Pareto rows):
  cuttlefish sweep -spec sweep.json -backend http://a:8080 -backend http://b:8080

fuzz samples whole scenario phase programs from seeded distributions —
bit-deterministic for equal (-n, -seed) — and runs each under every
registered governor, flagging execution errors, governor-ordering
inversions (cuttlefish losing to default/static on energy) and
anomalies. -baseline diffs the findings and cell metrics against a
committed snapshot (new findings or regressions exit 1);
-write-baseline refreshes it; -replay re-runs committed corpus files;
-minimize shrinks finding-bearing scenarios into -corpus-out:
  cuttlefish fuzz -n 1000 -seed 7 -format json
  cuttlefish fuzz -n 50 -seed 7 -baseline internal/fuzz/testdata/baseline-n50-seed7.json
  cuttlefish fuzz -replay internal/fuzz/testdata/corpus

-trace-out records the in-process run as a span tree — per-repetition
lanes, per-region simulate spans, per-worker busy time — and writes it
as Chrome trace-event JSON (open at chrome://tracing or
ui.perfetto.dev). Tracing never changes report bytes:
  cuttlefish run -bench bursty -trace-out trace.json

-timeline-out arms the deterministic flight recorder: the simulated
machine is sampled at every region boundary (per-core and uncore
frequency, IPC, instructions, RAPL energy) and every governor decision
(DVFS/UFS transitions, TIPI slab inserts, exploration phases) lands as
an event. The JSON file is a pure function of the spec — two runs
produce byte-identical timelines — and with -trace-out the counters are
also folded into the Chrome trace as Perfetto value tracks:
  cuttlefish run -bench bursty -timeline-out timeline.json
  cuttlefish run -bench bursty -trace-out trace.json -timeline-out timeline.json

-memo adds a second cache tier for in-process execution: phase-boundary
machine snapshots keyed by schedule prefix, so a run whose schedule
shares a prefix with an earlier one (a re-run, or a scenario with a
tweaked tail) resumes from the last common boundary instead of
re-simulating from boot. Results stay byte-identical; -memo-dir
persists snapshots across invocations:
  cuttlefish run -bench bursty -memo-dir /tmp/cfmemo

flags (before or after the experiment):
`, strings.Join(governor.Names(), ", "))
	fs.SetOutput(os.Stderr)
	fs.PrintDefaults()
	fs.SetOutput(io.Discard)
}

// run executes one experiment — in-process, or against a cfserve
// instance when -remote is set — and renders its report in the chosen
// format.
func run(name string, opt experiments.Options, format string) error {
	if opt.Governor != "" {
		// Fail fast on typos before burning simulation time.
		if _, err := governor.New(opt.Governor, governor.Tuning{}); err != nil {
			return err
		}
	}
	if scenarioFile != "" {
		if name != "run" {
			return fmt.Errorf("-scenario only applies to the run experiment, not %q", name)
		}
		if benchName != "" {
			return fmt.Errorf("-bench and -scenario are mutually exclusive")
		}
		raw, err := os.ReadFile(scenarioFile)
		if err != nil {
			return err
		}
		def, err := scenario.ParseDefinition(raw)
		if err != nil {
			return err
		}
		opt.ScenarioDef = &def
	}
	if name == "run" && benchName == "" && opt.ScenarioDef == nil {
		return fmt.Errorf("the run experiment needs -bench <name> or -scenario <file.json>")
	}
	if name == "sweep" {
		return runSweep(opt, format)
	}
	if name == "fuzz" {
		return runFuzz(opt, format)
	}
	if name == "all" {
		for _, e := range []string{"table1", "fig2", "fig3a", "fig3b", "fig10", "fig11", "table2", "table3", "ablation", "ddcm"} {
			if err := run(e, opt, format); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	if remote != "" {
		if timelineOut != "" {
			return fmt.Errorf("-timeline-out records in-process runs; fetch a remote run's timeline from GET /v1/runs/{id}/timeline on a cfserve started with -timelines")
		}
		return runRemote(name, opt, format)
	}
	tier, err := buildMemoTier()
	if err != nil {
		return err
	}
	if tier != nil {
		rs := &memo.RunStats{}
		opt.Memo, opt.MemoStats = tier, rs
		defer func() {
			if v := rs.View(); v.Runs > 0 {
				fmt.Fprintf(os.Stderr, "cuttlefish: memo: %s\n", service.FormatMemoHeader(v))
			}
		}()
	}
	var tr *obs.Trace
	if traceOut != "" {
		if name == "all" {
			return fmt.Errorf("-trace-out traces one experiment at a time, not %q", name)
		}
		// The trace ID is the spec's content hash — the same ID cfserve
		// would assign this run — so a file traced locally and one fetched
		// from GET /v1/runs/{id}/trace name the same execution.
		tr = obs.NewTrace(service.SpecFromOptions(name, benchName, opt).Hash())
		opt.Span = tr.Root()
		opt.Profile = true
	}
	opt.Profile = opt.Profile || profileFlag
	var rec *timeline.Recorder
	if timelineOut != "" {
		if name == "all" {
			return fmt.Errorf("-timeline-out records one experiment at a time, not %q", name)
		}
		// The recorder's ID is the spec's content hash, same as the trace
		// ID — the timeline written here is byte-identical to the one a
		// cfserve started with -timelines would serve for this spec.
		rec = timeline.New(service.SpecFromOptions(name, benchName, opt).Hash())
		opt.Timeline = rec
	}
	rep, err := build(name, opt)
	if tr != nil {
		if err != nil {
			tr.Root().Set("error", err.Error())
		}
		tr.Root().End()
		// Fold the timeline's counter tracks and decision markers into
		// the span trace so one Perfetto file tells the whole story.
		obs.MergeTimeline(tr, rec)
		if werr := writeTrace(tr, traceOut); werr != nil && err == nil {
			err = werr
		}
	}
	if rec != nil && err == nil {
		if werr := writeTimeline(rec, timelineOut); werr != nil {
			err = werr
		}
	}
	if err != nil {
		return err
	}
	return rep.Write(os.Stdout, format)
}

// writeTrace dumps the completed trace as Chrome trace-event JSON
// (load it at chrome://tracing or ui.perfetto.dev).
func writeTrace(tr *obs.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cuttlefish: trace written to %s\n", path)
	return nil
}

// writeTimeline dumps the flight recorder's export as indented JSON.
// The bytes are a pure function of the spec: two runs of one spec
// produce byte-identical files (the CI timeline-smoke job cmp's them).
func writeTimeline(rec *timeline.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	conv := rec.Convergence()
	fmt.Fprintf(os.Stderr, "cuttlefish: timeline written to %s (%s)\n", path, service.FormatTimelineHeader(conv))
	return nil
}

// buildMemoTier constructs the prefix-snapshot tier the -memo flags ask
// for; nil when memoization is off. With -memo-dir the tier persists
// snapshots across invocations, so a tweaked re-run of a long scenario
// resumes from the last shared phase boundary instead of re-simulating
// its whole prefix.
func buildMemoTier() (*memo.Tier, error) {
	if !memoFlag && memoDir == "" {
		return nil, nil
	}
	var disk *store.Store
	if memoDir != "" {
		var err error
		if disk, err = store.Open(memoDir, 0); err != nil {
			return nil, err
		}
	}
	return memo.New(memoMaxBytes, disk), nil
}

// runSweep expands a sweep spec and dispatches it over the configured
// backends — every -backend URL, plus -remote for symmetry with the
// other subcommands; with none it runs in-process (optionally with a
// persistent -store, so warm re-runs cost nothing there too). Progress
// and the operational summary go to stderr; the aggregated report —
// deterministic across backend topologies — goes to stdout in -format.
func runSweep(opt experiments.Options, format string) error {
	if sweepSpec == "" {
		return fmt.Errorf("the sweep subcommand needs -spec <file.json>")
	}
	raw, err := os.ReadFile(sweepSpec)
	if err != nil {
		return err
	}
	sweep, err := orchestrator.ParseSweepSpec(raw)
	if err != nil {
		return err
	}
	pool, cleanup, err := buildBackendPool(opt)
	if err != nil {
		return err
	}
	defer cleanup()
	var dupNoted bool // OnEvent calls are serialized by the orchestrator
	o, err := orchestrator.New(orchestrator.Config{
		Backends: pool,
		OnEvent: func(ev orchestrator.Event) {
			if ev.Duplicates > 0 && !dupNoted {
				dupNoted = true
				fmt.Fprintf(os.Stderr, "sweep: %d duplicate grid cell(s) collapsed by hash-dedup (cross-product %d)\n",
					ev.Duplicates, ev.Total+ev.Duplicates)
			}
			target := ev.Spec.Experiment
			switch {
			case ev.Spec.Benchmark != "":
				target += "/" + ev.Spec.Benchmark
			case ev.Spec.Scenario != "":
				target += "/" + ev.Spec.Scenario
			case ev.Spec.ScenarioDef != nil:
				target += "/" + ev.Spec.ScenarioDef.Name
			}
			if ev.Spec.Governor != "" {
				target += "/" + ev.Spec.Governor
			}
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "sweep: attempt %d for %s failed on %s: %v\n", ev.Attempt, target, ev.Backend, ev.Err)
				return
			}
			line := fmt.Sprintf("sweep: %d/%d %s seed=%d (%s via %s)",
				ev.Done, ev.Total, target, ev.Spec.Seed, ev.Outcome, ev.Backend)
			if ev.Memo != nil && ev.Memo.PrefixHits > 0 {
				line += fmt.Sprintf(" [memo: %d/%d quanta skipped]", ev.Memo.QuantaSaved, ev.Memo.QuantaTotal)
			}
			fmt.Fprintln(os.Stderr, line)
		},
	})
	if err != nil {
		return err
	}
	res, err := o.Run(context.Background(), sweep)
	if res != nil {
		fmt.Fprintf(os.Stderr, "sweep: %s\n", res.Summary)
	}
	if err != nil {
		return err
	}
	rep, err := orchestrator.Aggregate(sweep.Name, res.Results)
	if err != nil {
		return err
	}
	return rep.Write(os.Stdout, format)
}

// buildBackendPool assembles the execution backends the sweep and fuzz
// subcommands dispatch over: every -backend URL plus -remote, or — with
// neither — one in-process service wired with the -store and -memo cache
// tiers. The cleanup func tears down whatever was built.
func buildBackendPool(opt experiments.Options) ([]orchestrator.Backend, func(), error) {
	urls := append(stringList(nil), backends...)
	if remote != "" {
		urls = append(urls, remote)
	}
	if len(urls) > 0 {
		var pool []orchestrator.Backend
		for _, u := range urls {
			pool = append(pool, orchestrator.NewRemoteBackend(u))
		}
		return pool, func() {}, nil
	}
	cfg := service.Config{Workers: opt.Workers, QueueDepth: 64}
	if storeDir != "" {
		st, err := store.Open(storeDir, 0)
		if err != nil {
			return nil, nil, err
		}
		cfg.Store = st
	}
	tier, err := buildMemoTier()
	if err != nil {
		return nil, nil, err
	}
	cfg.Memo = tier
	svc := service.New(cfg)
	return []orchestrator.Backend{&orchestrator.LocalBackend{Service: svc}}, svc.Close, nil
}

// runFuzz expands (or -replay loads) a scenario corpus and runs the
// differential pass over the backend pool. The findings report — byte
// identical across invocations, backends and cache temperatures — goes
// to stdout in -format; corpus statistics, cache outcomes and the
// baseline verdict go to stderr. Findings alone do not fail the command
// (they are the fuzzer's product); new findings or metric regressions
// against a -baseline do.
func runFuzz(opt experiments.Options, format string) error {
	cfg := fuzz.Config{N: fuzzN, Seed: opt.Seed, Workers: opt.Workers}
	// The fuzzer's own defaults (8 cores, 0.05 scale, 1 rep) are sized
	// for breadth, not paper fidelity; the shared flags override them
	// only when the user spelled them out.
	if setFlags["scale"] {
		cfg.Scale = opt.Scale
	}
	if setFlags["cores"] {
		cfg.Cores = opt.Cores
	}
	if setFlags["reps"] {
		cfg.Reps = opt.Reps
	}
	if setFlags["tinv"] {
		cfg.TinvSec = opt.TinvSec
	}
	var corpus *fuzz.Corpus
	var err error
	if replayPath != "" {
		if corpus, err = fuzz.LoadCorpus(replayPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fuzz: replaying %d scenario(s) from %s\n", len(corpus.Entries), replayPath)
	} else {
		if corpus, err = fuzz.Generate(cfg); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fuzz: corpus: %d scenario(s) from seed %d (%d duplicate(s) collapsed), digest %.12s…\n",
			len(corpus.Entries), cfg.Seed, corpus.Duplicates, corpus.Digest())
	}
	if corpusOut != "" {
		if err := os.MkdirAll(corpusOut, 0o755); err != nil {
			return err
		}
		for _, e := range corpus.Entries {
			if err := fuzz.WriteEntry(filepath.Join(corpusOut, e.Def.Name+".json"), e); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "fuzz: wrote %d corpus entr(ies) to %s\n", len(corpus.Entries), corpusOut)
	}
	pool, cleanup, err := buildBackendPool(opt)
	if err != nil {
		return err
	}
	defer cleanup()
	ctx := context.Background()
	rep, err := fuzz.Run(ctx, pool, corpus, cfg)
	if err != nil {
		return err
	}
	outcomes := map[string]int{}
	for _, c := range rep.Cells {
		if c.Outcome != "" {
			outcomes[c.Outcome]++
		}
	}
	fmt.Fprintf(os.Stderr, "fuzz: %d cell(s) executed (%s), %d finding(s)\n",
		len(rep.Cells), formatOutcomes(outcomes), len(rep.Findings))
	if minimizeFlag {
		if err := minimizeFindings(ctx, pool, rep, corpus, cfg); err != nil {
			return err
		}
	}
	if err := rep.RunReport().Write(os.Stdout, format); err != nil {
		return err
	}
	if writeBaseline != "" {
		if err := fuzz.BaselineOf(rep, cfg).Save(writeBaseline); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fuzz: baseline written to %s\n", writeBaseline)
	}
	if baselineFile != "" {
		base, err := fuzz.LoadBaseline(baselineFile)
		if err != nil {
			return err
		}
		violations, resolved, err := fuzz.Diff(base, rep, cfg)
		if err != nil {
			return err
		}
		for _, f := range resolved {
			fmt.Fprintf(os.Stderr, "fuzz: resolved vs baseline (refresh it with -write-baseline): %s/%s %s\n", f.Scenario, f.Kind, f.Detail)
		}
		if len(violations) > 0 {
			for _, f := range violations {
				fmt.Fprintf(os.Stderr, "fuzz: VIOLATION %s %s governor=%s ref=%s: %s\n", f.Scenario, f.Kind, f.Governor, f.Reference, f.Detail)
			}
			return fmt.Errorf("%d violation(s) vs baseline %s", len(violations), baselineFile)
		}
		fmt.Fprintf(os.Stderr, "fuzz: baseline %s holds (%d finding(s) match, no metric regressions)\n", baselineFile, len(base.Findings))
	}
	return nil
}

// minimizeFindings greedily shrinks every finding-bearing scenario (one
// per scenario, all its finding kinds at once) and persists the minimized
// entries to -corpus-out, or describes them on stderr without it.
func minimizeFindings(ctx context.Context, pool []orchestrator.Backend, rep *fuzz.Report, corpus *fuzz.Corpus, cfg fuzz.Config) error {
	kindsByScenario := map[string]map[string]bool{}
	for _, f := range rep.Findings {
		if kindsByScenario[f.Scenario] == nil {
			kindsByScenario[f.Scenario] = map[string]bool{}
		}
		kindsByScenario[f.Scenario][f.Kind] = true
	}
	runOne := func(ctx context.Context, e fuzz.Entry) ([]fuzz.Finding, error) {
		r, err := fuzz.Run(ctx, pool, &fuzz.Corpus{Requested: 1, Entries: []fuzz.Entry{e}}, cfg)
		if err != nil {
			return nil, err
		}
		return r.Findings, nil
	}
	for _, e := range corpus.Entries {
		kinds := kindsByScenario[e.Def.Name]
		if len(kinds) == 0 {
			continue
		}
		min, spent := fuzz.Minimize(ctx, e, kinds, runOne, 64)
		min.Note = fmt.Sprintf("minimized from %s (%d evaluation(s))", e.Def.Name, spent)
		fmt.Fprintf(os.Stderr, "fuzz: minimized %s -> %s: %d phase(s) x %d iteration(s) (%d evaluation(s))\n",
			e.Def.Name, min.Def.Name, len(min.Def.Phases), min.Def.Iterations, spent)
		if corpusOut != "" {
			if err := fuzz.WriteEntry(filepath.Join(corpusOut, "min-"+min.Def.Name+".json"), min); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatOutcomes renders cache-outcome counts in a fixed order.
func formatOutcomes(counts map[string]int) string {
	var parts []string
	for _, k := range []string{"miss", "hit", "disk", "coalesced"} {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", counts[k], k))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}

// runRemote ships the experiment to a cfserve instance: the same flags
// become a RunSpec, the server's canonical report renders locally in any
// -format. The cache outcome goes to stderr so json/csv stay clean.
// With -trace-out the client records its own request span and
// propagates it as X-Trace-Parent, so the local trace file and the
// server's GET /v1/runs/{id}/trace stitch into one tree.
func runRemote(name string, opt experiments.Options, format string) error {
	spec := service.SpecFromOptions(name, benchName, opt)
	c := &service.Client{BaseURL: remote}
	var tr *obs.Trace
	if traceOut != "" {
		tr = obs.NewTrace(spec.Hash())
		c.Trace = tr
	}
	res, err := c.RunResult(context.Background(), spec)
	if tr != nil {
		if err != nil {
			tr.Root().Set("error", err.Error())
		}
		tr.Root().End()
		if werr := writeTrace(tr, traceOut); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return err
	}
	rep, err := report.Decode(res.Body)
	if err != nil {
		return err
	}
	note := fmt.Sprintf("cuttlefish: %s via %s (%s)", name, remote, res.Outcome)
	if res.Convergence != nil {
		note += " [" + service.FormatTimelineHeader(*res.Convergence) + "]"
	}
	fmt.Fprintln(os.Stderr, note)
	return rep.Write(os.Stdout, format)
}

// build runs the named experiment in-process and converts its rows to a
// report; the dispatch itself lives in experiments.BuildReport, shared
// with the cfserve executor.
func build(name string, opt experiments.Options) (*report.RunReport, error) {
	return experiments.BuildReport(name, benchName, opt)
}
