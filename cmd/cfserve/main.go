// Command cfserve is the simulation-as-a-service front-end: an HTTP
// server that executes RunSpecs on a bounded job queue with a persistent
// worker fleet, coalesces identical in-flight requests and serves
// repeated specs from a content-addressed LRU result cache.
//
//	cfserve -addr :8080 -service-workers 4 -queue 32 -cache 512 -store /var/lib/cfserve
//
// -store adds a persistent content-addressed tier below the LRU: every
// finished execution is written through to disk, and a restarted (or a
// second, directory-sharing) instance serves those specs without
// recomputing them.
//
// -memo adds a second cache tier below the result cache: phase-boundary
// machine snapshots keyed by prefix chain hash. A spec that misses the
// result cache but shares a schedule prefix with an earlier run resumes
// from the longest memoized snapshot and simulates only the suffix,
// producing byte-identical reports. -memo-dir persists snapshots across
// restarts; -memo-max-bytes bounds the in-memory snapshot LRU.
//
// Observability is on by default and strictly out of band — it never
// touches report bytes or cache keys. Every request records a span tree
// (admission → queue wait → execute → per-region simulate → report
// encode); -traces bounds how many recent traces are held, -trace-dir
// additionally writes each as a Chrome trace-event JSON file. /metrics
// serves Prometheus text. -profile adds per-worker busy wall-time to
// each trace's simulate span; -pprof-addr serves net/http/pprof on a
// separate listener so profiling endpoints never share the public port.
//
// -timelines arms the deterministic flight recorder on every executed
// spec: the simulated machine is sampled at region boundaries and every
// governor decision lands as an event. Timelines are a pure function of
// the spec (two executions serve byte-identical JSON), stay strictly
// outside report bytes and cache keys, and are served from a bounded
// ring at GET /v1/runs/{id}/timeline. Executed responses also carry an
// X-Timeline convergence summary header.
//
//	POST   /v1/runs          run a spec, wait for the report
//	POST   /v1/runs?async=1  enqueue, poll GET /v1/runs/{id}
//	GET    /v1/governors     registered strategies
//	GET    /v1/scenarios     registered workloads (benchmarks + scenarios)
//	GET    /v1/stats         hits / misses / coalesced / queue / latency
//	GET    /v1/cache         cache tiers (LRU entries/bytes, store path/size)
//	DELETE /v1/cache         purge LRU + store
//	GET    /v1/runs/{id}/trace  Chrome trace-event JSON for a spec hash
//	GET    /v1/runs/{id}/timeline  flight-recorder JSON for a spec hash
//	GET    /v1/traces        held trace IDs + retention counters
//	GET    /v1/timelines     held timeline IDs + retention counters
//	GET    /metrics          Prometheus text exposition
//	GET    /healthz          liveness
//
// SIGINT/SIGTERM drain gracefully: in-flight runs finish, then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/timeline"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("service-workers", 0, "worker fleet size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "job queue depth before 429 rejection (0 = 16)")
		cache     = flag.Int("cache", 0, "result cache entries (0 = 256)")
		storeDir  = flag.String("store", "", "persistent result store directory (empty = memory only); survives restarts and may be shared between instances")
		storeMax  = flag.Int64("store-max-bytes", 0, "prune the store oldest-first past this many payload bytes (0 = unbounded)")
		useMemo   = flag.Bool("memo", false, "enable the prefix-snapshot memo tier: executions resume from the longest memoized prefix of their region schedule")
		memoDir   = flag.String("memo-dir", "", "persistent snapshot directory below the memo LRU (empty = memory only); implies -memo")
		memoMax   = flag.Int64("memo-max-bytes", 0, "memo LRU byte budget (0 = 64 MiB)")
		traces    = flag.Int("traces", 64, "recent run traces to hold for GET /v1/runs/{id}/trace (0 disables tracing)")
		timelines = flag.Int("timelines", 0, "recent flight-recorder timelines to hold for GET /v1/runs/{id}/timeline (0 disables timeline recording)")
		traceDir  = flag.String("trace-dir", "", "also write each trace as Chrome trace-event JSON under this directory")
		profile   = flag.Bool("profile", false, "record per-phase and per-worker wall time into each trace's simulate span")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
		grace     = flag.Duration("grace", 30*time.Second, "graceful shutdown deadline")
	)
	flag.Parse()
	if err := run(runConfig{
		addr: *addr, workers: *workers, queue: *queue, cache: *cache,
		storeDir: *storeDir, storeMax: *storeMax,
		useMemo: *useMemo, memoDir: *memoDir, memoMax: *memoMax,
		traces: *traces, timelines: *timelines, traceDir: *traceDir, profile: *profile,
		pprofAddr: *pprofAddr, grace: *grace,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "cfserve: %v\n", err)
		os.Exit(1)
	}
}

// runConfig carries the parsed flags; a struct rather than a positional
// list so adding a knob cannot silently swap two same-typed arguments.
type runConfig struct {
	addr      string
	workers   int
	queue     int
	cache     int
	storeDir  string
	storeMax  int64
	useMemo   bool
	memoDir   string
	memoMax   int64
	traces    int
	timelines int
	traceDir  string
	profile   bool
	pprofAddr string
	grace     time.Duration
}

func run(rc runConfig) error {
	// Engine knobs (sim_workers, batch_quanta) travel inside each spec —
	// they are part of the content hash, so the server never rewrites
	// them behind the cache key's back.
	cfg := service.Config{Workers: rc.workers, QueueDepth: rc.queue, CacheEntries: rc.cache,
		Metrics: obs.NewRegistry(), Profile: rc.profile}
	if rc.traces > 0 || rc.traceDir != "" {
		n := rc.traces
		if n <= 0 {
			n = 64
		}
		cfg.Traces = obs.NewTraceStore(n, rc.traceDir)
		if rc.traceDir != "" {
			if err := os.MkdirAll(rc.traceDir, 0o755); err != nil {
				return err
			}
			log.Printf("cfserve: writing Chrome traces to %s", rc.traceDir)
		}
	}
	if rc.timelines > 0 {
		cfg.Timelines = timeline.NewStore(rc.timelines)
		log.Printf("cfserve: flight recorder on (%d timeline(s) retained)", rc.timelines)
	}
	if rc.storeDir != "" {
		st, err := store.Open(rc.storeDir, rc.storeMax)
		if err != nil {
			return err
		}
		log.Printf("cfserve: store %s: %d entries, %d bytes", rc.storeDir, st.Len(), st.Bytes())
		cfg.Store = st
	}
	if rc.useMemo || rc.memoDir != "" {
		var disk *store.Store
		if rc.memoDir != "" {
			var err error
			if disk, err = store.Open(rc.memoDir, 0); err != nil {
				return err
			}
			log.Printf("cfserve: memo dir %s: %d snapshot(s), %d bytes", rc.memoDir, disk.Len(), disk.Bytes())
		}
		cfg.Memo = memo.New(rc.memoMax, disk)
		log.Printf("cfserve: prefix-snapshot memoization on")
	}
	svc := service.New(cfg)
	defer svc.Close()

	if rc.pprofAddr != "" {
		// net/http/pprof registers on http.DefaultServeMux; serving that
		// mux on its own listener keeps profiling off the public port.
		go func() {
			log.Printf("cfserve: pprof on %s", rc.pprofAddr)
			if err := http.ListenAndServe(rc.pprofAddr, nil); err != nil {
				log.Printf("cfserve: pprof server: %v", err)
			}
		}()
	}

	srv := &http.Server{Addr: rc.addr, Handler: logRequests(service.NewHandler(svc))}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("cfserve: listening on %s", rc.addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("cfserve: shutting down (grace %s)", rc.grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), rc.grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := svc.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("cfserve: drained, bye")
	return nil
}

// logRequests is a one-line access log: method, path, duration.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
