package core

import (
	"repro/internal/freq"
	"repro/internal/tipi"
)

// domain selects which frequency dimension an operation applies to; the
// neighbour-propagation directions are mirrored between the two (§4.4).
type domain int

const (
	domainCF domain = iota
	domainUF
)

func (d domain) explorer(n *tipi.Node) *tipi.Explorer {
	if d == domainCF {
		return n.CF
	}
	return n.UF
}

// find is Algorithm 2: one step of the highest→lowest, stride-two JPI
// exploration for one domain of one slab node. jpiCurr is this Tinv's JPI
// reading, fqPrev the level the domain ran at during that interval, and
// samePhase whether the previous interval executed in the same slab
// (readings spanning a TIPI transition are discarded, lines 6–8).
// It returns the level to run next.
func (d *Daemon) find(n *tipi.Node, dom domain, jpiCurr float64, fqPrev freq.Level, samePhase bool) freq.Level {
	e := dom.explorer(n)
	if e.HasOpt() {
		return e.Opt()
	}
	// Lines 2–5: adjacent bounds resolve via the Fig. 5 rule.
	if e.Adjacent() {
		opt := e.ChooseAdjacent()
		d.revalidate(n, dom)
		return opt
	}
	// Lines 6–8: accumulate this reading unless the phase just changed.
	if samePhase && fqPrev >= e.LB() && fqPrev <= e.RB() {
		e.Record(fqPrev, jpiCurr)
	}
	// Lines 9–13: keep measuring until averages exist at RB and the probe.
	rb := e.RB()
	if _, ok := e.Avg(rb); !ok {
		return rb
	}
	probe := rb - 2
	if probe < e.LB() {
		probe = e.LB()
	}
	if probe == rb {
		// Bounds collapsed between calls (neighbour propagation); resolve.
		e.SetOpt(rb)
		d.revalidate(n, dom)
		return rb
	}
	avgProbe, ok := e.Avg(probe)
	if !ok {
		return probe
	}
	avgRB, _ := e.Avg(rb)
	var next freq.Level
	if avgProbe < avgRB {
		// Lines 14–16: the minimum lies at or below the probe.
		e.NarrowRB(probe)
		if e.RB()-e.LB() > 2 {
			next = e.RB() - 2
		} else {
			next = e.LB()
		}
	} else {
		// Lines 17–19: JPI rose stepping down; minimum between RB-1 and RB.
		e.NarrowLB(rb - 1)
		next = e.LB()
	}
	// Lines 20–21 are Explorer.resolveCollapsed; line 23 is §4.5.
	d.revalidate(n, dom)
	if e.HasOpt() {
		return e.Opt()
	}
	return next
}

// revalidate is the §4.5 optimisation (Algorithm 2 line 23): whenever a
// node's bounds tighten, the monotone ordering of optima along the list
// tightens its neighbours too, cascading outward.
//
// Core frequency decreases left→right (compute-bound slabs want fast
// cores), so a node's lower-bound knowledge raises every left neighbour's
// LB and its upper-bound knowledge lowers every right neighbour's RB.
// Uncore frequency increases left→right, so the directions mirror.
func (d *Daemon) revalidate(n *tipi.Node, dom domain) {
	if d.cfg.DisableRevalidation || d.list.Len() <= 1 {
		return
	}
	switch dom {
	case domainCF:
		cur := n
		for l := n.Prev(); l != nil; l = l.Prev() {
			l.CF.NarrowLB(cur.CF.BoundOrOptLB())
			cur = l
		}
		cur = n
		for r := n.Next(); r != nil; r = r.Next() {
			r.CF.NarrowRB(cur.CF.BoundOrOptRB())
			cur = r
		}
	case domainUF:
		cur := n
		for l := n.Prev(); l != nil; l = l.Prev() {
			l.UF.NarrowRB(cur.UF.BoundOrOptRB())
			cur = l
		}
		cur = n
		for r := n.Next(); r != nil; r = r.Next() {
			r.UF.NarrowLB(cur.UF.BoundOrOptLB())
			cur = r
		}
	}
}

// seedCFBounds is the §4.4 optimisation at node insertion: a new slab's CF
// exploration range is pinched between its neighbours' knowledge — the
// left (more compute-bound) neighbour bounds it from above, the right from
// below (Fig. 6).
func (d *Daemon) seedCFBounds(n *tipi.Node) {
	if d.cfg.DisableNeighborSeeding || d.list.Len() <= 1 {
		return
	}
	if l := n.Prev(); l != nil {
		n.CF.NarrowRB(l.CF.BoundOrOptRB())
	}
	if r := n.Next(); r != nil {
		n.CF.NarrowLB(r.CF.BoundOrOptLB())
	}
}

// seedUFBounds mirrors seedCFBounds for the uncore (Fig. 7): the left
// neighbour bounds from below, the right from above.
func (d *Daemon) seedUFBounds(n *tipi.Node) {
	if d.cfg.DisableNeighborSeeding || d.list.Len() <= 1 {
		return
	}
	if l := n.Prev(); l != nil {
		n.UF.NarrowLB(l.UF.BoundOrOptLB())
	}
	if r := n.Next(); r != nil {
		n.UF.NarrowRB(r.UF.BoundOrOptRB())
	}
}

// estimateUFRange is Algorithm 3: map CFopt onto the anti-correlated
// straight line between (CFmax → UFmin) and (CFmin → UFmax), and open a
// window of 4·(#UF levels / #CF levels) around the estimate, sliding the
// window inward when it clips a grid edge.
func estimateUFRange(cfGrid, ufGrid freq.Grid, cfOpt freq.Level) (lb, rb freq.Level) {
	ufMax := float64(ufGrid.MaxLevel())
	cfMax := float64(cfGrid.MaxLevel())
	rng := 4 * float64(ufGrid.Levels()) / float64(cfGrid.Levels())
	alpha := ufMax / cfMax // levels are zero-based: (UFmax-UFmin)/(CFmax-CFmin)
	est := ufMax - alpha*float64(cfOpt)
	half := rng / 2
	lo := est - half
	hi := est + half
	if ufMax-est <= half {
		lo -= est + half - ufMax
	}
	if est <= half {
		hi += half - est
	}
	if lo < 0 {
		lo = 0
	}
	if hi > ufMax {
		hi = ufMax
	}
	lb, rb = freq.Level(lo+0.5), freq.Level(hi+0.5)
	if lb > rb {
		lb = rb
	}
	return lb, rb
}
