package core

import (
	"testing"

	"repro/internal/freq"
	"repro/internal/machine"
	"repro/internal/tipi"
)

// hypoGrid is the paper's hypothetical 7-level processor (A..G) used in
// Figs. 4–9.
var hypoGrid = freq.Grid{Min: 10, Max: 16}

// newTestDaemon builds a daemon over a tiny machine, with the hypothetical
// grid for both domains so exploration unit tests mirror the paper's
// figures level for level.
func newTestDaemon(t *testing.T) *Daemon {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Cores = 2
	m := machine.MustNew(cfg)
	d, err := NewDaemon(DefaultConfig(), m.Device(), 2, hypoGrid, hypoGrid, 0)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// driveFind repeatedly calls find with a synthetic JPI-by-level curve,
// simulating the daemon running at whatever level find returns, until the
// optimum resolves. It returns the sequence of levels visited.
func driveFind(t *testing.T, d *Daemon, n *tipi.Node, dom domain, jpi func(freq.Level) float64) []freq.Level {
	t.Helper()
	e := dom.explorer(n)
	cur := e.RB() // exploration starts at the right bound
	var visited []freq.Level
	for i := 0; i < 500; i++ {
		visited = append(visited, cur)
		next := d.find(n, dom, jpi(cur), cur, true)
		if e.HasOpt() {
			return visited
		}
		cur = next
	}
	t.Fatal("find did not resolve in 500 steps")
	return nil
}

func TestFindFig4DescendingJPI(t *testing.T) {
	// Fig. 4: JPI strictly falls toward A; exploration visits G, E, C, A
	// (10 readings each) and resolves CFopt = A.
	d := newTestDaemon(t)
	n := d.list.Insert(0)
	jpi := func(l freq.Level) float64 { return 1 + float64(l) } // lower level = lower JPI
	visited := driveFind(t, d, n, domainCF, jpi)

	if got := n.CF.Opt(); got != 0 {
		t.Errorf("CFopt = %d, want 0 (A)", got)
	}
	counts := map[freq.Level]int{}
	for _, l := range visited {
		counts[l]++
	}
	for _, l := range []freq.Level{6, 4, 2, 0} {
		if counts[l] < tipi.SamplesPerAvg {
			t.Errorf("level %d visited %d times, want ≥ %d (10-reading average)", l, counts[l], tipi.SamplesPerAvg)
		}
	}
	for _, l := range []freq.Level{5, 3, 1} {
		if counts[l] != 0 {
			t.Errorf("odd level %d visited %d times; stride-two walk should skip it", l, counts[l])
		}
	}
}

func TestFindFig5aAdjacentPicksHigh(t *testing.T) {
	// Fig. 5(a): JPI(E) > JPI(G) → LB = F; the adjacent pair (F,G) sits at
	// the top of the grid, so the optimum is G (protect performance).
	d := newTestDaemon(t)
	n := d.list.Insert(0)
	jpi := func(l freq.Level) float64 {
		if l == 6 {
			return 1.0
		}
		return 2.0
	}
	driveFind(t, d, n, domainCF, jpi)
	if got := n.CF.Opt(); got != 6 {
		t.Errorf("CFopt = %d, want 6 (G)", got)
	}
}

func TestFindFig5bAdjacentPicksLow(t *testing.T) {
	// Fig. 5(b): exploration reached (LB=A, RB=C) with JPI(A) > JPI(C);
	// LB becomes B and the pair (B,C) sits low in the grid, so the optimum
	// is B (maximise energy efficiency).
	d := newTestDaemon(t)
	n := d.list.Insert(0)
	// Convex with minimum between B and C: strictly falling to C then
	// rising at A.
	vals := map[freq.Level]float64{6: 6, 5: 5.5, 4: 5, 3: 4, 2: 3, 1: 2.8, 0: 3.5}
	driveFind(t, d, n, domainCF, func(l freq.Level) float64 { return vals[l] })
	if got := n.CF.Opt(); got != 1 {
		t.Errorf("CFopt = %d, want 1 (B)", got)
	}
}

func TestFindDiscardsTransitionReadings(t *testing.T) {
	d := newTestDaemon(t)
	n := d.list.Insert(0)
	// samePhase == false: the reading must not enter the average.
	d.find(n, domainCF, 99.0, n.CF.RB(), false)
	if got := n.CF.Samples(n.CF.RB()); got != 0 {
		t.Errorf("transition reading recorded: %d samples", got)
	}
	d.find(n, domainCF, 1.0, n.CF.RB(), true)
	if got := n.CF.Samples(n.CF.RB()); got != 1 {
		t.Errorf("steady reading dropped: %d samples", got)
	}
}

func TestSeedCFBoundsFig6(t *testing.T) {
	// Fig. 6(a): TIPI-3 exists with CFopt = B (level 1); a new, more
	// compute-bound TIPI-1 inserted in front inherits CFLB = B.
	d := newTestDaemon(t)
	t3 := d.list.Insert(30)
	t3.CF.SetOpt(1)
	t1 := d.list.Insert(10)
	d.seedCFBounds(t1)
	if t1.CF.LB() != 1 || t1.CF.RB() != 6 {
		t.Errorf("TIPI-1 bounds = [%d,%d], want [1,6]", t1.CF.LB(), t1.CF.RB())
	}

	// Fig. 6(b): TIPI-2 between them; TIPI-1 unresolved with RB = E (4):
	// TIPI-2 gets CFLB from TIPI-3's opt and CFRB from TIPI-1's RB.
	t1.CF.NarrowRB(4)
	t2 := d.list.Insert(20)
	d.seedCFBounds(t2)
	if t2.CF.LB() != 1 || t2.CF.RB() != 4 {
		t.Errorf("TIPI-2 bounds = [%d,%d], want [1,4]", t2.CF.LB(), t2.CF.RB())
	}
}

func TestSeedUFBoundsFig7(t *testing.T) {
	// Fig. 7(b): TIPI-1 (left) has UFopt = A-ish (level 0), TIPI-3 (right)
	// has UFopt = C (2); a node between them explores UF within [0, 2].
	d := newTestDaemon(t)
	t1 := d.list.Insert(10)
	t1.UF.SetOpt(0)
	t3 := d.list.Insert(30)
	t3.UF.SetOpt(2)
	t2 := d.list.Insert(20)
	d.seedUFBounds(t2)
	if t2.UF.LB() != 0 || t2.UF.RB() != 2 {
		t.Errorf("TIPI-2 UF bounds = [%d,%d], want [0,2]", t2.UF.LB(), t2.UF.RB())
	}
}

func TestRevalidateCFFig8(t *testing.T) {
	// Fig. 8(b): TIPI-3's CFRB drops to E (4); its right neighbour TIPI-4
	// (more memory-bound) must see its CFRB drop to E too.
	d := newTestDaemon(t)
	t3 := d.list.Insert(10)
	t4 := d.list.Insert(20)
	t3.CF.NarrowRB(4)
	d.revalidate(t3, domainCF)
	if t4.CF.RB() != 4 {
		t.Errorf("TIPI-4 CFRB = %d, want 4 (propagated)", t4.CF.RB())
	}
	// Fig. 8(a): a node resolving CFopt = E raises every left neighbour's
	// CFLB to E.
	t2 := d.list.Insert(5)
	t3.CF.SetOpt(4)
	d.revalidate(t3, domainCF)
	if t2.CF.LB() != 4 {
		t.Errorf("left neighbour CFLB = %d, want 4", t2.CF.LB())
	}
}

func TestRevalidateUFFig9(t *testing.T) {
	// Fig. 9(a): TIPI-5's UFRB drop propagates to the LEFT (compute-bound)
	// neighbour.
	d := newTestDaemon(t)
	t4 := d.list.Insert(10)
	t5 := d.list.Insert(20)
	t5.UF.NarrowRB(4)
	d.revalidate(t5, domainUF)
	if t4.UF.RB() != 4 {
		t.Errorf("TIPI-4 UFRB = %d, want 4", t4.UF.RB())
	}
	// Fig. 9(b): TIPI-4 resolves UFopt = E (4); TIPI-5's UFLB rises to E.
	// TIPI-5's bounds were [?,4] from the propagation above, so its LB
	// rising to 4 collapses and resolves UFopt = E as in the figure.
	t4.UF.SetOpt(4)
	d.revalidate(t4, domainUF)
	if !t5.UF.HasOpt() || t5.UF.Opt() != 4 {
		t.Errorf("TIPI-5 UFopt = %d (resolved %v), want 4", t5.UF.Opt(), t5.UF.HasOpt())
	}
}

func TestRevalidateCascades(t *testing.T) {
	// A resolution in the middle must reach non-adjacent nodes.
	d := newTestDaemon(t)
	a := d.list.Insert(1)
	b := d.list.Insert(2)
	c := d.list.Insert(3)
	_ = b
	c.CF.SetOpt(2)
	d.revalidate(c, domainCF)
	if a.CF.LB() != 2 {
		t.Errorf("cascade failed: far-left CFLB = %d, want 2", a.CF.LB())
	}
}

func TestEstimateUFRangeEndpoints(t *testing.T) {
	cf, uf := freq.HaswellCore(), freq.HaswellUncore()
	// CFopt = max → window hugs UFmin (compute-bound: slow uncore).
	lb, rb := estimateUFRange(cf, uf, cf.MaxLevel())
	if lb != 0 {
		t.Errorf("CFopt=max: UFLB = %d, want 0", lb)
	}
	if rb < 4 || rb > 8 {
		t.Errorf("CFopt=max: UFRB = %d, want a ≈6-level window above min", rb)
	}
	// CFopt = min → window hugs UFmax.
	lb, rb = estimateUFRange(cf, uf, 0)
	if rb != uf.MaxLevel() {
		t.Errorf("CFopt=min: UFRB = %d, want %d", rb, uf.MaxLevel())
	}
	if lb < uf.MaxLevel()-8 || lb > uf.MaxLevel()-4 {
		t.Errorf("CFopt=min: UFLB = %d, want a ≈6-level window below max", lb)
	}
}

func TestEstimateUFRangeMidpointAndOrder(t *testing.T) {
	cf, uf := freq.HaswellCore(), freq.HaswellUncore()
	for opt := freq.Level(0); opt <= cf.MaxLevel(); opt++ {
		lb, rb := estimateUFRange(cf, uf, opt)
		if lb > rb {
			t.Fatalf("CFopt=%d: inverted window [%d,%d]", opt, lb, rb)
		}
		if lb < 0 || rb > uf.MaxLevel() {
			t.Fatalf("CFopt=%d: window [%d,%d] off grid", opt, lb, rb)
		}
	}
	// Anti-correlation: higher CFopt gives a window no higher than lower
	// CFopt's.
	lbHi, _ := estimateUFRange(cf, uf, cf.MaxLevel())
	lbLo, _ := estimateUFRange(cf, uf, 0)
	if lbHi >= lbLo {
		t.Errorf("window not anti-correlated: lb(CFmax)=%d, lb(CFmin)=%d", lbHi, lbLo)
	}
}
