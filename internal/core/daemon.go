package core

import (
	"fmt"

	"repro/internal/freq"
	"repro/internal/msr"
	"repro/internal/timeline"
	"repro/internal/tipi"
)

// Policy selects which frequency domains the daemon adapts — the paper's
// three build-time variants (§5).
type Policy int

const (
	// PolicyBoth is full Cuttlefish: DVFS then UFS per slab.
	PolicyBoth Policy = iota
	// PolicyCoreOnly adapts only core frequency, uncore pinned at max.
	PolicyCoreOnly
	// PolicyUncoreOnly adapts only uncore frequency, cores pinned at max.
	PolicyUncoreOnly
)

func (p Policy) String() string {
	switch p {
	case PolicyBoth:
		return "cuttlefish"
	case PolicyCoreOnly:
		return "cuttlefish-core"
	case PolicyUncoreOnly:
		return "cuttlefish-uncore"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parametrises the daemon.
type Config struct {
	Policy Policy
	// TinvSec is the profiling interval (20 ms default, §5.4).
	TinvSec float64
	// WarmupSec delays the loop past the cold-cache fluctuation (§4.1).
	WarmupSec float64
	// SlabWidth buckets TIPI values (0.004, §3.2).
	SlabWidth float64
	// PinnedCore is the core the daemon time-shares.
	PinnedCore int
	// TickCPUSec is the CPU time one activation costs that core.
	TickCPUSec float64

	// Ablation switches (all false in the paper's configuration). They
	// exist to quantify what each runtime optimisation buys; the ablation
	// experiment and BenchmarkAblation report the cost of turning each off.

	// DisableNeighborSeeding turns off §4.4: new slabs explore from the
	// full default range instead of inheriting neighbour bounds.
	DisableNeighborSeeding bool
	// DisableRevalidation turns off §4.5: bound changes no longer
	// propagate along the slab list.
	DisableRevalidation bool
	// DisableUFEstimation turns off Algorithm 3: uncore exploration uses
	// the full grid instead of the CFopt-derived window.
	DisableUFEstimation bool
}

// DefaultConfig returns the paper's deployment configuration.
func DefaultConfig() Config {
	return Config{
		Policy:     PolicyBoth,
		TinvSec:    20e-3,
		WarmupSec:  2.0,
		SlabWidth:  tipi.DefaultSlabWidth,
		PinnedCore: 0,
		TickCPUSec: 25e-6,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.TinvSec <= 0 {
		return fmt.Errorf("core: Tinv must be positive, got %g", c.TinvSec)
	}
	if c.WarmupSec < 0 {
		return fmt.Errorf("core: warmup must be non-negative, got %g", c.WarmupSec)
	}
	if c.SlabWidth <= 0 {
		return fmt.Errorf("core: slab width must be positive, got %g", c.SlabWidth)
	}
	if c.TickCPUSec < 0 {
		return fmt.Errorf("core: tick CPU cost must be non-negative, got %g", c.TickCPUSec)
	}
	return nil
}

// Daemon is the Cuttlefish daemon thread (Algorithm 1): woken every Tinv,
// it samples TIPI/JPI, maintains the slab list, explores frequencies for
// unresolved slabs and pins resolved ones at their optima.
type Daemon struct {
	cfg    Config
	dev    *msr.Device
	cores  int
	cfGrid freq.Grid
	ufGrid freq.Grid
	prof   *Profiler
	list   *tipi.List

	nprev          *tipi.Node
	cfPrev, ufPrev freq.Level
	warmupEnd      float64
	warmed         bool
	stopped        bool
	samples        int
	exploring      int // samples spent with the current slab unresolved
	lastErr        error

	// tl is the optional flight recorder; tlNow is the simulated time of
	// the activation in flight, stamped onto decision events. Both are
	// observability only — no decision reads them.
	tl    *timeline.Recorder
	tlNow float64
}

// NewDaemon builds the daemon and performs Algorithm 1 lines 1–2: both
// frequency domains are raised to maximum through the device. startTime is
// the simulation time of cuttlefish::start(); the loop activates after the
// warmup elapses.
func NewDaemon(cfg Config, dev *msr.Device, cores int, cfGrid, ufGrid freq.Grid, startTime float64) (*Daemon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof, err := NewProfiler(dev, cores)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:       cfg,
		dev:       dev,
		cores:     cores,
		cfGrid:    cfGrid,
		ufGrid:    ufGrid,
		prof:      prof,
		list:      tipi.NewList(cfGrid, ufGrid),
		cfPrev:    cfGrid.MaxLevel(),
		ufPrev:    ufGrid.MaxLevel(),
		warmupEnd: startTime + cfg.WarmupSec,
	}
	if err := d.setFreq(d.cfPrev, d.ufPrev, true); err != nil {
		return nil, err
	}
	return d, nil
}

// List exposes the discovered slab list (experiment reporting).
func (d *Daemon) List() *tipi.List { return d.list }

// Samples returns how many valid Tinv samples the daemon has processed.
func (d *Daemon) Samples() int { return d.samples }

// ExplorationSamples returns how many of those samples arrived while the
// current slab's optima were still unresolved — the time the application
// spent under exploration rather than at its optimal frequencies. The
// §4.4/§4.5 optimisations exist to shrink this number.
func (d *Daemon) ExplorationSamples() int { return d.exploring }

// Err returns the first MSR access error the daemon hit, if any.
func (d *Daemon) Err() error { return d.lastErr }

// Stop halts the loop (cuttlefish::stop()); subsequent ticks are no-ops.
func (d *Daemon) Stop() { d.stopped = true }

// SetTimeline attaches a flight recorder for decision events (slab
// inserts, exploration intervals, optimum resolutions, DVFS/UFS
// actuations). Nil disables recording. The daemon never reads the
// recorder, so attaching one cannot change a decision.
func (d *Daemon) SetTimeline(rec *timeline.Recorder) { d.tl = rec }

// Tick is the machine.Component hook: one Tinv activation. It returns the
// CPU time consumed on the pinned core.
func (d *Daemon) Tick(now float64) float64 {
	if d.stopped || d.lastErr != nil {
		return 0
	}
	d.tlNow = now
	if now < d.warmupEnd {
		return 0 // still asleep (Algorithm 1 line 3)
	}
	if !d.warmed {
		d.warmed = true
		if err := d.prof.Reset(); err != nil {
			d.lastErr = err
		}
		return d.cfg.TickCPUSec
	}
	s, err := d.prof.Sample()
	if err != nil {
		d.lastErr = err
		return d.cfg.TickCPUSec
	}
	if !s.OK {
		// Nothing retired: an idle or blocked interval. Discard and treat
		// the next sample as a phase transition.
		d.nprev = nil
		return d.cfg.TickCPUSec
	}
	d.step(s)
	return d.cfg.TickCPUSec
}

// step is Algorithm 1 lines 7–35 for one sample.
func (d *Daemon) step(s Sample) {
	slab := tipi.SlabOf(s.TIPI, d.cfg.SlabWidth)
	ncurr := d.list.Lookup(slab)
	if ncurr == nil {
		ncurr = d.list.Insert(slab)
		if d.tl != nil {
			d.tl.AddEvent(timeline.Event{T: d.tlNow, Kind: timeline.KindSlabInsert, Slab: int(slab)})
		}
		d.seedCFBounds(ncurr) // §4.4 (no-op with a single node)
		if d.cfg.Policy == PolicyUncoreOnly {
			d.seedUFBounds(ncurr)
		}
	}
	samePhase := d.nprev == ncurr
	ncurr.Hits++
	d.samples++
	hadCF, hadUF := ncurr.CF.HasOpt(), ncurr.UF.HasOpt()
	var exploring bool
	switch d.cfg.Policy {
	case PolicyCoreOnly:
		exploring = !hadCF
	case PolicyUncoreOnly:
		exploring = !hadUF
	default:
		exploring = !hadCF || !hadUF
	}
	if exploring {
		d.exploring++
		if d.tl != nil {
			d.tl.AddEvent(timeline.Event{T: d.tlNow, Kind: timeline.KindExplore, Slab: int(slab)})
		}
	}

	cfMax := d.cfGrid.MaxLevel()
	ufMax := d.ufGrid.MaxLevel()
	var cfNext, ufNext freq.Level

	switch d.cfg.Policy {
	case PolicyCoreOnly:
		ufNext = ufMax
		cfNext = d.find(ncurr, domainCF, s.JPI, d.cfPrev, samePhase)

	case PolicyUncoreOnly:
		cfNext = cfMax
		ufNext = d.find(ncurr, domainUF, s.JPI, d.ufPrev, samePhase)

	case PolicyBoth:
		switch {
		case !ncurr.CF.HasOpt():
			cfNext = d.find(ncurr, domainCF, s.JPI, d.cfPrev, samePhase)
			ufNext = ufMax
			if ncurr.CF.HasOpt() {
				// Algorithm 1 lines 20–24: CFopt just resolved; estimate
				// the uncore window and jump to its right bound.
				d.prepareUF(ncurr)
				ufNext = ncurr.UF.RB()
			}
		case !ncurr.UF.HasOpt():
			cfNext = ncurr.CF.Opt()
			if !ncurr.UFRangeSet {
				// CFopt was resolved by neighbour propagation rather than
				// this slab's own exploration; set the window up now.
				d.prepareUF(ncurr)
				ufNext = ncurr.UF.RB()
			} else {
				ufNext = d.find(ncurr, domainUF, s.JPI, d.ufPrev, samePhase)
			}
		default:
			cfNext, ufNext = ncurr.CF.Opt(), ncurr.UF.Opt()
		}
	}

	if d.tl != nil {
		if !hadCF && ncurr.CF.HasOpt() {
			d.tl.AddEvent(timeline.Event{T: d.tlNow, Kind: timeline.KindCFOpt, Slab: int(slab), To: int(d.cfGrid.Ratio(ncurr.CF.Opt()))})
		}
		if !hadUF && ncurr.UF.HasOpt() {
			d.tl.AddEvent(timeline.Event{T: d.tlNow, Kind: timeline.KindUFOpt, Slab: int(slab), To: int(d.ufGrid.Ratio(ncurr.UF.Opt()))})
		}
	}
	if err := d.setFreq(cfNext, ufNext, false); err != nil {
		d.lastErr = err
		return
	}
	d.nprev = ncurr
	d.cfPrev, d.ufPrev = cfNext, ufNext
}

// prepareUF runs Algorithm 3 plus the §4.4 neighbour seeding for a slab
// whose CFopt is known, exactly once.
func (d *Daemon) prepareUF(n *tipi.Node) {
	if n.UFRangeSet {
		return
	}
	if !d.cfg.DisableUFEstimation {
		lb, rb := estimateUFRange(d.cfGrid, d.ufGrid, n.CF.Opt())
		n.UF.NarrowLB(lb)
		n.UF.NarrowRB(rb)
	}
	d.seedUFBounds(n)
	n.UFRangeSet = true
}

// setFreq actuates both domains through the device (Algorithm 1 line 33),
// skipping redundant writes. force writes unconditionally.
func (d *Daemon) setFreq(cf, uf freq.Level, force bool) error {
	if force || cf != d.cfPrev {
		ratio := uint8(d.cfGrid.Ratio(cf))
		for c := 0; c < d.cores; c++ {
			if err := d.dev.Write(msr.IA32PerfCtl, c, msr.PerfCtlRaw(ratio)); err != nil {
				return fmt.Errorf("core: DVFS write core %d: %w", c, err)
			}
		}
		if d.tl != nil {
			d.tl.AddEvent(timeline.Event{T: d.tlNow, Kind: timeline.KindDVFS, From: int(d.cfGrid.Ratio(d.cfPrev)), To: int(ratio)})
		}
	}
	if force || uf != d.ufPrev {
		ratio := uint8(d.ufGrid.Ratio(uf))
		if err := d.dev.Write(msr.UncoreRatioLimit, 0, msr.UncoreLimitRaw(ratio, ratio)); err != nil {
			return fmt.Errorf("core: UFS write: %w", err)
		}
		if d.tl != nil {
			d.tl.AddEvent(timeline.Event{T: d.tlNow, Kind: timeline.KindUFS, From: int(d.ufGrid.Ratio(d.ufPrev)), To: int(ratio)})
		}
	}
	return nil
}
