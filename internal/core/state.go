package core

import (
	"fmt"

	"repro/internal/freq"
	"repro/internal/tipi"
)

// ProfilerState is the profiler's counter baseline in serializable form.
type ProfilerState struct {
	LastInstr  uint64 `json:"last_instr"`
	LastTor    uint64 `json:"last_tor"`
	LastEnergy uint32 `json:"last_energy"`
	Primed     bool   `json:"primed"`
}

// NodeState is one slab node of the daemon's TIPI list in serializable
// form.
type NodeState struct {
	Slab       int                `json:"slab"`
	CF         tipi.ExplorerState `json:"cf"`
	UF         tipi.ExplorerState `json:"uf"`
	UFRangeSet bool               `json:"uf_range_set"`
	Hits       int                `json:"hits"`
}

// DaemonState is the daemon's complete mutable state — everything a Tick
// can observe besides the machine's registers. nprev is recorded as an
// index into the slab-ordered node list (-1 = none), which survives
// serialization where a pointer cannot.
type DaemonState struct {
	NPrev     int           `json:"nprev"`
	CFPrev    int           `json:"cf_prev"`
	UFPrev    int           `json:"uf_prev"`
	WarmupEnd float64       `json:"warmup_end"`
	Warmed    bool          `json:"warmed"`
	Stopped   bool          `json:"stopped"`
	Samples   int           `json:"samples"`
	Exploring int           `json:"exploring"`
	Profiler  ProfilerState `json:"profiler"`
	Nodes     []NodeState   `json:"nodes"`
}

// StateSnapshot exports the daemon's mutable state. It fails if the
// daemon has latched an MSR error: an errored daemon stops adapting, and
// resuming that silence from a snapshot would hide the error.
func (d *Daemon) StateSnapshot() (*DaemonState, error) {
	if d.lastErr != nil {
		return nil, fmt.Errorf("core: daemon in error state: %w", d.lastErr)
	}
	nodes := d.list.Nodes()
	st := &DaemonState{
		NPrev:     -1,
		CFPrev:    int(d.cfPrev),
		UFPrev:    int(d.ufPrev),
		WarmupEnd: d.warmupEnd,
		Warmed:    d.warmed,
		Stopped:   d.stopped,
		Samples:   d.samples,
		Exploring: d.exploring,
		Profiler: ProfilerState{
			LastInstr:  d.prof.lastInstr,
			LastTor:    d.prof.lastTor,
			LastEnergy: d.prof.lastEnergy,
			Primed:     d.prof.primed,
		},
		Nodes: make([]NodeState, len(nodes)),
	}
	for i, n := range nodes {
		if n == d.nprev {
			st.NPrev = i
		}
		st.Nodes[i] = NodeState{
			Slab:       int(n.Slab),
			CF:         n.CF.State(),
			UF:         n.UF.State(),
			UFRangeSet: n.UFRangeSet,
			Hits:       n.Hits,
		}
	}
	return st, nil
}

// StateRestore rebuilds the daemon's mutable state from a snapshot taken
// by StateSnapshot on a daemon with the same configuration and grids. The
// slab list is reconstructed node by node; the frequency registers
// themselves are machine state and restored separately.
func (d *Daemon) StateRestore(st *DaemonState) error {
	list := tipi.NewList(d.cfGrid, d.ufGrid)
	nodes := make([]*tipi.Node, len(st.Nodes))
	for i, ns := range st.Nodes {
		n := list.Insert(tipi.Slab(ns.Slab))
		if err := n.CF.SetState(ns.CF); err != nil {
			return fmt.Errorf("core: restoring slab %d CF: %w", ns.Slab, err)
		}
		if err := n.UF.SetState(ns.UF); err != nil {
			return fmt.Errorf("core: restoring slab %d UF: %w", ns.Slab, err)
		}
		n.UFRangeSet = ns.UFRangeSet
		n.Hits = ns.Hits
		nodes[i] = n
	}
	if list.Len() != len(st.Nodes) {
		return fmt.Errorf("core: state has duplicate slabs (%d nodes collapsed to %d)", len(st.Nodes), list.Len())
	}
	if st.NPrev < -1 || st.NPrev >= len(nodes) {
		return fmt.Errorf("core: state nprev index %d out of range", st.NPrev)
	}
	d.list = list
	if st.NPrev >= 0 {
		d.nprev = nodes[st.NPrev]
	} else {
		d.nprev = nil
	}
	d.cfPrev = freq.Level(st.CFPrev)
	d.ufPrev = freq.Level(st.UFPrev)
	d.warmupEnd = st.WarmupEnd
	d.warmed = st.Warmed
	d.stopped = st.Stopped
	d.samples = st.Samples
	d.exploring = st.Exploring
	d.prof.lastInstr = st.Profiler.LastInstr
	d.prof.lastTor = st.Profiler.LastTor
	d.prof.lastEnergy = st.Profiler.LastEnergy
	d.prof.primed = st.Profiler.Primed
	return nil
}
