package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/msr"
	"repro/internal/workload"
)

// steadySource feeds every core an endless stream of identical segments.
type steadySource struct{ seg workload.Segment }

func (s steadySource) NextSegment(core int, now float64) (workload.Segment, bool) {
	return s.seg, true
}
func (s steadySource) Complete(core int, now float64) {}
func (s steadySource) Done() bool                     { return false }

func newMachineAndDaemon(t *testing.T, cfg Config) (*machine.Machine, *Daemon) {
	t.Helper()
	mcfg := machine.DefaultConfig()
	mcfg.Cores = 8
	m := machine.MustNew(mcfg)
	d, err := NewDaemon(cfg, m.Device(), mcfg.Cores, mcfg.CoreGrid, mcfg.UncoreGrid, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Schedule(&machine.Component{Period: cfg.TinvSec, Core: cfg.PinnedCore, Tick: d.Tick}, cfg.TinvSec)
	return m, d
}

func TestConfigValidation(t *testing.T) {
	for _, tc := range []func(*Config){
		func(c *Config) { c.TinvSec = 0 },
		func(c *Config) { c.WarmupSec = -1 },
		func(c *Config) { c.SlabWidth = 0 },
		func(c *Config) { c.TickCPUSec = -1 },
	} {
		cfg := DefaultConfig()
		tc(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyBoth.String() != "cuttlefish" ||
		PolicyCoreOnly.String() != "cuttlefish-core" ||
		PolicyUncoreOnly.String() != "cuttlefish-uncore" {
		t.Error("policy names drifted from the paper's")
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy must still stringify")
	}
}

func TestDaemonSleepsThroughWarmup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupSec = 1.0
	m, d := newMachineAndDaemon(t, cfg)
	m.SetSource(steadySource{seg: workload.Segment{Instructions: 1e6, MissPerInstr: 0.02, IPC: 2}})
	for m.Now() < 0.9 {
		m.Step()
	}
	if d.Samples() != 0 {
		t.Errorf("daemon sampled %d times during warmup (§4.1)", d.Samples())
	}
	for m.Now() < 2.0 {
		m.Step()
	}
	if d.Samples() == 0 {
		t.Error("daemon never woke after warmup")
	}
}

func TestDaemonDiscardsIdleIntervals(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupSec = 0.1
	m, d := newMachineAndDaemon(t, cfg)
	// No source: no instructions retire; every interval is discarded.
	for m.Now() < 1.0 {
		m.Step()
	}
	if d.Samples() != 0 {
		t.Errorf("idle machine produced %d samples; should all be discarded", d.Samples())
	}
	if d.List().Len() != 0 {
		t.Error("idle machine must not grow the slab list")
	}
}

func TestDaemonStopsOnDeniedMSR(t *testing.T) {
	// Failure injection: a device whose allow-list forbids DVFS writes.
	mcfg := machine.DefaultConfig()
	mcfg.Cores = 4
	m := machine.MustNew(mcfg)
	crippled := msr.NewDevice(m.File(), msr.Allowlist{
		AllowReadAll: true,
		WriteMask:    map[uint32]uint64{msr.UncoreRatioLimit: 0x7f7f},
	})
	cfg := DefaultConfig()
	cfg.WarmupSec = 0.1
	if _, err := NewDaemon(cfg, crippled, mcfg.Cores, mcfg.CoreGrid, mcfg.UncoreGrid, 0); err == nil {
		t.Fatal("daemon construction must fail when the initial DVFS write is denied")
	}
}

func TestDaemonSurfacesRuntimeErrors(t *testing.T) {
	// A device that loses write permission mid-run: the daemon records the
	// error and halts instead of panicking.
	mcfg := machine.DefaultConfig()
	mcfg.Cores = 4
	m := machine.MustNew(mcfg)
	allow := msr.Allowlist{AllowReadAll: true, WriteMask: map[uint32]uint64{
		msr.IA32PerfCtl:      0xffff,
		msr.UncoreRatioLimit: 0x7f7f,
	}}
	dev := msr.NewDevice(m.File(), allow)
	cfg := DefaultConfig()
	cfg.WarmupSec = 0.1
	d, err := NewDaemon(cfg, dev, mcfg.Cores, mcfg.CoreGrid, mcfg.UncoreGrid, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Schedule(&machine.Component{Period: cfg.TinvSec, Tick: d.Tick}, cfg.TinvSec)
	m.SetSource(steadySource{seg: workload.Segment{Instructions: 1e6, MissPerInstr: 0.1, IPC: 2}})
	// Revoke the uncore write permission once exploration is under way.
	delete(allow.WriteMask, msr.UncoreRatioLimit)
	for m.Now() < 4.0 && d.Err() == nil {
		m.Step()
	}
	if d.Err() == nil {
		t.Fatal("daemon never surfaced the denied write")
	}
	samplesAtError := d.Samples()
	for i := 0; i < 100; i++ {
		m.Step()
	}
	if d.Samples() != samplesAtError {
		t.Error("daemon kept running after a fatal MSR error")
	}
}

func TestDaemonStopHaltsTicks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupSec = 0.1
	m, d := newMachineAndDaemon(t, cfg)
	m.SetSource(steadySource{seg: workload.Segment{Instructions: 1e6, MissPerInstr: 0.02, IPC: 2}})
	for m.Now() < 1.0 {
		m.Step()
	}
	n := d.Samples()
	if n == 0 {
		t.Fatal("daemon idle before stop")
	}
	d.Stop()
	for m.Now() < 2.0 {
		m.Step()
	}
	if d.Samples() != n {
		t.Error("ticks continued after Stop")
	}
}

func TestCoreOnlyNeverTouchesUncore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyCoreOnly
	cfg.WarmupSec = 0.1
	m, d := newMachineAndDaemon(t, cfg)
	m.SetSource(steadySource{seg: workload.Segment{Instructions: 1e6, MissPerInstr: 0.12, IPC: 2, Exposure: 0.7}})
	for m.Now() < 8.0 {
		m.Step()
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if got := m.UncoreRatio(); got != m.Config().UncoreGrid.Max {
		t.Errorf("Cuttlefish-Core moved the uncore to %v; must stay at max", got)
	}
	// It still explores the core domain downward for a memory-bound MAP.
	if got := m.CoreRatio(0); got == m.Config().CoreGrid.Max {
		t.Error("Cuttlefish-Core never moved the core frequency")
	}
}

func TestUncoreOnlyNeverTouchesCores(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyUncoreOnly
	cfg.WarmupSec = 0.1
	m, d := newMachineAndDaemon(t, cfg)
	m.SetSource(steadySource{seg: workload.Segment{Instructions: 1e6, MissPerInstr: 0.002, IPC: 2}})
	for m.Now() < 8.0 {
		m.Step()
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if got := m.CoreRatio(3); got != m.Config().CoreGrid.Max {
		t.Errorf("Cuttlefish-Uncore moved a core to %v; must stay at max", got)
	}
	if got := m.UncoreRatio(); got == m.Config().UncoreGrid.Max {
		t.Error("Cuttlefish-Uncore never moved the uncore")
	}
}

func TestExplorationSamplesCounted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupSec = 0.1
	m, d := newMachineAndDaemon(t, cfg)
	m.SetSource(steadySource{seg: workload.Segment{Instructions: 1e6, MissPerInstr: 0.002, IPC: 2}})
	for m.Now() < 12.0 {
		m.Step()
	}
	if d.ExplorationSamples() == 0 {
		t.Fatal("exploration counter never advanced")
	}
	if d.ExplorationSamples() >= d.Samples() {
		t.Errorf("exploration (%d) should end well before the run (%d samples): optimum found and pinned",
			d.ExplorationSamples(), d.Samples())
	}
}

func TestProfilerWraparound(t *testing.T) {
	// Force the RAPL counter close to 2^32 and verify the delta math
	// survives the wrap.
	mcfg := machine.DefaultConfig()
	mcfg.Cores = 2
	m := machine.MustNew(mcfg)
	prof, err := NewProfiler(m.Device(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Prime, then run the machine enough to publish energy.
	if err := prof.Reset(); err != nil {
		t.Fatal(err)
	}
	m.SetSource(steadySource{seg: workload.Segment{Instructions: 1e6, MissPerInstr: 0.01, IPC: 2}})
	for i := 0; i < 100; i++ {
		m.Step()
	}
	s, err := prof.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if !s.OK || s.JPI <= 0 || s.TIPI <= 0 {
		t.Errorf("sample not usable: %+v", s)
	}
	// JPI in a plausible nanojoule band.
	if s.JPI < 0.1e-9 || s.JPI > 100e-9 {
		t.Errorf("JPI = %g J, implausible", s.JPI)
	}
}

func TestProfilerFirstSampleNotOK(t *testing.T) {
	mcfg := machine.DefaultConfig()
	mcfg.Cores = 2
	m := machine.MustNew(mcfg)
	prof, err := NewProfiler(m.Device(), 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := prof.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if s.OK {
		t.Error("first sample primes the baseline and must not be OK")
	}
}
