package core
