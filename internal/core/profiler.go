// Package core is the Cuttlefish runtime itself: the online MSR profiler
// (TIPI and JPI sampling, §3.1), the daemon loop of Algorithm 1, the
// frequency exploration of Algorithm 2, the uncore range estimation of
// Algorithm 3, and the neighbour-based range optimisations of §4.4 and
// §4.5. It drives the machine exclusively through the msr-safe device —
// the same access path the paper's C/C++ library uses.
package core

import (
	"fmt"

	"repro/internal/msr"
)

// Sample is one Tinv profiling interval: TIPI and JPI computed over the
// whole processor, per §3.1. OK is false when no instructions retired in
// the interval (the readings are then meaningless and must be discarded).
type Sample struct {
	TIPI   float64
	JPI    float64
	Instr  uint64
	Tor    uint64
	Joules float64
	OK     bool
}

// Profiler computes TIPI and JPI deltas from the MSRs, in the style of
// RCRtool [38]: per-core INST_RETIRED.ANY, the two TOR_INSERT aggregates,
// and the RAPL package energy counter with 32-bit wraparound handling.
type Profiler struct {
	dev   *msr.Device
	cores int
	unitJ float64

	lastInstr  uint64
	lastTor    uint64
	lastEnergy uint32
	primed     bool
}

// NewProfiler creates a profiler over the msr-safe device, decoding the
// RAPL energy unit from MSR_RAPL_POWER_UNIT.
func NewProfiler(dev *msr.Device, cores int) (*Profiler, error) {
	raw, err := dev.Read(msr.RaplPowerUnit, 0)
	if err != nil {
		return nil, fmt.Errorf("core: reading RAPL power unit: %w", err)
	}
	return &Profiler{dev: dev, cores: cores, unitJ: msr.EnergyUnitJoules(raw)}, nil
}

func (p *Profiler) readCounters() (instr, tor uint64, energy uint32, err error) {
	for c := 0; c < p.cores; c++ {
		v, err := p.dev.Read(msr.IA32FixedCtr0, c)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("core: fixed counter core %d: %w", c, err)
		}
		instr += v
	}
	local, err := p.dev.Read(msr.TorInsertMissLocal, 0)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: TOR local: %w", err)
	}
	remote, err := p.dev.Read(msr.TorInsertMissRemote, 0)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: TOR remote: %w", err)
	}
	tor = local + remote
	e, err := p.dev.Read(msr.PkgEnergyStatus, 0)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("core: RAPL energy: %w", err)
	}
	return instr, tor, uint32(e), nil
}

// Reset re-primes the baseline; the daemon calls it when its warmup ends so
// cold-start noise never reaches the classifier (§4.1).
func (p *Profiler) Reset() error {
	instr, tor, energy, err := p.readCounters()
	if err != nil {
		return err
	}
	p.lastInstr, p.lastTor, p.lastEnergy = instr, tor, energy
	p.primed = true
	return nil
}

// Sample returns the TIPI/JPI of the interval since the previous Sample (or
// Reset). The first call after construction primes the baseline and
// returns OK == false.
func (p *Profiler) Sample() (Sample, error) {
	instr, tor, energy, err := p.readCounters()
	if err != nil {
		return Sample{}, err
	}
	if !p.primed {
		p.lastInstr, p.lastTor, p.lastEnergy = instr, tor, energy
		p.primed = true
		return Sample{}, nil
	}
	dInstr := instr - p.lastInstr
	dTor := tor - p.lastTor
	dJ := float64(energy-p.lastEnergy) * p.unitJ // uint32 wrap-safe
	p.lastInstr, p.lastTor, p.lastEnergy = instr, tor, energy
	if dInstr == 0 {
		return Sample{Joules: dJ}, nil
	}
	return Sample{
		TIPI:   float64(dTor) / float64(dInstr),
		JPI:    dJ / float64(dInstr),
		Instr:  dInstr,
		Tor:    dTor,
		Joules: dJ,
		OK:     true,
	}, nil
}
