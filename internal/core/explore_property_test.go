package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/freq"
	"repro/internal/tipi"
)

// unimodalCurve builds a JPI-by-level curve with a single minimum at the
// given level: strictly decreasing toward it from both sides, which is the
// physical shape §3.2 establishes (energy bathtub between race-to-idle and
// crawl-to-finish).
func unimodalCurve(levels int, minAt freq.Level, r *rand.Rand) []float64 {
	curve := make([]float64, levels)
	// Build outward from the minimum with random positive increments.
	curve[minAt] = 1 + r.Float64()
	for l := int(minAt) - 1; l >= 0; l-- {
		curve[l] = curve[l+1] + 0.05 + r.Float64()*0.5
	}
	for l := int(minAt) + 1; l < levels; l++ {
		curve[l] = curve[l-1] + 0.05 + r.Float64()*0.5
	}
	return curve
}

// exploreToCompletion drives find on a curve until the optimum resolves,
// checking structural invariants on the way. Returns the resolved level.
func exploreToCompletion(t *testing.T, grid freq.Grid, curve []float64) freq.Level {
	t.Helper()
	d := newTestDaemonGrid(t, grid)
	n := d.list.Insert(0)
	e := n.CF
	cur := e.RB()
	for i := 0; i < 2000; i++ {
		prevLB, prevRB := e.LB(), e.RB()
		next := d.find(n, domainCF, curve[cur], cur, true)
		if next < 0 || int(next) >= grid.Levels() {
			t.Fatalf("find returned off-grid level %d", next)
		}
		// Bounds never widen.
		if e.LB() < prevLB || e.RB() > prevRB {
			t.Fatalf("bounds widened: [%d,%d] -> [%d,%d]", prevLB, prevRB, e.LB(), e.RB())
		}
		if e.HasOpt() {
			return e.Opt()
		}
		cur = next
	}
	t.Fatal("exploration did not terminate")
	return 0
}

func newTestDaemonGrid(t *testing.T, grid freq.Grid) *Daemon {
	t.Helper()
	d := newTestDaemon(t)
	d.cfGrid = grid
	d.ufGrid = grid
	d.list = tipi.NewList(grid, grid)
	return d
}

// TestFindConvergesNearMinimumQuick: on any unimodal curve over any grid
// size, exploration terminates at a level whose JPI is within two stride
// steps of the true minimum (the stride-two walk plus the Fig. 5 tie-break
// can land one level off; it must never land far away).
func TestFindConvergesNearMinimumQuick(t *testing.T) {
	prop := func(levelsRaw, minRaw uint8, seed int64) bool {
		levels := 4 + int(levelsRaw%16) // grids of 4..19 levels
		minAt := freq.Level(int(minRaw) % levels)
		grid := freq.Grid{Min: 10, Max: freq.Ratio(10 + levels - 1)}
		curve := unimodalCurve(levels, minAt, rand.New(rand.NewSource(seed)))
		var got freq.Level
		tt := &testing.T{}
		got = exploreToCompletion(tt, grid, curve)
		if tt.Failed() {
			return false
		}
		diff := int(got) - int(minAt)
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestFindVisitsOnlyBoundedLevels: the exploration never asks the machine
// to run outside the current bounds (performance protection).
func TestFindVisitsOnlyBoundedLevels(t *testing.T) {
	grid := freq.Grid{Min: 10, Max: 21}
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		minAt := freq.Level(r.Intn(grid.Levels()))
		curve := unimodalCurve(grid.Levels(), minAt, r)
		d := newTestDaemonGrid(t, grid)
		n := d.list.Insert(0)
		e := n.CF
		cur := e.RB()
		for i := 0; i < 2000 && !e.HasOpt(); i++ {
			if cur < e.LB() || cur > e.RB() {
				t.Fatalf("trial %d: running at level %d outside bounds [%d,%d]",
					trial, cur, e.LB(), e.RB())
			}
			cur = d.find(n, domainCF, curve[cur], cur, true)
		}
	}
}

// TestFindOptWithinSeededBounds: when §4.4 seeding narrows a node before
// exploration starts, the resolved optimum stays within those bounds.
func TestFindOptWithinSeededBoundsQuick(t *testing.T) {
	grid := freq.Grid{Min: 10, Max: 21}
	prop := func(lbRaw, rbRaw uint8, seed int64) bool {
		lb := freq.Level(int(lbRaw) % grid.Levels())
		rb := freq.Level(int(rbRaw) % grid.Levels())
		if lb > rb {
			lb, rb = rb, lb
		}
		d := newTestDaemon(t)
		d.cfGrid = grid
		d.list = tipi.NewList(grid, grid)
		n := d.list.Insert(0)
		n.CF.SetBounds(lb, rb)
		levels := int64(grid.Levels())
		minAt := freq.Level(((seed % levels) + levels) % levels)
		curve := unimodalCurve(grid.Levels(), minAt, rand.New(rand.NewSource(seed)))
		cur := n.CF.RB()
		for i := 0; i < 2000 && !n.CF.HasOpt(); i++ {
			cur = d.find(n, domainCF, curve[cur], cur, true)
		}
		opt := n.CF.Opt()
		return n.CF.HasOpt() && opt >= lb && opt <= rb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
