package stats

import (
	"math"
	"sync"
)

// Log-bucket geometry. Latencies in this system span nine orders of
// magnitude (sub-microsecond cache hits to multi-minute paper-scale
// sweeps), so buckets are log-spaced: histBucketsPerDecade buckets per
// factor of ten, covering [histMin, histMax) seconds, plus an underflow
// bucket below histMin and an overflow bucket at the top. The geometry is
// fixed so any two Histograms are mergeable bucket-by-bucket.
const (
	histBucketsPerDecade = 5
	histMinExp           = -9 // 1 ns
	histMaxExp           = 4  // 10 000 s
	histBuckets          = (histMaxExp-histMinExp)*histBucketsPerDecade + 2
)

// histBounds[i] is the inclusive upper bound of bucket i; the last bucket
// is unbounded (+Inf).
var histBounds = func() []float64 {
	b := make([]float64, histBuckets)
	for i := 0; i < histBuckets-1; i++ {
		b[i] = math.Pow(10, float64(histMinExp)+float64(i)/histBucketsPerDecade)
	}
	b[histBuckets-1] = math.Inf(1)
	return b
}()

// Histogram is a fixed-geometry log-bucketed latency histogram, safe for
// concurrent use. Observations are in seconds. Quantiles are approximate:
// the returned value is the upper bound of the bucket holding the
// quantile, so it is an overestimate by at most one bucket ratio
// (10^(1/5) ≈ 1.585×) — see Quantile. Unlike a sliding window it never
// forgets, so /v1/stats and /metrics report from the same full-lifetime
// distribution.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	sum    float64
	count  uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex returns the bucket whose (lo, hi] range contains v.
func bucketIndex(v float64) int {
	if v <= histBounds[0] {
		return 0
	}
	// exact: log10(v) positioned on the bucket grid, then corrected for
	// float error against the real bounds.
	i := int(math.Ceil((math.Log10(v) - histMinExp) * histBucketsPerDecade))
	if i < 0 {
		i = 0
	}
	if i > histBuckets-1 {
		i = histBuckets - 1
	}
	for i > 0 && v <= histBounds[i-1] {
		i--
	}
	for i < histBuckets-1 && v > histBounds[i] {
		i++
	}
	return i
}

// Observe records one value (seconds). NaN and negative values are
// dropped: a negative latency is clock skew, not data.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		return
	}
	i := bucketIndex(v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations in seconds.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns an upper bound on the q-th quantile (0 ≤ q ≤ 1): the
// upper bound of the bucket the quantile falls in. The error is one-sided
// and bounded — true ≤ returned ≤ true × 10^(1/histBucketsPerDecade) —
// except in the overflow bucket, where the lower edge of the bucket is
// returned. An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i == histBuckets-1 {
				// Overflow bucket: +Inf would be useless; report the
				// bucket's finite lower edge.
				return histBounds[histBuckets-2]
			}
			return histBounds[i]
		}
	}
	return histBounds[histBuckets-2]
}

// Merge adds o's observations into h. Both histograms share the package's
// fixed bucket geometry, so the merge is exact.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o == h {
		return
	}
	o.mu.Lock()
	counts := o.counts
	sum, count := o.sum, o.count
	o.mu.Unlock()
	h.mu.Lock()
	for i, c := range counts {
		h.counts[i] += c
	}
	h.sum += sum
	h.count += count
	h.mu.Unlock()
}

// HistogramBucket is one cumulative bucket of a snapshot: Count is the
// number of observations ≤ Le (Prometheus "le" semantics).
type HistogramBucket struct {
	Le    float64
	Count uint64
}

// HistogramSnapshot is a point-in-time copy of a histogram in the
// cumulative form Prometheus exposition wants. Buckets are strictly
// increasing in Le and non-decreasing in Count; the last bucket is
// le=+Inf with Count == Count(total).
type HistogramSnapshot struct {
	Buckets []HistogramBucket
	Sum     float64
	Count   uint64
}

// Snapshot returns the cumulative-bucket view, skipping leading and
// trailing all-empty buckets (the +Inf bucket is always kept) to keep
// exposition compact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	counts := h.counts
	snap := HistogramSnapshot{Sum: h.sum, Count: h.count}
	h.mu.Unlock()
	var cum uint64
	lastNonEmpty := -1
	for i, c := range counts {
		if c > 0 {
			lastNonEmpty = i
		}
	}
	for i, c := range counts {
		cum += c
		// Keep one zero bucket before the first data (a proper lower
		// fence) and everything up to the last non-empty; always keep +Inf.
		keep := i == histBuckets-1 || (i <= lastNonEmpty+1 && (cum > 0 || i+1 < histBuckets && counts[i+1] > 0))
		if keep {
			snap.Buckets = append(snap.Buckets, HistogramBucket{Le: histBounds[i], Count: cum})
		}
	}
	return snap
}
