package stats

import (
	"math"
	"sort"
	"testing"
)

// TestHistogramBucketBoundaries pins the log-bucket geometry: bounds are
// strictly increasing, span 1 ns to 10 000 s with histBucketsPerDecade
// buckets per decade, and every observation lands in the bucket whose
// (lo, hi] range contains it.
func TestHistogramBucketBoundaries(t *testing.T) {
	if got := len(histBounds); got != histBuckets {
		t.Fatalf("len(histBounds) = %d, want %d", got, histBuckets)
	}
	for i := 1; i < len(histBounds); i++ {
		if histBounds[i] <= histBounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %g <= %g", i, histBounds[i], histBounds[i-1])
		}
	}
	if histBounds[0] != 1e-9 {
		t.Errorf("lowest bound = %g, want 1e-9", histBounds[0])
	}
	if !math.IsInf(histBounds[len(histBounds)-1], 1) {
		t.Errorf("last bound = %g, want +Inf", histBounds[len(histBounds)-1])
	}
	// One decade apart must be exactly histBucketsPerDecade buckets apart.
	if d := bucketIndex(1.0) - bucketIndex(0.1); d != histBucketsPerDecade {
		t.Errorf("buckets per decade = %d, want %d", d, histBucketsPerDecade)
	}
	// Placement: v must satisfy lo < v <= hi for its bucket.
	for _, v := range []float64{0, 1e-12, 1e-9, 2.3e-7, 1e-6, 4.2e-3, 0.5, 1, 60, 9999, 1e4, 1e7} {
		i := bucketIndex(v)
		if v > histBounds[i] {
			t.Errorf("bucketIndex(%g) = %d but v > upper bound %g", v, i, histBounds[i])
		}
		if i > 0 && v <= histBounds[i-1] {
			t.Errorf("bucketIndex(%g) = %d but v <= lower bound %g", v, i, histBounds[i-1])
		}
	}
	// A value sitting exactly on a bound belongs to that bound's bucket
	// (le semantics).
	for i, b := range histBounds[:len(histBounds)-1] {
		if got := bucketIndex(b); got != i {
			t.Errorf("bucketIndex(bound %g) = %d, want %d", b, got, i)
		}
	}
}

// TestHistogramQuantileErrorBound verifies the documented one-sided
// error: true ≤ Quantile(q) ≤ true × 10^(1/histBucketsPerDecade), for
// values inside the bucketed range.
func TestHistogramQuantileErrorBound(t *testing.T) {
	h := NewHistogram()
	var xs []float64
	v := 1e-6
	for i := 0; i < 500; i++ {
		xs = append(xs, v)
		h.Observe(v)
		v *= 1.03 // spans ~6 decades
	}
	sort.Float64s(xs)
	ratio := math.Pow(10, 1.0/histBucketsPerDecade)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		got := h.Quantile(q)
		rank := int(math.Ceil(q * float64(len(xs))))
		if rank < 1 {
			rank = 1
		}
		truth := xs[rank-1]
		if got < truth || got > truth*ratio*1.0000001 {
			t.Errorf("Quantile(%g) = %g outside [%g, %g]", q, got, truth, truth*ratio)
		}
	}
	if h.Quantile(0.5) > h.Quantile(0.95) {
		t.Error("quantiles must be monotone in q")
	}
}

func TestHistogramEmptyAndEdges(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(math.NaN())
	h.Observe(-1)
	if h.Count() != 0 {
		t.Error("NaN and negative observations must be dropped")
	}
	h.Observe(1e9) // overflow bucket
	if got := h.Quantile(1); math.IsInf(got, 1) || got <= 0 {
		t.Errorf("overflow quantile = %g, want the finite top edge", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Observe(1e-3)
		b.Observe(1.0)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	if got, want := a.Sum(), 100*1e-3+100*1.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("merged sum = %g, want %g", got, want)
	}
	// Half the mass at 1 ms, half at 1 s: the median reads from the low
	// mode, the p95 from the high one.
	if q := a.Quantile(0.5); q > 2e-3 {
		t.Errorf("merged p50 = %g, want ~1e-3", q)
	}
	if q := a.Quantile(0.95); q < 0.5 {
		t.Errorf("merged p95 = %g, want ~1", q)
	}
	a.Merge(nil)
	a.Merge(a) // self-merge must not deadlock or double
	if a.Count() != 200 {
		t.Errorf("count after nil/self merge = %d, want 200", a.Count())
	}
}

// TestHistogramSnapshotCumulative pins the Prometheus contract: buckets
// strictly increasing in Le, non-decreasing (monotone) in Count, ending
// at le=+Inf with the total count.
func TestHistogramSnapshotCumulative(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{1e-6, 1e-6, 3e-4, 0.02, 0.02, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("snapshot count = %d, want 6", s.Count)
	}
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Le <= s.Buckets[i-1].Le {
			t.Errorf("bucket Le not increasing at %d", i)
		}
		if s.Buckets[i].Count < s.Buckets[i-1].Count {
			t.Errorf("bucket counts not monotone at %d: %d < %d", i, s.Buckets[i].Count, s.Buckets[i-1].Count)
		}
	}
	last := s.Buckets[len(s.Buckets)-1]
	if !math.IsInf(last.Le, 1) || last.Count != s.Count {
		t.Errorf("last bucket = {%g %d}, want {+Inf %d}", last.Le, last.Count, s.Count)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %g, want 0", got)
	}
	for _, p := range []float64{-10, 0, 33, 50, 100, 400} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Errorf("Percentile([7], %g) = %g, want 7", p, got)
		}
	}
	xs := []float64{3, 1, 2}
	if got := Percentile(xs, -5); got != 1 {
		t.Errorf("p<0 must clamp to min, got %g", got)
	}
	if got := Percentile(xs, 250); got != 3 {
		t.Errorf("p>100 must clamp to max, got %g", got)
	}
	if got := Percentile(xs, math.NaN()); !math.IsNaN(got) {
		t.Errorf("Percentile(xs, NaN) = %g, want NaN", got)
	}
}
