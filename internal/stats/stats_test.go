package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestMeanPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mean(nil) should panic")
		}
	}()
	Mean(nil)
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almost(got, math.Sqrt(32.0/7)) {
		t.Errorf("StdDev = %g", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single sample stddev must be 0")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{10, 12, 11, 13, 9, 11}
	want := 1.96 * StdDev(xs) / math.Sqrt(6)
	if got := CI95(xs); !almost(got, want) {
		t.Errorf("CI95 = %g, want %g", got, want)
	}
	if CI95([]float64{1}) != 0 {
		t.Error("CI95 of one sample must be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !almost(got, 4) {
		t.Errorf("GeoMean = %g, want 4", got)
	}
}

func TestGeoMeanPanicsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GeoMean with zero should panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestSavingsAndSlowdown(t *testing.T) {
	if got := SavingsPercent(100, 80); !almost(got, 20) {
		t.Errorf("SavingsPercent = %g, want 20", got)
	}
	if got := SlowdownPercent(100, 103); !almost(got, 3) {
		t.Errorf("SlowdownPercent = %g, want 3", got)
	}
}

func TestEDP(t *testing.T) {
	if got := EDP(50, 2); !almost(got, 100) {
		t.Errorf("EDP = %g, want 100", got)
	}
}

// Property: geomean lies between min and max; mean is translation-covariant.
func TestStatsPropertiesQuick(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		if g < lo-1e-9 || g > hi+1e-9 {
			return false
		}
		shifted := make([]float64, len(xs))
		for i := range xs {
			shifted[i] = xs[i] + 7
		}
		return almost(Mean(shifted), Mean(xs)+7)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3} // unsorted on purpose
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v, %g) = %g, want %g", xs, c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %g, want 0", got)
	}
	if xs[0] != 5 {
		t.Error("Percentile must not reorder its input")
	}
	single := []float64{7}
	if got := Percentile(single, 95); got != 7 {
		t.Errorf("single-element p95 = %g, want 7", got)
	}
}
