// Package stats provides the small statistical toolkit the paper's
// evaluation uses: means with 95% confidence intervals over repeated runs,
// geometric means for cross-benchmark aggregation, and the energy-delay
// product.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean. It panics on an empty slice: an
// experiment with zero repetitions is a harness bug.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator); zero for
// fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CI95 returns the half-width of the 95% confidence interval of the mean,
// using the normal approximation the paper's error bars use.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// GeoMean returns the geometric mean. All inputs must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: geomean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean requires positive values, got %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. The input is not modified.
//
// Edge behavior, pinned by TestPercentileEdgeCases:
//   - an empty slice returns 0 (callers treat "no samples yet" as zero
//     latency rather than NaN, which would poison JSON snapshots);
//   - a single-element slice returns that element for every p;
//   - p below 0 clamps to the minimum, p above 100 to the maximum;
//   - a NaN p returns NaN (an impossible rank must not read as data).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if math.IsNaN(p) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// EDP returns the energy-delay product.
func EDP(joules, seconds float64) float64 { return joules * seconds }

// SavingsPercent expresses how much smaller value is than baseline, in
// percent: positive means value improved on (is below) the baseline.
func SavingsPercent(baseline, value float64) float64 {
	return 100 * (1 - value/baseline)
}

// SlowdownPercent expresses how much larger value is than baseline, in
// percent: positive means value is slower (above baseline).
func SlowdownPercent(baseline, value float64) float64 {
	return 100 * (value/baseline - 1)
}
