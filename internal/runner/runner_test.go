package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryJob(t *testing.T) {
	var ran [100]atomic.Int32
	err := Pool{Workers: 7}.ForEach(context.Background(), len(ran), func(_ context.Context, i int) error {
		ran[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Errorf("job %d ran %d times, want exactly once", i, got)
		}
	}
}

func TestForEachAggregatesAllErrors(t *testing.T) {
	// Three jobs run concurrently and all fail; every error must appear in
	// the result — the first-error-wins pool this replaced dropped all but
	// one. The barrier guarantees all three are in flight before any fails.
	wantErrs := []error{errors.New("e0"), errors.New("e1"), errors.New("e2")}
	var barrier sync.WaitGroup
	barrier.Add(3)
	err := Pool{Workers: 3}.ForEach(context.Background(), 3, func(_ context.Context, i int) error {
		barrier.Done()
		barrier.Wait()
		return wantErrs[i]
	})
	if err == nil {
		t.Fatal("want aggregated error, got nil")
	}
	for _, want := range wantErrs {
		if !errors.Is(err, want) {
			t.Errorf("aggregated error %v should wrap %v", err, want)
		}
	}
	// Index order: e0 before e1 before e2.
	s := err.Error()
	if strings.Index(s, "e0") > strings.Index(s, "e1") || strings.Index(s, "e1") > strings.Index(s, "e2") {
		t.Errorf("errors not in index order: %q", s)
	}
}

func TestForEachFailureStopsDispatch(t *testing.T) {
	var started atomic.Int32
	err := Pool{Workers: 1}.ForEach(context.Background(), 1000, func(_ context.Context, i int) error {
		started.Add(1)
		if i == 4 {
			return fmt.Errorf("boom at %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := started.Load(); n > 6 {
		t.Errorf("%d jobs started after failure at job 4; dispatch should stop", n)
	}
}

func TestForEachExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	var once sync.Once
	err := Pool{Workers: 2}.ForEach(ctx, 1000, func(ctx context.Context, i int) error {
		started.Add(1)
		once.Do(cancel)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in %v", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Error("cancellation did not stop dispatch")
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const bound = 3
	var inFlight, peak atomic.Int32
	err := Pool{Workers: bound}.ForEach(context.Background(), 64, func(_ context.Context, i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > bound {
		t.Errorf("peak concurrency %d exceeds bound %d", p, bound)
	}
}

func TestGo(t *testing.T) {
	var a, b atomic.Bool
	err := Pool{}.Go(context.Background(),
		func(context.Context) error { a.Store(true); return nil },
		func(context.Context) error { b.Store(true); return errors.New("second failed") },
	)
	if !a.Load() || !b.Load() {
		t.Error("not all functions ran")
	}
	if err == nil || !strings.Contains(err.Error(), "second failed") {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := (Pool{}).ForEach(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
}
