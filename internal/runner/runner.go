// Package runner provides the bounded-concurrency execution pool shared by
// every harness that fans independent simulations out across host CPUs: the
// experiment grids (policy × benchmark × repetition) and the cluster
// driver's per-rank supersteps all run through one Pool instead of each
// maintaining a private goroutine pool.
package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool executes independent jobs with bounded concurrency. The zero value
// is ready to use and sizes itself to GOMAXPROCS.
type Pool struct {
	// Workers bounds concurrent jobs; <= 0 means GOMAXPROCS.
	Workers int
}

// ForEach runs fn(ctx, i) for every index in [0, n), at most Workers at a
// time. Unlike a first-error-wins pool, every error that occurs is kept and
// returned joined in index order — no failure is silently dropped. The
// first failure cancels the derived context and stops dispatching new
// jobs (jobs never started contribute no error); jobs already running may
// observe the cancellation through ctx and finish early. If the caller's
// context is cancelled, its error is included in the result.
func (p Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for inner.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(inner, i); err != nil {
					errs[i] = err // index-owned slot: no lock needed
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	var all []error
	for _, err := range errs {
		if err != nil {
			all = append(all, err)
		}
	}
	if err := ctx.Err(); err != nil {
		all = append(all, err)
	}
	return errors.Join(all...)
}

// Go runs every function in fns concurrently on the pool, aggregating
// errors the same way ForEach does.
func (p Pool) Go(ctx context.Context, fns ...func(ctx context.Context) error) error {
	return p.ForEach(ctx, len(fns), func(ctx context.Context, i int) error {
		return fns[i](ctx)
	})
}
