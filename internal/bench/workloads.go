package bench

import (
	"math/rand"

	"repro/internal/sched"
	"repro/internal/workload"
)

// remoteFrac is the MISS_REMOTE share under numactl --interleave on the
// paper's two-socket machine: roughly the remote socket's share of pages.
const remoteFrac = 0.35

// Nominal instruction budgets at Scale == 1, sized so Default executions
// take approximately Table 1's wall times on the simulated machine (the
// per-benchmark IPS estimates come from the memory-model equilibrium).
const (
	utsTotalInstr    = 5.1e12  // 69.9 s at ≈73 Ginstr/s
	sorTotalInstr    = 1.37e12 // 69 s at ≈20 Ginstr/s
	heatTotalInstr   = 1.26e12 // 76.6 s at ≈16.4 Ginstr/s
	miniFETotalInstr = 7.6e11  // 78.5 s at ≈9.7 Ginstr/s
	hpccgTotalInstr  = 5.4e11  // 60 s at ≈9 Ginstr/s
	amgTotalInstr    = 4.8e11  // 63.7 s at ≈7.6 Ginstr/s
)

// scaledIters shrinks an iteration count by the scale factor, keeping at
// least two iterations so phase structure survives.
func scaledIters(iters int, scale float64) int {
	n := int(float64(iters)*scale + 0.5)
	if n < 2 {
		n = 2
	}
	return n
}

// ---------------------------------------------------------------- UTS ----

// utsSpec is Unbalanced Tree Search: a single finish scope whose tasks
// expand into random numbers of children until a node budget is exhausted,
// giving the extreme load imbalance the benchmark exists to create. Node
// evaluation is a SHA-1-style hash — pure compute, nearly no LLC traffic
// (TIPI 0.000–0.004).
func utsSpec() Spec {
	return Spec{
		Name:         "UTS",
		Style:        IrregularTasks,
		TIPILow:      0.000,
		TIPIHigh:     0.004,
		PaperSeconds: 69.9,
		// §5.2 discards UTS for HClib: it carries its own work stealing.
		HClibPort: false,
		build: func(p Params) workload.Source {
			const nodeInstr = 1e6
			budget := int(utsTotalInstr * p.Scale / nodeInstr)
			nodeSeg := workload.Segment{
				Instructions: nodeInstr,
				MissPerInstr: 0.0015,
				IPC:          1.6,
				RemoteFrac:   remoteFrac,
				Exposure:     1.0,
			}
			// All nodes share one Expand closure over the common budget —
			// millions of tasks per run, so per-node closure allocations
			// would dominate the scheduler's footprint.
			var expand func(r *rand.Rand) []sched.Task
			mkNode := func() sched.Task {
				return sched.Task{Seg: nodeSeg, Expand: expand}
			}
			expand = func(r *rand.Rand) []sched.Task {
				if budget <= 0 {
					return nil
				}
				// Geometric-flavoured branching: 0–7 children with a long
				// tail of leaves, the UTS imbalance source.
				n := 0
				if r.Float64() < 0.30 {
					n = 1 + r.Intn(7)
				}
				if n > budget {
					n = budget
				}
				budget -= n
				kids := make([]sched.Task, n)
				for i := range kids {
					kids[i] = mkNode()
				}
				return kids
			}
			// UTS trees hang off a root with a large fixed branching factor
			// (b0); the interior branching process alone is near-critical
			// and would go extinct under unlucky seeds. 200 root subtrees
			// make whole-tree extinction vanishingly unlikely while
			// preserving the subtree-size imbalance.
			roots := make([]sched.Task, 10*p.Cores)
			budget -= len(roots)
			for i := range roots {
				roots[i] = mkNode()
			}
			return newTaskRuntime(p, sched.SingleRound(roots))
		},
	}
}

// ------------------------------------------------------------ SOR/Heat ----

// stencilParams captures what distinguishes the two stencil benchmarks.
type stencilParams struct {
	name         string
	totalInstr   float64
	iters        int
	paperSeconds float64
	tipiLow      float64
	tipiHigh     float64
	seg          workload.Segment // per-tile densities
	mJitter      float64          // per-iteration TIPI wobble
}

func sorParams() stencilParams {
	return stencilParams{
		name:         "SOR",
		totalInstr:   sorTotalInstr,
		iters:        200,
		paperSeconds: 69.0,
		tipiLow:      0.024,
		tipiHigh:     0.028,
		seg: workload.Segment{
			MissPerInstr: 0.026,
			IPC:          0.45, // dependent FP updates with the ω relaxation
			RemoteFrac:   remoteFrac,
			Exposure:     0.15, // red-black sweeps prefetch almost perfectly
		},
		mJitter: 0.001,
	}
}

func heatParams() stencilParams {
	return stencilParams{
		name:         "Heat",
		totalInstr:   heatTotalInstr,
		iters:        200,
		paperSeconds: 76.6,
		tipiLow:      0.056,
		tipiHigh:     0.076,
		seg: workload.Segment{
			MissPerInstr: 0.066,
			IPC:          2.0, // independent Jacobi updates superscalar well
			RemoteFrac:   remoteFrac,
			Exposure:     0.6, // three streams defeat part of the prefetch
		},
		mJitter: 0.004,
	}
}

// stencilTiles is the per-iteration decomposition granularity. It is fine
// enough (≈2000 leaf tasks per finish scope for 20 cores) that the
// end-of-round straggler tail is a negligible slice of each Tinv sample;
// coarse leaves would inject idle-time spikes into the daemon's JPI
// averages that swamp the few-percent deltas exploration compares.
const stencilTiles = 4096

// stencilDAG builds one iteration's task tree over the tile range, in the
// Chen et al. construction of Fig. 1: regular variants split the range
// evenly (binary, degree-3 interior counting the parent edge), irregular
// variants split it unevenly into three parts so subtree sizes — and hence
// steal targets — vary wildly.
func stencilDAG(style Style, leaf workload.Segment, spawn workload.Segment, lo, hi int) sched.Task {
	n := hi - lo
	const leafTiles = 2
	if n <= leafTiles {
		seg := leaf
		seg.Instructions *= float64(n)
		return sched.Task{Seg: seg}
	}
	return sched.Task{
		Seg: spawn,
		Expand: func(r *rand.Rand) []sched.Task {
			if style == RegularTasks {
				mid := lo + n/2
				return []sched.Task{
					stencilDAG(style, leaf, spawn, lo, mid),
					stencilDAG(style, leaf, spawn, mid, hi),
				}
			}
			// Irregular: 1/6, 1/3, remainder — skewed ternary.
			a := lo + max(1, n/6)
			b := a + max(1, n/3)
			if b >= hi {
				b = hi - 1
			}
			return []sched.Task{
				stencilDAG(style, leaf, spawn, lo, a),
				stencilDAG(style, leaf, spawn, a, b),
				stencilDAG(style, leaf, spawn, b, hi),
			}
		},
	}
}

// stencilTaskSpec builds the irt/rt variants of a stencil benchmark.
func stencilTaskSpec(sp stencilParams, style Style) Spec {
	suffix := "-irt"
	if style == RegularTasks {
		suffix = "-rt"
	}
	return Spec{
		Name:         sp.name + suffix,
		Style:        style,
		TIPILow:      sp.tipiLow,
		TIPIHigh:     sp.tipiHigh,
		PaperSeconds: sp.paperSeconds,
		HClibPort:    true,
		build: func(p Params) workload.Source {
			iters := scaledIters(sp.iters, p.Scale)
			perIter := sp.totalInstr * p.Scale / float64(iters)
			leaf := sp.seg
			leaf.Instructions = perIter / stencilTiles
			spawn := workload.Segment{
				Instructions: 2000,
				MissPerInstr: 0.002,
				IPC:          1.5,
				RemoteFrac:   remoteFrac,
			}
			jitterRng := rand.New(rand.NewSource(p.Seed ^ 0x5717))
			gen := func(round int) ([]sched.Task, bool) {
				if round >= iters {
					return nil, false
				}
				l := leaf
				l.MissPerInstr += (jitterRng.Float64()*2 - 1) * sp.mJitter
				return []sched.Task{stencilDAG(style, l, spawn, 0, stencilTiles)}, true
			}
			return newTaskRuntime(p, gen)
		},
	}
}

func sorSpec(style Style) Spec  { return stencilTaskSpec(sorParams(), style) }
func heatSpec(style Style) Spec { return stencilTaskSpec(heatParams(), style) }

// stencilWSSpec builds the work-sharing variant: each iteration is a main
// sweep region plus a small residual-reduction region with a much lower
// TIPI, which is where the ws variants' extra slabs come from (Table 1:
// SOR-ws 3 slabs, Heat-ws 11).
func stencilWSSpec(sp stencilParams, tipiLow float64, redJitter float64) Spec {
	return Spec{
		Name:         sp.name + "-ws",
		Style:        WorkSharing,
		TIPILow:      tipiLow,
		TIPIHigh:     sp.tipiHigh,
		PaperSeconds: sp.paperSeconds,
		HClibPort:    true,
		build: func(p Params) workload.Source {
			iters := scaledIters(sp.iters, p.Scale)
			perIter := sp.totalInstr * p.Scale / float64(iters)
			const sweepFrac = 0.95
			chunks := 16 * p.Cores
			sweep := sp.seg
			sweep.Instructions = perIter * sweepFrac / float64(chunks)
			reduce := workload.Segment{
				Instructions: perIter * (1 - sweepFrac) / float64(p.Cores),
				MissPerInstr: 0.014,
				IPC:          1.2,
				RemoteFrac:   remoteFrac,
				Exposure:     0.4,
			}
			jitterRng := rand.New(rand.NewSource(p.Seed ^ 0x30f1))
			// The residual reduction runs every fourth iteration (a
			// convergence check), so the sweep slab dominates long
			// uninterrupted stretches the way the paper's ws variants do
			// (one frequent slab despite many distinct ones).
			const reduceEvery = 4
			gen := func(step int) (sched.Region, bool) {
				iter, phase := step/2, step%2
				if iter >= iters {
					return sched.Region{}, false
				}
				if phase == 0 {
					s := sweep
					s.MissPerInstr += (jitterRng.Float64()*2 - 1) * sp.mJitter
					return sched.Region{Seg: s, Chunks: chunks, JitterFrac: 0.05}, true
				}
				if iter%reduceEvery != 0 {
					// Skip the reduction this iteration: an empty barrier
					// region is not expressible, so emit a vanishing chunk.
					return sched.Region{Seg: workload.Segment{Instructions: 1, IPC: 2}, Chunks: 1}, true
				}
				r := reduce
				r.Instructions *= reduceEvery // same total reduction work
				r.MissPerInstr += (jitterRng.Float64()*2 - 1) * redJitter
				return sched.Region{Seg: r, Chunks: p.Cores, JitterFrac: 0.05}, true
			}
			return sched.NewWorkSharing(p.Cores, gen, p.Seed)
		},
	}
}

func sorWSSpec() Spec {
	sp := sorParams()
	sp.tipiLow = 0.012
	return stencilWSSpec(sp, 0.012, 0.002)
}

func heatWSSpec() Spec {
	sp := heatParams()
	sp.mJitter = 0.006 // Table 1: Heat-ws shows 11 distinct slabs
	return stencilWSSpec(sp, 0.012, 0.006)
}
