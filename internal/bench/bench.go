// Package bench implements the ten benchmarks of the paper's Table 1 as
// workload generators for the simulated machine: UTS, three SOR variants,
// three Heat variants, MiniFE, HPCCG and AMG.
//
// Each benchmark is characterised by the quantities Cuttlefish can observe
// — instruction throughput, TOR-insert density (TIPI), prefetch exposure
// and phase structure — and by its concurrency decomposition: irregular
// task DAGs (irt), regular task DAGs (rt, per the Chen et al. construction
// of Fig. 1) or work-sharing loops (ws). The irt/rt variants run on either
// task runtime (OpenMP tasking or HClib work stealing); the ws variants and
// the three mini-applications are work-sharing only, matching §5.2's
// porting scope.
//
// The per-benchmark densities are calibrated to land inside Table 1's TIPI
// ranges; total instruction budgets are sized so a Default execution takes
// roughly the paper's wall time multiplied by the caller's scale factor.
package bench

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/workload"
)

// Style is the concurrency decomposition of Table 1.
type Style string

const (
	IrregularTasks Style = "irregular-tasks"
	RegularTasks   Style = "regular-tasks"
	WorkSharing    Style = "work-sharing"
)

// Model selects the parallel runtime implementation (§5.2): the OpenMP
// runtime or the HClib async–finish library. Both task models execute the
// same DAG; they differ in scheduler constants (HClib's steal path is
// leaner than libomp's task queues), which is exactly the paper's point —
// Cuttlefish behaves the same under either.
type Model string

const (
	OpenMP Model = "openmp"
	HClib  Model = "hclib"
)

// Spec describes one benchmark.
type Spec struct {
	// Name as the paper spells it, e.g. "Heat-irt".
	Name string
	// Style is the concurrency decomposition.
	Style Style
	// TIPILow and TIPIHigh are Table 1's reported TIPI range, used for
	// validation and reporting.
	TIPILow, TIPIHigh float64
	// PaperSeconds is Table 1's Default-execution wall time.
	PaperSeconds float64
	// HClibPort reports whether §5.2 ported this benchmark to HClib.
	HClibPort bool

	build func(p Params) workload.Source
}

// Params parametrise benchmark construction.
type Params struct {
	Cores int
	// Scale multiplies the instruction budget: 1.0 reproduces the paper's
	// 60–80 s runs, smaller values shrink them proportionally.
	Scale float64
	Seed  int64
	Model Model
}

// Build instantiates the benchmark's workload source.
func (s Spec) Build(p Params) (workload.Source, error) {
	if p.Cores <= 0 {
		return nil, fmt.Errorf("bench: cores must be positive, got %d", p.Cores)
	}
	if p.Scale <= 0 {
		return nil, fmt.Errorf("bench: scale must be positive, got %g", p.Scale)
	}
	if p.Model == "" {
		p.Model = OpenMP
	}
	if p.Model == HClib && !s.HClibPort {
		return nil, fmt.Errorf("bench: %s has no HClib port (§5.2)", s.Name)
	}
	if p.Model != OpenMP && p.Model != HClib {
		return nil, fmt.Errorf("bench: unknown model %q", p.Model)
	}
	return s.build(p), nil
}

// stealOverhead returns the runtime's steal-path cost in instructions.
func stealOverhead(m Model) float64 {
	if m == HClib {
		return 300 // lean work-first deques
	}
	return 700 // libomp task queue locking
}

// newTaskRuntime builds the work-stealing runtime used for both task
// models, with model-specific overhead constants.
func newTaskRuntime(p Params, gen sched.RoundGen) *sched.WorkStealing {
	ws := sched.NewWorkStealing(p.Cores, gen, p.Seed)
	ws.StealOverheadInstr = stealOverhead(p.Model)
	return ws
}

// registry holds all ten benchmarks in Table 1 order.
var registry = []Spec{
	utsSpec(),
	sorSpec(IrregularTasks),
	sorSpec(RegularTasks),
	sorWSSpec(),
	heatSpec(IrregularTasks),
	heatSpec(RegularTasks),
	heatWSSpec(),
	miniFESpec(),
	hpccgSpec(),
	amgSpec(),
}

// All returns the benchmark specs in Table 1 order.
func All() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// Get looks a benchmark up by its Table 1 name.
func Get(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns all benchmark names in Table 1 order.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}

// HClibNames returns the benchmarks evaluated under HClib in §5.2, in
// Table 1 order.
func HClibNames() []string {
	var out []string
	for _, s := range registry {
		if s.HClibPort {
			out = append(out, s.Name)
		}
	}
	return out
}
