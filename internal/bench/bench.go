// Package bench implements the ten benchmarks of the paper's Table 1 as
// workload generators for the simulated machine: UTS, three SOR variants,
// three Heat variants, MiniFE, HPCCG and AMG.
//
// Each benchmark is characterised by the quantities Cuttlefish can observe
// — instruction throughput, TOR-insert density (TIPI), prefetch exposure
// and phase structure — and by its concurrency decomposition: irregular
// task DAGs (irt), regular task DAGs (rt, per the Chen et al. construction
// of Fig. 1) or work-sharing loops (ws). The irt/rt variants run on either
// task runtime (OpenMP tasking or HClib work stealing); the ws variants and
// the three mini-applications are work-sharing only, matching §5.2's
// porting scope.
//
// The per-benchmark densities are calibrated to land inside Table 1's TIPI
// ranges; total instruction budgets are sized so a Default execution takes
// roughly the paper's wall time multiplied by the caller's scale factor.
package bench

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Style is the concurrency decomposition of Table 1.
type Style string

const (
	IrregularTasks Style = "irregular-tasks"
	RegularTasks   Style = "regular-tasks"
	WorkSharing    Style = "work-sharing"
)

// Model selects the parallel runtime implementation (§5.2): the OpenMP
// runtime or the HClib async–finish library. Both task models execute the
// same DAG; they differ in scheduler constants (HClib's steal path is
// leaner than libomp's task queues), which is exactly the paper's point —
// Cuttlefish behaves the same under either.
type Model string

const (
	OpenMP Model = "openmp"
	HClib  Model = "hclib"
)

// Spec describes one benchmark.
type Spec struct {
	// Name as the paper spells it, e.g. "Heat-irt".
	Name string
	// Style is the concurrency decomposition.
	Style Style
	// TIPILow and TIPIHigh are Table 1's reported TIPI range, used for
	// validation and reporting.
	TIPILow, TIPIHigh float64
	// PaperSeconds is Table 1's Default-execution wall time.
	PaperSeconds float64
	// HClibPort reports whether §5.2 ported this benchmark to HClib.
	HClibPort bool

	build func(p Params) workload.Source
}

// Params parametrise benchmark construction.
type Params struct {
	Cores int
	// Scale multiplies the instruction budget: 1.0 reproduces the paper's
	// 60–80 s runs, smaller values shrink them proportionally.
	Scale float64
	Seed  int64
	Model Model
}

// Build instantiates the benchmark's workload source.
func (s Spec) Build(p Params) (workload.Source, error) {
	if p.Cores <= 0 {
		return nil, fmt.Errorf("bench: cores must be positive, got %d", p.Cores)
	}
	if p.Scale <= 0 {
		return nil, fmt.Errorf("bench: scale must be positive, got %g", p.Scale)
	}
	if p.Model == "" {
		p.Model = OpenMP
	}
	if p.Model == HClib && !s.HClibPort {
		return nil, fmt.Errorf("bench: %s has no HClib port (§5.2)", s.Name)
	}
	if p.Model != OpenMP && p.Model != HClib {
		return nil, fmt.Errorf("bench: unknown model %q", p.Model)
	}
	return s.build(p), nil
}

// stealOverhead returns the runtime's steal-path cost in instructions.
func stealOverhead(m Model) float64 {
	if m == HClib {
		return sched.StealOverheadHClib
	}
	return sched.StealOverheadOpenMP
}

// newTaskRuntime builds the work-stealing runtime used for both task
// models, with model-specific overhead constants.
func newTaskRuntime(p Params, gen sched.RoundGen) *sched.WorkStealing {
	ws := sched.NewWorkStealing(p.Cores, gen, p.Seed)
	ws.StealOverheadInstr = stealOverhead(p.Model)
	return ws
}

// init registers the ten Table 1 benchmarks with the shared scenario
// registry, in Table 1 order. This package holds only the construction
// logic; naming and lookup live in repro/internal/scenario, so the
// benchmarks flow through the same registry the synthetic scenarios and
// user JSON phase programs do — All/Get/Names below are thin views over
// it.
func init() {
	for _, s := range []Spec{
		utsSpec(),
		sorSpec(IrregularTasks),
		sorSpec(RegularTasks),
		sorWSSpec(),
		heatSpec(IrregularTasks),
		heatSpec(RegularTasks),
		heatWSSpec(),
		miniFESpec(),
		hpccgSpec(),
		amgSpec(),
	} {
		scenario.MustRegister(entryOf(s))
	}
}

// entryOf adapts one benchmark to a registry entry. The Spec itself
// rides along as the entry payload so the views below can return it
// without a parallel lookup table.
func entryOf(s Spec) scenario.Entry {
	return scenario.Entry{
		Name:           s.Name,
		Kind:           scenario.KindBench,
		Description:    fmt.Sprintf("Table 1 benchmark, %s, TIPI %.3f-%.3f", s.Style, s.TIPILow, s.TIPIHigh),
		NominalSeconds: s.PaperSeconds,
		Build: func(p scenario.Params) (workload.Source, error) {
			return s.Build(Params{Cores: p.Cores, Scale: p.Scale, Seed: p.Seed, Model: Model(p.Model)})
		},
		Payload: s,
	}
}

// All returns the benchmark specs in Table 1 order (the order this
// package registered them in).
func All() []Spec {
	names := scenario.NamesOf(scenario.KindBench)
	out := make([]Spec, len(names))
	for i, n := range names {
		e, _ := scenario.Get(n)
		out[i] = e.Payload.(Spec)
	}
	return out
}

// Get looks a benchmark up by its Table 1 name — a view over the
// scenario registry restricted to bench-kind entries.
func Get(name string) (Spec, bool) {
	e, ok := scenario.Get(name)
	if !ok || e.Kind != scenario.KindBench {
		return Spec{}, false
	}
	return e.Payload.(Spec), true
}

// Names returns all benchmark names in Table 1 order.
func Names() []string {
	return scenario.NamesOf(scenario.KindBench)
}

// HClibNames returns the benchmarks evaluated under HClib in §5.2, in
// Table 1 order.
func HClibNames() []string {
	var out []string
	for _, s := range All() {
		if s.HClibPort {
			out = append(out, s.Name)
		}
	}
	return out
}
