package bench

import (
	"math/rand"

	"repro/internal/sched"
	"repro/internal/workload"
)

// cgPhase is one work-sharing region inside a conjugate-gradient style
// iteration.
type cgPhase struct {
	frac     float64 // share of the iteration's instructions
	m        float64 // TIPI density
	ipc      float64
	exposure float64
}

// cgSpec builds a CG-shaped mini-application: an optional prologue (matrix
// assembly) followed by iterations of the given phases. The dominant phase
// (SpMV) is long relative to Tinv, so its slab is the "frequent" one the
// daemon optimises (Table 2: MiniFE 0.112–0.116 at 76%, HPCCG 0.120–0.124
// at 76%); the shorter phases and their blends contribute the long tail of
// distinct slabs (Table 1: 16 and 17).
func cgSpec(name string, total float64, iters int, paperSec, tipiLow, tipiHigh float64,
	prologueFrac, prologueM float64, phases []cgPhase) Spec {
	return Spec{
		Name:         name,
		Style:        WorkSharing,
		TIPILow:      tipiLow,
		TIPIHigh:     tipiHigh,
		PaperSeconds: paperSec,
		HClibPort:    false, // §5.2 omits the mini-apps: porting challenges
		build: func(p Params) workload.Source {
			n := scaledIters(iters, p.Scale)
			budget := total * p.Scale
			perIter := budget * (1 - prologueFrac) / float64(n)
			chunks := 16 * p.Cores
			jitterRng := rand.New(rand.NewSource(p.Seed ^ 0x11fe))

			prologueRegions := 4
			if prologueFrac == 0 {
				prologueRegions = 0
			}
			mkPrologue := func(i int) sched.Region {
				return sched.Region{
					Seg: workload.Segment{
						Instructions: budget * prologueFrac / float64(prologueRegions*chunks),
						MissPerInstr: prologueM + 0.01*float64(i),
						IPC:          1.5,
						RemoteFrac:   remoteFrac,
						Exposure:     0.8,
					},
					Chunks:     chunks,
					JitterFrac: 0.10,
				}
			}
			mkPhase := func(ph cgPhase) sched.Region {
				return sched.Region{
					Seg: workload.Segment{
						Instructions: perIter * ph.frac / float64(chunks),
						MissPerInstr: ph.m + (jitterRng.Float64()*2-1)*0.002,
						IPC:          ph.ipc,
						RemoteFrac:   remoteFrac,
						Exposure:     ph.exposure,
					},
					Chunks:     chunks,
					JitterFrac: 0.05,
				}
			}
			gen := func(step int) (sched.Region, bool) {
				if step < prologueRegions {
					return mkPrologue(step), true
				}
				step -= prologueRegions
				iter, phase := step/len(phases), step%len(phases)
				if iter >= n {
					return sched.Region{}, false
				}
				return mkPhase(phases[phase]), true
			}
			return sched.NewWorkSharing(p.Cores, gen, p.Seed)
		},
	}
}

// miniFESpec is the Mantevo finite-element mini-app: assembly then CG.
func miniFESpec() Spec {
	return cgSpec("MiniFE", miniFETotalInstr, 200, 78.5, 0.068, 0.152,
		0.05, 0.07,
		[]cgPhase{
			{frac: 0.70, m: 0.114, ipc: 1.3, exposure: 0.7}, // SpMV
			{frac: 0.10, m: 0.080, ipc: 1.4, exposure: 0.6}, // dot products
			{frac: 0.20, m: 0.130, ipc: 1.3, exposure: 0.7}, // waxpby
		})
}

// hpccgSpec is the HPCCG conjugate-gradients mini-app (no assembly phase
// worth modelling; its TIPI tail comes from the CG vector kernels).
func hpccgSpec() Spec {
	return cgSpec("HPCCG", hpccgTotalInstr, 149, 60.0, 0.060, 0.148,
		0, 0,
		[]cgPhase{
			{frac: 0.75, m: 0.122, ipc: 1.3, exposure: 0.7}, // SpMV
			{frac: 0.08, m: 0.090, ipc: 1.4, exposure: 0.6}, // ddot
			{frac: 0.17, m: 0.135, ipc: 1.3, exposure: 0.7}, // waxpby
		})
}

// amgLevel describes one grid level of the AMG V-cycle: its share of the
// cycle's instructions and its TIPI density. Coarser levels touch less
// data but far more irregularly, so density climbs toward Table 1's 0.332
// ceiling while the time share shrinks — which is why AMG shows 60
// distinct slabs but only two frequent ones (Table 2: 0.144–0.148 at 56%,
// 0.148–0.152 at 25%).
type amgLevel struct {
	frac float64
	m    float64
}

var amgLevels = []amgLevel{
	{frac: 0.52, m: 0.146}, // fine-grid smoothing
	{frac: 0.24, m: 0.150},
	{frac: 0.10, m: 0.175},
	{frac: 0.055, m: 0.210},
	{frac: 0.035, m: 0.250},
	{frac: 0.025, m: 0.290},
	{frac: 0.015, m: 0.325},
}

// amgSpec is the LLNL algebraic multigrid solver: V-cycles over amgLevels,
// with a restriction/prolongation region between levels and per-cycle
// density wobble on the coarse levels.
func amgSpec() Spec {
	return Spec{
		Name:         "AMG",
		Style:        WorkSharing,
		TIPILow:      0.060,
		TIPIHigh:     0.332,
		PaperSeconds: 63.7,
		HClibPort:    false,
		build: func(p Params) workload.Source {
			cycles := scaledIters(22, p.Scale*2) // 22 cycles are few; keep more of them
			perCycle := amgTotalInstr * p.Scale / float64(cycles)
			chunks := 16 * p.Cores
			jitterRng := rand.New(rand.NewSource(p.Seed ^ 0x40a6))
			// Each cycle: for every level, a smoothing region then a small
			// transfer region.
			regionsPerCycle := len(amgLevels) * 2
			gen := func(step int) (sched.Region, bool) {
				cycle, r := step/regionsPerCycle, step%regionsPerCycle
				if cycle >= cycles {
					return sched.Region{}, false
				}
				lvl, kind := r/2, r%2
				l := amgLevels[lvl]
				if kind == 0 { // smoothing
					m := l.m
					if lvl >= 2 {
						m += (jitterRng.Float64()*2 - 1) * 0.012
					}
					return sched.Region{
						Seg: workload.Segment{
							Instructions: perCycle * l.frac * 0.9 / float64(chunks),
							MissPerInstr: m,
							IPC:          1.2,
							RemoteFrac:   remoteFrac,
							Exposure:     0.8,
						},
						Chunks:     chunks,
						JitterFrac: 0.10,
					}, true
				}
				// restriction/prolongation: short, lower density
				return sched.Region{
					Seg: workload.Segment{
						Instructions: perCycle * l.frac * 0.1 / float64(p.Cores),
						MissPerInstr: 0.065 + 0.02*float64(lvl) + (jitterRng.Float64()*2-1)*0.008,
						IPC:          1.3,
						RemoteFrac:   remoteFrac,
						Exposure:     0.75,
					},
					Chunks:     p.Cores,
					JitterFrac: 0.10,
				}, true
			}
			return sched.NewWorkSharing(p.Cores, gen, p.Seed)
		},
	}
}
