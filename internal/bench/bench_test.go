package bench

import (
	"testing"

	"repro/internal/governor"
	"repro/internal/machine"
)

// runDefault executes a spec under the Default environment (performance
// governor, firmware Auto uncore) and returns elapsed seconds, measured
// whole-run TIPI and total energy.
func runDefault(t *testing.T, spec Spec, scale float64, seed int64) (sec, tipi, joules float64) {
	t.Helper()
	m := machine.MustNew(machine.DefaultConfig())
	m.SetFirmware(governor.DefaultAutoUFS())
	src, err := spec.Build(Params{Cores: m.Config().Cores, Scale: scale, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	m.SetSource(src)
	sec = m.Run(300)
	if !m.Finished() {
		t.Fatalf("%s did not finish in 300 simulated seconds", spec.Name)
	}
	local, remote := m.TotalMisses()
	return sec, (local + remote) / m.TotalInstructions(), m.TotalEnergy()
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"UTS", "SOR-irt", "SOR-rt", "SOR-ws", "Heat-irt", "Heat-rt", "Heat-ws", "MiniFE", "HPCCG", "AMG"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d benchmarks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("registry[%d] = %s, want %s (Table 1 order)", i, got[i], want[i])
		}
	}
}

func TestHClibPortsMatchSection52(t *testing.T) {
	want := map[string]bool{
		"SOR-irt": true, "SOR-rt": true, "SOR-ws": true,
		"Heat-irt": true, "Heat-rt": true, "Heat-ws": true,
	}
	got := HClibNames()
	if len(got) != len(want) {
		t.Fatalf("HClib ports = %v, want the six SOR/Heat variants", got)
	}
	for _, n := range got {
		if !want[n] {
			t.Errorf("%s should not have an HClib port", n)
		}
	}
	if _, err := mustGet(t, "UTS").Build(Params{Cores: 4, Scale: 0.01, Model: HClib}); err == nil {
		t.Error("UTS must refuse the HClib model (§5.2)")
	}
	if _, err := mustGet(t, "MiniFE").Build(Params{Cores: 4, Scale: 0.01, Model: HClib}); err == nil {
		t.Error("MiniFE must refuse the HClib model (§5.2)")
	}
}

func mustGet(t *testing.T, name string) Spec {
	t.Helper()
	s, ok := Get(name)
	if !ok {
		t.Fatalf("benchmark %s missing", name)
	}
	return s
}

func TestBuildParameterValidation(t *testing.T) {
	s := mustGet(t, "UTS")
	if _, err := s.Build(Params{Cores: 0, Scale: 1}); err == nil {
		t.Error("zero cores must be rejected")
	}
	if _, err := s.Build(Params{Cores: 4, Scale: 0}); err == nil {
		t.Error("zero scale must be rejected")
	}
	if _, err := s.Build(Params{Cores: 4, Scale: 1, Model: Model("tbb")}); err == nil {
		t.Error("unknown model must be rejected")
	}
}

// TestTIPIInPaperRange is the Table 1 calibration gate: each benchmark's
// whole-run TIPI must land inside (or within one slab of) the paper's
// reported range.
func TestTIPIInPaperRange(t *testing.T) {
	const slack = 0.004 // one slab of tolerance at the edges
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			_, tipi, _ := runDefault(t, spec, 0.04, 1)
			if tipi < spec.TIPILow-slack || tipi > spec.TIPIHigh+slack {
				t.Errorf("measured TIPI %.4f outside Table 1 range [%.3f, %.3f]",
					tipi, spec.TIPILow, spec.TIPIHigh)
			}
		})
	}
}

// TestRuntimeTracksPaper checks the Default wall time lands within a factor
// of two of Table 1's (scaled) time — the absolute calibration is loose by
// design; shape matters.
func TestRuntimeTracksPaper(t *testing.T) {
	const scale = 0.04
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			sec, _, joules := runDefault(t, spec, scale, 2)
			want := spec.PaperSeconds * scale
			if sec < want/2 || sec > want*2 {
				t.Errorf("Default time %.2f s, want within 2x of %.2f s", sec, want)
			}
			if watts := joules / sec; watts < 30 || watts > 110 {
				t.Errorf("package power %.1f W implausible", watts)
			}
		})
	}
}

// TestModelsProduceSameWork verifies §5.2's premise: an HClib build executes
// the same DAG (same instruction budget within scheduler overhead) as the
// OpenMP build.
func TestModelsProduceSameWork(t *testing.T) {
	spec := mustGet(t, "Heat-irt")
	run := func(model Model) float64 {
		m := machine.MustNew(machine.DefaultConfig())
		src, err := spec.Build(Params{Cores: 20, Scale: 0.02, Seed: 3, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		m.SetSource(src)
		m.Run(120)
		return m.TotalInstructions()
	}
	omp, hclib := run(OpenMP), run(HClib)
	if diff := (omp - hclib) / omp; diff < -0.02 || diff > 0.02 {
		t.Errorf("instruction totals differ %.1f%% between models; DAGs should match", diff*100)
	}
}

// TestSeedsVaryExecution ensures repeated runs with different seeds are not
// identical (the paper reports confidence intervals over ten runs).
func TestSeedsVaryExecution(t *testing.T) {
	spec := mustGet(t, "UTS")
	t1, _, _ := runDefault(t, spec, 0.01, 1)
	t2, _, _ := runDefault(t, spec, 0.01, 99)
	if t1 == t2 {
		t.Error("different seeds produced byte-identical runs; imbalance model inert")
	}
}

func TestDeterministicUnderSameSeed(t *testing.T) {
	spec := mustGet(t, "SOR-irt")
	t1, tipi1, j1 := runDefault(t, spec, 0.01, 7)
	t2, tipi2, j2 := runDefault(t, spec, 0.01, 7)
	if t1 != t2 || tipi1 != tipi2 || j1 != j2 {
		t.Error("same seed must reproduce the run exactly (serial driver)")
	}
}
