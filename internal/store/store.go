// Package store is the persistent tier of the content-addressed result
// cache: spec hash → canonical report bytes, one file per entry on disk,
// surviving process restarts. The service layer consults it below the
// in-memory LRU and writes every finished execution through, so a
// cfserve restart — or a different cfserve sharing the directory — keeps
// serving byte-identical responses without recomputing anything.
//
// Soundness matches the in-memory cache's contract: the payload is the
// exact canonical byte sequence the original execution produced, stored
// verbatim behind a checksummed header. Reads verify the checksum; any
// file that is truncated, garbled or unreadable is treated as a cache
// miss (and deleted), never as data.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"
)

// magic is the first header token of every object file. The version
// suffix lets a future format change invalidate old files wholesale
// (they would read as misses) instead of misparsing them.
const magic = "cfstore1"

// hashPattern matches the hex SHA-256 names the service layer keys on.
var hashPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ErrBadHash rejects keys that are not lowercase hex SHA-256 names —
// they would escape the object layout.
var ErrBadHash = errors.New("store: key is not a hex sha-256 hash")

// object is one indexed entry: its payload size and the file
// modification time pruning evicts by.
type object struct {
	size  int64
	mtime time.Time
}

// Store is a disk-backed content-addressed map from spec hashes to
// canonical report bytes. All methods are safe for concurrent use; two
// processes may share one directory (writes are atomic renames of
// identical content, so either winner is correct).
type Store struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	index map[string]object
	total int64 // payload bytes currently indexed

	hits     uint64
	misses   uint64
	corrupt  uint64
	evicted  uint64
	writeErr uint64
}

// Open prepares dir (creating it if needed) and scans existing objects
// into the index. maxBytes bounds the total payload size — 0 means
// unbounded; when a Put pushes past the bound, the oldest entries are
// pruned until it fits. Unparseable files found during the scan are
// ignored (they will read as misses and be cleaned lazily).
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, index: make(map[string]object)}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !hashPattern.MatchString(d.Name()) {
			return nil // skip unreadable or foreign files; Get treats them as misses
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		size := info.Size() - int64(headerLen)
		if size < 0 {
			size = 0 // short file; counted approximately, read will be a miss
		}
		s.index[d.Name()] = object{size: size, mtime: info.ModTime()}
		s.total += size
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	// Enforce the bound on pre-existing data too (a restart with a
	// smaller maxBytes, or a sibling instance having grown the shared
	// directory), not just on the next Put.
	s.mu.Lock()
	s.pruneLocked()
	s.mu.Unlock()
	return s, nil
}

// headerLen is the fixed object header size: magic, a space, the hex
// checksum of the payload, a newline.
var headerLen = len(magic) + 1 + sha256.Size*2 + 1

// header renders the object header for a payload.
func header(body []byte) []byte {
	sum := sha256.Sum256(body)
	return []byte(magic + " " + hex.EncodeToString(sum[:]) + "\n")
}

// path returns an object's file path: objects are sharded by the first
// hash byte to keep directories small under large sweeps.
func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash[:2], hash)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Get returns the payload stored under hash. Any defect — missing file,
// truncated header, checksum mismatch — is a miss; a defective file is
// deleted so the slot is rewritten cleanly by the re-execution.
func (s *Store) Get(hash string) ([]byte, bool) {
	if !hashPattern.MatchString(hash) {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(hash))
	if err != nil {
		s.mu.Lock()
		s.misses++
		s.dropLocked(hash) // index said present but the file is gone
		s.mu.Unlock()
		return nil, false
	}
	body, ok := verify(raw)
	if !ok {
		s.mu.Lock()
		s.corrupt++
		s.misses++
		s.dropLocked(hash)
		s.mu.Unlock()
		os.Remove(s.path(hash))
		return nil, false
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return body, true
}

// verify splits an object file into its payload, checking magic and
// checksum; ok is false for any malformed or tampered file.
func verify(raw []byte) ([]byte, bool) {
	if len(raw) < headerLen || string(raw[:len(magic)]) != magic || raw[len(magic)] != ' ' || raw[headerLen-1] != '\n' {
		return nil, false
	}
	want := string(raw[len(magic)+1 : headerLen-1])
	body := raw[headerLen:]
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != want {
		return nil, false
	}
	return body, true
}

// Put stores body under hash atomically: the bytes land in a temp file
// in the same directory and are renamed into place, so a reader (or a
// crash) never observes a partial object. Concurrent writers of the
// same hash each rename their own temp file; content addressing makes
// every winner equivalent.
func (s *Store) Put(hash string, body []byte) error {
	if !hashPattern.MatchString(hash) {
		return fmt.Errorf("%w: %q", ErrBadHash, hash)
	}
	dst := s.path(hash)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		s.countWriteErr()
		return fmt.Errorf("store: put %s: %w", hash, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "tmp-"+hash[:8]+"-*")
	if err != nil {
		s.countWriteErr()
		return fmt.Errorf("store: put %s: %w", hash, err)
	}
	_, werr := tmp.Write(header(body))
	if werr == nil {
		_, werr = tmp.Write(body)
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), dst)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		s.countWriteErr()
		return fmt.Errorf("store: put %s: %w", hash, werr)
	}
	s.mu.Lock()
	s.dropLocked(hash) // replace, don't double-count
	s.index[hash] = object{size: int64(len(body)), mtime: time.Now()}
	s.total += int64(len(body))
	s.pruneLocked()
	s.mu.Unlock()
	return nil
}

func (s *Store) countWriteErr() {
	s.mu.Lock()
	s.writeErr++
	s.mu.Unlock()
}

// dropLocked removes hash from the index and the byte total; the caller
// holds s.mu and deletes the file itself if needed.
func (s *Store) dropLocked(hash string) {
	if obj, ok := s.index[hash]; ok {
		s.total -= obj.size
		delete(s.index, hash)
	}
}

// pruneLocked evicts oldest-first until the payload total fits
// maxBytes. The newest entry always survives, even if it alone exceeds
// the bound — evicting what was just written would make Put a no-op.
func (s *Store) pruneLocked() {
	if s.maxBytes <= 0 || s.total <= s.maxBytes {
		return
	}
	type aged struct {
		hash string
		object
	}
	entries := make([]aged, 0, len(s.index))
	for h, o := range s.index {
		entries = append(entries, aged{h, o})
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].hash < entries[j].hash // deterministic tie-break
	})
	for _, e := range entries {
		if s.total <= s.maxBytes || len(s.index) == 1 {
			return
		}
		s.dropLocked(e.hash)
		s.evicted++
		os.Remove(s.path(e.hash))
	}
}

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes returns the total payload bytes indexed.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Purge deletes every object and resets the index; the directory itself
// survives for subsequent Puts.
func (s *Store) Purge() error {
	s.mu.Lock()
	hashes := make([]string, 0, len(s.index))
	for h := range s.index {
		hashes = append(hashes, h)
	}
	s.index = make(map[string]object)
	s.total = 0
	s.mu.Unlock()
	// Deterministic deletion order so which error surfaces as firstErr
	// does not depend on map iteration order (cfvet: maporder).
	sort.Strings(hashes)
	var firstErr error
	for _, h := range hashes {
		if err := os.Remove(s.path(h)); err != nil && !errors.Is(err, fs.ErrNotExist) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Info is a point-in-time snapshot for the /v1/cache endpoint.
type Info struct {
	Path     string `json:"path"`
	Entries  int    `json:"entries"`
	Bytes    int64  `json:"bytes"`
	MaxBytes int64  `json:"max_bytes,omitempty"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Corrupt  uint64 `json:"corrupt"`
	Evicted  uint64 `json:"evicted"`
	WriteErr uint64 `json:"write_errors"`
}

// Info snapshots the store's size and counters.
func (s *Store) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Info{
		Path:     s.dir,
		Entries:  len(s.index),
		Bytes:    s.total,
		MaxBytes: s.maxBytes,
		Hits:     s.hits,
		Misses:   s.misses,
		Corrupt:  s.corrupt,
		Evicted:  s.evicted,
		WriteErr: s.writeErr,
	}
}
