package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// hashFor makes a valid-looking content address from a short label.
func hashFor(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	h := hashFor("a")
	body := []byte(`{"experiment":"run"}` + "\n")
	if err := s.Put(h, body); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(h)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, %v; want stored body", got, ok)
	}
	if s.Len() != 1 || s.Bytes() != int64(len(body)) {
		t.Errorf("Len/Bytes = %d/%d, want 1/%d", s.Len(), s.Bytes(), len(body))
	}
}

func TestReopenScansExistingObjects(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	bodies := map[string][]byte{}
	for i := 0; i < 5; i++ {
		h := hashFor(fmt.Sprint(i))
		bodies[h] = []byte(fmt.Sprintf("body-%d", i))
		if err := s.Put(h, bodies[h]); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh process opens the same directory: the startup scan must
	// index every object and every payload must read back verbatim.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 5 {
		t.Fatalf("reopened Len = %d, want 5", s2.Len())
	}
	for h, want := range bodies {
		got, ok := s2.Get(h)
		if !ok || !bytes.Equal(got, want) {
			t.Errorf("reopened Get(%s) = %q, %v; want %q", h[:8], got, ok, want)
		}
	}
}

// TestCorruptFilesReadAsMisses covers the corruption-tolerance contract:
// a truncated or garbled object is a miss — never served — and the bad
// file is removed so a re-execution rewrites the slot cleanly.
func TestCorruptFilesReadAsMisses(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(path string, raw []byte) []byte
	}{
		{"truncated header", func(_ string, raw []byte) []byte { return raw[:headerLen/2] }},
		{"truncated payload", func(_ string, raw []byte) []byte { return raw[:len(raw)-3] }},
		{"garbage", func(_ string, _ []byte) []byte { return []byte("not a store object at all") }},
		{"flipped payload byte", func(_ string, raw []byte) []byte {
			mut := append([]byte(nil), raw...)
			mut[len(mut)-1] ^= 0xFF
			return mut
		}},
		{"empty file", func(_ string, _ []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			h := hashFor(tc.name)
			body := []byte("payload-" + tc.name)
			if err := s.Put(h, body); err != nil {
				t.Fatal(err)
			}
			path := s.path(h)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(path, raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(h); ok {
				t.Fatalf("corrupt object served as %q, want miss", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt file should have been deleted, stat err = %v", err)
			}
			// Re-execution path: rewriting the slot restores byte-identical reads.
			if err := s.Put(h, body); err != nil {
				t.Fatal(err)
			}
			got, ok := s.Get(h)
			if !ok || !bytes.Equal(got, body) {
				t.Fatalf("rewritten Get = %q, %v; want original payload", got, ok)
			}
			if info := s.Info(); info.Corrupt != 1 {
				t.Errorf("corrupt counter = %d, want 1", info.Corrupt)
			}
		})
	}
}

// TestParallelWritersSameHash races many writers of one content address
// (the cross-backend scenario: two cfserve processes finishing the same
// spec). Run under -race; afterwards the object must read back intact.
func TestParallelWritersSameHash(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	h := hashFor("contended")
	body := []byte("the one true canonical payload")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if err := s.Put(h, body); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(h); ok && !bytes.Equal(got, body) {
					t.Errorf("raced Get = %q", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, ok := s.Get(h)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("final Get = %q, %v; want body", got, ok)
	}
	if s.Len() != 1 || s.Bytes() != int64(len(body)) {
		t.Errorf("Len/Bytes = %d/%d, want a single entry", s.Len(), s.Bytes())
	}
	// No temp droppings left behind by the racing writers.
	err = filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && !hashPattern.MatchString(d.Name()) {
			t.Errorf("stray file left behind: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestParallelDistinctWriters races writers of distinct hashes to shake
// out index bookkeeping races under -race.
func TestParallelDistinctWriters(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				h := hashFor(fmt.Sprintf("w%d-%d", i, j))
				if err := s.Put(h, []byte(h)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 8*20 {
		t.Errorf("Len = %d, want %d", s.Len(), 8*20)
	}
}

func TestPruneEvictsOldestFirst(t *testing.T) {
	s, err := Open(t.TempDir(), 64) // fits exactly four 16-byte payloads
	if err != nil {
		t.Fatal(err)
	}
	body := bytes.Repeat([]byte("x"), 16)
	var hashes []string
	for i := 0; i < 6; i++ {
		h := hashFor(fmt.Sprint(i))
		hashes = append(hashes, h)
		if err := s.Put(h, body); err != nil {
			t.Fatal(err)
		}
		// mtime granularity on some filesystems is coarse; force ordering.
		past := time.Now().Add(time.Duration(i-10) * time.Second)
		os.Chtimes(s.path(h), past, past)
		s.mu.Lock()
		obj := s.index[h]
		obj.mtime = past
		s.index[h] = obj
		s.mu.Unlock()
	}
	if s.Bytes() > 64 {
		t.Fatalf("Bytes = %d, want ≤ 64 after pruning", s.Bytes())
	}
	if _, ok := s.Get(hashes[0]); ok {
		t.Error("oldest entry survived pruning")
	}
	if _, ok := s.Get(hashes[5]); !ok {
		t.Error("newest entry must survive pruning")
	}
}

// TestOpenPrunesExistingDataPastBound: the size bound applies to what
// the startup scan finds, not only to future Puts — a read-only
// workload must not keep a shrunken store over budget forever.
func TestOpenPrunesExistingDataPastBound(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := bytes.Repeat([]byte("x"), 16)
	for i := 0; i < 6; i++ {
		if err := s.Put(hashFor(fmt.Sprint(i)), body); err != nil {
			t.Fatal(err)
		}
	}
	reopened, err := Open(dir, 40) // fits two 16-byte payloads
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Bytes() > 40 || reopened.Len() > 2 {
		t.Errorf("reopened Len/Bytes = %d/%d, want pruned to the 40-byte bound", reopened.Len(), reopened.Bytes())
	}
}

func TestPurgeEmptiesButStaysUsable(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	h := hashFor("p")
	if err := s.Put(h, []byte("body")); err != nil {
		t.Fatal(err)
	}
	if err := s.Purge(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("after purge Len/Bytes = %d/%d, want 0/0", s.Len(), s.Bytes())
	}
	if _, ok := s.Get(h); ok {
		t.Error("purged entry still readable")
	}
	if err := s.Put(h, []byte("body2")); err != nil {
		t.Fatalf("store unusable after purge: %v", err)
	}
	if got, _ := s.Get(h); string(got) != "body2" {
		t.Errorf("post-purge Get = %q", got)
	}
}

func TestRejectsNonHashKeys(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", "../../etc/passwd", hashFor("x")[:63] + "Z"} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a non-hash key", bad)
		}
		if _, ok := s.Get(bad); ok {
			t.Errorf("Get(%q) returned data for a non-hash key", bad)
		}
	}
}
