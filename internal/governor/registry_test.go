package governor

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/msr"
	"repro/internal/sched"
	"repro/internal/workload"
)

func testMachine(t *testing.T, cores int) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Cores = cores
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegistryHasBuiltins(t *testing.T) {
	names := Names()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{Default, Cuttlefish, CuttlefishCore, CuttlefishUncore, Static, DDCM, Powersave, Ondemand} {
		if !have[want] {
			t.Errorf("registry missing built-in %q (have %v)", want, names)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	if err := Register(Cuttlefish, func(Tuning) (Governor, error) { return defaultGovernor{}, nil }); err == nil {
		t.Fatal("re-registering an existing name must fail")
	}
	if err := Register("", nil); err == nil {
		t.Fatal("empty registration must fail")
	}
}

func TestNewUnknownNameListsRegistry(t *testing.T) {
	_, err := New("turbo-boost", Tuning{})
	if err == nil {
		t.Fatal("unknown governor must error")
	}
	if !strings.Contains(err.Error(), "turbo-boost") || !strings.Contains(err.Error(), Cuttlefish) {
		t.Errorf("error %q should name the typo and list registered governors", err)
	}
}

// TestAttachDetachBracketsMSRState verifies the satellite fix: every
// strategy — not just the public Session — saves the MSR state at Attach
// and restores it at Detach, even strategies that pin registers hard.
func TestAttachDetachBracketsMSRState(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			m := testMachine(t, 4)
			defer m.Close()
			cfg := m.Config()
			g, err := New(name, Tuning{CF: 15, UF: 20, WarmupSec: -1, TinvSec: 5e-3})
			if err != nil {
				t.Fatal(err)
			}
			if g.Name() == "" {
				t.Error("governor must carry a name")
			}
			att, err := g.Attach(m)
			if err != nil {
				t.Fatal(err)
			}
			// Let the strategy act on a short busy window so reactive and
			// daemon strategies move frequencies off boot state.
			seg := workload.Segment{Instructions: 2e6, MissPerInstr: 0.08, IPC: 2, Exposure: 0.7}
			m.SetSource(sched.NewWorkSharing(cfg.Cores, sched.StaticProgram([]sched.Region{{Seg: seg, Chunks: 4 * cfg.Cores}}, 30), 1))
			m.Run(5)
			if err := att.Detach(); err != nil {
				t.Fatalf("detach: %v", err)
			}
			for c := 0; c < cfg.Cores; c++ {
				if got := m.CoreRatio(c); got != cfg.CoreGrid.Max {
					t.Errorf("core %d ratio after Detach = %v, want boot max %v", c, got, cfg.CoreGrid.Max)
				}
			}
			raw, err := m.Device().Read(msr.UncoreRatioLimit, 0)
			if err != nil {
				t.Fatal(err)
			}
			lo, hi := msr.UncoreLimitRatios(raw)
			if lo != uint8(cfg.UncoreGrid.Min) || hi != uint8(cfg.UncoreGrid.Max) {
				t.Errorf("0x620 after Detach = [%d,%d], want boot [%d,%d]", lo, hi, cfg.UncoreGrid.Min, cfg.UncoreGrid.Max)
			}
			// Idempotent.
			if err := att.Detach(); err != nil {
				t.Errorf("second Detach errored: %v", err)
			}
		})
	}
}

func TestStaticPinsRequestedRatios(t *testing.T) {
	m := testMachine(t, 2)
	defer m.Close()
	att, err := NewStatic(16, 22).Attach(m)
	if err != nil {
		t.Fatal(err)
	}
	defer att.Detach()
	if got := m.CoreRatio(0); got != 16 {
		t.Errorf("static CF = %v, want 1.6GHz", got)
	}
	if got := m.UncoreRatio(); got != 22 {
		t.Errorf("static UF = %v, want 2.2GHz", got)
	}
}

func TestPowersavePinsMinima(t *testing.T) {
	m := testMachine(t, 2)
	defer m.Close()
	att, err := New(Powersave, Tuning{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := att.Attach(m)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Detach()
	if got := m.CoreRatio(1); got != m.Config().CoreGrid.Min {
		t.Errorf("powersave CF = %v, want grid min", got)
	}
	if got := m.UncoreRatio(); got != m.Config().UncoreGrid.Min {
		t.Errorf("powersave UF = %v, want grid min", got)
	}
}

func TestOndemandReactsToLoad(t *testing.T) {
	m := testMachine(t, 4)
	defer m.Close()
	att, err := NewOndemand(0).Attach(m)
	if err != nil {
		t.Fatal(err)
	}
	defer att.Detach()
	if got := m.CoreRatio(0); got != m.Config().CoreGrid.Min {
		t.Fatalf("idle ondemand CF = %v, want grid min", got)
	}
	// A busy phase must raise the cores to max within a few periods.
	seg := workload.Segment{Instructions: 5e7, IPC: 2}
	m.SetSource(sched.NewWorkSharing(4, sched.StaticProgram([]sched.Region{{Seg: seg, Chunks: 8}}, 50), 1))
	m.Run(0.2)
	if got := m.CoreRatio(0); got != m.Config().CoreGrid.Max {
		t.Errorf("busy ondemand CF = %v, want grid max", got)
	}
	// Run the workload out, then idle: cores must drop back to min.
	m.Run(400)
	if !m.Finished() {
		t.Fatal("workload did not finish")
	}
	m.SetSource(nil)
	m.Run(0.2)
	if got := m.CoreRatio(0); got != m.Config().CoreGrid.Min {
		t.Errorf("post-idle ondemand CF = %v, want grid min", got)
	}
}

func TestCuttlefishAttachmentCarriesDaemon(t *testing.T) {
	m := testMachine(t, 4)
	defer m.Close()
	g, err := New(Cuttlefish, Tuning{TinvSec: 5e-3, WarmupSec: -1})
	if err != nil {
		t.Fatal(err)
	}
	att, err := g.Attach(m)
	if err != nil {
		t.Fatal(err)
	}
	if att.Daemon() == nil {
		t.Fatal("cuttlefish attachment must expose its daemon")
	}
	seg := workload.Segment{Instructions: 2e6, MissPerInstr: 0.05, IPC: 2}
	m.SetSource(sched.NewWorkSharing(4, sched.StaticProgram([]sched.Region{{Seg: seg, Chunks: 16}}, 40), 1))
	m.Run(10)
	if err := att.Detach(); err != nil {
		t.Fatal(err)
	}
	if att.Daemon().Samples() == 0 {
		t.Error("daemon processed no samples while attached")
	}
}

// TestListDescribesEveryBuiltin pins the listing contract the fuzz
// findings report and -list-governors rely on: every built-in carries a
// non-empty one-line description, List is sorted by name (the stable
// order), and Describe agrees with it.
func TestListDescribesEveryBuiltin(t *testing.T) {
	infos := List()
	if len(infos) < 8 {
		t.Fatalf("List() returned %d entries, want at least the 8 built-ins", len(infos))
	}
	for i, info := range infos {
		if info.Description == "" {
			t.Errorf("built-in %q has no listing description", info.Name)
		}
		if got := Describe(info.Name); got != info.Description {
			t.Errorf("Describe(%q) = %q, List says %q", info.Name, got, info.Description)
		}
		if i > 0 && infos[i-1].Name >= info.Name {
			t.Errorf("List() not sorted: %q before %q", infos[i-1].Name, info.Name)
		}
	}
	if Describe("no-such-governor") != "" {
		t.Error("Describe of an unknown name should be empty")
	}
}
