package governor

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/freq"
	"repro/internal/machine"
	"repro/internal/msr"
	"repro/internal/timeline"
)

// DefaultDDCMLevel is the duty-cycle step matching the paper's ≈70%
// compute throttle (6/8 duty).
const DefaultDDCMLevel = 6

// ddcmQuietUncore pins the uncore at the firmware's quiet operating point
// so the DDCM study isolates the core knob.
const ddcmQuietUncore freq.Ratio = 22

// failAttach unwinds a partially performed Attach: the state saved at its
// start is restored so a failed strategy never leaks half-written MSRs —
// and never leaves a mutated snapshot for the next Attach's Save to
// capture as "boot state".
func failAttach(dev *msr.Device, err error) error {
	return errors.Join(err, dev.Restore())
}

// attachEvent marks a governor taking control on the machine's flight
// recorder (nil-safe, observability only).
func attachEvent(m *machine.Machine, note string) {
	m.Timeline().AddEvent(timeline.Event{T: m.Now(), Kind: timeline.KindAttach, Note: note})
}

// pinCores writes ratio to every core's IA32_PERF_CTL through the device.
func pinCores(m *machine.Machine, ratio freq.Ratio) error {
	dev := m.Device()
	for c := 0; c < m.Config().Cores; c++ {
		if err := dev.Write(msr.IA32PerfCtl, c, msr.PerfCtlRaw(uint8(ratio))); err != nil {
			return fmt.Errorf("governor: core %d: %w", c, err)
		}
	}
	return nil
}

// pinUncore collapses MSR 0x620's range to a single ratio.
func pinUncore(m *machine.Machine, ratio freq.Ratio) error {
	return m.Device().Write(msr.UncoreRatioLimit, 0, msr.UncoreLimitRaw(uint8(ratio), uint8(ratio)))
}

// --- default: performance governor + firmware Auto uncore ---

// defaultGovernor reproduces the paper's Default environment: the Linux
// "performance" CPU governor pins every core at maximum and the firmware's
// Auto mode drives the uncore from memory traffic.
type defaultGovernor struct{}

func (defaultGovernor) Name() string { return Default }

func (defaultGovernor) Attach(m *machine.Machine) (*Attachment, error) {
	dev := m.Device()
	dev.Save()
	if err := Apply(Performance, dev, m.Config().Cores, m.Config().CoreGrid); err != nil {
		return nil, failAttach(dev, err)
	}
	m.SetFirmware(DefaultAutoUFS())
	attachEvent(m, "default: performance cores, auto uncore")
	return newAttachment(nil, func() error {
		m.SetFirmware(nil)
		return dev.Restore()
	}), nil
}

// --- cuttlefish: the paper's daemon, all three policy variants ---

// cuttlefishGovernor wraps the Cuttlefish daemon: Attach performs the
// library's start() (save MSRs, raise both domains, schedule the daemon
// every Tinv) and Detach its stop() (halt the daemon, unschedule it,
// restore the MSRs — unconditionally, so a daemon error never leaks the
// saved state).
type cuttlefishGovernor struct {
	name string
	cfg  core.Config
}

// NewCuttlefish builds a daemon-backed governor for one of the paper's
// three policy variants, tuned by t.
func NewCuttlefish(policy core.Policy, t Tuning) Governor {
	return NewCuttlefishFromConfig(t.DaemonConfig(policy))
}

// NewCuttlefishFromConfig wraps a fully specified daemon configuration —
// the escape hatch the ablation study uses for its optimisation switches.
func NewCuttlefishFromConfig(cfg core.Config) Governor {
	return &cuttlefishGovernor{name: cfg.Policy.String(), cfg: cfg}
}

func (g *cuttlefishGovernor) Name() string { return g.name }

func (g *cuttlefishGovernor) Attach(m *machine.Machine) (*Attachment, error) {
	dev := m.Device()
	dev.Save()
	mc := m.Config()
	d, err := core.NewDaemon(g.cfg, dev, mc.Cores, mc.CoreGrid, mc.UncoreGrid, m.Now())
	if err != nil {
		return nil, failAttach(dev, fmt.Errorf("governor: %s: %w", g.name, err))
	}
	d.SetTimeline(m.Timeline())
	attachEvent(m, g.name)
	comp := &machine.Component{Period: g.cfg.TinvSec, Core: g.cfg.PinnedCore, Tick: d.Tick}
	m.Schedule(comp, m.Now()+g.cfg.TinvSec)
	att := newAttachment(d, func() error {
		d.Stop()
		m.Unschedule(comp)
		derr := d.Err()
		if derr != nil {
			derr = fmt.Errorf("governor: %s daemon failed during run: %w", g.name, derr)
		}
		return errors.Join(derr, dev.Restore())
	})
	return att.withState(
		func() ([]byte, error) {
			st, err := d.StateSnapshot()
			if err != nil {
				return nil, err
			}
			return json.Marshal(st)
		},
		func(blob []byte) error {
			var st core.DaemonState
			if err := json.Unmarshal(blob, &st); err != nil {
				return fmt.Errorf("governor: %s state blob: %w", g.name, err)
			}
			return d.StateRestore(&st)
		},
	), nil
}

// --- static: both domains pinned at fixed ratios ---

// staticGovernor pins core and uncore frequencies for the whole run — the
// Fig. 2/Fig. 3 measurement methodology and the oracle sweep's grid points.
type staticGovernor struct {
	cf, uf freq.Ratio
}

// NewStatic pins the cores at cf and the uncore at uf; zero means the
// corresponding grid maximum.
func NewStatic(cf, uf freq.Ratio) Governor { return staticGovernor{cf: cf, uf: uf} }

func (staticGovernor) Name() string { return Static }

func (g staticGovernor) Attach(m *machine.Machine) (*Attachment, error) {
	cf, uf := g.cf, g.uf
	if cf == 0 {
		cf = m.Config().CoreGrid.Max
	}
	if uf == 0 {
		uf = m.Config().UncoreGrid.Max
	}
	dev := m.Device()
	dev.Save()
	if err := pinCores(m, m.Config().CoreGrid.Clamp(cf)); err != nil {
		return nil, failAttach(dev, err)
	}
	if err := pinUncore(m, m.Config().UncoreGrid.Clamp(uf)); err != nil {
		return nil, failAttach(dev, err)
	}
	attachEvent(m, fmt.Sprintf("static: cf=%d uf=%d", cf, uf))
	return newAttachment(nil, dev.Restore), nil
}

// --- ddcm: duty-cycle modulation at full voltage ---

// ddcmGovernor throttles compute with IA32_CLOCK_MODULATION while the
// voltage (and so leakage) stays at the full-frequency point — the knob the
// energy-efficiency literature the paper builds on compares DVFS against.
// The uncore is pinned at the firmware's quiet point to isolate the core
// knob, matching the DDCM study's methodology.
type ddcmGovernor struct {
	cf    freq.Ratio
	level uint8
}

// NewDDCM runs the cores at cf (0 = max) under duty-cycle level (0 = no
// modulation; DefaultDDCMLevel ≈ the paper-matched 70% throttle).
func NewDDCM(cf freq.Ratio, level uint8) Governor { return ddcmGovernor{cf: cf, level: level} }

func (ddcmGovernor) Name() string { return DDCM }

func (g ddcmGovernor) Attach(m *machine.Machine) (*Attachment, error) {
	cf := g.cf
	if cf == 0 {
		cf = m.Config().CoreGrid.Max
	}
	dev := m.Device()
	dev.Save()
	if err := pinUncore(m, m.Config().UncoreGrid.Clamp(ddcmQuietUncore)); err != nil {
		return nil, failAttach(dev, err)
	}
	if err := pinCores(m, m.Config().CoreGrid.Clamp(cf)); err != nil {
		return nil, failAttach(dev, err)
	}
	for c := 0; c < m.Config().Cores; c++ {
		if err := dev.Write(msr.IA32ClockModulation, c, msr.ClockModRaw(g.level)); err != nil {
			return nil, failAttach(dev, fmt.Errorf("governor: core %d: %w", c, err))
		}
	}
	attachEvent(m, fmt.Sprintf("ddcm: cf=%d level=%d", cf, g.level))
	m.Timeline().AddEvent(timeline.Event{T: m.Now(), Kind: timeline.KindDDCM, To: int(g.level)})
	return newAttachment(nil, dev.Restore), nil
}

// --- powersave: both domains pinned at minimum ---

// powersaveGovernor is the Linux "powersave" analogue extended to the
// uncore: every knob at its grid minimum. It bounds the energy/slowdown
// trade space from below the way Default bounds it from above.
type powersaveGovernor struct{}

func (powersaveGovernor) Name() string { return Powersave }

func (powersaveGovernor) Attach(m *machine.Machine) (*Attachment, error) {
	dev := m.Device()
	dev.Save()
	if err := pinCores(m, m.Config().CoreGrid.Min); err != nil {
		return nil, failAttach(dev, err)
	}
	if err := pinUncore(m, m.Config().UncoreGrid.Min); err != nil {
		return nil, failAttach(dev, err)
	}
	attachEvent(m, "powersave: all domains at minimum")
	return newAttachment(nil, dev.Restore), nil
}

// --- ondemand: reactive per-core DVFS from sampled throughput ---

// DefaultOndemandPeriod is the ondemand governor's sampling period.
const DefaultOndemandPeriod = 10e-3

// ondemandBusyIPS is the per-core retired-instruction rate above which a
// sampling window counts as busy: well below any running core's throughput
// (≥ ~1e9 at the minimum ratio) and well above idle noise.
const ondemandBusyIPS = 5e7

// ondemandGovernor is a Linux-ondemand-style reactive strategy: every
// period it reads each core's INST_RETIRED through the msr-safe device and
// jumps the core to the maximum ratio when the window was busy, dropping it
// to the minimum when idle. The uncore is left to the firmware's Auto mode,
// as on a stock Linux box. It demonstrates that registered strategies can
// schedule their own periodic components, exactly like the daemon.
type ondemandGovernor struct {
	periodSec float64
}

// NewOndemand samples every periodSec (0 = DefaultOndemandPeriod).
func NewOndemand(periodSec float64) Governor {
	if periodSec <= 0 {
		periodSec = DefaultOndemandPeriod
	}
	return ondemandGovernor{periodSec: periodSec}
}

func (ondemandGovernor) Name() string { return Ondemand }

func (g ondemandGovernor) Attach(m *machine.Machine) (*Attachment, error) {
	dev := m.Device()
	dev.Save()
	m.SetFirmware(DefaultAutoUFS())
	cfg := m.Config()
	// Start every core at the minimum; the first busy window raises it.
	if err := pinCores(m, cfg.CoreGrid.Min); err != nil {
		m.SetFirmware(nil)
		return nil, failAttach(dev, err)
	}
	prev := make([]uint64, cfg.Cores)
	ratios := make([]freq.Ratio, cfg.Cores)
	for c := range ratios {
		prev[c], _ = dev.Read(msr.IA32FixedCtr0, c)
		ratios[c] = cfg.CoreGrid.Min
	}
	busyInstr := ondemandBusyIPS * g.periodSec
	tl := m.Timeline()
	attachEvent(m, "ondemand: reactive per-core DVFS")
	var tickErr error
	comp := &machine.Component{
		Period: g.periodSec,
		Tick: func(now float64) float64 {
			if tickErr != nil {
				return 0
			}
			for c := 0; c < cfg.Cores; c++ {
				cur, err := dev.Read(msr.IA32FixedCtr0, c)
				if err != nil {
					tickErr = err
					return 0
				}
				delta := cur - prev[c] // counter is monotone 64-bit
				prev[c] = cur
				want := cfg.CoreGrid.Min
				if float64(delta) >= busyInstr {
					want = cfg.CoreGrid.Max
				}
				if want == ratios[c] {
					continue
				}
				if err := dev.Write(msr.IA32PerfCtl, c, msr.PerfCtlRaw(uint8(want))); err != nil {
					tickErr = err
					return 0
				}
				tl.AddEvent(timeline.Event{T: now, Kind: timeline.KindDVFS, Core: c, From: int(ratios[c]), To: int(want)})
				ratios[c] = want
			}
			return 0
		},
	}
	m.Schedule(comp, m.Now()+g.periodSec)
	att := newAttachment(nil, func() error {
		m.Unschedule(comp)
		m.SetFirmware(nil)
		if tickErr != nil {
			tickErr = fmt.Errorf("governor: ondemand sampler: %w", tickErr)
		}
		return errors.Join(tickErr, dev.Restore())
	})
	return att.withState(
		func() ([]byte, error) {
			if tickErr != nil {
				return nil, fmt.Errorf("governor: ondemand sampler in error state: %w", tickErr)
			}
			return json.Marshal(ondemandState{Prev: prev, Ratios: ratios})
		},
		func(blob []byte) error {
			var st ondemandState
			if err := json.Unmarshal(blob, &st); err != nil {
				return fmt.Errorf("governor: ondemand state blob: %w", err)
			}
			if len(st.Prev) != cfg.Cores || len(st.Ratios) != cfg.Cores {
				return fmt.Errorf("governor: ondemand state has %d/%d cores, machine has %d",
					len(st.Prev), len(st.Ratios), cfg.Cores)
			}
			copy(prev, st.Prev)
			copy(ratios, st.Ratios)
			return nil
		},
	), nil
}

// ondemandState is the sampler's private state between ticks: the
// previous per-core counter readings and the ratio last actuated per
// core (the write-skip cache).
type ondemandState struct {
	Prev   []uint64     `json:"prev"`
	Ratios []freq.Ratio `json:"ratios"`
}
