// Package governor reproduces the frequency-control environment of the
// paper's Default execution: the Linux "performance" CPU governor that pins
// every core at the maximum DVFS ratio, and the Intel firmware's "Auto"
// uncore scaling, which the paper observes parking a quiet uncore near
// 2.2 GHz and raising it to 3.0 GHz under memory pressure (Table 2,
// "highly sensitive to memory requests").
//
// Cuttlefish runs instead under the "userspace" governor: the library owns
// both knobs, writing IA32_PERF_CTL per core and pinning MSR 0x620.
package governor

import (
	"fmt"

	"repro/internal/freq"
	"repro/internal/msr"
)

// Policy names the CPU frequency governor in force.
type Policy string

const (
	// Performance pins all cores at the maximum ratio (Default runs).
	Performance Policy = "performance"
	// Userspace leaves frequency selection to software (Cuttlefish runs).
	Userspace Policy = "userspace"
)

// Apply sets up the core-frequency governor through the msr-safe device.
// Performance writes CFmax to every core's PERF_CTL; Userspace leaves the
// registers for the owning library.
func Apply(p Policy, dev *msr.Device, cores int, grid freq.Grid) error {
	switch p {
	case Performance:
		for c := 0; c < cores; c++ {
			if err := dev.Write(msr.IA32PerfCtl, c, msr.PerfCtlRaw(uint8(grid.Max))); err != nil {
				return fmt.Errorf("governor: core %d: %w", c, err)
			}
		}
		return nil
	case Userspace:
		return nil
	default:
		return fmt.Errorf("governor: unknown policy %q", p)
	}
}

// AutoUFS is the firmware uncore governor active when BIOS UFS is "Auto"
// and MSR 0x620 leaves a range: it holds a quiet-system operating point and
// ramps toward max as smoothed LLC-miss demand crosses its thresholds.
type AutoUFS struct {
	// QuietRatio is the operating point under light memory traffic; the
	// paper measures 2.2 GHz on its Haswell.
	QuietRatio freq.Ratio
	// BusyRatio is the operating point under heavy traffic (3.0 GHz).
	BusyRatio freq.Ratio
	// DemandLow and DemandHigh (misses/second) bound the ramp between the
	// two operating points.
	DemandLow, DemandHigh float64
}

// DefaultAutoUFS is calibrated against Table 2's Default column: 2.2 GHz
// for the compute-bound benchmarks (UTS ≈0.1e9, SOR ≈0.6e9 misses/s) and
// 3.0 GHz for the memory-bound set (≥1e9 misses/s).
func DefaultAutoUFS() *AutoUFS {
	return &AutoUFS{
		QuietRatio: 22,
		BusyRatio:  30,
		DemandLow:  0.70e9,
		DemandHigh: 1.00e9,
	}
}

// Target implements machine.UncoreFirmware.
func (a *AutoUFS) Target(demand float64, min, max freq.Ratio) freq.Ratio {
	var t freq.Ratio
	switch {
	case demand <= a.DemandLow:
		t = a.QuietRatio
	case demand >= a.DemandHigh:
		t = a.BusyRatio
	default:
		span := float64(a.BusyRatio - a.QuietRatio)
		frac := (demand - a.DemandLow) / (a.DemandHigh - a.DemandLow)
		t = a.QuietRatio + freq.Ratio(frac*span+0.5)
	}
	if t < min {
		t = min
	}
	if t > max {
		t = max
	}
	return t
}
