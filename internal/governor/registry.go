// Governor registry: every frequency-control strategy the repository
// simulates — the paper's three Cuttlefish variants, the Default
// environment, the fixed-frequency oracle settings, the DDCM baseline and
// the reactive Linux-style governors — is one registered implementation of
// a single Governor interface. Harnesses, the cluster and both CLIs
// construct strategies only through this registry, so adding a scenario is
// one Register call, never another hand-wired daemon/governor branch.
package governor

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/freq"
	"repro/internal/machine"
)

// Governor is one frequency-control strategy. Attach installs the strategy
// on a machine — saving the MSR state it will touch, writing initial
// frequencies, scheduling any periodic component (a Cuttlefish daemon, a
// reactive sampler, a firmware model) — and returns an Attachment whose
// Detach undoes all of it. Implementations must be safe to attach to many
// machines concurrently: all per-run state lives in the Attachment.
type Governor interface {
	// Name is the registry name the strategy answers to.
	Name() string
	// Attach installs the strategy on m. The returned Attachment's Detach
	// restores the MSR state captured at Attach unconditionally, even when
	// the strategy itself failed mid-run.
	Attach(m *machine.Machine) (*Attachment, error)
}

// Attachment is one governor attached to one machine: the msr-safe
// Save/Restore bracket plus whatever the strategy scheduled. Every run
// path detaches through it, so cleanup is uniform across the public
// Session API, the experiment harnesses and the cluster.
type Attachment struct {
	mu           sync.Mutex
	detach       func() error
	daemon       *core.Daemon
	done         bool
	stateSnap    func() ([]byte, error)
	stateRestore func([]byte) error
}

// newAttachment wraps a strategy's teardown. detach runs exactly once;
// later Detach calls return nil, mirroring Session.Stop's idempotence.
func newAttachment(daemon *core.Daemon, detach func() error) *Attachment {
	return &Attachment{detach: detach, daemon: daemon}
}

// withState installs the strategy's state snapshot/restore hooks.
// Strategies whose only mutable state is MSR registers (default, static,
// ddcm, powersave) never call it — their state rides in the machine
// snapshot — while daemon-backed and sampler-backed strategies export
// their private state through these hooks so a prefix-resumed run
// continues from exactly the adaptive state the snapshot captured.
func (a *Attachment) withState(snap func() ([]byte, error), restore func([]byte) error) *Attachment {
	a.stateSnap = snap
	a.stateRestore = restore
	return a
}

// StateSnapshot exports the strategy's private mutable state as an opaque
// blob (nil for stateless strategies). Together with a machine.Snapshot
// taken at the same boundary it fully determines the rest of the run.
func (a *Attachment) StateSnapshot() ([]byte, error) {
	if a.stateSnap == nil {
		return nil, nil
	}
	return a.stateSnap()
}

// StateRestore re-imports a blob produced by StateSnapshot on an
// attachment of the same strategy and tuning. A non-empty blob handed to
// a stateless strategy is a strategy mismatch and errors.
func (a *Attachment) StateRestore(blob []byte) error {
	if a.stateRestore == nil {
		if len(blob) > 0 {
			return errors.New("governor: state blob for a stateless strategy")
		}
		return nil
	}
	return a.stateRestore(blob)
}

// Daemon returns the Cuttlefish daemon driving this attachment, or nil for
// strategies that run without one (default, static, ddcm, powersave,
// ondemand). Harnesses use it for slab-list reporting.
func (a *Attachment) Daemon() *core.Daemon { return a.daemon }

// Detach removes the governor from the machine and restores the MSR state
// captured at Attach. The restore happens unconditionally — a daemon error
// no longer leaks pinned frequencies — and any strategy error is reported
// alongside a restore failure. Detach is idempotent.
func (a *Attachment) Detach() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.done {
		return nil
	}
	a.done = true
	return a.detach()
}

// Tuning carries the per-run parameters a strategy may honour; strategies
// ignore fields that do not apply to them. The zero value means "use the
// governor's defaults" throughout.
type Tuning struct {
	// TinvSec is the Cuttlefish daemon's profiling interval (0 = 20 ms) and
	// the ondemand governor's sampling period.
	TinvSec float64
	// WarmupSec delays the Cuttlefish loop past the cold start (0 = the
	// paper's 2 s; negative = no warmup).
	WarmupSec float64
	// CF and UF pin the static governor's core and uncore ratios
	// (0 = the grid maximum).
	CF, UF freq.Ratio
	// DDCMLevel is the duty-cycle step of the ddcm governor
	// (0 = level 6, the paper-matched ≈70% throttle).
	DDCMLevel uint8
}

// DaemonConfig resolves the tuning against the paper's deployment
// defaults: zero fields keep the defaults, negative WarmupSec disables the
// warmup. Every daemon-backed run path resolves its configuration through
// this one function, so WarmupSec means the same thing everywhere.
func (t Tuning) DaemonConfig(policy core.Policy) core.Config {
	cfg := core.DefaultConfig()
	cfg.Policy = policy
	if t.TinvSec > 0 {
		cfg.TinvSec = t.TinvSec
	}
	if t.WarmupSec > 0 {
		cfg.WarmupSec = t.WarmupSec
	} else if t.WarmupSec < 0 {
		cfg.WarmupSec = 0
	}
	return cfg
}

// Factory builds a governor from per-run tuning. Registered factories must
// be pure: every call returns an independent value.
type Factory func(t Tuning) (Governor, error)

// The built-in registry names.
const (
	// Default is the paper's baseline: performance governor + firmware
	// Auto uncore.
	Default = "default"
	// Cuttlefish, CuttlefishCore and CuttlefishUncore are the paper's
	// three build-time library variants (§5).
	Cuttlefish       = "cuttlefish"
	CuttlefishCore   = "cuttlefish-core"
	CuttlefishUncore = "cuttlefish-uncore"
	// Static pins both domains at fixed ratios (the Fig. 2/Fig. 3
	// methodology and the oracle sweeps).
	Static = "static"
	// DDCM throttles with duty-cycle modulation at full voltage, the
	// Bhalachandra et al. knob the paper's DVFS choice is judged against.
	DDCM = "ddcm"
	// Powersave pins both domains at their grid minima.
	Powersave = "powersave"
	// Ondemand is a Linux-ondemand-style reactive governor: per-core DVFS
	// driven by sampled instruction throughput.
	Ondemand = "ondemand"
)

// CuttlefishVariants are the three library builds compared against Default
// throughout §5, in report order.
var CuttlefishVariants = []string{Cuttlefish, CuttlefishCore, CuttlefishUncore}

// Info is the serializable face of a registered strategy: the name it
// answers to and a one-line description for listings (-list-governors,
// /v1/governors, fuzz findings reports). Description may be empty for
// strategies registered through the bare Register path.
type Info struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
}

type regEntry struct {
	factory     Factory
	description string
}

var (
	regMu    sync.RWMutex
	registry = map[string]regEntry{}
)

// Register adds a named strategy to the registry with no listing
// description. Duplicate names are rejected so two packages cannot
// silently shadow each other's strategies.
func Register(name string, f Factory) error {
	return RegisterInfo(name, "", f)
}

// RegisterInfo is Register plus a one-line description for listings.
func RegisterInfo(name, description string, f Factory) error {
	if name == "" || f == nil {
		return errors.New("governor: Register needs a name and a factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("governor: %q already registered", name)
	}
	registry[name] = regEntry{factory: f, description: description}
	return nil
}

// MustRegister is Register for init-time built-ins.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// mustRegisterInfo is RegisterInfo for the built-ins below.
func mustRegisterInfo(name, description string, f Factory) {
	if err := RegisterInfo(name, description, f); err != nil {
		panic(err)
	}
}

// New constructs the named strategy with the given tuning. Unknown names
// list the registry so CLI typos are self-diagnosing.
func New(name string, t Tuning) (Governor, error) {
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("governor: unknown governor %q (registered: %v)", name, Names())
	}
	return e.factory(t)
}

// Exists reports whether name is a registered strategy, without
// constructing it. Request validators use it to reject typos before any
// simulation time is spent.
func Exists(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names returns the registered strategy names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// List snapshots every registered strategy's Info in sorted-name order —
// the stable order listings and the fuzz findings report key on.
func List() []Info {
	names := Names()
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, len(names))
	for i, n := range names {
		out[i] = Info{Name: n, Description: registry[n].description}
	}
	return out
}

// Describe returns the one-line listing description of a registered
// strategy ("" for unknown names or bare registrations).
func Describe(name string) string {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[name].description
}

func init() {
	mustRegisterInfo(Default, "paper baseline: performance governor, firmware Auto uncore", func(Tuning) (Governor, error) {
		return defaultGovernor{}, nil
	})
	mustRegisterInfo(Cuttlefish, "TIPI-guided daemon tuning core and uncore frequency (§4)", func(t Tuning) (Governor, error) {
		return NewCuttlefish(core.PolicyBoth, t), nil
	})
	mustRegisterInfo(CuttlefishCore, "Cuttlefish daemon restricted to the core-frequency domain", func(t Tuning) (Governor, error) {
		return NewCuttlefish(core.PolicyCoreOnly, t), nil
	})
	mustRegisterInfo(CuttlefishUncore, "Cuttlefish daemon restricted to the uncore-frequency domain", func(t Tuning) (Governor, error) {
		return NewCuttlefish(core.PolicyUncoreOnly, t), nil
	})
	mustRegisterInfo(Static, "both domains pinned at fixed ratios (default: grid maxima)", func(t Tuning) (Governor, error) {
		return NewStatic(t.CF, t.UF), nil
	})
	mustRegisterInfo(DDCM, "duty-cycle modulation throttle at full voltage (Bhalachandra et al.)", func(t Tuning) (Governor, error) {
		level := t.DDCMLevel
		if level == 0 {
			level = DefaultDDCMLevel
		}
		return NewDDCM(t.CF, level), nil
	})
	mustRegisterInfo(Powersave, "both domains pinned at their grid minima", func(Tuning) (Governor, error) {
		return powersaveGovernor{}, nil
	})
	mustRegisterInfo(Ondemand, "Linux-ondemand-style reactive per-core DVFS on sampled throughput", func(t Tuning) (Governor, error) {
		return NewOndemand(t.TinvSec), nil
	})
}
