package governor

import (
	"testing"

	"repro/internal/freq"
	"repro/internal/machine"
	"repro/internal/msr"
)

func TestApplyPerformancePinsMax(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	m := machine.MustNew(cfg)
	// Move cores off max first.
	for c := 0; c < 4; c++ {
		m.Device().Write(msr.IA32PerfCtl, c, msr.PerfCtlRaw(12))
	}
	if err := Apply(Performance, m.Device(), 4, cfg.CoreGrid); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		if got := m.CoreRatio(c); got != cfg.CoreGrid.Max {
			t.Errorf("core %d at %v, want max", c, got)
		}
	}
}

func TestApplyUserspaceNoop(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 2
	m := machine.MustNew(cfg)
	m.Device().Write(msr.IA32PerfCtl, 0, msr.PerfCtlRaw(15))
	if err := Apply(Userspace, m.Device(), 2, cfg.CoreGrid); err != nil {
		t.Fatal(err)
	}
	if got := m.CoreRatio(0); got != 15 {
		t.Errorf("userspace governor moved the core: %v", got)
	}
}

func TestApplyUnknownPolicy(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m := machine.MustNew(cfg)
	if err := Apply(Policy("ondemand"), m.Device(), 1, cfg.CoreGrid); err == nil {
		t.Error("unknown policy must error")
	}
}

func TestAutoUFSQuietAndBusy(t *testing.T) {
	a := DefaultAutoUFS()
	grid := freq.HaswellUncore()
	if got := a.Target(0.1e9, grid.Min, grid.Max); got != 22 {
		t.Errorf("quiet target = %v, want 2.2GHz (Table 2 Default, compute-bound)", got)
	}
	if got := a.Target(1.5e9, grid.Min, grid.Max); got != 30 {
		t.Errorf("busy target = %v, want 3.0GHz (Table 2 Default, memory-bound)", got)
	}
	mid := a.Target(0.85e9, grid.Min, grid.Max)
	if mid < 22 || mid > 30 {
		t.Errorf("ramp target = %v, want within [2.2GHz, 3.0GHz]", mid)
	}
}

func TestAutoUFSRespectsMSRRange(t *testing.T) {
	a := DefaultAutoUFS()
	if got := a.Target(1.5e9, 12, 25); got != 25 {
		t.Errorf("target = %v, must clamp to 0x620 max 2.5GHz", got)
	}
	if got := a.Target(0, 24, 30); got != 24 {
		t.Errorf("target = %v, must clamp to 0x620 min 2.4GHz", got)
	}
}

func TestAutoUFSMonotoneInDemand(t *testing.T) {
	a := DefaultAutoUFS()
	grid := freq.HaswellUncore()
	prev := freq.Ratio(0)
	for d := 0.0; d <= 2e9; d += 0.05e9 {
		got := a.Target(d, grid.Min, grid.Max)
		if got < prev {
			t.Fatalf("target not monotone at demand %g: %v after %v", d, got, prev)
		}
		prev = got
	}
}
