package fuzz

import (
	"context"
	"fmt"

	"repro/internal/scenario"
)

// RunEntryFn runs one corpus entry differentially (every governor) and
// returns its findings. Minimize is written against this function type
// so tests can substitute cheap stubs for the full backend path.
type RunEntryFn func(ctx context.Context, e Entry) ([]Finding, error)

// Minimize greedily shrinks a failing scenario while a finding of one of
// the original kinds persists: fewer iterations, fewer phases, fewer
// repeats, smaller instruction budgets, no jitter. Each accepted
// reduction re-derives the content name and run seed (a minimized
// scenario is a different scenario), so findings are matched by
// (kind, governor) rather than by name. The search evaluates at most
// budget candidates; the best entry found so far is returned with the
// number of evaluations spent.
func Minimize(ctx context.Context, e Entry, kinds map[string]bool, run RunEntryFn, budget int) (Entry, int) {
	spent := 0
	reproduces := func(cand Entry) bool {
		if spent >= budget || ctx.Err() != nil {
			return false
		}
		spent++
		fs, err := run(ctx, cand)
		if err != nil {
			return false
		}
		for _, f := range fs {
			if kinds[f.Kind] {
				return true
			}
		}
		return false
	}
	for spent < budget {
		improved := false
		for _, cand := range candidates(e) {
			if reproduces(cand) {
				e = cand
				improved = true
				break // restart the candidate scan from the smaller entry
			}
			if spent >= budget || ctx.Err() != nil {
				return e, spent
			}
		}
		if !improved {
			break
		}
	}
	return e, spent
}

// rebuild renormalizes a mutated definition and re-derives its content
// name, description and run seed — the same naming rule the generator
// uses, so a minimized entry is indistinguishable from a generated one.
func rebuild(d scenario.Definition) Entry {
	d = d.Normalized()
	sum := defDigest(d)
	d.Name = fmt.Sprintf("fuzz-%x", sum[:6])
	d.Description = fmt.Sprintf("generated: %d phase(s) × %d iteration(s), %s",
		len(d.Phases), d.Iterations, d.Decomposition)
	return Entry{Seed: seedFromDef(d), Def: d}
}

// candidates enumerates one round of strictly-smaller variants, in a
// fixed order biased toward the biggest structural cuts first.
func candidates(e Entry) []Entry {
	var out []Entry
	d := e.Def
	if d.Iterations > 1 {
		v := d
		v.Iterations = 1
		out = append(out, rebuild(v))
	}
	if len(d.Phases) > 1 {
		for i := range d.Phases {
			v := d
			v.Phases = append(append([]scenario.PhaseDef(nil), d.Phases[:i]...), d.Phases[i+1:]...)
			out = append(out, rebuild(v))
		}
	}
	for i, p := range d.Phases {
		if p.Repeat > 1 {
			v := d
			v.Phases = append([]scenario.PhaseDef(nil), d.Phases...)
			v.Phases[i].Repeat = 1
			out = append(out, rebuild(v))
		}
	}
	for i, p := range d.Phases {
		if p.Instructions > 2e10 {
			v := d
			v.Phases = append([]scenario.PhaseDef(nil), d.Phases...)
			v.Phases[i].Instructions = p.Instructions / 2
			out = append(out, rebuild(v))
		}
	}
	for i, p := range d.Phases {
		if p.JitterFrac > 0 || p.MissJitter > 0 {
			v := d
			v.Phases = append([]scenario.PhaseDef(nil), d.Phases...)
			v.Phases[i].JitterFrac = 0
			v.Phases[i].MissJitter = 0
			out = append(out, rebuild(v))
		}
	}
	return out
}
