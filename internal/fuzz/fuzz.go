// Package fuzz is the generative scenario fuzzer and differential
// governor-testing harness: it samples whole scenario phase programs from
// seeded Kumaraswamy/uniform/choice distributions (reusing the
// internal/grid samplers the sweep axes already draw from), expands
// `cuttlefish fuzz -n 1000 -seed k` into a bit-deterministic hash-deduped
// corpus, runs every corpus scenario under every registered governor
// through the same content-addressed service backends sweeps use, and
// distils the cross-governor metrics into a findings report: execution
// errors, governor-ordering inversions (cuttlefish losing to default or
// static on energy, powersave "beating" the maximum-frequency baseline on
// runtime) and slowdowns, plus metric regressions against a committed
// baseline so a behavioral change across PRs is a test failure rather
// than a vibe.
//
// Determinism contract: a corpus is a pure function of (N, seed, the
// generator's distribution constants) and every differential cell is a
// pure function of its RunSpec — the fuzzer pins SimWorkers/BatchQuanta
// to their serial defaults in every spec it emits, so findings are
// identical across host parallelism settings, across the local/remote
// backends, and across cold/warm cache tiers (which change only how fast
// the same canonical bytes come back).
package fuzz

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/governor"
	"repro/internal/scenario"
)

// Config shapes one fuzzing pass. The zero value of every field picks a
// fuzz-oriented default: small fast runs (the point is breadth over the
// scenario space, not paper-length fidelity), every registered governor,
// and the daemon warmup disabled so adaptive governors act within the
// short runs instead of riding their cold-start path the whole time.
type Config struct {
	// N is the number of scenarios to generate before hash-dedup
	// (0 = 100).
	N int
	// Seed drives the whole corpus; equal (N, Seed) reproduce equal
	// corpora bit for bit (0 = 1).
	Seed int64
	// Governors is the differential comparison set (nil = every
	// registered governor, sorted).
	Governors []string
	// Cores is the simulated core count per run (0 = 8 — smaller than
	// the paper's 20-core socket to keep 1000-scenario passes cheap).
	Cores int
	// Scale multiplies instruction budgets (0 = 0.05).
	Scale float64
	// Reps is repetitions per cell; metrics are means over reps
	// (0 = 1).
	Reps int
	// TinvSec is the daemon profiling interval (0 = 20 ms).
	TinvSec float64
	// WarmupSec follows governor.Tuning semantics; the default is -1,
	// warmup disabled (0 keeps -1; set a positive value to restore it).
	WarmupSec float64
	// MaxPhases bounds the phase count per generated scenario (0 = 4).
	MaxPhases int
	// InversionTol is the relative energy slack before a cross-governor
	// ordering counts as inverted (0 = 0.02).
	InversionTol float64
	// SlowdownTol is the relative runtime slack before cuttlefish's
	// overhead over default counts as a slowdown finding (0 = 0.25).
	SlowdownTol float64
	// RegressTol is the relative metric drift vs a baseline before a
	// cell counts as regressed (0 = 0.05).
	RegressTol float64
	// Workers bounds concurrent differential cells (0 = GOMAXPROCS).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Governors) == 0 {
		c.Governors = governor.Names()
	} else {
		c.Governors = append([]string(nil), c.Governors...)
		sort.Strings(c.Governors)
	}
	if c.Cores <= 0 {
		c.Cores = 8
	}
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	if c.TinvSec <= 0 {
		c.TinvSec = 20e-3
	}
	if c.WarmupSec == 0 {
		c.WarmupSec = -1
	}
	if c.MaxPhases <= 0 {
		c.MaxPhases = 4
	}
	if c.InversionTol <= 0 {
		c.InversionTol = 0.02
	}
	if c.SlowdownTol <= 0 {
		c.SlowdownTol = 0.25
	}
	if c.RegressTol <= 0 {
		c.RegressTol = 0.05
	}
	return c
}

// Entry is one corpus scenario: a normalized definition plus the run
// seed its differential cells execute with. It is the unit of corpus
// persistence — a minimized failing scenario is written as one Entry
// JSON file under testdata/corpus/ and replayed with `cuttlefish fuzz
// -replay`.
type Entry struct {
	// Seed is the RunSpec seed of every cell of this scenario. The
	// generator derives it from the definition's content hash, so two
	// textually identical generated scenarios are identical runs and
	// hash-dedup is exact.
	Seed int64 `json:"seed"`
	// Def is the normalized scenario definition.
	Def scenario.Definition `json:"def"`
	// Note records provenance (generator seed/index, the finding that
	// got a corpus file committed); it is not part of any digest.
	Note string `json:"note,omitempty"`
}

// canonicalDef returns the canonical bytes of a definition: normalized,
// fixed struct field order. defDigest and corpus dedup key on it.
func canonicalDef(d scenario.Definition) []byte {
	raw, err := json.Marshal(d.Normalized())
	if err != nil {
		// Definition is a struct of scalars and one slice of scalar
		// structs; Marshal cannot fail on it.
		panic(fmt.Sprintf("fuzz: canonical marshal: %v", err))
	}
	return raw
}

// defDigest is the content hash of a definition, independent of its
// (content-derived) name and description: the dedup identity.
func defDigest(d scenario.Definition) [32]byte {
	anon := d
	anon.Name = ""
	anon.Description = ""
	return sha256.Sum256(canonicalDef(anon))
}

// Corpus is one expanded scenario set, in generation order after
// hash-dedup.
type Corpus struct {
	// Seed and Requested echo the generation parameters.
	Seed      int64 `json:"seed"`
	Requested int   `json:"requested"`
	// Duplicates counts generated scenarios dropped by hash-dedup.
	Duplicates int `json:"duplicates"`
	// Entries are the surviving scenarios in generation order.
	Entries []Entry `json:"entries"`
}

// Digest is the corpus's content address: the hex SHA-256 over every
// entry's (seed, canonical definition) in order. Two fuzz invocations
// agree on their whole corpus iff their digests are equal — the
// bit-determinism gate CI compares across back-to-back runs.
func (c *Corpus) Digest() string {
	h := sha256.New()
	for _, e := range c.Entries {
		binary.Write(h, binary.BigEndian, e.Seed)
		h.Write(canonicalDef(e.Def))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// LoadCorpus reads replayable corpus entries from path: either one Entry
// JSON file, or a directory whose *.json files (in sorted filename
// order, for determinism) each hold one Entry. Every entry is normalized
// and validated on the way in — a corrupt corpus file is an error, not a
// silent skip.
func LoadCorpus(path string) (*Corpus, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("fuzz: corpus: %w", err)
	}
	var files []string
	if info.IsDir() {
		ents, err := os.ReadDir(path)
		if err != nil {
			return nil, fmt.Errorf("fuzz: corpus: %w", err)
		}
		for _, de := range ents {
			if !de.IsDir() && strings.HasSuffix(de.Name(), ".json") {
				files = append(files, filepath.Join(path, de.Name()))
			}
		}
		sort.Strings(files)
		if len(files) == 0 {
			return nil, fmt.Errorf("fuzz: corpus: no *.json entries under %s", path)
		}
	} else {
		files = []string{path}
	}
	c := &Corpus{Requested: len(files)}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("fuzz: corpus: %w", err)
		}
		e, err := ParseEntry(raw)
		if err != nil {
			return nil, fmt.Errorf("fuzz: corpus %s: %w", f, err)
		}
		c.Entries = append(c.Entries, e)
	}
	return c, nil
}

// ParseEntry decodes and validates one corpus entry.
func ParseEntry(raw []byte) (Entry, error) {
	var e Entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return Entry{}, err
	}
	e.Def = e.Def.Normalized()
	if err := e.Def.Validate(); err != nil {
		return Entry{}, err
	}
	if e.Seed == 0 {
		e.Seed = seedFromDef(e.Def)
	}
	return e, nil
}

// WriteEntry persists one corpus entry as an indented, replayable JSON
// file (atomic enough for testdata: these are committed artifacts, not a
// live store).
func WriteEntry(path string, e Entry) error {
	raw, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// seedFromDef derives the entry's run seed from the definition's content
// hash: positive, nonzero (zero would renormalize to the service
// default), and a pure function of content so identical definitions are
// identical runs.
func seedFromDef(d scenario.Definition) int64 {
	sum := defDigest(d)
	s := int64(binary.BigEndian.Uint64(sum[:8]) & (1<<62 - 1))
	if s == 0 {
		s = 1
	}
	return s
}
