package fuzz

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/orchestrator"
	"repro/internal/service"
)

// BenchmarkGenerate measures raw corpus expansion: sampling, validation,
// the JSON round-trip self-check and hash-dedup, per 100 scenarios.
func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Config{N: 100, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDifferentialWarm measures the differential pass over a cached
// service: every cell a content-address hit, the floor the fuzz-smoke CI
// job's second run sits on.
func BenchmarkDifferentialWarm(b *testing.B) {
	corpus, err := Generate(Config{N: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	svc := service.New(service.Config{Workers: 2, QueueDepth: 64})
	defer svc.Close()
	pool := []orchestrator.Backend{&orchestrator.LocalBackend{Service: svc}}
	cfg := Config{N: 5, Seed: 1}
	if _, err := Run(context.Background(), pool, corpus, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), pool, corpus, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEmitFuzzBaseline writes BENCH_fuzz.json when BENCH_FUZZ_OUT names
// a path: the corpus generation rate and the wall clock of one
// differential pass cold (every cell simulated) vs warm (every cell a
// cache hit), over the committed baseline's (n, seed).
func TestEmitFuzzBaseline(t *testing.T) {
	out := os.Getenv("BENCH_FUZZ_OUT")
	if out == "" {
		t.Skip("set BENCH_FUZZ_OUT=<path> to emit the baseline")
	}
	cfg := Config{N: 50, Seed: 7}
	genStart := time.Now()
	corpus, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	genWall := time.Since(genStart)

	// The LRU must hold the whole cell grid or the warm pass cycles it
	// back to misses (400 cells vs the 256-entry default).
	svc := service.New(service.Config{Workers: 0, QueueDepth: 64, CacheEntries: 4096})
	defer svc.Close()
	pool := []orchestrator.Backend{&orchestrator.LocalBackend{Service: svc}}
	coldStart := time.Now()
	rep, err := Run(context.Background(), pool, corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldWall := time.Since(coldStart)
	warmStart := time.Now()
	rep2, err := Run(context.Background(), pool, corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warmWall := time.Since(warmStart)
	if rep.FindingsDigest() != rep2.FindingsDigest() {
		t.Fatal("cold and warm passes disagree on findings")
	}
	hits := 0
	for _, c := range rep2.Cells {
		if c.Outcome == string(service.OutcomeHit) {
			hits++
		}
	}
	baseline := map[string]any{
		"benchmark":            "fuzz: n=50 seed=7 corpus generation + differential pass, cold vs cache-warm",
		"n":                    cfg.N,
		"seed":                 cfg.Seed,
		"scenarios":            len(corpus.Entries),
		"cells":                len(rep.Cells),
		"findings":             len(rep.Findings),
		"corpus_digest":        corpus.Digest(),
		"generate_ms":          float64(genWall.Microseconds()) / 1e3,
		"generate_per_sec":     float64(cfg.N) / genWall.Seconds(),
		"differential_cold_ms": float64(coldWall.Microseconds()) / 1e3,
		"differential_warm_ms": float64(warmWall.Microseconds()) / 1e3,
		"speedup":              float64(coldWall) / float64(warmWall),
		"warm_cache_hits":      hits,
	}
	raw, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: generate %v, cold %v, warm %v (%d/%d hits)",
		out, genWall, coldWall, warmWall, hits, len(rep2.Cells))
}
