package fuzz

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/experiments"
	"repro/internal/governor"
	"repro/internal/orchestrator"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/service"
)

// Cell is one (scenario, governor) execution of the differential pass:
// the mean metrics over the cell's repetitions, or the error that kept
// it from producing them. Outcome records how the backend served the
// cell (hit/miss/disk/coalesced); it is operational detail, deliberately
// excluded from every digest so warm and cold passes stay byte-identical
// where it counts.
type Cell struct {
	Scenario string  `json:"scenario"`
	Governor string  `json:"governor"`
	Seconds  float64 `json:"seconds,omitempty"`
	Joules   float64 `json:"joules,omitempty"`
	Err      string  `json:"error,omitempty"`
	Outcome  string  `json:"-"`
}

// Finding kinds, the taxonomy of the differential report.
const (
	// KindError is a cell that failed to execute: validation rejection,
	// simulation deadline overrun, backend crash.
	KindError = "error"
	// KindInversion is a governor-ordering inversion: cuttlefish using
	// measurably more energy than a non-adaptive reference environment.
	KindInversion = "inversion"
	// KindAnomaly is a physically suspicious ordering: the
	// minimum-frequency powersave environment finishing faster than the
	// maximum-frequency default.
	KindAnomaly = "anomaly"
	// KindSlowdown is cuttlefish exceeding default's runtime beyond the
	// configured overhead budget.
	KindSlowdown = "slowdown"
	// KindRegression is a metric drifted beyond tolerance against a
	// committed baseline (produced only by Diff, never by Run).
	KindRegression = "regression"
)

// Finding is one flagged behavior, a pure function of the cells.
type Finding struct {
	Scenario string `json:"scenario"`
	Kind     string `json:"kind"`
	// Governor is the strategy the finding is about; Reference the
	// strategy it was compared against (empty for error findings).
	Governor  string `json:"governor,omitempty"`
	Reference string `json:"reference,omitempty"`
	// DeltaPct quantifies the comparison (energy or runtime excess, in
	// percent), zero for error findings.
	DeltaPct float64 `json:"delta_pct,omitempty"`
	Detail   string  `json:"detail"`
}

// key identifies a finding across runs for baseline set-comparison;
// DeltaPct and Detail stay out so a drifting magnitude is a metric
// regression, not a "new" finding.
func (f Finding) key() string {
	return f.Scenario + "\x00" + f.Kind + "\x00" + f.Governor + "\x00" + f.Reference
}

// Report is one differential pass over a corpus.
type Report struct {
	N            int       `json:"n"`
	Seed         int64     `json:"seed"`
	CorpusDigest string    `json:"corpus_digest"`
	Governors    []string  `json:"governors"`
	Scenarios    int       `json:"scenarios"`
	Duplicates   int       `json:"duplicates"`
	Cells        []Cell    `json:"cells"`
	Findings     []Finding `json:"findings"`
}

// FindingsDigest is the content address of the findings list — the
// second half of the bit-determinism gate (corpus digest covers what
// ran; this covers what was concluded).
func (r *Report) FindingsDigest() string {
	raw, err := json.Marshal(r.Findings)
	if err != nil {
		panic(fmt.Sprintf("fuzz: findings marshal: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// CellSpec maps one corpus entry × governor onto the RunSpec its cell
// executes: an inline scenario_def "run" spec with the fuzzer's run
// parameters. SimWorkers and BatchQuanta stay at their serial defaults
// no matter how the host is configured — engine worker counts change
// task-DAG schedules (they are part of the spec hash for exactly that
// reason), and a findings report must not depend on host parallelism.
func CellSpec(e Entry, gov string, cfg Config) service.RunSpec {
	cfg = cfg.withDefaults()
	def := e.Def
	return service.RunSpec{
		Experiment:  "run",
		ScenarioDef: &def,
		Governor:    gov,
		Cores:       cfg.Cores,
		Scale:       cfg.Scale,
		Reps:        cfg.Reps,
		Seed:        e.Seed,
		TinvSec:     cfg.TinvSec,
		WarmupSec:   cfg.WarmupSec,
	}.Normalized()
}

// Run executes the differential pass: every corpus entry under every
// configured governor, fanned over the backends round-robin with bounded
// concurrency, then analyzed into findings. Cell failures become
// findings, not errors — the only error paths are context cancellation
// and an empty backend set.
func Run(ctx context.Context, backends []orchestrator.Backend, corpus *Corpus, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(backends) == 0 {
		return nil, fmt.Errorf("fuzz: no backends")
	}
	govs := cfg.Governors
	cells := make([]Cell, len(corpus.Entries)*len(govs))
	pool := runner.Pool{Workers: cfg.Workers}
	err := pool.ForEach(ctx, len(cells), func(ctx context.Context, i int) error {
		e := corpus.Entries[i/len(govs)]
		gov := govs[i%len(govs)]
		cell := Cell{Scenario: e.Def.Name, Governor: gov}
		res, err := backends[i%len(backends)].Run(ctx, CellSpec(e, gov, cfg))
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			cell.Err = err.Error()
			cells[i] = cell
			return nil
		}
		cell.Outcome = string(res.Outcome)
		sec, joules, err := meanMetrics(res.Body)
		if err != nil {
			cell.Err = err.Error()
		} else {
			cell.Seconds, cell.Joules = sec, joules
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		N:            corpus.Requested,
		Seed:         corpus.Seed,
		CorpusDigest: corpus.Digest(),
		Governors:    govs,
		Scenarios:    len(corpus.Entries),
		Duplicates:   corpus.Duplicates,
		Cells:        cells,
	}
	rep.Findings = analyze(corpus, cells, cfg)
	return rep, nil
}

// meanMetrics decodes one cell's canonical report bytes and averages the
// run columns over its repetition rows.
func meanMetrics(body []byte) (seconds, joules float64, err error) {
	rep, err := report.Decode(body)
	if err != nil {
		return 0, 0, err
	}
	secs, err := rep.Floats(experiments.RunColSeconds)
	if err != nil {
		return 0, 0, err
	}
	js, err := rep.Floats(experiments.RunColJoules)
	if err != nil {
		return 0, 0, err
	}
	if len(secs) == 0 || len(js) != len(secs) {
		return 0, 0, fmt.Errorf("fuzz: run report has %d seconds / %d joules rows", len(secs), len(js))
	}
	for i := range secs {
		seconds += secs[i]
		joules += js[i]
	}
	n := float64(len(secs))
	return seconds / n, joules / n, nil
}

// analyze derives findings from the cell grid: pure, order-deterministic
// (corpus order × governor order), no clock, no randomness.
func analyze(corpus *Corpus, cells []Cell, cfg Config) []Finding {
	govs := cfg.Governors
	findings := []Finding{}
	for i, e := range corpus.Entries {
		row := map[string]Cell{}
		for j, g := range govs {
			c := cells[i*len(govs)+j]
			row[g] = c
			if c.Err != "" {
				findings = append(findings, Finding{
					Scenario: e.Def.Name,
					Kind:     KindError,
					Governor: g,
					Detail:   c.Err,
				})
			}
		}
		ok := func(g string) (Cell, bool) {
			c, present := row[g]
			return c, present && c.Err == ""
		}
		// Inversions: the adaptive daemon must not burn measurably more
		// energy than the non-adaptive references it exists to beat.
		if cf, cok := ok(governor.Cuttlefish); cok {
			for _, ref := range []string{governor.Default, governor.Static} {
				rc, rok := ok(ref)
				if !rok {
					continue
				}
				if cf.Joules > rc.Joules*(1+cfg.InversionTol) {
					pct := 100 * (cf.Joules/rc.Joules - 1)
					findings = append(findings, Finding{
						Scenario:  e.Def.Name,
						Kind:      KindInversion,
						Governor:  governor.Cuttlefish,
						Reference: ref,
						DeltaPct:  pct,
						Detail:    fmt.Sprintf("cuttlefish uses %.1f%% more energy than %s (%.1f J vs %.1f J)", pct, ref, cf.Joules, rc.Joules),
					})
				}
			}
			if dc, dok := ok(governor.Default); dok && cf.Seconds > dc.Seconds*(1+cfg.SlowdownTol) {
				pct := 100 * (cf.Seconds/dc.Seconds - 1)
				findings = append(findings, Finding{
					Scenario:  e.Def.Name,
					Kind:      KindSlowdown,
					Governor:  governor.Cuttlefish,
					Reference: governor.Default,
					DeltaPct:  pct,
					Detail:    fmt.Sprintf("cuttlefish runs %.1f%% longer than default (%.2f s vs %.2f s)", pct, cf.Seconds, dc.Seconds),
				})
			}
		}
		// Anomaly: minimum frequencies finishing ahead of maximum
		// frequencies says the simulator (or a governor) misbehaved.
		if ps, pok := ok(governor.Powersave); pok {
			if dc, dok := ok(governor.Default); dok && ps.Seconds < dc.Seconds*(1-cfg.InversionTol) {
				pct := 100 * (1 - ps.Seconds/dc.Seconds)
				findings = append(findings, Finding{
					Scenario:  e.Def.Name,
					Kind:      KindAnomaly,
					Governor:  governor.Powersave,
					Reference: governor.Default,
					DeltaPct:  pct,
					Detail:    fmt.Sprintf("powersave finishes %.1f%% faster than default (%.2f s vs %.2f s)", pct, ps.Seconds, dc.Seconds),
				})
			}
		}
	}
	sort.SliceStable(findings, func(a, b int) bool { return findings[a].key() < findings[b].key() })
	return findings
}

// RunReport renders the findings as the structured report `cuttlefish
// fuzz` prints: one row per finding, digests and corpus statistics in
// Meta. It contains no timing, host or cache-outcome data, so two passes
// over the same corpus emit byte-identical documents — the property the
// fuzz-smoke CI job compares directly.
func (r *Report) RunReport() *report.RunReport {
	rep := report.New("fuzz", "scenario", "kind", "governor", "reference", "delta_pct", "detail")
	rep.Title = fmt.Sprintf("fuzz: %d scenario(s) × %d governor(s), %d finding(s)",
		r.Scenarios, len(r.Governors), len(r.Findings))
	rep.Governors = r.Governors
	rep.Meta = map[string]any{
		"n":               r.N,
		"seed":            r.Seed,
		"scenarios":       r.Scenarios,
		"duplicates":      r.Duplicates,
		"cells":           len(r.Cells),
		"corpus_digest":   r.CorpusDigest,
		"findings_digest": r.FindingsDigest(),
	}
	for _, f := range r.Findings {
		var delta any
		if f.DeltaPct != 0 {
			delta = f.DeltaPct
		}
		rep.AddRow(f.Scenario, f.Kind, f.Governor, f.Reference, delta, f.Detail)
	}
	return rep
}
