package fuzz

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/governor"
	"repro/internal/orchestrator"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/service"
)

// stubExecutor is a canned pure-function-of-spec executor with a fixed
// governor ordering: cuttlefish burns more energy and runs longer than
// the references (inversion + slowdown), powersave finishes faster than
// default (anomaly), and ddcm always fails (error). It makes every
// analyze invariant fire deterministically without running simulations.
func stubExecutor(_ context.Context, spec service.RunSpec) (*report.RunReport, error) {
	if spec.Governor == governor.DDCM {
		return nil, fmt.Errorf("stub: ddcm refused")
	}
	seconds, joules := 10.0, 100.0
	switch spec.Governor {
	case governor.Cuttlefish:
		seconds, joules = 14.0, 150.0
	case governor.Powersave:
		seconds = 5.0
	}
	rep := report.New("run",
		experiments.RunColBenchmark, experiments.RunColGovernor, experiments.RunColRep,
		experiments.RunColSeconds, experiments.RunColJoules)
	for rep0 := 0; rep0 < spec.Reps; rep0++ {
		rep.AddRow(spec.ScenarioDef.Name, spec.Governor, rep0, seconds, joules)
	}
	return rep, nil
}

func stubBackend(t *testing.T) orchestrator.Backend {
	t.Helper()
	svc := service.New(service.Config{Workers: 2, QueueDepth: 64, Executor: stubExecutor})
	t.Cleanup(svc.Close)
	return &orchestrator.LocalBackend{Service: svc, Label: "stub"}
}

func TestGenerateIsBitDeterministic(t *testing.T) {
	cfg := Config{N: 200, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("same (N, seed) produced different corpus digests:\n%s\n%s", a.Digest(), b.Digest())
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (N, seed) produced structurally different corpora")
	}
	c, err := Generate(Config{N: 200, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest() == a.Digest() {
		t.Fatal("different seeds produced the same corpus digest")
	}
}

func TestGenerateCoversTheScenarioSpace(t *testing.T) {
	c, err := Generate(Config{N: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Entries)+c.Duplicates != c.Requested {
		t.Fatalf("entries(%d) + duplicates(%d) != requested(%d)", len(c.Entries), c.Duplicates, c.Requested)
	}
	decomp := map[string]int{}
	exposure := map[string]int{} // full (normalized default) / zero / fractional
	multiPhase := 0
	for _, e := range c.Entries {
		if err := e.Def.Validate(); err != nil {
			t.Fatalf("generated scenario %s invalid: %v", e.Def.Name, err)
		}
		decomp[e.Def.Decomposition]++
		if len(e.Def.Phases) > 1 {
			multiPhase++
		}
		for _, p := range e.Def.Phases {
			switch {
			case p.Exposure != nil && *p.Exposure == 1:
				exposure["full"]++
			case p.Exposure != nil && *p.Exposure == 0:
				exposure["zero"]++
			default:
				exposure["fractional"]++
			}
		}
		if e.Seed <= 0 {
			t.Fatalf("scenario %s has non-positive run seed %d", e.Def.Name, e.Seed)
		}
	}
	if decomp[scenario.WorkSharing] == 0 || decomp[scenario.TaskDAG] == 0 {
		t.Fatalf("corpus misses a decomposition mode: %v", decomp)
	}
	for _, k := range []string{"full", "zero", "fractional"} {
		if exposure[k] == 0 {
			t.Fatalf("corpus never drew exposure case %q: %v", k, exposure)
		}
	}
	if multiPhase == 0 {
		t.Fatal("corpus has no multi-phase scenarios")
	}
}

func TestGeneratedNamesAreContentDerived(t *testing.T) {
	c, err := Generate(Config{N: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range c.Entries {
		sum := defDigest(e.Def)
		if want := fmt.Sprintf("fuzz-%x", sum[:6]); e.Def.Name != want {
			t.Fatalf("name %q is not content-derived (want %q)", e.Def.Name, want)
		}
		if e.Seed != seedFromDef(e.Def) {
			t.Fatalf("scenario %s run seed is not content-derived", e.Def.Name)
		}
	}
}

func TestDifferentialRunFindsCannedInvariants(t *testing.T) {
	corpus, err := Generate(Config{N: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 6, Seed: 11, Workers: 4}
	be := stubBackend(t)
	rep, err := Run(context.Background(), []orchestrator.Backend{be}, corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorpusDigest != corpus.Digest() {
		t.Fatal("report does not carry the corpus digest")
	}
	wantCells := len(corpus.Entries) * len(governor.Names())
	if len(rep.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(rep.Cells), wantCells)
	}
	// Per scenario the stub guarantees: error (ddcm), inversion vs
	// default, inversion vs static, slowdown, anomaly.
	perKind := map[string]int{}
	for _, f := range rep.Findings {
		perKind[f.Kind]++
	}
	n := len(corpus.Entries)
	want := map[string]int{
		KindError:     n,
		KindInversion: 2 * n,
		KindSlowdown:  n,
		KindAnomaly:   n,
	}
	if !reflect.DeepEqual(perKind, want) {
		t.Fatalf("findings per kind = %v, want %v", perKind, want)
	}

	// The pass must be bit-deterministic: a second run over the same
	// corpus emits the identical findings digest and report bytes.
	rep2, err := Run(context.Background(), []orchestrator.Backend{stubBackend(t)}, corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FindingsDigest() != rep2.FindingsDigest() {
		t.Fatal("two passes over the same corpus disagree on findings")
	}
	b1, err := rep.RunReport().Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := rep2.RunReport().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two passes over the same corpus emit different report bytes")
	}
}

func TestBaselineDiff(t *testing.T) {
	corpus, err := Generate(Config{N: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 4, Seed: 5}
	rep, err := Run(context.Background(), []orchestrator.Backend{stubBackend(t)}, corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := BaselineOf(rep, cfg)

	// Round-trip through disk, then a self-diff must be clean.
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := base.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	violations, resolved, err := Diff(loaded, rep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 || len(resolved) != 0 {
		t.Fatalf("self-diff not clean: violations=%v resolved=%v", violations, resolved)
	}

	// A new finding and a metric regression must both surface.
	mutated := *rep
	mutated.Findings = append([]Finding(nil), rep.Findings...)
	extra := Finding{Scenario: "zz", Kind: KindAnomaly, Governor: "x", Reference: "y", Detail: "synthetic"}
	mutated.Findings = append(mutated.Findings, extra)
	mutated.Cells = append([]Cell(nil), rep.Cells...)
	for i, c := range mutated.Cells {
		if c.Err == "" {
			mutated.Cells[i].Joules = c.Joules * 1.5
			break
		}
	}
	violations, _, err = Diff(loaded, &mutated, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var gotNew, gotRegress bool
	for _, v := range violations {
		if v.Scenario == "zz" && strings.HasPrefix(v.Detail, "new vs baseline:") {
			gotNew = true
		}
		if v.Kind == KindRegression {
			gotRegress = true
		}
	}
	if !gotNew || !gotRegress {
		t.Fatalf("diff missed a violation class (new=%v regression=%v): %v", gotNew, gotRegress, violations)
	}

	// A resolved finding is reported but is not a violation.
	shrunk := *rep
	shrunk.Findings = rep.Findings[1:]
	violations, resolved, err = Diff(loaded, &shrunk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 || len(resolved) != 1 {
		t.Fatalf("resolved diff: violations=%d resolved=%d, want 0/1", len(violations), len(resolved))
	}

	// Corpus drift is an error, not a diff.
	drifted := *rep
	drifted.CorpusDigest = "deadbeef"
	if _, _, err := Diff(loaded, &drifted, cfg); err == nil {
		t.Fatal("corpus digest mismatch must be an error")
	}
}

func TestMinimizeShrinksWhileReproducing(t *testing.T) {
	corpus, err := Generate(Config{N: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var seedEntry Entry
	for _, e := range corpus.Entries {
		if len(e.Def.Phases) > 1 && e.Def.Iterations > 1 {
			seedEntry = e
			break
		}
	}
	if seedEntry.Def.Name == "" {
		t.Skip("no multi-phase multi-iteration entry in this corpus slice")
	}
	// The "bug" reproduces whenever any phase has MissPerInstr above the
	// corpus median — so minimization can strip iterations, sibling
	// phases and jitter but must keep at least one miss-heavy phase.
	trigger := 0.0
	for _, p := range seedEntry.Def.Phases {
		if p.MissPerInstr > trigger {
			trigger = p.MissPerInstr
		}
	}
	evals := 0
	run := func(_ context.Context, e Entry) ([]Finding, error) {
		evals++
		for _, p := range e.Def.Phases {
			if p.MissPerInstr >= trigger {
				return []Finding{{Scenario: e.Def.Name, Kind: KindInversion, Governor: governor.Cuttlefish, Reference: governor.Static, Detail: "stub"}}, nil
			}
		}
		return nil, nil
	}
	min, spent := Minimize(context.Background(), seedEntry, map[string]bool{KindInversion: true}, run, 200)
	if spent == 0 || spent != evals {
		t.Fatalf("spent=%d evals=%d", spent, evals)
	}
	fs, err := run(context.Background(), min)
	if err != nil || len(fs) == 0 {
		t.Fatalf("minimized entry no longer reproduces the finding: %v %v", fs, err)
	}
	if min.Def.Iterations != 1 {
		t.Fatalf("minimize left Iterations=%d", min.Def.Iterations)
	}
	if len(min.Def.Phases) != 1 {
		t.Fatalf("minimize left %d phases", len(min.Def.Phases))
	}
	if err := min.Def.Validate(); err != nil {
		t.Fatalf("minimized entry invalid: %v", err)
	}
	if min.Seed != seedFromDef(min.Def) {
		t.Fatal("minimized entry's seed was not re-derived from content")
	}
}

func TestCorpusEntryIO(t *testing.T) {
	c, err := Generate(Config{N: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for i, e := range c.Entries {
		e.Note = "io round trip"
		if err := WriteEntry(filepath.Join(dir, fmt.Sprintf("%02d.json", i)), e); err != nil {
			t.Fatal(err)
		}
	}
	back, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(c.Entries) {
		t.Fatalf("loaded %d entries, want %d", len(back.Entries), len(c.Entries))
	}
	for i, e := range back.Entries {
		if !reflect.DeepEqual(e.Def, c.Entries[i].Def) || e.Seed != c.Entries[i].Seed {
			t.Fatalf("entry %d changed across the disk round trip", i)
		}
	}
	// Single-file load works too.
	one, err := LoadCorpus(filepath.Join(dir, "00.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Entries) != 1 {
		t.Fatalf("single-file load returned %d entries", len(one.Entries))
	}
	// A corrupt entry is an error, not a skip.
	if err := os.WriteFile(filepath.Join(dir, "99.json"), []byte(`{"def":{"phases":[]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil {
		t.Fatal("corrupt corpus entry must fail the load")
	}
}

// TestCorpusReplay runs every committed corpus scenario under every
// registered governor through the real simulator — the -race replay
// gate CI leans on. Committed entries must execute clean: no validation
// failures, no panics, no empty metrics.
func TestCorpusReplay(t *testing.T) {
	corpus, err := LoadCorpus(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	decomp := map[string]bool{}
	for _, e := range corpus.Entries {
		decomp[e.Def.Decomposition] = true
	}
	if !decomp[scenario.WorkSharing] || !decomp[scenario.TaskDAG] {
		t.Fatalf("committed corpus must cover both decomposition modes, has %v", decomp)
	}
	svc := service.New(service.Config{Workers: 2, QueueDepth: 64})
	t.Cleanup(svc.Close)
	be := &orchestrator.LocalBackend{Service: svc, Label: "replay"}
	cfg := Config{Scale: 0.02, Cores: 4}
	rep, err := Run(context.Background(), []orchestrator.Backend{be}, corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Errorf("replay %s/%s failed: %s", c.Scenario, c.Governor, c.Err)
			continue
		}
		if c.Seconds <= 0 || c.Joules <= 0 {
			t.Errorf("replay %s/%s produced empty metrics (%g s, %g J)", c.Scenario, c.Governor, c.Seconds, c.Joules)
		}
	}
}

// TestDifferentialRealExecutorSmoke runs a tiny generated corpus through
// the real simulator twice and demands identical findings — the
// in-process version of the CI fuzz-smoke byte-identity gate.
func TestDifferentialRealExecutorSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-executor differential pass in -short mode")
	}
	corpus, err := Generate(Config{N: 3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 3, Seed: 17, Scale: 0.02, Cores: 4}
	pass := func() *Report {
		svc := service.New(service.Config{Workers: 2, QueueDepth: 64})
		defer svc.Close()
		rep, err := Run(context.Background(), []orchestrator.Backend{&orchestrator.LocalBackend{Service: svc}}, corpus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := pass(), pass()
	for _, c := range a.Cells {
		if c.Err != "" {
			t.Errorf("cell %s/%s failed under the real executor: %s", c.Scenario, c.Governor, c.Err)
		}
	}
	if a.FindingsDigest() != b.FindingsDigest() {
		t.Fatal("two real-executor passes disagree on findings")
	}
	ba, err := a.RunReport().Encode()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.RunReport().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("two real-executor passes emit different report bytes")
	}
}
