package fuzz

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"

	"repro/internal/grid"
	"repro/internal/scenario"
)

// Distribution constants of the generator. These are part of the corpus
// identity: changing any of them changes every corpus digest, which is
// exactly what the committed baseline is there to catch. The Kumaraswamy
// shapes skew each knob toward the regime the paper's Table 1 spans
// while keeping the tails open — (1.6, 2.2) over a log-instruction axis
// concentrates mass mid-range, (1.2, 3.0) over miss density favors
// compute-leaning phases but still draws bandwidth-saturating ones.
const (
	genTaskDAGProb       = 0.30 // else work-sharing
	genLogInstrMin       = 10.0 // 10^10 instructions per phase, minimum
	genLogInstrMax       = 11.5 // 10^11.5 ≈ 3.2e11, maximum
	genMissMax           = 0.12 // past the AMG end of Table 1
	genIPCMin, genIPCMax = 0.5, 2.4
	genRemoteMax         = 0.5
	genExposureUnsetP    = 0.25 // leave exposure at the default (fully exposed)
	genExposureZeroP     = 0.10 // perfectly prefetched phase
	genJitterP           = 0.50
	genJitterMax         = 0.30
	genMissJitterP       = 0.30
	genMissJitterMax     = 0.008
)

// splitmix64 is the per-index seed scrambler: adjacent corpus indices
// must not produce correlated sampler streams, and math/rand's LCG-style
// seeding is too forgiving of nearby seeds to rely on directly.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// entrySeed derives the sampler seed of corpus index i.
func entrySeed(seed int64, i int) int64 {
	return int64(splitmix64(uint64(seed)^splitmix64(uint64(i)+0x5fa2b7)) & (1<<62 - 1))
}

// Generate expands (cfg.N, cfg.Seed) into the corpus: N sampled phase
// programs, hash-deduped on content, every survivor validated and
// round-tripped through the DSL's JSON form. The result is bit-identical
// across machines and invocations — generation touches no clock, no
// global RNG and no map iteration order.
func Generate(cfg Config) (*Corpus, error) {
	cfg = cfg.withDefaults()
	c := &Corpus{Seed: cfg.Seed, Requested: cfg.N}
	seen := make(map[[32]byte]bool, cfg.N)
	for i := 0; i < cfg.N; i++ {
		def := generateDefinition(grid.NewSampler(entrySeed(cfg.Seed, i)), cfg)
		if err := checkGenerated(def); err != nil {
			// A generator bug, not a data error: the distributions above
			// are constructed to emit only valid programs.
			return nil, fmt.Errorf("fuzz: generated scenario %d invalid: %w", i, err)
		}
		key := defDigest(def)
		if seen[key] {
			c.Duplicates++
			continue
		}
		seen[key] = true
		c.Entries = append(c.Entries, Entry{
			Seed: seedFromDef(def),
			Def:  def,
			Note: fmt.Sprintf("generated: seed %d index %d", cfg.Seed, i),
		})
	}
	return c, nil
}

// generateDefinition samples one phase program. Every draw comes from
// the entry's private sampler stream in a fixed call order, so the
// definition is a pure function of the sampler seed.
func generateDefinition(s *grid.Sampler, cfg Config) scenario.Definition {
	d := scenario.Definition{
		Decomposition: scenario.WorkSharing,
		Iterations:    s.IntBetween(1, 4),
	}
	if s.Bool(genTaskDAGProb) {
		d.Decomposition = scenario.TaskDAG
	}
	phases := s.IntBetween(1, cfg.MaxPhases)
	for p := 0; p < phases; p++ {
		ph := scenario.PhaseDef{
			Name:          fmt.Sprintf("p%d", p),
			Instructions:  math.Pow(10, s.Kumaraswamy(1.6, 2.2, genLogInstrMin, genLogInstrMax)),
			MissPerInstr:  s.Kumaraswamy(1.2, 3.0, 0, genMissMax),
			IPC:           s.Kumaraswamy(2, 2, genIPCMin, genIPCMax),
			RemoteFrac:    s.Uniform(0, genRemoteMax),
			ChunksPerCore: []int{4, 8, 16}[s.Choice([]float64{1, 2, 2})],
			Repeat:        s.IntBetween(1, 3),
		}
		switch {
		case s.Bool(genExposureUnsetP):
			// fully exposed via the normalization default
		case s.Bool(genExposureZeroP / (1 - genExposureUnsetP)):
			zero := 0.0
			ph.Exposure = &zero // perfectly prefetched
		default:
			e := s.Uniform(0.05, 1)
			ph.Exposure = &e
		}
		if s.Bool(genJitterP) {
			ph.JitterFrac = s.Uniform(0, genJitterMax)
		}
		if s.Bool(genMissJitterP) {
			ph.MissJitter = s.Uniform(0, genMissJitterMax)
		}
		d.Phases = append(d.Phases, ph)
	}
	d = d.Normalized()
	// Name and description derive from content (never from the corpus
	// index), so two identical programs from different indices carry
	// identical bytes and hash-dedup sees through them.
	sum := defDigest(d)
	d.Name = fmt.Sprintf("fuzz-%x", sum[:6])
	d.Description = fmt.Sprintf("generated: %d phase(s) × %d iteration(s), %s",
		len(d.Phases), d.Iterations, d.Decomposition)
	return d
}

// checkGenerated enforces the generator's output contract: the scenario
// validates, and it survives a round trip through the DSL's JSON form
// unchanged — the property corpus persistence and RunSpec embedding both
// lean on.
func checkGenerated(d scenario.Definition) error {
	if err := d.Validate(); err != nil {
		return err
	}
	raw, err := json.Marshal(d)
	if err != nil {
		return err
	}
	back, err := scenario.ParseDefinition(raw)
	if err != nil {
		return fmt.Errorf("round trip parse: %w", err)
	}
	if norm := back.Normalized(); !reflect.DeepEqual(norm, d) {
		return fmt.Errorf("round trip changed the definition")
	}
	return nil
}
