package fuzz

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"reflect"
	"sort"
)

// Baseline is a committed snapshot of one differential pass: the corpus
// identity, every cell's metrics and the findings that held. CI
// regenerates the pass and diffs against it, so a governor-ordering
// change or a metric drift across PRs fails the build instead of
// slipping by — and an intentional behavior change updates the committed
// file (via `cuttlefish fuzz -write-baseline`) where reviewers see it.
type Baseline struct {
	N            int       `json:"n"`
	Seed         int64     `json:"seed"`
	Cores        int       `json:"cores"`
	Scale        float64   `json:"scale"`
	Reps         int       `json:"reps"`
	CorpusDigest string    `json:"corpus_digest"`
	Governors    []string  `json:"governors"`
	Findings     []Finding `json:"findings"`
	Cells        []Cell    `json:"cells"`
}

// BaselineOf snapshots a report under its run parameters.
func BaselineOf(rep *Report, cfg Config) *Baseline {
	cfg = cfg.withDefaults()
	return &Baseline{
		N:            rep.N,
		Seed:         rep.Seed,
		Cores:        cfg.Cores,
		Scale:        cfg.Scale,
		Reps:         cfg.Reps,
		CorpusDigest: rep.CorpusDigest,
		Governors:    rep.Governors,
		Findings:     rep.Findings,
		Cells:        rep.Cells,
	}
}

// LoadBaseline reads a committed baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fuzz: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("fuzz: baseline %s: %w", path, err)
	}
	return &b, nil
}

// Save writes the baseline as indented JSON, stable enough to diff in
// review.
func (b *Baseline) Save(path string) error {
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Diff compares a fresh report against the committed baseline and
// returns everything that should fail CI:
//
//   - new findings: (scenario, kind, governor, reference) keys present
//     now but absent from the baseline — a behavior the baseline never
//     sanctioned;
//   - regressions: cells whose energy or runtime worsened beyond
//     cfg.RegressTol relative to the committed metrics (improvements
//     pass silently — they are a reason to refresh the baseline, not a
//     failure).
//
// Resolved findings (in the baseline, gone now) are returned separately
// so the caller can suggest a baseline refresh without failing.
//
// A corpus-digest or governor-set mismatch is an error, not a diff: the
// two passes ran different work, so a cell-level comparison would be
// meaningless.
func Diff(b *Baseline, rep *Report, cfg Config) (violations, resolved []Finding, err error) {
	cfg = cfg.withDefaults()
	if b.CorpusDigest != rep.CorpusDigest {
		return nil, nil, fmt.Errorf("fuzz: corpus digest mismatch: baseline %.12s… vs run %.12s… — the generator or its inputs changed; regenerate the baseline with -write-baseline",
			b.CorpusDigest, rep.CorpusDigest)
	}
	if !reflect.DeepEqual(b.Governors, rep.Governors) {
		return nil, nil, fmt.Errorf("fuzz: governor set mismatch: baseline %v vs run %v", b.Governors, rep.Governors)
	}
	base := make(map[string]Finding, len(b.Findings))
	for _, f := range b.Findings {
		base[f.key()] = f
	}
	now := make(map[string]Finding, len(rep.Findings))
	for _, f := range rep.Findings {
		now[f.key()] = f
		if _, ok := base[f.key()]; !ok {
			nf := f
			nf.Detail = "new vs baseline: " + f.Detail
			violations = append(violations, nf)
		}
	}
	for _, f := range b.Findings {
		if _, ok := now[f.key()]; !ok {
			resolved = append(resolved, f)
		}
	}
	baseCells := make(map[string]Cell, len(b.Cells))
	for _, c := range b.Cells {
		baseCells[c.Scenario+"\x00"+c.Governor] = c
	}
	for _, c := range rep.Cells {
		bc, ok := baseCells[c.Scenario+"\x00"+c.Governor]
		if !ok || bc.Err != "" || c.Err != "" {
			continue // error transitions are covered by the findings diff
		}
		for _, m := range []struct {
			name      string
			now, base float64
		}{
			{"joules", c.Joules, bc.Joules},
			{"seconds", c.Seconds, bc.Seconds},
		} {
			if m.base <= 0 || math.IsNaN(m.now) {
				continue
			}
			if m.now > m.base*(1+cfg.RegressTol) {
				pct := 100 * (m.now/m.base - 1)
				violations = append(violations, Finding{
					Scenario:  c.Scenario,
					Kind:      KindRegression,
					Governor:  c.Governor,
					Reference: "baseline",
					DeltaPct:  pct,
					Detail:    fmt.Sprintf("%s regressed %.1f%% vs baseline (%g vs %g)", m.name, pct, m.now, m.base),
				})
			}
		}
	}
	sort.SliceStable(violations, func(a, b int) bool { return violations[a].key() < violations[b].key() })
	sort.SliceStable(resolved, func(a, b int) bool { return resolved[a].key() < resolved[b].key() })
	return violations, resolved, nil
}
