package mem

import (
	"testing"
	"testing/quick"
)

func TestLatencyDecreasingInUF(t *testing.T) {
	p := DefaultParams()
	prev := 1.0
	for uf := 1.2; uf <= 3.01; uf += 0.1 {
		l := p.Latency(uf)
		if l >= prev {
			t.Errorf("latency not strictly decreasing at %.1f GHz", uf)
		}
		prev = l
	}
}

func TestLatencyMagnitude(t *testing.T) {
	p := DefaultParams()
	if l := p.Latency(3.0); l < 50e-9 || l > 120e-9 {
		t.Errorf("latency at 3.0 GHz = %.1f ns, want DRAM-scale (50-120 ns)", l*1e9)
	}
	if l := p.Latency(1.2); l <= p.Latency(3.0) {
		t.Error("low uncore must pay more latency")
	}
}

func TestLatencyDiminishingReturns(t *testing.T) {
	// The ring component shrinks as 1/f, so each further UF step buys less:
	// latency(1.2)-latency(2.1) must exceed latency(2.1)-latency(3.0).
	p := DefaultParams()
	d1 := p.Latency(1.2) - p.Latency(2.1)
	d2 := p.Latency(2.1) - p.Latency(3.0)
	if d1 <= d2 {
		t.Errorf("no diminishing returns: step1 %.2f ns, step2 %.2f ns", d1*1e9, d2*1e9)
	}
}

func TestBandwidthShape(t *testing.T) {
	p := DefaultParams()
	if p.Bandwidth(3.0) != p.PeakBandwidth {
		t.Errorf("bandwidth at max UF = %g, want peak %g", p.Bandwidth(3.0), p.PeakBandwidth)
	}
	floor := p.Bandwidth(1.2)
	want := p.PeakBandwidth * p.BWFloorFrac
	if floor != want {
		t.Errorf("bandwidth at min UF = %g, want %g", floor, want)
	}
	// The floor still carries half of peak: DRAM clocks independently.
	if floor < 0.5*p.PeakBandwidth {
		t.Error("min-UF bandwidth implausibly low")
	}
	// Flat beyond the knee: raising UF past the knee buys no throughput,
	// which is what makes the memory-bound UF optimum interior.
	if p.Bandwidth(p.BWKneeGHz) != p.PeakBandwidth {
		t.Error("bandwidth must reach peak at the knee")
	}
	if p.Bandwidth(2.7) != p.PeakBandwidth {
		t.Error("bandwidth must be flat past the knee")
	}
	// Clamped outside the grid.
	if p.Bandwidth(0.5) != floor || p.Bandwidth(4.0) != p.PeakBandwidth {
		t.Error("bandwidth must clamp outside the UF grid")
	}
}

func TestUtilizationClamps(t *testing.T) {
	p := DefaultParams()
	if rho := p.Utilization(1e12, 3.0); rho != p.MaxUtilization {
		t.Errorf("overload utilisation = %g, want cap %g", rho, p.MaxUtilization)
	}
	if rho := p.Utilization(-5, 3.0); rho != 0 {
		t.Errorf("negative demand utilisation = %g, want 0", rho)
	}
}

func TestQueueFactor(t *testing.T) {
	if QueueFactor(0) != 1 {
		t.Error("empty queue must not inflate latency")
	}
	if QueueFactor(0.9) <= QueueFactor(0.5) {
		t.Error("queue factor must grow with utilisation")
	}
	if f := QueueFactor(2.0); f <= 1 || f > 1000 {
		t.Errorf("saturated queue factor = %g, want finite > 1", f)
	}
}

func TestLoadedLatencyMonotoneInDemand(t *testing.T) {
	p := DefaultParams()
	low := p.LoadedLatency(2.2, 0.1e9)
	high := p.LoadedLatency(2.2, 1.2e9)
	if high <= low {
		t.Error("loaded latency must grow with demand")
	}
}

func TestStallPerMissUsesMLP(t *testing.T) {
	p := DefaultParams()
	if got, want := p.StallPerMiss(3.0, 0), p.Latency(3.0)/p.MLP; got != want {
		t.Errorf("stall per miss = %g, want %g", got, want)
	}
}

// Property: for any demand and on-grid UF, stall time is positive and
// bounded by the saturated queue inflation of the min-UF latency.
func TestStallBoundsQuick(t *testing.T) {
	p := DefaultParams()
	bound := p.Latency(p.UncoreMinGHz) * QueueFactor(p.MaxUtilization) / p.MLP
	prop := func(ufRaw uint8, demandRaw uint32) bool {
		uf := 1.2 + float64(ufRaw%19)*0.1
		demand := float64(demandRaw) // up to ~4e9 misses/s
		s := p.StallPerMiss(uf, demand)
		return s > 0 && s <= bound+1e-15
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
