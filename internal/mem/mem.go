// Package mem is the analytic model of the uncore memory subsystem: the
// latency an LLC miss pays as a function of uncore frequency (ring/LLC
// cycles plus DRAM access), the achievable miss bandwidth as a function of
// uncore frequency, and the queueing inflation suffered as demand approaches
// that bandwidth.
//
// Two modelling choices carry the paper's observed behaviour:
//
//  1. Bandwidth depends only weakly on uncore frequency (the DRAM channels
//     clock independently; the ring mostly adds latency, not a throughput
//     wall), so dropping UF on a compute-bound code costs little time while
//     saving uncore power — why the paper's Default firmware can sit at
//     2.2 GHz and why Cuttlefish picks UFopt near min for low-TIPI slabs.
//  2. Latency has a 1/f ring component plus a fixed DRAM component, so
//     raising UF helps memory-bound codes with diminishing returns — why
//     the JPI-optimal UF for high-TIPI slabs is interior (≈2.2 GHz), not
//     max (Table 2).
package mem

// Params describe the memory path.
type Params struct {
	// RingCycles is the number of uncore-clock cycles an LLC miss spends in
	// the ring, LLC lookup and memory controller front end.
	RingCycles float64
	// DRAMLatency is the uncore-frequency-independent DRAM access time in
	// seconds.
	DRAMLatency float64
	// MLP is the memory-level parallelism: how many misses a core's
	// out-of-order window and prefetchers overlap, i.e. the divisor that
	// converts miss latency into per-miss stall time.
	MLP float64
	// PeakBandwidth is the saturated miss throughput (misses/second,
	// socket-wide) with the uncore at maximum frequency.
	PeakBandwidth float64
	// BWFloorFrac is the fraction of PeakBandwidth still achievable with
	// the uncore at its minimum frequency.
	BWFloorFrac float64
	// BWKneeGHz is the uncore frequency at which the miss path stops being
	// ring-limited and the DRAM channels saturate: bandwidth grows linearly
	// from the floor up to the knee and is flat beyond it. The flat region
	// is why raising UF past ≈2.4 GHz buys memory-bound codes power but no
	// throughput — the source of the paper's interior UFopt (Table 2).
	BWKneeGHz float64
	// UncoreMinGHz and UncoreMaxGHz anchor the bandwidth interpolation.
	UncoreMinGHz, UncoreMaxGHz float64
	// MaxUtilization caps the queueing model: demand beyond this fraction
	// of bandwidth saturates rather than diverging.
	MaxUtilization float64
}

// DefaultParams is calibrated against the paper's two-socket Haswell with
// interleaved allocation: ~85 GB/s of achievable line bandwidth
// (≈1.3e9 64-byte misses/s), ~80 ns loaded LLC-miss latency at max uncore.
func DefaultParams() Params {
	return Params{
		RingCycles:     52,
		DRAMLatency:    62e-9,
		MLP:            10,
		PeakBandwidth:  1.30e9,
		BWFloorFrac:    0.55,
		BWKneeGHz:      2.4,
		UncoreMinGHz:   1.2,
		UncoreMaxGHz:   3.0,
		MaxUtilization: 0.95,
	}
}

// Latency returns the unloaded LLC-miss latency in seconds at the given
// uncore frequency.
func (p Params) Latency(ufGHz float64) float64 {
	return p.RingCycles/(ufGHz*1e9) + p.DRAMLatency
}

// Bandwidth returns the achievable miss throughput (misses/second) at the
// given uncore frequency: linear from the floor at UncoreMinGHz to the peak
// at BWKneeGHz, flat beyond.
func (p Params) Bandwidth(ufGHz float64) float64 {
	knee := p.BWKneeGHz
	if knee <= p.UncoreMinGHz {
		knee = p.UncoreMaxGHz
	}
	span := knee - p.UncoreMinGHz
	frac := 0.0
	if span > 0 {
		frac = (ufGHz - p.UncoreMinGHz) / span
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return p.PeakBandwidth * (p.BWFloorFrac + (1-p.BWFloorFrac)*frac)
}

// Utilization returns demand/bandwidth clamped to MaxUtilization; demand is
// in misses/second.
func (p Params) Utilization(demand, ufGHz float64) float64 {
	bw := p.Bandwidth(ufGHz)
	if bw <= 0 {
		return p.MaxUtilization
	}
	rho := demand / bw
	if rho > p.MaxUtilization {
		rho = p.MaxUtilization
	}
	if rho < 0 {
		rho = 0
	}
	return rho
}

// QueueFactor returns the latency inflation at utilisation rho using a
// G/G/1-flavoured ρ²/(2(1−ρ)) waiting-time term.
func QueueFactor(rho float64) float64 {
	if rho >= 1 {
		rho = 0.999
	}
	if rho < 0 {
		rho = 0
	}
	return 1 + rho*rho/(2*(1-rho))
}

// LoadedLatency returns the per-miss latency in seconds at the given uncore
// frequency under the given demand (misses/second).
func (p Params) LoadedLatency(ufGHz, demand float64) float64 {
	return p.Latency(ufGHz) * QueueFactor(p.Utilization(demand, ufGHz))
}

// StallPerMiss converts loaded latency into the per-miss stall time a core
// observes after MLP overlap.
func (p Params) StallPerMiss(ufGHz, demand float64) float64 {
	return p.LoadedLatency(ufGHz, demand) / p.MLP
}
