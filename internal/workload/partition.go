package workload

import "fmt"

// Partition statically divides a socket's cores among several co-running
// workloads — the paper's future-work scenario of Cuttlefish controlling
// the power of co-running components of a scientific workflow on one node.
//
// Each component owns a contiguous core range and sees component-local core
// indices, so any Source (work-sharing, work-stealing, a benchmark) can run
// unmodified inside its partition. Note what this implies for Cuttlefish:
// TIPI is measured socket-wide, so the daemon observes the *blend* of the
// components' memory access patterns and picks one frequency pair for the
// whole socket — the experiment in partition_test.go quantifies that
// limitation.
type Partition struct {
	comps []component
}

type component struct {
	src        Source
	start, end int // [start, end) global core range
}

// NewPartition creates an empty partition over nothing; add components
// with Assign.
func NewPartition() *Partition { return &Partition{} }

// Assign gives src the global cores [start, end). Ranges must not overlap.
func (p *Partition) Assign(src Source, start, end int) error {
	if src == nil {
		return fmt.Errorf("workload: nil source")
	}
	if start < 0 || end <= start {
		return fmt.Errorf("workload: invalid core range [%d,%d)", start, end)
	}
	for _, c := range p.comps {
		if start < c.end && c.start < end {
			return fmt.Errorf("workload: core range [%d,%d) overlaps [%d,%d)", start, end, c.start, c.end)
		}
	}
	p.comps = append(p.comps, component{src: src, start: start, end: end})
	return nil
}

// NextSegment routes the machine's request to the component owning the
// core, translating to component-local core numbering.
func (p *Partition) NextSegment(core int, now float64) (Segment, bool) {
	for _, c := range p.comps {
		if core >= c.start && core < c.end {
			return c.src.NextSegment(core-c.start, now)
		}
	}
	return Segment{}, false // unassigned cores idle
}

// Complete routes completion to the owning component.
func (p *Partition) Complete(core int, now float64) {
	for _, c := range p.comps {
		if core >= c.start && core < c.end {
			c.src.Complete(core-c.start, now)
			return
		}
	}
}

// Done reports whether every component has finished.
func (p *Partition) Done() bool {
	for _, c := range p.comps {
		if !c.src.Done() {
			return false
		}
	}
	return true
}
