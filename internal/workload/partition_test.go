package workload

import "testing"

// fakeSource records which local cores asked for work.
type fakeSource struct {
	seg    Segment
	budget int
	asked  map[int]int
	done   map[int]int
}

func newFake(seg Segment, budget int) *fakeSource {
	return &fakeSource{seg: seg, budget: budget, asked: map[int]int{}, done: map[int]int{}}
}

func (f *fakeSource) NextSegment(core int, now float64) (Segment, bool) {
	f.asked[core]++
	if f.budget == 0 {
		return Segment{}, false
	}
	f.budget--
	return f.seg, true
}
func (f *fakeSource) Complete(core int, now float64) { f.done[core]++ }
func (f *fakeSource) Done() bool                     { return f.budget == 0 }

func TestPartitionAssignValidation(t *testing.T) {
	p := NewPartition()
	if err := p.Assign(nil, 0, 4); err == nil {
		t.Error("nil source accepted")
	}
	if err := p.Assign(newFake(Segment{IPC: 1}, 1), 4, 4); err == nil {
		t.Error("empty range accepted")
	}
	if err := p.Assign(newFake(Segment{IPC: 1}, 1), 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.Assign(newFake(Segment{IPC: 1}, 1), 3, 6); err == nil {
		t.Error("overlapping range accepted")
	}
	if err := p.Assign(newFake(Segment{IPC: 1}, 1), 4, 8); err != nil {
		t.Errorf("adjacent range rejected: %v", err)
	}
}

func TestPartitionRoutesWithLocalCoreNumbers(t *testing.T) {
	a := newFake(Segment{Instructions: 1, IPC: 1}, 100)
	b := newFake(Segment{Instructions: 2, IPC: 1}, 100)
	p := NewPartition()
	p.Assign(a, 0, 2)
	p.Assign(b, 2, 5)

	if seg, ok := p.NextSegment(1, 0); !ok || seg.Instructions != 1 {
		t.Errorf("core 1 routed wrong: %v %v", seg, ok)
	}
	if seg, ok := p.NextSegment(4, 0); !ok || seg.Instructions != 2 {
		t.Errorf("core 4 routed wrong: %v %v", seg, ok)
	}
	if a.asked[1] != 1 || b.asked[2] != 1 {
		t.Errorf("local numbering broken: a=%v b=%v", a.asked, b.asked)
	}
	p.Complete(4, 0)
	if b.done[2] != 1 {
		t.Errorf("completion not routed locally: %v", b.done)
	}
}

func TestPartitionUnassignedCoresIdle(t *testing.T) {
	p := NewPartition()
	p.Assign(newFake(Segment{IPC: 1}, 10), 0, 2)
	if _, ok := p.NextSegment(7, 0); ok {
		t.Error("unassigned core received work")
	}
	p.Complete(7, 0) // must not panic
}

func TestPartitionDoneRequiresAllComponents(t *testing.T) {
	a := newFake(Segment{IPC: 1}, 0)
	b := newFake(Segment{IPC: 1}, 1)
	p := NewPartition()
	p.Assign(a, 0, 1)
	p.Assign(b, 1, 2)
	if p.Done() {
		t.Error("partition done while component b has work")
	}
	p.NextSegment(1, 0)
	if !p.Done() {
		t.Error("partition not done after all components drained")
	}
}
