package workload

import (
	"testing"
	"testing/quick"
)

func TestSegmentValid(t *testing.T) {
	good := Segment{Instructions: 100, MissPerInstr: 0.05, IPC: 2, RemoteFrac: 0.5, Exposure: 0.3}
	if !good.Valid() {
		t.Error("well-formed segment reported invalid")
	}
	for _, bad := range []Segment{
		{Instructions: -1, IPC: 2},
		{Instructions: 1, IPC: 0},
		{Instructions: 1, IPC: 2, MissPerInstr: -0.1},
		{Instructions: 1, IPC: 2, RemoteFrac: 1.5},
		{Instructions: 1, IPC: 2, Exposure: 2},
		{Instructions: 1, IPC: 2, Exposure: -0.5},
	} {
		if bad.Valid() {
			t.Errorf("invalid segment accepted: %v", bad)
		}
	}
	if !(Segment{Instructions: 1, IPC: 2, Exposure: ExposureNone}).Valid() {
		t.Error("ExposureNone sentinel rejected by Valid")
	}
}

func TestStallFractionDefault(t *testing.T) {
	if got := (Segment{}).StallFraction(); got != 1 {
		t.Errorf("zero exposure must default to 1, got %g", got)
	}
	if got := (Segment{Exposure: 0.3}).StallFraction(); got != 0.3 {
		t.Errorf("explicit exposure ignored: %g", got)
	}
}

// TestStallFractionNoneSentinel pins the fix for the zero-value
// ambiguity: a truly stall-free segment is expressed with ExposureNone,
// not with Exposure 0 (which stays "unset → fully exposed").
func TestStallFractionNoneSentinel(t *testing.T) {
	if got := (Segment{Exposure: ExposureNone}).StallFraction(); got != 0 {
		t.Errorf("ExposureNone must stall 0, got %g", got)
	}
}

func TestScale(t *testing.T) {
	s := Segment{Instructions: 100, MissPerInstr: 0.01, IPC: 2}
	scaled := s.Scale(2.5)
	if scaled.Instructions != 250 {
		t.Errorf("scaled instructions = %g, want 250", scaled.Instructions)
	}
	if scaled.MissPerInstr != s.MissPerInstr || scaled.IPC != s.IPC {
		t.Error("Scale must not alter densities")
	}
}

func TestTotalInstructions(t *testing.T) {
	phases := []Phase{
		{Seg: Segment{Instructions: 10, IPC: 1}, Count: 3},
		{Seg: Segment{Instructions: 5, IPC: 1}, Count: 4},
	}
	if got := TotalInstructions(phases); got != 50 {
		t.Errorf("TotalInstructions = %g, want 50", got)
	}
}

// Property: scaling by a and then b equals scaling by a*b.
func TestScaleComposesQuick(t *testing.T) {
	prop := func(a, b uint8) bool {
		s := Segment{Instructions: 1000, IPC: 2}
		ka, kb := float64(a)/16+0.1, float64(b)/16+0.1
		lhs := s.Scale(ka).Scale(kb).Instructions
		rhs := s.Scale(ka * kb).Instructions
		diff := lhs - rhs
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9*rhs+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
