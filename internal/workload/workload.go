// Package workload defines the unit of simulated computation: a Segment of
// straight-line work characterised by an instruction count, an LLC-miss
// density (which is exactly what the TOR_INSERT counters observe and hence
// what TIPI measures), an IPC, and a NUMA-remote fraction.
//
// Parallel runtimes (internal/sched) hand segments to simulated cores
// through the Source interface; the machine charges time, retires
// instructions and generates TOR traffic according to the segment's
// composition. Benchmarks (internal/bench) are generators of task graphs
// whose leaves carry segments calibrated to the paper's Table 1 TIPI
// ranges.
package workload

import "fmt"

// Segment is a homogeneous chunk of work: Instructions retire at IPC per
// core cycle, and every instruction carries MissPerInstr expected LLC
// misses, of which RemoteFrac go to the remote socket (TOR_INSERT.MISS_REMOTE).
//
// Exposure is the fraction of miss latency the core actually stalls on
// after hardware prefetching: streaming stencil sweeps (SOR) expose little
// latency even though every miss still occupies TOR and memory bandwidth,
// while irregular access (AMG coarse levels, UTS node expansion) exposes
// most of it.
//
// The zero value means "unset" and defaults to 1 (fully exposed), so a
// struct literal that never mentions Exposure behaves like unprefetched
// irregular access. A segment whose misses stall the core not at all —
// perfectly prefetched streaming that still occupies TOR and bandwidth —
// is therefore NOT expressible as Exposure: 0; use the explicit
// ExposureNone sentinel for it.
type Segment struct {
	Instructions float64
	MissPerInstr float64
	IPC          float64
	RemoteFrac   float64
	Exposure     float64
}

// ExposureNone is the explicit "zero exposed stall" sentinel: every miss
// is fully hidden by prefetching (StallFraction 0) while still counting
// toward TOR traffic and TIPI. It exists because the Exposure zero value
// already means "unset → fully exposed", which made a truly stall-free
// segment inexpressible.
const ExposureNone = -1

// StallFraction returns the effective exposure: ExposureNone is 0, the
// unset zero value defaults to 1, anything else is taken literally.
func (s Segment) StallFraction() float64 {
	if s.Exposure == ExposureNone {
		return 0
	}
	if s.Exposure <= 0 {
		return 1
	}
	return s.Exposure
}

// Valid reports whether the segment is executable. Exposure must be the
// ExposureNone sentinel or lie in [0, 1].
func (s Segment) Valid() bool {
	return s.Instructions >= 0 && s.MissPerInstr >= 0 && s.IPC > 0 &&
		s.RemoteFrac >= 0 && s.RemoteFrac <= 1 &&
		(s.Exposure == ExposureNone || (s.Exposure >= 0 && s.Exposure <= 1))
}

func (s Segment) String() string {
	return fmt.Sprintf("seg{%.3g instr, %.4f miss/instr, ipc %.2f}", s.Instructions, s.MissPerInstr, s.IPC)
}

// Scale returns a copy with the instruction count multiplied by k (densities
// are unchanged).
func (s Segment) Scale(k float64) Segment {
	s.Instructions *= k
	return s
}

// Source supplies segments to simulated cores. The machine calls
// NextSegment whenever a core has exhausted its current segment; returning
// ok == false parks the core until the next quantum (it will poll again).
// Implementations are the parallel runtimes; they decide which core gets
// which work, including stealing.
//
// Complete is invoked by the machine the moment the segment previously
// handed to that core finishes executing; runtimes use it to release
// barriers (work-sharing) and to spawn child tasks (async–finish).
//
// Both methods receive the simulation time so runtimes can account for
// scheduling overheads or time-based phase changes. Implementations must be
// safe for concurrent calls when the machine runs its parallel driver.
type Source interface {
	NextSegment(core int, now float64) (Segment, bool)
	Complete(core int, now float64)
	// Done reports whether the program has no further work anywhere.
	Done() bool
}

// Phase pairs a segment template with a count, describing "n tasks that
// each look like seg".
type Phase struct {
	Seg   Segment
	Count int
}

// TotalInstructions sums the instruction budget of a phase list.
func TotalInstructions(phases []Phase) float64 {
	var sum float64
	for _, p := range phases {
		sum += p.Seg.Instructions * float64(p.Count)
	}
	return sum
}
