// Package freq models the discrete frequency domains of an Intel-style
// multicore processor: a per-core DVFS grid and a socket-wide uncore (UFS)
// grid. Frequencies are held as exact integer ratios of a 100 MHz reference
// clock, matching how IA32_PERF_CTL and the uncore ratio-limit MSR (0x620)
// encode them, so grid arithmetic is never subject to float drift.
package freq

import (
	"fmt"
	"math"
)

// RefClockHz is the reference clock against which frequency ratios are
// expressed. Intel client and server parts use a 100 MHz BCLK.
const RefClockHz = 100e6

// GHz converts a frequency in hertz to gigahertz.
func GHz(hz float64) float64 { return hz / 1e9 }

// Ratio is a multiplier of RefClockHz. Ratio 12 == 1.2 GHz, ratio 30 == 3.0 GHz.
type Ratio uint8

// Hz returns the frequency the ratio encodes, in hertz.
func (r Ratio) Hz() float64 { return float64(r) * RefClockHz }

// GHz returns the frequency the ratio encodes, in gigahertz.
func (r Ratio) GHz() float64 { return float64(r) / 10 }

// String renders the ratio as a frequency, e.g. "2.3GHz".
func (r Ratio) String() string { return fmt.Sprintf("%.1fGHz", r.GHz()) }

// RatioFromGHz returns the ratio closest to the given frequency in GHz.
func RatioFromGHz(ghz float64) Ratio {
	return Ratio(math.Round(ghz * 10))
}

// Level indexes a frequency inside a Grid, 0 being the lowest frequency.
// The paper's hypothetical processor labels levels A (lowest) through G
// (highest); Level 0 is "A".
type Level int

// Grid is an inclusive range of ratios [Min, Max] in steps of one ratio
// (0.1 GHz), the step size of both DVFS and UFS on the paper's Haswell.
type Grid struct {
	Min Ratio
	Max Ratio
}

// HaswellCore is the core-frequency (DVFS) grid of the Intel Xeon E5-2650 v3
// used in the paper: 1.2–2.3 GHz.
func HaswellCore() Grid { return Grid{Min: 12, Max: 23} }

// HaswellUncore is the uncore-frequency (UFS) grid of the same part:
// 1.2–3.0 GHz.
func HaswellUncore() Grid { return Grid{Min: 12, Max: 30} }

// Levels returns the number of distinct frequencies in the grid.
func (g Grid) Levels() int { return int(g.Max-g.Min) + 1 }

// Valid reports whether the grid is well formed.
func (g Grid) Valid() bool { return g.Min > 0 && g.Max >= g.Min }

// Contains reports whether ratio r lies on the grid.
func (g Grid) Contains(r Ratio) bool { return r >= g.Min && r <= g.Max }

// Clamp returns r restricted to the grid.
func (g Grid) Clamp(r Ratio) Ratio {
	if r < g.Min {
		return g.Min
	}
	if r > g.Max {
		return g.Max
	}
	return r
}

// Ratio returns the ratio at level l. It panics if l is out of range, which
// always indicates a programming error in exploration logic.
func (g Grid) Ratio(l Level) Ratio {
	if l < 0 || int(l) >= g.Levels() {
		panic(fmt.Sprintf("freq: level %d outside grid %v..%v", l, g.Min, g.Max))
	}
	return g.Min + Ratio(l)
}

// Level returns the level of ratio r on the grid. It panics if r is off-grid.
func (g Grid) Level(r Ratio) Level {
	if !g.Contains(r) {
		panic(fmt.Sprintf("freq: ratio %v outside grid %v..%v", r, g.Min, g.Max))
	}
	return Level(r - g.Min)
}

// MaxLevel returns the highest level of the grid.
func (g Grid) MaxLevel() Level { return Level(g.Levels() - 1) }

// StepDown returns the level n steps below l, clamped to the bottom of the
// grid. The Cuttlefish explorer walks the grid highest→lowest in steps of
// two (§4.3).
func (g Grid) StepDown(l Level, n int) Level {
	l -= Level(n)
	if l < 0 {
		l = 0
	}
	return l
}

// Ratios returns all ratios on the grid, lowest first.
func (g Grid) Ratios() []Ratio {
	out := make([]Ratio, g.Levels())
	for i := range out {
		out[i] = g.Min + Ratio(i)
	}
	return out
}

func (g Grid) String() string {
	return fmt.Sprintf("[%v..%v]", g.Min, g.Max)
}
