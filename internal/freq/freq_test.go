package freq

import (
	"testing"
	"testing/quick"
)

func TestRatioHz(t *testing.T) {
	if got := Ratio(23).Hz(); got != 2.3e9 {
		t.Errorf("Ratio(23).Hz() = %g, want 2.3e9", got)
	}
	if got := Ratio(12).GHz(); got != 1.2 {
		t.Errorf("Ratio(12).GHz() = %g, want 1.2", got)
	}
}

func TestRatioString(t *testing.T) {
	if got := Ratio(30).String(); got != "3.0GHz" {
		t.Errorf("String() = %q, want 3.0GHz", got)
	}
}

func TestRatioFromGHz(t *testing.T) {
	cases := []struct {
		ghz  float64
		want Ratio
	}{
		{1.2, 12}, {2.3, 23}, {3.0, 30}, {2.25, 23}, {1.24, 12},
	}
	for _, c := range cases {
		if got := RatioFromGHz(c.ghz); got != c.want {
			t.Errorf("RatioFromGHz(%g) = %v, want %v", c.ghz, got, c.want)
		}
	}
}

func TestHaswellGrids(t *testing.T) {
	core, unc := HaswellCore(), HaswellUncore()
	if core.Levels() != 12 {
		t.Errorf("core levels = %d, want 12 (1.2..2.3 in 0.1 steps)", core.Levels())
	}
	if unc.Levels() != 19 {
		t.Errorf("uncore levels = %d, want 19 (1.2..3.0 in 0.1 steps)", unc.Levels())
	}
	if !core.Valid() || !unc.Valid() {
		t.Error("paper grids must be valid")
	}
}

func TestGridLevelRoundTrip(t *testing.T) {
	g := HaswellUncore()
	for _, r := range g.Ratios() {
		if got := g.Ratio(g.Level(r)); got != r {
			t.Errorf("round trip %v -> %v", r, got)
		}
	}
}

func TestGridClamp(t *testing.T) {
	g := HaswellCore()
	if got := g.Clamp(5); got != g.Min {
		t.Errorf("Clamp(5) = %v, want %v", got, g.Min)
	}
	if got := g.Clamp(40); got != g.Max {
		t.Errorf("Clamp(40) = %v, want %v", got, g.Max)
	}
	if got := g.Clamp(18); got != 18 {
		t.Errorf("Clamp(18) = %v, want 18", got)
	}
}

func TestGridStepDown(t *testing.T) {
	g := HaswellCore()
	top := g.MaxLevel()
	if got := g.StepDown(top, 2); got != top-2 {
		t.Errorf("StepDown(top,2) = %d, want %d", got, top-2)
	}
	if got := g.StepDown(1, 2); got != 0 {
		t.Errorf("StepDown(1,2) = %d, want clamp to 0", got)
	}
}

func TestGridContains(t *testing.T) {
	g := HaswellCore()
	if g.Contains(11) || g.Contains(24) {
		t.Error("contains should reject off-grid ratios")
	}
	if !g.Contains(12) || !g.Contains(23) {
		t.Error("contains should accept grid endpoints")
	}
}

func TestGridRatioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Ratio(level out of range) should panic")
		}
	}()
	HaswellCore().Ratio(99)
}

func TestGridLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Level(off-grid ratio) should panic")
		}
	}()
	HaswellCore().Level(50)
}

// Property: clamping always lands on the grid, and clamped values survive a
// level round trip.
func TestClampPropertyQuick(t *testing.T) {
	g := HaswellUncore()
	f := func(r uint8) bool {
		c := g.Clamp(Ratio(r))
		return g.Contains(c) && g.Ratio(g.Level(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: StepDown never leaves the grid and never increases the level.
func TestStepDownPropertyQuick(t *testing.T) {
	g := HaswellUncore()
	f := func(lRaw, nRaw uint8) bool {
		l := Level(int(lRaw) % g.Levels())
		n := int(nRaw) % 5
		got := g.StepDown(l, n)
		return got >= 0 && got <= l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
