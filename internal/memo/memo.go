// Package memo is the simulator's second cache tier: phase-boundary
// machine snapshots keyed by a prefix-chain hash, so a run whose spec
// shares a workload prefix with an earlier run can Restore() the last
// common boundary and simulate only the divergent suffix.
//
// The result cache (internal/service + internal/store) only pays off on
// byte-identical specs; this tier pays off on *structurally related*
// ones — the same scenario re-run with a changed final phase, extended
// iterations, or simply re-executed without the result cache's entry
// surviving. Soundness rests on the same determinism contract: a
// snapshot key commits to everything the simulation's future depends on
// (machine configuration, governor + tuning, seed, and the canonical
// bytes of every region executed so far), so restoring it and running
// the suffix is bit-identical to running from scratch.
//
// The tier has its own size budget, separate from the result store's, so
// result pruning can never evict hot snapshots and vice versa. The
// optional disk tier reuses internal/store's checksummed object format:
// a corrupted or truncated snapshot file verifies false, reads as a
// miss, and is deleted — the run falls back to simulating from t=0.
package memo

import (
	"container/list"
	"sync"

	"repro/internal/store"
)

// DefaultMaxBytes bounds the in-memory snapshot LRU when no budget is
// given. Snapshots of the default 20-core machine run ~4 KiB, so the
// default holds on the order of 10k snapshots.
const DefaultMaxBytes = 64 << 20

// Tier is the snapshot cache: an in-memory byte-budget LRU over an
// optional persistent store. Safe for concurrent use.
type Tier struct {
	mu       sync.Mutex
	maxBytes int64
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	bytes    int64
	disk     *store.Store

	lookups     uint64
	hits        uint64
	prefixHits  uint64
	quantaSaved uint64
	stored      uint64
	evicted     uint64
}

type entry struct {
	key  string
	body []byte
}

// New creates a tier with the given in-memory byte budget (0 =
// DefaultMaxBytes) over an optional disk store (nil = memory only). The
// disk store must be dedicated to snapshots — Purge clears it.
func New(maxBytes int64, disk *store.Store) *Tier {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Tier{
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		disk:     disk,
	}
}

// Get returns the snapshot stored under key, consulting memory first and
// the disk tier second (promoting disk hits into memory). Corrupt disk
// objects read as misses.
func (t *Tier) Get(key string) ([]byte, bool) {
	t.mu.Lock()
	t.lookups++
	if el, ok := t.entries[key]; ok {
		t.lru.MoveToFront(el)
		t.hits++
		body := el.Value.(*entry).body
		t.mu.Unlock()
		return body, true
	}
	disk := t.disk
	t.mu.Unlock()
	if disk == nil {
		return nil, false
	}
	body, ok := disk.Get(key)
	if !ok {
		return nil, false
	}
	t.mu.Lock()
	t.hits++
	t.addLocked(key, body)
	t.mu.Unlock()
	return body, true
}

// Put stores a snapshot under key in memory and, when configured, writes
// it through to the disk tier. Disk write failures are absorbed — the
// store counts them, and a missing snapshot only costs re-simulation.
func (t *Tier) Put(key string, body []byte) {
	t.mu.Lock()
	t.stored++
	t.addLocked(key, body)
	disk := t.disk
	t.mu.Unlock()
	if disk != nil {
		_ = disk.Put(key, body)
	}
}

// addLocked inserts (or refreshes) a key and evicts least-recently-used
// entries past the byte budget.
func (t *Tier) addLocked(key string, body []byte) {
	if el, ok := t.entries[key]; ok {
		e := el.Value.(*entry)
		t.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		t.lru.MoveToFront(el)
	} else {
		t.entries[key] = t.lru.PushFront(&entry{key: key, body: body})
		t.bytes += int64(len(body))
	}
	for t.bytes > t.maxBytes && t.lru.Len() > 1 {
		back := t.lru.Back()
		e := back.Value.(*entry)
		t.lru.Remove(back)
		delete(t.entries, e.key)
		t.bytes -= int64(len(e.body))
		t.evicted++
	}
}

// RecordResume counts one run resumed from a snapshot, skipping the
// given number of simulation quanta.
func (t *Tier) RecordResume(quantaSaved int64) {
	t.mu.Lock()
	t.prefixHits++
	if quantaSaved > 0 {
		t.quantaSaved += uint64(quantaSaved)
	}
	t.mu.Unlock()
}

// Purge drops every snapshot from both tiers.
func (t *Tier) Purge() error {
	t.mu.Lock()
	t.entries = make(map[string]*list.Element)
	t.lru = list.New()
	t.bytes = 0
	disk := t.disk
	t.mu.Unlock()
	if disk != nil {
		return disk.Purge()
	}
	return nil
}

// Len returns the number of in-memory snapshots.
func (t *Tier) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Len()
}

// Bytes returns the in-memory snapshot payload size.
func (t *Tier) Bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes
}

// Info is the tier's operational snapshot for /v1/stats and /v1/cache.
type Info struct {
	Entries     int         `json:"entries"`
	Bytes       int64       `json:"bytes"`
	MaxBytes    int64       `json:"max_bytes"`
	Lookups     uint64      `json:"lookups"`
	Hits        uint64      `json:"hits"`
	PrefixHits  uint64      `json:"prefix_hits"`
	QuantaSaved uint64      `json:"quanta_saved"`
	Stored      uint64      `json:"stored"`
	Evicted     uint64      `json:"evicted"`
	Disk        *store.Info `json:"disk,omitempty"`
}

// Info snapshots the tier's sizes and counters.
func (t *Tier) Info() Info {
	t.mu.Lock()
	info := Info{
		Entries:     t.lru.Len(),
		Bytes:       t.bytes,
		MaxBytes:    t.maxBytes,
		Lookups:     t.lookups,
		Hits:        t.hits,
		PrefixHits:  t.prefixHits,
		QuantaSaved: t.quantaSaved,
		Stored:      t.stored,
		Evicted:     t.evicted,
	}
	disk := t.disk
	t.mu.Unlock()
	if disk != nil {
		di := disk.Info()
		info.Disk = &di
	}
	return info
}

// RunStats accumulates one request's memo activity across its
// (concurrently executed) repetitions; the service surfaces it as the
// X-Memo response detail and per-run report annotations.
type RunStats struct {
	mu              sync.Mutex
	runs            int
	prefixHits      int
	quantaSaved     int64
	quantaTotal     int64
	snapshotsStored int
}

// Record adds one simulation's outcome: whether it resumed from a
// snapshot, how many quanta the resume skipped, the run's total quanta,
// and how many snapshots it stored.
func (s *RunStats) Record(resumed bool, saved, total int64, stored int) {
	s.mu.Lock()
	s.runs++
	if resumed {
		s.prefixHits++
		s.quantaSaved += saved
	}
	s.quantaTotal += total
	s.snapshotsStored += stored
	s.mu.Unlock()
}

// View returns a copy of the accumulated counters.
func (s *RunStats) View() RunStatsView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return RunStatsView{
		Runs:            s.runs,
		PrefixHits:      s.prefixHits,
		QuantaSaved:     s.quantaSaved,
		QuantaTotal:     s.quantaTotal,
		SnapshotsStored: s.snapshotsStored,
	}
}

// RunStatsView is one request's memo activity in serializable form.
type RunStatsView struct {
	Runs            int   `json:"runs"`
	PrefixHits      int   `json:"prefix_hits"`
	QuantaSaved     int64 `json:"quanta_saved"`
	QuantaTotal     int64 `json:"quanta_total"`
	SnapshotsStored int   `json:"snapshots_stored"`
}
