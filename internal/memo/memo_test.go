package memo

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// key derives a store-compatible 64-hex key from a label.
func key(label string) string {
	h := sha256.Sum256([]byte(label))
	return hex.EncodeToString(h[:])
}

func TestTierPutGetRoundTrip(t *testing.T) {
	tier := New(0, nil)
	body := []byte("snapshot-bytes")
	tier.Put(key("a"), body)
	got, ok := tier.Get(key("a"))
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, body)
	}
	if _, ok := tier.Get(key("absent")); ok {
		t.Fatal("Get on an absent key reported a hit")
	}
	if tier.Len() != 1 || tier.Bytes() != int64(len(body)) {
		t.Errorf("Len/Bytes = %d/%d, want 1/%d", tier.Len(), tier.Bytes(), len(body))
	}
}

// TestTierLRUEviction checks the byte budget evicts least-recently-used
// snapshots first and that a Get refreshes recency.
func TestTierLRUEviction(t *testing.T) {
	body := make([]byte, 100)
	tier := New(250, nil) // room for two bodies
	tier.Put(key("a"), body)
	tier.Put(key("b"), body)
	tier.Get(key("a")) // refresh a: b is now the eviction candidate
	tier.Put(key("c"), body)
	if _, ok := tier.Get(key("b")); ok {
		t.Error("least-recently-used snapshot b survived past the byte budget")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := tier.Get(key(k)); !ok {
			t.Errorf("recently used snapshot %s was evicted", k)
		}
	}
	if info := tier.Info(); info.Evicted != 1 {
		t.Errorf("evicted = %d, want 1", info.Evicted)
	}
}

func TestTierDiskPromotionAndPurge(t *testing.T) {
	dir := t.TempDir()
	open := func() *store.Store {
		st, err := store.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	body := []byte("persistent-snapshot")
	New(0, open()).Put(key("a"), body)

	// A fresh tier over the same directory serves the snapshot from disk
	// and promotes it into memory.
	warm := New(0, open())
	if got, ok := warm.Get(key("a")); !ok || !bytes.Equal(got, body) {
		t.Fatalf("disk Get = %q, %v; want %q, true", got, ok, body)
	}
	if warm.Len() != 1 {
		t.Errorf("disk hit was not promoted into memory: Len = %d", warm.Len())
	}
	if info := warm.Info(); info.Disk == nil || info.Disk.Entries != 1 {
		t.Errorf("Info.Disk = %+v, want 1 entry", info.Disk)
	}

	if err := warm.Purge(); err != nil {
		t.Fatal(err)
	}
	if warm.Len() != 0 {
		t.Errorf("purge left %d in-memory snapshots", warm.Len())
	}
	if _, ok := New(0, open()).Get(key("a")); ok {
		t.Error("purge left the snapshot on disk")
	}
}

// TestTierCorruptDiskSnapshotIsMiss flips bytes in every stored object
// and checks the tier reads them as misses rather than serving garbage.
func TestTierCorruptDiskSnapshotIsMiss(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	New(0, st).Put(key("a"), []byte("soon-to-be-corrupt"))

	corrupted := 0
	err = filepath.Walk(dir, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		raw[len(raw)-1] ^= 0xff
		corrupted++
		return os.WriteFile(path, raw, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("no snapshot files found to corrupt")
	}
	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := New(0, st2).Get(key("a")); ok {
		t.Error("corrupted disk snapshot was served as a hit")
	}
}

func TestRunStatsRecordAndView(t *testing.T) {
	var rs RunStats
	rs.Record(false, 0, 100, 3)
	rs.Record(true, 60, 100, 1)
	got := rs.View()
	want := RunStatsView{Runs: 2, PrefixHits: 1, QuantaSaved: 60, QuantaTotal: 200, SnapshotsStored: 4}
	if got != want {
		t.Errorf("View = %+v, want %+v", got, want)
	}
}

func TestTierConcurrentAccess(t *testing.T) {
	tier := New(1<<20, nil)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				k := key(fmt.Sprintf("%d-%d", g, i))
				tier.Put(k, []byte{byte(g), byte(i)})
				tier.Get(k)
				tier.RecordResume(1)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if info := tier.Info(); info.Stored != 200 || info.PrefixHits != 200 {
		t.Errorf("stored/prefixHits = %d/%d, want 200/200", info.Stored, info.PrefixHits)
	}
}
