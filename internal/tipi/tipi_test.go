package tipi

import (
	"testing"
	"testing/quick"

	"repro/internal/freq"
)

func TestSlabOf(t *testing.T) {
	cases := []struct {
		tipi float64
		want Slab
	}{
		{0, 0}, {0.0039, 0}, {0.004, 1}, {0.0065, 1}, {0.026, 6}, {0.152, 38},
	}
	for _, c := range cases {
		if got := SlabOf(c.tipi, DefaultSlabWidth); got != c.want {
			t.Errorf("SlabOf(%g) = %d, want %d", c.tipi, got, c.want)
		}
	}
	if got := SlabOf(-0.5, DefaultSlabWidth); got != 0 {
		t.Errorf("negative TIPI should clamp to slab 0, got %d", got)
	}
}

func TestSlabFormat(t *testing.T) {
	s := SlabOf(0.026, DefaultSlabWidth)
	if got := s.Format(DefaultSlabWidth); got != "0.024-0.028" {
		t.Errorf("Format = %q, want paper-style 0.024-0.028", got)
	}
}

func TestSlabBoundsRoundTripQuick(t *testing.T) {
	prop := func(raw uint16) bool {
		tipi := float64(raw) / 10000 // 0..6.55
		s := SlabOf(tipi, DefaultSlabWidth)
		lo, hi := s.Bounds(DefaultSlabWidth)
		return lo <= tipi && tipi < hi+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func newCFExplorer() *Explorer { return NewExplorer(freq.HaswellCore()) }

func TestExplorerDefaults(t *testing.T) {
	e := newCFExplorer()
	if e.LB() != 0 || e.RB() != e.Grid().MaxLevel() {
		t.Errorf("default bounds = [%d,%d], want full grid", e.LB(), e.RB())
	}
	if e.HasOpt() {
		t.Error("fresh explorer must not have an optimum")
	}
}

func TestExplorerAveraging(t *testing.T) {
	e := newCFExplorer()
	for i := 0; i < SamplesPerAvg-1; i++ {
		e.Record(5, 2.0)
		if _, ok := e.Avg(5); ok {
			t.Fatalf("average complete after %d readings", i+1)
		}
	}
	e.Record(5, 4.0)
	avg, ok := e.Avg(5)
	if !ok {
		t.Fatal("average missing after 10 readings")
	}
	want := (2.0*9 + 4.0) / 10
	if avg != want {
		t.Errorf("avg = %g, want %g", avg, want)
	}
	// Frozen after completion.
	e.Record(5, 100)
	if got, _ := e.Avg(5); got != want {
		t.Errorf("average changed after completion: %g", got)
	}
}

func TestExplorerNarrowing(t *testing.T) {
	e := newCFExplorer()
	e.NarrowRB(8)
	e.NarrowLB(3)
	if e.LB() != 3 || e.RB() != 8 {
		t.Errorf("bounds = [%d,%d], want [3,8]", e.LB(), e.RB())
	}
	// Widening attempts are ignored.
	e.NarrowRB(11)
	e.NarrowLB(0)
	if e.LB() != 3 || e.RB() != 8 {
		t.Errorf("bounds widened to [%d,%d]", e.LB(), e.RB())
	}
	// Crossing clamps and resolves.
	e.NarrowLB(10)
	if !e.HasOpt() || e.Opt() != 8 {
		t.Errorf("crossing narrow should resolve opt at RB, got opt=%d hasOpt=%v", e.Opt(), e.HasOpt())
	}
}

func TestExplorerNarrowIgnoredAfterOpt(t *testing.T) {
	e := newCFExplorer()
	e.SetOpt(4)
	e.NarrowLB(6)
	e.NarrowRB(2)
	if e.Opt() != 4 || e.LB() != 4 || e.RB() != 4 {
		t.Error("narrowing must not move a resolved optimum")
	}
}

func TestExplorerCollapseResolves(t *testing.T) {
	e := newCFExplorer()
	e.SetBounds(7, 7)
	if !e.HasOpt() || e.Opt() != 7 {
		t.Error("LB == RB must resolve the optimum (Alg. 2 line 20-21)")
	}
}

func TestChooseAdjacentFig5(t *testing.T) {
	// Fig. 5(a): pair at the top of the grid → pick the higher frequency.
	e := newCFExplorer()
	top := e.Grid().MaxLevel()
	e.SetBounds(top-1, top)
	if got := e.ChooseAdjacent(); got != top {
		t.Errorf("upper-grid adjacent pair resolved to %d, want RB %d (compute-bound keeps speed)", got, top)
	}
	// Fig. 5(b): pair near the bottom → pick the lower frequency.
	e2 := newCFExplorer()
	e2.SetBounds(1, 2)
	if got := e2.ChooseAdjacent(); got != 1 {
		t.Errorf("lower-grid adjacent pair resolved to %d, want LB 1 (memory-bound saves energy)", got)
	}
	// §4.5 example: (D,E) = levels (3,4) on a 7-level grid resolves to E.
	g := freq.Grid{Min: 10, Max: 16} // 7 levels, A..G
	e3 := NewExplorer(g)
	e3.SetBounds(3, 4)
	if got := e3.ChooseAdjacent(); got != 4 {
		t.Errorf("mid-upper pair resolved to %d, want 4 (E)", got)
	}
}

func TestBoundOrOpt(t *testing.T) {
	e := newCFExplorer()
	e.SetBounds(2, 9)
	if e.BoundOrOptLB() != 2 || e.BoundOrOptRB() != 9 {
		t.Error("unresolved explorer must report bounds")
	}
	e.SetOpt(5)
	if e.BoundOrOptLB() != 5 || e.BoundOrOptRB() != 5 {
		t.Error("resolved explorer must report the optimum")
	}
}

func TestListSortedInsert(t *testing.T) {
	l := NewList(freq.HaswellCore(), freq.HaswellUncore())
	for _, s := range []Slab{5, 1, 9, 3, 1} { // duplicate 1 on purpose
		l.Insert(s)
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4 (duplicate collapsed)", l.Len())
	}
	var got []Slab
	for n := l.Front(); n != nil; n = n.Next() {
		got = append(got, n.Slab)
	}
	want := []Slab{1, 3, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestListNeighbourLinks(t *testing.T) {
	l := NewList(freq.HaswellCore(), freq.HaswellUncore())
	l.Insert(3)
	l.Insert(1)
	mid := l.Insert(2)
	if mid.Prev() == nil || mid.Prev().Slab != 1 {
		t.Error("prev link broken")
	}
	if mid.Next() == nil || mid.Next().Slab != 3 {
		t.Error("next link broken")
	}
	if l.Front().Prev() != nil {
		t.Error("head must have nil prev")
	}
}

func TestListLookup(t *testing.T) {
	l := NewList(freq.HaswellCore(), freq.HaswellUncore())
	l.Insert(4)
	if l.Lookup(4) == nil {
		t.Error("lookup of existing slab failed")
	}
	if l.Lookup(2) != nil || l.Lookup(9) != nil {
		t.Error("lookup invented a node")
	}
}

func TestListInsertReturnsExisting(t *testing.T) {
	l := NewList(freq.HaswellCore(), freq.HaswellUncore())
	a := l.Insert(7)
	a.Hits = 42
	b := l.Insert(7)
	if a != b || b.Hits != 42 {
		t.Error("inserting an existing slab must return the existing node")
	}
}

// Property: after inserting any slab sequence the list is sorted, len
// matches the number of distinct slabs, and prev/next are consistent.
func TestListInvariantsQuick(t *testing.T) {
	prop := func(raw []uint8) bool {
		l := NewList(freq.HaswellCore(), freq.HaswellUncore())
		distinct := map[Slab]bool{}
		for _, r := range raw {
			s := Slab(r % 40)
			l.Insert(s)
			distinct[s] = true
		}
		if l.Len() != len(distinct) {
			return false
		}
		prevSlab := Slab(-1)
		for n := l.Front(); n != nil; n = n.Next() {
			if n.Slab <= prevSlab {
				return false
			}
			if n.Next() != nil && n.Next().Prev() != n {
				return false
			}
			prevSlab = n.Slab
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
