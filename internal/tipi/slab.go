// Package tipi implements Cuttlefish's memory-access-pattern bookkeeping:
// TIPI slab arithmetic (unique TIPI values are bucketed into fixed-width
// slabs of 0.004, §3.2) and the sorted doubly linked list of slab nodes the
// daemon maintains (§4.2). Each node carries, for both frequency domains,
// the per-frequency JPI averaging tables, the live exploration bounds, and
// the resolved optimum.
//
// Moving left→right through the list is moving from compute-bound toward
// memory-bound MAPs; that ordering is what lets neighbours tighten each
// other's exploration ranges (§4.4, §4.5).
package tipi

import "fmt"

// DefaultSlabWidth is the paper's empirically derived TIPI slab width.
const DefaultSlabWidth = 0.004

// Slab identifies a TIPI range [index·width, (index+1)·width).
type Slab int

// SlabOf buckets a TIPI value with the given slab width.
func SlabOf(tipi, width float64) Slab {
	if width <= 0 {
		panic(fmt.Sprintf("tipi: non-positive slab width %g", width))
	}
	if tipi < 0 {
		tipi = 0
	}
	return Slab(tipi / width)
}

// Bounds returns the slab's TIPI interval for the given width.
func (s Slab) Bounds(width float64) (lo, hi float64) {
	return float64(s) * width, float64(s+1) * width
}

// Format renders the slab the way the paper's tables do, e.g. "0.024-0.028".
func (s Slab) Format(width float64) string {
	lo, hi := s.Bounds(width)
	return fmt.Sprintf("%.3f-%.3f", lo, hi)
}
