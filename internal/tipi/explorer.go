package tipi

import (
	"fmt"

	"repro/internal/freq"
)

// SamplesPerAvg is how many Tinv readings make a usable JPI average
// (Algorithm 2: "JPI avg at any FQ is average of 10 readings").
const SamplesPerAvg = 10

// NoOpt marks an unresolved optimum (the paper's -1).
const NoOpt freq.Level = -1

// jpiAcc accumulates JPI readings at one frequency level.
type jpiAcc struct {
	sum float64
	n   int
}

// Explorer is one frequency domain's exploration state inside a slab node:
// the JPI table, the live [LB, RB] bounds, and the optimum once found. It
// corresponds to one FQ_table entry of the paper's node (Fig. 4a).
type Explorer struct {
	grid     freq.Grid
	lb, rb   freq.Level
	opt      freq.Level
	readings []jpiAcc
}

// NewExplorer creates a domain explorer over the full grid (the default
// exploration range of Algorithm 1 lines 10–11).
func NewExplorer(grid freq.Grid) *Explorer {
	return &Explorer{
		grid:     grid,
		lb:       0,
		rb:       grid.MaxLevel(),
		opt:      NoOpt,
		readings: make([]jpiAcc, grid.Levels()),
	}
}

// Grid returns the underlying frequency grid.
func (e *Explorer) Grid() freq.Grid { return e.grid }

// LB and RB return the current exploration bounds.
func (e *Explorer) LB() freq.Level { return e.lb }
func (e *Explorer) RB() freq.Level { return e.rb }

// Opt returns the resolved optimum level, or NoOpt.
func (e *Explorer) Opt() freq.Level { return e.opt }

// HasOpt reports whether the optimum is resolved.
func (e *Explorer) HasOpt() bool { return e.opt != NoOpt }

// OptRatio returns the optimum as a frequency ratio; it panics when
// unresolved (callers must check HasOpt).
func (e *Explorer) OptRatio() freq.Ratio { return e.grid.Ratio(e.opt) }

// SetOpt resolves the optimum and collapses the bounds onto it.
func (e *Explorer) SetOpt(l freq.Level) {
	e.checkLevel(l)
	e.opt = l
	e.lb, e.rb = l, l
}

// SetBounds replaces the exploration range (used by Algorithm 3's UF range
// estimation and §4.4 neighbour seeding).
func (e *Explorer) SetBounds(lb, rb freq.Level) {
	e.checkLevel(lb)
	e.checkLevel(rb)
	if lb > rb {
		panic(fmt.Sprintf("tipi: bounds inverted %d > %d", lb, rb))
	}
	e.lb, e.rb = lb, rb
	e.resolveCollapsed()
}

// NarrowLB raises the left bound to at least l (never widening, never
// crossing RB: a crossing means neighbour constraints already pin the
// optimum at RB).
func (e *Explorer) NarrowLB(l freq.Level) {
	if e.HasOpt() || l <= e.lb {
		return
	}
	if l > e.rb {
		l = e.rb
	}
	e.lb = l
	e.resolveCollapsed()
}

// NarrowRB lowers the right bound to at most l, mirroring NarrowLB.
func (e *Explorer) NarrowRB(l freq.Level) {
	if e.HasOpt() || l >= e.rb {
		return
	}
	if l < e.lb {
		l = e.lb
	}
	e.rb = l
	e.resolveCollapsed()
}

// resolveCollapsed sets the optimum when the bounds meet (Algorithm 2
// lines 20–21, also reached through §4.5 propagation as in Fig. 9b).
func (e *Explorer) resolveCollapsed() {
	if !e.HasOpt() && e.lb == e.rb {
		e.opt = e.lb
	}
}

// ReadingState is one frequency level's JPI accumulator in serializable
// form.
type ReadingState struct {
	Sum float64 `json:"sum"`
	N   int     `json:"n"`
}

// ExplorerState is the explorer's complete mutable state, exported for
// daemon snapshots (the grid is configuration, not state).
type ExplorerState struct {
	LB       freq.Level     `json:"lb"`
	RB       freq.Level     `json:"rb"`
	Opt      freq.Level     `json:"opt"`
	Readings []ReadingState `json:"readings"`
}

// State exports the mutable exploration state.
func (e *Explorer) State() ExplorerState {
	s := ExplorerState{LB: e.lb, RB: e.rb, Opt: e.opt, Readings: make([]ReadingState, len(e.readings))}
	for i, acc := range e.readings {
		s.Readings[i] = ReadingState{Sum: acc.sum, N: acc.n}
	}
	return s
}

// SetState overwrites the exploration state from a snapshot taken by
// State. The reading table must match the grid's level count.
func (e *Explorer) SetState(s ExplorerState) error {
	if len(s.Readings) != e.grid.Levels() {
		return fmt.Errorf("tipi: state has %d readings, grid has %d levels", len(s.Readings), e.grid.Levels())
	}
	if s.LB < 0 || int(s.RB) >= e.grid.Levels() || s.LB > s.RB {
		return fmt.Errorf("tipi: state bounds [%d, %d] invalid for grid %v", s.LB, s.RB, e.grid)
	}
	if s.Opt != NoOpt && (s.Opt < 0 || int(s.Opt) >= e.grid.Levels()) {
		return fmt.Errorf("tipi: state optimum %d outside grid %v", s.Opt, e.grid)
	}
	e.lb, e.rb, e.opt = s.LB, s.RB, s.Opt
	for i, r := range s.Readings {
		e.readings[i] = jpiAcc{sum: r.Sum, n: r.N}
	}
	return nil
}

// Record adds one Tinv JPI reading at the given level (Algorithm 2 line 7).
// Readings beyond SamplesPerAvg are ignored: the average is frozen once
// complete, as in the paper.
func (e *Explorer) Record(l freq.Level, jpi float64) {
	e.checkLevel(l)
	acc := &e.readings[l]
	if acc.n >= SamplesPerAvg {
		return
	}
	acc.sum += jpi
	acc.n++
}

// Avg returns the completed JPI average at a level. ok is false until
// SamplesPerAvg readings have accumulated ("JPIavg NOT exists").
func (e *Explorer) Avg(l freq.Level) (float64, bool) {
	e.checkLevel(l)
	acc := e.readings[l]
	if acc.n < SamplesPerAvg {
		return 0, false
	}
	return acc.sum / float64(acc.n), true
}

// Samples returns how many readings exist at a level.
func (e *Explorer) Samples(l freq.Level) int {
	e.checkLevel(l)
	return e.readings[l].n
}

// Adjacent reports whether the bounds differ by exactly one level
// (Algorithm 2 line 2).
func (e *Explorer) Adjacent() bool { return e.rb-e.lb == 1 }

// ChooseAdjacent resolves the optimum between adjacent bounds per Fig. 5:
// a pair sitting in the upper half of the grid indicates a compute-bound
// MAP, so the higher frequency wins to protect performance; a pair in the
// lower half indicates memory-bound, so the lower frequency wins to
// maximise energy efficiency.
func (e *Explorer) ChooseAdjacent() freq.Level {
	if !e.Adjacent() {
		panic("tipi: ChooseAdjacent without adjacent bounds")
	}
	if int(e.lb+e.rb) >= int(e.grid.MaxLevel()) {
		e.SetOpt(e.rb)
	} else {
		e.SetOpt(e.lb)
	}
	return e.opt
}

// BoundOrOptLB returns the strongest lower-bound knowledge this explorer
// has: the optimum when resolved, otherwise LB. Used by §4.4/§4.5
// neighbour propagation.
func (e *Explorer) BoundOrOptLB() freq.Level {
	if e.HasOpt() {
		return e.opt
	}
	return e.lb
}

// BoundOrOptRB mirrors BoundOrOptLB for the upper bound.
func (e *Explorer) BoundOrOptRB() freq.Level {
	if e.HasOpt() {
		return e.opt
	}
	return e.rb
}

func (e *Explorer) checkLevel(l freq.Level) {
	if l < 0 || int(l) >= e.grid.Levels() {
		panic(fmt.Sprintf("tipi: level %d outside grid %v", l, e.grid))
	}
}
