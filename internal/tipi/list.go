package tipi

import "repro/internal/freq"

// Node is one discovered TIPI slab in the daemon's sorted doubly linked
// list: exploration state for both frequency domains plus occurrence
// statistics used for the paper's "frequent TIPI" reporting (Table 2).
type Node struct {
	Slab Slab
	CF   *Explorer
	UF   *Explorer

	// UFRangeSet records whether Algorithm 3 has estimated this node's
	// uncore exploration range yet (it runs once, when CFopt resolves).
	UFRangeSet bool

	// Hits counts the Tinv samples whose TIPI landed in this slab.
	Hits int

	prev, next *Node
}

// Prev and Next expose list neighbours (nil at the ends). Left neighbours
// are more compute-bound, right neighbours more memory-bound.
func (n *Node) Prev() *Node { return n.prev }
func (n *Node) Next() *Node { return n.next }

// List is the sorted doubly linked list of TIPI slabs (§4.2). It is empty
// at daemon start; slabs are inserted as the application reveals them.
type List struct {
	head, tail *Node
	len        int
	coreGrid   freq.Grid
	uncoreGrid freq.Grid
}

// NewList creates an empty list whose nodes explore the given grids.
func NewList(coreGrid, uncoreGrid freq.Grid) *List {
	return &List{coreGrid: coreGrid, uncoreGrid: uncoreGrid}
}

// Len returns the number of distinct slabs discovered.
func (l *List) Len() int { return l.len }

// Front returns the most compute-bound node, or nil.
func (l *List) Front() *Node { return l.head }

// Lookup returns the node for a slab, or nil if undiscovered.
func (l *List) Lookup(s Slab) *Node {
	for n := l.head; n != nil; n = n.next {
		if n.Slab == s {
			return n
		}
		if n.Slab > s {
			return nil
		}
	}
	return nil
}

// Insert adds a node for a new slab in sorted position and returns it.
// Inserting an existing slab returns the existing node.
func (l *List) Insert(s Slab) *Node {
	var after *Node
	for n := l.head; n != nil; n = n.next {
		if n.Slab == s {
			return n
		}
		if n.Slab > s {
			break
		}
		after = n
	}
	node := &Node{
		Slab: s,
		CF:   NewExplorer(l.coreGrid),
		UF:   NewExplorer(l.uncoreGrid),
	}
	switch {
	case after == nil: // new head
		node.next = l.head
		if l.head != nil {
			l.head.prev = node
		}
		l.head = node
		if l.tail == nil {
			l.tail = node
		}
	default:
		node.prev = after
		node.next = after.next
		after.next = node
		if node.next != nil {
			node.next.prev = node
		} else {
			l.tail = node
		}
	}
	l.len++
	return node
}

// Nodes returns the nodes in slab order (a copy; mutating list structure
// while iterating the slice is safe).
func (l *List) Nodes() []*Node {
	out := make([]*Node, 0, l.len)
	for n := l.head; n != nil; n = n.next {
		out = append(out, n)
	}
	return out
}
