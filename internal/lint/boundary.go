package lint

// The determinism boundary: packages whose output must be a
// bit-deterministic function of (RunSpec, seed). Everything the cache
// tiers serve — canonical report bytes, memo snapshots, fuzz baselines —
// is computed inside these packages, so wall-clock, entropy, host state
// and map-iteration order must not influence anything they emit.
//
// This list is the single source of truth: detsource and boundaryimport
// both key off it, and DESIGN.md ("The determinism boundary as an
// enforced contract") documents it. Adding a package here is a reviewed
// decision, not a side effect.
var DeterminismBoundary = []string{
	"repro/internal/machine",
	"repro/internal/core",
	"repro/internal/sched",
	"repro/internal/workload",
	"repro/internal/scenario",
	"repro/internal/governor",
	"repro/internal/bench",
	"repro/internal/grid",
	"repro/internal/memo",
	"repro/internal/report",
	"repro/internal/stats",
}

// inBoundary reports whether the import path is inside the determinism
// boundary.
func inBoundary(boundary []string, path string) bool {
	for _, b := range boundary {
		if path == b {
			return true
		}
	}
	return false
}
