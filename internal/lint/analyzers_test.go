package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer gets failing-then-passing fixture coverage: the fixture
// packages contain both flagged sites (declared with // want comments)
// and clean idiomatic counterparts, plus the //cfvet:allow suppression
// path.

func TestDetSourceFixtures(t *testing.T) {
	linttest.Run(t, "testdata/detsource/boundary", "repro/internal/machine", lint.DetSource)
	linttest.Run(t, "testdata/detsource/outside", "repro/internal/orchestrator", lint.DetSource)
}

func TestMapOrderFixtures(t *testing.T) {
	linttest.Run(t, "testdata/maporder", "fixture/maporder", lint.MapOrder)
}

func TestHashFieldFixtures(t *testing.T) {
	a := lint.NewHashField([]lint.HashFieldRule{{
		PkgPath:  "fixture/hashfield",
		TypeName: "Spec",
		Funcs:    []string{"Normalized", "Build"},
	}})
	linttest.Run(t, "testdata/hashfield", "fixture/hashfield", a)
}

func TestMsrBracketFixtures(t *testing.T) {
	a := lint.NewMsrBracket([]string{"fixture/governor"})
	linttest.Run(t, "testdata/msrbracket", "fixture/governor", a)
}

func TestAtomicMixFixtures(t *testing.T) {
	linttest.Run(t, "testdata/atomicmix", "fixture/atomicmix", lint.AtomicMix)
}

func TestBoundaryImportFixtures(t *testing.T) {
	linttest.Run(t, "testdata/boundaryimport/inside", "repro/internal/stats", lint.BoundaryImport)
	linttest.Run(t, "testdata/boundaryimport/approved", "repro/internal/machine", lint.BoundaryImport)
}

// TestMsrBracketRealGovernors pins the production governor package: all
// eight built-ins must pass the bracket check (this is the analyzer
// running against real code, not a fixture).
func TestMsrBracketRealGovernors(t *testing.T) {
	pkgs, err := lint.Load("../..", []string{"./internal/governor"})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, pkg := range pkgs {
		res, err := lint.RunPackage(pkg, []*lint.Analyzer{lint.MsrBracket})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		for _, d := range res.Diagnostics {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

// TestCfvetRepoClean is the acceptance gate: the full analyzer suite over
// the whole repository must report nothing (all remaining true findings
// are fixed or carry reasoned //cfvet:allow suppressions).
func TestCfvetRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repo")
	}
	pkgs, err := lint.Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, pkg := range pkgs {
		res, err := lint.RunPackage(pkg, lint.All())
		if err != nil {
			t.Fatalf("run %s: %v", pkg.Path, err)
		}
		for _, d := range res.Diagnostics {
			t.Errorf("finding: %s", d)
		}
	}
}

// TestSuppressionAudit pins that every committed //cfvet:allow is live:
// a suppression that stops suppressing anything must be deleted, not
// left to rot (stale allows are what make audits lie).
func TestSuppressionAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repo")
	}
	pkgs, err := lint.Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, pkg := range pkgs {
		res, err := lint.RunPackage(pkg, lint.All())
		if err != nil {
			t.Fatalf("run %s: %v", pkg.Path, err)
		}
		for _, a := range res.Allows {
			if !a.Used {
				t.Errorf("%s:%d: stale //cfvet:allow(%v) suppresses nothing — delete it", a.Pos.Filename, a.Pos.Line, a.Checks)
			}
		}
	}
}
