// Package linttest is the fixture harness for cfvet analyzers — the
// stdlib stand-in for golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a directory holding one Go package. Expected diagnostics
// are declared in the source with analysistest's comment convention:
//
//	m := map[string]int{}
//	for k := range m { // want `appends to "keys" without sorting`
//		keys = append(keys, k)
//	}
//
// Each `// want "regex"` (one or more quoted regexes; backquotes or
// double quotes) must be matched by a diagnostic reported on its line,
// and every diagnostic must match a want. Because //cfvet:allow comments
// swallow the rest of their line, an expectation about the directive
// itself goes on the following line as `// want-above "regex"`.
//
// Suppression filtering runs exactly as in cfvet, so fixtures exercise
// the //cfvet:allow path end to end.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

var wantRe = regexp.MustCompile("//[ \t]*(want|want-above)((?:[ \t]+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)[ \t]*$")
var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture package rooted at dir, analyzes it under the
// given import path (so boundary-scoped analyzers can be pointed at real
// package identities), and diffs diagnostics against the want comments.
func Run(t *testing.T, dir, path string, analyzers ...*lint.Analyzer) {
	t.Helper()
	files, err := fixtureFiles(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	imports, err := fixtureImports(files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	imp, err := lint.StdImporter(".", imports)
	if err != nil {
		t.Fatalf("linttest: resolving fixture imports %v: %v", imports, err)
	}
	pkg, err := lint.TypeCheck(path, files, imp)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	res, err := lint.RunPackage(pkg, analyzers)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	wants, err := collectWants(files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	for _, d := range res.Diagnostics {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	sort.Strings(files)
	return files, nil
}

var importLineRe = regexp.MustCompile("^[ \t]*(?:_[ \t]+|[A-Za-z0-9_]+[ \t]+)?\"([^\"]+)\"")

// fixtureImports scans fixture sources for import paths (single-line and
// block form) so the importer can pre-resolve their export data.
func fixtureImports(files []string) ([]string, error) {
	seen := map[string]bool{}
	var paths []string
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		inBlock := false
		for _, line := range strings.Split(string(data), "\n") {
			trimmed := strings.TrimSpace(line)
			switch {
			case strings.HasPrefix(trimmed, "import ("):
				inBlock = true
			case inBlock && trimmed == ")":
				inBlock = false
			case inBlock:
				if m := importLineRe.FindStringSubmatch(line); m != nil && !seen[m[1]] {
					seen[m[1]] = true
					paths = append(paths, m[1])
				}
			case strings.HasPrefix(trimmed, "import "):
				rest := strings.TrimPrefix(trimmed, "import ")
				if m := importLineRe.FindStringSubmatch(rest); m != nil && !seen[m[1]] {
					seen[m[1]] = true
					paths = append(paths, m[1])
				}
			}
		}
	}
	return paths, nil
}

func collectWants(files []string) ([]*want, error) {
	var wants []*want
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			lineNo := i + 1
			if m[1] == "want-above" {
				lineNo--
			}
			for _, q := range wantArgRe.FindAllString(m[2], -1) {
				var raw string
				if q[0] == '`' {
					raw = q[1 : len(q)-1]
				} else if raw, err = strconv.Unquote(q); err != nil {
					return nil, fmt.Errorf("%s:%d: bad want %s: %v", name, lineNo, q, err)
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", name, lineNo, raw, err)
				}
				wants = append(wants, &want{file: name, line: lineNo, re: re, raw: raw})
			}
		}
	}
	return wants, nil
}

func matchWant(wants []*want, d lint.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.line != d.Pos.Line {
			continue
		}
		if !sameFile(w.file, d.Pos.Filename) {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	if err1 != nil || err2 != nil {
		return filepath.Base(a) == filepath.Base(b)
	}
	return aa == bb
}
