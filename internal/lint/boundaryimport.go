package lint

import "strconv"

// Observability packages. Code inside the determinism boundary may not
// import them except through the approved hook points below: spans and
// metrics carry wall-clock timestamps, and an accidental dependency is
// how timing leaks into simulated state.
var obsPackages = []string{
	"repro/internal/obs",
	"repro/internal/timeline",
}

// approvedObsImports are the audited hook points. The flight recorder
// (internal/timeline) was designed to be callable from inside the
// boundary: it samples only simulated state at quiescent cuts and its
// output is excluded from report bytes, spec hashes and memo keys
// (DESIGN.md, "Flight recorder"). machine publishes the samples, the
// governors and the daemon publish decision events. internal/obs (spans,
// Prometheus metrics) records wall-clock time and is never approved.
var approvedObsImports = map[string]map[string]bool{
	"repro/internal/machine":  {"repro/internal/timeline": true},
	"repro/internal/governor": {"repro/internal/timeline": true},
	"repro/internal/core":     {"repro/internal/timeline": true},
}

// NewBoundaryImport returns the boundaryimport analyzer for the given
// boundary, forbidden observability packages, and approved (package,
// import) pairs.
func NewBoundaryImport(boundary, forbidden []string, approved map[string]map[string]bool) *Analyzer {
	a := &Analyzer{
		Name: "boundaryimport",
		Doc: "determinism-boundary packages may not import the observability packages (obs, timeline) " +
			"except through the approved hook points",
	}
	a.Run = func(pass *Pass) error {
		if !inBoundary(boundary, pass.Path) {
			return nil
		}
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if !inBoundary(forbidden, path) { // reuse: exact-match list membership
					continue
				}
				if approved[pass.Path][path] {
					continue
				}
				pass.Reportf(imp.Pos(), "determinism-boundary package %s imports observability package %s without an approved hook point (see internal/lint/boundaryimport.go)", pass.Path, path)
			}
		}
		return nil
	}
	return a
}

// BoundaryImport is the production boundaryimport analyzer.
var BoundaryImport = NewBoundaryImport(DeterminismBoundary, obsPackages, approvedObsImports)
