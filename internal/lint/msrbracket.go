package lint

import (
	"go/ast"
	"go/types"
)

// MsrBracket enforces the governor contract from PR 2: every Attach
// performs dev.Save() before mutating MSR state, and the Attachment it
// returns routes Detach through dev.Restore — unconditionally, even when
// the strategy's own teardown fails. A governor that skips the bracket
// leaks frequency/cadence state from one run into the next machine
// attachment, which breaks run independence and therefore every cache
// tier keyed on (RunSpec, seed) alone.
//
// Mechanically, inside the configured packages, every method named Attach
// returning (*Attachment, error) must:
//
//  1. call .Save() on something (the msr device snapshot), and
//  2. construct its result through newAttachment, where the detach
//     argument references .Restore (either the method value dev.Restore
//     or a closure that calls it).

// NewMsrBracket returns the msrbracket analyzer restricted to pkgs.
func NewMsrBracket(pkgs []string) *Analyzer {
	a := &Analyzer{
		Name: "msrbracket",
		Doc: "every governor Attach must Save MSR state and route the returned Attachment's Detach " +
			"through Restore (the Save/Restore bracket)",
	}
	a.Run = func(pass *Pass) error {
		if !inBoundary(pkgs, pass.Path) {
			return nil
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name.Name != "Attach" || fd.Body == nil || !returnsAttachment(pass, fd) {
					continue
				}
				checkAttach(pass, fd)
			}
		}
		return nil
	}
	return a
}

// MsrBracket is the production msrbracket analyzer.
var MsrBracket = NewMsrBracket([]string{"repro/internal/governor"})

// returnsAttachment reports whether fd's results include *Attachment.
func returnsAttachment(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		tv, ok := pass.TypesInfo.Types[res.Type]
		if !ok {
			continue
		}
		if nt, ok := derefType(tv.Type).(*types.Named); ok && nt.Obj().Name() == "Attachment" {
			return true
		}
	}
	return false
}

func checkAttach(pass *Pass, fd *ast.FuncDecl) {
	var savePos ast.Node
	var attachCalls []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Save" && savePos == nil {
				savePos = call
			}
		case *ast.Ident:
			if fun.Name == "newAttachment" {
				attachCalls = append(attachCalls, call)
			}
		}
		return true
	})

	recv := governorName(fd)
	if savePos == nil {
		pass.Reportf(fd.Pos(), "governor %s.Attach never calls Save — MSR state mutated by this governor cannot be restored at Detach", recv)
	}
	if len(attachCalls) == 0 {
		pass.Reportf(fd.Pos(), "governor %s.Attach does not construct its result through newAttachment — Detach cannot route through the Save/Restore bracket", recv)
		return
	}
	for _, call := range attachCalls {
		if len(call.Args) < 2 || !referencesRestore(call.Args[1]) {
			pass.Reportf(call.Pos(), "governor %s.Attach: newAttachment's detach argument does not reference Restore — MSR state saved at Attach would never be restored", recv)
		}
	}
	if savePos != nil && len(attachCalls) > 0 && attachCalls[0].Pos() < savePos.Pos() {
		pass.Reportf(attachCalls[0].Pos(), "governor %s.Attach constructs the Attachment before calling Save — the bracket must capture pre-attach MSR state first", recv)
	}
}

// referencesRestore reports whether the expression mentions a selector
// .Restore anywhere (dev.Restore as a method value, or a closure whose
// body calls it, possibly via errors.Join).
func referencesRestore(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Restore" {
			found = true
		}
		return !found
	})
	return found
}

// governorName renders the receiver type for diagnostics.
func governorName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "(package-level)"
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "(unknown receiver)"
}
