// Package loading for cfvet. golang.org/x/tools/go/packages is not
// available in this build environment (no module proxy), so this is the
// minimal equivalent built on the toolchain itself: `go list -deps -export
// -json` names every package, its files and its compiled export data, and
// go/types checks each target package from source with imports satisfied
// from that export data. Everything works offline and from the build cache.

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json patterns...` in dir and decodes
// the JSON stream.
func goList(dir string, patterns []string) ([]listEntry, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportLookup satisfies the gc importer's lookup contract from the
// Export files `go list -export` reported.
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// Load resolves patterns (e.g. "./...") relative to dir into parsed,
// type-checked Packages. Only non-dep packages are returned for analysis;
// dependency packages (including the standard library) contribute export
// data for type checking. Test files are not loaded: cfvet guards the
// production determinism boundary, and tests legitimately use wall-clock
// timeouts and temp dirs.
func Load(dir string, patterns []string) ([]*Package, error) {
	entries, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	imp := importer.ForCompiler(token.NewFileSet(), "gc", exportLookup(exports))

	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || e.Standard {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", e.ImportPath, e.Error.Err)
		}
		var files []string
		for _, f := range e.GoFiles {
			files = append(files, filepath.Join(e.Dir, f))
		}
		pkg, err := TypeCheck(e.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = e.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// TypeCheck parses and type-checks one package from explicit file paths,
// resolving imports through imp. linttest uses it directly to load
// fixture packages under a caller-chosen import path.
func TypeCheck(path string, files []string, imp types.Importer) (*Package, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: parsed, Types: tpkg, Info: info}, nil
}

// StdImporter returns an importer serving export data for the named
// packages and their dependencies, resolved via the local toolchain.
// linttest uses it to type-check fixtures that import the standard
// library (or repro packages) without a full workspace load.
func StdImporter(dir string, imports []string) (types.Importer, error) {
	if len(imports) == 0 {
		return importer.ForCompiler(token.NewFileSet(), "gc", exportLookup(nil)), nil
	}
	entries, err := goList(dir, imports)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return importer.ForCompiler(token.NewFileSet(), "gc", exportLookup(exports)), nil
}
