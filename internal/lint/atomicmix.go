package lint

import (
	"go/ast"
	"go/types"
)

// AtomicMix flags struct fields that are accessed both through
// sync/atomic and through plain reads/writes in the same package. This is
// the shape of the publish-before-initialize race PR 8's -race run caught
// on the flight-trace fields: one goroutine stores a value plainly
// "because it happens before publication", another loads it atomically,
// and the happens-before edge everyone assumed turns out not to exist on
// some path. Mixed access is either a data race or an unstated invariant;
// both belong in review. The fix is to use atomic access everywhere the
// field is touched (or a mutex, or an atomic.Int64-style typed field,
// which this analyzer cannot be misused with at all) — or to state the
// invariant with a //cfvet:allow(atomicmix) suppression.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "flag struct fields accessed both via sync/atomic and via plain reads/writes " +
		"(the publish-before-initialize race shape)",
}

func init() { AtomicMix.Run = runAtomicMix }

func runAtomicMix(pass *Pass) error {
	// Pass 1: every field whose address is taken for a sync/atomic call,
	// and the selector nodes used to do it (exempt from pass 2).
	atomicFields := map[*types.Var]ast.Node{} // field -> one atomic use site
	atomicSites := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				field := fieldVar(pass, sel)
				if field == nil {
					continue
				}
				atomicSites[sel] = true
				if _, seen := atomicFields[field]; !seen {
					atomicFields[field] = call
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other selection of those fields is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSites[sel] {
				return true
			}
			field := fieldVar(pass, sel)
			if field == nil {
				return true
			}
			site, isAtomic := atomicFields[field]
			if !isAtomic {
				return true
			}
			pass.Reportf(sel.Pos(), "plain access to field %s, which is accessed atomically at %s — mixed atomic/plain access is the publish-before-initialize race shape; use atomic access everywhere (or an atomic.%s-typed field)",
				field.Name(), pass.Fset.Position(site.Pos()), suggestAtomicType(field.Type()))
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call targets a sync/atomic package-level
// function (atomic.LoadUint64, atomic.StorePointer, ...). Methods on the
// typed atomics (atomic.Int64 etc.) are deliberately not matched: a typed
// atomic field cannot be accessed plainly by construction.
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	_, isSelection := pass.TypesInfo.Selections[sel]
	return !isSelection
}

// fieldVar resolves a selector to the struct field it selects, or nil.
func fieldVar(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	selInfo, ok := pass.TypesInfo.Selections[sel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return nil
	}
	v, _ := selInfo.Obj().(*types.Var)
	return v
}

// suggestAtomicType names the typed-atomic replacement for diagnostics.
func suggestAtomicType(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64, types.Int:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64, types.Uint, types.Uintptr:
		return "Uint64"
	case types.Bool:
		return "Bool"
	default:
		return "Value"
	}
}
