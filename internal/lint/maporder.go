package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` over a map whose body feeds order-sensitive
// sinks — appending to a slice, writing to an encoder or writer, building
// up a string — without the sorted-keys idiom. Map iteration order is
// randomized per run, so any such loop is a direct path from scheduler
// entropy to canonical bytes: exactly the bug class the content-addressed
// cache, the memo keys and the fuzz baseline cannot survive.
//
// The approved idiom is collect-then-sort: append the keys (or rows) to a
// slice inside the loop and sort that slice later in the same function.
// Loops that only aggregate (sums, counters, map-to-map writes, deletes)
// are order-insensitive and never flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops that append, encode or print without sorting the result " +
		"(map order is randomized; serialized output must not depend on it)",
}

func init() { MapOrder.Run = runMapOrder }

// writerSinks are method/function names that serialize directly.
var writerSinks = map[string]bool{
	"Encode": true, "Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true, "Sprintf": false, // Sprintf alone doesn't emit
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapLoops(pass, fd.Body)
		}
	}
	return nil
}

func checkMapLoops(pass *Pass, fn *ast.BlockStmt) {
	ast.Inspect(fn, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		direct, appendTargets := mapLoopSinks(pass, rs.Body)
		if direct {
			pass.Reportf(rs.Pos(), "range over map feeds order-sensitive output (encoder, printer or string building); map order is randomized — collect keys, sort, then emit")
			return true
		}
		for _, target := range appendTargets {
			if !sortedLater(pass, fn, rs, target) {
				pass.Reportf(rs.Pos(), "range over map appends to %q without sorting it afterwards; map order is randomized — sort the slice (or the keys) before it is consumed", target.Name())
			}
		}
		return true
	})
}

// mapLoopSinks scans a range body for order-sensitive sinks. It returns
// whether the body serializes directly (encoder/printer/string building)
// and the set of outer-scope slice variables it appends to.
func mapLoopSinks(pass *Pass, body *ast.BlockStmt) (direct bool, appendTargets []*types.Var) {
	seen := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" && len(n.Args) > 0 {
					if v := rootVar(pass, n.Args[0]); v != nil && !seen[v] {
						seen[v] = true
						appendTargets = append(appendTargets, v)
					}
				}
			case *ast.SelectorExpr:
				if emit, known := writerSinks[fun.Sel.Name]; known && emit {
					direct = true
				}
			}
		case *ast.AssignStmt:
			// s += expr on a string builds serialized output in loop order.
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if t, ok := pass.TypesInfo.Types[n.Lhs[0]]; ok {
					if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						direct = true
					}
				}
			}
		}
		return true
	})
	return direct, appendTargets
}

// sortedLater reports whether target is passed to a sort (or handed to a
// sorting helper) somewhere after the range loop in the same function.
func sortedLater(pass *Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, target *types.Var) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			sorted := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if pass.TypesInfo.Uses[id] == target {
						sorted = true
					}
				}
				return !sorted
			})
			if sorted {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSortCall recognizes sort.* and slices.Sort* calls.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	return false
}

// rootVar resolves the base identifier of an expression (keys,
// s.rows, out[i]) to its variable object, or nil.
func rootVar(pass *Pass, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			v, _ := pass.TypesInfo.Uses[x].(*types.Var)
			if v == nil {
				v, _ = pass.TypesInfo.Defs[x].(*types.Var)
			}
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
