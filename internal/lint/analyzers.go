package lint

// All returns the production cfvet analyzer suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DetSource,
		MapOrder,
		HashField,
		MsrBracket,
		AtomicMix,
		BoundaryImport,
	}
}
