package lint

import (
	"go/ast"
	"go/types"
)

// forbiddenFunc names one function whose call sites detsource rejects
// inside the boundary, with the replacement to suggest.
type forbiddenFunc struct{ hint string }

// detsourceForbidden maps "package path"."func" to the suggested fix.
// These are the nondeterminism sources that have actually bitten (or
// nearly bitten) this codebase: wall-clock reads, the globally seeded
// math/rand source, OS entropy, and host topology.
var detsourceForbidden = map[string]map[string]forbiddenFunc{
	"time": {
		"Now":       {hint: "derive timing from simulated quanta (machine.Now)"},
		"Since":     {hint: "derive durations from simulated quanta"},
		"Until":     {hint: "derive durations from simulated quanta"},
		"After":     {hint: "simulated schedules must not wait on the wall clock"},
		"Tick":      {hint: "simulated schedules must not wait on the wall clock"},
		"NewTimer":  {hint: "simulated schedules must not wait on the wall clock"},
		"NewTicker": {hint: "simulated schedules must not wait on the wall clock"},
	},
	"math/rand": {
		// Package-level draws share one process-global, possibly
		// time-seeded source; only explicitly seeded rand.New(
		// rand.NewSource(seed)) instances are deterministic per run.
		"Int": {}, "Intn": {}, "Int31": {}, "Int31n": {}, "Int63": {}, "Int63n": {},
		"Uint32": {}, "Uint64": {}, "Float32": {}, "Float64": {}, "NormFloat64": {},
		"ExpFloat64": {}, "Perm": {}, "Shuffle": {}, "Seed": {}, "Read": {},
	},
	"math/rand/v2": {
		"Int": {}, "IntN": {}, "Int32": {}, "Int32N": {}, "Int64": {}, "Int64N": {},
		"Uint32": {}, "Uint32N": {}, "Uint64": {}, "Uint64N": {}, "Uint": {}, "UintN": {},
		"Float32": {}, "Float64": {}, "NormFloat64": {}, "ExpFloat64": {}, "Perm": {}, "Shuffle": {}, "N": {},
	},
	"os": {
		"Getpid":   {hint: "process identity is host state; thread the seed instead"},
		"Getenv":   {hint: "environment is host state; thread configuration explicitly"},
		"Hostname": {hint: "host identity must not reach simulated state"},
	},
	"runtime": {
		"NumCPU":     {hint: "host topology must not shape simulated work (use Config.Cores / SimWorkers)"},
		"GOMAXPROCS": {hint: "host topology must not shape simulated work"},
	},
}

// mathRandDeterministic lists the math/rand package-level functions that
// are fine: constructors for explicitly seeded sources.
var mathRandDeterministic = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// NewDetSource returns the detsource analyzer restricted to the given
// boundary package paths. Fixtures construct it with fixture paths; the
// exported DetSource uses the real DeterminismBoundary.
func NewDetSource(boundary []string) *Analyzer {
	a := &Analyzer{
		Name: "detsource",
		Doc: "forbid wall-clock, entropy and host-state reads inside determinism-boundary packages " +
			"(time.Now/Since, global math/rand, crypto/rand, os.Getpid/Getenv, runtime.NumCPU, ...)",
	}
	a.Run = func(pass *Pass) error {
		if !inBoundary(boundary, pass.Path) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkgPath, name := resolvePkgFunc(pass, sel)
				if pkgPath == "" {
					return true
				}
				// Any use of crypto/rand (rand.Read, rand.Reader, rand.Int)
				// is OS entropy by definition.
				if pkgPath == "crypto/rand" {
					pass.Reportf(sel.Pos(), "crypto/rand.%s reads OS entropy inside the determinism boundary; derive randomness from the run seed", name)
					return true
				}
				funcs, ok := detsourceForbidden[pkgPath]
				if !ok {
					return true
				}
				if pkgPath == "math/rand" || pkgPath == "math/rand/v2" {
					if mathRandDeterministic[name] {
						return true
					}
					// Methods on a seeded *rand.Rand resolve to the rand
					// package too, but through a selection (r.Intn), not a
					// package qualifier — only flag package-qualified uses.
					if !isPkgQualifier(pass, sel.X) {
						return true
					}
					if _, forbidden := funcs[name]; !forbidden {
						return true
					}
					pass.Reportf(sel.Pos(), "global math/rand draw %s.%s inside the determinism boundary; use a per-run rand.New(rand.NewSource(seed))", pkgBase(pkgPath), name)
					return true
				}
				ff, forbidden := funcs[name]
				if !forbidden {
					return true
				}
				msg := pkgPath + "." + name + " inside the determinism boundary"
				if ff.hint != "" {
					msg += "; " + ff.hint
				}
				pass.Reportf(sel.Pos(), "%s", msg)
				return true
			})
		}
		return nil
	}
	return a
}

// DetSource is the production detsource analyzer.
var DetSource = NewDetSource(DeterminismBoundary)

// resolvePkgFunc resolves a selector to (package path, name) when its base
// is a package qualifier or when the selected object belongs to a package
// (covers both time.Now and rand.Reader).
func resolvePkgFunc(pass *Pass, sel *ast.SelectorExpr) (string, string) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", ""
	}
	// Only package-level objects: methods (e.g. (*rand.Rand).Intn) have a
	// receiver and are resolved through Selections instead.
	if _, isSelection := pass.TypesInfo.Selections[sel]; isSelection {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

// isPkgQualifier reports whether e is a bare package name.
func isPkgQualifier(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName)
	return isPkg
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
