// Fixture: maporder — range-over-map loops feeding order-sensitive
// sinks, with and without the collect-then-sort idiom.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to "keys" without sorting`
		keys = append(keys, k)
	}
	return keys
}

// sortedKeys is the approved idiom: collect, sort, consume.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortSliceIdiom covers sort.Slice with the slice referenced inside the
// comparator.
func sortSliceIdiom(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func directEmit(m map[string]int, sb *strings.Builder) {
	for k, v := range m { // want `feeds order-sensitive output`
		fmt.Fprintf(sb, "%s=%d\n", k, v)
	}
}

func stringBuild(m map[string]int) string {
	out := ""
	for k := range m { // want `feeds order-sensitive output`
		out += k
	}
	return out
}

// aggregate is order-insensitive: sums, counters and map-to-map writes
// are never flagged.
func aggregate(m map[string]int, seen map[string]bool) int {
	total := 0
	for k, v := range m {
		total += v
		seen[k] = true
	}
	return total
}

// suppressed exercises the //cfvet:allow path for maporder.
func suppressed(m map[string]int) []string {
	var keys []string
	//cfvet:allow(maporder) fixture: consumer sorts the keys itself
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
