// Fixture: boundaryimport — loaded under repro/internal/machine, whose
// timeline import is an approved hook point (the flight recorder samples
// only simulated state at quiescent cuts). obs is never approved inside
// the boundary: spans and metrics carry wall-clock timestamps.
package fixture

import (
	_ "repro/internal/obs" // want `imports observability package repro/internal/obs`
	_ "repro/internal/timeline"
)
