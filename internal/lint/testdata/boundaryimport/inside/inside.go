// Fixture: boundaryimport — loaded under repro/internal/stats, a
// determinism-boundary package with NO approved observability hook
// points. Both imports are findings.
package fixture

import (
	_ "repro/internal/obs"      // want `imports observability package repro/internal/obs`
	_ "repro/internal/timeline" // want `imports observability package repro/internal/timeline`
)
