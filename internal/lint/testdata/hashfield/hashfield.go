// Fixture: hashfield — exported fields of a hashed spec type must be
// referenced in its canonical-form functions (here: Normalized and
// Build), through selectors or keyed composite literals.
package fixture

type Spec struct {
	Name    string
	Count   int
	Skipped string // want `exported field Spec\.Skipped is not referenced in Normalized/Build`

	// Allowed is consciously left out, with the audit trail to prove it.
	Allowed string //cfvet:allow(hashfield) fixture: documentation-only field, hashed verbatim

	hidden int // unexported fields are never part of the contract
}

// Normalized covers Name via a selector.
func (s Spec) Normalized() Spec {
	if s.Name == "" {
		s.Name = "default"
	}
	return s
}

// Build covers Count via a keyed composite literal.
func Build() Spec {
	return Spec{Count: 3}
}

func use() int {
	var s Spec
	return s.hidden
}
