// Fixture: the same calls OUTSIDE the determinism boundary (loaded under
// repro/internal/orchestrator) are not detsource findings — wall-clock
// retry pacing and host state are legitimate there.
package fixture

import (
	"os"
	"time"
)

func retryDelay(t0 time.Time) time.Duration {
	return time.Since(t0)
}

func now() time.Time { return time.Now() }

func pid() int { return os.Getpid() }
