// Fixture: detsource inside the determinism boundary (loaded under the
// import path repro/internal/machine).
package fixture

import (
	crand "crypto/rand"
	"math/rand"
	"os"
	"runtime"
	"time"
)

func wallClock() time.Duration {
	t0 := time.Now()      // want `time\.Now inside the determinism boundary`
	return time.Since(t0) // want `time\.Since inside the determinism boundary`
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand draw rand\.Intn`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand draw rand\.Shuffle`
}

// seeded is the approved idiom: an explicitly seeded per-run source.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func entropy(buf []byte) {
	crand.Read(buf) // want `crypto/rand\.Read reads OS entropy`
}

func hostPid() int {
	return os.Getpid() // want `os\.Getpid inside the determinism boundary`
}

func hostTopology() int {
	return runtime.NumCPU() // want `runtime\.NumCPU inside the determinism boundary`
}

// suppressedClock exercises the //cfvet:allow path: a reasoned
// suppression swallows the diagnostic.
func suppressedClock() time.Time {
	return time.Now() //cfvet:allow(detsource) fixture: profiling-style wall clock that never feeds simulated state
}

// badSuppression has no reason, so the allow is itself a finding and the
// underlying diagnostic is NOT suppressed.
func badSuppression() time.Time {
	return time.Now() //cfvet:allow(detsource)
	// want-above `has no reason` `time\.Now inside the determinism boundary`
}
