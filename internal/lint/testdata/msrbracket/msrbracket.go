// Fixture: msrbracket — every Attach returning (*Attachment, error) must
// Save MSR state and route the Attachment's detach through Restore. The
// types mirror the real governor package's shape.
package fixture

import "errors"

type Device struct{}

func (d *Device) Save()          {}
func (d *Device) Restore() error { return nil }

type Machine struct{ dev *Device }

func (m *Machine) Device() *Device { return m.dev }

type Attachment struct{ detach func() error }

func newAttachment(daemon any, detach func() error) *Attachment {
	_ = daemon
	return &Attachment{detach: detach}
}

// goodGovernor: the canonical bracket — Save, then detach = method value.
type goodGovernor struct{}

func (goodGovernor) Attach(m *Machine) (*Attachment, error) {
	dev := m.Device()
	dev.Save()
	return newAttachment(nil, dev.Restore), nil
}

// closureGovernor: detach closure that joins a strategy teardown error
// with the Restore, like the daemon-backed governors.
type closureGovernor struct{}

func (closureGovernor) Attach(m *Machine) (*Attachment, error) {
	dev := m.Device()
	dev.Save()
	stop := func() error { return nil }
	return newAttachment(nil, func() error {
		return errors.Join(stop(), dev.Restore())
	}), nil
}

type noSaveGovernor struct{}

func (noSaveGovernor) Attach(m *Machine) (*Attachment, error) { // want `never calls Save`
	dev := m.Device()
	return newAttachment(nil, dev.Restore), nil
}

type noRestoreGovernor struct{}

func (noRestoreGovernor) Attach(m *Machine) (*Attachment, error) {
	dev := m.Device()
	dev.Save()
	return newAttachment(nil, func() error { return nil }), nil // want `does not reference Restore`
}

type rawGovernor struct{}

func (rawGovernor) Attach(m *Machine) (*Attachment, error) { // want `does not construct its result through newAttachment`
	m.Device().Save()
	return &Attachment{}, nil
}

// helperAttach is not a governor Attach (wrong result type) and is
// ignored.
func helperAttach() (int, error) { return 0, nil }

func Attach(m *Machine) (*Attachment, error) { // want `never calls Save`
	return newAttachment(nil, m.Device().Restore), nil
}
