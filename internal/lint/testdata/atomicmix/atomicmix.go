// Fixture: atomicmix — the PR 8 flight-trace race shape. A span's
// duration field was written plainly by the finishing goroutine
// ("it happens before publication") while exporters loaded it atomically;
// the assumed happens-before edge did not exist on the trace-store path,
// and only -race caught it.
package fixture

import "sync/atomic"

type span struct {
	startNs int64
	durNs   int64
}

func (s *span) finish(nowNs int64) {
	s.durNs = nowNs - s.startNs // want `plain access to field durNs`
}

func (s *span) DurNs() int64 {
	return atomic.LoadInt64(&s.durNs)
}

// counter is all-atomic: never flagged.
type counter struct{ n uint64 }

func (c *counter) inc() uint64 { return atomic.AddUint64(&c.n, 1) }
func (c *counter) get() uint64 { return atomic.LoadUint64(&c.n) }

// plainOnly is all-plain: never flagged.
type plainOnly struct{ v int }

func (p *plainOnly) bump() { p.v++ }
func (p *plainOnly) get() int {
	return p.v
}

// gauge exercises the suppression path: a pre-publication write whose
// happens-before edge is real and stated.
type gauge struct{ v int64 }

func newGauge(initial int64) *gauge {
	g := &gauge{}
	g.v = initial //cfvet:allow(atomicmix) fixture: write precedes publication; the constructor return is the happens-before edge
	return g
}

func (g *gauge) load() int64 { return atomic.LoadInt64(&g.v) }
