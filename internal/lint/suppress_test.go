package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseAllows(t *testing.T, src string) ([]*Allow, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return collectAllows(fset, []*ast.File{f})
}

func TestCollectAllows(t *testing.T) {
	allows, bad := parseAllows(t, `package p

//cfvet:allow(detsource) profiling wall clock
var a int

//cfvet:allow(detsource,maporder) two checks, one reason
var b int
`)
	if len(bad) != 0 {
		t.Fatalf("unexpected bad directives: %v", bad)
	}
	if len(allows) != 2 {
		t.Fatalf("got %d allows, want 2", len(allows))
	}
	if got := allows[0].Reason; got != "profiling wall clock" {
		t.Errorf("reason = %q", got)
	}
	if !allows[1].Covers("maporder") || !allows[1].Covers("detsource") || allows[1].Covers("hashfield") {
		t.Errorf("multi-check allow coverage wrong: %v", allows[1].Checks)
	}
}

func TestCollectAllowsRejectsMalformed(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"package p\n\n//cfvet:allow(detsource)\nvar a int\n", "has no reason"},
		{"package p\n\n//cfvet:allow() reason here\nvar a int\n", "names no checks"},
		{"package p\n\n//cfvet:alow(detsource) typo\nvar a int\n", "malformed cfvet directive"},
	}
	for _, c := range cases {
		allows, bad := parseAllows(t, c.src)
		if len(allows) != 0 {
			t.Errorf("%q: malformed directive registered as allow", c.src)
		}
		if len(bad) != 1 || !strings.Contains(bad[0].Message, c.want) {
			t.Errorf("%q: diagnostics = %v, want one containing %q", c.src, bad, c.want)
		}
	}
}

func TestSuppressedMatchesSameAndPreviousLine(t *testing.T) {
	mk := func(line int) Diagnostic {
		return Diagnostic{Analyzer: "detsource", Pos: token.Position{Filename: "f.go", Line: line}}
	}
	allow := &Allow{Pos: token.Position{Filename: "f.go", Line: 10}, Checks: []string{"detsource"}}

	if !suppressed(mk(10), []*Allow{allow}) {
		t.Error("same-line diagnostic not suppressed")
	}
	if !suppressed(mk(11), []*Allow{allow}) {
		t.Error("next-line diagnostic not suppressed (own-line comment placement)")
	}
	if suppressed(mk(12), []*Allow{allow}) {
		t.Error("distant diagnostic wrongly suppressed")
	}
	if suppressed(Diagnostic{Analyzer: "maporder", Pos: token.Position{Filename: "f.go", Line: 10}}, []*Allow{allow}) {
		t.Error("other-check diagnostic wrongly suppressed")
	}
	other := &Allow{Pos: token.Position{Filename: "g.go", Line: 10}, Checks: []string{"detsource"}}
	if suppressed(mk(10), []*Allow{other}) {
		t.Error("other-file diagnostic wrongly suppressed")
	}
	if !allow.Used {
		t.Error("allow not marked used after suppressing")
	}
}
