// Package lint is cfvet's analysis engine: a small, dependency-free
// reimplementation of the golang.org/x/tools/go/analysis surface (Analyzer,
// Pass, Reportf) plus the suppression-comment contract that makes the
// determinism boundary auditable.
//
// Every cache tier in this system — the content-addressed LRU, the disk
// store, the memo prefix cache, the fuzz baseline, the flight recorder —
// is sound only because simulation output is a bit-deterministic function
// of (RunSpec, seed). The analyzers in this package turn that reviewer-head
// contract into machine-checked rules: no wall-clock or entropy inside the
// boundary (detsource), no map-iteration order leaking into serialized
// output (maporder), no struct field silently missing from canonical
// encoding (hashfield), no governor Attach without the MSR Save/Restore
// bracket (msrbracket), no mixed atomic/plain field access (atomicmix),
// and no unapproved observability imports inside the boundary
// (boundaryimport).
//
// The framework mirrors go/analysis deliberately — if golang.org/x/tools
// ever lands in the module, each Analyzer ports by renaming the types —
// but it is built exclusively on the standard library (go/parser, go/types,
// and gc export data served by `go list -export`), because the build
// environment has no module proxy.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. It mirrors x/tools' analysis.Analyzer: Run
// inspects a single type-checked package via the Pass and reports
// diagnostics; it must not retain the Pass.
type Analyzer struct {
	// Name identifies the check in diagnostics and in
	// //cfvet:allow(<name>) suppression comments.
	Name string
	// Doc is the one-paragraph description shown by `cfvet -list`.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files, comments included.
	Files []*ast.File
	// Path is the package's import path ("repro/internal/machine").
	// Analyzers that only apply inside the determinism boundary match on
	// it; fixtures override it to stand in for real packages.
	Path string
	// Pkg and TypesInfo hold go/types results for the package.
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) report(d Diagnostic) { *p.diags = append(*p.diags, d) }

// Diagnostic is one finding: where, which check, what.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// allowRe matches the suppression comment contract:
//
//	//cfvet:allow(check1,check2) reason text
//
// The reason is mandatory — an allow that does not say why it is safe is
// itself a finding (the audit trail is the point), reported under the
// pseudo-check "cfvet".
var allowRe = regexp.MustCompile(`^//cfvet:allow\(([^)]*)\)(.*)$`)

// Allow is one parsed //cfvet:allow comment.
type Allow struct {
	Pos    token.Position
	Checks []string
	Reason string
	// Used records whether the allow suppressed at least one diagnostic
	// in this run; `cfvet -allows` flags stale ones.
	Used bool
}

// Covers reports whether the allow names the given check.
func (a *Allow) Covers(check string) bool {
	for _, c := range a.Checks {
		if c == check || c == "all" {
			return true
		}
	}
	return false
}

// collectAllows parses every //cfvet:allow comment in the package.
// Malformed allows (empty check list or missing reason) are returned as
// diagnostics so they fail the build rather than silently suppressing
// nothing — or worse, appearing to suppress something.
func collectAllows(fset *token.FileSet, files []*ast.File) ([]*Allow, []Diagnostic) {
	var allows []*Allow
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(c.Text, "//cfvet:") {
						bad = append(bad, Diagnostic{
							Analyzer: "cfvet",
							Pos:      fset.Position(c.Pos()),
							Message:  fmt.Sprintf("malformed cfvet directive %q (want //cfvet:allow(check) reason)", c.Text),
						})
					}
					continue
				}
				var checks []string
				for _, part := range strings.Split(m[1], ",") {
					if part = strings.TrimSpace(part); part != "" {
						checks = append(checks, part)
					}
				}
				reason := strings.TrimSpace(m[2])
				pos := fset.Position(c.Pos())
				switch {
				case len(checks) == 0:
					bad = append(bad, Diagnostic{Analyzer: "cfvet", Pos: pos,
						Message: "cfvet:allow names no checks"})
				case reason == "":
					bad = append(bad, Diagnostic{Analyzer: "cfvet", Pos: pos,
						Message: fmt.Sprintf("cfvet:allow(%s) has no reason — suppressions must say why they are safe", m[1])})
				default:
					allows = append(allows, &Allow{Pos: pos, Checks: checks, Reason: reason})
				}
			}
		}
	}
	return allows, bad
}

// suppressed reports whether d is covered by an allow on the same line or
// on the line immediately above it (the two idiomatic placements: trailing
// comment and own-line comment).
func suppressed(d Diagnostic, allows []*Allow) bool {
	for _, a := range allows {
		if a.Pos.Filename != d.Pos.Filename || !a.Covers(d.Analyzer) {
			continue
		}
		if a.Pos.Line == d.Pos.Line || a.Pos.Line == d.Pos.Line-1 {
			a.Used = true
			return true
		}
	}
	return false
}

// Result is the outcome of running analyzers over one package.
type Result struct {
	Path string
	// Diagnostics are the unsuppressed findings, ordered by position.
	Diagnostics []Diagnostic
	// Allows are every suppression comment in the package, used or not.
	Allows []*Allow
}

// RunPackage applies the analyzers to one loaded package, filtering
// suppressed diagnostics and reporting malformed directives.
func RunPackage(pkg *Package, analyzers []*Analyzer) (Result, error) {
	allows, bad := collectAllows(pkg.Fset, pkg.Files)
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Path:      pkg.Path,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &raw,
		}
		if err := a.Run(pass); err != nil {
			return Result{}, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	kept := append([]Diagnostic(nil), bad...)
	for _, d := range raw {
		if !suppressed(d, allows) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return Result{Path: pkg.Path, Diagnostics: kept, Allows: allows}, nil
}
