package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HashFieldRule names one struct whose exported fields must all be
// referenced in its canonical-form functions. The bug class: a new field
// is added to a hashed spec type, json.Marshal dutifully includes it in
// the canonical bytes, but nobody taught Normalized (defaulting,
// name-folding, zeroing of ignored fields) or the execution mapping about
// it — so two spellings of the same run stop sharing a cache entry, or a
// field differentiates the hash while the harness silently ignores it.
// Requiring every exported field to appear in the named functions forces
// that decision to be made (or visibly suppressed) in review.
type HashFieldRule struct {
	// PkgPath is the package the rule applies to.
	PkgPath string
	// TypeName is the struct type.
	TypeName string
	// Funcs are function names in the package (methods of any receiver or
	// package-level functions) that together must reference every
	// exported field of TypeName.
	Funcs []string
}

// DefaultHashFieldRules pins the three hashed spec types: the service
// RunSpec (canonical bytes = content hash = cache key) and the scenario
// definition types embedded in it.
var DefaultHashFieldRules = []HashFieldRule{
	{PkgPath: "repro/internal/service", TypeName: "RunSpec", Funcs: []string{"Normalized", "Options"}},
	{PkgPath: "repro/internal/scenario", TypeName: "Definition", Funcs: []string{"Normalized", "Validate"}},
	{PkgPath: "repro/internal/scenario", TypeName: "PhaseDef", Funcs: []string{"Normalized", "Validate"}},
}

// NewHashField returns the hashfield analyzer for the given rules.
func NewHashField(rules []HashFieldRule) *Analyzer {
	a := &Analyzer{
		Name: "hashfield",
		Doc: "every exported field of a hashed spec struct must be referenced in its canonical-form " +
			"functions (Normalized/Validate/Options) so no field is silently excluded from the contract",
	}
	a.Run = func(pass *Pass) error {
		for _, rule := range rules {
			if pass.Path != rule.PkgPath {
				continue
			}
			checkHashFields(pass, rule)
		}
		return nil
	}
	return a
}

// HashField is the production hashfield analyzer.
var HashField = NewHashField(DefaultHashFieldRules)

func checkHashFields(pass *Pass, rule HashFieldRule) {
	obj := pass.Pkg.Scope().Lookup(rule.TypeName)
	if obj == nil {
		pass.Reportf(pass.Files[0].Pos(), "hashfield rule names unknown type %s.%s", rule.PkgPath, rule.TypeName)
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}

	covered := map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !nameIn(fd.Name.Name, rule.Funcs) {
				continue
			}
			markFieldRefs(pass, fd.Body, named, covered)
		}
	}

	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if !field.Exported() || covered[field.Name()] {
			continue
		}
		pass.Reportf(field.Pos(), "exported field %s.%s is not referenced in %s — decide its canonical handling (default it, fold it, zero it) or suppress with a reason",
			rule.TypeName, field.Name(), strings.Join(rule.Funcs, "/"))
	}
}

// markFieldRefs records every field of typ referenced in body, through
// selectors (s.Field — including via pointers and local copies) and keyed
// composite literals (Type{Field: v}).
func markFieldRefs(pass *Pass, body ast.Node, typ *types.Named, covered map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			selInfo, ok := pass.TypesInfo.Selections[n]
			if !ok || selInfo.Kind() != types.FieldVal {
				return true
			}
			if recvNamed(selInfo.Recv()) == typ.Obj() {
				covered[n.Sel.Name] = true
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok {
				return true
			}
			nt, ok := derefType(tv.Type).(*types.Named)
			if !ok || nt.Obj() != typ.Obj() {
				return true
			}
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						covered[id.Name] = true
					}
				}
			}
		}
		return true
	})
}

// recvNamed unwraps a selection receiver (possibly a pointer or slice
// element) to its named type object.
func recvNamed(t types.Type) *types.TypeName {
	if nt, ok := derefType(t).(*types.Named); ok {
		return nt.Obj()
	}
	return nil
}

func derefType(t types.Type) types.Type {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		return t
	}
}

func nameIn(name string, set []string) bool {
	for _, s := range set {
		if s == name {
			return true
		}
	}
	return false
}
