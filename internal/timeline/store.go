package timeline

import (
	"strings"
	"sync"
)

// Store keeps rendered timeline documents for recent runs, keyed by spec
// hash, with a bounded capacity and oldest-first eviction — the timeline
// counterpart of obs.TraceStore. Methods are nil-safe so a service with
// timelines disabled threads a nil store through unchanged.
type Store struct {
	mu      sync.Mutex
	cap     int
	ring    []string // insertion order, oldest first
	byID    map[string][]byte
	evicted uint64
}

// NewStore returns a store retaining at most capacity timelines
// (minimum 1).
func NewStore(capacity int) *Store {
	if capacity < 1 {
		capacity = 1
	}
	return &Store{cap: capacity, byID: make(map[string][]byte)}
}

// Save renders the recorder to JSON and retains it under id, evicting
// the oldest entry past capacity. Saving an existing id refreshes its
// bytes without consuming capacity.
func (s *Store) Save(id string, rec *Recorder) error {
	if s == nil || id == "" {
		return nil
	}
	data, err := rec.JSON()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[id]; !ok {
		s.ring = append(s.ring, id)
		if len(s.ring) > s.cap {
			old := s.ring[0]
			s.ring = s.ring[1:]
			delete(s.byID, old)
			s.evicted++
		}
	}
	s.byID[id] = data
	return nil
}

// Get returns the stored JSON for id, trying an exact match first and
// then a unique-enough prefix match (newest first), like trace lookup.
func (s *Store) Get(id string) ([]byte, bool) {
	if s == nil || id == "" {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if data, ok := s.byID[id]; ok {
		return data, true
	}
	for i := len(s.ring) - 1; i >= 0; i-- {
		if strings.HasPrefix(s.ring[i], id) {
			return s.byID[s.ring[i]], true
		}
	}
	return nil, false
}

// IDs returns the retained ids, oldest first.
func (s *Store) IDs() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.ring))
	copy(out, s.ring)
	return out
}

// Len reports how many timelines are retained.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}

// Evicted reports how many timelines capacity pressure has dropped.
func (s *Store) Evicted() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Cap reports the retention capacity.
func (s *Store) Cap() int {
	if s == nil {
		return 0
	}
	return s.cap
}
