// Package timeline is the deterministic flight recorder: it samples the
// simulated machine at region-boundary granularity (per-core frequency,
// uncore frequency, instructions retired, RAPL energy, IPC, miss-demand
// EWMA) and records governor decision events (DVFS/UFS transitions, TIPI
// slab-table updates, exploration-vs-exploitation, memo prefix restores)
// into bounded ring buffers.
//
// A timeline is a pure function of simulation state: every sample and
// event derives from simulated time and simulated counters, never wall
// clock, so two runs of one spec produce byte-identical timelines and a
// work-sharing source records the same timeline under SimWorkers 1 and N.
// Like spans and metrics (internal/obs), timelines live strictly outside
// the determinism/cache boundary: they are excluded from canonical report
// bytes, spec hashes and memo prefix keys, and a nil *Recorder makes
// every call a no-op so the disabled path allocates nothing.
package timeline

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Default ring capacities. At the paper's Tinv (20 ms) an 80 s run ticks
// its daemon 4000 times and crosses a few hundred region boundaries, so
// the defaults hold a full paper-scale run without truncation.
const (
	DefaultMaxSamples = 4096
	DefaultMaxEvents  = 16384
)

// Event kinds. Decision events come from governor code (the daemon, the
// ondemand sampler, the fixed-setting strategies at attach time); the
// memo-restore marker comes from the prefix-resume path.
const (
	// KindAttach marks a governor taking control of the machine.
	KindAttach = "attach"
	// KindDVFS is a core-frequency actuation (all cores for the daemon,
	// Core-tagged for per-core strategies). From/To are ratios.
	KindDVFS = "dvfs"
	// KindUFS is an uncore-frequency actuation. From/To are ratios.
	KindUFS = "ufs"
	// KindDDCM is a duty-cycle modulation write; To is the level.
	KindDDCM = "ddcm"
	// KindSlabInsert is a new TIPI slab entering the daemon's table.
	KindSlabInsert = "slab-insert"
	// KindCFOpt marks a slab's core-frequency optimum resolving; To is
	// the chosen ratio.
	KindCFOpt = "cf-opt"
	// KindUFOpt marks a slab's uncore-frequency optimum resolving; To is
	// the chosen ratio.
	KindUFOpt = "uf-opt"
	// KindExplore is one daemon interval spent with the current slab's
	// optima unresolved — the paper's exploration cost, one event per
	// exploring Tinv sample.
	KindExplore = "explore"
	// KindMemoRestore marks a run resuming from a memoized prefix
	// snapshot; From is the number of regions skipped.
	KindMemoRestore = "memo-restore"
)

// Sample is one machine observation at a region-boundary quiescent cut.
// All fields are simulated quantities; counters are cumulative since
// boot, IPC is the aggregate instructions-per-cycle over the interval
// since the previous sample in the same lane.
type Sample struct {
	T          float64 `json:"t"`        // simulated seconds
	Boundary   int     `json:"boundary"` // completed-region count
	Cores      []int   `json:"cores"`    // per-core frequency ratios
	Uncore     int     `json:"uncore"`   // uncore frequency ratio
	SumCoreGHz float64 `json:"sum_core_ghz"`
	Instr      float64 `json:"instr"`
	IPC        float64 `json:"ipc"`
	EnergyJ    float64 `json:"energy_j"`
	MissLocal  float64 `json:"miss_local"`
	MissRemote float64 `json:"miss_remote"`
	DemandEWMA float64 `json:"demand_ewma"`
}

// Event is one governor (or memo) decision, stamped with simulated time.
// Field meaning depends on Kind; unused numeric fields are zero.
type Event struct {
	T    float64 `json:"t"`
	Kind string  `json:"kind"`
	Core int     `json:"core"`
	From int     `json:"from"`
	To   int     `json:"to"`
	Slab int     `json:"slab"`
	Note string  `json:"note,omitempty"`
}

// Convergence reduces one or more timelines to the paper's
// exploration-cost story: how long until the governor stopped moving
// frequencies, how many intervals it spent exploring, and how much energy
// the run had consumed by the time it went stable.
type Convergence struct {
	// Runs is how many lanes (repetitions) contributed.
	Runs int `json:"runs"`
	// TimeToStableSec is the simulated time of the last
	// frequency-affecting decision (dvfs, ufs, ddcm, explore), averaged
	// across lanes. 0 means the governor never moved after attach.
	TimeToStableSec float64 `json:"time_to_stable_sec"`
	// ExplorationQuanta counts daemon intervals spent with unresolved
	// optima, summed across lanes.
	ExplorationQuanta int `json:"exploration_quanta"`
	// ExplorationEnergyJ is the cumulative energy at the first sample at
	// or after stabilisation, summed across lanes — the joules the run
	// had burned before settling at its chosen operating points.
	ExplorationEnergyJ float64 `json:"exploration_energy_j"`
}

// Add folds another convergence summary in, averaging TimeToStableSec by
// run count and summing the totals.
func (c *Convergence) Add(o Convergence) {
	if o.Runs == 0 {
		return
	}
	if c.Runs+o.Runs > 0 {
		c.TimeToStableSec = (c.TimeToStableSec*float64(c.Runs) + o.TimeToStableSec*float64(o.Runs)) / float64(c.Runs+o.Runs)
	}
	c.Runs += o.Runs
	c.ExplorationQuanta += o.ExplorationQuanta
	c.ExplorationEnergyJ += o.ExplorationEnergyJ
}

// Recorder is one timeline lane plus any child lanes (one per
// repetition, mirroring trace span lanes). Create the root with New,
// split per-repetition lanes with Lane, record with AddSample/AddEvent,
// export with WriteJSON/WriteCSV. All methods are nil-safe so the
// recording and non-recording code paths are the same path. Recording
// methods lock, so concurrent repetitions may share a root — though each
// lane is normally owned by one simulation goroutine.
type Recorder struct {
	id         string
	name       string
	order      int
	maxSamples int
	maxEvents  int

	mu       sync.Mutex
	samples  []Sample // ring storage, oldest at sStart
	sStart   int
	sDropped uint64
	events   []Event
	eStart   int
	eDropped uint64
	lanes    map[string]*Recorder

	// Latest-sample memory for IPC deltas, independent of truncation.
	last     Sample
	haveLast bool

	// Convergence accounting, independent of ring truncation.
	exploreQuanta  int
	lastUnstableT  float64
	energyAtStable float64
	energyCaptured bool
	active         bool // any sample or event recorded
}

// New returns a root recorder with default ring capacities. id is the
// run's identity (the spec content hash when known); it names the
// exported timeline the way a trace ID names a trace.
func New(id string) *Recorder { return NewWithCaps(id, 0, 0) }

// NewWithCaps is New with explicit ring capacities (0 = default,
// minimum 1 each).
func NewWithCaps(id string, maxSamples, maxEvents int) *Recorder {
	if maxSamples <= 0 {
		maxSamples = DefaultMaxSamples
	}
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Recorder{id: id, maxSamples: maxSamples, maxEvents: maxEvents}
}

// SetID names the timeline once the spec hash is known. Nil-safe.
func (r *Recorder) SetID(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.id = id
	r.mu.Unlock()
}

// Lane returns the named child lane, creating it on first use. order
// fixes the lane's position in exports (repetition index), so export
// bytes are deterministic however concurrently lanes were created.
// Nil-safe: a nil recorder returns nil, so disabled runs thread through.
func (r *Recorder) Lane(name string, order int) *Recorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lanes == nil {
		r.lanes = make(map[string]*Recorder)
	}
	if ln, ok := r.lanes[name]; ok {
		return ln
	}
	ln := &Recorder{name: name, order: order, maxSamples: r.maxSamples, maxEvents: r.maxEvents}
	r.lanes[name] = ln
	return ln
}

// AddSample appends one machine observation. When the sample's IPC is
// unset it is derived from the delta against the lane's previous sample.
// A full ring drops the oldest sample and counts it. Nil-safe.
func (r *Recorder) AddSample(s Sample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.active = true
	if s.IPC == 0 && r.haveLast && s.T > r.last.T && s.SumCoreGHz > 0 {
		s.IPC = (s.Instr - r.last.Instr) / ((s.T - r.last.T) * s.SumCoreGHz * 1e9)
	}
	r.last, r.haveLast = s, true
	if !r.energyCaptured && s.T >= r.lastUnstableT {
		r.energyAtStable = s.EnergyJ
		r.energyCaptured = true
	}
	if len(r.samples) < r.maxSamples {
		r.samples = append(r.samples, s)
		return
	}
	r.samples[r.sStart] = s
	r.sStart = (r.sStart + 1) % r.maxSamples
	r.sDropped++
}

// AddEvent appends one decision event. Convergence counters update on
// every event even when the ring later truncates it. Nil-safe.
func (r *Recorder) AddEvent(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.active = true
	switch e.Kind {
	case KindExplore:
		r.exploreQuanta++
		r.markUnstable(e.T)
	case KindDVFS, KindUFS, KindDDCM:
		r.markUnstable(e.T)
	}
	if len(r.events) < r.maxEvents {
		r.events = append(r.events, e)
		return
	}
	r.events[r.eStart] = e
	r.eStart = (r.eStart + 1) % r.maxEvents
	r.eDropped++
}

// markUnstable records a frequency-affecting decision; callers hold r.mu.
func (r *Recorder) markUnstable(t float64) {
	if t > r.lastUnstableT {
		r.lastUnstableT = t
	}
	r.energyCaptured = false
}

// Convergence reduces this recorder and its lanes to the per-run
// convergence summary. Nil and empty recorders report zero runs.
func (r *Recorder) Convergence() Convergence {
	var c Convergence
	if r == nil {
		return c
	}
	r.mu.Lock()
	if r.active {
		own := Convergence{
			Runs:              1,
			TimeToStableSec:   r.lastUnstableT,
			ExplorationQuanta: r.exploreQuanta,
		}
		if r.energyCaptured {
			own.ExplorationEnergyJ = r.energyAtStable
		} else if r.haveLast {
			// The run ended before a sample followed the last decision;
			// the final sample's energy is the closest bound.
			own.ExplorationEnergyJ = r.last.EnergyJ
		}
		c.Add(own)
	}
	lanes := r.sortedLanesLocked()
	r.mu.Unlock()
	for _, ln := range lanes {
		c.Add(ln.Convergence())
	}
	return c
}

// LaneExport is one lane of the exported timeline.
type LaneExport struct {
	Lane           string   `json:"lane"`
	DroppedSamples uint64   `json:"dropped_samples"`
	DroppedEvents  uint64   `json:"dropped_events"`
	Samples        []Sample `json:"samples"`
	Events         []Event  `json:"events"`
}

// Export is the versioned timeline document WriteJSON emits.
type Export struct {
	Version     int          `json:"version"`
	ID          string       `json:"id,omitempty"`
	MaxSamples  int          `json:"max_samples"`
	MaxEvents   int          `json:"max_events"`
	Lanes       []LaneExport `json:"lanes"`
	Convergence Convergence  `json:"convergence"`
}

// sortedLanesLocked returns the child lanes ordered by (order, name);
// callers hold r.mu.
func (r *Recorder) sortedLanesLocked() []*Recorder {
	if len(r.lanes) == 0 {
		return nil
	}
	out := make([]*Recorder, 0, len(r.lanes))
	for _, ln := range r.lanes {
		out = append(out, ln)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].order != out[j].order {
			return out[i].order < out[j].order
		}
		return out[i].name < out[j].name
	})
	return out
}

// ringSamples returns the ring's contents oldest-first; callers hold r.mu.
func (r *Recorder) ringSamplesLocked() []Sample {
	out := make([]Sample, 0, len(r.samples))
	for i := 0; i < len(r.samples); i++ {
		out = append(out, r.samples[(r.sStart+i)%len(r.samples)])
	}
	return out
}

func (r *Recorder) ringEventsLocked() []Event {
	out := make([]Event, 0, len(r.events))
	for i := 0; i < len(r.events); i++ {
		out = append(out, r.events[(r.eStart+i)%len(r.events)])
	}
	return out
}

// exportInto flattens this recorder (when active) and its lanes,
// depth-first in deterministic order, into out.
func (r *Recorder) exportInto(prefix string, out *[]LaneExport) {
	r.mu.Lock()
	name := prefix
	if r.name != "" {
		if name != "" {
			name += "/"
		}
		name += r.name
	}
	if r.active {
		*out = append(*out, LaneExport{
			Lane:           name,
			DroppedSamples: r.sDropped,
			DroppedEvents:  r.eDropped,
			Samples:        r.ringSamplesLocked(),
			Events:         r.ringEventsLocked(),
		})
	}
	lanes := r.sortedLanesLocked()
	r.mu.Unlock()
	for _, ln := range lanes {
		ln.exportInto(name, out)
	}
}

// Export returns the structural form: active lanes in deterministic
// (order, name) order plus the convergence summary. A nil recorder
// exports an empty document.
func (r *Recorder) Export() Export {
	ex := Export{Version: 1, Lanes: []LaneExport{}}
	if r == nil {
		return ex
	}
	r.mu.Lock()
	ex.ID = r.id
	ex.MaxSamples = r.maxSamples
	ex.MaxEvents = r.maxEvents
	r.mu.Unlock()
	r.exportInto("", &ex.Lanes)
	ex.Convergence = r.Convergence()
	return ex
}

// JSON renders the export as indented JSON. The encoding is
// deterministic — fixed field order, strconv float formatting — so equal
// timelines render to equal bytes (the property the CI timeline-smoke
// job cmp-checks).
func (r *Recorder) JSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteJSON writes the JSON export to w.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Export())
}

// WriteCSV writes a flat two-record-type CSV: sample rows and event
// rows share a column set, with blanks where a column does not apply.
func (r *Recorder) WriteCSV(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.line("record,lane,t,boundary,kind,core,from,to,slab,uncore,sum_core_ghz,instr,ipc,energy_j,miss_local,miss_remote,demand_ewma,note")
	ex := r.Export()
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, ln := range ex.Lanes {
		for _, s := range ln.Samples {
			bw.line(fmt.Sprintf("sample,%s,%s,%d,,,,,,%d,%s,%s,%s,%s,%s,%s,%s,",
				ln.Lane, f(s.T), s.Boundary, s.Uncore, f(s.SumCoreGHz), f(s.Instr),
				f(s.IPC), f(s.EnergyJ), f(s.MissLocal), f(s.MissRemote), f(s.DemandEWMA)))
		}
		for _, e := range ln.Events {
			bw.line(fmt.Sprintf("event,%s,%s,,%s,%d,%d,%d,%d,,,,,,,,,%s",
				ln.Lane, f(e.T), e.Kind, e.Core, e.From, e.To, e.Slab, e.Note))
		}
	}
	return bw.err
}

// errWriter writes lines until the first error and remembers it.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) line(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s+"\n")
}
