package timeline

import (
	"bytes"
	"strings"
	"testing"
)

// fill records n samples and n events with deterministic content.
func fill(r *Recorder, n int) {
	for i := 0; i < n; i++ {
		r.AddSample(Sample{T: float64(i), Boundary: i, Cores: []int{20, 20}, Uncore: 15, SumCoreGHz: 4, Instr: float64(i) * 1e9, EnergyJ: float64(i) * 2})
		r.AddEvent(Event{T: float64(i), Kind: KindDVFS, From: 12, To: 23})
	}
}

func TestRingTruncation(t *testing.T) {
	r := NewWithCaps("x", 4, 3)
	fill(r, 10)
	ex := r.Export()
	if len(ex.Lanes) != 1 {
		t.Fatalf("lanes = %d, want 1", len(ex.Lanes))
	}
	ln := ex.Lanes[0]
	if len(ln.Samples) != 4 || ln.DroppedSamples != 6 {
		t.Errorf("samples = %d dropped = %d, want 4 / 6", len(ln.Samples), ln.DroppedSamples)
	}
	if len(ln.Events) != 3 || ln.DroppedEvents != 7 {
		t.Errorf("events = %d dropped = %d, want 3 / 7", len(ln.Events), ln.DroppedEvents)
	}
	// Oldest-first export: the ring holds the newest entries.
	if ln.Samples[0].T != 6 || ln.Samples[3].T != 9 {
		t.Errorf("sample window = [%g, %g], want [6, 9]", ln.Samples[0].T, ln.Samples[3].T)
	}
	if ln.Events[0].T != 7 || ln.Events[2].T != 9 {
		t.Errorf("event window = [%g, %g], want [7, 9]", ln.Events[0].T, ln.Events[2].T)
	}
	// Convergence counters survive truncation.
	c := r.Convergence()
	if c.Runs != 1 || c.TimeToStableSec != 9 {
		t.Errorf("convergence = %+v, want Runs 1 TimeToStableSec 9", c)
	}
}

func TestJSONDeterministic(t *testing.T) {
	build := func() *Recorder {
		r := New("abc")
		// Create lanes out of order to prove exports sort by (order, name).
		fill(r.Lane("rep-1", 1), 3)
		fill(r.Lane("rep-0", 0), 3)
		return r
	}
	a, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("equal recorders rendered different bytes:\n%s\nvs\n%s", a, b)
	}
	ex := build().Export()
	if len(ex.Lanes) != 2 || ex.Lanes[0].Lane != "rep-0" || ex.Lanes[1].Lane != "rep-1" {
		t.Fatalf("lane order = %+v, want rep-0 then rep-1", ex.Lanes)
	}
}

func TestIPCDerivation(t *testing.T) {
	r := New("")
	r.AddSample(Sample{T: 1, Instr: 1e9, SumCoreGHz: 2})
	r.AddSample(Sample{T: 2, Instr: 5e9, SumCoreGHz: 2})
	ex := r.Export()
	// (5e9-1e9) instr over 1 s at 2 GHz aggregate = 2 IPC.
	if got := ex.Lanes[0].Samples[1].IPC; got != 2 {
		t.Errorf("IPC = %g, want 2", got)
	}
	if got := ex.Lanes[0].Samples[0].IPC; got != 0 {
		t.Errorf("first sample IPC = %g, want 0 (no predecessor)", got)
	}
}

func TestConvergence(t *testing.T) {
	r := New("")
	r.AddSample(Sample{T: 0, EnergyJ: 0})
	r.AddEvent(Event{T: 1, Kind: KindExplore})
	r.AddEvent(Event{T: 2, Kind: KindDVFS})
	r.AddSample(Sample{T: 3, EnergyJ: 30})
	r.AddSample(Sample{T: 4, EnergyJ: 40})
	c := r.Convergence()
	if c.Runs != 1 || c.TimeToStableSec != 2 || c.ExplorationQuanta != 1 {
		t.Errorf("convergence = %+v, want Runs 1 stable 2 quanta 1", c)
	}
	// Energy at the first sample at/after the last unstable decision.
	if c.ExplorationEnergyJ != 30 {
		t.Errorf("ExplorationEnergyJ = %g, want 30", c.ExplorationEnergyJ)
	}

	// No sample after the last decision: the final sample bounds it.
	r2 := New("")
	r2.AddSample(Sample{T: 0, EnergyJ: 7})
	r2.AddEvent(Event{T: 5, Kind: KindUFS})
	if c := r2.Convergence(); c.ExplorationEnergyJ != 7 {
		t.Errorf("fallback ExplorationEnergyJ = %g, want 7", c.ExplorationEnergyJ)
	}
}

func TestConvergenceAdd(t *testing.T) {
	var c Convergence
	c.Add(Convergence{Runs: 1, TimeToStableSec: 2, ExplorationQuanta: 3, ExplorationEnergyJ: 10})
	c.Add(Convergence{Runs: 3, TimeToStableSec: 6, ExplorationQuanta: 1, ExplorationEnergyJ: 2})
	if c.Runs != 4 || c.ExplorationQuanta != 4 || c.ExplorationEnergyJ != 12 {
		t.Errorf("sums wrong: %+v", c)
	}
	if want := (2.0*1 + 6.0*3) / 4; c.TimeToStableSec != want {
		t.Errorf("TimeToStableSec = %g, want %g (run-weighted mean)", c.TimeToStableSec, want)
	}
	c.Add(Convergence{}) // zero-run summaries are no-ops
	if c.Runs != 4 {
		t.Errorf("zero-run Add changed Runs: %d", c.Runs)
	}
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.AddSample(Sample{T: 1})
	r.AddEvent(Event{T: 1, Kind: KindDVFS})
	r.SetID("x")
	if ln := r.Lane("a", 0); ln != nil {
		t.Error("nil recorder Lane should be nil")
	}
	if c := r.Convergence(); c.Runs != 0 {
		t.Errorf("nil convergence = %+v", c)
	}
	ex := r.Export()
	if len(ex.Lanes) != 0 {
		t.Errorf("nil export lanes = %d", len(ex.Lanes))
	}
}

func TestCSV(t *testing.T) {
	r := New("csv")
	fill(r, 2)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 2 samples + 2 events.
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "record,lane,t,boundary,kind") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "sample,") || !strings.HasPrefix(lines[3], "event,") {
		t.Errorf("row grouping wrong:\n%s", buf.String())
	}
}

func TestStore(t *testing.T) {
	st := NewStore(2)
	for _, id := range []string{"aaa1", "bbb2", "ccc3"} {
		r := New(id)
		fill(r, 1)
		if err := st.Save(id, r); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 2 || st.Evicted() != 1 || st.Cap() != 2 {
		t.Fatalf("len %d evicted %d cap %d, want 2 / 1 / 2", st.Len(), st.Evicted(), st.Cap())
	}
	if _, ok := st.Get("aaa1"); ok {
		t.Error("evicted id still resolvable")
	}
	if _, ok := st.Get("bbb"); !ok {
		t.Error("prefix lookup failed")
	}
	// Refreshing an existing id does not consume capacity.
	r := New("ccc3")
	fill(r, 2)
	if err := st.Save("ccc3", r); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 || st.Evicted() != 1 {
		t.Errorf("refresh consumed capacity: len %d evicted %d", st.Len(), st.Evicted())
	}
	var nilStore *Store
	if err := nilStore.Save("x", r); err != nil {
		t.Errorf("nil store Save: %v", err)
	}
	if nilStore.Len() != 0 || nilStore.Cap() != 0 {
		t.Error("nil store accessors not zero")
	}
}
