package msr

import (
	"fmt"
	"sort"
	"sync"
)

// Handler lets a hardware model back an address with live state. Read is
// invoked with the core index (0 for package-scoped addresses); Write is
// invoked when software stores to the register. Either hook may be nil, in
// which case the plain storage cell is used for that direction.
type Handler struct {
	Read  func(core int) uint64
	Write func(core int, v uint64) error
}

// File is the socket's register file: one bank per core plus one package
// bank, with optional live handlers per address. It is safe for concurrent
// use; the simulator's parallel step driver and the daemon may touch it from
// different goroutines.
type File struct {
	mu       sync.RWMutex
	cores    int
	coreRegs []map[uint32]uint64
	pkgRegs  map[uint32]uint64
	handlers map[uint32]Handler
}

// NewFile creates a register file for a socket with the given core count and
// architectural reset values.
func NewFile(cores int) *File {
	if cores <= 0 {
		panic(fmt.Sprintf("msr: invalid core count %d", cores))
	}
	f := &File{
		cores:    cores,
		coreRegs: make([]map[uint32]uint64, cores),
		pkgRegs:  make(map[uint32]uint64),
		handlers: make(map[uint32]Handler),
	}
	for i := range f.coreRegs {
		f.coreRegs[i] = make(map[uint32]uint64)
	}
	f.pkgRegs[RaplPowerUnit] = DefaultRaplPowerUnitRaw
	return f
}

// Cores returns the number of per-core banks.
func (f *File) Cores() int { return f.cores }

// Install backs addr with a live handler. Installing replaces any previous
// handler for the address.
func (f *File) Install(addr uint32, h Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.handlers[addr] = h
}

func (f *File) checkCore(addr uint32, core int) error {
	switch AddrScope(addr) {
	case ScopeCore:
		if core < 0 || core >= f.cores {
			return fmt.Errorf("msr: core %d out of range for addr %#x", core, addr)
		}
	case ScopePackage:
		if core != 0 {
			return fmt.Errorf("msr: package-scoped addr %#x must be accessed via core 0, got %d", addr, core)
		}
	}
	return nil
}

// Read returns the value of addr on the given core (0 for package scope).
func (f *File) Read(addr uint32, core int) (uint64, error) {
	if err := f.checkCore(addr, core); err != nil {
		return 0, err
	}
	f.mu.RLock()
	h, live := f.handlers[addr]
	f.mu.RUnlock()
	if live && h.Read != nil {
		return h.Read(core), nil
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if AddrScope(addr) == ScopeCore {
		return f.coreRegs[core][addr], nil
	}
	return f.pkgRegs[addr], nil
}

// Write stores v to addr on the given core (0 for package scope).
func (f *File) Write(addr uint32, core int, v uint64) error {
	if err := f.checkCore(addr, core); err != nil {
		return err
	}
	f.mu.RLock()
	h, live := f.handlers[addr]
	f.mu.RUnlock()
	if live && h.Write != nil {
		if err := h.Write(core, v); err != nil {
			return err
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if AddrScope(addr) == ScopeCore {
		f.coreRegs[core][addr] = v
	} else {
		f.pkgRegs[addr] = v
	}
	return nil
}

// Poke stores a raw value without invoking handlers or scope checks beyond
// bounds. Hardware models use it to publish counter snapshots.
func (f *File) Poke(addr uint32, core int, v uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if AddrScope(addr) == ScopeCore && core >= 0 && core < f.cores {
		f.coreRegs[core][addr] = v
		return
	}
	f.pkgRegs[addr] = v
}

// Snapshot captures every stored register (handlers are not consulted), for
// msr-safe style save/restore.
func (f *File) Snapshot() Snapshot {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := Snapshot{Pkg: make(map[uint32]uint64, len(f.pkgRegs))}
	for k, v := range f.pkgRegs {
		s.Pkg[k] = v
	}
	s.PerCore = make([]map[uint32]uint64, f.cores)
	for i, bank := range f.coreRegs {
		m := make(map[uint32]uint64, len(bank))
		for k, v := range bank {
			m[k] = v
		}
		s.PerCore[i] = m
	}
	return s
}

// Restore writes a snapshot back through Write so handlers observe the
// restored values (the msr-safe semantics: restoring PERF_CTL re-actuates
// the frequency). Registers are written in address order for determinism.
func (f *File) Restore(s Snapshot) error {
	for _, addr := range sortedAddrs(s.Pkg) {
		if err := f.Write(addr, 0, s.Pkg[addr]); err != nil {
			return err
		}
	}
	for core, bank := range s.PerCore {
		if core >= f.cores {
			return fmt.Errorf("msr: snapshot has %d cores, file has %d", len(s.PerCore), f.cores)
		}
		for _, addr := range sortedAddrs(bank) {
			if err := f.Write(addr, core, bank[addr]); err != nil {
				return err
			}
		}
	}
	return nil
}

// RestoreRaw replaces every stored cell with the snapshot's contents
// without invoking handlers — the machine-snapshot restore path, where the
// handlers' backing state (PMU, RAPL, frequency grids) is restored
// separately and a handler side effect would double-apply it. Unlike
// Restore, banks are replaced wholesale: cells absent from the snapshot
// are cleared, so the file's visible contents equal the snapshot exactly.
func (f *File) RestoreRaw(s Snapshot) error {
	if len(s.PerCore) != f.cores {
		return fmt.Errorf("msr: snapshot has %d cores, file has %d", len(s.PerCore), f.cores)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pkgRegs = make(map[uint32]uint64, len(s.Pkg))
	for k, v := range s.Pkg {
		f.pkgRegs[k] = v
	}
	for core, bank := range s.PerCore {
		m := make(map[uint32]uint64, len(bank))
		for k, v := range bank {
			m[k] = v
		}
		f.coreRegs[core] = m
	}
	return nil
}

// Snapshot is a point-in-time copy of the register file's stored cells.
type Snapshot struct {
	Pkg     map[uint32]uint64
	PerCore []map[uint32]uint64
}

func sortedAddrs(m map[uint32]uint64) []uint32 {
	addrs := make([]uint32, 0, len(m))
	for a := range m {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}
