// Package msr emulates the Model-Specific Register surface that Cuttlefish
// touches on an Intel Haswell server part: the per-core DVFS request
// register, the socket-wide uncore ratio-limit register (0x620), the RAPL
// package-energy counter, the fixed instructions-retired counter, and the
// CBo TOR-insert uncore PMU counters.
//
// The register file is deliberately dumb storage plus a handler hook per
// address; the machine simulator installs handlers so that counter reads
// observe live simulation state and frequency writes actuate the simulated
// hardware, exactly as writes through /dev/cpu/N/msr actuate a real part.
// A Device in the style of LLNL's msr-safe wraps the file with an allow-list
// and save/restore, which is how the paper's runtime accesses MSRs.
package msr

// Architectural and uncore MSR addresses used by the emulation. Core-scoped
// addresses index a per-core bank; package-scoped addresses live in a single
// socket bank.
const (
	// IA32PerfStatus reports the current core frequency ratio in bits 15:8.
	IA32PerfStatus = 0x198
	// IA32PerfCtl requests a core frequency ratio in bits 15:8 (per-core
	// DVFS on Haswell and later).
	IA32PerfCtl = 0x199
	// IA32ClockModulation is the DDCM (dynamic duty-cycle modulation)
	// control: bit 4 enables modulation, bits 3:1 select the duty cycle in
	// 12.5% steps (Haswell also supports bit 0 for 6.25% granularity; the
	// emulation models the classic 8-step scheme the DDCM literature the
	// paper cites uses).
	IA32ClockModulation = 0x19a
	// IA32FixedCtr0 is the INST_RETIRED.ANY fixed-function counter.
	IA32FixedCtr0 = 0x309
	// RaplPowerUnit encodes the RAPL unit scheme; bits 12:8 give the energy
	// status unit as 1/2^ESU joules.
	RaplPowerUnit = 0x606
	// PkgEnergyStatus is the 32-bit wrapping package energy counter,
	// updated roughly every 1 ms on Haswell.
	PkgEnergyStatus = 0x611
	// UncoreRatioLimit bounds the uncore ratio: bits 6:0 hold the max
	// ratio, bits 14:8 the min. Writing min == max pins the uncore
	// frequency, which is how Cuttlefish drives UFS.
	UncoreRatioLimit = 0x620

	// TorInsertMissLocal and TorInsertMissRemote stand in for the CBo
	// TOR_INSERT event programmed with the MISS_LOCAL / MISS_REMOTE umasks.
	// On hardware these are reached through the uncore PMON blocks; the
	// emulation exposes the two aggregated counts at fixed addresses since
	// Cuttlefish only ever reads the socket-wide sums.
	TorInsertMissLocal  = 0x700
	TorInsertMissRemote = 0x701
)

// Scope says which bank an address belongs to.
type Scope int

const (
	// ScopeCore registers have one instance per core.
	ScopeCore Scope = iota
	// ScopePackage registers have one instance per socket.
	ScopePackage
)

// AddrScope returns the scope of a known address. Unknown addresses default
// to package scope, matching how stray uncore MSRs behave.
func AddrScope(addr uint32) Scope {
	switch addr {
	case IA32PerfStatus, IA32PerfCtl, IA32FixedCtr0, IA32ClockModulation:
		return ScopeCore
	default:
		return ScopePackage
	}
}

// ClockModRaw builds an IA32_CLOCK_MODULATION image: level 0 disables
// modulation (full speed); levels 1..7 run the core at level/8 duty.
func ClockModRaw(level uint8) uint64 {
	if level == 0 || level >= 8 {
		return 0
	}
	return 1<<4 | uint64(level)<<1
}

// ClockModDuty decodes an IA32_CLOCK_MODULATION image into the effective
// duty fraction (1.0 when modulation is disabled).
func ClockModDuty(raw uint64) float64 {
	if raw&(1<<4) == 0 {
		return 1.0
	}
	level := (raw >> 1) & 0x7
	if level == 0 {
		return 1.0
	}
	return float64(level) / 8
}

// DefaultEnergyStatusUnit is the Haswell-server RAPL energy unit exponent:
// one counter tick is 1/2^14 J ≈ 61 µJ.
const DefaultEnergyStatusUnit = 14

// DefaultRaplPowerUnitRaw is the reset value of RaplPowerUnit with the
// energy status unit in bits 12:8.
const DefaultRaplPowerUnitRaw = uint64(DefaultEnergyStatusUnit) << 8

// EnergyUnitJoules decodes a RaplPowerUnit raw value into joules per
// energy-counter tick.
func EnergyUnitJoules(raw uint64) float64 {
	esu := (raw >> 8) & 0x1f
	return 1.0 / float64(uint64(1)<<esu)
}

// PerfCtlRatio extracts the requested frequency ratio from an IA32_PERF_CTL
// image (bits 15:8).
func PerfCtlRatio(raw uint64) uint8 { return uint8(raw >> 8) }

// PerfCtlRaw builds an IA32_PERF_CTL image requesting the given ratio.
func PerfCtlRaw(ratio uint8) uint64 { return uint64(ratio) << 8 }

// UncoreLimitRaw builds an uncore ratio-limit image with the given min and
// max ratios (min in bits 14:8, max in bits 6:0).
func UncoreLimitRaw(minRatio, maxRatio uint8) uint64 {
	return uint64(minRatio&0x7f)<<8 | uint64(maxRatio&0x7f)
}

// UncoreLimitRatios decodes an uncore ratio-limit image.
func UncoreLimitRatios(raw uint64) (minRatio, maxRatio uint8) {
	return uint8(raw>>8) & 0x7f, uint8(raw) & 0x7f
}
