package msr

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Allowlist mirrors msr-safe's approved-list: for each address, a write mask
// of bits software may modify. An address absent from the list is readable
// if AllowReadAll is set and never writable.
type Allowlist struct {
	AllowReadAll bool
	WriteMask    map[uint32]uint64
}

// DefaultAllowlist approves exactly the registers Cuttlefish needs, with the
// masks the paper's msr-safe configuration would carry: full PERF_CTL ratio
// field, the uncore min/max ratio fields, and read-only counters.
func DefaultAllowlist() Allowlist {
	return Allowlist{
		AllowReadAll: true,
		WriteMask: map[uint32]uint64{
			IA32PerfCtl:         0xffff,
			IA32ClockModulation: 0x1f,
			UncoreRatioLimit:    0x7f7f,
		},
	}
}

// ParseAllowlist reads the msr-safe text format: one "addr writemask" pair
// per line, '#' comments, blank lines ignored. Both fields are hex with an
// optional 0x prefix.
func ParseAllowlist(r io.Reader) (Allowlist, error) {
	al := Allowlist{AllowReadAll: true, WriteMask: make(map[uint32]uint64)}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return Allowlist{}, fmt.Errorf("msr: allowlist line %d: want \"addr writemask\", got %q", line, text)
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[0], "0x"), 16, 32)
		if err != nil {
			return Allowlist{}, fmt.Errorf("msr: allowlist line %d: bad address: %v", line, err)
		}
		mask, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			return Allowlist{}, fmt.Errorf("msr: allowlist line %d: bad mask: %v", line, err)
		}
		al.WriteMask[uint32(addr)] = mask
	}
	if err := sc.Err(); err != nil {
		return Allowlist{}, err
	}
	return al, nil
}

// ErrDenied is returned when an access violates the allow-list.
type ErrDenied struct {
	Addr  uint32
	Write bool
}

func (e *ErrDenied) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("msr: %s of %#x denied by allowlist", op, e.Addr)
}

// Device is the msr-safe-style access path: an allow-listed view of a File
// with save/restore of the writable registers, which is how the paper saves
// and restores MSR values around a run (§2).
type Device struct {
	file  *File
	allow Allowlist

	mu    sync.Mutex
	saved *Snapshot
}

// NewDevice wraps file with the allow-list.
func NewDevice(file *File, allow Allowlist) *Device {
	return &Device{file: file, allow: allow}
}

// Read reads addr on core through the allow-list.
func (d *Device) Read(addr uint32, core int) (uint64, error) {
	if _, ok := d.allow.WriteMask[addr]; !ok && !d.allow.AllowReadAll {
		return 0, &ErrDenied{Addr: addr}
	}
	return d.file.Read(addr, core)
}

// Write writes addr on core, restricted to the allow-list's write mask:
// masked-out bits keep their current value, as msr-safe does.
func (d *Device) Write(addr uint32, core int, v uint64) error {
	mask, ok := d.allow.WriteMask[addr]
	if !ok || mask == 0 {
		return &ErrDenied{Addr: addr, Write: true}
	}
	if mask != ^uint64(0) {
		cur, err := d.file.Read(addr, core)
		if err != nil {
			return err
		}
		v = (cur &^ mask) | (v & mask)
	}
	return d.file.Write(addr, core, v)
}

// Save snapshots every writable register so Restore can put the machine back
// the way the library found it.
func (d *Device) Save() {
	d.mu.Lock()
	defer d.mu.Unlock()
	full := d.file.Snapshot()
	s := Snapshot{Pkg: make(map[uint32]uint64), PerCore: make([]map[uint32]uint64, len(full.PerCore))}
	for addr := range d.allow.WriteMask {
		if AddrScope(addr) == ScopePackage {
			s.Pkg[addr] = full.Pkg[addr]
		}
	}
	for i, bank := range full.PerCore {
		m := make(map[uint32]uint64)
		for addr := range d.allow.WriteMask {
			if AddrScope(addr) == ScopeCore {
				m[addr] = bank[addr]
			}
		}
		s.PerCore[i] = m
	}
	d.saved = &s
}

// Restore writes the saved snapshot back. It is a no-op if Save was never
// called.
func (d *Device) Restore() error {
	d.mu.Lock()
	saved := d.saved
	d.mu.Unlock()
	if saved == nil {
		return nil
	}
	return d.file.Restore(*saved)
}
