package msr

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodingRoundTrips(t *testing.T) {
	if got := PerfCtlRatio(PerfCtlRaw(23)); got != 23 {
		t.Errorf("perf ctl round trip = %d, want 23", got)
	}
	lo, hi := UncoreLimitRatios(UncoreLimitRaw(12, 30))
	if lo != 12 || hi != 30 {
		t.Errorf("uncore limit round trip = %d,%d want 12,30", lo, hi)
	}
}

func TestClockModEncoding(t *testing.T) {
	if got := ClockModDuty(ClockModRaw(0)); got != 1.0 {
		t.Errorf("level 0 duty = %g, want 1.0 (disabled)", got)
	}
	if got := ClockModDuty(ClockModRaw(4)); got != 0.5 {
		t.Errorf("level 4 duty = %g, want 0.5", got)
	}
	if got := ClockModDuty(ClockModRaw(7)); got != 7.0/8 {
		t.Errorf("level 7 duty = %g, want 7/8", got)
	}
	if got := ClockModDuty(ClockModRaw(9)); got != 1.0 {
		t.Errorf("out-of-range level should disable, got %g", got)
	}
	// Raw image without the enable bit means full speed.
	if got := ClockModDuty(3 << 1); got != 1.0 {
		t.Errorf("enable bit clear must mean duty 1.0, got %g", got)
	}
}

func TestEnergyUnit(t *testing.T) {
	got := EnergyUnitJoules(DefaultRaplPowerUnitRaw)
	want := 1.0 / 16384.0
	if got != want {
		t.Errorf("energy unit = %g, want %g (2^-14 J)", got, want)
	}
}

func TestFileCoreScopedIsolation(t *testing.T) {
	f := NewFile(4)
	if err := f.Write(IA32PerfCtl, 1, PerfCtlRaw(15)); err != nil {
		t.Fatal(err)
	}
	v0, _ := f.Read(IA32PerfCtl, 0)
	v1, _ := f.Read(IA32PerfCtl, 1)
	if v0 != 0 || PerfCtlRatio(v1) != 15 {
		t.Errorf("per-core banks leaked: core0=%#x core1=%#x", v0, v1)
	}
}

func TestFilePackageScopeRequiresCore0(t *testing.T) {
	f := NewFile(2)
	if _, err := f.Read(PkgEnergyStatus, 1); err == nil {
		t.Error("reading a package MSR via core 1 should fail")
	}
	if err := f.Write(UncoreRatioLimit, 1, 0); err == nil {
		t.Error("writing a package MSR via core 1 should fail")
	}
}

func TestFileCoreOutOfRange(t *testing.T) {
	f := NewFile(2)
	if _, err := f.Read(IA32PerfCtl, 7); err == nil {
		t.Error("core out of range should fail")
	}
}

func TestFileHandlers(t *testing.T) {
	f := NewFile(2)
	var wrote uint64
	f.Install(IA32PerfCtl, Handler{
		Read:  func(core int) uint64 { return uint64(core) + 100 },
		Write: func(core int, v uint64) error { wrote = v; return nil },
	})
	v, err := f.Read(IA32PerfCtl, 1)
	if err != nil || v != 101 {
		t.Errorf("handler read = %d,%v want 101", v, err)
	}
	if err := f.Write(IA32PerfCtl, 0, 42); err != nil {
		t.Fatal(err)
	}
	if wrote != 42 {
		t.Errorf("handler write saw %d, want 42", wrote)
	}
}

func TestFileResetValues(t *testing.T) {
	f := NewFile(1)
	v, err := f.Read(RaplPowerUnit, 0)
	if err != nil || v != DefaultRaplPowerUnitRaw {
		t.Errorf("RAPL power unit reset = %#x, want %#x", v, DefaultRaplPowerUnitRaw)
	}
}

func TestSnapshotRestore(t *testing.T) {
	f := NewFile(2)
	f.Write(IA32PerfCtl, 0, PerfCtlRaw(20))
	f.Write(UncoreRatioLimit, 0, UncoreLimitRaw(22, 22))
	snap := f.Snapshot()
	f.Write(IA32PerfCtl, 0, PerfCtlRaw(12))
	f.Write(UncoreRatioLimit, 0, UncoreLimitRaw(12, 12))
	if err := f.Restore(snap); err != nil {
		t.Fatal(err)
	}
	v, _ := f.Read(IA32PerfCtl, 0)
	if PerfCtlRatio(v) != 20 {
		t.Errorf("restored ratio = %d, want 20", PerfCtlRatio(v))
	}
}

func TestDeviceDeniesUnlistedWrites(t *testing.T) {
	d := NewDevice(NewFile(2), DefaultAllowlist())
	err := d.Write(PkgEnergyStatus, 0, 1)
	var denied *ErrDenied
	if !errors.As(err, &denied) || !denied.Write {
		t.Errorf("write to RAPL counter should be denied, got %v", err)
	}
	if _, err := d.Read(PkgEnergyStatus, 0); err != nil {
		t.Errorf("read should pass with AllowReadAll: %v", err)
	}
}

func TestDeviceDeniesReadsWithoutAllowReadAll(t *testing.T) {
	al := Allowlist{WriteMask: map[uint32]uint64{IA32PerfCtl: 0xffff}}
	d := NewDevice(NewFile(1), al)
	if _, err := d.Read(PkgEnergyStatus, 0); err == nil {
		t.Error("unlisted read should be denied")
	}
	if _, err := d.Read(IA32PerfCtl, 0); err != nil {
		t.Errorf("listed read should pass: %v", err)
	}
}

func TestDeviceWriteMasking(t *testing.T) {
	f := NewFile(1)
	f.Write(IA32PerfCtl, 0, 0xabcd_0000)
	al := Allowlist{WriteMask: map[uint32]uint64{IA32PerfCtl: 0xffff}}
	d := NewDevice(f, al)
	if err := d.Write(IA32PerfCtl, 0, PerfCtlRaw(18)); err != nil {
		t.Fatal(err)
	}
	v, _ := f.Read(IA32PerfCtl, 0)
	if v != 0xabcd_0000|PerfCtlRaw(18) {
		t.Errorf("masked write clobbered protected bits: %#x", v)
	}
}

func TestDeviceSaveRestore(t *testing.T) {
	f := NewFile(2)
	d := NewDevice(f, DefaultAllowlist())
	d.Write(IA32PerfCtl, 0, PerfCtlRaw(23))
	d.Write(IA32PerfCtl, 1, PerfCtlRaw(23))
	d.Save()
	d.Write(IA32PerfCtl, 0, PerfCtlRaw(12))
	d.Write(UncoreRatioLimit, 0, UncoreLimitRaw(12, 12))
	if err := d.Restore(); err != nil {
		t.Fatal(err)
	}
	v, _ := f.Read(IA32PerfCtl, 0)
	if PerfCtlRatio(v) != 23 {
		t.Errorf("restore: core0 ratio = %d, want 23", PerfCtlRatio(v))
	}
}

func TestRestoreWithoutSaveIsNoop(t *testing.T) {
	d := NewDevice(NewFile(1), DefaultAllowlist())
	if err := d.Restore(); err != nil {
		t.Errorf("restore without save should be nil, got %v", err)
	}
}

func TestParseAllowlist(t *testing.T) {
	input := `
# Cuttlefish msr-safe config
0x199 0xffff
0x620 0x7f7f   # uncore ratio limit
620 0          `
	al, err := ParseAllowlist(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if al.WriteMask[IA32PerfCtl] != 0xffff {
		t.Errorf("perf ctl mask = %#x", al.WriteMask[IA32PerfCtl])
	}
	// the later duplicate line (hex without prefix) overrides
	if al.WriteMask[UncoreRatioLimit] != 0 {
		t.Errorf("0x620 mask = %#x, want 0 (overridden)", al.WriteMask[UncoreRatioLimit])
	}
}

func TestParseAllowlistErrors(t *testing.T) {
	for _, bad := range []string{"0x199", "zz 0x1", "0x199 qq", "1 2 3"} {
		if _, err := ParseAllowlist(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseAllowlist(%q) should fail", bad)
		}
	}
}

// Property: a masked write never alters bits outside the mask.
func TestWriteMaskPropertyQuick(t *testing.T) {
	f := NewFile(1)
	const mask = uint64(0x00ff_ff00)
	d := NewDevice(f, Allowlist{WriteMask: map[uint32]uint64{IA32PerfCtl: mask}})
	prop := func(initial, attempt uint64) bool {
		f.Poke(IA32PerfCtl, 0, initial)
		if err := d.Write(IA32PerfCtl, 0, attempt); err != nil {
			return false
		}
		got, _ := f.Read(IA32PerfCtl, 0)
		return got&^mask == initial&^mask && got&mask == attempt&mask
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
