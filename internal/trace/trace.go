// Package trace records per-interval time series during a run: TIPI, JPI
// and the frequency operating points, sampled at a fixed period. Figures 2
// and 3 of the paper are regenerated from these series.
package trace

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/freq"
)

// Point is one sampling interval.
type Point struct {
	Time   float64 // interval end, seconds
	TIPI   float64
	JPI    float64 // joules per instruction
	Instr  uint64
	Joules float64
	CF     freq.Ratio // core frequency of core 0 at sample time
	UF     freq.Ratio
}

// Recorder accumulates points; it is safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	points []Point
}

// Add appends a point.
func (r *Recorder) Add(p Point) {
	r.mu.Lock()
	r.points = append(r.points, p)
	r.mu.Unlock()
}

// Points returns a copy of the recorded series.
func (r *Recorder) Points() []Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Point, len(r.points))
	copy(out, r.points)
	return out
}

// Len returns the number of recorded points.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.points)
}

// WriteCSV emits the series with a header, one row per interval. Every
// field a Point records is a column, including the raw per-interval
// instruction and energy counts the TIPI/JPI ratios derive from.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_s,tipi,jpi_nj,instr,joules,cf_ghz,uf_ghz"); err != nil {
		return err
	}
	for _, p := range r.Points() {
		_, err := fmt.Fprintf(w, "%.4f,%.5f,%.4f,%d,%.4f,%.1f,%.1f\n",
			p.Time, p.TIPI, p.JPI*1e9, p.Instr, p.Joules, p.CF.GHz(), p.UF.GHz())
		if err != nil {
			return err
		}
	}
	return nil
}
