package trace

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/freq"
)

func TestRecorderAccumulates(t *testing.T) {
	var r Recorder
	for i := 0; i < 5; i++ {
		r.Add(Point{Time: float64(i) * 0.02, TIPI: 0.01 * float64(i)})
	}
	if r.Len() != 5 {
		t.Fatalf("len = %d, want 5", r.Len())
	}
	pts := r.Points()
	if pts[3].TIPI != 0.03 {
		t.Errorf("point 3 TIPI = %g, want 0.03", pts[3].TIPI)
	}
}

func TestPointsReturnsCopy(t *testing.T) {
	var r Recorder
	r.Add(Point{TIPI: 1})
	pts := r.Points()
	pts[0].TIPI = 99
	if r.Points()[0].TIPI != 1 {
		t.Error("Points must return a copy")
	}
}

func TestWriteCSV(t *testing.T) {
	var r Recorder
	r.Add(Point{Time: 0.02, TIPI: 0.064, JPI: 4.2e-9, Instr: 1_250_000, Joules: 0.84,
		CF: freq.Ratio(12), UF: freq.Ratio(22)})
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want header + 1 row", len(lines))
	}
	if lines[0] != "time_s,tipi,jpi_nj,instr,joules,cf_ghz,uf_ghz" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0.0200,0.06400,4.2000,1250000,0.8400,1.2,2.2" {
		t.Errorf("row = %q", lines[1])
	}
}

// TestWriteCSVColumnCount guards the header/row contract: every column in
// the header must have a value in every data row (the Instr/Joules columns
// were once recorded but silently dropped from the CSV).
func TestWriteCSVColumnCount(t *testing.T) {
	var r Recorder
	r.Add(Point{Time: 0.04, TIPI: 0.01, JPI: 1e-9, Instr: 42, Joules: 0.5})
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Fatalf("header has %d columns, row has %d", len(header), len(row))
	}
	if len(header) != 7 {
		t.Errorf("columns = %d, want 7 (time, tipi, jpi, instr, joules, cf, uf)", len(header))
	}
}

func TestRecorderConcurrentAdds(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(Point{TIPI: 0.01})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("len = %d, want 800", r.Len())
	}
}
