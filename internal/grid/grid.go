// Package grid is the shared parameter-grid toolkit: cartesian
// expansion of axis value lists, and seeded bounded-support samplers for
// randomized axes. The sweep orchestrator expands SweepSpec axes through
// it, and the experiments package builds its (CF, UF) frequency grids on
// the same cross-product walk — one expansion mechanism instead of
// hand-rolled nested loops per call site.
//
// Everything here is deterministic by construction: Cross walks the
// product in row-major order, and the samplers derive every draw from an
// explicit seed through an inverse CDF — so a generated scenario is a
// pure function of its spec, which keeps generated runs content-
// addressable just like hand-listed ones.
package grid

import (
	"fmt"
	"math"
	"math/rand"
)

// Cross calls fn once per point of the cartesian product of the given
// axis lengths, in row-major order (the last axis varies fastest). The
// index slice is reused between calls; copy it if retained. Axes of
// length zero make the product empty.
func Cross(lens []int, fn func(idx []int)) {
	for _, n := range lens {
		if n <= 0 {
			return
		}
	}
	if len(lens) == 0 {
		return
	}
	idx := make([]int, len(lens))
	for {
		fn(idx)
		// Odometer increment, last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < lens[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// Size returns the number of points Cross visits: the product of the
// axis lengths (zero if any axis is empty).
func Size(lens []int) int {
	n := 1
	for _, l := range lens {
		if l <= 0 {
			return 0
		}
		n *= l
	}
	if len(lens) == 0 {
		return 0
	}
	return n
}

// KumaraswamyInvCDF is the closed-form inverse CDF of the
// Kumaraswamy(a, b) distribution — F(x) = 1 − (1 − x^a)^b on [0, 1]:
//
//	x = (1 − (1 − u)^{1/b})^{1/a}
//
// It is the single quantile function every sampler in this package pushes
// uniform variates through, with the edge cases pinned explicitly instead
// of leaking NaN/Inf samples into generated scenarios: non-positive or
// non-finite shape parameters and u outside [0, 1] are errors, and the
// endpoints map exactly (u=0 → 0, u=1 → 1) for every valid shape.
func KumaraswamyInvCDF(a, b, u float64) (float64, error) {
	if !(a > 0) || !(b > 0) || math.IsInf(a, 1) || math.IsInf(b, 1) {
		// !(x > 0) also catches NaN shapes.
		return 0, fmt.Errorf("grid: kumaraswamy shape parameters must be positive and finite, got a=%g b=%g", a, b)
	}
	if !(u >= 0 && u <= 1) {
		return 0, fmt.Errorf("grid: kumaraswamy variate must lie in [0, 1], got %g", u)
	}
	switch u {
	case 0:
		return 0, nil
	case 1:
		return 1, nil
	}
	return math.Pow(1-math.Pow(1-u, 1/b), 1/a), nil
}

// checkSupport validates a sampler's [min, max] rescale target: the
// bounds must be finite and ordered. A degenerate min == max support is
// legal — every sample is that constant — which is how a sweep axis or a
// fuzzer pins one knob while sampling the rest.
func checkSupport(min, max float64) error {
	if math.IsNaN(min) || math.IsNaN(max) || math.IsInf(min, 0) || math.IsInf(max, 0) {
		return fmt.Errorf("grid: support bounds must be finite, got [%g, %g]", min, max)
	}
	if min > max {
		return fmt.Errorf("grid: inverted support [%g, %g]", min, max)
	}
	return nil
}

// Kumaraswamy draws n deterministic samples from the Kumaraswamy(a, b)
// distribution rescaled onto [min, max]. The distribution is the
// bounded-support workhorse for randomized scenario axes (phase lengths,
// imbalance factors): each draw is one uniform variate from the seeded
// generator pushed through KumaraswamyInvCDF, making the whole sample a
// pure function of (a, b, n, seed, min, max).
func Kumaraswamy(a, b float64, n int, seed int64, min, max float64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("grid: sample count must be positive, got %d", n)
	}
	if err := checkSupport(min, max); err != nil {
		return nil, err
	}
	if _, err := KumaraswamyInvCDF(a, b, 0); err != nil {
		return nil, err // invalid shapes, reported once up front
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		x, _ := KumaraswamyInvCDF(a, b, rng.Float64()) // shapes validated above
		out[i] = min + x*(max-min)
	}
	return out, nil
}

// Sampler is a seeded stream of bounded-support draws: the scenario
// fuzzer's source of randomness. Every method consumes variates from one
// deterministic underlying stream, so a generated object is a pure
// function of the construction seed and the exact sequence of calls —
// the property that makes `cuttlefish fuzz -n 1000 -seed k` expand to a
// bit-identical corpus on every machine. Methods panic on invalid
// parameters (shape/support errors are programming bugs at generation
// sites, not data errors), mirroring how the generator's own distribution
// choices are compile-time constants.
type Sampler struct {
	rng *rand.Rand
}

// NewSampler starts a deterministic draw stream from seed.
func NewSampler(seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed))}
}

// Uniform draws uniformly from [min, max).
func (s *Sampler) Uniform(min, max float64) float64 {
	if err := checkSupport(min, max); err != nil {
		panic(err)
	}
	return min + s.rng.Float64()*(max-min)
}

// Kumaraswamy draws one Kumaraswamy(a, b) variate rescaled onto
// [min, max].
func (s *Sampler) Kumaraswamy(a, b, min, max float64) float64 {
	if err := checkSupport(min, max); err != nil {
		panic(err)
	}
	x, err := KumaraswamyInvCDF(a, b, s.rng.Float64())
	if err != nil {
		panic(err)
	}
	return min + x*(max-min)
}

// IntBetween draws an integer uniformly from [lo, hi] inclusive.
func (s *Sampler) IntBetween(lo, hi int) int {
	if lo > hi {
		panic(fmt.Sprintf("grid: inverted integer support [%d, %d]", lo, hi))
	}
	return lo + s.rng.Intn(hi-lo+1)
}

// Choice draws an index into n options, weighted by the given weights
// (uniform when weights is nil or all-zero).
func (s *Sampler) Choice(weights []float64) int {
	if len(weights) == 0 {
		panic("grid: choice needs at least one option")
	}
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic(fmt.Sprintf("grid: choice weights must be finite and non-negative, got %g", w))
		}
		total += w
	}
	if total == 0 {
		return s.rng.Intn(len(weights))
	}
	u := s.rng.Float64() * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Bool draws true with probability p.
func (s *Sampler) Bool(p float64) bool {
	return s.rng.Float64() < p
}
