// Package grid is the shared parameter-grid toolkit: cartesian
// expansion of axis value lists, and seeded bounded-support samplers for
// randomized axes. The sweep orchestrator expands SweepSpec axes through
// it, and the experiments package builds its (CF, UF) frequency grids on
// the same cross-product walk — one expansion mechanism instead of
// hand-rolled nested loops per call site.
//
// Everything here is deterministic by construction: Cross walks the
// product in row-major order, and the samplers derive every draw from an
// explicit seed through an inverse CDF — so a generated scenario is a
// pure function of its spec, which keeps generated runs content-
// addressable just like hand-listed ones.
package grid

import (
	"fmt"
	"math"
	"math/rand"
)

// Cross calls fn once per point of the cartesian product of the given
// axis lengths, in row-major order (the last axis varies fastest). The
// index slice is reused between calls; copy it if retained. Axes of
// length zero make the product empty.
func Cross(lens []int, fn func(idx []int)) {
	for _, n := range lens {
		if n <= 0 {
			return
		}
	}
	if len(lens) == 0 {
		return
	}
	idx := make([]int, len(lens))
	for {
		fn(idx)
		// Odometer increment, last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < lens[i] {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// Size returns the number of points Cross visits: the product of the
// axis lengths (zero if any axis is empty).
func Size(lens []int) int {
	n := 1
	for _, l := range lens {
		if l <= 0 {
			return 0
		}
		n *= l
	}
	if len(lens) == 0 {
		return 0
	}
	return n
}

// Kumaraswamy draws n deterministic samples from the Kumaraswamy(a, b)
// distribution — CDF F(x) = 1 − (1 − x^a)^b on [0, 1] — rescaled onto
// [min, max]. The distribution is the bounded-support workhorse for
// randomized scenario axes (phase lengths, imbalance factors): its
// inverse CDF is closed-form, so each draw is one uniform variate from
// the seeded generator pushed through
//
//	x = (1 − (1 − u)^{1/b})^{1/a}
//
// making the whole sample a pure function of (a, b, n, seed, min, max).
func Kumaraswamy(a, b float64, n int, seed int64, min, max float64) ([]float64, error) {
	if a <= 0 || b <= 0 {
		return nil, fmt.Errorf("grid: kumaraswamy shape parameters must be positive, got a=%g b=%g", a, b)
	}
	if n <= 0 {
		return nil, fmt.Errorf("grid: sample count must be positive, got %d", n)
	}
	if min > max {
		return nil, fmt.Errorf("grid: inverted support [%g, %g]", min, max)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		u := rng.Float64()
		x := math.Pow(1-math.Pow(1-u, 1/b), 1/a)
		out[i] = min + x*(max-min)
	}
	return out, nil
}
