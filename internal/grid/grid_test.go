package grid

import (
	"math"
	"reflect"
	"testing"
)

func TestCrossRowMajorOrder(t *testing.T) {
	var got [][]int
	Cross([]int{2, 3}, func(idx []int) {
		got = append(got, append([]int(nil), idx...))
	})
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Cross(2,3) order = %v, want %v", got, want)
	}
}

func TestCrossDegenerateAxes(t *testing.T) {
	calls := 0
	Cross(nil, func([]int) { calls++ })
	Cross([]int{3, 0, 2}, func([]int) { calls++ })
	if calls != 0 {
		t.Errorf("empty products visited %d points, want 0", calls)
	}
	Cross([]int{1}, func([]int) { calls++ })
	if calls != 1 {
		t.Errorf("single-point product visited %d points, want 1", calls)
	}
}

func TestSizeMatchesCross(t *testing.T) {
	for _, lens := range [][]int{{2, 3}, {1}, {4, 1, 2}, {0, 5}, nil} {
		visited := 0
		Cross(lens, func([]int) { visited++ })
		if got := Size(lens); got != visited {
			t.Errorf("Size(%v) = %d, Cross visited %d", lens, got, visited)
		}
	}
}

func TestKumaraswamyDeterministicAndBounded(t *testing.T) {
	a, err := Kumaraswamy(2, 3, 100, 42, 0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Kumaraswamy(2, 3, 100, 42, 0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must reproduce the same sample bit for bit")
	}
	for i, x := range a {
		if x < 0.01 || x > 0.5 || math.IsNaN(x) {
			t.Fatalf("sample %d = %g escapes [0.01, 0.5]", i, x)
		}
	}
	c, err := Kumaraswamy(2, 3, 100, 43, 0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should draw different samples")
	}
}

// TestKumaraswamyShape sanity-checks the inverse CDF against the
// analytic mean: for a = 1 the distribution is Beta(1, b) with mean
// 1/(1+b).
func TestKumaraswamyShape(t *testing.T) {
	xs, err := Kumaraswamy(1, 4, 20000, 7, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if want := 1.0 / 5.0; math.Abs(mean-want) > 0.01 {
		t.Errorf("empirical mean = %g, want ≈ %g", mean, want)
	}
}

func TestKumaraswamyRejectsBadParams(t *testing.T) {
	for _, tc := range []struct {
		name     string
		a, b     float64
		n        int
		min, max float64
	}{
		{"zero a", 0, 1, 5, 0, 1},
		{"negative b", 1, -2, 5, 0, 1},
		{"NaN a", math.NaN(), 1, 5, 0, 1},
		{"NaN b", 1, math.NaN(), 5, 0, 1},
		{"infinite a", math.Inf(1), 1, 5, 0, 1},
		{"zero samples", 1, 1, 0, 0, 1},
		{"inverted support", 1, 1, 5, 2, 1},
		{"NaN support", 1, 1, 5, math.NaN(), 1},
		{"infinite support", 1, 1, 5, 0, math.Inf(1)},
	} {
		if _, err := Kumaraswamy(tc.a, tc.b, tc.n, 1, tc.min, tc.max); err == nil {
			t.Errorf("%s: Kumaraswamy(a=%g b=%g n=%d [%g,%g]) accepted invalid parameters",
				tc.name, tc.a, tc.b, tc.n, tc.min, tc.max)
		}
	}
}

// TestKumaraswamyDegenerateSupport pins the min == max case: every
// sample is exactly the constant, never NaN from a 0-width rescale.
func TestKumaraswamyDegenerateSupport(t *testing.T) {
	xs, err := Kumaraswamy(2, 3, 50, 9, 0.25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if x != 0.25 {
			t.Fatalf("sample %d over degenerate support = %g, want exactly 0.25", i, x)
		}
	}
}

// TestKumaraswamyInvCDFEdges is the table-driven edge-case contract: the
// quantile function must map the u ∈ {0, 1} endpoints exactly, stay
// finite on every valid input, and reject invalid shapes and variates
// with errors instead of returning NaN/Inf.
func TestKumaraswamyInvCDFEdges(t *testing.T) {
	for _, tc := range []struct {
		name    string
		a, b, u float64
		want    float64
		wantErr bool
	}{
		{name: "u=0 endpoint", a: 2, b: 3, u: 0, want: 0},
		{name: "u=1 endpoint", a: 2, b: 3, u: 1, want: 1},
		{name: "u=0 with tiny shapes", a: 1e-6, b: 1e-6, u: 0, want: 0},
		{name: "u=1 with tiny shapes", a: 1e-6, b: 1e-6, u: 1, want: 1},
		{name: "uniform special case", a: 1, b: 1, u: 0.5, want: 0.5},
		{name: "median of a=1 b=1", a: 1, b: 2, u: 0.75, want: 0.5},
		{name: "zero a", a: 0, b: 1, u: 0.5, wantErr: true},
		{name: "zero b", a: 1, b: 0, u: 0.5, wantErr: true},
		{name: "negative a", a: -1, b: 1, u: 0.5, wantErr: true},
		{name: "NaN a", a: math.NaN(), b: 1, u: 0.5, wantErr: true},
		{name: "NaN b", a: 1, b: math.NaN(), u: 0.5, wantErr: true},
		{name: "infinite a", a: math.Inf(1), b: 1, u: 0.5, wantErr: true},
		{name: "infinite b", a: 1, b: math.Inf(1), u: 0.5, wantErr: true},
		{name: "u below 0", a: 1, b: 1, u: -0.1, wantErr: true},
		{name: "u above 1", a: 1, b: 1, u: 1.1, wantErr: true},
		{name: "NaN u", a: 1, b: 1, u: math.NaN(), wantErr: true},
	} {
		got, err := KumaraswamyInvCDF(tc.a, tc.b, tc.u)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: InvCDF(%g, %g, %g) = %g, want error", tc.name, tc.a, tc.b, tc.u, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: InvCDF(%g, %g, %g) errored: %v", tc.name, tc.a, tc.b, tc.u, err)
			continue
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: InvCDF(%g, %g, %g) = %g, want finite", tc.name, tc.a, tc.b, tc.u, got)
			continue
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: InvCDF(%g, %g, %g) = %g, want %g", tc.name, tc.a, tc.b, tc.u, got, tc.want)
		}
	}
}

// TestKumaraswamyInvCDFStaysInUnitInterval fuzzes the valid domain: no
// (a, b, u) combination of extreme-but-valid parameters may escape
// [0, 1] or go non-finite.
func TestKumaraswamyInvCDFStaysInUnitInterval(t *testing.T) {
	shapes := []float64{1e-3, 0.5, 1, 2, 50, 1e3}
	us := []float64{0, 1e-300, 1e-9, 0.5, 1 - 1e-9, 1}
	for _, a := range shapes {
		for _, b := range shapes {
			for _, u := range us {
				x, err := KumaraswamyInvCDF(a, b, u)
				if err != nil {
					t.Fatalf("InvCDF(%g, %g, %g) errored: %v", a, b, u, err)
				}
				if !(x >= 0 && x <= 1) {
					t.Fatalf("InvCDF(%g, %g, %g) = %g escapes [0, 1]", a, b, u, x)
				}
			}
		}
	}
}

func TestSamplerDeterministicStreams(t *testing.T) {
	draw := func(seed int64) []float64 {
		s := NewSampler(seed)
		out := []float64{
			s.Uniform(0, 10),
			s.Kumaraswamy(2, 3, 1, 5),
			float64(s.IntBetween(3, 9)),
			float64(s.Choice([]float64{1, 2, 3})),
		}
		if s.Bool(0.5) {
			out = append(out, 1)
		}
		return out
	}
	if a, b := draw(7), draw(7); !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	if a, c := draw(7), draw(8); reflect.DeepEqual(a, c) {
		t.Error("different seeds should draw different streams")
	}
}

func TestSamplerBoundsAndPanics(t *testing.T) {
	s := NewSampler(1)
	for i := 0; i < 1000; i++ {
		if x := s.Uniform(2, 3); x < 2 || x >= 3 {
			t.Fatalf("Uniform escaped: %g", x)
		}
		if x := s.Kumaraswamy(0.8, 4, -1, 1); x < -1 || x > 1 {
			t.Fatalf("Kumaraswamy escaped: %g", x)
		}
		if n := s.IntBetween(5, 7); n < 5 || n > 7 {
			t.Fatalf("IntBetween escaped: %d", n)
		}
		if c := s.Choice([]float64{0, 1, 0}); c != 1 {
			t.Fatalf("Choice ignored the only positive weight: %d", c)
		}
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic on invalid parameters", name)
			}
		}()
		fn()
	}
	mustPanic("Uniform inverted", func() { s.Uniform(3, 2) })
	mustPanic("Kumaraswamy bad shape", func() { s.Kumaraswamy(-1, 1, 0, 1) })
	mustPanic("IntBetween inverted", func() { s.IntBetween(9, 3) })
	mustPanic("Choice negative weight", func() { s.Choice([]float64{1, -1}) })
	mustPanic("Choice empty", func() { s.Choice(nil) })
}
