package grid

import (
	"math"
	"reflect"
	"testing"
)

func TestCrossRowMajorOrder(t *testing.T) {
	var got [][]int
	Cross([]int{2, 3}, func(idx []int) {
		got = append(got, append([]int(nil), idx...))
	})
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Cross(2,3) order = %v, want %v", got, want)
	}
}

func TestCrossDegenerateAxes(t *testing.T) {
	calls := 0
	Cross(nil, func([]int) { calls++ })
	Cross([]int{3, 0, 2}, func([]int) { calls++ })
	if calls != 0 {
		t.Errorf("empty products visited %d points, want 0", calls)
	}
	Cross([]int{1}, func([]int) { calls++ })
	if calls != 1 {
		t.Errorf("single-point product visited %d points, want 1", calls)
	}
}

func TestSizeMatchesCross(t *testing.T) {
	for _, lens := range [][]int{{2, 3}, {1}, {4, 1, 2}, {0, 5}, nil} {
		visited := 0
		Cross(lens, func([]int) { visited++ })
		if got := Size(lens); got != visited {
			t.Errorf("Size(%v) = %d, Cross visited %d", lens, got, visited)
		}
	}
}

func TestKumaraswamyDeterministicAndBounded(t *testing.T) {
	a, err := Kumaraswamy(2, 3, 100, 42, 0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Kumaraswamy(2, 3, 100, 42, 0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must reproduce the same sample bit for bit")
	}
	for i, x := range a {
		if x < 0.01 || x > 0.5 || math.IsNaN(x) {
			t.Fatalf("sample %d = %g escapes [0.01, 0.5]", i, x)
		}
	}
	c, err := Kumaraswamy(2, 3, 100, 43, 0.01, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should draw different samples")
	}
}

// TestKumaraswamyShape sanity-checks the inverse CDF against the
// analytic mean: for a = 1 the distribution is Beta(1, b) with mean
// 1/(1+b).
func TestKumaraswamyShape(t *testing.T) {
	xs, err := Kumaraswamy(1, 4, 20000, 7, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if want := 1.0 / 5.0; math.Abs(mean-want) > 0.01 {
		t.Errorf("empirical mean = %g, want ≈ %g", mean, want)
	}
}

func TestKumaraswamyRejectsBadParams(t *testing.T) {
	for _, tc := range []struct {
		a, b     float64
		n        int
		min, max float64
	}{
		{0, 1, 5, 0, 1},
		{1, -2, 5, 0, 1},
		{1, 1, 0, 0, 1},
		{1, 1, 5, 2, 1},
	} {
		if _, err := Kumaraswamy(tc.a, tc.b, tc.n, 1, tc.min, tc.max); err == nil {
			t.Errorf("Kumaraswamy(%+v) accepted invalid parameters", tc)
		}
	}
}
