package cluster

import (
	"testing"

	"repro/internal/freq"
	"repro/internal/governor"
	"repro/internal/sched"
	"repro/internal/workload"
)

// balancedApp gives every rank identical memory-bound supersteps.
func balancedApp(steps int, missPerInstr float64) App {
	return App{
		Steps: steps,
		Compute: func(rank, step int) []sched.Region {
			return []sched.Region{{
				Seg: workload.Segment{
					Instructions: 2e7,
					MissPerInstr: missPerInstr,
					IPC:          2.0,
					Exposure:     0.6,
				},
				Chunks: 160,
			}}
		},
		ExchangeBytes: func(rank, step int) float64 { return 64 << 20 },
	}
}

// imbalancedApp gives rank 0 twice the work of the others, with long
// supersteps (the §4.6 scope is long node-level parallel regions, so each
// step spans many Tinv samples and barrier-straddling pollution is rare
// for the busy rank).
func imbalancedApp(steps int) App {
	app := balancedApp(steps, 0.066)
	base := app.Compute
	app.Compute = func(rank, step int) []sched.Region {
		regions := base(rank, step)
		regions[0].Seg.Instructions *= 8
		if rank == 0 {
			regions[0].Seg.Instructions *= 2
		}
		return regions
	}
	return app
}

func smallConfig(gov string) Config {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.Governor = gov
	// Long steps are unnecessary for unit tests; shrink the daemon warmup
	// so exploration happens inside the run.
	cfg.Tuning.WarmupSec = 0.2
	return cfg
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, balancedApp(1, 0.05)); err == nil {
		t.Error("zero nodes must be rejected")
	}
	cfg := smallConfig(governor.Default)
	if _, err := Run(cfg, App{}); err == nil {
		t.Error("empty app must be rejected")
	}
}

func TestBalancedClusterRuns(t *testing.T) {
	cfg := smallConfig(governor.Default)
	res, err := Run(cfg, balancedApp(12, 0.08))
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.Joules <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if len(res.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(res.Nodes))
	}
	// Balanced ranks should spend almost no time waiting beyond the
	// exchange itself.
	for _, n := range res.Nodes {
		if n.WaitSec > 0.25*res.Seconds {
			t.Errorf("rank %d waits %.2fs of %.2fs despite balanced load", n.Rank, n.WaitSec, res.Seconds)
		}
	}
}

func TestCuttlefishSavesEnergyOnBalancedMPIX(t *testing.T) {
	// §4.6: in regular MPI+X programs without load imbalance, per-node
	// Cuttlefish works as in the single-node case.
	app := balancedApp(400, 0.066)
	def, err := Run(smallConfig(governor.Default), app)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := Run(smallConfig(governor.Cuttlefish), app)
	if err != nil {
		t.Fatal(err)
	}
	savings := 100 * (1 - cf.Joules/def.Joules)
	slowdown := 100 * (cf.Seconds/def.Seconds - 1)
	if savings < 5 {
		t.Errorf("cluster energy savings = %.1f%%, want ≥ 5%%", savings)
	}
	if slowdown > 10 {
		t.Errorf("cluster slowdown = %.1f%%, want ≤ 10%%", slowdown)
	}
	// Every node's daemon resolved its dominant slab.
	for _, n := range cf.Nodes {
		if n.Daemon == nil || n.Daemon.List().Len() == 0 {
			t.Errorf("rank %d daemon discovered nothing", n.Rank)
		}
	}
}

func TestImbalanceLimitation(t *testing.T) {
	// The documented §4.6 limitation: Cuttlefish's scope is MPI+X programs
	// WITHOUT load imbalance. Under imbalance the fast rank spends much of
	// each superstep waiting at the barrier; its Tinv samples blend compute
	// with idle, so its classification is unreliable — while the
	// continuously busy rank still resolves the memory-bound optimum.
	// Cuttlefish also does not reclaim the slack (no Adagio-style slowing
	// of the fast rank): the wait time stays wait time.
	res, err := Run(smallConfig(governor.Cuttlefish), imbalancedApp(40))
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := res.Nodes[0], res.Nodes[1]
	if fast.WaitSec <= slow.WaitSec {
		t.Errorf("fast rank should wait more: fast %.2fs vs slow %.2fs", fast.WaitSec, slow.WaitSec)
	}
	// The busy rank classifies its memory-bound MAP correctly.
	if cf := dominantCF(t, slow); cf > 14 {
		t.Errorf("busy rank CFopt = %v, want ≤ 1.4GHz (memory-bound)", cf)
	}
	// The fast rank's daemon survives the noisy profile (no crash, slabs
	// discovered) even though its conclusions are out of scope.
	if fast.Daemon == nil || fast.Daemon.List().Len() == 0 {
		t.Error("fast rank daemon discovered nothing")
	}
}

// dominantCF returns the resolved CFopt ratio of the node's most-hit slab.
func dominantCF(t *testing.T, n NodeResult) freq.Ratio {
	t.Helper()
	if n.Daemon == nil {
		t.Fatal("missing daemon")
	}
	bestHits := 0
	var cf freq.Ratio
	found := false
	for _, node := range n.Daemon.List().Nodes() {
		if node.Hits > bestHits && node.CF.HasOpt() {
			bestHits = node.Hits
			cf = node.CF.OptRatio()
			found = true
		}
	}
	if !found {
		t.Fatal("no resolved slab")
	}
	return cf
}

func TestNetworkExchangeTime(t *testing.T) {
	n := DefaultNetwork()
	if n.ExchangeTime(0) != 0 {
		t.Error("zero payload must cost nothing")
	}
	small := n.ExchangeTime(1)
	big := n.ExchangeTime(1 << 30)
	if small < n.LatencySec || big <= small {
		t.Errorf("exchange time shape wrong: small %g big %g", small, big)
	}
}
