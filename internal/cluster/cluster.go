// Package cluster extends Cuttlefish to MPI+X style distributed programs,
// the deployment §4.6 sketches: one multithreaded process per node
// (OpenMP-style intra-node parallelism), bulk-synchronous exchange between
// supersteps, and one independent Cuttlefish daemon per node profiling only
// its own socket.
//
// The paper is explicit about the scope: Cuttlefish tunes each node's
// frequencies to its local memory access pattern; it does not reclaim
// inter-node slack the way Adagio-style runtimes do. The package models
// that honestly — nodes that finish a superstep early idle at the barrier
// with their frequencies wherever the local daemon put them — and the
// imbalance experiment in this package's tests shows exactly the
// limitation §4.6 names.
package cluster

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/sched"
)

// Network is the inter-node communication model: a latency plus a
// bandwidth term per superstep exchange, paid by every rank (all-to-all
// style collectives dominate the paper's MPI+X motivation).
type Network struct {
	// LatencySec per exchange (software + fabric overhead).
	LatencySec float64
	// BytesPerSec of per-node injection bandwidth.
	BytesPerSec float64
}

// DefaultNetwork is a 100 Gb/s-class fabric.
func DefaultNetwork() Network {
	return Network{LatencySec: 20e-6, BytesPerSec: 12e9}
}

// ExchangeTime returns the barrier-to-barrier communication time for a
// per-rank payload of the given size.
func (n Network) ExchangeTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	t := n.LatencySec
	if n.BytesPerSec > 0 {
		t += bytes / n.BytesPerSec
	}
	return t
}

// App is a bulk-synchronous MPI+X application: for every superstep each
// rank gets a local work-sharing region list, then exchanges a payload.
type App struct {
	Steps int
	// Compute returns rank's regions for the step. Region lists may differ
	// per rank (load imbalance).
	Compute func(rank, step int) []sched.Region
	// ExchangeBytes returns rank's payload at the step boundary.
	ExchangeBytes func(rank, step int) float64
}

// Config describes the cluster. The per-node frequency environment is any
// registered governor; one independent instance attaches to every rank.
type Config struct {
	Nodes   int
	Machine machine.Config
	Network Network
	// Governor names the registered per-node strategy (governor.New).
	Governor string
	// Tuning carries the strategy's per-run parameters (Tinv, warmup, …).
	Tuning governor.Tuning
	Seed   int64
	// Workers bounds how many ranks simulate concurrently between
	// supersteps (each rank is an independent Machine, so they parallelise
	// perfectly); <= 0 means GOMAXPROCS. Per-rank results are independent
	// of this setting.
	Workers int
}

// DefaultConfig is a 4-node cluster of the paper's sockets, one Cuttlefish
// daemon per node.
func DefaultConfig() Config {
	return Config{
		Nodes:    4,
		Machine:  machine.DefaultConfig(),
		Network:  DefaultNetwork(),
		Governor: governor.Cuttlefish,
	}
}

// NodeResult is one rank's outcome.
type NodeResult struct {
	Rank    int
	Joules  float64
	BusySec float64 // compute time
	WaitSec float64 // barrier + communication time
	Daemon  *core.Daemon
}

// Result is a cluster run.
type Result struct {
	Seconds float64 // wall time (all ranks synchronous)
	Joules  float64 // cluster-wide energy
	Nodes   []NodeResult
}

// node is one rank's simulated machine with its attached governor.
type node struct {
	m   *machine.Machine
	att *governor.Attachment
}

// Run executes the application on a fresh cluster and returns the outcome.
func Run(cfg Config, app App) (Result, error) {
	if cfg.Nodes <= 0 {
		return Result{}, fmt.Errorf("cluster: need at least one node, got %d", cfg.Nodes)
	}
	if app.Steps <= 0 || app.Compute == nil {
		return Result{}, fmt.Errorf("cluster: app needs steps and a compute function")
	}
	govName := cfg.Governor
	if govName == "" {
		govName = governor.Cuttlefish
	}
	nodes := make([]*node, 0, cfg.Nodes)
	defer func() {
		for _, n := range nodes {
			n.att.Detach()
			n.m.Close()
		}
	}()
	for i := 0; i < cfg.Nodes; i++ {
		m, err := machine.New(cfg.Machine)
		if err != nil {
			return Result{}, err
		}
		// One independent governor instance per rank: per-node daemons
		// profile only their own socket, the §4.6 deployment.
		g, err := governor.New(govName, cfg.Tuning)
		if err != nil {
			m.Close()
			return Result{}, err
		}
		att, err := g.Attach(m)
		if err != nil {
			m.Close()
			return Result{}, fmt.Errorf("cluster: rank %d: %w", i, err)
		}
		nodes = append(nodes, &node{m: m, att: att})
	}

	results := make([]NodeResult, cfg.Nodes)
	for i := range results {
		results[i] = NodeResult{Rank: i, Daemon: nodes[i].att.Daemon()}
	}

	// Ranks are independent machines, so each superstep's compute and
	// barrier-wait phases fan out on the shared runner pool — nodes step in
	// parallel between supersteps and re-synchronise at each barrier.
	pool := runner.Pool{Workers: cfg.Workers}
	ctx := context.Background()
	for step := 0; step < app.Steps; step++ {
		// Local compute: each rank runs its region list to completion on
		// its own machine; simulated clocks advance independently here and
		// re-synchronise at the barrier below.
		err := pool.ForEach(ctx, len(nodes), func(_ context.Context, rank int) error {
			n := nodes[rank]
			regions := app.Compute(rank, step)
			start := n.m.Now()
			if len(regions) > 0 {
				src := sched.NewWorkSharing(cfg.Machine.Cores, sched.StaticProgram(regions, 1), cfg.Seed+int64(rank*7919+step))
				n.m.SetSource(src)
				n.m.Run(3600)
				if !n.m.Finished() {
					return fmt.Errorf("cluster: rank %d wedged in step %d", rank, step)
				}
			}
			results[rank].BusySec += n.m.Now() - start
			return nil
		})
		if err != nil {
			return Result{}, err
		}
		barrier := 0.0
		for _, n := range nodes {
			if n.m.Now() > barrier {
				barrier = n.m.Now()
			}
		}
		// Exchange: the barrier releases when the slowest rank's payload
		// has moved.
		comm := 0.0
		if app.ExchangeBytes != nil {
			for rank := range nodes {
				if t := cfg.Network.ExchangeTime(app.ExchangeBytes(rank, step)); t > comm {
					comm = t
				}
			}
		}
		barrier += comm
		// Idle-spin every rank to the barrier: no workload, but the clock,
		// power model and daemon keep running — early finishers burn idle
		// energy at whatever frequencies their daemon chose, the §4.6
		// limitation.
		err = pool.ForEach(ctx, len(nodes), func(_ context.Context, rank int) error {
			n := nodes[rank]
			wait := barrier - 1e-12 - n.m.Now()
			if wait <= 0 {
				return nil
			}
			results[rank].WaitSec += barrier - n.m.Now()
			n.m.SetSource(nil)
			n.m.Run(wait)
			return nil
		})
		if err != nil {
			return Result{}, err
		}
	}

	var res Result
	var detachErrs []error
	for rank, n := range nodes {
		if err := n.att.Detach(); err != nil {
			detachErrs = append(detachErrs, fmt.Errorf("cluster: rank %d: %w", rank, err))
		}
		results[rank].Joules = n.m.TotalEnergy()
		res.Joules += results[rank].Joules
		if n.m.Now() > res.Seconds {
			res.Seconds = n.m.Now()
		}
	}
	if err := errors.Join(detachErrs...); err != nil {
		return Result{}, err
	}
	res.Nodes = results
	return res, nil
}
