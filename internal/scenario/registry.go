// Package scenario is the pluggable workload registry: every workload
// the repository can simulate — the ten Table 1 benchmarks, the built-in
// synthetic scenarios, and user-authored JSON phase programs — is one
// registered Entry behind a single Build interface, exactly the way
// internal/governor makes frequency-control strategies pluggable.
//
// The registry decouples what runs (a workload.Source generator) from
// how it is named and served: the experiment harnesses, the service
// layer's RunSpec hashing, the sweep orchestrator's axes and both CLIs
// resolve workloads only through this registry, so opening a new
// scenario is one Register call (or one JSON file), never another
// hand-wired benchmark list.
package scenario

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/workload"
)

// Kind says where an entry came from; listings group by it.
type Kind string

const (
	// KindBench marks the Table 1 benchmarks internal/bench registers.
	KindBench Kind = "bench"
	// KindSynthetic marks the built-in DSL-generated scenarios.
	KindSynthetic Kind = "synthetic"
)

// Params parametrise scenario construction; they mirror bench.Params so
// any registered workload builds from the same run options.
type Params struct {
	// Cores is the simulated core count the source will feed.
	Cores int
	// Scale multiplies the instruction budget (1.0 = nominal length).
	Scale float64
	// Seed drives every random choice; a scenario is a pure function of
	// (its definition, Params), so equal Params reproduce equal runs.
	Seed int64
	// Model names the task runtime for task-DAG decompositions
	// ("openmp" or "hclib"); work-sharing scenarios ignore it.
	Model string
}

// Entry is one registered workload.
type Entry struct {
	// Name is the registry name the workload answers to.
	Name string
	// Kind groups the entry in listings.
	Kind Kind
	// Description is the one-line listing text.
	Description string
	// NominalSeconds approximates the Default-environment wall time at
	// Scale 1; harnesses size their simulation deadline from it.
	NominalSeconds float64
	// Build instantiates the workload source for one run.
	Build func(p Params) (workload.Source, error)
	// Payload carries registrar-private data opaquely (internal/bench
	// stores its Spec here so bench.Get stays a thin view).
	Payload any
	// Def is the normalized DSL definition behind the entry, when the
	// workload is a phase program (built-in synthetics, user scenario
	// files). It is what makes an entry memoizable: the prefix-snapshot
	// tier derives its region chain from the definition. Entries built
	// any other way (benchmarks with stateful generators, composites
	// like corun-mix) leave it nil and always simulate from t=0.
	Def *Definition
}

// Info is the serializable face of an entry, served at /v1/scenarios.
type Info struct {
	Name        string `json:"name"`
	Kind        Kind   `json:"kind"`
	Description string `json:"description,omitempty"`
}

var (
	regMu    sync.RWMutex
	registry []Entry
	byName   = map[string]int{}
)

// Register adds a workload to the registry, preserving registration
// order (bench registers in Table 1 order, and listings keep it).
// Duplicate names are rejected so two packages cannot silently shadow
// each other's workloads.
func Register(e Entry) error {
	if e.Name == "" || e.Build == nil {
		return errors.New("scenario: Register needs a name and a builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := byName[e.Name]; dup {
		return fmt.Errorf("scenario: %q already registered", e.Name)
	}
	byName[e.Name] = len(registry)
	registry = append(registry, e)
	return nil
}

// MustRegister is Register for init-time built-ins.
func MustRegister(e Entry) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

// Get looks a workload up by name.
func Get(name string) (Entry, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	i, ok := byName[name]
	if !ok {
		return Entry{}, false
	}
	return registry[i], true
}

// Exists reports whether name is registered, without building anything.
// Request validators use it to reject typos before simulation time.
func Exists(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := byName[name]
	return ok
}

// Names returns every registered name in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name
	}
	return out
}

// NamesOf returns the registered names of one kind, in registration
// order; bench.Names() is this for KindBench.
func NamesOf(kind Kind) []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []string
	for _, e := range registry {
		if e.Kind == kind {
			out = append(out, e.Name)
		}
	}
	return out
}

// List snapshots every entry's Info in registration order.
func List() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, len(registry))
	for i, e := range registry {
		out[i] = Info{Name: e.Name, Kind: e.Kind, Description: e.Description}
	}
	return out
}
