package scenario

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// validBase is a well-formed two-phase definition the adversarial cases
// mutate one knob at a time.
func validBase() Definition {
	return Definition{
		Name:          "adversarial-base",
		Decomposition: WorkSharing,
		Iterations:    2,
		Phases: []PhaseDef{
			{Name: "a", Instructions: 2e9, MissPerInstr: 0.01, IPC: 1.5},
			{Name: "b", Instructions: 1e9, MissPerInstr: 0.05, IPC: 0.9, RemoteFrac: 0.3},
		},
	}
}

// TestValidateAdversarialInputs is the guard the scenario fuzzer leans
// on: every malformed definition the generator could conceivably emit —
// zero phases, negative or non-finite durations, out-of-range fractions,
// unknown decompositions — must be rejected with an ErrBadDefinition
// error naming the offending knob, never accepted or passed through as
// NaN into the simulator.
func TestValidateAdversarialInputs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Definition)
		want   string // substring the error must mention
	}{
		{"zero phases", func(d *Definition) { d.Phases = nil }, "at least one phase"},
		{"empty phase slice", func(d *Definition) { d.Phases = []PhaseDef{} }, "at least one phase"},
		{"unknown decomposition", func(d *Definition) { d.Decomposition = "map-reduce" }, "decomposition"},
		{"negative iterations", func(d *Definition) { d.Iterations = -3 }, "iterations"},
		{"negative instructions", func(d *Definition) { d.Phases[1].Instructions = -1e9 }, "instructions"},
		{"NaN instructions", func(d *Definition) { d.Phases[0].Instructions = math.NaN() }, "instructions"},
		{"infinite instructions", func(d *Definition) { d.Phases[0].Instructions = math.Inf(1) }, "instructions"},
		{"negative ipc", func(d *Definition) { d.Phases[0].IPC = -2 }, "ipc"},
		{"NaN ipc", func(d *Definition) { d.Phases[1].IPC = math.NaN() }, "ipc"},
		{"negative miss density", func(d *Definition) { d.Phases[0].MissPerInstr = -0.01 }, "miss_per_instr"},
		{"NaN miss density", func(d *Definition) { d.Phases[0].MissPerInstr = math.NaN() }, "miss_per_instr"},
		{"exposure below range", func(d *Definition) { d.Phases[0].Exposure = ptr(-0.2) }, "exposure"},
		{"exposure above range", func(d *Definition) { d.Phases[0].Exposure = ptr(1.01) }, "exposure"},
		{"NaN exposure", func(d *Definition) { d.Phases[0].Exposure = ptr(math.NaN()) }, "exposure"},
		{"remote_frac above range", func(d *Definition) { d.Phases[1].RemoteFrac = 1.5 }, "remote_frac"},
		{"NaN remote_frac", func(d *Definition) { d.Phases[1].RemoteFrac = math.NaN() }, "remote_frac"},
		{"negative chunks", func(d *Definition) { d.Phases[0].ChunksPerCore = -4 }, "chunks_per_core"},
		{"jitter_frac at 1", func(d *Definition) { d.Phases[0].JitterFrac = 1 }, "jitter_frac"},
		{"NaN jitter_frac", func(d *Definition) { d.Phases[0].JitterFrac = math.NaN() }, "jitter_frac"},
		{"negative miss_jitter", func(d *Definition) { d.Phases[0].MissJitter = -0.1 }, "miss_jitter"},
		{"NaN miss_jitter", func(d *Definition) { d.Phases[0].MissJitter = math.NaN() }, "miss_jitter"},
		{"negative repeat", func(d *Definition) { d.Phases[1].Repeat = -2 }, "repeat"},
	}
	for _, tc := range cases {
		d := validBase()
		tc.mutate(&d)
		err := d.Normalized().Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrBadDefinition) {
			t.Errorf("%s: error %v does not wrap ErrBadDefinition", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if err := validBase().Normalized().Validate(); err != nil {
		t.Fatalf("well-formed base rejected: %v", err)
	}
}

// TestValidateRejectsUnnormalizedZeroes pins that Validate is strict on
// the raw (un-normalized) form too: zero iterations / chunks / repeat are
// "unset" only to Normalized — handing Validate a definition that skipped
// normalization must fail, not silently treat zeroes as defaults.
func TestValidateRejectsUnnormalizedZeroes(t *testing.T) {
	d := validBase()
	d.Iterations = 0
	if err := d.Validate(); err == nil {
		t.Error("zero iterations accepted without normalization")
	}
	d = validBase()
	d.Phases[0].ChunksPerCore = 0
	if err := d.Validate(); err == nil {
		t.Error("zero chunks_per_core accepted without normalization")
	}
	d = validBase()
	d.Phases[0].Repeat = 0
	if err := d.Validate(); err == nil {
		t.Error("zero repeat accepted without normalization")
	}
}

// TestNormalizedIsIdempotent: Normalized∘Normalized must be Normalized —
// the generator normalizes once and hashes the result, so a second pass
// changing anything would split one scenario across two content hashes.
func TestNormalizedIsIdempotent(t *testing.T) {
	d := validBase()
	d.Phases[0].Exposure = ptr(0.25)
	once := d.Normalized()
	twice := once.Normalized()
	if !reflect.DeepEqual(once, twice) {
		t.Errorf("Normalized not idempotent:\nonce:  %+v\ntwice: %+v", once, twice)
	}
}

// TestDefinitionJSONRoundTrip: Marshal → ParseDefinition → Normalized is
// the identity on normalized definitions, including the explicit-zero
// exposure that distinguishes "perfectly prefetched" from "unset". The
// fuzzer's corpus persistence depends on this round trip being lossless.
func TestDefinitionJSONRoundTrip(t *testing.T) {
	d := validBase()
	d.Phases[0].Exposure = ptr(0.0) // prefetched, not unset
	d.Phases[1].MissJitter = 0.004
	norm := d.Normalized()
	raw, err := json.Marshal(norm)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDefinition(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Normalized(); !reflect.DeepEqual(got, norm) {
		t.Errorf("round trip changed the definition:\nbefore: %+v\nafter:  %+v", norm, got)
	}
}
