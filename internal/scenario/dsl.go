package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sched"
	"repro/internal/workload"
)

// ErrBadDefinition tags definition validation failures so callers (the
// service layer, the CLIs) can map them to "client's fault" responses.
var ErrBadDefinition = errors.New("scenario: invalid definition")

// Decomposition names of the DSL. Work-sharing compiles to the
// OpenMP-style static-chunk runtime (bit-deterministic across engine
// worker counts); task-dag compiles to the work-stealing runtime (its
// schedule, like the bench task variants, is worker-count dependent).
const (
	WorkSharing = "work-sharing"
	TaskDAG     = "task-dag"
)

// Definition is a declarative workload: an ordered phase program that
// compiles to a workload.Source. It is the JSON face of the scenario
// registry — `cuttlefish -scenario file.json`, the `scenario_def` field
// of a service RunSpec and the built-in synthetics all speak it.
//
// A definition is a pure value: its normalized form serializes
// canonically (fixed struct field order, every default spelled out), so
// embedding one in a RunSpec keeps the spec's content hash stable across
// spelling variants of the same program.
type Definition struct {
	// Name labels the scenario in reports and registry listings.
	Name string `json:"name"`
	// Description is the one-line listing text. It is part of the
	// canonical bytes verbatim (struct-level json.Marshal), needs no
	// defaulting, and no harness consults it.
	Description string `json:"description,omitempty"` //cfvet:allow(hashfield) documentation-only; hashed verbatim via struct marshal, deliberately untouched by Normalized/Validate
	// Decomposition is "work-sharing" (default) or "task-dag".
	Decomposition string `json:"decomposition,omitempty"`
	// Iterations repeats the whole phase list in sequence (default 1) —
	// the outer time loop of an iterative application.
	Iterations int `json:"iterations,omitempty"`
	// Phases run in order within each iteration.
	Phases []PhaseDef `json:"phases"`
}

// PhaseDef is one program phase: a homogeneous region of work the
// daemon can observe as one TIPI regime. It compiles to workload.Phase
// segments — Count work units that each look like the phase's segment.
type PhaseDef struct {
	// Name labels the phase (optional, documentation only — it is still
	// part of the canonical bytes, like a benchmark's name).
	Name string `json:"name,omitempty"`
	// Instructions is the phase's total instruction budget at Scale 1,
	// split evenly over its chunks (then jittered).
	Instructions float64 `json:"instructions"`
	// MissPerInstr is the LLC-miss density TOR_INSERT observes (TIPI).
	MissPerInstr float64 `json:"miss_per_instr"`
	// IPC is instructions retired per core cycle when not stalled.
	IPC float64 `json:"ipc"`
	// RemoteFrac is the NUMA-remote share of misses, in [0, 1].
	RemoteFrac float64 `json:"remote_frac,omitempty"`
	// Exposure is the stalled fraction of miss latency, in [0, 1].
	// Omitted means fully exposed (1); an explicit 0 means perfectly
	// prefetched — misses cost no stall but still count toward TIPI
	// (workload.ExposureNone underneath).
	Exposure *float64 `json:"exposure,omitempty"`
	// ChunksPerCore is the decomposition granularity: chunks (or DAG
	// leaves) per simulated core per repeat (default 16).
	ChunksPerCore int `json:"chunks_per_core,omitempty"`
	// JitterFrac perturbs each chunk's instruction count by a uniform
	// ±JitterFrac factor — load imbalance (default 0).
	JitterFrac float64 `json:"jitter_frac,omitempty"`
	// MissJitter wobbles MissPerInstr by a uniform ±MissJitter per
	// repeat, the per-iteration TIPI drift real applications show.
	MissJitter float64 `json:"miss_jitter,omitempty"`
	// Repeat runs the phase this many times back to back per iteration
	// (default 1).
	Repeat int `json:"repeat,omitempty"`
}

// ParseDefinition decodes a JSON definition, rejecting unknown fields —
// a typoed knob silently defaulting would change the run (and its
// content hash) without anyone noticing.
func ParseDefinition(data []byte) (Definition, error) {
	var d Definition
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return Definition{}, fmt.Errorf("%w: %v", ErrBadDefinition, err)
	}
	return d, nil
}

// Normalized returns the definition with every defaulted field made
// explicit, so two spellings of the same program compare — and hash —
// equal. It does not validate; call Validate on the result.
func (d Definition) Normalized() Definition {
	if d.Decomposition == "" {
		d.Decomposition = WorkSharing
	}
	if d.Iterations == 0 {
		d.Iterations = 1
	}
	phases := make([]PhaseDef, len(d.Phases))
	copy(phases, d.Phases)
	for i := range phases {
		if phases[i].ChunksPerCore == 0 {
			phases[i].ChunksPerCore = 16
		}
		if phases[i].Repeat == 0 {
			phases[i].Repeat = 1
		}
		if phases[i].Exposure == nil {
			one := 1.0
			phases[i].Exposure = &one
		}
	}
	d.Phases = phases
	return d
}

// finite reports whether v is a usable real number. Validate applies it
// to every float knob: NaN would sail through one-sided comparisons like
// `Instructions <= 0` (NaN compares false against everything) and poison
// the simulation several layers down, where the failure is no longer
// attributable to the input.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Validate checks a normalized definition.
func (d Definition) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("%w: a scenario needs a name", ErrBadDefinition)
	}
	if d.Decomposition != WorkSharing && d.Decomposition != TaskDAG {
		return fmt.Errorf("%w: unknown decomposition %q (want %s or %s)", ErrBadDefinition, d.Decomposition, WorkSharing, TaskDAG)
	}
	if d.Iterations < 1 {
		return fmt.Errorf("%w: iterations must be positive, got %d", ErrBadDefinition, d.Iterations)
	}
	if len(d.Phases) == 0 {
		return fmt.Errorf("%w: a scenario needs at least one phase", ErrBadDefinition)
	}
	for i, p := range d.Phases {
		where := fmt.Sprintf("phase %d", i)
		if p.Name != "" {
			where = fmt.Sprintf("phase %d (%s)", i, p.Name)
		}
		switch {
		case !finite(p.Instructions) || p.Instructions <= 0:
			return fmt.Errorf("%w: %s: instructions must be positive and finite, got %g", ErrBadDefinition, where, p.Instructions)
		case !finite(p.IPC) || p.IPC <= 0:
			return fmt.Errorf("%w: %s: ipc must be positive and finite, got %g", ErrBadDefinition, where, p.IPC)
		case !finite(p.MissPerInstr) || p.MissPerInstr < 0:
			return fmt.Errorf("%w: %s: miss_per_instr must be non-negative and finite, got %g", ErrBadDefinition, where, p.MissPerInstr)
		case !(p.RemoteFrac >= 0 && p.RemoteFrac <= 1):
			return fmt.Errorf("%w: %s: remote_frac must lie in [0, 1], got %g", ErrBadDefinition, where, p.RemoteFrac)
		case p.Exposure != nil && !(*p.Exposure >= 0 && *p.Exposure <= 1):
			return fmt.Errorf("%w: %s: exposure must lie in [0, 1], got %g", ErrBadDefinition, where, *p.Exposure)
		case p.ChunksPerCore < 1:
			return fmt.Errorf("%w: %s: chunks_per_core must be positive, got %d", ErrBadDefinition, where, p.ChunksPerCore)
		case !(p.JitterFrac >= 0 && p.JitterFrac < 1):
			return fmt.Errorf("%w: %s: jitter_frac must lie in [0, 1), got %g", ErrBadDefinition, where, p.JitterFrac)
		case !finite(p.MissJitter) || p.MissJitter < 0:
			return fmt.Errorf("%w: %s: miss_jitter must be non-negative and finite, got %g", ErrBadDefinition, where, p.MissJitter)
		case p.Repeat < 1:
			return fmt.Errorf("%w: %s: repeat must be positive, got %d", ErrBadDefinition, where, p.Repeat)
		}
	}
	return nil
}

// segment compiles the phase's densities (not its instruction budget).
// An explicit exposure of 0 becomes the ExposureNone sentinel: the
// phase's misses are perfectly prefetched, not "unset".
func (p PhaseDef) segment() workload.Segment {
	exp := 1.0
	if p.Exposure != nil {
		exp = *p.Exposure
	}
	if exp == 0 {
		exp = workload.ExposureNone
	}
	return workload.Segment{
		MissPerInstr: p.MissPerInstr,
		IPC:          p.IPC,
		RemoteFrac:   p.RemoteFrac,
		Exposure:     exp,
	}
}

// WorkloadPhases compiles the definition to workload.Phase values under
// the given run parameters — one Phase per definition phase, the
// segment sized per chunk exactly as Build will execute it (Scale
// included, jitter excluded). It is the inspectable compiled form:
// workload.TotalInstructions over the result equals the instruction
// budget the built source retires.
func (d Definition) WorkloadPhases(p Params) []workload.Phase {
	n := d.Normalized()
	scale := p.Scale
	if scale <= 0 {
		scale = 1
	}
	cores := p.Cores
	if cores <= 0 {
		cores = 1
	}
	out := make([]workload.Phase, len(n.Phases))
	for i, ph := range n.Phases {
		count := ph.ChunksPerCore * cores * ph.Repeat * n.Iterations
		seg := ph.segment()
		seg.Instructions = ph.Instructions * scale / float64(count)
		out[i] = workload.Phase{Seg: seg, Count: count}
	}
	return out
}

// missStallCycles approximates the exposed core cycles one LLC miss
// costs at nominal frequency; the nominal-time estimate uses it.
const missStallCycles = 300

// nominalClockHz is the grid-maximum core clock the estimate assumes.
const nominalClockHz = 2.3e9

// EstimateSeconds approximates the Default-environment wall time of the
// definition at Scale 1 on the given core count: per-phase cycles are
// instructions × (1/IPC + exposed-miss stall), summed and divided across
// cores at the nominal clock. Harnesses use it only to size simulation
// deadlines, with generous headroom on top.
func (d Definition) EstimateSeconds(cores int) float64 {
	if cores <= 0 {
		cores = 1
	}
	n := d.Normalized()
	var cycles float64
	for _, p := range n.Phases {
		seg := p.segment()
		cpi := 1/p.IPC + p.MissPerInstr*seg.StallFraction()*missStallCycles
		cycles += p.Instructions * cpi
	}
	return cycles / nominalClockHz / float64(cores)
}

// jitterDomain separates the DSL's jitter stream from the work-sharing
// runtime's chunk jitter, which hashes the same (seed, step, index)
// triples through the same sched.IndexJitter. Without the tag, a
// phase's per-repeat TIPI wobble would be exactly the uniform draw
// sizing one of the region's chunks — two documented-independent
// perturbations in perfect correlation.
const jitterDomain = 0x5ce4a6d1c3b2f897

// jitter returns a uniform value in [0, 1) derived from the
// domain-tagged seed and two indices. Being a pure function (not a
// sequential draw) keeps every perturbation stable no matter which core
// or engine worker asks first, which is what lets work-sharing
// scenarios reproduce bit-identically across engine worker counts.
func jitter(seed int64, a, b int) float64 {
	return sched.IndexJitter(seed^jitterDomain, a, b)
}

// step is one flattened program step: (phase, repeat within the phase).
type step struct {
	phase  int
	repeat int
}

// program flattens the normalized definition's per-iteration schedule:
// phases in order, each repeated Repeat times. The full run is
// Iterations passes over it.
func (d Definition) program() []step {
	var prog []step
	for i, p := range d.Phases {
		for r := 0; r < p.Repeat; r++ {
			prog = append(prog, step{phase: i, repeat: r})
		}
	}
	return prog
}

// Build compiles the definition into a workload source for one run. The
// result is a pure function of (definition, Params): all jitter derives
// from Params.Seed through pure index hashing.
func (d Definition) Build(p Params) (workload.Source, error) {
	n := d.Normalized()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if p.Cores <= 0 {
		return nil, fmt.Errorf("scenario: cores must be positive, got %d", p.Cores)
	}
	if p.Scale <= 0 {
		return nil, fmt.Errorf("scenario: scale must be positive, got %g", p.Scale)
	}
	if n.Decomposition == TaskDAG {
		return n.buildTaskDAG(p), nil
	}
	return n.buildWorkSharing(p), nil
}

// regionFor sizes one program step's parallel region.
func (d Definition) regionFor(p Params, globalStep int, st step) sched.Region {
	ph := d.Phases[st.phase]
	chunks := ph.ChunksPerCore * p.Cores
	seg := ph.segment()
	seg.Instructions = ph.Instructions * p.Scale / float64(d.Iterations*ph.Repeat*chunks)
	if ph.MissJitter > 0 {
		seg.MissPerInstr += (jitter(p.Seed, globalStep, st.phase)*2 - 1) * ph.MissJitter
		if seg.MissPerInstr < 0 {
			seg.MissPerInstr = 0
		}
	}
	return sched.Region{Seg: seg, Chunks: chunks, JitterFrac: ph.JitterFrac}
}

// CompiledRegions materializes the full work-sharing region schedule for
// one run: regions[s] is exactly the region buildWorkSharing's generator
// yields at step s, and phases[s] is the definition phase it came from.
// The prefix-snapshot tier hashes this list to key its snapshots, so it
// must stay byte-for-byte the schedule the built source executes — both
// paths size regions through the same regionFor.
//
// Only work-sharing definitions compile to a region schedule; the
// work-stealing runtime's interleaving depends on engine worker count,
// so task-DAG definitions have no worker-independent prefix to key on.
func (d Definition) CompiledRegions(p Params) ([]sched.Region, []int, error) {
	n := d.Normalized()
	if err := n.Validate(); err != nil {
		return nil, nil, err
	}
	if n.Decomposition != WorkSharing {
		return nil, nil, fmt.Errorf("scenario: %s definitions have no deterministic region schedule", n.Decomposition)
	}
	if p.Cores <= 0 {
		return nil, nil, fmt.Errorf("scenario: cores must be positive, got %d", p.Cores)
	}
	if p.Scale <= 0 {
		return nil, nil, fmt.Errorf("scenario: scale must be positive, got %g", p.Scale)
	}
	prog := n.program()
	steps := len(prog) * n.Iterations
	regions := make([]sched.Region, steps)
	phases := make([]int, steps)
	for s := 0; s < steps; s++ {
		st := prog[s%len(prog)]
		regions[s] = n.regionFor(p, s, st)
		phases[s] = st.phase
	}
	return regions, phases, nil
}

// buildWorkSharing compiles to the OpenMP-style runtime: one barrier-
// separated region per program step.
func (d Definition) buildWorkSharing(p Params) workload.Source {
	prog := d.program()
	steps := len(prog) * d.Iterations
	gen := func(s int) (sched.Region, bool) {
		if s >= steps {
			return sched.Region{}, false
		}
		return d.regionFor(p, s, prog[s%len(prog)]), true
	}
	return sched.NewWorkSharing(p.Cores, gen, p.Seed)
}

// stealOverheadInstr maps the model name onto the shared per-model
// steal-path costs (defined in internal/sched next to the runtime that
// charges them, so bench task builders and DSL task DAGs stay
// calibrated identically).
func stealOverheadInstr(model string) float64 {
	if model == "hclib" {
		return sched.StealOverheadHClib
	}
	return sched.StealOverheadOpenMP
}

// buildTaskDAG compiles to the work-stealing runtime: one finish scope
// per program step, a regular binary task tree over the step's chunks.
func (d Definition) buildTaskDAG(p Params) workload.Source {
	prog := d.program()
	rounds := len(prog) * d.Iterations
	gen := func(round int) ([]sched.Task, bool) {
		if round >= rounds {
			return nil, false
		}
		region := d.regionFor(p, round, prog[round%len(prog)])
		spawn := workload.Segment{Instructions: 2000, MissPerInstr: 0.002, IPC: 1.5, RemoteFrac: region.Seg.RemoteFrac}
		return []sched.Task{dagOver(region, spawn, p.Seed, round, 0, region.Chunks)}, true
	}
	ws := sched.NewWorkStealing(p.Cores, gen, p.Seed)
	ws.StealOverheadInstr = stealOverheadInstr(p.Model)
	return ws
}

// dagOver builds a regular binary task tree whose leaves carry the
// region's chunks [lo, hi); leaf instruction counts take the region's
// jitter through the same pure hash the work-sharing path uses, so the
// DAG's work distribution depends only on (definition, seed), never on
// expansion order.
func dagOver(region sched.Region, spawn workload.Segment, seed int64, round, lo, hi int) sched.Task {
	n := hi - lo
	if n <= 1 {
		seg := region.Seg
		if j := region.JitterFrac; j > 0 {
			seg.Instructions *= 1 + (jitter(seed, round, lo)*2-1)*j
		}
		return sched.Task{Seg: seg}
	}
	mid := lo + n/2
	return sched.Task{
		Seg: spawn,
		Expand: func(*rand.Rand) []sched.Task {
			return []sched.Task{
				dagOver(region, spawn, seed, round, lo, mid),
				dagOver(region, spawn, seed, round, mid, hi),
			}
		},
	}
}
