// Built-in synthetic scenarios: the workload regimes the paper's ten
// benchmarks only partially cover, expressed as phase programs through
// the same DSL user files use. Each opens one axis of scenario diversity
// — pure compute, bandwidth saturation, bursty phase alternation, ramped
// TIPI drift, NUMA-remote pressure and co-run interference — with fully
// deterministic seeded generators, so every one of them is servable and
// sweepable exactly like a Table 1 benchmark.
package scenario

import (
	"fmt"

	"repro/internal/workload"
)

func ptr(v float64) *float64 { return &v }

// computeBoundDef is near-zero TIPI at high IPC: the UTS end of Table 1
// without its task-tree imbalance. The daemon should park uncore low
// and keep cores at the maximum.
func computeBoundDef() Definition {
	return Definition{
		Name:        "compute-bound",
		Description: "high-IPC arithmetic, near-zero TIPI; uncore should idle",
		Iterations:  50,
		Phases: []PhaseDef{{
			Name:         "crunch",
			Instructions: 2.0e12,
			MissPerInstr: 0.0008,
			IPC:          2.2,
			RemoteFrac:   0.1,
			JitterFrac:   0.05,
		}},
	}
}

// memoryBoundDef saturates the memory subsystem: TIPI past the AMG end
// of Table 1, most latency exposed. Core frequency barely matters;
// uncore is everything.
func memoryBoundDef() Definition {
	return Definition{
		Name:        "memory-bound",
		Description: "bandwidth-saturating streaming, TIPI above the Table 1 range",
		Iterations:  40,
		Phases: []PhaseDef{{
			Name:         "stream",
			Instructions: 2.0e11,
			MissPerInstr: 0.09,
			IPC:          0.9,
			RemoteFrac:   0.35,
			Exposure:     ptr(0.5),
			MissJitter:   0.004,
			JitterFrac:   0.05,
		}},
	}
}

// burstyDef alternates long compute stretches with short memory bursts
// each iteration — the regime where exploration cost matters most,
// because the frequent slab changes every few Tinv samples.
func burstyDef() Definition {
	return Definition{
		Name:        "bursty",
		Description: "compute stretches punctuated by memory bursts each iteration",
		Iterations:  60,
		Phases: []PhaseDef{
			{
				Name:         "compute",
				Instructions: 8.0e11,
				MissPerInstr: 0.001,
				IPC:          2.1,
				RemoteFrac:   0.1,
				JitterFrac:   0.05,
			},
			{
				Name:         "burst",
				Instructions: 1.0e11,
				MissPerInstr: 0.12,
				IPC:          1.0,
				RemoteFrac:   0.35,
				Exposure:     ptr(0.8),
				MissJitter:   0.006,
			},
		},
	}
}

// rampDef walks the TIPI range bottom to top in five long steps — a
// slow phase drift rather than alternation, stressing the daemon's
// slab-table reuse as each regime is revisited never.
func rampDef() Definition {
	steps := []struct {
		miss float64
		ipc  float64
	}{
		{0.004, 2.2}, {0.020, 1.8}, {0.045, 1.4}, {0.070, 1.1}, {0.100, 0.9},
	}
	d := Definition{
		Name:        "ramp",
		Description: "TIPI ramps through five regimes, low to high, one long stretch each",
	}
	for i, s := range steps {
		d.Phases = append(d.Phases, PhaseDef{
			Name:         fmt.Sprintf("step%d", i+1),
			Instructions: 1.2e11,
			MissPerInstr: s.miss,
			IPC:          s.ipc,
			RemoteFrac:   0.25,
			Exposure:     ptr(0.7),
			Repeat:       30,
			MissJitter:   0.002,
		})
	}
	return d
}

// numaRemoteDef sends most misses to the remote socket — the
// numactl --interleave pathology taken to its extreme, where TOR
// occupancy per miss (and hence the paper's latency model) is worst.
func numaRemoteDef() Definition {
	return Definition{
		Name:        "numa-remote",
		Description: "remote-socket-heavy misses; worst-case TOR occupancy per miss",
		Iterations:  40,
		Phases: []PhaseDef{{
			Name:         "remote-chase",
			Instructions: 2.5e11,
			MissPerInstr: 0.07,
			IPC:          1.2,
			RemoteFrac:   0.9,
			Exposure:     ptr(0.7),
			MissJitter:   0.003,
			JitterFrac:   0.05,
		}},
	}
}

// multiphaseDef cycles three distinct regimes per iteration — the
// stencil sweep / residual reduction / pointer update structure of a
// real multi-kernel application, each phase its own TIPI slab.
func multiphaseDef() Definition {
	return Definition{
		Name:        "multiphase",
		Description: "three alternating kernels per iteration, one TIPI slab each",
		Iterations:  80,
		Phases: []PhaseDef{
			{
				Name:         "sweep",
				Instructions: 6.0e11,
				MissPerInstr: 0.066,
				IPC:          2.0,
				RemoteFrac:   0.35,
				Exposure:     ptr(0.6),
				MissJitter:   0.004,
				JitterFrac:   0.05,
			},
			{
				Name:         "reduce",
				Instructions: 0.6e11,
				MissPerInstr: 0.014,
				IPC:          1.2,
				RemoteFrac:   0.35,
				Exposure:     ptr(0.4),
			},
			{
				Name:         "update",
				Instructions: 1.2e11,
				MissPerInstr: 0.15,
				IPC:          1.1,
				RemoteFrac:   0.35,
				Exposure:     ptr(0.9),
				MissJitter:   0.006,
			},
		},
	}
}

// burstyTasksDef is the bursty program under the task-DAG decomposition
// — same phase budgets, executed as binary task trees on the
// work-stealing runtime, so the scenario axis also exercises the
// paper's second programming model.
func burstyTasksDef() Definition {
	d := burstyDef()
	d.Name = "bursty-tasks"
	d.Description = "the bursty program as binary task DAGs on the stealing runtime"
	d.Decomposition = TaskDAG
	return d
}

// registerDef wires one DSL definition into the registry.
func registerDef(def Definition) {
	norm := def.Normalized()
	if err := norm.Validate(); err != nil {
		panic(err)
	}
	MustRegister(Entry{
		Name:           norm.Name,
		Kind:           KindSynthetic,
		Description:    norm.Description,
		NominalSeconds: norm.EstimateSeconds(20),
		Build:          norm.Build,
		Def:            &norm,
	})
}

// corunSeedTag decorrelates corun-mix's compute component from its
// memory component without landing on any seed the Seed+rep schedule
// will visit.
const corunSeedTag = 0x2b7e151628aed2a5

// corunCores splits a socket for the co-run mix: the memory component
// gets the lower half of the cores, the compute component the rest.
func corunCores(total int) (mem, compute int, err error) {
	if total < 2 {
		return 0, 0, fmt.Errorf("scenario: corun-mix needs at least 2 cores, got %d", total)
	}
	return total / 2, total - total/2, nil
}

func init() {
	registerDef(computeBoundDef())
	registerDef(memoryBoundDef())
	registerDef(burstyDef())
	registerDef(rampDef())
	registerDef(numaRemoteDef())
	registerDef(multiphaseDef())
	registerDef(burstyTasksDef())

	// corun-mix is the one built-in the DSL cannot express alone: two
	// phase programs co-running on one socket through a static core
	// partition (the paper's future-work scenario). The daemon observes
	// the socket-wide blend of both components' TIPI and must pick one
	// frequency pair for the mix.
	memDef, cpuDef := memoryBoundDef().Normalized(), computeBoundDef().Normalized()
	MustRegister(Entry{
		Name:        "corun-mix",
		Kind:        KindSynthetic,
		Description: "memory-bound and compute-bound co-running on one partitioned socket",
		// The components run concurrently on half a socket each; the mix
		// lasts about as long as its slower member on half the cores.
		NominalSeconds: maxf(memDef.EstimateSeconds(10), cpuDef.EstimateSeconds(10)),
		Build: func(p Params) (workload.Source, error) {
			memCores, cpuCores, err := corunCores(p.Cores)
			if err != nil {
				return nil, err
			}
			memSrc, err := memDef.Build(Params{Cores: memCores, Scale: p.Scale, Seed: p.Seed, Model: p.Model})
			if err != nil {
				return nil, err
			}
			// Decorrelate the components' jitter streams with a fixed tag
			// (the mix stays a pure function of the seed). A small additive
			// offset would collide with the rep-seed schedule Seed+r: rep
			// r's compute half would replay rep r+1's memory half draw for
			// draw, cross-correlating "independent" repetitions.
			cpuSrc, err := cpuDef.Build(Params{Cores: cpuCores, Scale: p.Scale, Seed: p.Seed ^ corunSeedTag, Model: p.Model})
			if err != nil {
				return nil, err
			}
			part := workload.NewPartition()
			if err := part.Assign(memSrc, 0, memCores); err != nil {
				return nil, err
			}
			if err := part.Assign(cpuSrc, memCores, memCores+cpuCores); err != nil {
				return nil, err
			}
			return part, nil
		},
	})
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
