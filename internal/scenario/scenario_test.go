package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestRegisterValidation(t *testing.T) {
	if err := Register(Entry{Name: "", Build: nil}); err == nil {
		t.Error("empty entry accepted")
	}
	if err := Register(Entry{Name: "x", Build: nil}); err == nil {
		t.Error("nil builder accepted")
	}
	if err := Register(Entry{Name: "bursty", Build: burstyDef().Build}); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestBuiltinsRegistered(t *testing.T) {
	for _, name := range []string{
		"compute-bound", "memory-bound", "bursty", "ramp",
		"numa-remote", "multiphase", "bursty-tasks", "corun-mix",
	} {
		e, ok := Get(name)
		if !ok {
			t.Errorf("built-in %q not registered", name)
			continue
		}
		if e.Kind != KindSynthetic {
			t.Errorf("%q kind = %q, want synthetic", name, e.Kind)
		}
		if e.NominalSeconds <= 0 {
			t.Errorf("%q nominal seconds = %g, want positive", name, e.NominalSeconds)
		}
	}
	if Exists("no-such-scenario") {
		t.Error("Exists returned true for an unknown name")
	}
	if got, want := len(List()), len(Names()); got != want {
		t.Errorf("List has %d entries, Names %d", got, want)
	}
}

func TestParseDefinitionRejectsUnknownFields(t *testing.T) {
	if _, err := ParseDefinition([]byte(`{"name":"x","phasess":[]}`)); err == nil {
		t.Error("typoed field accepted")
	}
	d, err := ParseDefinition([]byte(`{"name":"x","phases":[{"instructions":1e9,"miss_per_instr":0.01,"ipc":1.5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "x" || len(d.Phases) != 1 {
		t.Errorf("parsed %+v", d)
	}
}

// TestNormalizedHashStable is the DSL's canonicalization contract: two
// spellings of the same program — defaults omitted vs spelled out — must
// normalize to identical structures and identical canonical bytes, so a
// RunSpec embedding either hashes the same.
func TestNormalizedHashStable(t *testing.T) {
	implicit, err := ParseDefinition([]byte(`{
		"name": "p", "phases": [{"instructions": 1e9, "miss_per_instr": 0.02, "ipc": 1.2}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := ParseDefinition([]byte(`{
		"name": "p", "decomposition": "work-sharing", "iterations": 1,
		"phases": [{"instructions": 1e9, "miss_per_instr": 0.02, "ipc": 1.2,
		            "exposure": 1, "chunks_per_core": 16, "repeat": 1}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	a, b := implicit.Normalized(), explicit.Normalized()
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	if string(ab) != string(bb) {
		t.Errorf("normalized forms differ:\n%s\n%s", ab, bb)
	}
}

func TestNormalizedDoesNotMutateReceiver(t *testing.T) {
	d := Definition{Name: "p", Phases: []PhaseDef{{Instructions: 1, MissPerInstr: 0, IPC: 1}}}
	_ = d.Normalized()
	if d.Phases[0].ChunksPerCore != 0 || d.Phases[0].Exposure != nil {
		t.Error("Normalized mutated the receiver's phase slice")
	}
}

func TestValidateErrors(t *testing.T) {
	base := func() Definition {
		return Definition{Name: "v", Phases: []PhaseDef{{Instructions: 1e9, MissPerInstr: 0.01, IPC: 1.5}}}
	}
	cases := []struct {
		name   string
		mutate func(*Definition)
		want   string
	}{
		{"no name", func(d *Definition) { d.Name = "" }, "needs a name"},
		{"bad decomposition", func(d *Definition) { d.Decomposition = "fork-join" }, "decomposition"},
		{"no phases", func(d *Definition) { d.Phases = nil }, "at least one phase"},
		{"zero instructions", func(d *Definition) { d.Phases[0].Instructions = 0 }, "instructions"},
		{"zero ipc", func(d *Definition) { d.Phases[0].IPC = 0 }, "ipc"},
		{"bad remote", func(d *Definition) { d.Phases[0].RemoteFrac = 2 }, "remote_frac"},
		{"bad exposure", func(d *Definition) { d.Phases[0].Exposure = ptr(1.5) }, "exposure"},
		{"bad jitter", func(d *Definition) { d.Phases[0].JitterFrac = 1 }, "jitter_frac"},
	}
	for _, tc := range cases {
		d := base()
		tc.mutate(&d)
		err := d.Normalized().Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if err := base().Normalized().Validate(); err != nil {
		t.Errorf("well-formed definition rejected: %v", err)
	}
}

func TestExplicitZeroExposureMeansNoStall(t *testing.T) {
	p := PhaseDef{Instructions: 1, MissPerInstr: 0.1, IPC: 1, Exposure: ptr(0.0)}
	seg := p.segment()
	if seg.Exposure != workload.ExposureNone {
		t.Errorf("exposure 0 compiled to %g, want ExposureNone", seg.Exposure)
	}
	if seg.StallFraction() != 0 {
		t.Errorf("stall fraction = %g, want 0", seg.StallFraction())
	}
	if !seg.Valid() {
		t.Error("zero-stall segment invalid")
	}
	unset := PhaseDef{Instructions: 1, MissPerInstr: 0.1, IPC: 1}
	if got := unset.segment().StallFraction(); got != 1 {
		t.Errorf("unset exposure stall = %g, want 1", got)
	}
}

// TestWorkloadPhasesBudget: the compiled workload.Phase view must carry
// the same scaled instruction budget the built source executes.
func TestWorkloadPhasesBudget(t *testing.T) {
	d := burstyDef()
	const scale = 0.25
	phases := d.WorkloadPhases(Params{Cores: 20, Scale: scale})
	var want float64
	for _, p := range d.Phases {
		want += p.Instructions * scale
	}
	if got := workload.TotalInstructions(phases); got < want*0.999 || got > want*1.001 {
		t.Errorf("total instructions = %g, want ≈%g", got, want)
	}
	// And the executed stream agrees (jitter is zero-mean, so a jittered
	// phase still sums close to its budget).
	src, err := d.Build(Params{Cores: 4, Scale: 0.001, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var ran float64
	for _, seg := range drain(t, src, 4) {
		ran += seg.Instructions
	}
	budget := workload.TotalInstructions(d.WorkloadPhases(Params{Cores: 4, Scale: 0.001}))
	if ran < budget*0.9 || ran > budget*1.1 {
		t.Errorf("executed %g instructions, compiled budget %g", ran, budget)
	}
}

// TestJitterDomainSeparation pins the fix for the correlated-draw
// defect: the DSL's miss-wobble stream must not reproduce the
// work-sharing runtime's chunk-jitter stream for the same
// (seed, step, index) triples.
func TestJitterDomainSeparation(t *testing.T) {
	for step := 0; step < 8; step++ {
		if jitter(42, step, 0) == sched.IndexJitter(42, step, 0) {
			t.Fatalf("step %d: scenario jitter equals the runtime's chunk jitter — missing domain tag", step)
		}
	}
}

// drain executes a source to completion with a serial driver, recording
// every segment in claim order. The simulated clock advances every
// sweep so work-sharing barrier releases (which wait one timestamp) can
// open.
func drain(t *testing.T, src workload.Source, cores int) []workload.Segment {
	t.Helper()
	var segs []workload.Segment
	now := 1.0
	for i := 0; !src.Done(); i++ {
		if i > 1e6 {
			t.Fatal("source did not finish")
		}
		for c := 0; c < cores; c++ {
			if seg, ok := src.NextSegment(c, now); ok {
				segs = append(segs, seg)
				src.Complete(c, now)
			}
		}
		now++
	}
	return segs
}

// TestBuildDeterministic: equal (definition, Params) must produce
// byte-equal segment streams — the property RunSpec hashing relies on.
func TestBuildDeterministic(t *testing.T) {
	for _, decomp := range []string{WorkSharing, TaskDAG} {
		d := burstyDef()
		d.Decomposition = decomp
		d.Iterations = 2
		a, err := d.Build(Params{Cores: 4, Scale: 0.001, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Build(Params{Cores: 4, Scale: 0.001, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		sa, sb := drain(t, a, 4), drain(t, b, 4)
		if !reflect.DeepEqual(sa, sb) {
			t.Errorf("%s: same seed produced different segment streams (%d vs %d segs)", decomp, len(sa), len(sb))
		}
		if len(sa) == 0 {
			t.Errorf("%s: empty segment stream", decomp)
		}
	}
}

func TestBuildSeedChangesJitter(t *testing.T) {
	d := computeBoundDef() // has JitterFrac > 0
	d.Iterations = 2
	a, _ := d.Build(Params{Cores: 2, Scale: 0.001, Seed: 1})
	b, _ := d.Build(Params{Cores: 2, Scale: 0.001, Seed: 2})
	if reflect.DeepEqual(drain(t, a, 2), drain(t, b, 2)) {
		t.Error("different seeds produced identical jittered streams")
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	d := burstyDef()
	if _, err := d.Build(Params{Cores: 0, Scale: 1}); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := d.Build(Params{Cores: 2, Scale: 0}); err == nil {
		t.Error("zero scale accepted")
	}
	bad := Definition{Name: ""}
	if _, err := bad.Build(Params{Cores: 2, Scale: 1}); err == nil {
		t.Error("invalid definition built")
	}
}

// TestCorunMixPartitions drives the co-run built-in end to end: both
// partition components must contribute work and the mix must finish.
func TestCorunMixPartitions(t *testing.T) {
	e, ok := Get("corun-mix")
	if !ok {
		t.Fatal("corun-mix not registered")
	}
	src, err := e.Build(Params{Cores: 4, Scale: 0.0005, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	segs := drain(t, src, 4)
	if len(segs) == 0 {
		t.Fatal("corun mix produced no work")
	}
	if _, err := e.Build(Params{Cores: 1, Scale: 1, Seed: 1}); err == nil {
		t.Error("corun-mix on one core must error")
	}
}

func TestEstimateSecondsPositive(t *testing.T) {
	for _, name := range Names() {
		e, _ := Get(name)
		if e.NominalSeconds <= 0 {
			t.Errorf("%s: nominal seconds %g", name, e.NominalSeconds)
		}
	}
	d := memoryBoundDef()
	if est := d.EstimateSeconds(20); est <= 0 || est > 3600 {
		t.Errorf("memory-bound estimate %g s implausible", est)
	}
}
