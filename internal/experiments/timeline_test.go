package experiments

import (
	"bytes"
	"testing"

	"repro/internal/governor"
	"repro/internal/memo"
	"repro/internal/timeline"
)

// timelineTestOptions are shrunk like memoTestOptions but disable the
// daemon warmup so the shortened run still crosses real governor
// decisions (exploration, DVFS/UFS actuations) for the recorder to see.
func timelineTestOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.02
	o.Reps = 2
	o.WarmupSec = -1
	return o
}

// runReportBytes builds the "run" report for the bursty scenario and
// returns its canonical encoding.
func runReportBytes(t *testing.T, opt Options) []byte {
	t.Helper()
	rep, err := RunOneReport("bursty", opt)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTimelineInvisibleToReports is the determinism-boundary contract:
// arming the flight recorder must not change a single canonical report
// byte, across the plain path and the memo-resume path (cold store and
// warm prefix restore). Run with -race this also exercises the
// recorder's locking under concurrent repetitions.
func TestTimelineInvisibleToReports(t *testing.T) {
	for _, gov := range []string{governor.Default, governor.Cuttlefish} {
		t.Run(gov, func(t *testing.T) {
			opt := timelineTestOptions()
			opt.Governor = gov
			plain := runReportBytes(t, opt)

			ton := opt
			ton.Timeline = timeline.New("test")
			if got := runReportBytes(t, ton); !bytes.Equal(plain, got) {
				t.Error("timeline-on report bytes differ from timeline-off")
			}

			// Memo path: cold execution stores snapshots, warm resumes from
			// the longest prefix — with the recorder armed both times.
			mopt := opt
			mopt.Memo = memo.New(0, nil)
			mopt.Timeline = timeline.New("cold")
			if got := runReportBytes(t, mopt); !bytes.Equal(plain, got) {
				t.Error("cold memo run with timeline diverges from plain")
			}
			mopt.Timeline = timeline.New("warm")
			if got := runReportBytes(t, mopt); !bytes.Equal(plain, got) {
				t.Error("warm memo resume with timeline diverges from plain")
			}
			// The warm recorder saw the restore marker.
			ex := mopt.Timeline.Export()
			found := false
			for _, ln := range ex.Lanes {
				for _, e := range ln.Events {
					if e.Kind == timeline.KindMemoRestore {
						found = true
					}
				}
			}
			if !found {
				t.Error("warm memo resume recorded no memo-restore event")
			}
		})
	}
}

// TestTimelineBitDeterministic pins the flight recorder's own output:
// two identical runs render byte-identical timelines, and a work-sharing
// source records the same timeline under SimWorkers 1 and N (the same
// contract the engine gives report bytes).
func TestTimelineBitDeterministic(t *testing.T) {
	record := func(simWorkers int) []byte {
		opt := timelineTestOptions()
		opt.Governor = governor.Cuttlefish
		opt.SimWorkers = simWorkers
		rec := timeline.New("det")
		opt.Timeline = rec
		if _, err := RunOneReport("bursty", opt); err != nil {
			t.Fatal(err)
		}
		data, err := rec.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := record(0), record(0)
	if !bytes.Equal(a, b) {
		t.Error("two identical runs rendered different timeline bytes")
	}
	sharded := record(3)
	if !bytes.Equal(a, sharded) {
		t.Error("timeline bytes differ between SimWorkers 1 and 3")
	}
}

// TestTimelineConvergenceNonzero checks the recorder actually observes
// the cuttlefish daemon's exploration story: a fresh machine explores at
// least one slab before settling, which the convergence summary reports.
func TestTimelineConvergenceNonzero(t *testing.T) {
	opt := timelineTestOptions()
	opt.Governor = governor.Cuttlefish
	rec := timeline.New("conv")
	opt.Timeline = rec
	if _, err := RunOneReport("bursty", opt); err != nil {
		t.Fatal(err)
	}
	c := rec.Convergence()
	if c.Runs != opt.Reps {
		t.Errorf("convergence runs = %d, want %d (one per repetition lane)", c.Runs, opt.Reps)
	}
	if c.ExplorationQuanta == 0 {
		t.Error("cuttlefish run recorded no exploration quanta")
	}
	if c.TimeToStableSec <= 0 {
		t.Errorf("time-to-stable = %g, want > 0", c.TimeToStableSec)
	}
	if c.ExplorationEnergyJ <= 0 {
		t.Errorf("exploration energy = %g, want > 0", c.ExplorationEnergyJ)
	}
	// Samples landed in per-repetition lanes with machine state attached.
	ex := rec.Export()
	if len(ex.Lanes) != opt.Reps {
		t.Fatalf("lanes = %d, want %d", len(ex.Lanes), opt.Reps)
	}
	for _, ln := range ex.Lanes {
		if len(ln.Samples) < 2 {
			t.Errorf("lane %s has %d sample(s), want boundary samples", ln.Lane, len(ln.Samples))
		}
		last := ln.Samples[len(ln.Samples)-1]
		if last.EnergyJ <= 0 || last.Instr <= 0 || len(last.Cores) == 0 {
			t.Errorf("lane %s final sample lacks machine state: %+v", ln.Lane, last)
		}
	}
}
