package experiments

import (
	"fmt"
	"sync"

	"repro/internal/bench"
	"repro/internal/governor"
	"repro/internal/stats"
)

// Cell is a mean with a 95% confidence half-width over repetitions.
type Cell struct {
	Mean float64
	CI   float64
}

// CompareRow is one benchmark's comparison against the baseline governor,
// in percent: positive energy/EDP savings are improvements, positive
// slowdown is lost time — the quantities on the y-axes of Figs. 10 and 11.
// Maps are keyed by registered governor name.
type CompareRow struct {
	Bench         string
	EnergySavings map[string]Cell
	Slowdown      map[string]Cell
	EDPSavings    map[string]Cell
}

// Comparison is a full Fig. 10/11-style result.
type Comparison struct {
	Model bench.Model
	// Baseline is the reference governor the savings are relative to.
	Baseline string
	// Governors is the comparison set, in report order.
	Governors []string
	Rows      []CompareRow
	// Geomean aggregates match the paper's headline numbers: geometric
	// mean of the per-benchmark ratios, expressed as percentages.
	GeoEnergySavings map[string]float64
	GeoSlowdown      map[string]float64
	GeoEDPSavings    map[string]float64
}

// runKey addresses one simulation inside the flattened comparison matrix.
type runKey struct {
	bench    int
	governor string
	rep      int
}

// Compare evaluates the configured governor set (default: the three
// Cuttlefish variants) against the baseline over the given benchmarks.
// Repetition r of every governor shares a seed with repetition r of the
// baseline, so ratios compare like with like.
func Compare(names []string, opt Options) (Comparison, error) {
	specs := make([]bench.Spec, len(names))
	for i, n := range names {
		s, ok := bench.Get(n)
		if !ok {
			return Comparison{}, fmt.Errorf("experiments: unknown benchmark %q", n)
		}
		specs[i] = s
	}
	baseline, govs := opt.comparisonSet()
	all := append([]string{baseline}, govs...)
	var keys []runKey
	for b := range specs {
		for _, g := range all {
			for r := 0; r < opt.Reps; r++ {
				keys = append(keys, runKey{bench: b, governor: g, rep: r})
			}
		}
	}
	results := make(map[runKey]RunResult, len(keys))
	var mu sync.Mutex
	err := forEach(len(keys), opt, func(i int) error {
		k := keys[i]
		res, err := RunOne(specs[k.bench], k.governor, opt, opt.Seed+int64(k.rep))
		if err != nil {
			return err
		}
		mu.Lock()
		results[k] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		return Comparison{}, err
	}

	cmp := Comparison{
		Model:            opt.Model,
		Baseline:         baseline,
		Governors:        govs,
		GeoEnergySavings: map[string]float64{},
		GeoSlowdown:      map[string]float64{},
		GeoEDPSavings:    map[string]float64{},
	}
	// Per-benchmark cells plus ratio collection for the geomeans.
	ratioE := map[string][]float64{}
	ratioT := map[string][]float64{}
	ratioD := map[string][]float64{}
	for b, spec := range specs {
		row := CompareRow{
			Bench:         spec.Name,
			EnergySavings: map[string]Cell{},
			Slowdown:      map[string]Cell{},
			EDPSavings:    map[string]Cell{},
		}
		for _, g := range govs {
			var es, sl, ed, re, rt, rd []float64
			for r := 0; r < opt.Reps; r++ {
				def := results[runKey{bench: b, governor: baseline, rep: r}]
				cf := results[runKey{bench: b, governor: g, rep: r}]
				es = append(es, stats.SavingsPercent(def.Joules, cf.Joules))
				sl = append(sl, stats.SlowdownPercent(def.Seconds, cf.Seconds))
				ed = append(ed, stats.SavingsPercent(def.EDP, cf.EDP))
				re = append(re, cf.Joules/def.Joules)
				rt = append(rt, cf.Seconds/def.Seconds)
				rd = append(rd, cf.EDP/def.EDP)
			}
			row.EnergySavings[g] = Cell{Mean: stats.Mean(es), CI: stats.CI95(es)}
			row.Slowdown[g] = Cell{Mean: stats.Mean(sl), CI: stats.CI95(sl)}
			row.EDPSavings[g] = Cell{Mean: stats.Mean(ed), CI: stats.CI95(ed)}
			ratioE[g] = append(ratioE[g], stats.Mean(re))
			ratioT[g] = append(ratioT[g], stats.Mean(rt))
			ratioD[g] = append(ratioD[g], stats.Mean(rd))
		}
		cmp.Rows = append(cmp.Rows, row)
	}
	for _, g := range govs {
		cmp.GeoEnergySavings[g] = 100 * (1 - stats.GeoMean(ratioE[g]))
		cmp.GeoSlowdown[g] = 100 * (stats.GeoMean(ratioT[g]) - 1)
		cmp.GeoEDPSavings[g] = 100 * (1 - stats.GeoMean(ratioD[g]))
	}
	return cmp, nil
}

// Fig10 reproduces the OpenMP evaluation over all ten benchmarks.
func Fig10(opt Options) (Comparison, error) {
	opt.Model = bench.OpenMP
	return Compare(bench.Names(), opt)
}

// Fig11 reproduces the HClib evaluation over the six SOR/Heat variants.
func Fig11(opt Options) (Comparison, error) {
	opt.Model = bench.HClib
	return Compare(bench.HClibNames(), opt)
}

// Table3Row is one Tinv setting's geomean outcome.
type Table3Row struct {
	TinvSec       float64
	EnergySavings float64
	Slowdown      float64
}

// Table3 reproduces the Tinv sensitivity study: geomean energy savings and
// slowdown of full Cuttlefish across the OpenMP benchmarks at each Tinv.
func Table3(opt Options, tinvs []float64) ([]Table3Row, error) {
	if len(tinvs) == 0 {
		tinvs = []float64{10e-3, 20e-3, 40e-3, 60e-3}
	}
	names := bench.Names()
	specs := make([]bench.Spec, len(names))
	for i, n := range names {
		specs[i], _ = bench.Get(n)
	}

	// The baseline is Tinv-independent; run it once.
	defaults := make([]RunResult, len(specs)*opt.Reps)
	err := forEach(len(defaults), opt, func(i int) error {
		b, r := i/opt.Reps, i%opt.Reps
		res, err := RunOne(specs[b], governor.Default, opt, opt.Seed+int64(r))
		if err != nil {
			return err
		}
		defaults[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	rows := make([]Table3Row, len(tinvs))
	for ti, tinv := range tinvs {
		o := opt
		o.TinvSec = tinv
		runs := make([]RunResult, len(specs)*opt.Reps)
		err := forEach(len(runs), opt, func(i int) error {
			b, r := i/opt.Reps, i%opt.Reps
			res, err := RunOne(specs[b], governor.Cuttlefish, o, opt.Seed+int64(r))
			if err != nil {
				return err
			}
			runs[i] = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		var ratioE, ratioT []float64
		for b := range specs {
			var re, rt []float64
			for r := 0; r < opt.Reps; r++ {
				i := b*opt.Reps + r
				re = append(re, runs[i].Joules/defaults[i].Joules)
				rt = append(rt, runs[i].Seconds/defaults[i].Seconds)
			}
			ratioE = append(ratioE, stats.Mean(re))
			ratioT = append(ratioT, stats.Mean(rt))
		}
		rows[ti] = Table3Row{
			TinvSec:       tinv,
			EnergySavings: 100 * (1 - stats.GeoMean(ratioE)),
			Slowdown:      100 * (stats.GeoMean(ratioT) - 1),
		}
	}
	return rows, nil
}
