package experiments

import (
	"fmt"
	"sync"

	"repro/internal/bench"
	"repro/internal/stats"
)

// Cell is a mean with a 95% confidence half-width over repetitions.
type Cell struct {
	Mean float64
	CI   float64
}

// CompareRow is one benchmark's comparison against Default, in percent:
// positive energy/EDP savings are improvements, positive slowdown is lost
// time — the quantities on the y-axes of Figs. 10 and 11.
type CompareRow struct {
	Bench         string
	EnergySavings map[PolicyName]Cell
	Slowdown      map[PolicyName]Cell
	EDPSavings    map[PolicyName]Cell
}

// Comparison is a full Fig. 10/11-style result.
type Comparison struct {
	Model bench.Model
	Rows  []CompareRow
	// Geomean aggregates match the paper's headline numbers: geometric
	// mean of the per-benchmark ratios, expressed as percentages.
	GeoEnergySavings map[PolicyName]float64
	GeoSlowdown      map[PolicyName]float64
	GeoEDPSavings    map[PolicyName]float64
}

// runKey addresses one simulation inside the flattened comparison matrix.
type runKey struct {
	bench  int
	policy PolicyName
	rep    int
}

// Compare evaluates the three Cuttlefish policies against Default over the
// given benchmarks. Repetition r of every policy shares a seed with
// repetition r of Default, so ratios compare like with like.
func Compare(names []string, opt Options) (Comparison, error) {
	specs := make([]bench.Spec, len(names))
	for i, n := range names {
		s, ok := bench.Get(n)
		if !ok {
			return Comparison{}, fmt.Errorf("experiments: unknown benchmark %q", n)
		}
		specs[i] = s
	}
	policies := append([]PolicyName{Default}, CuttlefishPolicies...)
	var keys []runKey
	for b := range specs {
		for _, p := range policies {
			for r := 0; r < opt.Reps; r++ {
				keys = append(keys, runKey{bench: b, policy: p, rep: r})
			}
		}
	}
	results := make(map[runKey]RunResult, len(keys))
	var mu sync.Mutex
	err := forEach(len(keys), opt, func(i int) error {
		k := keys[i]
		res, err := RunOne(specs[k.bench], k.policy, opt, opt.Seed+int64(k.rep))
		if err != nil {
			return err
		}
		mu.Lock()
		results[k] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		return Comparison{}, err
	}

	cmp := Comparison{
		Model:            opt.Model,
		GeoEnergySavings: map[PolicyName]float64{},
		GeoSlowdown:      map[PolicyName]float64{},
		GeoEDPSavings:    map[PolicyName]float64{},
	}
	// Per-benchmark cells plus ratio collection for the geomeans.
	ratioE := map[PolicyName][]float64{}
	ratioT := map[PolicyName][]float64{}
	ratioD := map[PolicyName][]float64{}
	for b, spec := range specs {
		row := CompareRow{
			Bench:         spec.Name,
			EnergySavings: map[PolicyName]Cell{},
			Slowdown:      map[PolicyName]Cell{},
			EDPSavings:    map[PolicyName]Cell{},
		}
		for _, p := range CuttlefishPolicies {
			var es, sl, ed, re, rt, rd []float64
			for r := 0; r < opt.Reps; r++ {
				def := results[runKey{bench: b, policy: Default, rep: r}]
				cf := results[runKey{bench: b, policy: p, rep: r}]
				es = append(es, stats.SavingsPercent(def.Joules, cf.Joules))
				sl = append(sl, stats.SlowdownPercent(def.Seconds, cf.Seconds))
				ed = append(ed, stats.SavingsPercent(def.EDP, cf.EDP))
				re = append(re, cf.Joules/def.Joules)
				rt = append(rt, cf.Seconds/def.Seconds)
				rd = append(rd, cf.EDP/def.EDP)
			}
			row.EnergySavings[p] = Cell{Mean: stats.Mean(es), CI: stats.CI95(es)}
			row.Slowdown[p] = Cell{Mean: stats.Mean(sl), CI: stats.CI95(sl)}
			row.EDPSavings[p] = Cell{Mean: stats.Mean(ed), CI: stats.CI95(ed)}
			ratioE[p] = append(ratioE[p], stats.Mean(re))
			ratioT[p] = append(ratioT[p], stats.Mean(rt))
			ratioD[p] = append(ratioD[p], stats.Mean(rd))
		}
		cmp.Rows = append(cmp.Rows, row)
	}
	for _, p := range CuttlefishPolicies {
		cmp.GeoEnergySavings[p] = 100 * (1 - stats.GeoMean(ratioE[p]))
		cmp.GeoSlowdown[p] = 100 * (stats.GeoMean(ratioT[p]) - 1)
		cmp.GeoEDPSavings[p] = 100 * (1 - stats.GeoMean(ratioD[p]))
	}
	return cmp, nil
}

// Fig10 reproduces the OpenMP evaluation over all ten benchmarks.
func Fig10(opt Options) (Comparison, error) {
	opt.Model = bench.OpenMP
	return Compare(bench.Names(), opt)
}

// Fig11 reproduces the HClib evaluation over the six SOR/Heat variants.
func Fig11(opt Options) (Comparison, error) {
	opt.Model = bench.HClib
	return Compare(bench.HClibNames(), opt)
}

// Table3Row is one Tinv setting's geomean outcome.
type Table3Row struct {
	TinvSec       float64
	EnergySavings float64
	Slowdown      float64
}

// Table3 reproduces the Tinv sensitivity study: geomean energy savings and
// slowdown of full Cuttlefish across the OpenMP benchmarks at each Tinv.
func Table3(opt Options, tinvs []float64) ([]Table3Row, error) {
	if len(tinvs) == 0 {
		tinvs = []float64{10e-3, 20e-3, 40e-3, 60e-3}
	}
	names := bench.Names()
	specs := make([]bench.Spec, len(names))
	for i, n := range names {
		specs[i], _ = bench.Get(n)
	}

	// Defaults are Tinv-independent; run them once.
	defaults := make([]RunResult, len(specs)*opt.Reps)
	err := forEach(len(defaults), opt, func(i int) error {
		b, r := i/opt.Reps, i%opt.Reps
		res, err := RunOne(specs[b], Default, opt, opt.Seed+int64(r))
		if err != nil {
			return err
		}
		defaults[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	rows := make([]Table3Row, len(tinvs))
	for ti, tinv := range tinvs {
		o := opt
		o.TinvSec = tinv
		runs := make([]RunResult, len(specs)*opt.Reps)
		err := forEach(len(runs), opt, func(i int) error {
			b, r := i/opt.Reps, i%opt.Reps
			res, err := RunOne(specs[b], Cuttlefish, o, opt.Seed+int64(r))
			if err != nil {
				return err
			}
			runs[i] = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		var ratioE, ratioT []float64
		for b := range specs {
			var re, rt []float64
			for r := 0; r < opt.Reps; r++ {
				i := b*opt.Reps + r
				re = append(re, runs[i].Joules/defaults[i].Joules)
				rt = append(rt, runs[i].Seconds/defaults[i].Seconds)
			}
			ratioE = append(ratioE, stats.Mean(re))
			ratioT = append(ratioT, stats.Mean(rt))
		}
		rows[ti] = Table3Row{
			TinvSec:       tinv,
			EnergySavings: 100 * (1 - stats.GeoMean(ratioE)),
			Slowdown:      100 * (stats.GeoMean(ratioT) - 1),
		}
	}
	return rows, nil
}
