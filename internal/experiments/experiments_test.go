package experiments

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/freq"
	"repro/internal/governor"
	"repro/internal/tipi"
)

// testOptions shrink runs for CI while keeping them long enough for the
// daemon to converge on the frequent slabs.
func testOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.12
	o.Reps = 2
	return o
}

func mustSpec(t *testing.T, name string) bench.Spec {
	t.Helper()
	s, ok := bench.Get(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	return s
}

func TestRunOneDefaultAndCuttlefish(t *testing.T) {
	o := testOptions()
	spec := mustSpec(t, "SOR-irt")
	def, err := RunOne(spec, governor.Default, o, 1)
	if err != nil {
		t.Fatal(err)
	}
	if def.Daemon != nil {
		t.Error("Default run must not carry a daemon")
	}
	if def.Seconds <= 0 || def.Joules <= 0 || def.EDP != def.Joules*def.Seconds {
		t.Errorf("implausible result %+v", def)
	}
	// Default's firmware parks a quiet uncore near 2.2 GHz (Table 2).
	if def.AvgUncoreGHz < 2.0 || def.AvgUncoreGHz > 2.5 {
		t.Errorf("SOR Default avg UF = %.2f GHz, want ≈ 2.2", def.AvgUncoreGHz)
	}
	cf, err := RunOne(spec, governor.Cuttlefish, o, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Daemon == nil || cf.Daemon.Samples() == 0 {
		t.Error("Cuttlefish run must carry an active daemon")
	}
}

func TestRunOneRejectsInvalidModelCombos(t *testing.T) {
	o := testOptions()
	o.Model = bench.HClib
	if _, err := RunOne(mustSpec(t, "AMG"), governor.Default, o, 1); err == nil {
		t.Error("AMG under HClib must fail (§5.2)")
	}
}

func TestCompareShape(t *testing.T) {
	o := testOptions()
	cmp, err := Compare([]string{"UTS", "Heat-irt"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(cmp.Rows))
	}
	uts, heat := cmp.Rows[0], cmp.Rows[1]

	// Memory-bound saves more than compute-bound under full Cuttlefish
	// (§5.1: 22-29% vs 8-10%).
	if heat.EnergySavings[governor.Cuttlefish].Mean <= uts.EnergySavings[governor.Cuttlefish].Mean {
		t.Errorf("Heat savings %.1f%% should exceed UTS %.1f%%",
			heat.EnergySavings[governor.Cuttlefish].Mean, uts.EnergySavings[governor.Cuttlefish].Mean)
	}
	// Cuttlefish-Core loses energy on compute-bound codes (§5.1).
	if uts.EnergySavings[governor.CuttlefishCore].Mean >= 0 {
		t.Errorf("UTS Cuttlefish-Core savings = %.1f%%, want negative", uts.EnergySavings[governor.CuttlefishCore].Mean)
	}
	// Slowdowns stay small.
	for _, row := range cmp.Rows {
		for _, p := range governor.CuttlefishVariants {
			if s := row.Slowdown[p].Mean; s > 20 {
				t.Errorf("%s/%s slowdown %.1f%% implausible", row.Bench, p, s)
			}
		}
	}
	// Geomeans must be populated for all policies.
	for _, p := range governor.CuttlefishVariants {
		if _, ok := cmp.GeoEnergySavings[p]; !ok {
			t.Errorf("missing geomean for %s", p)
		}
	}
}

func TestCompareUnknownBenchmark(t *testing.T) {
	if _, err := Compare([]string{"nope"}, testOptions()); err == nil {
		t.Error("unknown benchmark must error")
	}
}

func TestTable1Census(t *testing.T) {
	o := testOptions()
	rows, err := Table1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Seconds <= 0 || r.Distinct < 1 || r.Frequent < 1 {
			t.Errorf("%s: degenerate census row %+v", r.Name, r)
		}
		if r.Frequent > r.Distinct {
			t.Errorf("%s: frequent %d > distinct %d", r.Name, r.Frequent, r.Distinct)
		}
	}
	// AMG shows by far the most slabs (Table 1: 60 vs ≤ 17 elsewhere).
	if byName["AMG"].Distinct <= byName["Heat-irt"].Distinct {
		t.Errorf("AMG distinct slabs (%d) should exceed Heat-irt (%d)",
			byName["AMG"].Distinct, byName["Heat-irt"].Distinct)
	}
	// UTS sits in the lowest slab band.
	if byName["UTS"].TIPIMax > 0.008 {
		t.Errorf("UTS TIPI max %.4f, want ≤ 0.008", byName["UTS"].TIPIMax)
	}
}

func TestFig2Timelines(t *testing.T) {
	o := testOptions()
	recs, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(Fig2Benchmarks) {
		t.Fatalf("recorders = %d, want %d", len(recs), len(Fig2Benchmarks))
	}
	// §3.1: within an application JPI tracks TIPI — Heat's TIPI and JPI
	// both exceed UTS's.
	avg := func(name string) (tipi, jpi float64) {
		pts := recs[name].Points()
		if len(pts) == 0 {
			t.Fatalf("%s: empty timeline", name)
		}
		for _, p := range pts {
			tipi += p.TIPI
			jpi += p.JPI
		}
		n := float64(len(pts))
		return tipi / n, jpi / n
	}
	utsT, utsJ := avg("UTS")
	heatT, heatJ := avg("Heat-irt")
	if heatT <= utsT || heatJ <= utsJ {
		t.Errorf("Heat (TIPI %.4f, JPI %.2g) should exceed UTS (TIPI %.4f, JPI %.2g)",
			heatT, heatJ, utsT, utsJ)
	}
}

// jpiAt finds the JPI of a benchmark's dominant frequent slab at a setting.
func jpiAt(t *testing.T, pts []Fig3Point, benchName string, setting freq.Ratio) float64 {
	t.Helper()
	bestShare, bestJPI := 0.0, 0.0
	for _, p := range pts {
		if p.Bench == benchName && p.Setting == setting && p.SharePct > bestShare {
			bestShare, bestJPI = p.SharePct, p.JPI
		}
	}
	if bestShare == 0 {
		t.Fatalf("no frequent slab for %s at %v", benchName, setting)
	}
	return bestJPI
}

func TestFig3aShape(t *testing.T) {
	o := testOptions()
	pts, err := Fig3a(o)
	if err != nil {
		t.Fatal(err)
	}
	// Compute-bound: JPI falls as CF rises. Memory-bound: the opposite.
	if jpiAt(t, pts, "UTS", 23) >= jpiAt(t, pts, "UTS", 12) {
		t.Error("UTS JPI should fall with rising CF (Fig. 3a)")
	}
	if jpiAt(t, pts, "Heat-irt", 12) >= jpiAt(t, pts, "Heat-irt", 23) {
		t.Error("Heat JPI should fall with falling CF (Fig. 3a)")
	}
}

func TestFig3bShape(t *testing.T) {
	o := testOptions()
	pts, err := Fig3b(o)
	if err != nil {
		t.Fatal(err)
	}
	// Compute-bound: JPI rises with UF.
	if jpiAt(t, pts, "UTS", 30) <= jpiAt(t, pts, "UTS", 12) {
		t.Error("UTS JPI should rise with UF (Fig. 3b)")
	}
	// Memory-bound: max UF is NOT optimal — mid beats both ends (§3.2).
	mid := jpiAt(t, pts, "Heat-irt", 21)
	if mid >= jpiAt(t, pts, "Heat-irt", 30) || mid >= jpiAt(t, pts, "Heat-irt", 12) {
		t.Error("Heat JPI should have an interior UF optimum (Fig. 3b)")
	}
}

func TestTable2Settings(t *testing.T) {
	o := testOptions()
	rows, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Bench] = r
	}
	uts := byName["UTS"]
	if len(uts.Frequent) == 0 || !uts.Frequent[0].Resolved {
		t.Fatal("UTS frequent slab unresolved")
	}
	if uts.Frequent[0].CFOptGHz != 2.3 {
		t.Errorf("UTS CFopt = %.1f, want 2.3 (Table 2)", uts.Frequent[0].CFOptGHz)
	}
	if uts.Frequent[0].UFOptGHz > 1.6 {
		t.Errorf("UTS UFopt = %.1f, want ≤ 1.6 (Table 2: 1.3)", uts.Frequent[0].UFOptGHz)
	}
	// Default column: compute-bound parks near 2.2, memory-bound near 3.0.
	if uts.DefaultUFGHz < 2.0 || uts.DefaultUFGHz > 2.5 {
		t.Errorf("UTS Default UF = %.2f, want ≈ 2.2", uts.DefaultUFGHz)
	}
	heat := byName["Heat-irt"]
	if len(heat.Frequent) == 0 {
		t.Fatal("Heat-irt has no frequent slab")
	}
	dominant := heat.Frequent[0]
	for _, f := range heat.Frequent {
		if f.SharePct > dominant.SharePct {
			dominant = f
		}
	}
	if !dominant.Resolved {
		t.Fatal("Heat-irt dominant slab unresolved")
	}
	if dominant.CFOptGHz > 1.4 {
		t.Errorf("Heat CFopt = %.1f, want ≤ 1.4 (Table 2: 1.2)", dominant.CFOptGHz)
	}
	if dominant.UFOptGHz < 2.0 || dominant.UFOptGHz > 2.7 {
		t.Errorf("Heat UFopt = %.1f, want interior ≈ 2.2-2.4", dominant.UFOptGHz)
	}
	if heat.DefaultUFGHz < 2.7 {
		t.Errorf("Heat Default UF = %.2f, want ≈ 3.0 (firmware ramps up)", heat.DefaultUFGHz)
	}
	_ = tipi.DefaultSlabWidth
}

func TestAblationOptimizationsEarnTheirKeep(t *testing.T) {
	o := testOptions()
	o.Reps = 1
	rows, err := Ablation([]string{"MiniFE"}, o)
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[AblationVariant]AblationRow{}
	for _, r := range rows {
		byVariant[r.Variant] = r
	}
	full, none := byVariant[AblationFull], byVariant[AblationNone]
	// Removing every optimisation must not shrink the exploration share;
	// typically it grows it substantially.
	if none.ExplorationPct < full.ExplorationPct-1 {
		t.Errorf("exploration without optimisations (%.1f%%) below full config (%.1f%%)",
			none.ExplorationPct, full.ExplorationPct)
	}
	// And the fully optimised daemon must not save less energy.
	if full.EnergySavingsPct < none.EnergySavingsPct-0.5 {
		t.Errorf("full config saves %.1f%%, ablated %.1f%% — optimisations should pay",
			full.EnergySavingsPct, none.EnergySavingsPct)
	}
}

func TestAblationUnknownVariantRejected(t *testing.T) {
	var cfg = struct{ bad AblationVariant }{bad: "turbo"}
	if err := cfg.bad.apply(nil); err == nil {
		t.Error("unknown variant must error")
	}
}

func TestOracleGapSmall(t *testing.T) {
	// The online exploration must land within a few percent of the
	// exhaustive-sweep JPI optimum (it measures real JPI, so the only
	// slack is the stride-two walk and the Fig. 5 tie-break).
	o := testOptions()
	r, err := Oracle("Heat-irt", o, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.GapPct > 5 {
		t.Errorf("daemon JPI gap vs oracle = %.1f%%, want ≤ 5%%", r.GapPct)
	}
	if r.BestJPI.JPI <= 0 || r.Chosen.JPI <= 0 {
		t.Error("degenerate sweep points")
	}
}

func TestSweepCoversGrid(t *testing.T) {
	o := testOptions()
	o.Scale = 0.04
	pts, err := Sweep("UTS", o, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3*4 { // CF 12,16,20 (+23? no: 12,16,20) — verify below
		// CF 12,16,20 and UF 12,18,24,30: 3*4 = 12
		t.Fatalf("sweep points = %d, want 12", len(pts))
	}
	for _, p := range pts {
		if p.Seconds <= 0 || p.Joules <= 0 || p.JPI <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
}

func TestDDCMStudyShape(t *testing.T) {
	o := testOptions()
	rows, err := DDCMStudy([]string{"Heat-irt"}, o)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// The literature's result the paper's DVFS choice rests on: at matched
	// compute throttle on a memory-bound code, DVFS banks real energy
	// while DDCM (full voltage, full leakage) banks almost none.
	if r.DVFSEnergySavings < 5 {
		t.Errorf("DVFS savings = %.1f%%, want ≥ 5%% on memory-bound", r.DVFSEnergySavings)
	}
	if r.DDCMEnergySavings >= r.DVFSEnergySavings-3 {
		t.Errorf("DDCM savings %.1f%% should trail DVFS %.1f%% clearly",
			r.DDCMEnergySavings, r.DVFSEnergySavings)
	}
	// Neither knob hurts a bandwidth-bound code's time much.
	if r.DVFSSlowdown > 8 || r.DDCMSlowdown > 8 {
		t.Errorf("slowdowns %.1f%%/%.1f%% implausible for memory-bound", r.DVFSSlowdown, r.DDCMSlowdown)
	}
}

func TestTable3Sensitivity(t *testing.T) {
	o := testOptions()
	o.Reps = 1
	rows, err := Table3(o, []float64{20e-3, 60e-3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	// Table 3's trend: larger Tinv stretches exploration (10 readings per
	// probe), so energy savings shrink. At CI scale the 60 ms row is
	// mostly exploration, amplifying the effect.
	if rows[0].EnergySavings <= rows[1].EnergySavings {
		t.Errorf("savings at 20 ms (%.1f%%) should exceed 60 ms (%.1f%%)",
			rows[0].EnergySavings, rows[1].EnergySavings)
	}
	for _, r := range rows {
		if r.EnergySavings < 0.5 {
			t.Errorf("Tinv %.0f ms: geomean savings %.1f%%, want positive", r.TinvSec*1e3, r.EnergySavings)
		}
		if r.Slowdown > 15 {
			t.Errorf("Tinv %.0f ms: slowdown %.1f%% implausible", r.TinvSec*1e3, r.Slowdown)
		}
	}
}

func TestRunOneUnknownGovernor(t *testing.T) {
	if _, err := RunOne(mustSpec(t, "UTS"), "turbo", testOptions(), 1); err == nil {
		t.Error("unknown governor must error")
	}
}

// TestGovernorDeterminismSerialVsSharded is the cross-governor determinism
// contract: the same seed under the same governor must produce bit-identical
// Joules and Seconds whether the engine runs serial or sharded across
// workers. It drives a work-sharing benchmark — the engine's determinism
// contract covers sources whose scheduling is independent of same-quantum
// call order, which the work-sharing runtime guarantees (hash-derived chunk
// jitter, one-quantum barrier release latency); the stealing runtime's
// random victim selection is the documented exception.
func TestGovernorDeterminismSerialVsSharded(t *testing.T) {
	spec := mustSpec(t, "SOR-ws")
	for _, gov := range []string{
		governor.Default, governor.Cuttlefish, governor.Static,
		governor.DDCM, governor.Powersave, governor.Ondemand,
	} {
		t.Run(gov, func(t *testing.T) {
			o := testOptions()
			o.Scale = 0.04
			run := func(simWorkers int) RunResult {
				o := o
				o.SimWorkers = simWorkers
				res, err := RunOne(spec, gov, o, 7)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial, sharded := run(0), run(3)
			if serial.Joules != sharded.Joules || serial.Seconds != sharded.Seconds {
				t.Errorf("%s not deterministic across workers: serial (%.9g J, %.9g s) vs sharded (%.9g J, %.9g s)",
					gov, serial.Joules, serial.Seconds, sharded.Joules, sharded.Seconds)
			}
			if serial.Joules <= 0 || serial.Seconds <= 0 {
				t.Errorf("%s degenerate run %+v", gov, serial)
			}
		})
	}
}

// TestTable1UnderAlternativeGovernors is the acceptance path behind
// `cuttlefish -governor=<name> table1`: the census must run under any
// registered strategy.
func TestTable1UnderAlternativeGovernors(t *testing.T) {
	o := testOptions()
	o.Scale = 0.04
	for _, gov := range []string{governor.Powersave, governor.Static} {
		o.Governor = gov
		rows, err := Table1(o)
		if err != nil {
			t.Fatalf("%s: %v", gov, err)
		}
		if len(rows) != 10 {
			t.Fatalf("%s: rows = %d, want 10", gov, len(rows))
		}
		for _, r := range rows {
			if r.Seconds <= 0 || r.Distinct < 1 {
				t.Errorf("%s/%s: degenerate row %+v", gov, r.Name, r)
			}
		}
	}
}
