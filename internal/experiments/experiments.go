// Package experiments regenerates every table and figure of the paper's
// evaluation: the Table 1 benchmark census, the Fig. 2 TIPI/JPI timelines,
// the Fig. 3 fixed-frequency JPI sweeps, the Fig. 10 (OpenMP) and Fig. 11
// (HClib) policy comparisons, the Table 2 frequency-settings report and the
// Table 3 Tinv sensitivity study.
//
// Absolute joules and seconds are simulator outputs; the contract is shape
// fidelity (see EXPERIMENTS.md for the paper-vs-measured record).
package experiments

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/machine"
	"repro/internal/runner"
	"repro/internal/stats"
)

// PolicyName identifies an execution environment.
type PolicyName string

const (
	// Default is the paper's baseline: performance governor, firmware Auto
	// uncore.
	Default PolicyName = "default"
	// Cuttlefish adapts both domains; CoreOnly and UncoreOnly are the §5
	// build variants.
	Cuttlefish PolicyName = "cuttlefish"
	CoreOnly   PolicyName = "cuttlefish-core"
	UncoreOnly PolicyName = "cuttlefish-uncore"
)

// CuttlefishPolicies are the three library variants compared against
// Default throughout §5.
var CuttlefishPolicies = []PolicyName{Cuttlefish, CoreOnly, UncoreOnly}

func (p PolicyName) daemonPolicy() (core.Policy, bool) {
	switch p {
	case Cuttlefish:
		return core.PolicyBoth, true
	case CoreOnly:
		return core.PolicyCoreOnly, true
	case UncoreOnly:
		return core.PolicyUncoreOnly, true
	default:
		return 0, false
	}
}

// Options configure an experiment run.
type Options struct {
	// Cores is the simulated core count (paper: 20).
	Cores int
	// Scale shrinks the paper's 60–80 s benchmark runs proportionally.
	// 1.0 reproduces paper-length runs; the default keeps CI fast while
	// leaving runs long enough (≈20 s) for exploration to amortise.
	Scale float64
	// Reps is the number of repetitions per point (paper: 10).
	Reps int
	// Seed is the base RNG seed; repetition r uses Seed+r.
	Seed int64
	// TinvSec is the daemon profiling interval.
	TinvSec float64
	// WarmupSec is the daemon warmup (§4.1).
	WarmupSec float64
	// Model selects the parallel runtime for benchmarks that support both.
	Model bench.Model
	// Workers bounds concurrent simulations; 0 means GOMAXPROCS.
	Workers int
	// SimWorkers shards each simulated machine's cores across that many
	// engine goroutines (machine.Config.Workers). The default 0 keeps
	// machines serial, which is right when Workers already saturates the
	// host with independent simulations.
	SimWorkers int
	// BatchQuanta caps the engine's run-to-next-event batching
	// (machine.Config.BatchQuanta); 0 means unbounded.
	BatchQuanta int
}

// pool returns the shared bounded-concurrency pool every harness fans its
// independent simulations out on.
func (o Options) pool() runner.Pool { return runner.Pool{Workers: o.Workers} }

// machineConfig builds the simulated socket's configuration, wiring the
// engine knobs through.
func (o Options) machineConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Cores = o.Cores
	cfg.Workers = o.SimWorkers
	cfg.BatchQuanta = o.BatchQuanta
	return cfg
}

// DefaultOptions returns a configuration that finishes the full evaluation
// in minutes on a laptop while preserving the paper's shapes.
func DefaultOptions() Options {
	return Options{
		Cores:     20,
		Scale:     0.30,
		Reps:      5,
		Seed:      1,
		TinvSec:   20e-3,
		WarmupSec: 2.0,
		Model:     bench.OpenMP,
	}
}

// RunResult is one benchmark execution.
type RunResult struct {
	Policy  PolicyName
	Seconds float64
	Joules  float64
	EDP     float64
	// AvgUncoreGHz is the run's time-weighted uncore frequency.
	AvgUncoreGHz float64
	// Daemon carries the slab list for Cuttlefish runs (nil for Default).
	Daemon *core.Daemon
}

// RunOne executes one benchmark under one policy.
func RunOne(spec bench.Spec, policy PolicyName, opt Options, seed int64) (RunResult, error) {
	cfg := opt.machineConfig()
	m, err := machine.New(cfg)
	if err != nil {
		return RunResult{}, err
	}
	defer m.Close()
	var daemon *core.Daemon
	if dp, isCuttlefish := policy.daemonPolicy(); isCuttlefish {
		dcfg := core.DefaultConfig()
		dcfg.Policy = dp
		if opt.TinvSec > 0 {
			dcfg.TinvSec = opt.TinvSec
		}
		dcfg.WarmupSec = opt.WarmupSec
		daemon, err = core.NewDaemon(dcfg, m.Device(), cfg.Cores, cfg.CoreGrid, cfg.UncoreGrid, m.Now())
		if err != nil {
			return RunResult{}, err
		}
		m.Schedule(&machine.Component{Period: dcfg.TinvSec, Core: dcfg.PinnedCore, Tick: daemon.Tick}, m.Now()+dcfg.TinvSec)
	} else {
		if err := governor.Apply(governor.Performance, m.Device(), cfg.Cores, cfg.CoreGrid); err != nil {
			return RunResult{}, err
		}
		m.SetFirmware(governor.DefaultAutoUFS())
	}
	src, err := spec.Build(bench.Params{Cores: cfg.Cores, Scale: opt.Scale, Seed: seed, Model: opt.Model})
	if err != nil {
		return RunResult{}, err
	}
	m.SetSource(src)
	maxSim := spec.PaperSeconds*opt.Scale*6 + opt.WarmupSec + 30
	sec := m.Run(maxSim)
	if !m.Finished() {
		return RunResult{}, fmt.Errorf("experiments: %s/%s did not finish in %.0f simulated seconds", spec.Name, policy, maxSim)
	}
	if daemon != nil {
		daemon.Stop()
		if err := daemon.Err(); err != nil {
			return RunResult{}, err
		}
	}
	j := m.TotalEnergy()
	return RunResult{
		Policy:       policy,
		Seconds:      sec,
		Joules:       j,
		EDP:          stats.EDP(j, sec),
		AvgUncoreGHz: m.AvgUncoreGHz(),
		Daemon:       daemon,
	}, nil
}

// forEach fans n independent simulations out on the shared runner pool.
// All failures are aggregated (the private pool this replaced returned only
// the first error and dropped the rest).
func forEach(n int, opt Options, fn func(i int) error) error {
	return opt.pool().ForEach(context.Background(), n, func(_ context.Context, i int) error {
		return fn(i)
	})
}
