// Package experiments regenerates every table and figure of the paper's
// evaluation: the Table 1 benchmark census, the Fig. 2 TIPI/JPI timelines,
// the Fig. 3 fixed-frequency JPI sweeps, the Fig. 10 (OpenMP) and Fig. 11
// (HClib) policy comparisons, the Table 2 frequency-settings report and the
// Table 3 Tinv sensitivity study.
//
// Every harness constructs its frequency-control strategy through the
// governor registry (repro/internal/governor): one RunOne path attaches a
// named governor, runs the benchmark and detaches — the msr-safe
// Save/Restore bracket and daemon teardown are uniform across success and
// error paths.
//
// Absolute joules and seconds are simulator outputs; the contract is shape
// fidelity (see EXPERIMENTS.md for the paper-vs-measured record).
package experiments

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/machine"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/timeline"
	"repro/internal/workload"
)

// Options configure an experiment run.
type Options struct {
	// Cores is the simulated core count (paper: 20).
	Cores int
	// Scale shrinks the paper's 60–80 s benchmark runs proportionally.
	// 1.0 reproduces paper-length runs; the default keeps CI fast while
	// leaving runs long enough (≈20 s) for exploration to amortise.
	Scale float64
	// Reps is the number of repetitions per point (paper: 10).
	Reps int
	// Seed is the base RNG seed; repetition r uses Seed+r.
	Seed int64
	// TinvSec is the daemon profiling interval.
	TinvSec float64
	// WarmupSec is the daemon warmup (§4.1): 0 keeps the paper's 2 s
	// default, negative disables the warmup (governor.Tuning semantics).
	WarmupSec float64
	// Model selects the parallel runtime for benchmarks that support both.
	Model bench.Model
	// Workers bounds concurrent simulations; 0 means GOMAXPROCS.
	Workers int
	// SimWorkers shards each simulated machine's cores across that many
	// engine goroutines (machine.Config.Workers). The default 0 keeps
	// machines serial, which is right when Workers already saturates the
	// host with independent simulations.
	SimWorkers int
	// BatchQuanta caps the engine's run-to-next-event batching
	// (machine.Config.BatchQuanta); 0 means unbounded.
	BatchQuanta int
	// Governor overrides the execution environment of single-environment
	// harnesses (Table1); empty means each harness's paper default.
	Governor string
	// Scenario names a registered workload scenario for the "run"
	// experiment; empty means Benchmark (the benchName argument) selects
	// the workload.
	Scenario string
	// ScenarioDef is an inline scenario definition (cuttlefish
	// -scenario file.json, or a RunSpec's scenario_def); it takes
	// precedence over Scenario and the benchmark name.
	ScenarioDef *scenario.Definition
	// Governors is the comparison set Compare evaluates against Baseline;
	// empty means the paper's three Cuttlefish variants.
	Governors []string
	// Baseline is the reference environment of the comparisons; empty
	// means "default".
	Baseline string
	// Memo is the prefix-snapshot tier (internal/memo): when non-nil,
	// work-sharing scenario runs look up the longest memoized prefix of
	// their region schedule, restore it, and simulate only the suffix.
	// It is runtime wiring, not part of any run's identity — results are
	// byte-identical with or without it.
	Memo *memo.Tier
	// MemoStats, when non-nil, accumulates this request's memo activity
	// (runs, prefix hits, quanta saved); the service layer surfaces it as
	// the X-Memo response detail.
	MemoStats *memo.RunStats
	// Span is the parent trace span this run records under; nil disables
	// tracing. Like Memo it is runtime wiring, never part of a run's
	// identity: spans live strictly outside report bytes and cache keys.
	Span *obs.Span
	// Profile enables the engine's wall-clock self-accounting
	// (machine.Config.Profile); results are bit-identical either way, and
	// the numbers surface as span arguments when Span is set.
	Profile bool
	// Timeline is the flight recorder this run samples into; nil disables
	// recording. Like Span and Memo it is runtime wiring, never part of a
	// run's identity: timelines live strictly outside report bytes, spec
	// hashes and memo keys, and are themselves a pure function of
	// simulation state (two identical runs record identical timelines).
	Timeline *timeline.Recorder
}

// pool returns the shared bounded-concurrency pool every harness fans its
// independent simulations out on.
func (o Options) pool() runner.Pool { return runner.Pool{Workers: o.Workers} }

// machineConfig builds the simulated socket's configuration, wiring the
// engine knobs through.
func (o Options) machineConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Cores = o.Cores
	cfg.Workers = o.SimWorkers
	cfg.BatchQuanta = o.BatchQuanta
	cfg.Profile = o.Profile
	return cfg
}

// tuning maps the run options onto the registry's per-run parameters.
func (o Options) tuning() governor.Tuning {
	return governor.Tuning{TinvSec: o.TinvSec, WarmupSec: o.WarmupSec}
}

// governorName resolves the single-environment strategy, falling back to
// the harness's paper default when -governor was not given.
func (o Options) governorName(paperDefault string) string {
	if o.Governor != "" {
		return o.Governor
	}
	return paperDefault
}

// comparisonSet resolves Compare's baseline and governor list.
func (o Options) comparisonSet() (baseline string, govs []string) {
	baseline = o.Baseline
	if baseline == "" {
		baseline = governor.Default
	}
	govs = o.Governors
	if len(govs) == 0 {
		govs = governor.CuttlefishVariants
	}
	return baseline, govs
}

// DefaultOptions returns a configuration that finishes the full evaluation
// in minutes on a laptop while preserving the paper's shapes.
func DefaultOptions() Options {
	return Options{
		Cores:     20,
		Scale:     0.30,
		Reps:      5,
		Seed:      1,
		TinvSec:   20e-3,
		WarmupSec: 2.0,
		Model:     bench.OpenMP,
	}
}

// RunResult is one benchmark execution.
type RunResult struct {
	// Governor is the registered strategy the run executed under.
	Governor string
	Seconds  float64
	Joules   float64
	EDP      float64
	// AvgUncoreGHz is the run's time-weighted uncore frequency.
	AvgUncoreGHz float64
	// Daemon carries the slab list for daemon-backed governors (nil
	// otherwise).
	Daemon *core.Daemon
}

// RunOne executes one benchmark under one registered governor. The
// governor's Attach/Detach brackets the run, so the MSR save/restore and
// daemon teardown happen on every path, including errors.
func RunOne(spec bench.Spec, gov string, opt Options, seed int64) (RunResult, error) {
	g, err := governor.New(gov, opt.tuning())
	if err != nil {
		return RunResult{}, err
	}
	return runGovernor(spec, g, opt, seed)
}

// RunEntry is RunOne for any workload in the scenario registry — a
// Table 1 benchmark, a built-in synthetic or an inline definition
// wrapped in an Entry. The run path (machine, governor bracket,
// deadline, report fields) is identical; only the workload construction
// differs.
func RunEntry(e scenario.Entry, gov string, opt Options, seed int64) (RunResult, error) {
	g, err := governor.New(gov, opt.tuning())
	if err != nil {
		return RunResult{}, err
	}
	if opt.Memo != nil && e.Def != nil {
		if res, handled, err := memoRun(e, g, opt, seed); handled {
			return res, err
		}
	}
	return runSource(e.Name, e.NominalSeconds, func(cores int) (workload.Source, error) {
		return e.Build(scenario.Params{Cores: cores, Scale: opt.Scale, Seed: seed, Model: string(opt.Model)})
	}, g, opt)
}

// runGovernor is RunOne for an already constructed strategy (the ablation
// study and sweeps build theirs directly).
func runGovernor(spec bench.Spec, g governor.Governor, opt Options, seed int64) (RunResult, error) {
	return runSource(spec.Name, spec.PaperSeconds, func(cores int) (workload.Source, error) {
		return spec.Build(bench.Params{Cores: cores, Scale: opt.Scale, Seed: seed, Model: opt.Model})
	}, g, opt)
}

// runSource executes one workload source under one attached governor:
// the single simulation path every benchmark and scenario run funnels
// through. nominalSec is the workload's approximate Default wall time at
// Scale 1; the simulation deadline derives from it with generous
// headroom.
func runSource(name string, nominalSec float64, build func(cores int) (workload.Source, error), g governor.Governor, opt Options) (RunResult, error) {
	cfg := opt.machineConfig()
	m, err := machine.New(cfg)
	if err != nil {
		return RunResult{}, err
	}
	defer m.Close()
	m.SetTimeline(opt.Timeline)
	att, err := g.Attach(m)
	if err != nil {
		return RunResult{}, err
	}
	defer att.Detach() // uniform cleanup on every early return
	src, err := build(cfg.Cores)
	if err != nil {
		return RunResult{}, err
	}
	m.SetSource(src)
	maxSim := nominalSec*opt.Scale*6 + opt.WarmupSec + 30
	sp := opt.Span.Child("simulate")
	sp.Set("workload", name)
	sec := simulate(m, maxSim, sp, opt.Timeline)
	finishSpan(sp, m, sec)
	if !m.Finished() {
		return RunResult{}, fmt.Errorf("experiments: %s/%s did not finish in %.0f simulated seconds", name, g.Name(), maxSim)
	}
	if err := att.Detach(); err != nil {
		return RunResult{}, err
	}
	j := m.TotalEnergy()
	return RunResult{
		Governor:     g.Name(),
		Seconds:      sec,
		Joules:       j,
		EDP:          stats.EDP(j, sec),
		AvgUncoreGHz: m.AvgUncoreGHz(),
		Daemon:       att.Daemon(),
	}, nil
}

// maxRegionSpans caps per-region trace spans for one simulation: past a
// few dozen the Chrome timeline stops being readable and the span list
// stops being cheap.
const maxRegionSpans = 64

// simulate runs m to completion. With a trace span it drives the machine
// through RunBoundaries, recording one child span per region stretch (up
// to maxRegionSpans) — span names carry the boundary index, so the trace
// structure is a pure function of the workload's region schedule. With a
// flight recorder it samples the machine at entry, at every region
// boundary (the same quiescent cuts the spans use) and after the run;
// sampling continues past maxRegionSpans even though spans stop. Sources
// that count no boundaries (or a nil span and recorder) take the plain
// Run path with identical simulated results.
func simulate(m *machine.Machine, maxSim float64, sp *obs.Span, rec *timeline.Recorder) float64 {
	if sp == nil && rec == nil {
		return m.Run(maxSim)
	}
	if rec != nil {
		m.RecordTimeline()
	}
	var cur *obs.Span
	if sp != nil {
		cur = sp.Child("region-0")
	}
	count := 0
	sec := m.RunBoundaries(maxSim, func(n int) bool {
		if rec != nil {
			m.RecordTimeline()
		}
		if cur != nil {
			cur.Set("end_boundary", n)
			cur.End()
			count++
			if count >= maxRegionSpans {
				cur = nil
			} else {
				cur = sp.Child(fmt.Sprintf("region-%d", n))
			}
		}
		return cur != nil || rec != nil
	})
	cur.End()
	if rec != nil {
		m.RecordTimeline()
	}
	return sec
}

// finishSpan closes a simulate span, attaching the simulated time and —
// when the machine was built with Profile — the engine's wall-clock
// accounting (per-phase simulated vs wall time, per-worker busy/idle).
func finishSpan(sp *obs.Span, m *machine.Machine, simSec float64) {
	if sp == nil {
		return
	}
	sp.Set("sim_seconds", simSec)
	if p := m.Profile(); p.Enabled {
		sp.Set("profile", p)
	}
	sp.End()
}

// forEach fans n independent simulations out on the shared runner pool.
// All failures are aggregated (the private pool this replaced returned only
// the first error and dropped the rest).
func forEach(n int, opt Options, fn func(i int) error) error {
	return opt.pool().ForEach(context.Background(), n, func(_ context.Context, i int) error {
		return fn(i)
	})
}
