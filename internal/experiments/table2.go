package experiments

import (
	"fmt"
	"sort"

	"repro/internal/bench"
	"repro/internal/governor"
	"repro/internal/tipi"
)

// FrequentSetting is the Cuttlefish outcome for one frequently occurring
// TIPI slab of a benchmark (one inner line of Table 2).
type FrequentSetting struct {
	Slab     tipi.Slab
	Range    string  // paper-style "0.064-0.068"
	SharePct float64 // share of Tinv samples
	// CFopt and UFopt in GHz (zero when unresolved, the paper's "-").
	CFOptGHz float64
	UFOptGHz float64
	Resolved bool
}

// Table2Row is one benchmark's frequency-settings report.
type Table2Row struct {
	Bench string
	// PctCFResolved and PctUFResolved are the share of distinct slabs whose
	// optima Cuttlefish discovered (Table 2's second and third columns).
	PctCFResolved float64
	PctUFResolved float64
	Frequent      []FrequentSetting
	// DefaultCFGHz and DefaultUFGHz are the Default execution's settings:
	// CFmax under the performance governor, and the firmware's
	// time-weighted average uncore frequency.
	DefaultCFGHz float64
	DefaultUFGHz float64
}

// Table2 runs full Cuttlefish on every OpenMP benchmark and reports the
// discovered CFopt/UFopt per frequent slab alongside Default's settings.
func Table2(opt Options) ([]Table2Row, error) {
	specs := bench.All()
	rows := make([]Table2Row, len(specs))
	err := forEach(len(specs), opt, func(i int) error {
		spec := specs[i]
		cf, err := RunOne(spec, governor.Cuttlefish, opt, opt.Seed)
		if err != nil {
			return err
		}
		def, err := RunOne(spec, governor.Default, opt, opt.Seed)
		if err != nil {
			return err
		}
		if cf.Daemon == nil {
			return fmt.Errorf("experiments: %s Cuttlefish run lost its daemon", spec.Name)
		}
		nodes := cf.Daemon.List().Nodes()
		total := cf.Daemon.Samples()
		row := Table2Row{
			Bench:        spec.Name,
			DefaultCFGHz: 2.3,
			DefaultUFGHz: def.AvgUncoreGHz,
		}
		var cfRes, ufRes int
		for _, n := range nodes {
			if n.CF.HasOpt() {
				cfRes++
			}
			if n.UF.HasOpt() {
				ufRes++
			}
			if total > 0 && float64(n.Hits) > FrequentShare*float64(total) {
				fs := FrequentSetting{
					Slab:     n.Slab,
					Range:    n.Slab.Format(tipi.DefaultSlabWidth),
					SharePct: 100 * float64(n.Hits) / float64(total),
					Resolved: n.CF.HasOpt() && n.UF.HasOpt(),
				}
				if n.CF.HasOpt() {
					fs.CFOptGHz = n.CF.OptRatio().GHz()
				}
				if n.UF.HasOpt() {
					fs.UFOptGHz = n.UF.OptRatio().GHz()
				}
				row.Frequent = append(row.Frequent, fs)
			}
		}
		if len(nodes) > 0 {
			row.PctCFResolved = 100 * float64(cfRes) / float64(len(nodes))
			row.PctUFResolved = 100 * float64(ufRes) / float64(len(nodes))
		}
		sort.Slice(row.Frequent, func(a, b int) bool { return row.Frequent[a].Slab < row.Frequent[b].Slab })
		rows[i] = row
		return nil
	})
	return rows, err
}
