package experiments

import (
	"math"
	"sort"
	"testing"

	"repro/internal/governor"
	"repro/internal/memo"
	"repro/internal/scenario"
)

// memoTestOptions shrink runs enough that resuming every governor stays
// CI-cheap while still crossing several phase boundaries.
func memoTestOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.02
	o.Reps = 1
	return o
}

func burstyEntry(t *testing.T) scenario.Entry {
	t.Helper()
	e, ok := scenario.Get("bursty")
	if !ok {
		t.Fatal("scenario bursty is not registered")
	}
	if e.Def == nil {
		t.Fatal("scenario bursty has no definition; the memo path needs one")
	}
	return e
}

// requireBitEqual asserts two runs are IEEE-754 bit-identical in every
// scalar output — the memo tier's whole soundness contract.
func requireBitEqual(t *testing.T, label string, a, b RunResult) {
	t.Helper()
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if a.Governor != b.Governor || !eq(a.Seconds, b.Seconds) || !eq(a.Joules, b.Joules) ||
		!eq(a.EDP, b.EDP) || !eq(a.AvgUncoreGHz, b.AvgUncoreGHz) {
		t.Errorf("%s: results diverge:\n  a = %+v\n  b = %+v", label, a, b)
	}
}

// memoKeysAndPoints recomputes the run's prefix-key chain and snapshot
// boundaries exactly as memoRun does, so tests can seed a tier with a
// chosen subset of snapshots.
func memoKeysAndPoints(t *testing.T, e scenario.Entry, gov string, opt Options, seed int64) (keys []string, points []int) {
	t.Helper()
	cfg := opt.machineConfig()
	regions, phases, err := e.Def.CompiledRegions(scenario.Params{
		Cores: cfg.Cores, Scale: opt.Scale, Seed: seed, Model: string(opt.Model),
	})
	if err != nil {
		t.Fatal(err)
	}
	maxSim := e.NominalSeconds*opt.Scale*6 + opt.WarmupSec + 30
	keys, err = prefixKeys(cfg, gov, opt.tuning(), seed, maxSim, regions)
	if err != nil {
		t.Fatal(err)
	}
	for k := range snapshotPoints(phases) {
		points = append(points, k)
	}
	sort.Ints(points)
	return keys, points
}

// TestMemoResumeBitIdenticalAllGovernors runs one scenario under every
// registered governor three ways — without memoization, cold with an
// empty tier, and warm against the cold run's snapshots — and requires
// all three bit-identical. The warm run resumes at the program-end
// snapshot, skipping simulation entirely.
func TestMemoResumeBitIdenticalAllGovernors(t *testing.T) {
	e := burstyEntry(t)
	for _, gov := range governor.Names() {
		gov := gov
		t.Run(gov, func(t *testing.T) {
			t.Parallel()
			opt := memoTestOptions()
			plain, err := RunEntry(e, gov, opt, 1)
			if err != nil {
				t.Fatal(err)
			}
			opt.Memo = memo.New(0, nil)
			rs := &memo.RunStats{}
			opt.MemoStats = rs
			cold, err := RunEntry(e, gov, opt, 1)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := RunEntry(e, gov, opt, 1)
			if err != nil {
				t.Fatal(err)
			}
			requireBitEqual(t, "cold vs plain", cold, plain)
			requireBitEqual(t, "warm vs plain", warm, plain)
			v := rs.View()
			if v.Runs != 2 || v.PrefixHits != 1 {
				t.Errorf("stats = %+v, want 2 runs with 1 prefix hit", v)
			}
			if v.QuantaSaved != v.QuantaTotal/2 {
				t.Errorf("warm run saved %d of %d quanta, want a full skip", v.QuantaSaved, v.QuantaTotal)
			}
			if v.SnapshotsStored == 0 {
				t.Error("cold run stored no snapshots")
			}
		})
	}
}

// TestMemoMidPrefixResume forces a resume from an intermediate boundary:
// the warm tier holds only one mid-program snapshot, so the run restores
// it and actually simulates the suffix — the strongest equivalence check,
// covering machine restore, governor state and the work-sharing
// checkpoint together.
func TestMemoMidPrefixResume(t *testing.T) {
	e := burstyEntry(t)
	const gov = "cuttlefish"
	opt := memoTestOptions()
	plain, err := RunEntry(e, gov, opt, 1)
	if err != nil {
		t.Fatal(err)
	}

	cold := memo.New(0, nil)
	opt.Memo = cold
	if _, err := RunEntry(e, gov, opt, 1); err != nil {
		t.Fatal(err)
	}

	keys, points := memoKeysAndPoints(t, e, gov, opt, 1)
	mid := points[len(points)/2]
	if mid == 0 || mid == len(keys)-1 {
		t.Fatalf("no intermediate snapshot point among %v", points)
	}
	body, ok := cold.Get(keys[mid])
	if !ok {
		t.Fatalf("cold run stored no snapshot at boundary %d", mid)
	}
	warmTier := memo.New(0, nil)
	warmTier.Put(keys[mid], body)

	opt.Memo = warmTier
	rs := &memo.RunStats{}
	opt.MemoStats = rs
	warm, err := RunEntry(e, gov, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "mid-prefix resume vs plain", warm, plain)
	v := rs.View()
	if v.PrefixHits != 1 {
		t.Fatalf("stats = %+v, want a prefix hit", v)
	}
	if v.QuantaSaved <= 0 || v.QuantaSaved >= v.QuantaTotal {
		t.Errorf("saved %d of %d quanta, want a strict mid-program resume", v.QuantaSaved, v.QuantaTotal)
	}
}

// TestMemoSnapshotsShareAcrossSimWorkers resumes a snapshot taken by a
// serial engine on a sharded one: worker count is excluded from the key
// chain because the engine is bit-identical across it, and this pins that
// the shared snapshot still reproduces the plain sharded run exactly.
func TestMemoSnapshotsShareAcrossSimWorkers(t *testing.T) {
	e := burstyEntry(t)
	const gov = "cuttlefish"
	serial := memoTestOptions()
	serial.SimWorkers = 1
	sharded := memoTestOptions()
	sharded.SimWorkers = 4

	plain, err := RunEntry(e, gov, sharded, 1)
	if err != nil {
		t.Fatal(err)
	}

	tier := memo.New(0, nil)
	serial.Memo = tier
	if _, err := RunEntry(e, gov, serial, 1); err != nil {
		t.Fatal(err)
	}
	keys, points := memoKeysAndPoints(t, e, gov, serial, 1)
	mid := points[len(points)/2]
	body, ok := tier.Get(keys[mid])
	if !ok {
		t.Fatalf("serial run stored no snapshot at boundary %d", mid)
	}
	warmTier := memo.New(0, nil)
	warmTier.Put(keys[mid], body)

	sharded.Memo = warmTier
	rs := &memo.RunStats{}
	sharded.MemoStats = rs
	warm, err := RunEntry(e, gov, sharded, 1)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "serial snapshot resumed on sharded engine", warm, plain)
	if v := rs.View(); v.PrefixHits != 1 {
		t.Errorf("stats = %+v, want a prefix hit", v)
	}
}

// TestMemoCorruptSnapshotFallsBack plants defective snapshots under valid
// keys and requires every one to be treated as a miss: the run re-executes
// from boot and stays bit-identical to the memo-free result.
func TestMemoCorruptSnapshotFallsBack(t *testing.T) {
	e := burstyEntry(t)
	const gov = "cuttlefish"
	opt := memoTestOptions()
	plain, err := RunEntry(e, gov, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	cold := memo.New(0, nil)
	opt.Memo = cold
	if _, err := RunEntry(e, gov, opt, 1); err != nil {
		t.Fatal(err)
	}
	keys, _ := memoKeysAndPoints(t, e, gov, opt, 1)
	final := keys[len(keys)-1]
	good, ok := cold.Get(final)
	if !ok {
		t.Fatal("cold run stored no program-end snapshot")
	}

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0xff // inside the checksummed machine snapshot
	cases := map[string][]byte{
		"bad magic":        []byte("not a snapshot container"),
		"truncated":        good[:len(good)-7],
		"corrupt interior": flipped,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			tier := memo.New(0, nil)
			tier.Put(final, body)
			o := memoTestOptions()
			o.Memo = tier
			rs := &memo.RunStats{}
			o.MemoStats = rs
			res, err := RunEntry(e, gov, o, 1)
			if err != nil {
				t.Fatal(err)
			}
			requireBitEqual(t, "fallback re-execute vs plain", res, plain)
			if v := rs.View(); v.PrefixHits != 0 {
				t.Errorf("stats = %+v, want no prefix hit for a defective snapshot", v)
			}
		})
	}
}
