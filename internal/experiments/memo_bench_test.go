package experiments

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/governor"
	"repro/internal/memo"
	"repro/internal/scenario"
)

// sweepAllGovernors runs the bursty scenario under every registered
// governor against one memo tier, returning the wall time and the
// accumulated memo counters.
func sweepAllGovernors(t *testing.T, tier *memo.Tier) (time.Duration, memo.RunStatsView) {
	t.Helper()
	opt := memoTestOptions()
	opt.Memo = tier
	rs := &memo.RunStats{}
	opt.MemoStats = rs
	e := burstyEntry(t)
	start := time.Now()
	for _, gov := range governor.Names() {
		if _, err := RunEntry(e, gov, opt, 1); err != nil {
			t.Fatal(err)
		}
	}
	return time.Since(start), rs.View()
}

// BenchmarkPrefixResume measures the warm path: an 8-governor sweep
// against a tier populated by an identical cold sweep, so every run
// resumes at its memoized program end.
func BenchmarkPrefixResume(b *testing.B) {
	tier := memo.New(0, nil)
	opt := memoTestOptions()
	opt.Memo = tier
	entry, ok := scenario.Get("bursty")
	if !ok || entry.Def == nil {
		b.Fatal("scenario bursty is not registered as memoizable")
	}
	for _, gov := range governor.Names() {
		if _, err := RunEntry(entry, gov, opt, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, gov := range governor.Names() {
			if _, err := RunEntry(entry, gov, opt, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestEmitMemoBaseline writes the BENCH_memo.json baseline when
// BENCH_MEMO_OUT names a path; CI regenerates it and the committed copy
// records the reference numbers: a warm 8-governor sweep must re-simulate
// strictly less than 100% of the cold sweep's quanta and run faster.
func TestEmitMemoBaseline(t *testing.T) {
	out := os.Getenv("BENCH_MEMO_OUT")
	if out == "" {
		t.Skip("set BENCH_MEMO_OUT=<path> to emit the baseline")
	}
	tier := memo.New(0, nil)
	coldWall, coldStats := sweepAllGovernors(t, tier)
	warmWall, warmStats := sweepAllGovernors(t, tier)
	if warmStats.QuantaSaved <= 0 {
		t.Fatal("warm sweep resumed nothing")
	}
	resim := float64(warmStats.QuantaTotal-warmStats.QuantaSaved) / float64(warmStats.QuantaTotal)
	if resim >= 1.0 {
		t.Fatalf("warm sweep re-simulated %.0f%% of its quanta", resim*100)
	}
	baseline := map[string]any{
		"benchmark":           "BenchmarkPrefixResume: 8-governor bursty sweep, cold vs warm memo tier",
		"scenario":            "bursty",
		"governors":           governor.Names(),
		"scale":               memoTestOptions().Scale,
		"cold_ms":             float64(coldWall.Microseconds()) / 1e3,
		"warm_ms":             float64(warmWall.Microseconds()) / 1e3,
		"speedup":             float64(coldWall) / float64(warmWall),
		"cold_quanta":         coldStats.QuantaTotal,
		"warm_quanta_total":   warmStats.QuantaTotal,
		"warm_quanta_saved":   warmStats.QuantaSaved,
		"warm_resim_fraction": resim,
		"snapshots_stored":    coldStats.SnapshotsStored,
		"snapshot_bytes":      tier.Bytes(),
	}
	raw, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: cold %v, warm %v, %d/%d quanta skipped",
		out, coldWall, warmWall, warmStats.QuantaSaved, warmStats.QuantaTotal)
}
