package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/freq"
	"repro/internal/governor"
	"repro/internal/machine"
)

// DDCMRow compares the two core-throttling knobs the energy-efficiency
// literature the paper builds on uses: DVFS (voltage and frequency drop
// together) versus DDCM (clock gating at full voltage, per Bhalachandra et
// al. [6]). Both rows throttle compute throughput by the same nominal
// factor; DVFS should win on energy because voltage scales quadratically
// into dynamic power while DDCM pays full leakage and voltage throughout —
// the reason the paper's design builds on DVFS+UFS rather than DDCM.
type DDCMRow struct {
	Bench string
	// ThrottleFrac is the nominal compute-throughput factor vs max.
	ThrottleFrac float64
	// DVFS and DDCM are energy savings (%) and slowdown (%) vs the
	// unthrottled run.
	DVFSEnergySavings float64
	DVFSSlowdown      float64
	DDCMEnergySavings float64
	DDCMSlowdown      float64
}

// DDCMStudy throttles each benchmark to ≈70% compute throughput with both
// knobs (uncore pinned at the firmware's quiet point to isolate the core
// knob) and reports the energy/time outcomes.
func DDCMStudy(names []string, opt Options) ([]DDCMRow, error) {
	if len(names) == 0 {
		names = []string{"UTS", "SOR-irt", "Heat-irt", "MiniFE"}
	}
	const (
		dvfsRatio = 16 // 1.6 GHz of 2.3 → 0.696
		ddcmLevel = 6  // 6/8 duty → 0.75, the closest DDCM step
	)
	rows := make([]DDCMRow, len(names))
	err := forEach(len(names), opt, func(i int) error {
		spec, ok := bench.Get(names[i])
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %q", names[i])
		}
		base, err := runThrottled(spec, opt, 23, 0)
		if err != nil {
			return err
		}
		dvfs, err := runThrottled(spec, opt, dvfsRatio, 0)
		if err != nil {
			return err
		}
		ddcm, err := runThrottled(spec, opt, 23, ddcmLevel)
		if err != nil {
			return err
		}
		rows[i] = DDCMRow{
			Bench:             spec.Name,
			ThrottleFrac:      float64(dvfsRatio) / 23,
			DVFSEnergySavings: 100 * (1 - dvfs.joules/base.joules),
			DVFSSlowdown:      100 * (dvfs.seconds/base.seconds - 1),
			DDCMEnergySavings: 100 * (1 - ddcm.joules/base.joules),
			DDCMSlowdown:      100 * (ddcm.seconds/base.seconds - 1),
		}
		return nil
	})
	return rows, err
}

type throttledOutcome struct {
	seconds float64
	joules  float64
}

func runThrottled(spec bench.Spec, opt Options, cfRatio uint8, ddcmLevel uint8) (throttledOutcome, error) {
	var out throttledOutcome
	mcfg := opt.machineConfig()
	m, err := machine.New(mcfg)
	if err != nil {
		return out, err
	}
	defer m.Close()
	// The ddcm governor pins the uncore at the firmware's quiet point, so
	// only the core knob varies between the rows.
	att, err := governor.NewDDCM(freq.Ratio(cfRatio), ddcmLevel).Attach(m)
	if err != nil {
		return out, err
	}
	defer att.Detach()
	src, err := spec.Build(bench.Params{Cores: mcfg.Cores, Scale: opt.Scale, Seed: opt.Seed, Model: opt.Model})
	if err != nil {
		return out, err
	}
	m.SetSource(src)
	out.seconds = m.Run(spec.PaperSeconds*opt.Scale*8 + 30)
	if !m.Finished() {
		return out, fmt.Errorf("experiments: %s throttled run did not finish", spec.Name)
	}
	out.joules = m.TotalEnergy()
	return out, nil
}
