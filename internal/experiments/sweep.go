package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/freq"
	"repro/internal/governor"
	"repro/internal/grid"
	"repro/internal/machine"
)

// SweepPoint is one fixed (CF, UF) execution of a benchmark.
type SweepPoint struct {
	CF      freq.Ratio
	UF      freq.Ratio
	Seconds float64
	Joules  float64
	EDP     float64
	JPI     float64
}

// Sweep runs a benchmark at every grid point (subsampled by the given
// strides) with frequencies pinned — the exhaustive oracle the online
// exploration is judged against. stride 2 covers the Haswell grids in 60
// runs.
func Sweep(name string, opt Options, cfStride, ufStride int) ([]SweepPoint, error) {
	spec, ok := bench.Get(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
	}
	if cfStride <= 0 {
		cfStride = 1
	}
	if ufStride <= 0 {
		ufStride = 1
	}
	mcfg := machine.DefaultConfig()
	// The (CF, UF) axes expand through the shared grid walk — the same
	// cross-product mechanism the sweep orchestrator uses for its
	// parameter axes — instead of a hand-rolled nested loop.
	cfs := ratioSteps(mcfg.CoreGrid.Min, mcfg.CoreGrid.Max, cfStride)
	ufs := ratioSteps(mcfg.UncoreGrid.Min, mcfg.UncoreGrid.Max, ufStride)
	points := make([]SweepPoint, 0, grid.Size([]int{len(cfs), len(ufs)}))
	grid.Cross([]int{len(cfs), len(ufs)}, func(idx []int) {
		points = append(points, SweepPoint{CF: cfs[idx[0]], UF: ufs[idx[1]]})
	})
	err := forEach(len(points), opt, func(i int) error {
		p := &points[i]
		mcfg := opt.machineConfig()
		m, err := machine.New(mcfg)
		if err != nil {
			return err
		}
		defer m.Close()
		att, err := governor.NewStatic(p.CF, p.UF).Attach(m)
		if err != nil {
			return err
		}
		defer att.Detach()
		src, err := spec.Build(bench.Params{Cores: mcfg.Cores, Scale: opt.Scale, Seed: opt.Seed, Model: opt.Model})
		if err != nil {
			return err
		}
		m.SetSource(src)
		p.Seconds = m.Run(spec.PaperSeconds*opt.Scale*10 + 30)
		if !m.Finished() {
			return fmt.Errorf("experiments: %s sweep point %v/%v did not finish", name, p.CF, p.UF)
		}
		p.Joules = m.TotalEnergy()
		p.EDP = p.Joules * p.Seconds
		p.JPI = p.Joules / m.TotalInstructions()
		return nil
	})
	return points, err
}

// ratioSteps lists the frequency grid's strided steps from min to max
// inclusive.
func ratioSteps(min, max freq.Ratio, stride int) []freq.Ratio {
	var steps []freq.Ratio
	for r := min; r <= max; r += freq.Ratio(stride) {
		steps = append(steps, r)
	}
	return steps
}

// OracleResult compares the daemon's end-state frequencies against the
// sweep's best grid point.
type OracleResult struct {
	Bench string
	// BestJPI is the grid point with the lowest JPI (the quantity the
	// daemon optimises per slab).
	BestJPI SweepPoint
	// Chosen is the sweep point at the daemon's dominant-slab optima.
	Chosen SweepPoint
	// GapPct is how much higher the chosen point's JPI is than the best.
	GapPct float64
}

// Oracle runs full Cuttlefish once, sweeps the grid at the same scale, and
// reports the JPI gap between the daemon's dominant-slab choice and the
// exhaustive optimum.
func Oracle(name string, opt Options, cfStride, ufStride int) (OracleResult, error) {
	spec, ok := bench.Get(name)
	if !ok {
		return OracleResult{}, fmt.Errorf("experiments: unknown benchmark %q", name)
	}
	res, err := RunOne(spec, governor.Cuttlefish, opt, opt.Seed)
	if err != nil {
		return OracleResult{}, err
	}
	var cfOpt, ufOpt freq.Ratio
	bestHits := 0
	for _, n := range res.Daemon.List().Nodes() {
		if n.Hits > bestHits && n.CF.HasOpt() && n.UF.HasOpt() {
			bestHits = n.Hits
			cfOpt, ufOpt = n.CF.OptRatio(), n.UF.OptRatio()
		}
	}
	if bestHits == 0 {
		return OracleResult{}, fmt.Errorf("experiments: %s resolved no slab to compare", name)
	}
	grid, err := Sweep(name, opt, cfStride, ufStride)
	if err != nil {
		return OracleResult{}, err
	}
	out := OracleResult{Bench: name}
	var haveChosen bool
	for _, p := range grid {
		if p.Seconds <= 0 {
			continue
		}
		if out.BestJPI.Seconds == 0 || p.JPI < out.BestJPI.JPI {
			out.BestJPI = p
		}
		if p.CF == cfOpt && p.UF == ufOpt {
			out.Chosen = p
			haveChosen = true
		}
	}
	if !haveChosen {
		// The daemon's choice fell between sweep strides; rerun that exact
		// point.
		exact, err := Sweep(name, opt, 1, 1)
		if err != nil {
			return OracleResult{}, err
		}
		for _, p := range exact {
			if p.JPI < out.BestJPI.JPI {
				out.BestJPI = p
			}
			if p.CF == cfOpt && p.UF == ufOpt {
				out.Chosen = p
				haveChosen = true
			}
		}
		if !haveChosen {
			return OracleResult{}, fmt.Errorf("experiments: daemon chose off-grid point %v/%v", cfOpt, ufOpt)
		}
	}
	out.GapPct = 100 * (out.Chosen.JPI/out.BestJPI.JPI - 1)
	return out, nil
}
