package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/machine"
	"repro/internal/stats"
)

// AblationVariant names a daemon configuration with one or more of the
// §4.4/§4.5/Algorithm-3 optimisations removed.
type AblationVariant string

const (
	// AblationFull is the paper's configuration (all optimisations on).
	AblationFull AblationVariant = "full"
	// AblationNoSeeding removes the §4.4 neighbour seeding of new slabs.
	AblationNoSeeding AblationVariant = "no-seeding"
	// AblationNoRevalidation removes the §4.5 bound propagation.
	AblationNoRevalidation AblationVariant = "no-revalidation"
	// AblationNoUFEstimation removes Algorithm 3's uncore window.
	AblationNoUFEstimation AblationVariant = "no-uf-estimation"
	// AblationNone removes all three: every slab explores both domains
	// over the full grids independently.
	AblationNone AblationVariant = "none"
)

// AblationVariants lists the studied configurations in report order.
var AblationVariants = []AblationVariant{
	AblationFull, AblationNoSeeding, AblationNoRevalidation, AblationNoUFEstimation, AblationNone,
}

func (v AblationVariant) apply(cfg *core.Config) error {
	switch v {
	case AblationFull:
	case AblationNoSeeding:
		cfg.DisableNeighborSeeding = true
	case AblationNoRevalidation:
		cfg.DisableRevalidation = true
	case AblationNoUFEstimation:
		cfg.DisableUFEstimation = true
	case AblationNone:
		cfg.DisableNeighborSeeding = true
		cfg.DisableRevalidation = true
		cfg.DisableUFEstimation = true
	default:
		return fmt.Errorf("experiments: unknown ablation variant %q", v)
	}
	return nil
}

// AblationRow reports one variant on one benchmark.
type AblationRow struct {
	Bench   string
	Variant AblationVariant
	// ExplorationPct is the share of Tinv samples spent with the current
	// slab's optima unresolved — the quantity the optimisations minimise.
	ExplorationPct float64
	// ResolvedPct is the share of distinct slabs with both optima found.
	ResolvedPct float64
	// EnergySavingsPct and SlowdownPct are vs the Default environment.
	EnergySavingsPct float64
	SlowdownPct      float64
}

// Ablation quantifies the paper's runtime optimisations on multi-slab
// benchmarks (single-slab benchmarks cannot benefit from neighbour
// information by construction).
func Ablation(names []string, opt Options) ([]AblationRow, error) {
	if len(names) == 0 {
		names = []string{"Heat-ws", "MiniFE", "HPCCG", "AMG"}
	}
	type job struct {
		bench   int
		variant AblationVariant
		rep     int
	}
	specs := make([]bench.Spec, len(names))
	for i, n := range names {
		s, ok := bench.Get(n)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", n)
		}
		specs[i] = s
	}
	var jobs []job
	for b := range specs {
		for _, v := range AblationVariants {
			for r := 0; r < opt.Reps; r++ {
				jobs = append(jobs, job{bench: b, variant: v, rep: r})
			}
		}
	}
	outcomes := make([]ablatedOutcome, len(jobs))
	err := forEach(len(jobs), opt, func(i int) error {
		j := jobs[i]
		o, err := runAblated(specs[j.bench], j.variant, opt, opt.Seed+int64(j.rep))
		if err != nil {
			return err
		}
		outcomes[i] = o
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Defaults for the savings baseline.
	defaults := make([]RunResult, len(specs)*opt.Reps)
	err = forEach(len(defaults), opt, func(i int) error {
		b, r := i/opt.Reps, i%opt.Reps
		res, err := RunOne(specs[b], governor.Default, opt, opt.Seed+int64(r))
		if err != nil {
			return err
		}
		defaults[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	var rows []AblationRow
	for b, spec := range specs {
		for vi, v := range AblationVariants {
			var expl, res, sav, slow []float64
			for r := 0; r < opt.Reps; r++ {
				o := outcomes[(b*len(AblationVariants)+vi)*opt.Reps+r]
				def := defaults[b*opt.Reps+r]
				expl = append(expl, o.explorationPct)
				res = append(res, o.resolvedPct)
				sav = append(sav, stats.SavingsPercent(def.Joules, o.joules))
				slow = append(slow, stats.SlowdownPercent(def.Seconds, o.seconds))
			}
			rows = append(rows, AblationRow{
				Bench:            spec.Name,
				Variant:          v,
				ExplorationPct:   stats.Mean(expl),
				ResolvedPct:      stats.Mean(res),
				EnergySavingsPct: stats.Mean(sav),
				SlowdownPct:      stats.Mean(slow),
			})
		}
	}
	return rows, nil
}

// ablatedOutcome is one ablated run's measurements.
type ablatedOutcome struct {
	explorationPct float64
	resolvedPct    float64
	seconds        float64
	joules         float64
}

func runAblated(spec bench.Spec, v AblationVariant, opt Options, seed int64) (ablatedOutcome, error) {
	var out ablatedOutcome
	mcfg := opt.machineConfig()
	m, err := machine.New(mcfg)
	if err != nil {
		return out, err
	}
	defer m.Close()
	// Resolve Tinv/warmup exactly like every registry-built daemon, then
	// layer the ablation switches on top.
	dcfg := opt.tuning().DaemonConfig(core.PolicyBoth)
	if err := v.apply(&dcfg); err != nil {
		return out, err
	}
	att, err := governor.NewCuttlefishFromConfig(dcfg).Attach(m)
	if err != nil {
		return out, err
	}
	defer att.Detach()
	daemon := att.Daemon()
	src, err := spec.Build(bench.Params{Cores: mcfg.Cores, Scale: opt.Scale, Seed: seed, Model: opt.Model})
	if err != nil {
		return out, err
	}
	m.SetSource(src)
	out.seconds = m.Run(spec.PaperSeconds*opt.Scale*6 + opt.WarmupSec + 30)
	if !m.Finished() {
		return out, fmt.Errorf("experiments: %s/%s did not finish", spec.Name, v)
	}
	if err := att.Detach(); err != nil {
		return out, err
	}
	out.joules = m.TotalEnergy()
	if s := daemon.Samples(); s > 0 {
		out.explorationPct = 100 * float64(daemon.ExplorationSamples()) / float64(s)
	}
	nodes := daemon.List().Nodes()
	if len(nodes) > 0 {
		resolved := 0
		for _, n := range nodes {
			if n.CF.HasOpt() && n.UF.HasOpt() {
				resolved++
			}
		}
		out.resolvedPct = 100 * float64(resolved) / float64(len(nodes))
	}
	return out, nil
}
