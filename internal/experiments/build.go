package experiments

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/report"
	"repro/internal/scenario"
)

// Names lists the experiment harnesses BuildReport can run, in the
// paper's presentation order. "run" is the single-benchmark execution the
// service layer's RunSpec defaults to; the rest regenerate one artefact of
// the evaluation each.
var Names = []string{
	"run", "table1", "fig2", "fig3a", "fig3b", "fig10", "fig11",
	"table2", "table3", "ablation", "ddcm", "oracle",
}

// Known reports whether name is an experiment BuildReport understands.
func Known(name string) bool {
	for _, n := range Names {
		if n == name {
			return true
		}
	}
	return false
}

// OracleBenchmarks are the representative benchmarks the oracle study
// sweeps (one per TIPI regime).
var OracleBenchmarks = []string{"UTS", "SOR-irt", "Heat-irt", "MiniFE"}

// BuildReport runs the named experiment and converts its rows to a
// structured report. It is the single dispatch point behind the cuttlefish
// CLI and the cfserve executor, so a new harness becomes remotely servable
// the moment it is added here. benchName is only consulted by "run".
func BuildReport(name, benchName string, opt Options) (*report.RunReport, error) {
	switch name {
	case "run":
		return RunOneReport(benchName, opt)
	case "table1":
		rows, err := Table1(opt)
		if err != nil {
			return nil, err
		}
		return Table1Report(rows, opt), nil
	case "fig2":
		recs, err := Fig2(opt)
		if err != nil {
			return nil, err
		}
		return Fig2Report(recs, opt), nil
	case "fig3a":
		pts, err := Fig3a(opt)
		if err != nil {
			return nil, err
		}
		return Fig3Report("fig3a", "Figure 3(a): average JPI of frequent TIPI slabs, UF = 3.0 GHz", pts, opt), nil
	case "fig3b":
		pts, err := Fig3b(opt)
		if err != nil {
			return nil, err
		}
		return Fig3Report("fig3b", "Figure 3(b): average JPI of frequent TIPI slabs, CF = 2.3 GHz", pts, opt), nil
	case "fig10":
		cmp, err := Fig10(opt)
		if err != nil {
			return nil, err
		}
		return ComparisonReport("fig10", "Figure 10 (OpenMP)", cmp), nil
	case "fig11":
		cmp, err := Fig11(opt)
		if err != nil {
			return nil, err
		}
		return ComparisonReport("fig11", "Figure 11 (HClib)", cmp), nil
	case "table2":
		rows, err := Table2(opt)
		if err != nil {
			return nil, err
		}
		return Table2Report(rows, opt), nil
	case "table3":
		rows, err := Table3(opt, nil)
		if err != nil {
			return nil, err
		}
		return Table3Report(rows, opt), nil
	case "ablation":
		rows, err := Ablation(nil, opt)
		if err != nil {
			return nil, err
		}
		return AblationReport(rows, opt), nil
	case "ddcm":
		rows, err := DDCMStudy(nil, opt)
		if err != nil {
			return nil, err
		}
		return DDCMReport(rows, opt), nil
	case "oracle":
		var rows []OracleResult
		for _, b := range OracleBenchmarks {
			r, err := Oracle(b, opt, 1, 2)
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
		return OracleReport(rows, opt), nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
}

// resolveWorkload maps the "run" experiment's selectors onto one
// scenario-registry entry, in precedence order: an inline definition,
// then the named workload (benchmark or registered scenario — both live
// in the same registry, so one lookup serves both).
func resolveWorkload(benchName string, opt Options) (scenario.Entry, error) {
	if opt.ScenarioDef != nil {
		def := opt.ScenarioDef.Normalized()
		if err := def.Validate(); err != nil {
			return scenario.Entry{}, err
		}
		cores := opt.Cores
		if cores <= 0 {
			cores = DefaultOptions().Cores
		}
		return scenario.Entry{
			Name:           def.Name,
			Description:    def.Description,
			NominalSeconds: def.EstimateSeconds(cores),
			Build:          def.Build,
			Def:            &def,
		}, nil
	}
	name := benchName
	if name == "" {
		name = opt.Scenario
	}
	if name == "" {
		return scenario.Entry{}, fmt.Errorf("experiments: the run experiment needs a workload (benchmarks: %v; scenarios: %v)",
			bench.Names(), scenario.NamesOf(scenario.KindSynthetic))
	}
	e, ok := scenario.Get(name)
	if !ok {
		return scenario.Entry{}, fmt.Errorf("experiments: unknown workload %q (benchmarks: %v; scenarios: %v)",
			name, bench.Names(), scenario.NamesOf(scenario.KindSynthetic))
	}
	return e, nil
}

// Column names of the "run" report, exported so consumers that parse the
// canonical bytes back out of the cache (the fuzz differ, sweep
// aggregation tooling) name columns against the producer instead of
// re-spelling strings that could silently drift.
const (
	RunColBenchmark = "benchmark"
	RunColGovernor  = "governor"
	RunColRep       = "rep"
	RunColSeconds   = "seconds"
	RunColJoules    = "joules"
	RunColAvgWatts  = "avg_watts"
	RunColEDP       = "edp"
	RunColUncoreGHz = "avg_uncore_ghz"
)

// RunOneReport executes one workload Reps times under the configured
// governor and reports one row per repetition: the "run" experiment behind
// POST /v1/runs. The workload resolves through the scenario registry —
// a Table 1 benchmark, a built-in synthetic scenario or an inline
// definition. Repetition r runs with Seed+r, so the whole report is a
// pure function of (workload, governor, tuning, cores, scale, reps, seed)
// — the property the service cache keys on.
func RunOneReport(benchName string, opt Options) (*report.RunReport, error) {
	entry, err := resolveWorkload(benchName, opt)
	if err != nil {
		return nil, err
	}
	gov := opt.governorName("default")
	reps := opt.Reps
	if reps < 1 {
		reps = 1
	}
	results := make([]RunResult, reps)
	err = forEach(reps, opt, func(r int) error {
		ropt := opt
		// Each repetition records under its own span lane; the index-bearing
		// name keeps span IDs deterministic under concurrent creation.
		sp := opt.Span.ChildLane(fmt.Sprintf("rep-%d", r), r+1)
		sp.Set("seed", opt.Seed+int64(r))
		ropt.Span = sp
		// Timelines split per repetition too, under the matching lane name,
		// so rep r's samples line up with rep r's spans.
		ropt.Timeline = opt.Timeline.Lane(fmt.Sprintf("rep-%d", r), r)
		res, err := RunEntry(entry, gov, ropt, opt.Seed+int64(r))
		sp.End()
		results[r] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	rep := report.New("run", RunColBenchmark, RunColGovernor, RunColRep, RunColSeconds,
		RunColJoules, RunColAvgWatts, RunColEDP, RunColUncoreGHz)
	rep.Governor = gov
	rep.Title = fmt.Sprintf("%s under %s (scale %.2f, %d rep(s))", entry.Name, gov, opt.Scale, reps)
	rep.Meta = opt.meta()
	for r, res := range results {
		rep.AddRow(entry.Name, res.Governor, r, res.Seconds, res.Joules,
			res.Joules/res.Seconds, res.EDP, res.AvgUncoreGHz)
	}
	return rep, nil
}
