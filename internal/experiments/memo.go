package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/governor"
	"repro/internal/machine"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/timeline"
)

// maxSnapshotsPerRun caps how many region boundaries one run snapshots.
// Snapshots cost encoding time and cache budget; past a few dozen per run
// the marginal prefix they could save is a sliver of the program.
const maxSnapshotsPerRun = 32

// memoContainerMagic versions the snapshot container layout (the machine
// snapshot inside carries its own magic and checksum).
const memoContainerMagic = "cfmemo1\n"

// prefixKeys derives the snapshot key chain for one run: keys[k] commits
// to everything the simulation's future depends on after k completed
// regions. The base digest covers the machine configuration (with the
// engine worker count zeroed — work-sharing results are bit-identical
// across worker counts, so snapshots are shareable across them), the
// governor name and tuning, the seed and the simulation deadline; each
// link then absorbs one region's exact values (IEEE-754 bit patterns, so
// "almost equal" programs never collide). Two runs agree on keys[k] iff
// they are bit-identical through their first k regions.
func prefixKeys(cfg machine.Config, govName string, t governor.Tuning, seed int64, maxSim float64, regions []sched.Region) ([]string, error) {
	keyCfg := cfg
	keyCfg.Workers = 0
	// Profile, like Workers, is pure wall-clock instrumentation with no
	// effect on simulated state: snapshots are shareable across profiled
	// and unprofiled runs, so it must not fork the key chain.
	keyCfg.Profile = false
	cfgJSON, err := json.Marshal(keyCfg)
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	var b [8]byte
	f64 := func(v float64) {
		binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	h.Write([]byte("cuttlefish-memo-base1\n"))
	h.Write(cfgJSON)
	h.Write([]byte{0})
	h.Write([]byte(govName))
	h.Write([]byte{0})
	f64(t.TinvSec)
	f64(t.WarmupSec)
	h.Write([]byte{byte(t.CF), byte(t.UF), t.DDCMLevel})
	binary.BigEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	f64(maxSim)
	prev := h.Sum(nil)

	keys := make([]string, len(regions)+1)
	keys[0] = hex.EncodeToString(prev)
	for i, r := range regions {
		hh := sha256.New()
		hh.Write(prev)
		var rb [7 * 8]byte
		binary.BigEndian.PutUint64(rb[0:], math.Float64bits(r.Seg.Instructions))
		binary.BigEndian.PutUint64(rb[8:], math.Float64bits(r.Seg.MissPerInstr))
		binary.BigEndian.PutUint64(rb[16:], math.Float64bits(r.Seg.IPC))
		binary.BigEndian.PutUint64(rb[24:], math.Float64bits(r.Seg.RemoteFrac))
		binary.BigEndian.PutUint64(rb[32:], math.Float64bits(r.Seg.Exposure))
		binary.BigEndian.PutUint64(rb[40:], uint64(r.Chunks))
		binary.BigEndian.PutUint64(rb[48:], math.Float64bits(r.JitterFrac))
		hh.Write(rb[:])
		prev = hh.Sum(nil)
		keys[i+1] = hex.EncodeToString(prev)
	}
	return keys, nil
}

// snapshotPoints picks which region boundaries a run snapshots: every
// phase transition (where a diverging re-run most plausibly splits from
// this one), the program end (so a byte-identical re-run skips simulation
// entirely and an iterations-extended one resumes at the old end), and —
// when the budget allows — an even stride through single-phase stretches.
// Programs whose phase transitions alone exceed the budget keep an evenly
// thinned subset.
func snapshotPoints(phases []int) map[int]bool {
	total := len(phases)
	pts := map[int]bool{total: true}
	var cand []int
	for k := 1; k < total; k++ {
		if phases[k] != phases[k-1] {
			cand = append(cand, k)
		}
	}
	if len(cand) <= maxSnapshotsPerRun-1 {
		for _, k := range cand {
			pts[k] = true
		}
		if need := maxSnapshotsPerRun - len(pts); need > 0 && total > 1 {
			stride := (total + need - 1) / need
			if stride < 1 {
				stride = 1
			}
			for k := stride; k < total && len(pts) < maxSnapshotsPerRun; k += stride {
				pts[k] = true
			}
		}
	} else {
		step := (len(cand) + maxSnapshotsPerRun - 2) / (maxSnapshotsPerRun - 1)
		for i := 0; i < len(cand); i += step {
			pts[cand[i]] = true
		}
	}
	return pts
}

// encodeContainer packs one resumable boundary: the machine snapshot (its
// own checksummed encoding), the governor's opaque state blob, and the
// work-sharing checkpoint.
func encodeContainer(machineSnap, govBlob []byte, cp sched.WSCheckpoint) []byte {
	b := make([]byte, 0, len(memoContainerMagic)+4+len(machineSnap)+4+len(govBlob)+24)
	b = append(b, memoContainerMagic...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(machineSnap)))
	b = append(b, machineSnap...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(govBlob)))
	b = append(b, govBlob...)
	b = binary.BigEndian.AppendUint64(b, uint64(cp.RegionsDone))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(cp.OpenAt))
	b = binary.BigEndian.AppendUint64(b, uint64(cp.Chunks))
	return b
}

// decodeContainer unpacks encodeContainer's layout. Any defect is an
// error, which the memo path treats as a miss.
func decodeContainer(raw []byte) (machineSnap, govBlob []byte, cp sched.WSCheckpoint, err error) {
	bad := func(msg string) ([]byte, []byte, sched.WSCheckpoint, error) {
		return nil, nil, sched.WSCheckpoint{}, fmt.Errorf("experiments: snapshot container %s", msg)
	}
	if len(raw) < len(memoContainerMagic) || string(raw[:len(memoContainerMagic)]) != memoContainerMagic {
		return bad("has a bad magic")
	}
	raw = raw[len(memoContainerMagic):]
	take := func(n int) []byte {
		if len(raw) < n {
			return nil
		}
		p := raw[:n]
		raw = raw[n:]
		return p
	}
	lenField := take(4)
	if lenField == nil {
		return bad("is truncated")
	}
	machineSnap = take(int(binary.BigEndian.Uint32(lenField)))
	if machineSnap == nil {
		return bad("is truncated")
	}
	lenField = take(4)
	if lenField == nil {
		return bad("is truncated")
	}
	govBlob = take(int(binary.BigEndian.Uint32(lenField)))
	if govBlob == nil {
		return bad("is truncated")
	}
	tail := take(24)
	if tail == nil {
		return bad("is truncated")
	}
	if len(raw) != 0 {
		return bad("has trailing bytes")
	}
	cp.RegionsDone = int(binary.BigEndian.Uint64(tail[0:]))
	cp.OpenAt = math.Float64frombits(binary.BigEndian.Uint64(tail[8:]))
	cp.Chunks = int(binary.BigEndian.Uint64(tail[16:]))
	if cp.RegionsDone < 0 || cp.Chunks < 0 {
		return bad("has negative counters")
	}
	return machineSnap, govBlob, cp, nil
}

// memoRun is RunEntry's prefix-resume path: look up the longest memoized
// prefix of this run in the snapshot tier, restore it into a freshly
// booted machine, and simulate only the suffix — storing new snapshots at
// phase boundaries on the way. handled is false when the entry has no
// deterministic region schedule (task-DAG decompositions, whose stealing
// schedule depends on engine worker count), sending the caller to the
// plain path. Any defect in a cached snapshot — truncation, checksum
// failure, configuration mismatch — falls back to a fresh full run, whose
// results are byte-identical to never having had a cache.
func memoRun(e scenario.Entry, g governor.Governor, opt Options, seed int64) (res RunResult, handled bool, err error) {
	cfg := opt.machineConfig()
	regions, phases, err := e.Def.CompiledRegions(scenario.Params{
		Cores: cfg.Cores, Scale: opt.Scale, Seed: seed, Model: string(opt.Model),
	})
	if err != nil {
		return RunResult{}, false, nil
	}
	maxSim := e.NominalSeconds*opt.Scale*6 + opt.WarmupSec + 30
	keys, err := prefixKeys(cfg, g.Name(), opt.tuning(), seed, maxSim, regions)
	if err != nil {
		return RunResult{}, false, nil
	}
	total := len(regions)
	gen := func(s int) (sched.Region, bool) {
		if s >= total {
			return sched.Region{}, false
		}
		return regions[s], true
	}
	points := snapshotPoints(phases)

	// Longest memoized prefix: probe from the whole program down. The
	// common warm cases (identical re-run, extended program) hit on the
	// first few probes; a cold run walks the chain once against an
	// in-memory map.
	probe := opt.Span.Child("memo_probe")
	resumeK := 0
	var container []byte
	for k := total; k >= 1; k-- {
		if body, ok := opt.Memo.Get(keys[k]); ok {
			resumeK, container = k, body
			break
		}
	}
	probe.Set("resume_k", resumeK)
	probe.Set("total_regions", total)
	probe.End()

	// execute boots a machine, optionally restores the container's
	// boundary state, and simulates to completion, snapshotting the
	// selected later boundaries. resumeNow is the restored simulation
	// time (0 for a from-boot run).
	execute := func(fromK int, container []byte) (RunResult, float64, int, error) {
		m, err := machine.New(cfg)
		if err != nil {
			return RunResult{}, 0, 0, err
		}
		defer m.Close()
		m.SetTimeline(opt.Timeline)
		att, err := g.Attach(m)
		if err != nil {
			return RunResult{}, 0, 0, err
		}
		defer att.Detach()
		var ws *sched.WorkSharing
		if container != nil {
			restore := opt.Span.Child("memo_restore")
			msnap, govBlob, cp, err := decodeContainer(container)
			if err != nil {
				return RunResult{}, 0, 0, err
			}
			if cp.RegionsDone != fromK {
				return RunResult{}, 0, 0, fmt.Errorf("experiments: snapshot records %d regions, key position says %d", cp.RegionsDone, fromK)
			}
			snap, err := machine.DecodeSnapshot(msnap)
			if err != nil {
				return RunResult{}, 0, 0, err
			}
			if err := m.Restore(snap); err != nil {
				return RunResult{}, 0, 0, err
			}
			if err := att.StateRestore(govBlob); err != nil {
				return RunResult{}, 0, 0, err
			}
			ws = sched.NewWorkSharingAt(cfg.Cores, gen, seed, cp)
			restore.Set("from_k", fromK)
			restore.End()
			// The prefix-restore marker: a resumed timeline legitimately
			// starts here rather than at boot, so the marker is what lets a
			// reader line it up against a fresh run's recording.
			opt.Timeline.AddEvent(timeline.Event{T: m.Now(), Kind: timeline.KindMemoRestore, From: fromK})
		} else {
			ws = sched.NewWorkSharing(cfg.Cores, gen, seed)
		}
		m.SetSource(ws)
		resumeNow := m.Now()
		stored := 0
		sim := opt.Span.Child("simulate")
		sim.Set("resume_sim_seconds", resumeNow)
		if opt.Timeline != nil {
			m.RecordTimeline()
		}
		m.RunBoundaries(maxSim-resumeNow, func(n int) bool {
			if opt.Timeline != nil {
				m.RecordTimeline()
			}
			if !points[n] {
				return true
			}
			cp, ok := ws.Checkpoint()
			if !ok || cp.RegionsDone != n {
				return true
			}
			govBlob, err := att.StateSnapshot()
			if err != nil {
				return false // e.g. a latched daemon error; stop snapshotting
			}
			opt.Memo.Put(keys[n], encodeContainer(m.Snapshot().Encode(), govBlob, cp))
			stored++
			return true
		})
		sim.Set("snapshots_stored", stored)
		if opt.Timeline != nil {
			m.RecordTimeline()
		}
		finishSpan(sim, m, m.Now()-resumeNow)
		if !m.Finished() {
			return RunResult{}, resumeNow, stored, fmt.Errorf("experiments: %s/%s did not finish in %.0f simulated seconds", e.Name, g.Name(), maxSim)
		}
		if err := att.Detach(); err != nil {
			return RunResult{}, resumeNow, stored, err
		}
		sec := m.Now()
		j := m.TotalEnergy()
		return RunResult{
			Governor:     g.Name(),
			Seconds:      sec,
			Joules:       j,
			EDP:          stats.EDP(j, sec),
			AvgUncoreGHz: m.AvgUncoreGHz(),
			Daemon:       att.Daemon(),
		}, resumeNow, stored, nil
	}

	resumed := false
	var resumeNow float64
	var stored int
	if resumeK > 0 {
		if r, now, s, err := execute(resumeK, container); err == nil {
			res, resumeNow, stored, resumed = r, now, s, true
		}
		// A failed restore discards the tainted machine; fall through to a
		// clean from-boot run.
	}
	if !resumed {
		res, _, stored, err = execute(0, nil)
		if err != nil {
			return RunResult{}, true, err
		}
	}
	saved := int64(math.Round(resumeNow / cfg.QuantumSec))
	totalQ := int64(math.Round(res.Seconds / cfg.QuantumSec))
	if resumed {
		opt.Memo.RecordResume(saved)
	}
	if opt.MemoStats != nil {
		opt.MemoStats.Record(resumed, saved, totalQ, stored)
	}
	return res, true, nil
}
