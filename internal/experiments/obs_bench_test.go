package experiments

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/timeline"
)

// table1Wall measures one Table 1 census at bench scale, optionally with
// the flight recorder armed, and returns the wall time plus the armed
// recorder's export (nil when off).
func table1Wall(t *testing.T, record bool) (time.Duration, *timeline.Recorder) {
	t.Helper()
	o := DefaultOptions()
	o.Scale = 0.12
	o.Reps = 2
	var rec *timeline.Recorder
	if record {
		rec = timeline.New("bench")
		o.Timeline = rec
	}
	start := time.Now()
	if _, err := Table1(o); err != nil {
		t.Fatal(err)
	}
	return time.Since(start), rec
}

// TestEmitObsBaseline writes the BENCH_obs.json baseline when
// BENCH_OBS_OUT names a path: the wall-time overhead of running the
// BenchmarkTable1 census with the flight recorder armed versus off. The
// committed copy records the reference delta; the target is < 3%, and
// the recorder must be invisible in report bytes regardless (pinned by
// TestTimelineInvisibleToReports). Best-of-N wall times keep host noise
// out of the recorded ratio.
func TestEmitObsBaseline(t *testing.T) {
	out := os.Getenv("BENCH_OBS_OUT")
	if out == "" {
		t.Skip("set BENCH_OBS_OUT=<path> to emit the baseline")
	}
	// Interleave off/on pairs and keep the best of each, so host-load
	// drift during the measurement hits both sides equally.
	const iters = 5
	var offWall, onWall time.Duration
	var rec *timeline.Recorder
	for i := 0; i < iters; i++ {
		off, _ := table1Wall(t, false)
		on, r := table1Wall(t, true)
		if i == 0 || off < offWall {
			offWall = off
		}
		if i == 0 || on < onWall {
			onWall, rec = on, r
		}
	}
	var samples, events int
	for _, ln := range rec.Export().Lanes {
		samples += len(ln.Samples)
		events += len(ln.Events)
	}
	if samples == 0 {
		t.Fatal("armed census recorded no samples")
	}
	overhead := (float64(onWall)/float64(offWall) - 1) * 100
	baseline := map[string]any{
		"benchmark":        "BenchmarkTable1 vs BenchmarkTable1Timeline: census wall time, recorder off vs armed",
		"scale":            0.12,
		"reps":             2,
		"iters":            iters,
		"off_ms":           float64(offWall.Microseconds()) / 1e3,
		"on_ms":            float64(onWall.Microseconds()) / 1e3,
		"overhead_pct":     overhead,
		"timeline_samples": samples,
		"timeline_events":  events,
	}
	raw, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: off %v, on %v, overhead %.2f%%", out, offWall, onWall, overhead)
}
