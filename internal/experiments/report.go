package experiments

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/tipi"
	"repro/internal/trace"
)

// meta echoes the options that shape a report's numbers.
func (o Options) meta() map[string]any {
	return map[string]any{
		"cores": o.Cores,
		"scale": o.Scale,
		"reps":  o.Reps,
		"seed":  o.Seed,
		"model": string(o.Model),
	}
}

// Table1Report converts the benchmark census for -format rendering.
func Table1Report(rows []Table1Row, opt Options) *report.RunReport {
	r := report.New("table1", "benchmark", "style", "seconds", "tipi_min", "tipi_max", "distinct_slabs", "frequent_slabs")
	r.Governor = opt.governorName("default")
	r.Title = fmt.Sprintf("Table 1: benchmark census (scale %.2f, %s environment)", opt.Scale, r.Governor)
	r.Meta = opt.meta()
	for _, row := range rows {
		r.AddRow(row.Name, string(row.Style), row.Seconds, row.TIPIMin, row.TIPIMax, row.Distinct, row.Frequent)
	}
	return r
}

// Fig2Report flattens the per-benchmark TIPI/JPI timelines.
func Fig2Report(recs map[string]*trace.Recorder, opt Options) *report.RunReport {
	r := report.New("fig2", "benchmark", "time_s", "tipi", "jpi", "cf_ghz", "uf_ghz")
	r.Title = "Figure 2: TIPI and JPI timelines at max CF/UF"
	r.Meta = opt.meta()
	for _, name := range Fig2Benchmarks {
		rec := recs[name]
		if rec == nil {
			continue
		}
		for _, p := range rec.Points() {
			r.AddRow(name, p.Time, p.TIPI, p.JPI, p.CF.GHz(), p.UF.GHz())
		}
	}
	return r
}

// Fig3Report converts a frequency sweep's frequent-slab JPI averages.
func Fig3Report(name, title string, pts []Fig3Point, opt Options) *report.RunReport {
	r := report.New(name, "benchmark", "setting_ghz", "tipi_slab", "share_pct", "jpi_nj")
	r.Title = title
	r.Meta = opt.meta()
	for _, p := range pts {
		r.AddRow(p.Bench, p.Setting.GHz(), p.Slab.Format(tipi.DefaultSlabWidth), p.SharePct, p.JPI*1e9)
	}
	return r
}

// ComparisonReport flattens a Fig. 10/11-style comparison: one row per
// benchmark plus a geomean row, with per-governor savings/slowdown columns.
func ComparisonReport(name, title string, c Comparison) *report.RunReport {
	cols := []string{"benchmark"}
	for _, g := range c.Governors {
		cols = append(cols,
			"energy_sav_pct:"+g, "energy_ci:"+g,
			"slowdown_pct:"+g, "slowdown_ci:"+g,
			"edp_sav_pct:"+g)
	}
	r := report.New(name, cols...)
	r.Title = fmt.Sprintf("%s: relative to %s (positive = better for energy/EDP, worse for time)", title, c.Baseline)
	r.Governors = append([]string{c.Baseline}, c.Governors...)
	for _, row := range c.Rows {
		cells := []any{row.Bench}
		for _, g := range c.Governors {
			cells = append(cells,
				row.EnergySavings[g].Mean, row.EnergySavings[g].CI,
				row.Slowdown[g].Mean, row.Slowdown[g].CI,
				row.EDPSavings[g].Mean)
		}
		r.AddRow(cells...)
	}
	geo := []any{"geomean"}
	for _, g := range c.Governors {
		geo = append(geo, c.GeoEnergySavings[g], nil, c.GeoSlowdown[g], nil, c.GeoEDPSavings[g])
	}
	r.AddRow(geo...)
	return r
}

// Table2Report converts the frequency-settings report: one row per
// frequent slab (or one "(none)" row for slab-free benchmarks).
func Table2Report(rows []Table2Row, opt Options) *report.RunReport {
	r := report.New("table2", "benchmark", "cf_resolved_pct", "uf_resolved_pct", "tipi_slab", "share_pct", "cf_opt_ghz", "uf_opt_ghz", "default_cf_ghz", "default_uf_ghz")
	r.Title = "Table 2: Cuttlefish CFopt/UFopt for frequent TIPI ranges vs Default"
	r.Meta = opt.meta()
	for _, row := range rows {
		if len(row.Frequent) == 0 {
			r.AddRow(row.Bench, row.PctCFResolved, row.PctUFResolved, "(none)", nil, nil, nil, row.DefaultCFGHz, row.DefaultUFGHz)
			continue
		}
		for _, f := range row.Frequent {
			var cf, uf any
			if f.CFOptGHz > 0 {
				cf = f.CFOptGHz
			}
			if f.UFOptGHz > 0 {
				uf = f.UFOptGHz
			}
			r.AddRow(row.Bench, row.PctCFResolved, row.PctUFResolved, f.Range, f.SharePct, cf, uf, row.DefaultCFGHz, row.DefaultUFGHz)
		}
	}
	return r
}

// Table3Report converts the Tinv sensitivity study.
func Table3Report(rows []Table3Row, opt Options) *report.RunReport {
	r := report.New("table3", "tinv_ms", "energy_sav_pct", "slowdown_pct")
	r.Title = "Table 3: Tinv sensitivity (geomean over OpenMP benchmarks)"
	r.Meta = opt.meta()
	for _, row := range rows {
		r.AddRow(row.TinvSec*1e3, row.EnergySavings, row.Slowdown)
	}
	return r
}

// AblationReport converts the optimisation-ablation study.
func AblationReport(rows []AblationRow, opt Options) *report.RunReport {
	r := report.New("ablation", "benchmark", "variant", "explore_pct", "resolved_pct", "energy_sav_pct", "slowdown_pct")
	r.Title = "Ablation: cost of removing the exploration-range optimisations"
	r.Meta = opt.meta()
	for _, row := range rows {
		r.AddRow(row.Bench, string(row.Variant), row.ExplorationPct, row.ResolvedPct, row.EnergySavingsPct, row.SlowdownPct)
	}
	return r
}

// DDCMReport converts the DVFS-vs-DDCM knob study.
func DDCMReport(rows []DDCMRow, opt Options) *report.RunReport {
	r := report.New("ddcm", "benchmark", "throttle_frac", "dvfs_sav_pct", "dvfs_slow_pct", "ddcm_sav_pct", "ddcm_slow_pct")
	r.Title = "DVFS vs DDCM at matched ~70% compute throttle (uncore pinned 2.2 GHz)"
	r.Meta = opt.meta()
	for _, row := range rows {
		r.AddRow(row.Bench, row.ThrottleFrac, row.DVFSEnergySavings, row.DVFSSlowdown, row.DDCMEnergySavings, row.DDCMSlowdown)
	}
	return r
}

// OracleReport converts daemon-vs-exhaustive-sweep results.
func OracleReport(rows []OracleResult, opt Options) *report.RunReport {
	r := report.New("oracle", "benchmark", "best_cf_ghz", "best_uf_ghz", "chosen_cf_ghz", "chosen_uf_ghz", "jpi_gap_pct")
	r.Title = "Oracle: daemon optima vs exhaustive frequency sweep (dominant slab)"
	r.Meta = opt.meta()
	for _, row := range rows {
		r.AddRow(row.Bench, row.BestJPI.CF.GHz(), row.BestJPI.UF.GHz(), row.Chosen.CF.GHz(), row.Chosen.UF.GHz(), row.GapPct)
	}
	return r
}
