package experiments

import (
	"fmt"
	"sort"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/freq"
	"repro/internal/governor"
	"repro/internal/machine"
	"repro/internal/tipi"
	"repro/internal/trace"
)

// FrequentShare is the paper's threshold: a TIPI slab is "frequently
// occurring" when it covers more than 10% of the Tinv samples (§3.2).
const FrequentShare = 0.10

// sampleRun executes a benchmark under the given governor while a profiler
// component records TIPI and JPI every Tinv, the instrumentation behind
// Table 1 and Figs. 2–3. The profiler is a pure observer, so any
// registered strategy can drive the environment.
func sampleRun(spec bench.Spec, opt Options, seed int64, g governor.Governor) (*trace.Recorder, float64, error) {
	mcfg := opt.machineConfig()
	m, err := machine.New(mcfg)
	if err != nil {
		return nil, 0, err
	}
	defer m.Close()
	// Arm the flight recorder before attach so the governor sees it and
	// records its decision events (nil stays nil: zero cost when off).
	m.SetTimeline(opt.Timeline)
	att, err := g.Attach(m)
	if err != nil {
		return nil, 0, err
	}
	defer att.Detach()

	prof, err := core.NewProfiler(m.Device(), mcfg.Cores)
	if err != nil {
		return nil, 0, err
	}
	if err := prof.Reset(); err != nil {
		return nil, 0, err
	}
	rec := &trace.Recorder{}
	m.Schedule(&machine.Component{
		Period: opt.TinvSec,
		Tick: func(now float64) float64 {
			m.RecordTimeline()
			s, err := prof.Sample()
			if err != nil || !s.OK {
				return 0
			}
			rec.Add(trace.Point{
				Time: now, TIPI: s.TIPI, JPI: s.JPI,
				Instr: s.Instr, Joules: s.Joules,
				CF: m.CoreRatio(0), UF: m.UncoreRatio(),
			})
			return 0
		},
	}, opt.TinvSec)

	src, err := spec.Build(bench.Params{Cores: mcfg.Cores, Scale: opt.Scale, Seed: seed, Model: opt.Model})
	if err != nil {
		return nil, 0, err
	}
	m.SetSource(src)
	sec := m.Run(spec.PaperSeconds*opt.Scale*6 + 30)
	if !m.Finished() {
		return nil, 0, fmt.Errorf("experiments: %s sampling run did not finish", spec.Name)
	}
	if err := att.Detach(); err != nil {
		return nil, 0, err
	}
	return rec, sec, nil
}

// slabHistogram buckets samples into slabs.
func slabHistogram(points []trace.Point) map[tipi.Slab]int {
	h := make(map[tipi.Slab]int)
	for _, p := range points {
		h[tipi.SlabOf(p.TIPI, tipi.DefaultSlabWidth)]++
	}
	return h
}

// frequentSlabs returns the slabs above the FrequentShare threshold,
// sorted ascending.
func frequentSlabs(h map[tipi.Slab]int, total int) []tipi.Slab {
	var out []tipi.Slab
	for s, n := range h {
		if float64(n) > FrequentShare*float64(total) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Table1Row is one line of the paper's benchmark census.
type Table1Row struct {
	Name     string
	Style    bench.Style
	Seconds  float64 // Default execution time
	TIPIMin  float64
	TIPIMax  float64
	Distinct int // distinct TIPI slabs observed
	Frequent int // slabs covering > 10% of samples
}

// Table1 regenerates the benchmark census. The paper records it under the
// Default environment; Options.Governor swaps in any registered strategy.
func Table1(opt Options) ([]Table1Row, error) {
	specs := bench.All()
	rows := make([]Table1Row, len(specs))
	err := forEach(len(specs), opt, func(i int) error {
		spec := specs[i]
		// Each benchmark samples into its own lane, keyed by name with
		// the census index for deterministic export order.
		lopt := opt
		lopt.Timeline = opt.Timeline.Lane(spec.Name, i)
		g, err := governor.New(opt.governorName(governor.Default), opt.tuning())
		if err != nil {
			return err
		}
		rec, sec, err := sampleRun(spec, lopt, opt.Seed, g)
		if err != nil {
			return err
		}
		pts := rec.Points()
		if len(pts) == 0 {
			return fmt.Errorf("experiments: %s produced no samples", spec.Name)
		}
		lo, hi := pts[0].TIPI, pts[0].TIPI
		for _, p := range pts {
			if p.TIPI < lo {
				lo = p.TIPI
			}
			if p.TIPI > hi {
				hi = p.TIPI
			}
		}
		h := slabHistogram(pts)
		rows[i] = Table1Row{
			Name:     spec.Name,
			Style:    spec.Style,
			Seconds:  sec,
			TIPIMin:  lo,
			TIPIMax:  hi,
			Distinct: len(h),
			Frequent: len(frequentSlabs(h, len(pts))),
		}
		return nil
	})
	return rows, err
}

// Fig2Benchmarks are the six series the paper plots (variant behaviour is
// reported as similar, §3.1).
var Fig2Benchmarks = []string{"UTS", "SOR-irt", "Heat-irt", "MiniFE", "HPCCG", "AMG"}

// Fig2 records the TIPI and JPI execution timelines with core and uncore
// pinned at maximum, one recorder per benchmark.
func Fig2(opt Options) (map[string]*trace.Recorder, error) {
	out := make(map[string]*trace.Recorder, len(Fig2Benchmarks))
	recs := make([]*trace.Recorder, len(Fig2Benchmarks))
	err := forEach(len(Fig2Benchmarks), opt, func(i int) error {
		spec, ok := bench.Get(Fig2Benchmarks[i])
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %q", Fig2Benchmarks[i])
		}
		rec, _, err := sampleRun(spec, opt, opt.Seed, governor.NewStatic(spec22CF(), spec22UF()))
		recs[i] = rec
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, n := range Fig2Benchmarks {
		out[n] = recs[i]
	}
	return out, nil
}

// spec22CF/UF pin the Fig. 2 methodology's "maximum" settings.
func spec22CF() freq.Ratio { return freq.HaswellCore().Max }
func spec22UF() freq.Ratio { return freq.HaswellUncore().Max }

// Fig3Point is the average JPI of one frequently occurring TIPI slab at one
// frequency setting.
type Fig3Point struct {
	Bench    string
	Setting  freq.Ratio // the swept frequency (CF for 3a, UF for 3b)
	Slab     tipi.Slab
	SharePct float64
	JPI      float64
}

// fig3Sweep runs the six benchmarks at each setting and averages JPI over
// the frequent slabs, exactly the Fig. 3 construction (§3.2).
func fig3Sweep(opt Options, settings []freq.Ratio, sweepCF bool) ([]Fig3Point, error) {
	type job struct {
		bench   int
		setting freq.Ratio
	}
	var jobs []job
	for b := range Fig2Benchmarks {
		for _, s := range settings {
			jobs = append(jobs, job{bench: b, setting: s})
		}
	}
	points := make([][]Fig3Point, len(jobs))
	err := forEach(len(jobs), opt, func(i int) error {
		j := jobs[i]
		spec, ok := bench.Get(Fig2Benchmarks[j.bench])
		if !ok {
			return fmt.Errorf("experiments: unknown benchmark %q", Fig2Benchmarks[j.bench])
		}
		cf, uf := spec22CF(), spec22UF()
		if sweepCF {
			cf = j.setting
		} else {
			uf = j.setting
		}
		rec, _, err := sampleRun(spec, opt, opt.Seed, governor.NewStatic(cf, uf))
		if err != nil {
			return err
		}
		pts := rec.Points()
		h := slabHistogram(pts)
		for _, slab := range frequentSlabs(h, len(pts)) {
			sum, n := 0.0, 0
			for _, p := range pts {
				if tipi.SlabOf(p.TIPI, tipi.DefaultSlabWidth) == slab {
					sum += p.JPI
					n++
				}
			}
			points[i] = append(points[i], Fig3Point{
				Bench:    spec.Name,
				Setting:  j.setting,
				Slab:     slab,
				SharePct: 100 * float64(h[slab]) / float64(len(pts)),
				JPI:      sum / float64(n),
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Fig3Point
	for _, p := range points {
		out = append(out, p...)
	}
	return out, nil
}

// Fig3a sweeps core frequency {min, mid, max} with the uncore at max.
func Fig3a(opt Options) ([]Fig3Point, error) {
	return fig3Sweep(opt, []freq.Ratio{12, 18, 23}, true)
}

// Fig3b sweeps uncore frequency {min, mid, max} with cores at max.
func Fig3b(opt Options) ([]Fig3Point, error) {
	return fig3Sweep(opt, []freq.Ratio{12, 21, 30}, false)
}
