package orchestrator

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/store"
)

// specReport builds the deterministic canned report every test backend
// returns for a spec: a pure function of the spec, so any two backends
// (or cache tiers) serving the same spec are byte-identical — mirroring
// the real engine's determinism contract.
func specReport(spec service.RunSpec) *report.RunReport {
	rep := report.New("run", "benchmark", "governor", "rep", "seconds", "joules")
	seconds := spec.Scale*100 + float64(spec.Seed)
	joules := seconds * float64(spec.Cores)
	if spec.Governor == "cuttlefish" {
		joules *= 0.8 // give the comparison something to rank
		seconds *= 1.02
	}
	for r := 0; r < spec.Reps; r++ {
		rep.AddRow(spec.Benchmark, spec.Governor, r, seconds, joules)
	}
	return rep
}

func specExecutor(_ context.Context, spec service.RunSpec) (*report.RunReport, error) {
	return specReport(spec), nil
}

// stubBackend serves specReport bodies, optionally dying (failing every
// call) after a set number of successes — the kill-one-mid-sweep case.
// dieAfter < 0 means dead from the start.
type stubBackend struct {
	name      string
	dieAfter  int64         // 0 = immortal
	latency   time.Duration // keeps runs in flight so load spreads
	calls     atomic.Int64
	successes atomic.Int64
}

func (b *stubBackend) Name() string { return b.name }

func (b *stubBackend) Run(_ context.Context, spec service.RunSpec) (service.Result, error) {
	n := b.calls.Add(1)
	if b.dieAfter != 0 && n > b.dieAfter {
		return service.Result{}, errors.New("connection refused (backend down)")
	}
	if b.latency > 0 {
		time.Sleep(b.latency)
	}
	body, err := specReport(spec).Encode()
	if err != nil {
		return service.Result{}, err
	}
	b.successes.Add(1)
	return service.Result{Hash: spec.Hash(), Outcome: service.OutcomeMiss, Body: body}, nil
}

func smallSweep() SweepSpec {
	return SweepSpec{
		Name: "test",
		Axes: Axes{
			Benchmarks: []string{"UTS", "SOR-irt"},
			Governors:  []string{"default", "cuttlefish"},
			Seeds:      Axis{Values: []float64{1, 2, 3}},
		},
	}
}

func TestSweepSpreadsAcrossBackends(t *testing.T) {
	a := &stubBackend{name: "a", latency: 5 * time.Millisecond}
	b := &stubBackend{name: "b", latency: 5 * time.Millisecond}
	o, err := New(Config{Backends: []Backend{a, b}, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Specs != 12 || res.Summary.Executed != 12 || res.Summary.Failed != 0 {
		t.Fatalf("summary = %s", res.Summary)
	}
	if a.successes.Load() == 0 || b.successes.Load() == 0 {
		t.Errorf("least-loaded dispatch left a backend idle: a=%d b=%d", a.successes.Load(), b.successes.Load())
	}
	if a.successes.Load()+b.successes.Load() != 12 {
		t.Errorf("total runs = %d, want 12", a.successes.Load()+b.successes.Load())
	}
}

// TestFailoverWhenBackendDiesMidSweep is the acceptance scenario in
// miniature: one of two backends dies partway, the sweep still
// completes, and its aggregated report is byte-identical to a
// single-backend run of the same sweep.
func TestFailoverWhenBackendDiesMidSweep(t *testing.T) {
	dying := &stubBackend{name: "dying", dieAfter: 3}
	healthy := &stubBackend{name: "healthy"}
	o, err := New(Config{Backends: []Backend{dying, healthy}, Concurrency: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), smallSweep())
	if err != nil {
		t.Fatalf("sweep must survive a dying backend: %v", err)
	}
	if res.Summary.Failed != 0 || res.Summary.Failovers == 0 {
		t.Fatalf("summary = %s; want zero failed with observed failovers", res.Summary)
	}
	repA, err := Aggregate("test", res.Results)
	if err != nil {
		t.Fatal(err)
	}

	solo, err := New(Config{Backends: []Backend{&stubBackend{name: "solo"}}})
	if err != nil {
		t.Fatal(err)
	}
	resSolo, err := solo.Run(context.Background(), smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	repB, err := Aggregate("test", resSolo.Results)
	if err != nil {
		t.Fatal(err)
	}
	bytesA, _ := repA.Encode()
	bytesB, _ := repB.Encode()
	if !bytes.Equal(bytesA, bytesB) {
		t.Errorf("failover report differs from single-backend report:\n%s\nvs\n%s", bytesA, bytesB)
	}
}

func TestAllBackendsDownSurfacesFailure(t *testing.T) {
	dead := &stubBackend{name: "dead", dieAfter: -1}
	o, err := New(Config{Backends: []Backend{dead}, Attempts: 2, RetryBase: time.Millisecond, RetryMax: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), smallSweep())
	if err == nil {
		t.Fatal("want an error when every backend is down")
	}
	if res == nil || res.Summary.Failed != res.Summary.Specs {
		t.Fatalf("summary = %v, want every spec failed", res)
	}
	if _, aggErr := Aggregate("test", res.Results); aggErr == nil {
		t.Error("aggregating failed results must error")
	}
}

func TestLocalBackendRunsSweep(t *testing.T) {
	svc := service.New(service.Config{Workers: 2, QueueDepth: 64, Executor: specExecutor})
	t.Cleanup(svc.Close)
	o, err := New(Config{Backends: []Backend{&LocalBackend{Service: svc}}, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Aggregate("local", res.Results)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 12 {
		t.Fatalf("aggregated %d rows, want 12", len(rep.Rows))
	}
	// The canned executor makes cuttlefish cheaper on energy and default
	// faster; in every cell both rows are Pareto-optimal and exactly one
	// wins each axis.
	for _, row := range rep.Rows {
		gov := row["governor"].(string)
		if be := row["best_energy"].(bool); be != (gov == "cuttlefish") {
			t.Errorf("best_energy[%s] = %v", gov, be)
		}
		if br := row["best_runtime"].(bool); br != (gov == "default") {
			t.Errorf("best_runtime[%s] = %v", gov, br)
		}
		if !row["pareto"].(bool) {
			t.Errorf("row %v should be on the Pareto front", row)
		}
	}
}

// TestHTTPFailoverWithSharedStore is the full acceptance path over real
// HTTP: two cfserve-equivalent servers share one persistent store, one
// is killed mid-sweep, the sweep completes via failover, and a warm
// re-run executes zero simulations.
func TestHTTPFailoverWithSharedStore(t *testing.T) {
	dir := t.TempDir()
	newServer := func() (*service.Service, *httptest.Server) {
		st, err := store.Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		svc := service.New(service.Config{Workers: 2, QueueDepth: 64, Executor: specExecutor, Store: st})
		srv := httptest.NewServer(service.NewHandler(svc))
		t.Cleanup(func() { srv.Close(); svc.Close() })
		return svc, srv
	}
	_, srvA := newServer()
	svcB, srvB := newServer()

	var kill sync.Once
	o, err := New(Config{
		Backends:    []Backend{NewRemoteBackend(srvA.URL), NewRemoteBackend(srvB.URL)},
		Concurrency: 2,
		RetryBase:   time.Millisecond,
		RetryMax:    5 * time.Millisecond,
		OnEvent: func(ev Event) {
			if ev.Err == nil && ev.Done == 3 {
				// Kill backend A mid-sweep, severing live connections.
				kill.Do(func() {
					srvA.CloseClientConnections()
					srvA.Close()
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), smallSweep())
	if err != nil {
		t.Fatalf("sweep must complete via failover: %v", err)
	}
	rep1, err := Aggregate("http", res.Results)
	if err != nil {
		t.Fatal(err)
	}

	// Warm re-run against the surviving backend only: every spec must be
	// served from a cache tier (zero executions), and the aggregated
	// report must be byte-identical.
	before := svcB.Stats()
	o2, err := New(Config{Backends: []Backend{NewRemoteBackend(srvB.URL)}})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := o2.Run(context.Background(), smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Summary.Executed != 0 {
		t.Errorf("warm re-run executed %d spec(s), want 0 (summary: %s)", res2.Summary.Executed, res2.Summary)
	}
	after := svcB.Stats()
	if after.Misses != before.Misses || after.Completed != before.Completed {
		t.Errorf("surviving backend executed %d new run(s), want 0", after.Completed-before.Completed)
	}
	rep2, err := Aggregate("http", res2.Results)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := rep1.Encode()
	b2, _ := rep2.Encode()
	if !bytes.Equal(b1, b2) {
		t.Error("warm re-run report differs from the failover run's report")
	}
}

func TestProgressEventsCoverEverySpec(t *testing.T) {
	var mu sync.Mutex
	var dones []int
	o, err := New(Config{Backends: []Backend{&stubBackend{name: "a"}}, OnEvent: func(ev Event) {
		if ev.Err == nil {
			mu.Lock()
			dones = append(dones, ev.Done)
			mu.Unlock()
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Run(context.Background(), smallSweep()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(dones) != 12 {
		t.Fatalf("saw %d completion events, want 12", len(dones))
	}
	seen := map[int]bool{}
	for _, d := range dones {
		seen[d] = true
	}
	for i := 1; i <= 12; i++ {
		if !seen[i] {
			t.Errorf("no completion event with Done=%d", i)
		}
	}
}

func TestNewRejectsNoBackends(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New must reject an empty backend set")
	}
}

// TestDuplicateCellsSurfaceInEventsAndSummary pins the silent-shrinkage
// fix end to end: a sweep whose axes collapse under hash-dedup must
// carry the dropped count on every progress event and in the summary,
// instead of just reporting a smaller Total.
func TestDuplicateCellsSurfaceInEventsAndSummary(t *testing.T) {
	sweep := SweepSpec{
		Axes: Axes{
			Benchmarks: []string{"UTS"},
			Seeds:      Axis{Values: []float64{1, 1, 2}}, // duplicate draw, as a rounded sampled axis would produce

		},
	}
	var mu sync.Mutex
	var dupSeen []int
	o, err := New(Config{Backends: []Backend{&stubBackend{name: "a"}}, OnEvent: func(ev Event) {
		mu.Lock()
		dupSeen = append(dupSeen, ev.Duplicates)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), sweep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Specs != 2 || res.Summary.Duplicates != 1 {
		t.Errorf("summary specs=%d duplicates=%d, want 2 and 1", res.Summary.Specs, res.Summary.Duplicates)
	}
	if got := res.Summary.String(); !strings.Contains(got, "1 duplicate cell(s) dropped") {
		t.Errorf("summary line %q must mention the dropped duplicates", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(dupSeen) == 0 {
		t.Fatal("no events observed")
	}
	for _, d := range dupSeen {
		if d != 1 {
			t.Errorf("event Duplicates = %d, want 1 on every event", d)
		}
	}
}

func TestSummaryStringIsGreppable(t *testing.T) {
	s := Summary{Specs: 12, Executed: 0, Hits: 4, DiskHits: 8,
		Backends: map[string]BackendStats{"b": {Runs: 12}}}
	got := s.String()
	want := "12 spec(s), executed: 0, cache hits: 4, disk hits: 8, failovers: 0, failed: 0 [b 12 run(s) 0 failure(s)]"
	if got != want {
		t.Errorf("Summary.String() = %q, want %q", got, want)
	}
}

// sanity: the canned report body is a pure function of the spec.
func TestSpecReportDeterminism(t *testing.T) {
	spec := service.RunSpec{Benchmark: "UTS", Seed: 3}.Normalized()
	b1, _ := specReport(spec).Encode()
	b2, _ := specReport(spec).Encode()
	if !bytes.Equal(b1, b2) {
		t.Fatal(fmt.Sprint("specReport is not deterministic"))
	}
}

// TestBackendHealthAccounting drives a sweep serially so the dispatch
// order is deterministic: backend 0 serves one spec then dies, every
// later spec fails over to the healthy backend. The per-backend stats
// must show the dying backend quarantined exactly once (the third
// consecutive failure, not every failure after it), the healthy backend
// absorbing the retries, and attempt latency percentiles for both.
func TestBackendHealthAccounting(t *testing.T) {
	dying := &stubBackend{name: "dying", dieAfter: 1}
	healthy := &stubBackend{name: "healthy"}
	o, err := New(Config{Backends: []Backend{dying, healthy}, Concurrency: 1,
		RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	d := res.Summary.Backends["dying"]
	h := res.Summary.Backends["healthy"]
	if d.Failures != 3 || d.Quarantines != 1 {
		t.Errorf("dying = %+v, want 3 failures and exactly 1 quarantine", d)
	}
	if h.Retries != 3 || h.Failures != 0 {
		t.Errorf("healthy = %+v, want 3 retry dispatches and no failures", h)
	}
	for name, b := range res.Summary.Backends {
		if b.P50Ms <= 0 || b.P95Ms < b.P50Ms {
			t.Errorf("%s latency percentiles = p50 %v p95 %v, want 0 < p50 <= p95", name, b.P50Ms, b.P95Ms)
		}
	}
	line := res.Summary.String()
	for _, want := range []string{"retry(s)", "quarantine(s)", "p50", "p95"} {
		if !strings.Contains(line, want) {
			t.Errorf("Summary.String() = %q, missing %q", line, want)
		}
	}
}
