package orchestrator

import (
	"context"

	"repro/internal/service"
)

// Backend executes one normalized spec and returns the full service
// result: the canonical report bytes, how they were served, and — when
// the backend executed with prefix memoization — the memo detail.
// Implementations must be safe for concurrent use; the dispatcher runs
// many specs against one backend at a time.
type Backend interface {
	Name() string
	Run(ctx context.Context, spec service.RunSpec) (service.Result, error)
}

// LocalBackend wraps an in-process service.Service: the zero-setup
// backend `cuttlefish sweep` uses when no -backend URL is given. With a
// store-backed service it persists results exactly like a cfserve
// instance would.
type LocalBackend struct {
	Service *service.Service
	// Label names the backend in progress output ("" = "local").
	Label string
}

func (b *LocalBackend) Name() string {
	if b.Label != "" {
		return b.Label
	}
	return "local"
}

func (b *LocalBackend) Run(ctx context.Context, spec service.RunSpec) (service.Result, error) {
	return b.Service.Submit(ctx, spec)
}

// RemoteBackend wraps a cfserve instance through service.Client. The
// client already absorbs 429 backpressure with jittered backoff, so by
// the time an error reaches the dispatcher the backend is genuinely
// unreachable or saturated beyond patience — a failover case.
type RemoteBackend struct {
	Client *service.Client
}

// NewRemoteBackend points a backend at a cfserve base URL.
func NewRemoteBackend(url string) *RemoteBackend {
	return &RemoteBackend{Client: &service.Client{BaseURL: url}}
}

func (b *RemoteBackend) Name() string { return b.Client.BaseURL }

func (b *RemoteBackend) Run(ctx context.Context, spec service.RunSpec) (service.Result, error) {
	return b.Client.RunResult(ctx, spec)
}
