package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/timeline"
)

// Config tunes a sweep run.
type Config struct {
	// Backends execute the specs; at least one is required.
	Backends []Backend
	// Concurrency bounds in-flight specs across all backends
	// (0 = 2 × len(Backends)).
	Concurrency int
	// Attempts caps executions tried per spec, across failovers
	// (0 = 2 × len(Backends) + 1).
	Attempts int
	// RetryBase is the first inter-attempt backoff; attempt k waits
	// RetryBase·2^k jittered, capped at RetryMax (0 = 200ms / 5s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed seeds the orchestrator's private backoff-jitter source,
	// making inter-attempt delays reproducible in tests (0 = a one-time
	// clock-derived seed; the jitter never touches the global rand
	// source, so concurrent sweeps cannot contend on it).
	RetrySeed int64
	// OnEvent observes progress (completed specs and failover attempts);
	// nil means silent. Called from dispatcher goroutines, serialized.
	OnEvent func(Event)
}

// Event is one progress observation.
type Event struct {
	// Done and Total count completed and expanded specs; Done is 0 for
	// failover (attempt-failed) events.
	Done, Total int
	// Duplicates counts grid cells the expansion dropped because they
	// hashed identically to an earlier cell; it is constant across a
	// sweep's events so observers can surface why Total is smaller than
	// the axes' cross-product.
	Duplicates int
	Spec       service.RunSpec
	Hash       string
	Backend    string
	Outcome    service.Outcome
	Attempt    int
	// Memo is the backend's prefix-snapshot detail for an executed spec;
	// nil when the backend ran without memoization or served a cache hit.
	Memo *memo.RunStatsView
	// Convergence is the backend's flight-recorder summary for an
	// executed spec; nil when the backend ran without timelines or
	// served a cache hit.
	Convergence *timeline.Convergence
	// Err is the attempt's failure; nil for completion events.
	Err error
}

// SpecResult is one spec's final fate.
type SpecResult struct {
	Spec    service.RunSpec
	Hash    string
	Body    []byte
	Outcome service.Outcome
	// Backend served the final successful attempt.
	Backend string
	// Attempts counts executions tried, 1 for a first-try success.
	Attempts int
	// Memo is the serving backend's prefix-snapshot detail; nil when the
	// spec was a cache hit or the backend ran without memoization.
	Memo *memo.RunStatsView
	// Convergence is the serving backend's flight-recorder summary; nil
	// when the spec was a cache hit or the backend ran without timelines.
	Convergence *timeline.Convergence
	// Err is non-nil when every attempt failed; Body is then nil.
	Err error
}

// BackendStats is one backend's tally over a sweep: dispatch counts,
// failure/retry/quarantine counts, and attempt-latency percentiles
// (log-bucket upper bounds, milliseconds) from the backend's lifetime
// latency histogram.
type BackendStats struct {
	Runs        int     `json:"runs"`
	Failures    int     `json:"failures"`
	Retries     int     `json:"retries,omitempty"`
	Quarantines int     `json:"quarantines,omitempty"`
	P50Ms       float64 `json:"p50_ms,omitempty"`
	P95Ms       float64 `json:"p95_ms,omitempty"`
}

// Summary is a sweep's operational outcome. Executed counts specs a
// backend actually simulated (miss or coalesced); Hits/DiskHits came
// from cache tiers and cost nothing. Duplicates counts grid cells the
// expansion dropped as hash-identical to earlier cells — reported so a
// sweep never silently claims fewer cells than its cross-product.
type Summary struct {
	Specs      int                     `json:"specs"`
	Duplicates int                     `json:"duplicates,omitempty"`
	Executed   int                     `json:"executed"`
	Hits       int                     `json:"hits"`
	DiskHits   int                     `json:"disk_hits"`
	Failovers  int                     `json:"failovers"`
	Failed     int                     `json:"failed"`
	Backends   map[string]BackendStats `json:"backends"`
	// Memo aggregates the backends' prefix-snapshot activity across all
	// executed specs; nil when no backend reported memo detail.
	Memo *memo.RunStatsView `json:"memo,omitempty"`
	// Convergence reduces the executed specs' flight-recorder summaries
	// per governor (cells with no governor fall under "default"):
	// run-weighted mean time-to-stable-frequency, total exploration
	// quanta and total energy spent exploring. Derived purely from
	// timeline data, so it never appears when backends run without
	// timelines — and never affects Aggregate()'s comparison bytes.
	Convergence map[string]timeline.Convergence `json:"convergence,omitempty"`
}

// String renders the one-line operational summary the CLI prints (and
// the CI smoke job greps): counts are colon/comma-delimited so
// "executed: 0" matches unambiguously. The duplicate-cell note appears
// only when cells were actually dropped, keeping the common line stable.
func (s Summary) String() string {
	names := make([]string, 0, len(s.Backends))
	for n := range s.Backends {
		names = append(names, n)
	}
	sort.Strings(names)
	per := make([]string, len(names))
	for i, n := range names {
		b := s.Backends[n]
		per[i] = fmt.Sprintf("%s %d run(s) %d failure(s)", n, b.Runs, b.Failures)
		// Retry/quarantine/latency detail appears only when present, so
		// the common all-healthy line (which tests and CI grep) is stable.
		if b.Retries > 0 || b.Quarantines > 0 {
			per[i] += fmt.Sprintf(" %d retry(s) %d quarantine(s)", b.Retries, b.Quarantines)
		}
		if b.P95Ms > 0 {
			per[i] += fmt.Sprintf(" p50 %.0fms p95 %.0fms", b.P50Ms, b.P95Ms)
		}
	}
	specs := fmt.Sprintf("%d spec(s)", s.Specs)
	if s.Duplicates > 0 {
		specs = fmt.Sprintf("%d spec(s) (%d duplicate cell(s) dropped)", s.Specs, s.Duplicates)
	}
	memoNote := ""
	if m := s.Memo; m != nil && (m.PrefixHits > 0 || m.SnapshotsStored > 0) {
		memoNote = fmt.Sprintf(", memo: %d prefix hit(s) skipping %d/%d quanta, %d snapshot(s) stored",
			m.PrefixHits, m.QuantaSaved, m.QuantaTotal, m.SnapshotsStored)
	}
	convNote := ""
	if len(s.Convergence) > 0 {
		govs := make([]string, 0, len(s.Convergence))
		for g := range s.Convergence {
			govs = append(govs, g)
		}
		sort.Strings(govs)
		parts := make([]string, len(govs))
		for i, g := range govs {
			c := s.Convergence[g]
			parts[i] = fmt.Sprintf("%s stable %.2fs, %d exploration quanta, %.1f J exploring (n=%d)",
				g, c.TimeToStableSec, c.ExplorationQuanta, c.ExplorationEnergyJ, c.Runs)
		}
		convNote = ", convergence: " + strings.Join(parts, "; ")
	}
	return fmt.Sprintf("%s, executed: %d, cache hits: %d, disk hits: %d, failovers: %d, failed: %d%s%s [%s]",
		specs, s.Executed, s.Hits, s.DiskHits, s.Failovers, s.Failed, memoNote, convNote, strings.Join(per, "; "))
}

// SweepResult is a completed sweep: per-spec results in expansion
// order, the aggregated comparison report, and the summary.
type SweepResult struct {
	Specs   []service.RunSpec
	Results []SpecResult
	Summary Summary
}

// backendState is the dispatcher's book-keeping for one backend.
type backendState struct {
	inflight int
	// consecutiveFails quarantines a backend after quarantineAfter
	// failures in a row; any success clears it.
	consecutiveFails int
	runs             int
	failures         int
	// retries counts dispatches that were re-attempts of a spec (attempt
	// > 1); quarantines counts transitions into the sidelined state — a
	// flapping backend quarantined twice reports 2, not its failure total.
	retries     int
	quarantines int
	// lat holds every attempt's wall duration; the summary reports its
	// p50/p95 so a slow backend is visible even when it never fails.
	lat *stats.Histogram
}

// quarantineAfter is how many consecutive failures sideline a backend
// while healthy alternatives remain.
const quarantineAfter = 3

// Orchestrator dispatches expanded sweeps over its backends.
type Orchestrator struct {
	cfg    Config
	jitter *service.Jitter
	mu     sync.Mutex
	states []backendState
	evMu   sync.Mutex
}

// New validates the configuration and builds an orchestrator.
func New(cfg Config) (*Orchestrator, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("orchestrator: at least one backend is required")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 2 * len(cfg.Backends)
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 2*len(cfg.Backends) + 1
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 200 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 5 * time.Second
	}
	states := make([]backendState, len(cfg.Backends))
	for i := range states {
		states[i].lat = stats.NewHistogram()
	}
	return &Orchestrator{
		cfg:    cfg,
		jitter: service.NewJitter(cfg.RetrySeed),
		states: states,
	}, nil
}

// Run expands the sweep and executes every spec, failing over between
// backends as needed. It returns the per-spec results even when some
// specs ultimately failed; the error then summarizes the failures.
func (o *Orchestrator) Run(ctx context.Context, sweep SweepSpec) (*SweepResult, error) {
	specs, dropped, err := sweep.Expand()
	if err != nil {
		return nil, err
	}
	return o.run(ctx, specs, dropped)
}

// RunSpecs executes an already-expanded spec list (normalized RunSpecs).
func (o *Orchestrator) RunSpecs(ctx context.Context, specs []service.RunSpec) (*SweepResult, error) {
	return o.run(ctx, specs, 0)
}

// run drives an expanded spec list; dropped is the expansion's
// duplicate-cell count, carried into every event and the summary.
func (o *Orchestrator) run(ctx context.Context, specs []service.RunSpec, dropped int) (*SweepResult, error) {
	res := &SweepResult{
		Specs:   specs,
		Results: make([]SpecResult, len(specs)),
		Summary: Summary{Specs: len(specs), Duplicates: dropped, Backends: map[string]BackendStats{}},
	}
	var done int
	var doneMu sync.Mutex

	width := o.cfg.Concurrency
	if width > len(specs) {
		width = len(specs)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				r := o.runSpec(ctx, specs[i], len(specs), dropped, &done, &doneMu)
				res.Results[i] = r
			}
		}()
	}
	for i := range specs {
		work <- i
	}
	close(work)
	wg.Wait()

	var firstErr error
	for _, r := range res.Results {
		switch r.Outcome {
		case service.OutcomeHit:
			res.Summary.Hits++
		case service.OutcomeDisk:
			res.Summary.DiskHits++
		case service.OutcomeMiss, service.OutcomeCoalesced:
			res.Summary.Executed++
		}
		if r.Attempts > 1 {
			res.Summary.Failovers += r.Attempts - 1
		}
		if r.Memo != nil {
			if res.Summary.Memo == nil {
				res.Summary.Memo = &memo.RunStatsView{}
			}
			m := res.Summary.Memo
			m.Runs += r.Memo.Runs
			m.PrefixHits += r.Memo.PrefixHits
			m.QuantaSaved += r.Memo.QuantaSaved
			m.QuantaTotal += r.Memo.QuantaTotal
			m.SnapshotsStored += r.Memo.SnapshotsStored
		}
		if r.Convergence != nil {
			gov := r.Spec.Governor
			if gov == "" {
				gov = "default"
			}
			if res.Summary.Convergence == nil {
				res.Summary.Convergence = map[string]timeline.Convergence{}
			}
			agg := res.Summary.Convergence[gov]
			agg.Add(*r.Convergence)
			res.Summary.Convergence[gov] = agg
		}
		if r.Err != nil {
			res.Summary.Failed++
			if firstErr == nil {
				firstErr = r.Err
			}
		}
	}
	o.mu.Lock()
	for i := range o.states {
		st := &o.states[i]
		name := o.cfg.Backends[i].Name()
		agg := res.Summary.Backends[name]
		agg.Runs += st.runs
		agg.Failures += st.failures
		agg.Retries += st.retries
		agg.Quarantines += st.quarantines
		if st.lat.Count() > 0 {
			agg.P50Ms = st.lat.Quantile(0.5) * 1e3
			agg.P95Ms = st.lat.Quantile(0.95) * 1e3
		}
		res.Summary.Backends[name] = agg
	}
	o.mu.Unlock()
	if res.Summary.Failed > 0 {
		return res, fmt.Errorf("orchestrator: %d of %d spec(s) failed on every backend; first: %w",
			res.Summary.Failed, len(specs), firstErr)
	}
	return res, nil
}

// runSpec drives one spec to completion: pick the least-loaded healthy
// backend, run, and on failure retry — preferring backends not yet
// tried this spec — until the attempt budget runs out.
func (o *Orchestrator) runSpec(ctx context.Context, spec service.RunSpec, total, dropped int, done *int, doneMu *sync.Mutex) SpecResult {
	hash := spec.Hash()
	out := SpecResult{Spec: spec, Hash: hash}
	tried := make(map[int]bool)
	var lastErr error
	for attempt := 1; attempt <= o.cfg.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			out.Attempts, out.Err = attempt-1, err
			return out
		}
		if attempt > 1 {
			select {
			case <-time.After(o.jitter.Backoff(attempt-2, o.cfg.RetryBase, o.cfg.RetryMax)):
			case <-ctx.Done():
				out.Attempts, out.Err = attempt-1, ctx.Err()
				return out
			}
		}
		bi := o.acquire(tried)
		backend := o.cfg.Backends[bi]
		t0 := time.Now()
		res, err := backend.Run(ctx, spec)
		o.release(bi, err == nil, time.Since(t0), attempt > 1)
		out.Attempts = attempt
		if err == nil {
			out.Body, out.Outcome, out.Backend, out.Memo = res.Body, res.Outcome, backend.Name(), res.Memo
			out.Convergence = res.Convergence
			doneMu.Lock()
			*done++
			d := *done
			doneMu.Unlock()
			o.emit(Event{Done: d, Total: total, Duplicates: dropped, Spec: spec, Hash: hash, Backend: backend.Name(), Outcome: res.Outcome, Attempt: attempt, Memo: res.Memo, Convergence: res.Convergence})
			return out
		}
		lastErr = fmt.Errorf("%s: %w", backend.Name(), err)
		tried[bi] = true
		if len(tried) == len(o.cfg.Backends) {
			// Every backend failed this spec once; allow re-visits.
			tried = make(map[int]bool)
		}
		o.emit(Event{Total: total, Duplicates: dropped, Spec: spec, Hash: hash, Backend: backend.Name(), Attempt: attempt, Err: err})
	}
	out.Err = fmt.Errorf("spec %s exhausted %d attempt(s): %w", hash[:12], o.cfg.Attempts, lastErr)
	return out
}

// acquire picks the least-loaded backend, preferring ones that are
// neither quarantined nor already tried for the current spec, and
// increments its in-flight count. Preference degrades gracefully: if
// every backend is quarantined or tried, the constraint is dropped
// rather than deadlocking the sweep.
func (o *Orchestrator) acquire(tried map[int]bool) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	pick := -1
	for pass := 0; pass < 3 && pick < 0; pass++ {
		for i := range o.states {
			if pass < 2 && tried[i] {
				continue
			}
			if pass < 1 && o.states[i].consecutiveFails >= quarantineAfter {
				continue
			}
			if pick < 0 || o.states[i].inflight < o.states[pick].inflight {
				pick = i
			}
		}
	}
	o.states[pick].inflight++
	return pick
}

// release returns a backend slot and updates its health record: the
// attempt's wall duration, whether it was a retry dispatch, and — on the
// exact failure that crosses the quarantine threshold — one quarantine.
func (o *Orchestrator) release(i int, success bool, dur time.Duration, retry bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := &o.states[i]
	st.inflight--
	st.runs++
	st.lat.Observe(dur.Seconds())
	if retry {
		st.retries++
	}
	if success {
		st.consecutiveFails = 0
	} else {
		st.consecutiveFails++
		st.failures++
		if st.consecutiveFails == quarantineAfter {
			st.quarantines++
		}
	}
}

// RegisterMetrics exposes the orchestrator's dispatch health on a
// metrics registry as summary-only counters: total dispatches,
// failures, retry dispatches and quarantine transitions across all
// backends. The values are read from the dispatcher's book-keeping at
// scrape time, so a long-lived orchestrator (cfserve embedding, or a
// looped sweep) reports its lifetime totals.
func (o *Orchestrator) RegisterMetrics(m *obs.Registry) {
	if o == nil || m == nil {
		return
	}
	sum := func(pick func(*backendState) int) func() float64 {
		return func() float64 {
			o.mu.Lock()
			defer o.mu.Unlock()
			total := 0
			for i := range o.states {
				total += pick(&o.states[i])
			}
			return float64(total)
		}
	}
	m.CounterFunc("cf_orch_runs_total", "Spec executions dispatched to backends.", sum(func(st *backendState) int { return st.runs }))
	m.CounterFunc("cf_orch_failures_total", "Backend attempts that failed.", sum(func(st *backendState) int { return st.failures }))
	m.CounterFunc("cf_orch_retries_total", "Re-attempt dispatches after a failed attempt.", sum(func(st *backendState) int { return st.retries }))
	m.CounterFunc("cf_orch_quarantines_total", "Backend transitions into the quarantined state.", sum(func(st *backendState) int { return st.quarantines }))
}

// emit serializes OnEvent callbacks so observers need no locking.
func (o *Orchestrator) emit(ev Event) {
	if o.cfg.OnEvent == nil {
		return
	}
	o.evMu.Lock()
	defer o.evMu.Unlock()
	o.cfg.OnEvent(ev)
}
