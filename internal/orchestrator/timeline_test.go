package orchestrator

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/timeline"
)

// convBackend serves specReport bodies with a per-spec convergence
// summary attached, like a timeline-armed cfserve.
type convBackend struct {
	stubBackend
}

func (b *convBackend) Run(ctx context.Context, spec service.RunSpec) (service.Result, error) {
	res, err := b.stubBackend.Run(ctx, spec)
	if err != nil {
		return res, err
	}
	res.Convergence = &timeline.Convergence{
		Runs:               1,
		TimeToStableSec:    2.5,
		ExplorationQuanta:  10,
		ExplorationEnergyJ: 5,
	}
	return res, nil
}

// TestSweepAggregatesConvergence checks the orchestrator reduces per-run
// flight-recorder summaries into per-governor convergence stats on the
// summary, and that the one-line rendering surfaces them.
func TestSweepAggregatesConvergence(t *testing.T) {
	b := &convBackend{stubBackend{name: "a"}}
	o, err := New(Config{Backends: []Backend{b}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Summary.Convergence) != 2 {
		t.Fatalf("convergence map = %+v, want default + cuttlefish", res.Summary.Convergence)
	}
	for _, gov := range []string{"default", "cuttlefish"} {
		c, ok := res.Summary.Convergence[gov]
		// 6 cells per governor (2 benchmarks × 3 seeds), 1 rep each.
		if !ok || c.Runs != 6 || c.ExplorationQuanta != 60 || c.TimeToStableSec != 2.5 {
			t.Errorf("%s convergence = %+v ok=%v, want 6 runs, 60 quanta, stable 2.5", gov, c, ok)
		}
	}
	line := res.Summary.String()
	if !strings.Contains(line, "convergence:") || !strings.Contains(line, "cuttlefish stable 2.50s") {
		t.Errorf("summary line lacks convergence note: %s", line)
	}
	for i, r := range res.Results {
		if r.Convergence == nil {
			t.Errorf("result %d lost its convergence detail", i)
		}
	}
}

// TestSummaryOmitsConvergenceWithoutTimelines pins the common line: a
// backend that reports no convergence adds nothing to the summary, so
// the greppable all-healthy rendering is unchanged.
func TestSummaryOmitsConvergenceWithoutTimelines(t *testing.T) {
	b := &stubBackend{name: "a"}
	o, err := New(Config{Backends: []Backend{b}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := o.Run(context.Background(), smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Convergence != nil {
		t.Errorf("convergence = %+v, want nil without timelines", res.Summary.Convergence)
	}
	if strings.Contains(res.Summary.String(), "convergence") {
		t.Errorf("summary line mentions convergence: %s", res.Summary.String())
	}
}

// TestOrchestratorMetrics drives a sweep with one flaky backend and
// scrapes the registered counters: runs, failures, retries and
// quarantines must reflect the dispatcher's book-keeping.
func TestOrchestratorMetrics(t *testing.T) {
	dying := &stubBackend{name: "dying", dieAfter: -1} // dead from the start
	healthy := &stubBackend{name: "healthy"}
	o, err := New(Config{Backends: []Backend{dying, healthy}, RetryBase: 1, RetryMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	o.RegisterMetrics(reg)
	if _, err := o.Run(context.Background(), smallSweep()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"cf_orch_runs_total", "cf_orch_failures_total",
		"cf_orch_retries_total", "cf_orch_quarantines_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %s:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "cf_orch_quarantines_total 1") {
		t.Errorf("dead backend should quarantine exactly once:\n%s", out)
	}
	if strings.Contains(out, "cf_orch_failures_total 0\n") {
		t.Errorf("failures counter never moved:\n%s", out)
	}
}
