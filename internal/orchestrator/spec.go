// Package orchestrator fans parameter sweeps across simulation
// backends: a declarative SweepSpec expands into normalized
// service.RunSpecs (one per grid point, deduplicated by content hash),
// a least-loaded dispatcher runs them over pluggable backends — the
// in-process service or any number of cfserve instances — with per-spec
// retry and failover, and the results aggregate into one deterministic
// cross-product comparison report.
//
// Because every expanded spec is normalized and content-addressed, the
// orchestrator inherits the service layer's caching for free: a spec
// any backend has ever executed (and persisted) is served from its
// store, so re-running a sweep costs only the grid points that changed.
package orchestrator

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/service"
)

// ErrBadSweep tags sweep-spec validation failures.
var ErrBadSweep = errors.New("orchestrator: invalid sweep spec")

// DistSpec is a seeded bounded-support sampler for a randomized axis:
// instead of listing values by hand, an axis draws n of them from a
// Kumaraswamy(a, b) distribution rescaled onto [min, max]. The draw is
// inverse-CDF from a seeded generator, so the expanded values — and
// therefore every generated RunSpec's content hash — are a pure
// function of this spec.
type DistSpec struct {
	Dist string  `json:"dist"` // "kumaraswamy"
	A    float64 `json:"a"`
	B    float64 `json:"b"`
	N    int     `json:"n"`
	Seed int64   `json:"seed"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Axis is one sweep dimension: either an explicit value list
// (JSON: [0.01, 0.02]) or a distribution to sample deterministically
// (JSON: {"dist": "kumaraswamy", "a": 2, "b": 3, "n": 4, ...}).
// An absent axis leaves the corresponding RunSpec field at its base
// value, which normalizes to the serving default.
type Axis struct {
	Values []float64
	Dist   *DistSpec
}

// UnmarshalJSON accepts a number array or a distribution object.
func (a *Axis) UnmarshalJSON(data []byte) error {
	var vals []float64
	if err := json.Unmarshal(data, &vals); err == nil {
		a.Values, a.Dist = vals, nil
		return nil
	}
	var d DistSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return fmt.Errorf("axis must be a number array or a distribution object: %w", err)
	}
	a.Values, a.Dist = nil, &d
	return nil
}

// MarshalJSON round-trips whichever form the axis holds.
func (a Axis) MarshalJSON() ([]byte, error) {
	if a.Dist != nil {
		return json.Marshal(a.Dist)
	}
	return json.Marshal(a.Values)
}

// expand resolves the axis to concrete values; nil means "not swept".
func (a Axis) expand() ([]float64, error) {
	if a.Dist == nil {
		return a.Values, nil
	}
	switch a.Dist.Dist {
	case "kumaraswamy":
		return grid.Kumaraswamy(a.Dist.A, a.Dist.B, a.Dist.N, a.Dist.Seed, a.Dist.Min, a.Dist.Max)
	default:
		return nil, fmt.Errorf("%w: unknown distribution %q (supported: kumaraswamy)", ErrBadSweep, a.Dist.Dist)
	}
}

// Axes are the sweep dimensions. String axes (benchmarks, scenarios,
// governors) are explicit lists; numeric axes may also be sampled
// distributions. Benchmarks and scenarios merge into one workload
// dimension — a sweep may mix Table 1 benchmarks and registered
// scenarios freely.
type Axes struct {
	Benchmarks []string `json:"benchmarks,omitempty"`
	Scenarios  []string `json:"scenarios,omitempty"`
	Governors  []string `json:"governors,omitempty"`
	TinvSec    Axis     `json:"tinv_sec,omitempty"`
	Cores      Axis     `json:"cores,omitempty"`
	Reps       Axis     `json:"reps,omitempty"`
	Seeds      Axis     `json:"seeds,omitempty"`
	Scales     Axis     `json:"scales,omitempty"`
}

// SweepSpec declares a sweep: an experiment, fixed base fields, and the
// axes whose cross product becomes the run set.
type SweepSpec struct {
	// Name labels the sweep in its report title.
	Name string `json:"name,omitempty"`
	// Experiment is the harness every grid point runs ("" = "run").
	Experiment string `json:"experiment,omitempty"`
	// Base carries fixed RunSpec fields every grid point shares (model,
	// sim_workers, warmup, …); axis values override it field-wise.
	Base service.RunSpec `json:"base,omitempty"`
	Axes Axes            `json:"axes"`
}

// ParseSweepSpec decodes a SweepSpec document, rejecting unknown fields
// — a typoed axis silently collapsing the sweep to defaults would be
// expensive to discover after the grid ran.
func ParseSweepSpec(data []byte) (SweepSpec, error) {
	var s SweepSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return SweepSpec{}, fmt.Errorf("%w: %v", ErrBadSweep, err)
	}
	return s, nil
}

// numAxis pairs an expanded numeric axis with the RunSpec field it
// overrides; a nil vals slice leaves the base value untouched.
type numAxis struct {
	name string
	vals []float64
	set  func(*service.RunSpec, float64)
}

// workloadSel is one point of the merged workload dimension: either a
// benchmark name, a registered scenario name, or neither (keep the base
// spec's workload, including an inline scenario_def).
type workloadSel struct {
	bench, scen string
}

// workloadAxis merges the benchmarks and scenarios axes into the sweep's
// first dimension, benchmarks first, each in listed order.
func (s SweepSpec) workloadAxis(experiment string) ([]workloadSel, error) {
	if experiment != "run" {
		// Only "run" consults the workload; silently collapsing an
		// explicit axis would hide a spec mistake until after the grid ran.
		if len(s.Axes.Benchmarks) > 0 {
			return nil, fmt.Errorf("%w: experiment %q ignores benchmarks; drop the axis", ErrBadSweep, experiment)
		}
		if len(s.Axes.Scenarios) > 0 {
			return nil, fmt.Errorf("%w: experiment %q ignores scenarios; drop the axis", ErrBadSweep, experiment)
		}
		return []workloadSel{{}}, nil
	}
	var workloads []workloadSel
	for _, b := range s.Axes.Benchmarks {
		workloads = append(workloads, workloadSel{bench: b})
	}
	for _, sc := range s.Axes.Scenarios {
		workloads = append(workloads, workloadSel{scen: sc})
	}
	if len(workloads) == 0 {
		if s.Base.Benchmark == "" && s.Base.Scenario == "" && s.Base.ScenarioDef == nil {
			return nil, fmt.Errorf("%w: a \"run\" sweep needs a benchmarks or scenarios axis (or a base workload)", ErrBadSweep)
		}
		workloads = []workloadSel{{}} // one pass with the base workload
	}
	return workloads, nil
}

// Expand resolves the sweep into its normalized, validated, hash-
// deduplicated RunSpecs, in deterministic row-major axis order
// (workloads × governors × tinv × cores × reps × seeds × scales, the
// workload dimension being benchmarks then scenarios). The second
// return counts grid cells dropped because they hashed identically to
// an earlier cell (e.g. a sampled axis drawing duplicate values after
// integer rounding) — callers surface it so a sweep never silently
// reports fewer cells than its cross-product.
func (s SweepSpec) Expand() ([]service.RunSpec, int, error) {
	experiment := s.Experiment
	if experiment == "" {
		experiment = "run"
	}
	workloads, err := s.workloadAxis(experiment)
	if err != nil {
		return nil, 0, err
	}
	governors := s.Axes.Governors
	if len(governors) == 0 {
		governors = []string{s.Base.Governor}
	}

	numeric := []numAxis{
		{"tinv_sec", nil, func(r *service.RunSpec, v float64) { r.TinvSec = v }},
		{"cores", nil, func(r *service.RunSpec, v float64) { r.Cores = roundInt(v) }},
		{"reps", nil, func(r *service.RunSpec, v float64) { r.Reps = roundInt(v) }},
		{"seeds", nil, func(r *service.RunSpec, v float64) { r.Seed = int64(roundInt(v)) }},
		{"scales", nil, func(r *service.RunSpec, v float64) { r.Scale = v }},
	}
	for i, ax := range []Axis{s.Axes.TinvSec, s.Axes.Cores, s.Axes.Reps, s.Axes.Seeds, s.Axes.Scales} {
		vals, err := ax.expand()
		if err != nil {
			return nil, 0, fmt.Errorf("axis %s: %w", numeric[i].name, err)
		}
		numeric[i].vals = vals
	}

	lens := []int{len(workloads), len(governors)}
	for _, ax := range numeric {
		n := len(ax.vals)
		if n == 0 {
			n = 1 // unswept: one pass with the base value
		}
		lens = append(lens, n)
	}

	specs := make([]service.RunSpec, 0, grid.Size(lens))
	seen := make(map[string]bool)
	dropped := 0
	var expandErr error
	grid.Cross(lens, func(idx []int) {
		if expandErr != nil {
			return
		}
		spec := s.Base
		spec.Experiment = experiment
		if w := workloads[idx[0]]; w.bench != "" || w.scen != "" {
			spec.Benchmark, spec.Scenario, spec.ScenarioDef = w.bench, w.scen, nil
		}
		if g := governors[idx[1]]; g != "" {
			spec.Governor = g
		}
		for i, ax := range numeric {
			if len(ax.vals) > 0 {
				ax.set(&spec, ax.vals[idx[2+i]])
			}
		}
		norm := spec.Normalized()
		if err := norm.Validate(); err != nil {
			expandErr = err
			return
		}
		if h := norm.Hash(); !seen[h] {
			seen[h] = true
			specs = append(specs, norm)
		} else {
			dropped++
		}
	})
	if expandErr != nil {
		return nil, 0, expandErr
	}
	if len(specs) == 0 {
		return nil, 0, fmt.Errorf("%w: the axes expand to zero runs", ErrBadSweep)
	}
	return specs, dropped, nil
}

func roundInt(v float64) int { return int(math.Round(v)) }
