package orchestrator

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/stats"
)

// Aggregate folds a sweep's per-spec reports into one cross-product
// comparison report: a row per spec with its mean energy/runtime, the
// best-per-cell winners and the per-cell Pareto front.
//
// A "cell" is a grid point with the governor axis removed — the rows
// competing in a cell differ only in governor, so best_energy /
// best_runtime / pareto answer "which strategy wins here". Every cell
// value derives from the specs and their canonical report bytes alone
// (never from which backend served them or how), so the aggregated rows
// are byte-identical across any backend topology, retry history or
// cache state — the property the CI failover smoke asserts.
func Aggregate(sweepName string, results []SpecResult) (*report.RunReport, error) {
	type rowData struct {
		spec    service.RunSpec
		hash    string
		seconds float64
		joules  float64
		cell    string
	}
	rows := make([]rowData, 0, len(results))
	cells := map[string][]int{} // cell key → row indices, expansion order
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("orchestrator: cannot aggregate, spec %s failed: %w", r.Hash[:12], r.Err)
		}
		rep, err := report.Decode(r.Body)
		if err != nil {
			return nil, fmt.Errorf("orchestrator: spec %s returned undecodable bytes: %w", r.Hash[:12], err)
		}
		sec, joules := meanColumns(rep)
		cellSpec := r.Spec
		cellSpec.Governor = ""
		rd := rowData{spec: r.Spec, hash: r.Hash, seconds: sec, joules: joules, cell: cellSpec.Hash()}
		cells[rd.cell] = append(cells[rd.cell], len(rows))
		rows = append(rows, rd)
	}

	bestEnergy := map[int]bool{}
	bestRuntime := map[int]bool{}
	pareto := map[int]bool{}
	for _, members := range cells {
		minJ, minS := -1, -1
		for _, i := range members {
			if rows[i].joules > 0 && (minJ < 0 || rows[i].joules < rows[minJ].joules) {
				minJ = i
			}
			if rows[i].seconds > 0 && (minS < 0 || rows[i].seconds < rows[minS].seconds) {
				minS = i
			}
		}
		for _, i := range members {
			if minJ >= 0 && rows[i].joules == rows[minJ].joules {
				bestEnergy[i] = true
			}
			if minS >= 0 && rows[i].seconds == rows[minS].seconds {
				bestRuntime[i] = true
			}
			pareto[i] = !dominated(rows[i].joules, rows[i].seconds, members, func(j int) (float64, float64) {
				return rows[j].joules, rows[j].seconds
			}, i)
		}
	}

	out := report.New("sweep",
		"workload", "governor", "tinv_sec", "cores", "reps", "seed", "scale",
		"seconds", "joules", "avg_watts", "edp",
		"best_energy", "best_runtime", "pareto", "spec")
	name := sweepName
	if name == "" {
		name = "sweep"
	}
	out.Title = fmt.Sprintf("Sweep %s: %d spec(s) across %d cell(s)", name, len(rows), len(cells))
	out.Meta = map[string]any{"sweep": name, "specs": len(rows), "cells": len(cells)}
	for i, rd := range rows {
		watts := 0.0
		if rd.seconds > 0 {
			watts = rd.joules / rd.seconds
		}
		out.AddRow(workloadName(rd.spec), rd.spec.Governor, rd.spec.TinvSec, rd.spec.Cores,
			rd.spec.Reps, rd.spec.Seed, rd.spec.Scale,
			rd.seconds, rd.joules, watts, stats.EDP(rd.joules, rd.seconds),
			bestEnergy[i], bestRuntime[i], pareto[i], rd.hash[:12])
	}
	return out, nil
}

// workloadName renders a spec's workload for the aggregate's rows: the
// benchmark, the registered scenario, or an inline definition's name.
func workloadName(spec service.RunSpec) string {
	switch {
	case spec.Benchmark != "":
		return spec.Benchmark
	case spec.Scenario != "":
		return spec.Scenario
	case spec.ScenarioDef != nil:
		return spec.ScenarioDef.Name
	}
	return ""
}

// dominated reports whether row i's (joules, seconds) point is strictly
// dominated by another member of its cell: some row is no worse on both
// axes and better on at least one. Rows without measurements (zeroes)
// neither dominate nor join the front.
func dominated(j, s float64, members []int, get func(int) (float64, float64), self int) bool {
	if j <= 0 || s <= 0 {
		return true
	}
	for _, m := range members {
		if m == self {
			continue
		}
		oj, os := get(m)
		if oj <= 0 || os <= 0 {
			continue
		}
		if oj <= j && os <= s && (oj < j || os < s) {
			return true
		}
	}
	return false
}

// meanColumns extracts the mean "seconds" and "joules" over a report's
// rows; reports without those columns (non-"run" experiments) yield
// zeroes and are carried through unaggregated.
func meanColumns(rep *report.RunReport) (seconds, joules float64) {
	var secs, js []float64
	for _, row := range rep.Rows {
		if v, ok := row["seconds"].(float64); ok {
			secs = append(secs, v)
		}
		if v, ok := row["joules"].(float64); ok {
			js = append(js, v)
		}
	}
	if len(secs) > 0 {
		seconds = stats.Mean(secs)
	}
	if len(js) > 0 {
		joules = stats.Mean(js)
	}
	return seconds, joules
}
