package orchestrator

import (
	"reflect"
	"strings"
	"testing"
)

func TestExpandCrossProduct(t *testing.T) {
	sweep := SweepSpec{
		Axes: Axes{
			Benchmarks: []string{"UTS", "SOR-irt"},
			Governors:  []string{"default", "cuttlefish"},
			TinvSec:    Axis{Values: []float64{0.01, 0.02}},
			Seeds:      Axis{Values: []float64{1, 2, 3}},
		},
	}
	specs, _, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2*2*2*3 {
		t.Fatalf("expanded %d specs, want 24", len(specs))
	}
	// Row-major order: the last axis (seeds) varies fastest.
	if specs[0].Seed != 1 || specs[1].Seed != 2 || specs[2].Seed != 3 {
		t.Errorf("seed order = %d,%d,%d, want 1,2,3", specs[0].Seed, specs[1].Seed, specs[2].Seed)
	}
	for _, s := range specs {
		if s.Experiment != "run" || s.Scale == 0 || s.Cores == 0 {
			t.Fatalf("spec not normalized: %+v", s)
		}
	}
}

// TestExpandDeduplicatesByHash also pins the silent-shrinkage fix: the
// dropped-duplicate count must come back alongside the surviving specs,
// so the CLI and summary can report why the sweep has fewer cells than
// its cross-product.
func TestExpandDeduplicatesByHash(t *testing.T) {
	sweep := SweepSpec{
		Axes: Axes{
			Benchmarks: []string{"UTS", "UTS"}, // duplicated axis values
			Seeds:      Axis{Values: []float64{1, 1, 2}},
		},
	}
	specs, dropped, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("expanded %d specs, want 2 after dedup", len(specs))
	}
	if want := 2*3 - 2; dropped != want {
		t.Errorf("dropped = %d, want %d (cross-product minus survivors)", dropped, want)
	}
}

// TestExpandScenariosAxis: registered scenarios sweep exactly like
// benchmarks, and the two merge into one workload dimension
// (benchmarks first).
func TestExpandScenariosAxis(t *testing.T) {
	sweep := SweepSpec{
		Axes: Axes{
			Benchmarks: []string{"UTS"},
			Scenarios:  []string{"bursty", "memory-bound"},
			Seeds:      Axis{Values: []float64{1, 2}},
		},
	}
	specs, dropped, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3*2 || dropped != 0 {
		t.Fatalf("expanded %d specs (dropped %d), want 6 (0)", len(specs), dropped)
	}
	if specs[0].Benchmark != "UTS" || specs[0].Scenario != "" {
		t.Errorf("first workload = %+v, want benchmark UTS", specs[0])
	}
	if specs[2].Scenario != "bursty" || specs[2].Benchmark != "" {
		t.Errorf("third workload = bench %q scen %q, want scenario bursty", specs[2].Benchmark, specs[2].Scenario)
	}
	// A scenario axis naming a Table 1 benchmark normalizes into the
	// benchmark field and hash-dedups against the benchmarks axis.
	alias := SweepSpec{
		Axes: Axes{
			Benchmarks: []string{"UTS"},
			Scenarios:  []string{"UTS"},
		},
	}
	specs, dropped, err = alias.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || dropped != 1 {
		t.Errorf("aliased workload: %d specs, %d dropped, want 1 and 1", len(specs), dropped)
	}
}

func TestExpandUnknownScenario(t *testing.T) {
	sweep := SweepSpec{Axes: Axes{Scenarios: []string{"no-such"}}}
	if _, _, err := sweep.Expand(); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("err = %v, want unknown scenario", err)
	}
	bad := SweepSpec{Experiment: "table1", Axes: Axes{Scenarios: []string{"bursty"}}}
	if _, _, err := bad.Expand(); err == nil || !strings.Contains(err.Error(), "ignores scenarios") {
		t.Errorf("err = %v, want ignores scenarios", err)
	}
}

func TestExpandDistributionAxisIsDeterministic(t *testing.T) {
	sweep := SweepSpec{
		Axes: Axes{
			Benchmarks: []string{"UTS"},
			Scales:     Axis{Dist: &DistSpec{Dist: "kumaraswamy", A: 2, B: 3, N: 4, Seed: 9, Min: 0.01, Max: 0.05}},
		},
	}
	a, _, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("distribution axes must expand identically across calls")
	}
	if len(a) != 4 {
		t.Fatalf("expanded %d specs, want 4 sampled scales", len(a))
	}
	for _, s := range a {
		if s.Scale < 0.01 || s.Scale > 0.05 {
			t.Errorf("sampled scale %g escapes [0.01, 0.05]", s.Scale)
		}
	}
}

func TestParseSweepSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSweepSpec([]byte(`{"axes": {"benchmarcks": ["UTS"]}}`)); err == nil {
		t.Error("typoed axis must be rejected, not silently ignored")
	}
	if _, err := ParseSweepSpec([]byte(`{"axes": {"scales": {"dist": "zipf"}}}`)); err != nil {
		t.Fatalf("parse should defer distribution validation to Expand: %v", err)
	}
}

func TestExpandErrors(t *testing.T) {
	cases := []struct {
		name  string
		sweep SweepSpec
		want  string
	}{
		{"missing benchmarks", SweepSpec{}, "needs a benchmarks or scenarios axis"},
		{"unknown benchmark", SweepSpec{Axes: Axes{Benchmarks: []string{"NoSuch"}}}, "unknown benchmark"},
		{"unknown governor", SweepSpec{Axes: Axes{Benchmarks: []string{"UTS"}, Governors: []string{"warp"}}}, "unknown governor"},
		{"unknown distribution", SweepSpec{Axes: Axes{Benchmarks: []string{"UTS"},
			Scales: Axis{Dist: &DistSpec{Dist: "zipf", N: 3}}}}, "unknown distribution"},
		{"bad shape", SweepSpec{Axes: Axes{Benchmarks: []string{"UTS"},
			Scales: Axis{Dist: &DistSpec{Dist: "kumaraswamy", A: -1, B: 1, N: 3, Min: 0.01, Max: 0.05}}}}, "positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := tc.sweep.Expand()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestExpandNonRunExperiment(t *testing.T) {
	// A benchmarks axis on a non-"run" experiment would be silently
	// meaningless — reject it like any other spec mistake.
	bad := SweepSpec{
		Experiment: "table1",
		Axes: Axes{
			Benchmarks: []string{"UTS", "SOR-irt"},
			Seeds:      Axis{Values: []float64{1, 2}},
		},
	}
	if _, _, err := bad.Expand(); err == nil || !strings.Contains(err.Error(), "ignores benchmarks") {
		t.Errorf("benchmarks axis on table1: err = %v, want rejection", err)
	}
	sweep := SweepSpec{
		Experiment: "table1",
		Axes:       Axes{Seeds: Axis{Values: []float64{1, 2}}},
	}
	specs, _, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("expanded %d specs, want 2", len(specs))
	}
	for _, s := range specs {
		if s.Benchmark != "" || s.Experiment != "table1" {
			t.Errorf("spec = %+v, want table1 with no benchmark", s)
		}
	}
}

func TestAxisJSONRoundTrip(t *testing.T) {
	spec, err := ParseSweepSpec([]byte(`{
		"name": "rt",
		"axes": {
			"benchmarks": ["UTS"],
			"tinv_sec": [0.01, 0.04],
			"scales": {"dist": "kumaraswamy", "a": 2, "b": 5, "n": 3, "seed": 11, "min": 0.01, "max": 0.03}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Axes.TinvSec.Values; !reflect.DeepEqual(got, []float64{0.01, 0.04}) {
		t.Errorf("tinv values = %v", got)
	}
	if spec.Axes.Scales.Dist == nil || spec.Axes.Scales.Dist.N != 3 {
		t.Errorf("scales dist = %+v, want kumaraswamy n=3", spec.Axes.Scales.Dist)
	}
	specs, _, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2*3 {
		t.Errorf("expanded %d specs, want 6", len(specs))
	}
}
