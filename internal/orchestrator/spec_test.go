package orchestrator

import (
	"reflect"
	"strings"
	"testing"
)

func TestExpandCrossProduct(t *testing.T) {
	sweep := SweepSpec{
		Axes: Axes{
			Benchmarks: []string{"UTS", "SOR-irt"},
			Governors:  []string{"default", "cuttlefish"},
			TinvSec:    Axis{Values: []float64{0.01, 0.02}},
			Seeds:      Axis{Values: []float64{1, 2, 3}},
		},
	}
	specs, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2*2*2*3 {
		t.Fatalf("expanded %d specs, want 24", len(specs))
	}
	// Row-major order: the last axis (seeds) varies fastest.
	if specs[0].Seed != 1 || specs[1].Seed != 2 || specs[2].Seed != 3 {
		t.Errorf("seed order = %d,%d,%d, want 1,2,3", specs[0].Seed, specs[1].Seed, specs[2].Seed)
	}
	for _, s := range specs {
		if s.Experiment != "run" || s.Scale == 0 || s.Cores == 0 {
			t.Fatalf("spec not normalized: %+v", s)
		}
	}
}

func TestExpandDeduplicatesByHash(t *testing.T) {
	sweep := SweepSpec{
		Axes: Axes{
			Benchmarks: []string{"UTS", "UTS"}, // duplicated axis values
			Seeds:      Axis{Values: []float64{1, 1, 2}},
		},
	}
	specs, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("expanded %d specs, want 2 after dedup", len(specs))
	}
}

func TestExpandDistributionAxisIsDeterministic(t *testing.T) {
	sweep := SweepSpec{
		Axes: Axes{
			Benchmarks: []string{"UTS"},
			Scales:     Axis{Dist: &DistSpec{Dist: "kumaraswamy", A: 2, B: 3, N: 4, Seed: 9, Min: 0.01, Max: 0.05}},
		},
	}
	a, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("distribution axes must expand identically across calls")
	}
	if len(a) != 4 {
		t.Fatalf("expanded %d specs, want 4 sampled scales", len(a))
	}
	for _, s := range a {
		if s.Scale < 0.01 || s.Scale > 0.05 {
			t.Errorf("sampled scale %g escapes [0.01, 0.05]", s.Scale)
		}
	}
}

func TestParseSweepSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSweepSpec([]byte(`{"axes": {"benchmarcks": ["UTS"]}}`)); err == nil {
		t.Error("typoed axis must be rejected, not silently ignored")
	}
	if _, err := ParseSweepSpec([]byte(`{"axes": {"scales": {"dist": "zipf"}}}`)); err != nil {
		t.Fatalf("parse should defer distribution validation to Expand: %v", err)
	}
}

func TestExpandErrors(t *testing.T) {
	cases := []struct {
		name  string
		sweep SweepSpec
		want  string
	}{
		{"missing benchmarks", SweepSpec{}, "needs a benchmarks axis"},
		{"unknown benchmark", SweepSpec{Axes: Axes{Benchmarks: []string{"NoSuch"}}}, "unknown benchmark"},
		{"unknown governor", SweepSpec{Axes: Axes{Benchmarks: []string{"UTS"}, Governors: []string{"warp"}}}, "unknown governor"},
		{"unknown distribution", SweepSpec{Axes: Axes{Benchmarks: []string{"UTS"},
			Scales: Axis{Dist: &DistSpec{Dist: "zipf", N: 3}}}}, "unknown distribution"},
		{"bad shape", SweepSpec{Axes: Axes{Benchmarks: []string{"UTS"},
			Scales: Axis{Dist: &DistSpec{Dist: "kumaraswamy", A: -1, B: 1, N: 3, Min: 0.01, Max: 0.05}}}}, "positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.sweep.Expand()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestExpandNonRunExperiment(t *testing.T) {
	// A benchmarks axis on a non-"run" experiment would be silently
	// meaningless — reject it like any other spec mistake.
	bad := SweepSpec{
		Experiment: "table1",
		Axes: Axes{
			Benchmarks: []string{"UTS", "SOR-irt"},
			Seeds:      Axis{Values: []float64{1, 2}},
		},
	}
	if _, err := bad.Expand(); err == nil || !strings.Contains(err.Error(), "ignores benchmarks") {
		t.Errorf("benchmarks axis on table1: err = %v, want rejection", err)
	}
	sweep := SweepSpec{
		Experiment: "table1",
		Axes:       Axes{Seeds: Axis{Values: []float64{1, 2}}},
	}
	specs, err := sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("expanded %d specs, want 2", len(specs))
	}
	for _, s := range specs {
		if s.Benchmark != "" || s.Experiment != "table1" {
			t.Errorf("spec = %+v, want table1 with no benchmark", s)
		}
	}
}

func TestAxisJSONRoundTrip(t *testing.T) {
	spec, err := ParseSweepSpec([]byte(`{
		"name": "rt",
		"axes": {
			"benchmarks": ["UTS"],
			"tinv_sec": [0.01, 0.04],
			"scales": {"dist": "kumaraswamy", "a": 2, "b": 5, "n": 3, "seed": 11, "min": 0.01, "max": 0.03}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Axes.TinvSec.Values; !reflect.DeepEqual(got, []float64{0.01, 0.04}) {
		t.Errorf("tinv values = %v", got)
	}
	if spec.Axes.Scales.Dist == nil || spec.Axes.Scales.Dist.N != 3 {
		t.Errorf("scales dist = %+v, want kumaraswamy n=3", spec.Axes.Scales.Dist)
	}
	specs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2*3 {
		t.Errorf("expanded %d specs, want 6", len(specs))
	}
}
