package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/scenario"
)

// Client talks to a cfserve instance. The zero HTTPClient uses
// http.DefaultClient; BaseURL is the server root, e.g.
// "http://localhost:8080".
//
// HTTP 429 (queue-full backpressure) is not an error but a "come back
// in a moment": Run retries it with jittered exponential backoff up to
// MaxAttempts, honouring the request context, instead of failing the
// whole experiment. Every other failure surfaces immediately.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
	// Trace, when set, is propagated on submissions as an
	// X-Trace-Parent header carrying the trace ID and root span ID, so
	// the server parents its own span tree under this client's request
	// span and the two processes export as one stitched trace. Purely
	// observational: it never affects report bytes or cache identity.
	Trace *obs.Trace
	// MaxAttempts caps submissions of one spec, counting the first
	// (0 = 8; 1 disables retrying).
	MaxAttempts int
	// RetryBase is the first backoff delay; attempt k waits
	// RetryBase·2^k jittered over [d/2, d] (0 = 100ms).
	RetryBase time.Duration
	// RetryMax caps a single backoff sleep (0 = 5s).
	RetryMax time.Duration
	// RetrySeed seeds this client's private jitter source, making the
	// backoff sequence reproducible in tests (0 = a one-time
	// clock-derived seed, so distinct clients still decorrelate). The
	// client never draws from the global math/rand source — under
	// concurrent sweeps that lock was both a contention point and a
	// reproducibility leak.
	RetrySeed int64

	jitMu  sync.Mutex
	jitter *Jitter
}

func (c *Client) retryParams() (attempts int, base, max time.Duration) {
	attempts, base, max = c.MaxAttempts, c.RetryBase, c.RetryMax
	if attempts <= 0 {
		attempts = 8
	}
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	return attempts, base, max
}

// retryJitter lazily builds the client's private jitter source.
func (c *Client) retryJitter() *Jitter {
	c.jitMu.Lock()
	defer c.jitMu.Unlock()
	if c.jitter == nil {
		c.jitter = NewJitter(c.RetrySeed)
	}
	return c.jitter
}

// Jitter is a seeded, mutex-guarded uniform source for backoff delays.
// Each client (and the sweep orchestrator) owns one, so backoff draws
// are reproducible from the seed and never contend on the global
// math/rand lock under concurrent sweeps.
type Jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewJitter builds a jitter source; seed 0 derives a one-time seed from
// the clock so independent owners decorrelate by default.
func NewJitter(seed int64) *Jitter {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Jitter{rng: rand.New(rand.NewSource(seed))}
}

// Backoff returns the jittered delay before retry attempt k (0-based):
// base·2^k jittered uniformly over [d/2, d], never exceeding max. The
// jitter decorrelates clients hammering one backend.
func (j *Jitter) Backoff(k int, base, max time.Duration) time.Duration {
	d := base << uint(k)
	if d > max || d <= 0 { // <= 0 guards shift overflow
		d = max
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return d/2 + time.Duration(j.rng.Int63n(int64(d/2)+1))
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// Run submits a spec synchronously and decodes the report. The second
// return is the server's cache outcome (hit / disk / miss / coalesced).
// 429 responses are retried with jittered backoff; see Client.
func (c *Client) Run(ctx context.Context, spec RunSpec) (*report.RunReport, Outcome, error) {
	body, outcome, err := c.RunRaw(ctx, spec)
	if err != nil {
		return nil, "", err
	}
	rep, err := report.Decode(body)
	if err != nil {
		return nil, "", err
	}
	return rep, outcome, nil
}

// RunRaw is Run without decoding: it returns the canonical report bytes
// exactly as the server sent them. The orchestrator aggregates from
// these so a disk hit, an LRU hit and a fresh execution of one spec are
// indistinguishable byte for byte.
func (c *Client) RunRaw(ctx context.Context, spec RunSpec) ([]byte, Outcome, error) {
	res, err := c.RunResult(ctx, spec)
	return res.Body, res.Outcome, err
}

// RunResult is RunRaw with the full response detail: the spec's content
// hash, the cache outcome, the canonical bytes, and — when the server
// executed the spec with prefix memoization — the parsed X-Memo detail.
func (c *Client) RunResult(ctx context.Context, spec RunSpec) (Result, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return Result{}, err
	}
	attempts, base, max := c.retryParams()
	jit := c.retryJitter()
	var lastErr error
	for k := 0; k < attempts; k++ {
		if k > 0 {
			select {
			case <-time.After(jit.Backoff(k-1, base, max)):
			case <-ctx.Done():
				return Result{}, fmt.Errorf("%w (after %d attempt(s): %v)", ctx.Err(), k, lastErr)
			}
		}
		res, retryable, err := c.post(ctx, raw)
		if err == nil {
			return res, nil
		}
		if !retryable {
			return Result{}, err
		}
		lastErr = err
	}
	return Result{}, fmt.Errorf("service: giving up after %d attempts: %w", attempts, lastErr)
}

// post performs one submission attempt; retryable marks 429
// backpressure, the only failure worth waiting out.
func (c *Client) post(ctx context.Context, raw []byte) (res Result, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/runs"), bytes.NewReader(raw))
	if err != nil {
		return Result{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.Trace != nil {
		req.Header.Set(HeaderTraceParent, FormatTraceParent(c.Trace.ID(), c.Trace.Root().ID()))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Result{}, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return Result{}, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return Result{}, resp.StatusCode == http.StatusTooManyRequests, remoteError(resp.StatusCode, body)
	}
	res = Result{
		Hash:    resp.Header.Get(HeaderHash),
		Outcome: Outcome(resp.Header.Get(HeaderCache)),
		Body:    body,
	}
	if mv, ok := ParseMemoHeader(resp.Header.Get(HeaderMemo)); ok {
		res.Memo = &mv
	}
	if cv, ok := ParseTimelineHeader(resp.Header.Get(HeaderTimeline)); ok {
		res.Convergence = &cv
	}
	return res, false, nil
}

// Governors fetches the server's registered governor names.
func (c *Client) Governors(ctx context.Context) ([]string, error) {
	var out struct {
		Governors []string `json:"governors"`
	}
	if err := c.get(ctx, "/v1/governors", &out); err != nil {
		return nil, err
	}
	return out.Governors, nil
}

// Scenarios fetches the server's registered workloads — Table 1
// benchmarks and synthetic scenarios alike — in registration order.
func (c *Client) Scenarios(ctx context.Context) ([]scenario.Info, error) {
	var out struct {
		Scenarios []scenario.Info `json:"scenarios"`
	}
	if err := c.get(ctx, "/v1/scenarios", &out); err != nil {
		return nil, err
	}
	return out.Scenarios, nil
}

// Stats fetches the server's operational snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.get(ctx, "/v1/stats", &out)
	return out, err
}

// CacheInfo fetches the server's cache-tier snapshot.
func (c *Client) CacheInfo(ctx context.Context) (CacheInfo, error) {
	var out CacheInfo
	err := c.get(ctx, "/v1/cache", &out)
	return out, err
}

// PurgeCache empties the server's LRU and persistent store, returning
// the post-purge snapshot.
func (c *Client) PurgeCache(ctx context.Context) (CacheInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.url("/v1/cache"), nil)
	if err != nil {
		return CacheInfo{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return CacheInfo{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return CacheInfo{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return CacheInfo{}, remoteError(resp.StatusCode, body)
	}
	var out CacheInfo
	return out, json.Unmarshal(body, &out)
}

func (c *Client) get(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return remoteError(resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}

// remoteError surfaces the server's {"error": ...} message when there is
// one, falling back to the raw status.
func remoteError(code int, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("service: server returned %d: %s", code, e.Error)
	}
	return fmt.Errorf("service: server returned %d", code)
}
