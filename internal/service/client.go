package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/report"
)

// Client talks to a cfserve instance. The zero HTTPClient uses
// http.DefaultClient; BaseURL is the server root, e.g.
// "http://localhost:8080".
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// Run submits a spec synchronously and decodes the report. The second
// return is the server's cache outcome (hit / miss / coalesced).
func (c *Client) Run(ctx context.Context, spec RunSpec) (*report.RunReport, Outcome, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/runs"), bytes.NewReader(raw))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", remoteError(resp.StatusCode, body)
	}
	rep, err := report.Decode(body)
	if err != nil {
		return nil, "", err
	}
	return rep, Outcome(resp.Header.Get(HeaderCache)), nil
}

// Governors fetches the server's registered governor names.
func (c *Client) Governors(ctx context.Context) ([]string, error) {
	var out struct {
		Governors []string `json:"governors"`
	}
	if err := c.get(ctx, "/v1/governors", &out); err != nil {
		return nil, err
	}
	return out.Governors, nil
}

// Stats fetches the server's operational snapshot.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.get(ctx, "/v1/stats", &out)
	return out, err
}

func (c *Client) get(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return remoteError(resp.StatusCode, body)
	}
	return json.Unmarshal(body, v)
}

// remoteError surfaces the server's {"error": ...} message when there is
// one, falling back to the raw status.
func remoteError(code int, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("service: server returned %d: %s", code, e.Error)
	}
	return fmt.Errorf("service: server returned %d", code)
}
