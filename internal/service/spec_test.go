package service

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// TestHashStableAcrossFieldReordering is the wire-level canonicalisation
// check: the same spec serialized with its JSON fields in any order must
// hash to the same content address, or clients with different field
// orders would never share cache entries.
func TestHashStableAcrossFieldReordering(t *testing.T) {
	docs := []string{
		`{"experiment":"run","benchmark":"UTS","governor":"cuttlefish","scale":0.1,"seed":7}`,
		`{"seed":7,"scale":0.1,"governor":"cuttlefish","benchmark":"UTS","experiment":"run"}`,
		`{"governor":"cuttlefish","experiment":"run","seed":7,"benchmark":"UTS","scale":0.1}`,
	}
	var hashes []string
	for _, doc := range docs {
		var s RunSpec
		if err := json.Unmarshal([]byte(doc), &s); err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, s.Hash())
	}
	for i, h := range hashes {
		if h != hashes[0] {
			t.Errorf("doc %d hash = %s, doc 0 hash = %s", i, h, hashes[0])
		}
	}
}

// TestHashTreatsDefaultsAsExplicit: leaving a field at its default and
// spelling the default out are the same run, so they share a hash.
func TestHashTreatsDefaultsAsExplicit(t *testing.T) {
	def := experiments.DefaultOptions()
	implicit := RunSpec{Benchmark: "UTS"}
	explicit := RunSpec{
		Experiment: "run", Benchmark: "UTS", Governor: "default",
		Cores: def.Cores, Scale: def.Scale, Reps: def.Reps, Seed: def.Seed,
		TinvSec: def.TinvSec, WarmupSec: def.WarmupSec, Model: string(def.Model),
	}
	if implicit.Hash() != explicit.Hash() {
		t.Errorf("implicit-defaults hash %s != explicit-defaults hash %s",
			implicit.Hash(), explicit.Hash())
	}
}

// TestHashIncludesExecutionKnobs: the engine's bit-determinism across
// worker counts only covers order-independent (work-sharing) sources —
// the stealing runtimes are the documented exception — so a sharded run
// and a serial run must NOT share a cache entry.
func TestHashIncludesExecutionKnobs(t *testing.T) {
	serial := RunSpec{Benchmark: "UTS"}
	sharded := RunSpec{Benchmark: "UTS", SimWorkers: 8}
	batched := RunSpec{Benchmark: "UTS", BatchQuanta: 64}
	if serial.Hash() == sharded.Hash() {
		t.Error("sim_workers must be part of the content hash")
	}
	if serial.Hash() == batched.Hash() {
		t.Error("batch_quanta must be part of the content hash")
	}
}

// TestHashSeparatesDistinctRuns: any semantic field difference must
// produce a different address.
func TestHashSeparatesDistinctRuns(t *testing.T) {
	base := RunSpec{Benchmark: "UTS"}
	variants := []RunSpec{
		{Benchmark: "AMG"},
		{Benchmark: "UTS", Governor: "powersave"},
		{Benchmark: "UTS", Seed: 2},
		{Benchmark: "UTS", Scale: 0.5},
		{Benchmark: "UTS", Cores: 10},
		{Benchmark: "UTS", Reps: 2},
		{Benchmark: "UTS", TinvSec: 0.04},
		{Benchmark: "UTS", Model: "hclib"},
		{Experiment: "table1"},
	}
	seen := map[string]int{base.Hash(): -1}
	for i, v := range variants {
		h := v.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("variant %d collides with %d: %+v", i, prev, v)
		}
		seen[h] = i
	}
}

// TestHashDropsFieldsTheExperimentIgnores: a stray benchmark on table1,
// or a governor on a comparison experiment whose harness picks its own
// strategies, must not split cache entries for runs that produce
// identical bytes.
func TestHashDropsFieldsTheExperimentIgnores(t *testing.T) {
	plain := RunSpec{Experiment: "table1"}
	strayBench := RunSpec{Experiment: "table1", Benchmark: "UTS"}
	if plain.Hash() != strayBench.Hash() {
		t.Error("table1 ignores benchmark; the hash must too")
	}
	explicitDefault := RunSpec{Experiment: "table1", Governor: "default"}
	if plain.Hash() != explicitDefault.Hash() {
		t.Error("table1 under \"\" and \"default\" is the same run")
	}
	fig10 := RunSpec{Experiment: "fig10"}
	fig10Gov := RunSpec{Experiment: "fig10", Governor: "powersave"}
	if fig10.Hash() != fig10Gov.Hash() {
		t.Error("fig10 builds its own comparison set; a stray governor must not split the cache")
	}
	// ...but where the field is honoured, it must keep separating runs.
	t1Powersave := RunSpec{Experiment: "table1", Governor: "powersave"}
	if plain.Hash() == t1Powersave.Hash() {
		t.Error("table1 honours the governor; distinct governors are distinct runs")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		spec RunSpec
		want string
	}{
		{"unknown experiment", RunSpec{Experiment: "table9"}, "experiment"},
		{"run without benchmark", RunSpec{Experiment: "run"}, "benchmark"},
		{"unknown benchmark", RunSpec{Benchmark: "LINPACK"}, "benchmark"},
		{"unknown governor", RunSpec{Benchmark: "UTS", Governor: "turbo"}, "governor"},
		{"unknown model", RunSpec{Benchmark: "UTS", Model: "tbb"}, "model"},
		{"negative scale", RunSpec{Benchmark: "UTS", Scale: -1}, "scale"},
		{"negative cores", RunSpec{Benchmark: "UTS", Cores: -4}, "cores"},
		{"negative reps", RunSpec{Benchmark: "UTS", Reps: -1}, "reps"},
		{"negative tinv", RunSpec{Benchmark: "UTS", TinvSec: -0.02}, "tinv"},
	}
	for _, c := range cases {
		err := c.spec.Normalized().Validate()
		if err == nil {
			t.Errorf("%s: want error", c.name)
			continue
		}
		if !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: error %v does not wrap ErrInvalidSpec", c.name, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestValidateAcceptsAllExperiments(t *testing.T) {
	for _, name := range experiments.Names {
		s := RunSpec{Experiment: name, Benchmark: "UTS"}.Normalized()
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestScenarioFieldsHashStable: scenario selectors go through the same
// canonicalisation as everything else — defaults spelled out or omitted,
// JSON fields in any order, same content address.
func TestScenarioFieldsHashStable(t *testing.T) {
	implicitDoc := `{"scenario_def":{"name":"p","phases":[{"instructions":1e9,"miss_per_instr":0.02,"ipc":1.2}]}}`
	explicitDoc := `{"experiment":"run","scenario_def":{"name":"p","decomposition":"work-sharing","iterations":1,
		"phases":[{"instructions":1e9,"miss_per_instr":0.02,"ipc":1.2,"exposure":1,"chunks_per_core":16,"repeat":1}]}}`
	var implicit, explicit RunSpec
	if err := json.Unmarshal([]byte(implicitDoc), &implicit); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(explicitDoc), &explicit); err != nil {
		t.Fatal(err)
	}
	if implicit.Hash() != explicit.Hash() {
		t.Errorf("scenario_def defaults must hash like spelled-out defaults:\n%s\n%s",
			implicit.Canonical(), explicit.Canonical())
	}
	if err := implicit.Normalized().Validate(); err != nil {
		t.Fatalf("inline scenario spec invalid: %v", err)
	}
}

// TestScenarioNameCanonicalization: the workload selectors fold against
// the registry — a Scenario naming a Table 1 benchmark and a Benchmark
// naming a synthetic scenario both normalize to the canonical field, so
// either spelling shares one cache entry.
func TestScenarioNameCanonicalization(t *testing.T) {
	asBench := RunSpec{Benchmark: "Heat-irt"}
	asScenario := RunSpec{Scenario: "Heat-irt"}
	if asBench.Hash() != asScenario.Hash() {
		t.Error("scenario:Heat-irt and benchmark:Heat-irt are the same run")
	}
	synthAsBench := RunSpec{Benchmark: "bursty"}
	synthAsScenario := RunSpec{Scenario: "bursty"}
	if synthAsBench.Hash() != synthAsScenario.Hash() {
		t.Error("benchmark:bursty and scenario:bursty are the same run")
	}
	norm := synthAsBench.Normalized()
	if norm.Benchmark != "" || norm.Scenario != "bursty" {
		t.Errorf("synthetic normalizes to scenario field, got %+v", norm)
	}
	if (RunSpec{Scenario: "bursty"}).Hash() == (RunSpec{Scenario: "memory-bound"}).Hash() {
		t.Error("distinct scenarios must hash distinctly")
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		spec RunSpec
		want string
	}{
		{"unknown scenario", RunSpec{Scenario: "no-such"}, "unknown scenario"},
		{"benchmark and scenario", RunSpec{Benchmark: "UTS", Scenario: "bursty"}, "mutually exclusive"},
		{"invalid inline def", RunSpec{ScenarioDef: &scenario.Definition{Name: "x"}}, "at least one phase"},
	}
	for _, c := range cases {
		err := c.spec.Normalized().Validate()
		if err == nil || !errors.Is(err, ErrInvalidSpec) || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want ErrInvalidSpec mentioning %q", c.name, err, c.want)
		}
	}
	if err := (RunSpec{Scenario: "bursty"}).Normalized().Validate(); err != nil {
		t.Errorf("registered scenario rejected: %v", err)
	}
	// Non-"run" experiments drop scenario selectors like they drop
	// benchmarks, so strays don't split cache entries.
	stray := RunSpec{Experiment: "table1", Scenario: "bursty"}
	if stray.Hash() != (RunSpec{Experiment: "table1"}).Hash() {
		t.Error("table1 ignores scenario; the hash must too")
	}
}

// TestSpecFromOptionsRoundTrip: the remote client's spec must map back to
// options that mean the same run.
func TestSpecFromOptionsRoundTrip(t *testing.T) {
	opt := experiments.DefaultOptions()
	opt.Governor = "powersave"
	opt.Scale = 0.07
	opt.Seed = 42
	opt.SimWorkers = 4
	spec := SpecFromOptions("table1", "", opt)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	back := spec.Options()
	if back.Governor != opt.Governor || back.Scale != opt.Scale ||
		back.Seed != opt.Seed || back.SimWorkers != opt.SimWorkers ||
		back.Cores != opt.Cores || back.Reps != opt.Reps {
		t.Errorf("round trip lost fields: sent %+v, got %+v", opt, back)
	}
}
