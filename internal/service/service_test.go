package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/report"
)

// stubExecutor returns a canned report and counts executions; an optional
// gate blocks every execution until released, so tests can hold work
// in-flight deterministically.
type stubExecutor struct {
	calls atomic.Int64
	gate  chan struct{} // nil = never block
}

func (e *stubExecutor) exec(ctx context.Context, spec RunSpec) (*report.RunReport, error) {
	e.calls.Add(1)
	if e.gate != nil {
		select {
		case <-e.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	r := report.New("run", "benchmark", "seed")
	r.AddRow(spec.Benchmark, spec.Seed)
	return r, nil
}

func testSpec(seed int64) RunSpec {
	return RunSpec{Benchmark: "UTS", Seed: seed, Scale: 0.01, Reps: 1}
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func TestSubmitMissThenHit(t *testing.T) {
	exec := &stubExecutor{}
	s := newTestService(t, Config{Workers: 2, Executor: exec.exec})
	r1, err := s.Submit(context.Background(), testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Outcome != OutcomeMiss {
		t.Errorf("first outcome = %s, want miss", r1.Outcome)
	}
	r2, err := s.Submit(context.Background(), testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Outcome != OutcomeHit {
		t.Errorf("second outcome = %s, want hit", r2.Outcome)
	}
	if !bytes.Equal(r1.Body, r2.Body) {
		t.Error("hit body differs from miss body")
	}
	if r1.Hash != r2.Hash {
		t.Errorf("hashes differ: %s vs %s", r1.Hash, r2.Hash)
	}
	if got := exec.calls.Load(); got != 1 {
		t.Errorf("executor ran %d times, want 1", got)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

// TestCoalescingConcurrentIdenticalRequests launches many identical
// submissions while the single execution is held in-flight: exactly one
// run must happen, every waiter must get the same bytes, and the rest
// must be accounted as coalesced. Run with -race, this also exercises the
// admission path's locking.
func TestCoalescingConcurrentIdenticalRequests(t *testing.T) {
	const waiters = 16
	exec := &stubExecutor{gate: make(chan struct{})}
	s := newTestService(t, Config{Workers: 2, QueueDepth: 4, Executor: exec.exec})

	var wg sync.WaitGroup
	results := make([]Result, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Submit(context.Background(), testSpec(1))
		}(i)
	}
	// Wait until the one real execution is on a worker and every other
	// submission has coalesced onto it.
	deadline := time.After(5 * time.Second)
	for {
		st := s.Stats()
		if st.Misses == 1 && st.Coalesced == waiters-1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("never coalesced: %+v", s.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(exec.gate)
	wg.Wait()

	for i := range results {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i].Body, results[0].Body) {
			t.Errorf("waiter %d got different bytes", i)
		}
	}
	if got := exec.calls.Load(); got != 1 {
		t.Errorf("executor ran %d times for %d identical requests, want 1", got, waiters)
	}
	outcomes := map[Outcome]int{}
	for _, r := range results {
		outcomes[r.Outcome]++
	}
	if outcomes[OutcomeMiss] != 1 || outcomes[OutcomeCoalesced] != waiters-1 {
		t.Errorf("outcomes = %v, want 1 miss + %d coalesced", outcomes, waiters-1)
	}
}

// TestQueueFullRejection fills the single worker and the single queue
// slot with held executions, then checks the next distinct spec is
// rejected with ErrQueueFull — and that the rejection clears once
// capacity frees up.
func TestQueueFullRejection(t *testing.T) {
	exec := &stubExecutor{gate: make(chan struct{})}
	s := newTestService(t, Config{Workers: 1, QueueDepth: 1, Executor: exec.exec})

	bg := context.Background()
	done1 := make(chan error, 1)
	go func() {
		_, err := s.Submit(bg, testSpec(1))
		done1 <- err
	}()
	// Wait for the worker to pick spec 1 up, so spec 2 occupies the one
	// queue slot rather than racing for the worker.
	waitFor(t, func() bool { return exec.calls.Load() == 1 })
	done2 := make(chan error, 1)
	go func() {
		_, err := s.Submit(bg, testSpec(2))
		done2 <- err
	}()
	waitFor(t, func() bool { return s.Stats().QueueDepth == 1 })

	if _, err := s.Submit(bg, testSpec(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third spec: err = %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}

	close(exec.gate)
	if err := <-done1; err != nil {
		t.Fatal(err)
	}
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
	// Capacity is back: the previously rejected spec now runs.
	if _, err := s.Submit(bg, testSpec(3)); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitAsyncLifecycle(t *testing.T) {
	exec := &stubExecutor{gate: make(chan struct{})}
	s := newTestService(t, Config{Workers: 1, Executor: exec.exec})

	jv, err := s.SubmitAsync(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if jv.Status != JobQueued && jv.Status != JobRunning {
		t.Errorf("fresh job status = %s", jv.Status)
	}
	waitFor(t, func() bool {
		v, err := s.Job(jv.ID)
		return err == nil && v.Status == JobRunning
	})
	close(exec.gate)
	waitFor(t, func() bool {
		v, err := s.Job(jv.ID)
		return err == nil && v.Status == JobDone
	})
	v, err := s.Job(jv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome != OutcomeMiss || len(v.Body) == 0 {
		t.Errorf("done job: outcome=%s body=%d bytes", v.Outcome, len(v.Body))
	}

	// A second async submission of the same spec is born done via cache.
	jv2, err := s.SubmitAsync(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if jv2.Status != JobDone || jv2.Outcome != OutcomeHit {
		t.Errorf("cached async job: status=%s outcome=%s, want done/hit", jv2.Status, jv2.Outcome)
	}
	if !bytes.Equal(jv2.Body, v.Body) {
		t.Error("cached async body differs")
	}
	if _, err := s.Job("r999999-nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown id: %v", err)
	}
}

func TestSubmitRejectsInvalidSpec(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, Executor: (&stubExecutor{}).exec})
	_, err := s.Submit(context.Background(), RunSpec{Benchmark: "LINPACK"})
	if !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("err = %v, want ErrInvalidSpec", err)
	}
}

func TestExecutorFailurePropagatesToAllWaiters(t *testing.T) {
	boom := errors.New("boom")
	s := newTestService(t, Config{Workers: 1, Executor: func(context.Context, RunSpec) (*report.RunReport, error) {
		return nil, boom
	}})
	if _, err := s.Submit(context.Background(), testSpec(1)); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if st := s.Stats(); st.Failed != 1 {
		t.Errorf("failed = %d, want 1", st.Failed)
	}
	// A failed run is not cached; the next submission re-executes.
	if _, err := s.Submit(context.Background(), testSpec(1)); !errors.Is(err, boom) {
		t.Errorf("retry err = %v, want boom (not a cache hit)", err)
	}
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	exec := &stubExecutor{gate: make(chan struct{})}
	s := New(Config{Workers: 1, QueueDepth: 4, Executor: exec.exec})

	done := make(chan Result, 1)
	go func() {
		r, _ := s.Submit(context.Background(), testSpec(1))
		done <- r
	}()
	waitFor(t, func() bool { return exec.calls.Load() == 1 })

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// New work is rejected while draining (async, so the probe itself
	// never blocks on a held execution).
	waitFor(t, func() bool {
		_, err := s.SubmitAsync(testSpec(2))
		return errors.Is(err, ErrClosed)
	})
	close(exec.gate) // let the in-flight run finish
	if err := <-shutdownErr; err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.Outcome != OutcomeMiss || len(r.Body) == 0 {
		t.Errorf("in-flight run lost by graceful shutdown: %+v", r)
	}
}

func TestStatsLatencyPercentiles(t *testing.T) {
	exec := &stubExecutor{}
	s := newTestService(t, Config{Workers: 1, Executor: exec.exec})
	for i := int64(1); i <= 20; i++ {
		if _, err := s.Submit(context.Background(), testSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Completed != 20 {
		t.Errorf("completed = %d, want 20", st.Completed)
	}
	if st.ExecP50Ms < 0 || st.ExecP95Ms < st.ExecP50Ms {
		t.Errorf("percentiles inconsistent: p50=%g p95=%g", st.ExecP50Ms, st.ExecP95Ms)
	}
	if st.CacheEntries != 20 {
		t.Errorf("cache entries = %d, want 20", st.CacheEntries)
	}
}

// TestJobRegistryEviction checks finished jobs are evicted oldest-first
// past the registry bound.
func TestJobRegistryEviction(t *testing.T) {
	exec := &stubExecutor{}
	s := newTestService(t, Config{Workers: 4, QueueDepth: maxJobs + 32, Executor: exec.exec})
	var first JobView
	for i := 0; i < maxJobs; i++ {
		jv, err := s.SubmitAsync(testSpec(int64(i + 1)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = jv
		}
	}
	// Let every run finish so eviction eligibility is deterministic, then
	// push the registry past its bound.
	waitFor(t, func() bool { return s.Stats().Completed == maxJobs })
	for i := 0; i < 10; i++ {
		if _, err := s.SubmitAsync(testSpec(int64(maxJobs + i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n > maxJobs {
		t.Errorf("registry holds %d jobs, bound is %d", n, maxJobs)
	}
	if _, err := s.Job(first.ID); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("oldest finished job should be evicted, got %v", err)
	}
}

// TestConcurrentMixedLoad is the -race workout: hits, misses and
// coalesced submissions racing across goroutines.
func TestConcurrentMixedLoad(t *testing.T) {
	exec := &stubExecutor{}
	s := newTestService(t, Config{Workers: 4, QueueDepth: 64, Executor: exec.exec})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				spec := testSpec(int64(i % 5)) // heavy spec overlap
				if _, err := s.Submit(context.Background(), spec); err != nil && !errors.Is(err, ErrQueueFull) {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	total := st.Hits + st.Misses + st.Coalesced
	if total+st.Rejected != 240 {
		t.Errorf("accounted %d submissions (+%d rejected), want 240", total, st.Rejected)
	}
	if fmt.Sprint(st.Failed) != "0" {
		t.Errorf("failed = %d", st.Failed)
	}
}
