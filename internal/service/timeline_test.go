package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/timeline"
)

func TestTraceParentHeaderRoundTrip(t *testing.T) {
	tid, sid, ok := ParseTraceParent(FormatTraceParent("abc123", "def456"))
	if !ok || tid != "abc123" || sid != "def456" {
		t.Errorf("round trip = (%q, %q, %v)", tid, sid, ok)
	}
	for _, bad := range []string{"", "span=", "trace=x", "garbage"} {
		if _, _, ok := ParseTraceParent(bad); ok {
			t.Errorf("ParseTraceParent(%q) accepted", bad)
		}
	}
}

func TestTimelineHeaderRoundTrip(t *testing.T) {
	in := timeline.Convergence{Runs: 3, TimeToStableSec: 1.25, ExplorationQuanta: 42, ExplorationEnergyJ: 17.5}
	out, ok := ParseTimelineHeader(FormatTimelineHeader(in))
	if !ok || out != in {
		t.Errorf("round trip = %+v ok=%v, want %+v", out, ok, in)
	}
	for _, bad := range []string{"", "runs", "runs=x"} {
		if _, ok := ParseTimelineHeader(bad); ok {
			t.Errorf("ParseTimelineHeader(%q) accepted", bad)
		}
	}
	// Unknown keys are ignored so the format can grow.
	if c, ok := ParseTimelineHeader("runs=2 future_key=9"); !ok || c.Runs != 2 {
		t.Errorf("forward-compat parse = %+v ok=%v", c, ok)
	}
}

// TestTimelinesPreserveReportBytes extends the determinism-boundary
// contract to the flight recorder: a service executing every spec with
// timelines armed must serve byte-identical canonical reports to a bare
// one on the miss, memo-resume, LRU-hit and disk-hit paths.
func TestTimelinesPreserveReportBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	ctx := context.Background()
	plainDir, tlDir := t.TempDir(), t.TempDir()
	plain := newTestService(t, Config{Workers: 1, Memo: memo.New(0, nil), Store: mustStore(t, plainDir)})
	tl := newTestService(t, Config{Workers: 1, Memo: memo.New(0, nil), Store: mustStore(t, tlDir),
		Timelines: timeline.NewStore(8)})

	// Miss, then memo prefix resume (reps=2 shares rep 0 with reps=1).
	for _, spec := range []RunSpec{memoSpec(1), memoSpec(2)} {
		a, err := plain.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tl.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Body, b.Body) {
			t.Fatalf("timeline-armed miss differs from plain for reps=%d", spec.Reps)
		}
		if b.Convergence == nil || b.Convergence.Runs != spec.Reps {
			t.Errorf("miss Convergence = %+v, want %d run(s)", b.Convergence, spec.Reps)
		}
	}

	// LRU hit: byte-identical, and no convergence (nothing executed).
	a, err := plain.Submit(ctx, memoSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := tl.Submit(ctx, memoSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != OutcomeHit || b.Outcome != OutcomeHit || !bytes.Equal(a.Body, b.Body) {
		t.Fatalf("hit path differs: %s/%s", a.Outcome, b.Outcome)
	}
	if b.Convergence != nil {
		t.Error("cache hit carries a convergence summary; hits run no simulation")
	}

	// Disk hit via fresh services over the same stores.
	plain2 := newTestService(t, Config{Workers: 1, Store: mustStore(t, plainDir)})
	tl2 := newTestService(t, Config{Workers: 1, Store: mustStore(t, tlDir), Timelines: timeline.NewStore(8)})
	a2, err := plain2.Submit(ctx, memoSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := tl2.Submit(ctx, memoSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if a2.Outcome != OutcomeDisk || b2.Outcome != OutcomeDisk || !bytes.Equal(a2.Body, b2.Body) {
		t.Fatalf("disk path differs: %s/%s", a2.Outcome, b2.Outcome)
	}

	// The armed service actually recorded: one timeline per executed spec.
	if got := tl.cfg.Timelines.Len(); got != 2 {
		t.Errorf("timeline store holds %d, want 2 (one per executed spec)", got)
	}
}

// TestTimelineBytesIdenticalAcrossServices pins the flight recorder's
// wire determinism: two independent services executing the same spec
// store byte-identical timeline documents.
func TestTimelineBytesIdenticalAcrossServices(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	ctx := context.Background()
	run := func() []byte {
		s := newTestService(t, Config{Workers: 1, Timelines: timeline.NewStore(4)})
		res, err := s.Submit(ctx, memoSpec(1))
		if err != nil {
			t.Fatal(err)
		}
		data, ok := s.cfg.Timelines.Get(res.Hash)
		if !ok {
			t.Fatal("executed spec has no stored timeline")
		}
		return data
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Error("two services stored different timeline bytes for one spec")
	}
}

// TestHTTPTimelineEndpoints covers the wire surface: X-Timeline on
// executed responses, the per-run timeline document, the listing with
// retention counters, and 404s for unknown ids and disabled stores.
func TestHTTPTimelineEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	_, srv := newTestServer(t, Config{Workers: 1, Timelines: timeline.NewStore(4)})
	spec := memoSpec(1)

	r1 := postRun(t, srv.URL, spec)
	io.Copy(io.Discard, r1.Body)
	r1.Body.Close()
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d", r1.StatusCode)
	}
	hash := r1.Header.Get(HeaderHash)
	conv, ok := ParseTimelineHeader(r1.Header.Get(HeaderTimeline))
	if !ok || conv.Runs != 1 {
		t.Fatalf("X-Timeline = %q parsed %+v ok=%v", r1.Header.Get(HeaderTimeline), conv, ok)
	}

	// A hit response must not claim a convergence summary.
	r2 := postRun(t, srv.URL, spec)
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.Header.Get(HeaderCache) != string(OutcomeHit) {
		t.Fatalf("second POST outcome = %s, want hit", r2.Header.Get(HeaderCache))
	}
	if r2.Header.Get(HeaderTimeline) != "" {
		t.Error("cache hit carries X-Timeline")
	}

	// Fetch the timeline (short hash prefix, like the trace route).
	resp, err := http.Get(srv.URL + "/v1/runs/" + hash[:12] + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET timeline: %d %s", resp.StatusCode, body)
	}
	var doc timeline.Export
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("timeline body is not an Export: %v", err)
	}
	if doc.Version != 1 || doc.ID != hash || len(doc.Lanes) == 0 {
		t.Errorf("export = version %d id %.12s lanes %d", doc.Version, doc.ID, len(doc.Lanes))
	}
	if doc.Convergence != conv {
		t.Errorf("stored convergence %+v != header %+v", doc.Convergence, conv)
	}

	// Listing with retention counters.
	resp, err = http.Get(srv.URL + "/v1/timelines")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Timelines []string `json:"timelines"`
		Capacity  int      `json:"capacity"`
		Evicted   uint64   `json:"evicted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Timelines) != 1 || listing.Timelines[0] != hash || listing.Capacity != 4 {
		t.Errorf("listing = %+v", listing)
	}

	// Unknown id 404s.
	resp, err = http.Get(srv.URL + "/v1/runs/ffffffffffff/timeline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: %d, want 404", resp.StatusCode)
	}
}

func TestHTTPTimelineDisabled(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, Executor: (&stubExecutor{}).exec})
	for _, path := range []string{"/v1/runs/abc/timeline", "/v1/timelines"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s on timeline-less service: %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestClientStitchesTraces is the cross-process half of span tracing: a
// client with its own trace propagates X-Trace-Parent, and the server's
// trace roots under the client's request span — one linked tree.
func TestClientStitchesTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	s, srv := newTestServer(t, Config{Workers: 1, Traces: obs.NewTraceStore(4, ""),
		Timelines: timeline.NewStore(4)})

	spec := memoSpec(1)
	clientTrace := obs.NewTrace(spec.Hash())
	c := &Client{BaseURL: srv.URL, Trace: clientTrace}
	res, err := c.RunResult(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	clientTrace.Root().End()
	if res.Convergence == nil || res.Convergence.Runs != 1 {
		t.Errorf("client-parsed Convergence = %+v, want 1 run", res.Convergence)
	}

	serverTrace, ok := s.cfg.Traces.Get(res.Hash)
	if !ok {
		t.Fatal("server recorded no trace")
	}
	ex := serverTrace.Export()
	if ex.ParentSpan != clientTrace.Root().ID() {
		t.Errorf("server trace parent span = %q, want client root %q", ex.ParentSpan, clientTrace.Root().ID())
	}
	// The server root's ID derives from the remote parent exactly as a
	// local child's would, so the stitched tree has deterministic IDs.
	var root *obs.SpanExport
	for i := range ex.Spans {
		if ex.Spans[i].Name == "request" {
			root = &ex.Spans[i]
			break
		}
	}
	if root == nil {
		t.Fatal("server trace has no request span")
	}
	if root.Parent != clientTrace.Root().ID() {
		t.Errorf("server root parent = %q, want %q", root.Parent, clientTrace.Root().ID())
	}
}
