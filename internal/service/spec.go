// Package service turns the simulator into a multi-tenant
// simulation-as-a-service backend: a RunSpec names a run as a pure value
// (experiment, benchmark, governor, tuning, cores, seed …), a bounded job
// queue executes specs on a persistent worker fleet, identical in-flight
// specs coalesce onto one execution, and finished reports live in an LRU
// content-addressed cache keyed by the spec's canonical hash.
//
// The cache is sound because of two properties the engine layers below
// guarantee: simulations are bit-deterministic functions of their spec
// (PR 1's engine determinism tests), and reports encode canonically
// (encoding/json sorts map keys). A cached response is therefore
// byte-identical to what a fresh execution of the same spec would produce
// — see DESIGN.md, "Why determinism makes the result cache sound".
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/governor"
	"repro/internal/scenario"
)

// ErrInvalidSpec tags validation failures so the HTTP layer can map them
// to 400 responses; the wrapped message names the offending field.
var ErrInvalidSpec = errors.New("service: invalid spec")

// RunSpec is one simulation request as a value. Every field — including
// the engine execution knobs SimWorkers and BatchQuanta — is part of the
// canonical form and therefore of the content hash. The knobs stay in
// deliberately: the engine's bit-determinism across worker counts is
// guaranteed only for order-independent (work-sharing) sources, and the
// work-stealing task runtimes are the documented exception, so folding a
// sharded run and a serial run of a stealing benchmark into one cache
// entry would serve bytes the other configuration never produces.
type RunSpec struct {
	// Experiment names the harness: "run" (single benchmark, the
	// default), or any cuttlefish subcommand ("table1", "fig10", …).
	Experiment string `json:"experiment,omitempty"`
	// Benchmark is the Table 1 benchmark name; only "run" consults it.
	Benchmark string `json:"benchmark,omitempty"`
	// Scenario names a registered workload scenario (see
	// internal/scenario); only "run" consults it, and exactly one of
	// Benchmark, Scenario and ScenarioDef may be set. A Scenario naming a
	// Table 1 benchmark normalizes into Benchmark, so both spellings
	// share one cache key.
	Scenario string `json:"scenario,omitempty"`
	// ScenarioDef is an inline scenario definition — a JSON phase
	// program evaluated without being registered anywhere. Its
	// normalized form is part of the canonical serialization, so an
	// inline scenario is exactly as content-addressable as a named one.
	ScenarioDef *scenario.Definition `json:"scenario_def,omitempty"`
	// Governor is the registered strategy; empty means the experiment's
	// paper default.
	Governor string `json:"governor,omitempty"`
	// Cores is the simulated core count (0 = 20, the paper's socket).
	Cores int `json:"cores,omitempty"`
	// Scale shrinks the paper's 60–80 s runs (0 = the CLI default 0.30).
	Scale float64 `json:"scale,omitempty"`
	// Reps is repetitions per data point (0 = 5).
	Reps int `json:"reps,omitempty"`
	// Seed is the base RNG seed; repetition r uses Seed+r (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// TinvSec is the daemon profiling interval (0 = 20 ms).
	TinvSec float64 `json:"tinv_sec,omitempty"`
	// WarmupSec is the daemon warmup (0 = the paper's 2 s; negative
	// disables it, governor.Tuning semantics).
	WarmupSec float64 `json:"warmup_sec,omitempty"`
	// Model selects the parallel runtime ("openmp" or "hclib").
	Model string `json:"model,omitempty"`
	// SimWorkers shards each simulated machine across engine goroutines.
	SimWorkers int `json:"sim_workers,omitempty"`
	// BatchQuanta caps the engine's run-to-next-event batching.
	BatchQuanta int `json:"batch_quanta,omitempty"`
}

// experimentUsesGovernor lists the single-environment experiments whose
// harness honours Options.Governor; every other harness constructs its
// comparison strategies itself.
func experimentUsesGovernor(name string) bool {
	return name == "run" || name == "table1"
}

// Normalized returns the spec with every defaulted field made explicit
// and every field the selected experiment ignores zeroed, so specs that
// mean the same run compare — and hash — equal: a stray benchmark on a
// table1 spec, or a governor on a fig10 spec (whose harness picks its own
// comparison set), would otherwise duplicate cache entries for runs that
// produce identical bytes. It does not validate; call Validate on the
// result.
func (s RunSpec) Normalized() RunSpec {
	def := experiments.DefaultOptions()
	if s.Experiment == "" {
		s.Experiment = "run"
	}
	if s.Experiment != "run" {
		// Only "run" consults the workload selectors.
		s.Benchmark, s.Scenario, s.ScenarioDef = "", "", nil
	}
	// The workload selectors canonicalize against the scenario registry:
	// a Scenario naming a Table 1 benchmark folds into Benchmark, and a
	// Benchmark naming a registered synthetic scenario folds into
	// Scenario, so either spelling of the same workload hashes equal
	// (and `-bench bursty` just works).
	if s.Scenario != "" {
		if e, ok := scenario.Get(s.Scenario); ok && e.Kind == scenario.KindBench {
			s.Benchmark, s.Scenario = s.Scenario, ""
		}
	}
	if s.Benchmark != "" {
		if _, isBench := bench.Get(s.Benchmark); !isBench && scenario.Exists(s.Benchmark) {
			s.Scenario, s.Benchmark = s.Benchmark, ""
		}
	}
	if s.ScenarioDef != nil {
		norm := s.ScenarioDef.Normalized()
		s.ScenarioDef = &norm
	}
	if !experimentUsesGovernor(s.Experiment) {
		s.Governor = ""
	} else if s.Governor == "" {
		s.Governor = governor.Default // both harnesses' paper default
	}
	if s.Cores == 0 {
		s.Cores = def.Cores
	}
	if s.Scale == 0 {
		s.Scale = def.Scale
	}
	if s.Reps == 0 {
		s.Reps = def.Reps
	}
	if s.Seed == 0 {
		s.Seed = def.Seed
	}
	if s.TinvSec == 0 {
		s.TinvSec = def.TinvSec
	}
	if s.WarmupSec == 0 {
		s.WarmupSec = def.WarmupSec
	}
	if s.Model == "" {
		s.Model = string(def.Model)
	}
	return s
}

// Validate checks a normalized spec against the registries, failing fast
// — before any queue slot or simulation time is spent — on unknown
// experiments, benchmarks, governors or models. All failures wrap
// ErrInvalidSpec.
func (s RunSpec) Validate() error {
	if !experiments.Known(s.Experiment) {
		return fmt.Errorf("%w: unknown experiment %q (known: %v)", ErrInvalidSpec, s.Experiment, experiments.Names)
	}
	if s.Experiment == "run" {
		selectors := 0
		for _, set := range []bool{s.Benchmark != "", s.Scenario != "", s.ScenarioDef != nil} {
			if set {
				selectors++
			}
		}
		switch {
		case selectors == 0:
			return fmt.Errorf("%w: experiment \"run\" needs a workload: a benchmark (known: %v), a scenario (registered: %v) or an inline scenario_def",
				ErrInvalidSpec, bench.Names(), scenario.NamesOf(scenario.KindSynthetic))
		case selectors > 1:
			return fmt.Errorf("%w: benchmark, scenario and scenario_def are mutually exclusive", ErrInvalidSpec)
		}
		if s.Benchmark != "" {
			if _, ok := bench.Get(s.Benchmark); !ok {
				return fmt.Errorf("%w: unknown benchmark %q (known: %v)", ErrInvalidSpec, s.Benchmark, bench.Names())
			}
		}
		if s.Scenario != "" && !scenario.Exists(s.Scenario) {
			return fmt.Errorf("%w: unknown scenario %q (registered: %v)", ErrInvalidSpec, s.Scenario, scenario.Names())
		}
		if s.ScenarioDef != nil {
			if err := s.ScenarioDef.Validate(); err != nil {
				return fmt.Errorf("%w: %v", ErrInvalidSpec, err)
			}
		}
	}
	if s.Governor != "" && !governor.Exists(s.Governor) {
		return fmt.Errorf("%w: unknown governor %q (registered: %v)", ErrInvalidSpec, s.Governor, governor.Names())
	}
	switch bench.Model(s.Model) {
	case bench.OpenMP, bench.HClib:
	default:
		return fmt.Errorf("%w: unknown model %q (want openmp or hclib)", ErrInvalidSpec, s.Model)
	}
	if s.Cores < 1 {
		return fmt.Errorf("%w: cores must be positive, got %d", ErrInvalidSpec, s.Cores)
	}
	if s.Scale <= 0 {
		return fmt.Errorf("%w: scale must be positive, got %g", ErrInvalidSpec, s.Scale)
	}
	if s.Reps < 1 {
		return fmt.Errorf("%w: reps must be positive, got %d", ErrInvalidSpec, s.Reps)
	}
	if s.TinvSec <= 0 {
		return fmt.Errorf("%w: tinv_sec must be positive, got %g", ErrInvalidSpec, s.TinvSec)
	}
	return nil
}

// Canonical returns the spec's canonical serialization: the normalized
// spec encoded with Go's fixed struct field order. Two specs describe the
// same run iff their canonical bytes are equal.
func (s RunSpec) Canonical() []byte {
	c := s.Normalized()
	raw, err := json.Marshal(c)
	if err != nil {
		// RunSpec is a struct of scalars plus one plain nested struct
		// (the scenario definition); Marshal cannot fail on either.
		panic(fmt.Sprintf("service: canonical marshal: %v", err))
	}
	return raw
}

// Hash returns the content address of the run: the hex SHA-256 of the
// canonical serialization. The result cache, request coalescing and job
// IDs all key on it.
func (s RunSpec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}

// Options maps the spec onto the experiment harnesses' run options.
func (s RunSpec) Options() experiments.Options {
	opt := experiments.DefaultOptions()
	opt.Cores = s.Cores
	opt.Scale = s.Scale
	opt.Reps = s.Reps
	opt.Seed = s.Seed
	opt.TinvSec = s.TinvSec
	opt.WarmupSec = s.WarmupSec
	opt.Model = bench.Model(s.Model)
	opt.SimWorkers = s.SimWorkers
	opt.BatchQuanta = s.BatchQuanta
	opt.Governor = s.Governor
	opt.Scenario = s.Scenario
	opt.ScenarioDef = s.ScenarioDef
	return opt
}

// SpecFromOptions builds the RunSpec equivalent of an in-process
// experiment invocation; cuttlefish -remote uses it so a remote run means
// exactly what the same flags mean locally.
func SpecFromOptions(experiment, benchmark string, opt experiments.Options) RunSpec {
	return RunSpec{
		Experiment:  experiment,
		Benchmark:   benchmark,
		Scenario:    opt.Scenario,
		ScenarioDef: opt.ScenarioDef,
		Governor:    opt.Governor,
		Cores:       opt.Cores,
		Scale:       opt.Scale,
		Reps:        opt.Reps,
		Seed:        opt.Seed,
		TinvSec:     opt.TinvSec,
		WarmupSec:   opt.WarmupSec,
		Model:       string(opt.Model),
		SimWorkers:  opt.SimWorkers,
		BatchQuanta: opt.BatchQuanta,
	}.Normalized()
}
