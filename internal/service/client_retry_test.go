package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyBackend speaks just enough of the cfserve protocol to script
// backpressure: the first reject429 POSTs return 429, the rest succeed
// with a canned report.
func flakyBackend(t *testing.T, reject429 int64, calls *atomic.Int64) *httptest.Server {
	t.Helper()
	body, err := (&stubExecutor{}).mustReport(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= reject429 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"service: job queue full, retry later"}`))
			return
		}
		w.Header().Set(HeaderCache, string(OutcomeMiss))
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// mustReport builds the canned report the stub executor would produce.
func (e *stubExecutor) mustReport(t *testing.T) interface{ Encode() ([]byte, error) } {
	t.Helper()
	rep, err := e.exec(context.Background(), testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestClientRetries429ThenSucceeds: the satellite fix — backpressure is
// retried with backoff instead of failing the experiment.
func TestClientRetries429ThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := flakyBackend(t, 3, &calls)
	c := &Client{BaseURL: srv.URL, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond}
	rep, outcome, err := c.Run(context.Background(), testSpec(1))
	if err != nil {
		t.Fatalf("Run after 429s: %v", err)
	}
	if outcome != OutcomeMiss || rep == nil {
		t.Errorf("outcome = %s, report nil = %v", outcome, rep == nil)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("backend saw %d attempts, want 4 (three 429s + success)", got)
	}
}

// TestClientGivesUpAfterMaxAttempts: a persistently saturated backend
// eventually surfaces the 429 instead of spinning forever.
func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := flakyBackend(t, 1<<30, &calls)
	c := &Client{BaseURL: srv.URL, MaxAttempts: 3, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond}
	_, _, err := c.Run(context.Background(), testSpec(1))
	if err == nil {
		t.Fatal("want an error after exhausting attempts")
	}
	if !strings.Contains(err.Error(), "429") || !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("error should name the 429 and the attempt cap: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("backend saw %d attempts, want exactly 3", got)
	}
}

// TestClientRetryHonoursContext: cancellation during backoff returns
// promptly with the context error, not after the full attempt budget.
func TestClientRetryHonoursContext(t *testing.T) {
	var calls atomic.Int64
	srv := flakyBackend(t, 1<<30, &calls)
	c := &Client{BaseURL: srv.URL, MaxAttempts: 100, RetryBase: time.Hour, RetryMax: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Run(ctx, testSpec(1))
		done <- err
	}()
	// Let the first attempt land, then cancel mid-backoff.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

// TestBackoffReproducibleFromSeed pins the jitter fix: a client's
// backoff sequence is a pure function of its RetrySeed — two jitter
// sources with the same seed produce identical delays, different seeds
// diverge, and no draw touches the shared global math/rand source.
func TestBackoffReproducibleFromSeed(t *testing.T) {
	base, max := 100*time.Millisecond, 5*time.Second
	a, b := NewJitter(7), NewJitter(7)
	var diverged bool
	other := NewJitter(8)
	for k := 0; k < 16; k++ {
		da, db := a.Backoff(k, base, max), b.Backoff(k, base, max)
		if da != db {
			t.Fatalf("attempt %d: same seed gave %v vs %v", k, da, db)
		}
		if d := base << uint(k); d > 0 && d <= max {
			if da < d/2 || da > d {
				t.Errorf("attempt %d: delay %v outside [%v, %v]", k, da, d/2, d)
			}
		} else if da < max/2 || da > max {
			t.Errorf("attempt %d: capped delay %v outside [%v, %v]", k, da, max/2, max)
		}
		if other.Backoff(k, base, max) != da {
			diverged = true
		}
	}
	if !diverged {
		t.Error("distinct seeds never diverged over 16 draws")
	}
}

// TestClientBackoffSeedDeterminesDelays drives the seed through the
// client itself: two clients with equal RetrySeed retried against a
// permanently saturated backend must spend indistinguishable total
// backoff (measured in draw sequence, not wall time).
func TestClientBackoffSeedDeterminesDelays(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		c := &Client{RetrySeed: seed, RetryBase: time.Millisecond, RetryMax: 16 * time.Millisecond}
		j := c.retryJitter()
		out := make([]time.Duration, 8)
		for k := range out {
			out[k] = j.Backoff(k, c.RetryBase, c.RetryMax)
		}
		return out
	}
	a, b := seq(3), seq(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestClientDoesNotRetryNonBackpressureErrors: a 400 is the caller's
// bug; retrying it would just repeat the bug.
func TestClientDoesNotRetryNonBackpressureErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad spec"}`))
	}))
	t.Cleanup(srv.Close)
	c := &Client{BaseURL: srv.URL, RetryBase: time.Millisecond}
	if _, _, err := c.Run(context.Background(), testSpec(1)); err == nil {
		t.Fatal("want error")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("backend saw %d attempts, want 1 (no retry on 400)", got)
	}
}
