package service

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/scenario"
)

// realSpec is a tiny but real simulation: Heat-irt under the cuttlefish
// governor, small enough for unit tests, real enough to exercise the full
// engine → governor → report pipeline behind the cache.
func realSpec() RunSpec {
	return RunSpec{Benchmark: "Heat-irt", Governor: "cuttlefish", Scale: 0.02, Reps: 1}
}

// TestCachedEqualsFreshByteIdentical is the acceptance-criterion test:
// for the same RunSpec, the cached response and a freshly computed one
// (new service, empty cache, fresh machines) must be byte-identical. This
// is what makes the shared cache sound — it can only hold if the
// simulation is a bit-deterministic function of the spec and the report
// encoding is canonical.
func TestCachedEqualsFreshByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	ctx := context.Background()
	spec := realSpec()

	s1 := newTestService(t, Config{Workers: 1})
	fresh1, err := s1.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh1.Outcome != OutcomeMiss {
		t.Fatalf("first run outcome = %s, want miss", fresh1.Outcome)
	}
	cached, err := s1.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Outcome != OutcomeHit {
		t.Fatalf("second run outcome = %s, want hit", cached.Outcome)
	}
	if !bytes.Equal(fresh1.Body, cached.Body) {
		t.Error("cache hit returned different bytes than the execution that populated it")
	}

	// A completely fresh service recomputes from scratch; determinism
	// says the bytes must match the other instance's cache.
	s2 := newTestService(t, Config{Workers: 1})
	fresh2, err := s2.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh2.Outcome != OutcomeMiss {
		t.Fatalf("fresh-service outcome = %s, want miss", fresh2.Outcome)
	}
	if !bytes.Equal(cached.Body, fresh2.Body) {
		t.Errorf("cached response differs from freshly computed one:\ncached: %d bytes\nfresh:  %d bytes",
			len(cached.Body), len(fresh2.Body))
	}
}

// scenarioJSON is a small inline phase program used by the scenario
// determinism tests: work-sharing decomposition, jittered, two phases —
// enough to exercise every DSL code path that feeds the hash.
const scenarioJSON = `{
	"name": "det-probe",
	"iterations": 6,
	"phases": [
		{"instructions": 4e10, "miss_per_instr": 0.004, "ipc": 2.0, "jitter_frac": 0.05},
		{"instructions": 8e9, "miss_per_instr": 0.09, "ipc": 1.0, "exposure": 0.8, "miss_jitter": 0.004}
	]
}`

func scenarioSpec(t *testing.T) RunSpec {
	t.Helper()
	def, err := scenario.ParseDefinition([]byte(scenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	return RunSpec{ScenarioDef: &def, Scale: 1, Reps: 1, Governor: "cuttlefish"}
}

// TestScenarioCachedEqualsFreshByteIdentical extends the cache-soundness
// acceptance test to DSL workloads: an inline scenario's cached response
// and a fresh recomputation on a second service must be byte-identical,
// which is what lets scenario RunSpecs round-trip through the service
// cache exactly like benchmark specs.
func TestScenarioCachedEqualsFreshByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	ctx := context.Background()
	spec := scenarioSpec(t)

	s1 := newTestService(t, Config{Workers: 1})
	fresh, err := s1.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Outcome != OutcomeMiss {
		t.Fatalf("first run outcome = %s, want miss", fresh.Outcome)
	}
	cached, err := s1.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Outcome != OutcomeHit {
		t.Fatalf("second run outcome = %s, want hit", cached.Outcome)
	}
	if !bytes.Equal(fresh.Body, cached.Body) {
		t.Error("scenario cache hit differs from the execution that populated it")
	}

	s2 := newTestService(t, Config{Workers: 1})
	fresh2, err := s2.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cached.Body, fresh2.Body) {
		t.Error("scenario recomputed on a fresh service differs from the cached bytes")
	}

	// The canonical report must carry real measurements, not an empty
	// row set that would trivially compare equal.
	var rep struct {
		Rows []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(fresh.Body, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("scenario report rows = %d, want 1", len(rep.Rows))
	}
	if sec, _ := rep.Rows[0]["seconds"].(float64); sec <= 0 {
		t.Errorf("scenario run seconds = %v, want positive", rep.Rows[0]["seconds"])
	}
}

// TestScenarioDeterministicAcrossEngineWorkers is the scenario half of
// the engine determinism contract: a work-sharing DSL scenario — whose
// jitter is pure index hashing, never a sequential draw — must produce
// bit-identical reports whether the simulated machine runs serial or
// sharded across engine workers. (The specs still hash separately;
// sim_workers stays in the content hash for the stealing runtimes.)
func TestScenarioDeterministicAcrossEngineWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	ctx := context.Background()

	serial := scenarioSpec(t)
	sharded := serial
	sharded.SimWorkers = 3
	if serial.Hash() == sharded.Hash() {
		t.Fatal("serial and sharded scenario specs must have distinct content addresses")
	}

	s1 := newTestService(t, Config{Workers: 1})
	r1, err := s1.Submit(ctx, serial)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestService(t, Config{Workers: 1})
	r2, err := s2.Submit(ctx, sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Body, r2.Body) {
		t.Error("work-sharing scenario must produce identical bytes serial vs sharded")
	}
}

// TestShardedSpecIsDistinctButDeterministic pins the two halves of the
// execution-knob decision. SimWorkers is part of the content hash because
// stealing benchmarks (like realSpec's Heat-irt) are order-dependent
// across engine workers; for a work-sharing source the engine's
// determinism contract does hold, and a sharded execution reproduces the
// serial bytes even though it lives under its own cache key.
func TestShardedSpecIsDistinctButDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	ctx := context.Background()

	serial := RunSpec{Benchmark: "SOR-ws", Governor: "cuttlefish", Scale: 0.04, Reps: 1}
	sharded := serial
	sharded.SimWorkers = 3
	if serial.Hash() == sharded.Hash() {
		t.Fatal("serial and sharded specs must have distinct content addresses")
	}

	s1 := newTestService(t, Config{Workers: 1})
	r1, err := s1.Submit(ctx, serial)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestService(t, Config{Workers: 1})
	r2, err := s2.Submit(ctx, sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Body, r2.Body) {
		t.Error("work-sharing source must produce identical bytes serial vs sharded (engine determinism contract)")
	}
}
