package service

import (
	"bytes"
	"context"
	"testing"
)

// realSpec is a tiny but real simulation: Heat-irt under the cuttlefish
// governor, small enough for unit tests, real enough to exercise the full
// engine → governor → report pipeline behind the cache.
func realSpec() RunSpec {
	return RunSpec{Benchmark: "Heat-irt", Governor: "cuttlefish", Scale: 0.02, Reps: 1}
}

// TestCachedEqualsFreshByteIdentical is the acceptance-criterion test:
// for the same RunSpec, the cached response and a freshly computed one
// (new service, empty cache, fresh machines) must be byte-identical. This
// is what makes the shared cache sound — it can only hold if the
// simulation is a bit-deterministic function of the spec and the report
// encoding is canonical.
func TestCachedEqualsFreshByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	ctx := context.Background()
	spec := realSpec()

	s1 := newTestService(t, Config{Workers: 1})
	fresh1, err := s1.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh1.Outcome != OutcomeMiss {
		t.Fatalf("first run outcome = %s, want miss", fresh1.Outcome)
	}
	cached, err := s1.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Outcome != OutcomeHit {
		t.Fatalf("second run outcome = %s, want hit", cached.Outcome)
	}
	if !bytes.Equal(fresh1.Body, cached.Body) {
		t.Error("cache hit returned different bytes than the execution that populated it")
	}

	// A completely fresh service recomputes from scratch; determinism
	// says the bytes must match the other instance's cache.
	s2 := newTestService(t, Config{Workers: 1})
	fresh2, err := s2.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh2.Outcome != OutcomeMiss {
		t.Fatalf("fresh-service outcome = %s, want miss", fresh2.Outcome)
	}
	if !bytes.Equal(cached.Body, fresh2.Body) {
		t.Errorf("cached response differs from freshly computed one:\ncached: %d bytes\nfresh:  %d bytes",
			len(cached.Body), len(fresh2.Body))
	}
}

// TestShardedSpecIsDistinctButDeterministic pins the two halves of the
// execution-knob decision. SimWorkers is part of the content hash because
// stealing benchmarks (like realSpec's Heat-irt) are order-dependent
// across engine workers; for a work-sharing source the engine's
// determinism contract does hold, and a sharded execution reproduces the
// serial bytes even though it lives under its own cache key.
func TestShardedSpecIsDistinctButDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	ctx := context.Background()

	serial := RunSpec{Benchmark: "SOR-ws", Governor: "cuttlefish", Scale: 0.04, Reps: 1}
	sharded := serial
	sharded.SimWorkers = 3
	if serial.Hash() == sharded.Hash() {
		t.Fatal("serial and sharded specs must have distinct content addresses")
	}

	s1 := newTestService(t, Config{Workers: 1})
	r1, err := s1.Submit(ctx, serial)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestService(t, Config{Workers: 1})
	r2, err := s2.Submit(ctx, sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Body, r2.Body) {
		t.Error("work-sharing source must produce identical bytes serial vs sharded (engine determinism contract)")
	}
}
