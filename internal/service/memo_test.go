package service

import (
	"context"
	"testing"

	"repro/internal/memo"
)

// memoSpec is a real (non-stub) spec small enough for CI: the memo tier
// only engages on the default executor, which actually simulates.
func memoSpec(reps int) RunSpec {
	return RunSpec{Scenario: "bursty", Scale: 0.02, Reps: reps, Seed: 1, Governor: "cuttlefish"}
}

// TestServiceMemoPrefixResume drives the memo tier through the real
// executor: a one-rep spec populates snapshots, then a two-rep spec —
// a different content hash, so a result-cache miss — resumes rep 0 from
// the memoized program end and reports the prefix hit in Result.Memo.
func TestServiceMemoPrefixResume(t *testing.T) {
	tier := memo.New(0, nil)
	s := newTestService(t, Config{Workers: 1, Memo: tier})

	r1, err := s.Submit(context.Background(), memoSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Outcome != OutcomeMiss {
		t.Fatalf("first outcome = %s, want miss", r1.Outcome)
	}
	if r1.Memo == nil || r1.Memo.Runs != 1 || r1.Memo.SnapshotsStored == 0 {
		t.Fatalf("first Memo = %+v, want 1 run with stored snapshots", r1.Memo)
	}

	r2, err := s.Submit(context.Background(), memoSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Outcome != OutcomeMiss {
		t.Fatalf("second outcome = %s, want miss (different reps, different hash)", r2.Outcome)
	}
	if r2.Memo == nil || r2.Memo.Runs != 2 || r2.Memo.PrefixHits != 1 {
		t.Fatalf("second Memo = %+v, want 2 runs with 1 prefix hit (rep 0 shared)", r2.Memo)
	}
	if r2.Memo.QuantaSaved <= 0 {
		t.Errorf("second Memo saved %d quanta, want > 0", r2.Memo.QuantaSaved)
	}

	st := s.Stats()
	if st.Memo == nil || st.Memo.PrefixHits != 1 || st.Memo.Entries == 0 {
		t.Errorf("Stats.Memo = %+v, want 1 prefix hit and live entries", st.Memo)
	}
	ci := s.CacheInfo()
	if ci.Memo == nil || ci.Memo.Entries == 0 {
		t.Errorf("CacheInfo.Memo = %+v, want live entries", ci.Memo)
	}
	if err := s.PurgeCache(); err != nil {
		t.Fatal(err)
	}
	if after := s.CacheInfo(); after.Memo == nil || after.Memo.Entries != 0 {
		t.Errorf("post-purge CacheInfo.Memo = %+v, want 0 entries", after.Memo)
	}
}

// TestStatsHitLatencyWindow checks cache hits land in the hit window,
// separate from execution latency: with hits recorded, the microsecond
// percentiles are populated and ordered.
func TestStatsHitLatencyWindow(t *testing.T) {
	exec := &stubExecutor{}
	s := newTestService(t, Config{Workers: 1, Executor: exec.exec})
	if _, err := s.Submit(context.Background(), testSpec(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r, err := s.Submit(context.Background(), testSpec(1))
		if err != nil {
			t.Fatal(err)
		}
		if r.Outcome != OutcomeHit {
			t.Fatalf("outcome = %s, want hit", r.Outcome)
		}
	}
	st := s.Stats()
	if st.Hits != 5 {
		t.Errorf("hits = %d, want 5", st.Hits)
	}
	if st.HitP50Us <= 0 || st.HitP95Us < st.HitP50Us {
		t.Errorf("hit percentiles inconsistent: p50=%gus p95=%gus", st.HitP50Us, st.HitP95Us)
	}
	if st.ExecP95Ms < st.ExecP50Ms {
		t.Errorf("exec percentiles inconsistent: p50=%gms p95=%gms", st.ExecP50Ms, st.ExecP95Ms)
	}
}

func TestMemoHeaderRoundTrip(t *testing.T) {
	v := memo.RunStatsView{Runs: 5, PrefixHits: 2, QuantaSaved: 1560, QuantaTotal: 3900, SnapshotsStored: 31}
	got, ok := ParseMemoHeader(FormatMemoHeader(v))
	if !ok || got != v {
		t.Errorf("round trip = %+v, %v; want %+v, true", got, ok, v)
	}
	for _, bad := range []string{"", "runs", "runs=x", "runs=1 prefix_hits"} {
		if _, ok := ParseMemoHeader(bad); ok {
			t.Errorf("ParseMemoHeader(%q) accepted a malformed value", bad)
		}
	}
	// Unknown keys are ignored so the format can grow.
	if got, ok := ParseMemoHeader("runs=3 future_field=9"); !ok || got.Runs != 3 {
		t.Errorf("forward-compat parse = %+v, %v", got, ok)
	}
}
