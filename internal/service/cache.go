package service

import (
	"container/list"
	"sync"
)

// resultCache is the LRU content-addressed store of finished responses:
// spec hash → canonical report bytes. Both Get and Add refresh recency;
// Add past capacity evicts the least recently used entry.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	bytes int64      // total payload bytes resident
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached body for key, refreshing its recency.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Add stores body under key as the most recently used entry, evicting
// from the LRU end past capacity. Re-adding an existing key refreshes it.
func (c *resultCache) Add(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	c.bytes += int64(len(body))
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		e := oldest.Value.(*cacheEntry)
		c.bytes -= int64(len(e.body))
		delete(c.items, e.key)
	}
}

// Bytes returns the total payload bytes resident in the cache.
func (c *resultCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Purge empties the cache.
func (c *resultCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[string]*list.Element)
	c.bytes = 0
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Keys returns the cached keys from most to least recently used; the
// eviction-order tests assert against it.
func (c *resultCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*cacheEntry).key)
	}
	return keys
}
