package service

import (
	"fmt"
	"reflect"
	"testing"
)

// TestCacheEvictionOrder fills a 3-entry cache, refreshes the oldest
// entry, and checks the next insert evicts the least *recently used*
// entry, not the least recently inserted one.
func TestCacheEvictionOrder(t *testing.T) {
	c := newResultCache(3)
	c.Add("a", []byte("A"))
	c.Add("b", []byte("B"))
	c.Add("c", []byte("C"))
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"c", "b", "a"}) {
		t.Fatalf("keys = %v, want [c b a]", got)
	}
	// Touch "a": now "b" is the LRU entry.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a must be present")
	}
	c.Add("d", []byte("D"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (LRU after a was touched)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a was recently used and must survive")
	}
	if got := c.Len(); got != 3 {
		t.Errorf("len = %d, want 3", got)
	}
}

// TestCacheEvictsInUseOrderUnderPressure drives more inserts than
// capacity and asserts the survivor set is exactly the most recent ones.
func TestCacheEvictsInUseOrderUnderPressure(t *testing.T) {
	c := newResultCache(4)
	for i := 0; i < 10; i++ {
		c.Add(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	want := []string{"k9", "k8", "k7", "k6"}
	if got := c.Keys(); !reflect.DeepEqual(got, want) {
		t.Errorf("keys = %v, want %v", got, want)
	}
}

// TestCacheReAddRefreshes: re-adding an existing key must update the body
// and move it to the front, never duplicate it.
func TestCacheReAddRefreshes(t *testing.T) {
	c := newResultCache(2)
	c.Add("a", []byte("v1"))
	c.Add("b", []byte("B"))
	c.Add("a", []byte("v2"))
	if body, _ := c.Get("a"); string(body) != "v2" {
		t.Errorf("a = %q, want v2", body)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	c.Add("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted, a was refreshed above it")
	}
}
