package service

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/store"
)

func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreTierSurvivesRestart is the warm-cache contract: a second
// service lifetime over the same directory serves a previously executed
// spec from disk — byte-identically and without re-executing.
func TestStoreTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	exec1 := &stubExecutor{}
	s1 := newTestService(t, Config{Workers: 1, Executor: exec1.exec, Store: openTestStore(t, dir)})
	r1, err := s1.Submit(context.Background(), testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Outcome != OutcomeMiss {
		t.Fatalf("cold outcome = %s, want miss", r1.Outcome)
	}

	// "Restart": a fresh service, fresh LRU, same directory.
	exec2 := &stubExecutor{}
	s2 := newTestService(t, Config{Workers: 1, Executor: exec2.exec, Store: openTestStore(t, dir)})
	r2, err := s2.Submit(context.Background(), testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Outcome != OutcomeDisk {
		t.Errorf("warm outcome = %s, want disk", r2.Outcome)
	}
	if !bytes.Equal(r1.Body, r2.Body) {
		t.Error("disk-served body differs from the original execution")
	}
	if n := exec2.calls.Load(); n != 0 {
		t.Errorf("restarted service executed %d times, want 0", n)
	}
	// The disk hit promotes into the LRU: next submission is a memory hit.
	r3, err := s2.Submit(context.Background(), testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Outcome != OutcomeHit {
		t.Errorf("post-promotion outcome = %s, want hit", r3.Outcome)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.Hits != 1 || st.Misses != 0 {
		t.Errorf("stats = disk %d / hit %d / miss %d, want 1/1/0", st.DiskHits, st.Hits, st.Misses)
	}
}

// TestStoreCorruptionReExecutesAndRewrites: a truncated or garbled
// object reads as a miss, the spec re-executes, and the rewritten entry
// is byte-identical to the original — the satellite contract.
func TestStoreCorruptionReExecutesAndRewrites(t *testing.T) {
	dir := t.TempDir()
	exec := &stubExecutor{}
	s1 := newTestService(t, Config{Workers: 1, Executor: exec.exec, Store: openTestStore(t, dir)})
	r1, err := s1.Submit(context.Background(), testSpec(3))
	if err != nil {
		t.Fatal(err)
	}

	// Truncate the object on disk behind the store's back.
	path := filepath.Join(dir, r1.Hash[:2], r1.Hash)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// Fresh lifetime (cold LRU) over the corrupted store.
	s2 := newTestService(t, Config{Workers: 1, Executor: exec.exec, Store: openTestStore(t, dir)})
	r2, err := s2.Submit(context.Background(), testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Outcome != OutcomeMiss {
		t.Errorf("outcome over corrupt store = %s, want miss (re-execution)", r2.Outcome)
	}
	if !bytes.Equal(r1.Body, r2.Body) {
		t.Error("re-executed body differs from the original")
	}
	// The write-through must have repaired the object on disk.
	s3 := newTestService(t, Config{Workers: 1, Executor: exec.exec, Store: openTestStore(t, dir)})
	r3, err := s3.Submit(context.Background(), testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Outcome != OutcomeDisk || !bytes.Equal(r3.Body, r1.Body) {
		t.Errorf("repaired read = %s, byte-identical %v; want disk hit of original bytes", r3.Outcome, bytes.Equal(r3.Body, r1.Body))
	}
}

// TestTwoServicesSharingOneStore models two cfserve backends over a
// shared directory racing the same spec set under -race: whatever the
// interleaving, both serve byte-identical bodies and the store converges
// to one entry per spec.
func TestTwoServicesSharingOneStore(t *testing.T) {
	dir := t.TempDir()
	execA, execB := &stubExecutor{}, &stubExecutor{}
	a := newTestService(t, Config{Workers: 2, QueueDepth: 64, Executor: execA.exec, Store: openTestStore(t, dir)})
	b := newTestService(t, Config{Workers: 2, QueueDepth: 64, Executor: execB.exec, Store: openTestStore(t, dir)})

	const specs = 6
	bodies := make([][2][]byte, specs)
	var wg sync.WaitGroup
	for i := 0; i < specs; i++ {
		for side, svc := range []*Service{a, b} {
			wg.Add(1)
			go func(i, side int, svc *Service) {
				defer wg.Done()
				res, err := svc.Submit(context.Background(), testSpec(int64(i+1)))
				if err != nil {
					t.Error(err)
					return
				}
				bodies[i][side] = res.Body
			}(i, side, svc)
		}
	}
	wg.Wait()
	for i, pair := range bodies {
		if !bytes.Equal(pair[0], pair[1]) {
			t.Errorf("spec %d: backends served different bytes", i)
		}
	}
	if got := openTestStore(t, dir).Len(); got != specs {
		t.Errorf("store entries = %d, want %d", got, specs)
	}
}

// TestPurgeCacheEmptiesBothTiers: DELETE /v1/cache semantics — after a
// purge the same spec is a fresh execution.
func TestPurgeCacheEmptiesBothTiers(t *testing.T) {
	dir := t.TempDir()
	exec := &stubExecutor{}
	s := newTestService(t, Config{Workers: 1, Executor: exec.exec, Store: openTestStore(t, dir)})
	if _, err := s.Submit(context.Background(), testSpec(1)); err != nil {
		t.Fatal(err)
	}
	info := s.CacheInfo()
	if info.Entries != 1 || info.Bytes == 0 || info.Store == nil || info.Store.Entries != 1 {
		t.Fatalf("pre-purge CacheInfo = %+v, want one entry in both tiers", info)
	}
	if err := s.PurgeCache(); err != nil {
		t.Fatal(err)
	}
	info = s.CacheInfo()
	if info.Entries != 0 || info.Bytes != 0 || info.Store.Entries != 0 || info.Store.Bytes != 0 {
		t.Fatalf("post-purge CacheInfo = %+v, want empty tiers", info)
	}
	res, err := s.Submit(context.Background(), testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeMiss || exec.calls.Load() != 2 {
		t.Errorf("post-purge outcome = %s after %d calls, want a fresh miss", res.Outcome, exec.calls.Load())
	}
}
