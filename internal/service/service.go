package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/memo"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/store"
)

// Executor computes the report for one normalized spec. The default runs
// the in-process experiment harnesses; tests substitute stubs.
type Executor func(ctx context.Context, spec RunSpec) (*report.RunReport, error)

// DefaultExecutor dispatches the spec to the experiment harnesses — the
// same code path the cuttlefish CLI runs in-process.
func DefaultExecutor(_ context.Context, spec RunSpec) (*report.RunReport, error) {
	return experiments.BuildReport(spec.Experiment, spec.Benchmark, spec.Options())
}

// Rejection and lifecycle sentinels; the HTTP layer maps them to status
// codes (429, 503).
var (
	// ErrQueueFull is backpressure: the job queue is at capacity and the
	// request was rejected without queueing. Clients should retry later.
	ErrQueueFull = errors.New("service: job queue full, retry later")
	// ErrClosed rejects submissions during and after shutdown.
	ErrClosed = errors.New("service: shutting down")
	// ErrUnknownJob is returned by Job for IDs never issued or already
	// evicted from the bounded job registry.
	ErrUnknownJob = errors.New("service: unknown job id")
)

// Config sizes a Service. Zero values pick serving-oriented defaults.
type Config struct {
	// Workers is the persistent worker fleet size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs accepted but not yet executing; a full
	// queue rejects with ErrQueueFull (0 = 16).
	QueueDepth int
	// CacheEntries bounds the LRU result cache (0 = 256).
	CacheEntries int
	// LatencyWindow is how many recent execution latencies the p50/p95
	// snapshot is computed over (0 = 512).
	LatencyWindow int
	// Executor computes reports (nil = DefaultExecutor).
	Executor Executor
	// Store is the optional persistent tier below the LRU: misses
	// consult it before executing, and every finished execution is
	// written through, so results survive restarts (nil = memory only).
	Store *store.Store
	// Memo is the optional prefix-snapshot tier (internal/memo) below the
	// result cache: a result-cache miss whose workload shares a region
	// prefix with an earlier run restores the last common snapshot and
	// simulates only the suffix. It only applies to the default executor
	// (a custom Executor owns its own run path). Results stay
	// byte-identical with or without it.
	Memo *memo.Tier
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 512
	}
	if c.Executor == nil {
		c.Executor = DefaultExecutor
	}
	return c
}

// Outcome says how a submission was satisfied.
type Outcome string

const (
	// OutcomeHit served canonical bytes straight from the result cache.
	OutcomeHit Outcome = "hit"
	// OutcomeMiss executed the spec on the worker fleet.
	OutcomeMiss Outcome = "miss"
	// OutcomeCoalesced joined an identical in-flight execution and
	// shared its result.
	OutcomeCoalesced Outcome = "coalesced"
	// OutcomeDisk served canonical bytes from the persistent store (an
	// LRU miss that a previous process lifetime had computed); the entry
	// is promoted into the LRU on the way out.
	OutcomeDisk Outcome = "disk"
)

// Result is one satisfied submission: the spec's content hash, how it was
// served, and the canonical report bytes (identical across hit, miss and
// coalesced for the same spec — that is the cache-soundness contract).
// Memo carries the execution's prefix-snapshot activity when the spec was
// executed (miss/coalesced) on a memo-enabled service; it is nil on cache
// hits, which ran no simulation at all.
type Result struct {
	Hash    string
	Outcome Outcome
	Body    []byte
	Memo    *memo.RunStatsView
}

// JobStatus is the lifecycle of an async submission.
type JobStatus string

const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// JobView is a point-in-time snapshot of an async job.
type JobView struct {
	ID      string             `json:"id"`
	Hash    string             `json:"hash"`
	Status  JobStatus          `json:"status"`
	Outcome Outcome            `json:"outcome,omitempty"`
	Error   string             `json:"error,omitempty"`
	Memo    *memo.RunStatsView `json:"memo,omitempty"`
	Body    []byte             `json:"-"`
}

// flight is one in-progress execution of a spec; every identical
// submission that arrives while it runs waits on done instead of queueing
// a duplicate.
type flight struct {
	hash    string
	spec    RunSpec
	done    chan struct{}
	started atomic.Bool
	body    []byte
	err     error
	memo    *memo.RunStatsView
}

// job is one async submission; it resolves through its flight, or is born
// resolved on a cache hit.
type job struct {
	id      string
	hash    string
	outcome Outcome
	fl      *flight // nil when born resolved
	body    []byte
	err     error
}

// Service is the simulation-as-a-service core: content-addressed cache in
// front of a coalescing, bounded job queue drained by a persistent worker
// fleet. Create with New, submit with Submit/SubmitAsync, stop with
// Shutdown.
type Service struct {
	cfg         Config
	cache       *resultCache
	queue       chan *flight
	cancel      context.CancelFunc
	fleet       chan struct{} // closed when every worker has exited
	defaultExec bool          // Executor was defaulted, so the memo tier applies

	mu       sync.Mutex
	closed   bool
	inflight map[string]*flight
	jobs     map[string]*job
	jobOrder []string

	seq       atomic.Uint64
	hits      atomic.Uint64
	diskHits  atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	rejected  atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64

	// Cold executions and cache-served responses live on latency scales
	// three orders of magnitude apart; each gets its own window so a burst
	// of hits cannot dilute the execution percentiles (or vice versa).
	execLat latWindow
	hitLat  latWindow
}

// latWindow is a fixed-size ring of recent latencies.
type latWindow struct {
	mu  sync.Mutex
	buf []float64
	idx int
	n   int
}

func (w *latWindow) record(sec float64) {
	w.mu.Lock()
	w.buf[w.idx] = sec
	w.idx = (w.idx + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// snapshot copies the window's live samples.
func (w *latWindow) snapshot() []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]float64, w.n)
	copy(out, w.buf[:w.n])
	return out
}

// maxJobs bounds the async job registry; finished jobs are evicted oldest
// first past this.
const maxJobs = 1024

// New starts a service: the worker fleet spawns immediately (through the
// shared runner.Pool, like every other harness fan-out in the repo) and
// blocks on the queue.
func New(cfg Config) *Service {
	defaultExec := cfg.Executor == nil
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:         cfg,
		cache:       newResultCache(cfg.CacheEntries),
		queue:       make(chan *flight, cfg.QueueDepth),
		cancel:      cancel,
		fleet:       make(chan struct{}),
		defaultExec: defaultExec,
		inflight:    make(map[string]*flight),
		jobs:        make(map[string]*job),
		execLat:     latWindow{buf: make([]float64, cfg.LatencyWindow)},
		hitLat:      latWindow{buf: make([]float64, cfg.LatencyWindow)},
	}
	workers := make([]func(context.Context) error, cfg.Workers)
	for i := range workers {
		workers[i] = s.worker
	}
	pool := runner.Pool{Workers: cfg.Workers}
	go func() {
		defer close(s.fleet)
		// Workers only return nil; the pool is used for its bounded
		// spawn/join, not error aggregation.
		_ = pool.Go(ctx, workers...)
	}()
	return s
}

// worker drains the queue until it is closed (graceful shutdown) or the
// context is cancelled (forced shutdown, which fails queued flights fast
// so no waiter blocks forever).
func (s *Service) worker(ctx context.Context) error {
	for fl := range s.queue {
		if ctx.Err() != nil {
			s.finish(fl, nil, ErrClosed)
			continue
		}
		s.execute(ctx, fl)
	}
	return nil
}

// execute runs one flight on the executor and publishes its result to the
// cache, the stats and every waiter. On a memo-enabled service (default
// executor only — a custom Executor owns its run path) the experiment
// options carry the snapshot tier and a per-flight stats collector whose
// view travels back on the Result.
func (s *Service) execute(ctx context.Context, fl *flight) {
	fl.started.Store(true)
	start := time.Now()
	var rep *report.RunReport
	var err error
	if s.defaultExec && s.cfg.Memo != nil {
		rs := &memo.RunStats{}
		opt := fl.spec.Options()
		opt.Memo = s.cfg.Memo
		opt.MemoStats = rs
		rep, err = experiments.BuildReport(fl.spec.Experiment, fl.spec.Benchmark, opt)
		if err == nil {
			v := rs.View()
			fl.memo = &v
		}
	} else {
		rep, err = s.cfg.Executor(ctx, fl.spec)
	}
	var body []byte
	if err == nil {
		body, err = rep.Encode()
	}
	if err == nil {
		s.cache.Add(fl.hash, body)
		if s.cfg.Store != nil {
			// Write-through to the persistent tier. A failed write only
			// costs durability, not correctness — the store counts it.
			_ = s.cfg.Store.Put(fl.hash, body)
		}
		s.execLat.record(time.Since(start).Seconds())
		s.completed.Add(1)
	} else {
		s.failed.Add(1)
	}
	s.finish(fl, body, err)
}

// finish resolves a flight: removes it from the coalescing table and
// wakes every waiter.
func (s *Service) finish(fl *flight, body []byte, err error) {
	fl.body, fl.err = body, err
	s.mu.Lock()
	delete(s.inflight, fl.hash)
	s.mu.Unlock()
	close(fl.done)
}

// Submit satisfies one spec synchronously: cache hit, coalesce onto an
// identical in-flight run, or enqueue and wait. A full queue rejects
// immediately with ErrQueueFull rather than blocking the caller.
func (s *Service) Submit(ctx context.Context, spec RunSpec) (Result, error) {
	start := time.Now()
	fl, outcome, res, err := s.admit(spec)
	if err != nil || fl == nil { // hit or disk hit: born resolved
		if err == nil {
			s.hitLat.record(time.Since(start).Seconds())
		}
		return res, err
	}
	select {
	case <-fl.done:
		if fl.err != nil {
			return Result{}, fl.err
		}
		if outcome == OutcomeCoalesced {
			// Served by someone else's execution: the wait belongs in the
			// cache-path window, not the cold-execution one.
			s.hitLat.record(time.Since(start).Seconds())
		}
		return Result{Hash: fl.hash, Outcome: outcome, Body: fl.body, Memo: fl.memo}, nil
	case <-ctx.Done():
		// The flight keeps running; a later identical spec will hit the
		// cache it populates.
		return Result{}, ctx.Err()
	}
}

// admit is the shared admission path: normalize + validate, consult the
// cache, coalesce or enqueue. It returns either a hit Result or the
// flight to wait on with the outcome the waiter should report.
func (s *Service) admit(spec RunSpec) (*flight, Outcome, Result, error) {
	norm := spec.Normalized()
	if err := norm.Validate(); err != nil {
		return nil, "", Result{}, err
	}
	hash := norm.Hash()
	if body, ok := s.cache.Get(hash); ok {
		s.hits.Add(1)
		return nil, OutcomeHit, Result{Hash: hash, Outcome: OutcomeHit, Body: body}, nil
	}
	if s.cfg.Store != nil {
		if body, ok := s.cfg.Store.Get(hash); ok {
			// Promote the disk entry into the LRU so the next request is
			// a memory hit; the bytes served are the stored payload
			// verbatim, byte-identical to the original execution.
			s.cache.Add(hash, body)
			s.diskHits.Add(1)
			return nil, OutcomeDisk, Result{Hash: hash, Outcome: OutcomeDisk, Body: body}, nil
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, "", Result{}, ErrClosed
	}
	if fl, ok := s.inflight[hash]; ok {
		s.coalesced.Add(1)
		return fl, OutcomeCoalesced, Result{}, nil
	}
	fl := &flight{hash: hash, spec: norm, done: make(chan struct{})}
	select {
	case s.queue <- fl:
		s.inflight[hash] = fl
		s.misses.Add(1)
		return fl, OutcomeMiss, Result{}, nil
	default:
		s.rejected.Add(1)
		return nil, "", Result{}, ErrQueueFull
	}
}

// SubmitAsync admits a spec and returns immediately with a job whose
// progress GET-style polling reads through Job. Cache hits return an
// already-done job; backpressure still applies.
func (s *Service) SubmitAsync(spec RunSpec) (JobView, error) {
	fl, outcome, res, err := s.admit(spec)
	if err != nil {
		return JobView{}, err
	}
	j := &job{outcome: outcome}
	if fl == nil { // hit or disk hit: born resolved
		j.hash, j.body = res.Hash, res.Body
	} else {
		j.hash, j.fl = fl.hash, fl
	}
	s.mu.Lock()
	j.id = fmt.Sprintf("r%06d-%s", s.seq.Add(1), j.hash[:12])
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	s.evictJobsLocked()
	s.mu.Unlock()
	return s.view(j), nil
}

// evictJobsLocked drops the oldest finished jobs past maxJobs; unfinished
// jobs are never evicted, so a pending ID stays pollable.
func (s *Service) evictJobsLocked() {
	for i := 0; len(s.jobs) > maxJobs && i < len(s.jobOrder); {
		id := s.jobOrder[i]
		j, ok := s.jobs[id]
		if ok && j.fl != nil {
			select {
			case <-j.fl.done:
				// finished: evictable
			default:
				i++
				continue
			}
		}
		delete(s.jobs, id)
		s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
	}
}

// Job returns the current view of an async submission.
func (s *Service) Job(id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return s.view(j), nil
}

// view snapshots a job, resolving its flight state.
func (s *Service) view(j *job) JobView {
	v := JobView{ID: j.id, Hash: j.hash, Outcome: j.outcome}
	if j.fl == nil {
		v.Status, v.Body = JobDone, j.body
		return v
	}
	select {
	case <-j.fl.done:
		if j.fl.err != nil {
			v.Status, v.Error = JobFailed, j.fl.err.Error()
		} else {
			v.Status, v.Body, v.Memo = JobDone, j.fl.body, j.fl.memo
		}
	default:
		if j.fl.started.Load() {
			v.Status = JobRunning
		} else {
			v.Status = JobQueued
		}
	}
	return v
}

// Stats is a point-in-time operational snapshot, served at /v1/stats.
// Execution latency (cold runs on the worker fleet) and cache-path
// latency (hits, disk hits, coalesced waits) are reported separately —
// and in units matched to their scales: milliseconds for executions,
// microseconds for cache service.
type Stats struct {
	Hits         uint64     `json:"hits"`
	DiskHits     uint64     `json:"disk_hits"`
	Misses       uint64     `json:"misses"`
	Coalesced    uint64     `json:"coalesced"`
	Rejected     uint64     `json:"rejected"`
	Completed    uint64     `json:"completed"`
	Failed       uint64     `json:"failed"`
	QueueDepth   int        `json:"queue_depth"`
	QueueCap     int        `json:"queue_cap"`
	Inflight     int        `json:"inflight"`
	Workers      int        `json:"workers"`
	CacheEntries int        `json:"cache_entries"`
	CacheCap     int        `json:"cache_cap"`
	ExecP50Ms    float64    `json:"exec_p50_ms"`
	ExecP95Ms    float64    `json:"exec_p95_ms"`
	HitP50Us     float64    `json:"hit_p50_us"`
	HitP95Us     float64    `json:"hit_p95_us"`
	Memo         *memo.Info `json:"memo,omitempty"`
}

// Stats snapshots the counters and both latency windows' percentiles.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	inflight := len(s.inflight)
	s.mu.Unlock()
	st := Stats{
		Hits:         s.hits.Load(),
		DiskHits:     s.diskHits.Load(),
		Misses:       s.misses.Load(),
		Coalesced:    s.coalesced.Load(),
		Rejected:     s.rejected.Load(),
		Completed:    s.completed.Load(),
		Failed:       s.failed.Load(),
		QueueDepth:   len(s.queue),
		QueueCap:     cap(s.queue),
		Inflight:     inflight,
		Workers:      s.cfg.Workers,
		CacheEntries: s.cache.Len(),
		CacheCap:     s.cfg.CacheEntries,
	}
	if window := s.execLat.snapshot(); len(window) > 0 {
		st.ExecP50Ms = stats.Percentile(window, 50) * 1e3
		st.ExecP95Ms = stats.Percentile(window, 95) * 1e3
	}
	if window := s.hitLat.snapshot(); len(window) > 0 {
		st.HitP50Us = stats.Percentile(window, 50) * 1e6
		st.HitP95Us = stats.Percentile(window, 95) * 1e6
	}
	if s.cfg.Memo != nil {
		mi := s.cfg.Memo.Info()
		st.Memo = &mi
	}
	return st
}

// CacheInfo describes every cache tier, served at GET /v1/cache.
type CacheInfo struct {
	// Entries and Bytes describe the in-memory LRU tier.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Store describes the persistent tier; nil when none is configured.
	Store *store.Info `json:"store,omitempty"`
	// Memo describes the prefix-snapshot tier; nil when none is
	// configured.
	Memo *memo.Info `json:"memo,omitempty"`
}

// CacheInfo snapshots the LRU, the persistent store and the memo tier.
func (s *Service) CacheInfo() CacheInfo {
	info := CacheInfo{Entries: s.cache.Len(), Bytes: s.cache.Bytes()}
	if s.cfg.Store != nil {
		si := s.cfg.Store.Info()
		info.Store = &si
	}
	if s.cfg.Memo != nil {
		mi := s.cfg.Memo.Info()
		info.Memo = &mi
	}
	return info
}

// PurgeCache empties every cache tier — the result LRU, the persistent
// store and the prefix-snapshot tier: every subsequent submission
// re-simulates from t=0. It does not interrupt in-flight runs (their
// results repopulate the tiers as they finish).
func (s *Service) PurgeCache() error {
	s.cache.Purge()
	var firstErr error
	if s.cfg.Store != nil {
		firstErr = s.cfg.Store.Purge()
	}
	if s.cfg.Memo != nil {
		if err := s.cfg.Memo.Purge(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Shutdown stops the service gracefully: new submissions are rejected
// with ErrClosed, queued and running jobs finish, and the worker fleet
// exits. If ctx expires first, the remaining work is cancelled and
// Shutdown returns ctx.Err() without blocking further: executors that
// ignore their context (the in-process experiment harnesses) cannot be
// interrupted mid-simulation, so their workers keep draining in the
// background — idle workers fast-fail the still-queued flights with
// ErrClosed, and every waiter resolves as its flight is reached.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		// No sender can race this close: every send happens under s.mu
		// with the closed flag checked first.
		close(s.queue)
	}
	s.mu.Unlock()
	select {
	case <-s.fleet:
	case <-ctx.Done():
		s.cancel()
		select {
		case <-s.fleet:
		default:
			return ctx.Err()
		}
	}
	s.cancel()
	// Normally the fleet drains the queue before exiting; if it was
	// cancelled before ever dequeuing, resolve any stranded flights so no
	// waiter blocks forever.
	for {
		fl, ok := <-s.queue
		if !ok {
			return nil
		}
		s.finish(fl, nil, ErrClosed)
	}
}

// Close is Shutdown with no grace: it cancels outstanding work and
// returns immediately. Waiters resolve as workers observe the
// cancellation; an executor that ignores its context finishes on its own
// time in the background — Close does not wait for it.
func (s *Service) Close() {
	s.cancel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Shutdown(ctx)
}
