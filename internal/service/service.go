package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/timeline"
)

// Executor computes the report for one normalized spec. The default runs
// the in-process experiment harnesses; tests substitute stubs.
type Executor func(ctx context.Context, spec RunSpec) (*report.RunReport, error)

// DefaultExecutor dispatches the spec to the experiment harnesses — the
// same code path the cuttlefish CLI runs in-process.
func DefaultExecutor(_ context.Context, spec RunSpec) (*report.RunReport, error) {
	return experiments.BuildReport(spec.Experiment, spec.Benchmark, spec.Options())
}

// Rejection and lifecycle sentinels; the HTTP layer maps them to status
// codes (429, 503).
var (
	// ErrQueueFull is backpressure: the job queue is at capacity and the
	// request was rejected without queueing. Clients should retry later.
	ErrQueueFull = errors.New("service: job queue full, retry later")
	// ErrClosed rejects submissions during and after shutdown.
	ErrClosed = errors.New("service: shutting down")
	// ErrUnknownJob is returned by Job for IDs never issued or already
	// evicted from the bounded job registry.
	ErrUnknownJob = errors.New("service: unknown job id")
)

// Config sizes a Service. Zero values pick serving-oriented defaults.
type Config struct {
	// Workers is the persistent worker fleet size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs accepted but not yet executing; a full
	// queue rejects with ErrQueueFull (0 = 16).
	QueueDepth int
	// CacheEntries bounds the LRU result cache (0 = 256).
	CacheEntries int
	// Executor computes reports (nil = DefaultExecutor).
	Executor Executor
	// Store is the optional persistent tier below the LRU: misses
	// consult it before executing, and every finished execution is
	// written through, so results survive restarts (nil = memory only).
	Store *store.Store
	// Memo is the optional prefix-snapshot tier (internal/memo) below the
	// result cache: a result-cache miss whose workload shares a region
	// prefix with an earlier run restores the last common snapshot and
	// simulates only the suffix. It only applies to the default executor
	// (a custom Executor owns its own run path). Results stay
	// byte-identical with or without it.
	Memo *memo.Tier
	// Metrics is the optional registry GET /metrics scrapes. Families are
	// registered at construction and read the service's own counters at
	// scrape time — /v1/stats and /metrics report from one source of
	// truth. nil disables the endpoint's content, never the service.
	Metrics *obs.Registry
	// Traces is the optional trace store: when set, every request records
	// a span tree (admission → cache/store probes → queue wait → execute →
	// report encode) retrievable at GET /v1/runs/{id}/trace. Traces live
	// strictly outside canonical report bytes and cache keys — results are
	// byte-identical with tracing on or off.
	Traces *obs.TraceStore
	// Profile turns on the engine's wall-clock self-accounting for
	// executed runs (machine.Config.Profile); the numbers surface as span
	// arguments on traced runs. Simulated results are unaffected.
	Profile bool
	// Timelines is the optional flight-recorder store: when set, every
	// executed run (default executor only, like Memo) records a
	// per-quantum machine/governor timeline retrievable at
	// GET /v1/runs/{id}/timeline, merged into the run's trace as counter
	// tracks, and reduced to convergence stats on the Result. Timelines
	// live strictly outside canonical report bytes and cache keys.
	Timelines *timeline.Store
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.Executor == nil {
		c.Executor = DefaultExecutor
	}
	return c
}

// Outcome says how a submission was satisfied.
type Outcome string

const (
	// OutcomeHit served canonical bytes straight from the result cache.
	OutcomeHit Outcome = "hit"
	// OutcomeMiss executed the spec on the worker fleet.
	OutcomeMiss Outcome = "miss"
	// OutcomeCoalesced joined an identical in-flight execution and
	// shared its result.
	OutcomeCoalesced Outcome = "coalesced"
	// OutcomeDisk served canonical bytes from the persistent store (an
	// LRU miss that a previous process lifetime had computed); the entry
	// is promoted into the LRU on the way out.
	OutcomeDisk Outcome = "disk"
)

// Result is one satisfied submission: the spec's content hash, how it was
// served, and the canonical report bytes (identical across hit, miss and
// coalesced for the same spec — that is the cache-soundness contract).
// Memo carries the execution's prefix-snapshot activity when the spec was
// executed (miss/coalesced) on a memo-enabled service; it is nil on cache
// hits, which ran no simulation at all.
type Result struct {
	Hash    string
	Outcome Outcome
	Body    []byte
	Memo    *memo.RunStatsView
	// Convergence summarizes the execution's flight-recorder timeline
	// (time-to-stable-frequency, exploration quanta, energy spent
	// exploring); nil on cache hits and on timeline-disabled services.
	Convergence *timeline.Convergence
}

// JobStatus is the lifecycle of an async submission.
type JobStatus string

const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// JobView is a point-in-time snapshot of an async job.
type JobView struct {
	ID          string                `json:"id"`
	Hash        string                `json:"hash"`
	Status      JobStatus             `json:"status"`
	Outcome     Outcome               `json:"outcome,omitempty"`
	Error       string                `json:"error,omitempty"`
	Memo        *memo.RunStatsView    `json:"memo,omitempty"`
	Convergence *timeline.Convergence `json:"convergence,omitempty"`
	Body        []byte                `json:"-"`
}

// flight is one in-progress execution of a spec; every identical
// submission that arrives while it runs waits on done instead of queueing
// a duplicate.
type flight struct {
	hash    string
	spec    RunSpec
	done    chan struct{}
	started atomic.Bool
	body    []byte
	err     error
	memo    *memo.RunStatsView
	conv    *timeline.Convergence

	// The first submitter's trace rides the flight: queueSpan covers
	// enqueue-to-dequeue, the rest of the tree grows in execute. Both are
	// nil on an untraced service.
	trace     *obs.Trace
	queueSpan *obs.Span
}

// job is one async submission; it resolves through its flight, or is born
// resolved on a cache hit.
type job struct {
	id      string
	hash    string
	outcome Outcome
	fl      *flight // nil when born resolved
	body    []byte
	err     error
}

// Service is the simulation-as-a-service core: content-addressed cache in
// front of a coalescing, bounded job queue drained by a persistent worker
// fleet. Create with New, submit with Submit/SubmitAsync, stop with
// Shutdown.
type Service struct {
	cfg         Config
	cache       *resultCache
	queue       chan *flight
	cancel      context.CancelFunc
	fleet       chan struct{} // closed when every worker has exited
	defaultExec bool          // Executor was defaulted, so the memo tier applies

	mu       sync.Mutex
	closed   bool
	inflight map[string]*flight
	jobs     map[string]*job
	jobOrder []string

	seq       atomic.Uint64
	hits      atomic.Uint64
	diskHits  atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	rejected  atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	busy      atomic.Int64 // workers currently executing a flight

	// Cold executions and cache-served responses live on latency scales
	// three orders of magnitude apart; each gets its own histogram so a
	// burst of hits cannot dilute the execution percentiles (or vice
	// versa). The same histograms back /v1/stats percentiles and /metrics
	// exposition — one source of truth.
	execLat *stats.Histogram
	hitLat  *stats.Histogram

	// govLat holds one execution-latency histogram per governor, created
	// lazily on first execution and registered with the metrics registry.
	govMu  sync.Mutex
	govLat map[string]*stats.Histogram
}

// maxJobs bounds the async job registry; finished jobs are evicted oldest
// first past this.
const maxJobs = 1024

// New starts a service: the worker fleet spawns immediately (through the
// shared runner.Pool, like every other harness fan-out in the repo) and
// blocks on the queue.
func New(cfg Config) *Service {
	defaultExec := cfg.Executor == nil
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:         cfg,
		cache:       newResultCache(cfg.CacheEntries),
		queue:       make(chan *flight, cfg.QueueDepth),
		cancel:      cancel,
		fleet:       make(chan struct{}),
		defaultExec: defaultExec,
		inflight:    make(map[string]*flight),
		jobs:        make(map[string]*job),
		execLat:     stats.NewHistogram(),
		hitLat:      stats.NewHistogram(),
		govLat:      make(map[string]*stats.Histogram),
	}
	s.registerMetrics()
	workers := make([]func(context.Context) error, cfg.Workers)
	for i := range workers {
		workers[i] = s.worker
	}
	pool := runner.Pool{Workers: cfg.Workers}
	go func() {
		defer close(s.fleet)
		// Workers only return nil; the pool is used for its bounded
		// spawn/join, not error aggregation.
		_ = pool.Go(ctx, workers...)
	}()
	return s
}

// registerMetrics wires every metric family to the counters the service
// already keeps: counters read the same atomics /v1/stats snapshots,
// gauges read live structures at scrape time, and the latency histograms
// are the very objects Stats computes percentiles from. No shadow
// counting anywhere. A nil registry makes every call here a no-op.
func (s *Service) registerMetrics() {
	m := s.cfg.Metrics
	if m == nil {
		return
	}
	u := func(v *atomic.Uint64) func() float64 {
		return func() float64 { return float64(v.Load()) }
	}
	for _, c := range []struct {
		outcome string
		v       *atomic.Uint64
	}{
		{"hit", &s.hits}, {"disk", &s.diskHits}, {"miss", &s.misses},
		{"coalesced", &s.coalesced}, {"rejected", &s.rejected},
	} {
		m.CounterFunc("cf_cache_requests_total",
			"Submissions by admission outcome (hit, disk, miss, coalesced, rejected).",
			u(c.v), obs.Label{Name: "outcome", Value: c.outcome})
	}
	m.CounterFunc("cf_runs_completed_total", "Executions that produced a report.", u(&s.completed))
	m.CounterFunc("cf_runs_failed_total", "Executions that failed.", u(&s.failed))
	m.GaugeFunc("cf_queue_depth", "Flights accepted but not yet executing.",
		func() float64 { return float64(len(s.queue)) })
	m.GaugeFunc("cf_queue_capacity", "Job queue capacity.",
		func() float64 { return float64(cap(s.queue)) })
	m.GaugeFunc("cf_workers", "Worker fleet size.",
		func() float64 { return float64(s.cfg.Workers) })
	m.GaugeFunc("cf_workers_busy", "Workers currently executing a flight.",
		func() float64 { return float64(s.busy.Load()) })
	m.GaugeFunc("cf_cache_entries", "Result-cache LRU entries.",
		func() float64 { return float64(s.cache.Len()) })
	m.GaugeFunc("cf_cache_bytes", "Result-cache LRU bytes.",
		func() float64 { return float64(s.cache.Bytes()) })
	m.HistogramVar("cf_exec_seconds",
		"Cold execution latency (worker-fleet runs), seconds.", s.execLat)
	m.HistogramVar("cf_cachepath_seconds",
		"Cache-path service latency (hits, disk hits, coalesced waits), seconds.", s.hitLat)
	if st := s.cfg.Store; st != nil {
		f := func(get func(store.Info) float64) func() float64 {
			return func() float64 { return get(st.Info()) }
		}
		m.CounterFunc("cf_store_hits_total", "Persistent-store lookups served.",
			f(func(i store.Info) float64 { return float64(i.Hits) }))
		m.CounterFunc("cf_store_misses_total", "Persistent-store lookups missed.",
			f(func(i store.Info) float64 { return float64(i.Misses) }))
		m.CounterFunc("cf_store_corrupt_total", "Persistent-store entries rejected as corrupt.",
			f(func(i store.Info) float64 { return float64(i.Corrupt) }))
		m.CounterFunc("cf_store_evicted_total", "Persistent-store entries evicted.",
			f(func(i store.Info) float64 { return float64(i.Evicted) }))
		m.GaugeFunc("cf_store_entries", "Persistent-store entries.",
			f(func(i store.Info) float64 { return float64(i.Entries) }))
		m.GaugeFunc("cf_store_bytes", "Persistent-store bytes.",
			f(func(i store.Info) float64 { return float64(i.Bytes) }))
	}
	if mt := s.cfg.Memo; mt != nil {
		f := func(get func(memo.Info) float64) func() float64 {
			return func() float64 { return get(mt.Info()) }
		}
		m.CounterFunc("cf_memo_lookups_total", "Memo-tier snapshot lookups.",
			f(func(i memo.Info) float64 { return float64(i.Lookups) }))
		m.CounterFunc("cf_memo_hits_total", "Memo-tier snapshot lookups that hit.",
			f(func(i memo.Info) float64 { return float64(i.Hits) }))
		m.CounterFunc("cf_memo_prefix_hits_total", "Runs resumed from a memoized prefix.",
			f(func(i memo.Info) float64 { return float64(i.PrefixHits) }))
		m.CounterFunc("cf_memo_quanta_saved_total", "Simulation quanta skipped via prefix resume.",
			f(func(i memo.Info) float64 { return float64(i.QuantaSaved) }))
		m.GaugeFunc("cf_memo_entries", "Memo-tier snapshot entries.",
			f(func(i memo.Info) float64 { return float64(i.Entries) }))
		m.GaugeFunc("cf_memo_bytes", "Memo-tier snapshot bytes.",
			f(func(i memo.Info) float64 { return float64(i.Bytes) }))
	}
	if ts := s.cfg.Traces; ts != nil {
		m.GaugeFunc("cf_trace_store_entries", "Traces retained.",
			func() float64 { return float64(ts.Len()) })
		m.CounterFunc("cf_trace_store_evicted_total", "Traces dropped by the retention cap.",
			func() float64 { return float64(ts.Evicted()) })
	}
	if tls := s.cfg.Timelines; tls != nil {
		m.GaugeFunc("cf_timeline_store_entries", "Timelines retained.",
			func() float64 { return float64(tls.Len()) })
		m.CounterFunc("cf_timeline_store_evicted_total", "Timelines dropped by the retention cap.",
			func() float64 { return float64(tls.Evicted()) })
	}
}

// governorHist returns the per-governor execution-latency histogram,
// creating and registering it on first use.
func (s *Service) governorHist(gov string) *stats.Histogram {
	if gov == "" {
		gov = "default"
	}
	s.govMu.Lock()
	defer s.govMu.Unlock()
	h, ok := s.govLat[gov]
	if !ok {
		h = stats.NewHistogram()
		s.govLat[gov] = h
		s.cfg.Metrics.HistogramVar("cf_governor_exec_seconds",
			"Cold execution latency by governor, seconds.", h,
			obs.Label{Name: "governor", Value: gov})
	}
	return h
}

// worker drains the queue until it is closed (graceful shutdown) or the
// context is cancelled (forced shutdown, which fails queued flights fast
// so no waiter blocks forever).
func (s *Service) worker(ctx context.Context) error {
	for fl := range s.queue {
		if ctx.Err() != nil {
			s.finish(fl, nil, ErrClosed)
			continue
		}
		s.execute(ctx, fl)
	}
	return nil
}

// execute runs one flight on the executor and publishes its result to the
// cache, the stats and every waiter. On a memo-enabled service (default
// executor only — a custom Executor owns its run path) the experiment
// options carry the snapshot tier and a per-flight stats collector whose
// view travels back on the Result.
func (s *Service) execute(ctx context.Context, fl *flight) {
	fl.started.Store(true)
	s.busy.Add(1)
	defer s.busy.Add(-1)
	fl.queueSpan.End()
	exec := fl.trace.Root().Child("execute")
	start := time.Now()
	var rep *report.RunReport
	var err error
	var rec *timeline.Recorder
	if s.defaultExec {
		// The in-process harness path carries the runtime wiring — memo
		// tier, trace span, profiling, flight recorder — none of which is
		// part of the spec's identity or the report's bytes.
		opt := fl.spec.Options()
		opt.Span = exec
		opt.Profile = s.cfg.Profile
		var rs *memo.RunStats
		if s.cfg.Memo != nil {
			rs = &memo.RunStats{}
			opt.Memo = s.cfg.Memo
			opt.MemoStats = rs
		}
		if s.cfg.Timelines != nil {
			rec = timeline.New(fl.hash)
			opt.Timeline = rec
		}
		rep, err = experiments.BuildReport(fl.spec.Experiment, fl.spec.Benchmark, opt)
		if err == nil && rs != nil {
			v := rs.View()
			fl.memo = &v
		}
	} else {
		rep, err = s.cfg.Executor(ctx, fl.spec)
	}
	exec.End()
	var body []byte
	if err == nil {
		enc := fl.trace.Root().Child("report_encode")
		body, err = rep.Encode()
		enc.End()
	}
	if err == nil {
		s.cache.Add(fl.hash, body)
		if s.cfg.Store != nil {
			// Write-through to the persistent tier. A failed write only
			// costs durability, not correctness — the store counts it.
			_ = s.cfg.Store.Put(fl.hash, body)
		}
		sec := time.Since(start).Seconds()
		s.execLat.Observe(sec)
		s.governorHist(fl.spec.Governor).Observe(sec)
		s.completed.Add(1)
	} else {
		s.failed.Add(1)
	}
	if rec != nil && err == nil {
		// The timeline is published before waiters wake: its bytes are a
		// pure function of the spec, so a re-execution overwrites with
		// identical content.
		_ = s.cfg.Timelines.Save(fl.hash, rec)
		conv := rec.Convergence()
		fl.conv = &conv
		// Counter tracks and decision markers join the span tree so one
		// trace file carries the whole story.
		obs.MergeTimeline(fl.trace, rec)
	}
	if fl.trace != nil {
		root := fl.trace.Root()
		root.Set("outcome", string(OutcomeMiss))
		if err != nil {
			root.Set("error", err.Error())
		}
		root.End()
		_ = s.cfg.Traces.Save(fl.trace)
	}
	s.finish(fl, body, err)
}

// finish resolves a flight: removes it from the coalescing table and
// wakes every waiter.
func (s *Service) finish(fl *flight, body []byte, err error) {
	fl.body, fl.err = body, err
	s.mu.Lock()
	delete(s.inflight, fl.hash)
	s.mu.Unlock()
	close(fl.done)
}

// Submit satisfies one spec synchronously: cache hit, coalesce onto an
// identical in-flight run, or enqueue and wait. A full queue rejects
// immediately with ErrQueueFull rather than blocking the caller.
func (s *Service) Submit(ctx context.Context, spec RunSpec) (Result, error) {
	return s.SubmitUnder(ctx, spec, "")
}

// SubmitUnder is Submit with cross-process trace stitching: parentSpan is
// the remote caller's span ID (from the X-Trace-Parent header), and this
// request's trace roots under it so client and server trees link into one
// trace. Empty parentSpan is plain Submit.
func (s *Service) SubmitUnder(ctx context.Context, spec RunSpec, parentSpan string) (Result, error) {
	start := time.Now()
	adm, err := s.admit(spec, parentSpan)
	if err != nil || adm.fl == nil { // hit or disk hit: born resolved
		if err == nil {
			s.hitLat.Observe(time.Since(start).Seconds())
		}
		return adm.res, err
	}
	fl := adm.fl
	select {
	case <-fl.done:
		adm.join.End()
		if adm.outcome == OutcomeCoalesced {
			// The coalescer's trace is its own (the flight's trace belongs
			// to the first submitter and is saved by execute).
			s.saveTrace(adm.trace, OutcomeCoalesced, fl.err)
		}
		if fl.err != nil {
			return Result{}, fl.err
		}
		if adm.outcome == OutcomeCoalesced {
			// Served by someone else's execution: the wait belongs in the
			// cache-path histogram, not the cold-execution one.
			s.hitLat.Observe(time.Since(start).Seconds())
		}
		return Result{Hash: fl.hash, Outcome: adm.outcome, Body: fl.body, Memo: fl.memo, Convergence: fl.conv}, nil
	case <-ctx.Done():
		// The flight keeps running; a later identical spec will hit the
		// cache it populates.
		return Result{}, ctx.Err()
	}
}

// admission is what admit hands back: either a born-resolved Result or
// the flight to wait on, plus the submitter's trace. For a miss the trace
// rides the flight (execute saves it); for a coalesce the join span stays
// open until the flight resolves.
type admission struct {
	fl      *flight
	outcome Outcome
	res     Result
	trace   *obs.Trace
	join    *obs.Span
}

// saveTrace closes a trace's root span with the request outcome and hands
// it to the trace store. Nil-safe on every argument.
func (s *Service) saveTrace(tr *obs.Trace, outcome Outcome, err error) {
	if tr == nil {
		return
	}
	root := tr.Root()
	root.Set("outcome", string(outcome))
	if err != nil {
		root.Set("error", err.Error())
	}
	root.End()
	_ = s.cfg.Traces.Save(tr)
}

// admit is the shared admission path: normalize + validate, consult the
// cache, coalesce or enqueue. On a traced service it also grows this
// request's span tree — admission, cache/store probes, then queue_wait or
// coalesce_join. Tracing is wall-clock bookkeeping only: the bytes served
// and the cache/store state transitions are identical with it off.
func (s *Service) admit(spec RunSpec, parentSpan string) (admission, error) {
	var tr *obs.Trace
	if s.cfg.Traces != nil {
		tr = obs.NewTraceUnder("", parentSpan)
	}
	adm := tr.Root().Child("admission")
	norm := spec.Normalized()
	if err := norm.Validate(); err != nil {
		return admission{}, err
	}
	hash := norm.Hash()
	tr.SetID(hash)
	adm.End()

	probe := tr.Root().Child("cache_probe")
	body, ok := s.cache.Get(hash)
	probe.Set("hit", ok)
	probe.End()
	if ok {
		s.hits.Add(1)
		s.saveTrace(tr, OutcomeHit, nil)
		return admission{outcome: OutcomeHit, res: Result{Hash: hash, Outcome: OutcomeHit, Body: body}, trace: tr}, nil
	}
	if s.cfg.Store != nil {
		sp := tr.Root().Child("store_probe")
		body, ok := s.cfg.Store.Get(hash)
		sp.Set("hit", ok)
		sp.End()
		if ok {
			// Promote the disk entry into the LRU so the next request is
			// a memory hit; the bytes served are the stored payload
			// verbatim, byte-identical to the original execution.
			s.cache.Add(hash, body)
			s.diskHits.Add(1)
			s.saveTrace(tr, OutcomeDisk, nil)
			return admission{outcome: OutcomeDisk, res: Result{Hash: hash, Outcome: OutcomeDisk, Body: body}, trace: tr}, nil
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return admission{}, ErrClosed
	}
	if fl, ok := s.inflight[hash]; ok {
		s.coalesced.Add(1)
		join := tr.Root().Child("coalesce_join")
		return admission{fl: fl, outcome: OutcomeCoalesced, trace: tr, join: join}, nil
	}
	fl := &flight{hash: hash, spec: norm, done: make(chan struct{})}
	// The first submitter's trace rides the flight; execute closes it.
	// Both fields must be set before the send — a worker may dequeue the
	// flight the instant it lands on the queue.
	fl.trace = tr
	fl.queueSpan = tr.Root().Child("queue_wait")
	select {
	case s.queue <- fl:
		s.inflight[hash] = fl
		s.misses.Add(1)
		return admission{fl: fl, outcome: OutcomeMiss, trace: tr}, nil
	default:
		fl.queueSpan.End()
		s.rejected.Add(1)
		s.saveTrace(tr, "rejected", ErrQueueFull)
		return admission{}, ErrQueueFull
	}
}

// SubmitAsync admits a spec and returns immediately with a job whose
// progress GET-style polling reads through Job. Cache hits return an
// already-done job; backpressure still applies.
func (s *Service) SubmitAsync(spec RunSpec) (JobView, error) {
	return s.SubmitAsyncUnder(spec, "")
}

// SubmitAsyncUnder is SubmitAsync with cross-process trace stitching (see
// SubmitUnder).
func (s *Service) SubmitAsyncUnder(spec RunSpec, parentSpan string) (JobView, error) {
	adm, err := s.admit(spec, parentSpan)
	if err != nil {
		return JobView{}, err
	}
	// An async coalescer has no waiter to close its join span; resolve its
	// trace at admission (the flight's own trace captures the execution).
	if adm.join != nil {
		adm.join.End()
		s.saveTrace(adm.trace, OutcomeCoalesced, nil)
	}
	j := &job{outcome: adm.outcome}
	if adm.fl == nil { // hit or disk hit: born resolved
		j.hash, j.body = adm.res.Hash, adm.res.Body
	} else {
		j.hash, j.fl = adm.fl.hash, adm.fl
	}
	s.mu.Lock()
	j.id = fmt.Sprintf("r%06d-%s", s.seq.Add(1), j.hash[:12])
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	s.evictJobsLocked()
	s.mu.Unlock()
	return s.view(j), nil
}

// evictJobsLocked drops the oldest finished jobs past maxJobs; unfinished
// jobs are never evicted, so a pending ID stays pollable.
func (s *Service) evictJobsLocked() {
	for i := 0; len(s.jobs) > maxJobs && i < len(s.jobOrder); {
		id := s.jobOrder[i]
		j, ok := s.jobs[id]
		if ok && j.fl != nil {
			select {
			case <-j.fl.done:
				// finished: evictable
			default:
				i++
				continue
			}
		}
		delete(s.jobs, id)
		s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
	}
}

// Job returns the current view of an async submission.
func (s *Service) Job(id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return s.view(j), nil
}

// view snapshots a job, resolving its flight state.
func (s *Service) view(j *job) JobView {
	v := JobView{ID: j.id, Hash: j.hash, Outcome: j.outcome}
	if j.fl == nil {
		v.Status, v.Body = JobDone, j.body
		return v
	}
	select {
	case <-j.fl.done:
		if j.fl.err != nil {
			v.Status, v.Error = JobFailed, j.fl.err.Error()
		} else {
			v.Status, v.Body, v.Memo = JobDone, j.fl.body, j.fl.memo
			v.Convergence = j.fl.conv
		}
	default:
		if j.fl.started.Load() {
			v.Status = JobRunning
		} else {
			v.Status = JobQueued
		}
	}
	return v
}

// Stats is a point-in-time operational snapshot, served at /v1/stats.
// Execution latency (cold runs on the worker fleet) and cache-path
// latency (hits, disk hits, coalesced waits) are reported separately —
// and in units matched to their scales: milliseconds for executions,
// microseconds for cache service.
type Stats struct {
	Hits         uint64     `json:"hits"`
	DiskHits     uint64     `json:"disk_hits"`
	Misses       uint64     `json:"misses"`
	Coalesced    uint64     `json:"coalesced"`
	Rejected     uint64     `json:"rejected"`
	Completed    uint64     `json:"completed"`
	Failed       uint64     `json:"failed"`
	QueueDepth   int        `json:"queue_depth"`
	QueueCap     int        `json:"queue_cap"`
	Inflight     int        `json:"inflight"`
	Workers      int        `json:"workers"`
	CacheEntries int        `json:"cache_entries"`
	CacheCap     int        `json:"cache_cap"`
	ExecP50Ms    float64    `json:"exec_p50_ms"`
	ExecP95Ms    float64    `json:"exec_p95_ms"`
	HitP50Us     float64    `json:"hit_p50_us"`
	HitP95Us     float64    `json:"hit_p95_us"`
	Memo         *memo.Info `json:"memo,omitempty"`
}

// Stats snapshots the counters and both latency histograms' percentiles.
// The histograms are the same objects /metrics exposes, so the two
// endpoints can never disagree; percentiles are log-bucket upper bounds
// (one-sided error ≤ 1.585×, see stats.Histogram).
func (s *Service) Stats() Stats {
	s.mu.Lock()
	inflight := len(s.inflight)
	s.mu.Unlock()
	st := Stats{
		Hits:         s.hits.Load(),
		DiskHits:     s.diskHits.Load(),
		Misses:       s.misses.Load(),
		Coalesced:    s.coalesced.Load(),
		Rejected:     s.rejected.Load(),
		Completed:    s.completed.Load(),
		Failed:       s.failed.Load(),
		QueueDepth:   len(s.queue),
		QueueCap:     cap(s.queue),
		Inflight:     inflight,
		Workers:      s.cfg.Workers,
		CacheEntries: s.cache.Len(),
		CacheCap:     s.cfg.CacheEntries,
	}
	st.ExecP50Ms = s.execLat.Quantile(0.5) * 1e3
	st.ExecP95Ms = s.execLat.Quantile(0.95) * 1e3
	st.HitP50Us = s.hitLat.Quantile(0.5) * 1e6
	st.HitP95Us = s.hitLat.Quantile(0.95) * 1e6
	if s.cfg.Memo != nil {
		mi := s.cfg.Memo.Info()
		st.Memo = &mi
	}
	return st
}

// CacheInfo describes every cache tier, served at GET /v1/cache.
type CacheInfo struct {
	// Entries and Bytes describe the in-memory LRU tier.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Store describes the persistent tier; nil when none is configured.
	Store *store.Info `json:"store,omitempty"`
	// Memo describes the prefix-snapshot tier; nil when none is
	// configured.
	Memo *memo.Info `json:"memo,omitempty"`
}

// CacheInfo snapshots the LRU, the persistent store and the memo tier.
func (s *Service) CacheInfo() CacheInfo {
	info := CacheInfo{Entries: s.cache.Len(), Bytes: s.cache.Bytes()}
	if s.cfg.Store != nil {
		si := s.cfg.Store.Info()
		info.Store = &si
	}
	if s.cfg.Memo != nil {
		mi := s.cfg.Memo.Info()
		info.Memo = &mi
	}
	return info
}

// PurgeCache empties every cache tier — the result LRU, the persistent
// store and the prefix-snapshot tier: every subsequent submission
// re-simulates from t=0. It does not interrupt in-flight runs (their
// results repopulate the tiers as they finish).
func (s *Service) PurgeCache() error {
	s.cache.Purge()
	var firstErr error
	if s.cfg.Store != nil {
		firstErr = s.cfg.Store.Purge()
	}
	if s.cfg.Memo != nil {
		if err := s.cfg.Memo.Purge(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Shutdown stops the service gracefully: new submissions are rejected
// with ErrClosed, queued and running jobs finish, and the worker fleet
// exits. If ctx expires first, the remaining work is cancelled and
// Shutdown returns ctx.Err() without blocking further: executors that
// ignore their context (the in-process experiment harnesses) cannot be
// interrupted mid-simulation, so their workers keep draining in the
// background — idle workers fast-fail the still-queued flights with
// ErrClosed, and every waiter resolves as its flight is reached.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		// No sender can race this close: every send happens under s.mu
		// with the closed flag checked first.
		close(s.queue)
	}
	s.mu.Unlock()
	select {
	case <-s.fleet:
	case <-ctx.Done():
		s.cancel()
		select {
		case <-s.fleet:
		default:
			return ctx.Err()
		}
	}
	s.cancel()
	// Normally the fleet drains the queue before exiting; if it was
	// cancelled before ever dequeuing, resolve any stranded flights so no
	// waiter blocks forever.
	for {
		fl, ok := <-s.queue
		if !ok {
			return nil
		}
		s.finish(fl, nil, ErrClosed)
	}
}

// Close is Shutdown with no grace: it cancels outstanding work and
// returns immediately. Waiters resolve as workers observe the
// cancellation; an executor that ignores its context finishes on its own
// time in the background — Close does not wait for it.
func (s *Service) Close() {
	s.cancel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Shutdown(ctx)
}
