package service

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"
)

// BenchmarkServiceCacheHit measures the steady-state cost of serving a
// previously computed spec: one cache lookup plus a copy of the canonical
// bytes. Compare with BenchmarkServiceCacheCold for the speedup the
// content-addressed cache buys.
func BenchmarkServiceCacheHit(b *testing.B) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	spec := realSpec()
	if _, err := s.Submit(ctx, spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Submit(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != OutcomeHit {
			b.Fatalf("outcome = %s, want hit", res.Outcome)
		}
	}
}

// BenchmarkServiceCacheCold measures a full execution per iteration: the
// spec's seed changes every round so nothing is ever served from cache.
func BenchmarkServiceCacheCold(b *testing.B) {
	s := New(Config{Workers: 1, CacheEntries: 4})
	defer s.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := realSpec()
		spec.Seed = int64(i + 1)
		res, err := s.Submit(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != OutcomeMiss {
			b.Fatalf("outcome = %s, want miss", res.Outcome)
		}
	}
}

// measureColdAndHit times one cold execution and the mean of hits
// hot-path submissions of the same spec.
func measureColdAndHit(t testing.TB, hits int) (cold, hit time.Duration) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	spec := realSpec()

	start := time.Now()
	if _, err := s.Submit(ctx, spec); err != nil {
		t.Fatal(err)
	}
	cold = time.Since(start)

	start = time.Now()
	for i := 0; i < hits; i++ {
		res, err := s.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != OutcomeHit {
			t.Fatalf("outcome = %s, want hit", res.Outcome)
		}
	}
	hit = time.Since(start) / time.Duration(hits)
	return cold, hit
}

// TestServiceCacheHitSpeedup asserts the acceptance criterion directly: a
// cache hit must be at least 50× cheaper than the cold execution it
// replaces. In practice the gap is 3–4 orders of magnitude; 50× leaves
// room for the noisiest CI hosts.
func TestServiceCacheHitSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	cold, hit := measureColdAndHit(t, 200)
	speedup := float64(cold) / float64(hit)
	t.Logf("cold %v, hit %v, speedup %.0f×", cold, hit, speedup)
	if speedup < 50 {
		t.Errorf("cache hit speedup = %.1f×, want >= 50×", speedup)
	}
}

// TestEmitServiceBaseline writes the BENCH_service.json throughput
// baseline when BENCH_SERVICE_OUT names a path; CI regenerates it and the
// committed copy records the reference numbers.
func TestEmitServiceBaseline(t *testing.T) {
	out := os.Getenv("BENCH_SERVICE_OUT")
	if out == "" {
		t.Skip("set BENCH_SERVICE_OUT=<path> to emit the baseline")
	}
	cold, hit := measureColdAndHit(t, 500)
	baseline := map[string]any{
		"benchmark":    "BenchmarkServiceCacheHit vs cold execution",
		"spec":         realSpec(),
		"cold_ms":      float64(cold.Microseconds()) / 1e3,
		"hit_us":       float64(hit.Nanoseconds()) / 1e3,
		"speedup":      float64(cold) / float64(hit),
		"hits_per_sec": float64(time.Second) / float64(hit),
	}
	raw, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: cold %v, hit %v", out, cold, hit)
}
