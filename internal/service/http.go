package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/governor"
	"repro/internal/memo"
	"repro/internal/scenario"
	"repro/internal/timeline"
)

// Cache-status and content-address response headers. The cache outcome
// travels out of band so hit, miss and coalesced responses stay
// byte-identical in the body. The memo detail rides out of band for the
// same reason: a prefix-resumed execution's report is byte-identical to a
// from-scratch one, so how it was computed must not touch the body.
const (
	HeaderCache = "X-Cache"
	HeaderHash  = "X-Spec-Hash"
	HeaderJobID = "X-Job-Id"
	HeaderMemo  = "X-Memo"
	// HeaderTimeline carries the executed run's convergence summary
	// (flight-recorder reduction); absent on cache hits.
	HeaderTimeline = "X-Timeline"
	// HeaderTraceParent is the request header propagating the client's
	// trace context ("trace=<trace-id> span=<span-id>"); the server roots
	// its trace under the span so the two trees stitch into one.
	HeaderTraceParent = "X-Trace-Parent"
)

// FormatTraceParent renders trace context for the X-Trace-Parent header.
func FormatTraceParent(traceID, spanID string) string {
	return fmt.Sprintf("trace=%s span=%s", traceID, spanID)
}

// ParseTraceParent decodes FormatTraceParent's output; ok is false for an
// empty or malformed value.
func ParseTraceParent(s string) (traceID, spanID string, ok bool) {
	for _, field := range strings.Fields(s) {
		key, val, found := strings.Cut(field, "=")
		if !found || val == "" {
			return "", "", false
		}
		switch key {
		case "trace":
			traceID = val
		case "span":
			spanID = val
		}
	}
	return traceID, spanID, spanID != ""
}

// FormatTimelineHeader renders a convergence summary as the X-Timeline
// header value: space-separated key=value pairs, floats in %g.
func FormatTimelineHeader(c timeline.Convergence) string {
	return fmt.Sprintf("runs=%d stable_s=%g explore_quanta=%d explore_j=%g",
		c.Runs, c.TimeToStableSec, c.ExplorationQuanta, c.ExplorationEnergyJ)
}

// ParseTimelineHeader decodes FormatTimelineHeader's output; unknown keys
// are ignored so the format can grow. ok is false for an empty or
// malformed value.
func ParseTimelineHeader(s string) (timeline.Convergence, bool) {
	var c timeline.Convergence
	if s == "" {
		return c, false
	}
	any := false
	for _, field := range strings.Fields(s) {
		key, val, found := strings.Cut(field, "=")
		if !found {
			return timeline.Convergence{}, false
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return timeline.Convergence{}, false
		}
		any = true
		switch key {
		case "runs":
			c.Runs = int(f)
		case "stable_s":
			c.TimeToStableSec = f
		case "explore_quanta":
			c.ExplorationQuanta = int(f)
		case "explore_j":
			c.ExplorationEnergyJ = f
		}
	}
	return c, any
}

// FormatMemoHeader renders one execution's memo activity as the X-Memo
// header value: space-separated key=value pairs.
func FormatMemoHeader(v memo.RunStatsView) string {
	return fmt.Sprintf("runs=%d prefix_hits=%d quanta_saved=%d quanta_total=%d snapshots_stored=%d",
		v.Runs, v.PrefixHits, v.QuantaSaved, v.QuantaTotal, v.SnapshotsStored)
}

// ParseMemoHeader decodes FormatMemoHeader's output; unknown keys are
// ignored so the format can grow. ok is false for an empty or malformed
// value.
func ParseMemoHeader(s string) (memo.RunStatsView, bool) {
	var v memo.RunStatsView
	if s == "" {
		return v, false
	}
	any := false
	for _, field := range strings.Fields(s) {
		key, val, found := strings.Cut(field, "=")
		if !found {
			return memo.RunStatsView{}, false
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return memo.RunStatsView{}, false
		}
		any = true
		switch key {
		case "runs":
			v.Runs = int(n)
		case "prefix_hits":
			v.PrefixHits = int(n)
		case "quanta_saved":
			v.QuantaSaved = n
		case "quanta_total":
			v.QuantaTotal = n
		case "snapshots_stored":
			v.SnapshotsStored = int(n)
		}
	}
	return v, any
}

// NewHandler exposes a Service over HTTP:
//
//	POST   /v1/runs          RunSpec JSON in, canonical RunReport JSON out
//	POST   /v1/runs?async=1  202 + job envelope; poll the Location URL
//	GET    /v1/runs/{id}     async job status / result
//	GET    /v1/governors     registered governor names
//	GET    /v1/scenarios     registered workloads (benchmarks + scenarios)
//	GET    /v1/stats         operational snapshot
//	GET    /v1/cache         cache tiers: LRU entries/bytes, store path/size
//	DELETE /v1/cache         purge both tiers (LRU + persistent store)
//	GET    /v1/runs/{id}/trace  span tree of the latest run of a spec hash
//	GET    /v1/traces        trace IDs currently held (+ retention stats)
//	GET    /v1/runs/{id}/timeline  flight-recorder timeline of a spec hash
//	GET    /v1/timelines     timeline IDs currently held (+ retention stats)
//	GET    /metrics          Prometheus text exposition
//	GET    /healthz          liveness
//
// The trace and timeline routes accept the spec content hash (or a
// prefix) as {id}. Traces default to Chrome trace-event format;
// ?format=spans returns the structural span-tree JSON instead. All four
// 404 unless the service was built with the corresponding store.
// /metrics serves an empty body on a service without a metrics registry.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		handleRuns(s, w, r)
	})
	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleJob(s, w, r)
	})
	mux.HandleFunc("GET /v1/governors", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"governors": governor.Names()})
	})
	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"scenarios": scenario.List()})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /v1/cache", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.CacheInfo())
	})
	mux.HandleFunc("DELETE /v1/cache", func(w http.ResponseWriter, r *http.Request) {
		if err := s.PurgeCache(); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, s.CacheInfo())
	})
	mux.HandleFunc("GET /v1/runs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		handleTrace(s, w, r)
	})
	mux.HandleFunc("GET /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Traces == nil {
			writeError(w, http.StatusNotFound, errors.New("tracing disabled (start cfserve with -trace-dir or -traces)"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"traces":   s.cfg.Traces.IDs(),
			"capacity": s.cfg.Traces.Cap(),
			"evicted":  s.cfg.Traces.Evicted(),
		})
	})
	mux.HandleFunc("GET /v1/runs/{id}/timeline", func(w http.ResponseWriter, r *http.Request) {
		handleTimeline(s, w, r)
	})
	mux.HandleFunc("GET /v1/timelines", func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.Timelines == nil {
			writeError(w, http.StatusNotFound, errors.New("timelines disabled (start cfserve with -timelines)"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"timelines": s.cfg.Timelines.IDs(),
			"capacity":  s.cfg.Timelines.Cap(),
			"evicted":   s.cfg.Timelines.Evicted(),
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.cfg.Metrics.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// handleTrace serves one run's span tree. The default body is Chrome
// trace-event JSON (load it at chrome://tracing or ui.perfetto.dev);
// ?format=spans returns the structural export with deterministic span IDs.
func handleTrace(s *Service, w http.ResponseWriter, r *http.Request) {
	if s.cfg.Traces == nil {
		writeError(w, http.StatusNotFound, errors.New("tracing disabled (start cfserve with -trace-dir or -traces)"))
		return
	}
	id := r.PathValue("id")
	tr, ok := s.cfg.Traces.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no trace for %q (traces hold the most recent runs only)", id))
		return
	}
	if r.URL.Query().Get("format") == "spans" {
		writeJSON(w, http.StatusOK, tr.Export())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = tr.WriteChrome(w)
}

// handleTimeline serves one run's flight-recorder timeline: the stored
// JSON document (versioned schema, bit-deterministic for a given spec).
func handleTimeline(s *Service, w http.ResponseWriter, r *http.Request) {
	if s.cfg.Timelines == nil {
		writeError(w, http.StatusNotFound, errors.New("timelines disabled (start cfserve with -timelines)"))
		return
	}
	id := r.PathValue("id")
	data, ok := s.cfg.Timelines.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no timeline for %q (timelines hold executed runs only — cache hits run no simulation)", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func handleRuns(s *Service, w http.ResponseWriter, r *http.Request) {
	var spec RunSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields() // a typoed field silently changing the run would poison the hash
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
		return
	}
	// Cross-process stitching: a client that traces its own side sends its
	// root span; this request's trace roots under it.
	_, parentSpan, _ := ParseTraceParent(r.Header.Get(HeaderTraceParent))
	if async, _ := strconv.ParseBool(r.URL.Query().Get("async")); async {
		jv, err := s.SubmitAsyncUnder(spec, parentSpan)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		w.Header().Set("Location", "/v1/runs/"+jv.ID)
		w.Header().Set(HeaderHash, jv.Hash)
		writeJSON(w, http.StatusAccepted, jv)
		return
	}
	res, err := s.SubmitUnder(r.Context(), spec, parentSpan)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeReport(w, res.Hash, res.Outcome, res.Memo, res.Convergence, res.Body)
}

func handleJob(s *Service, w http.ResponseWriter, r *http.Request) {
	jv, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set(HeaderJobID, jv.ID)
	switch jv.Status {
	case JobDone:
		writeReport(w, jv.Hash, jv.Outcome, jv.Memo, jv.Convergence, jv.Body)
	case JobFailed:
		writeError(w, http.StatusInternalServerError, errors.New(jv.Error))
	default:
		w.Header().Set(HeaderHash, jv.Hash)
		writeJSON(w, http.StatusOK, jv)
	}
}

// writeReport sends the canonical report bytes verbatim — no re-encoding,
// so the body a cache hit serves is the exact byte sequence the original
// execution produced. The memo and timeline details ride out of band as
// headers for the same reason.
func writeReport(w http.ResponseWriter, hash string, outcome Outcome, mv *memo.RunStatsView, conv *timeline.Convergence, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderCache, string(outcome))
	w.Header().Set(HeaderHash, hash)
	if mv != nil {
		w.Header().Set(HeaderMemo, FormatMemoHeader(*mv))
	}
	if conv != nil {
		w.Header().Set(HeaderTimeline, FormatTimelineHeader(*conv))
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// statusFor maps service errors to HTTP codes: invalid specs are the
// client's fault, a full queue is backpressure, shutdown is unavailability.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrInvalidSpec):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
