package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	srv := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

func postRun(t *testing.T, url string, spec RunSpec) *http.Response {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHTTPRunTwiceSecondIsByteIdenticalHit is the wire-level version of
// the cache-soundness contract: same spec POSTed twice, second response
// says X-Cache: hit and carries the exact bytes of the first.
func TestHTTPRunTwiceSecondIsByteIdenticalHit(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2, Executor: (&stubExecutor{}).exec})
	spec := testSpec(1)

	r1 := postRun(t, srv.URL, spec)
	body1, _ := io.ReadAll(r1.Body)
	r1.Body.Close()
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d %s", r1.StatusCode, body1)
	}
	if got := r1.Header.Get(HeaderCache); got != "miss" {
		t.Errorf("first X-Cache = %q, want miss", got)
	}

	r2 := postRun(t, srv.URL, spec)
	body2, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if got := r2.Header.Get(HeaderCache); got != "hit" {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cached response is not byte-identical to the computed one")
	}
	if r1.Header.Get(HeaderHash) != r2.Header.Get(HeaderHash) {
		t.Error("spec hash headers differ")
	}
	if !json.Valid(body1) {
		t.Error("response is not valid JSON")
	}
}

func TestHTTPValidationAndBackpressureStatusCodes(t *testing.T) {
	exec := &stubExecutor{gate: make(chan struct{})}
	s, srv := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Executor: exec.exec})
	defer close(exec.gate)

	// 400: unknown benchmark.
	resp := postRun(t, srv.URL, RunSpec{Benchmark: "LINPACK"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec: %d, want 400", resp.StatusCode)
	}

	// 400: unknown field (a typo would silently change the run).
	resp2, err := http.Post(srv.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"benchmark":"UTS","scael":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", resp2.StatusCode)
	}

	// 429: worker + queue slot held, third distinct spec rejected.
	// (plain http.Post in goroutines: t.Fatal must not run off the test
	// goroutine, and these requests only resolve once the gate opens)
	for _, seed := range []int64{1, 2} {
		raw, _ := json.Marshal(testSpec(seed))
		go func() {
			r, err := http.Post(srv.URL+"/v1/runs", "application/json", bytes.NewReader(raw))
			if err == nil {
				io.Copy(io.Discard, r.Body)
				r.Body.Close()
			}
		}()
		if seed == 1 {
			waitFor(t, func() bool { return exec.calls.Load() == 1 })
		}
	}
	waitFor(t, func() bool { return s.Stats().QueueDepth == 1 })
	resp3 := postRun(t, srv.URL, testSpec(3))
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Errorf("full queue: %d, want 429", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
}

func TestHTTPAsyncFlow(t *testing.T) {
	exec := &stubExecutor{gate: make(chan struct{})}
	_, srv := newTestServer(t, Config{Workers: 1, Executor: exec.exec})

	raw, _ := json.Marshal(testSpec(1))
	resp, err := http.Post(srv.URL+"/v1/runs?async=1", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST: %d", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if loc != "/v1/runs/"+jv.ID {
		t.Errorf("Location = %q, id = %q", loc, jv.ID)
	}

	// Pending poll returns the envelope, not a report.
	p1, err := http.Get(srv.URL + loc)
	if err != nil {
		t.Fatal(err)
	}
	var pending JobView
	json.NewDecoder(p1.Body).Decode(&pending)
	p1.Body.Close()
	if pending.Status != JobQueued && pending.Status != JobRunning {
		t.Errorf("pending status = %s", pending.Status)
	}

	close(exec.gate)
	deadline := time.Now().Add(5 * time.Second)
	for {
		p2, err := http.Get(srv.URL + loc)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(p2.Body)
		p2.Body.Close()
		if p2.Header.Get(HeaderCache) != "" {
			// Done: the poll returned the report itself.
			var rep map[string]any
			if err := json.Unmarshal(body, &rep); err != nil {
				t.Fatalf("done body is not a report: %v", err)
			}
			if rep["experiment"] != "run" {
				t.Errorf("report experiment = %v", rep["experiment"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(time.Millisecond)
	}

	// Unknown job IDs are 404.
	p3, err := http.Get(srv.URL + "/v1/runs/r000000-missing")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, p3.Body)
	p3.Body.Close()
	if p3.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", p3.StatusCode)
	}
}

func TestHTTPGovernorsAndStats(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, Executor: (&stubExecutor{}).exec})
	c := &Client{BaseURL: srv.URL}

	govs, err := c.Governors(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range govs {
		if g == "cuttlefish" {
			found = true
		}
	}
	if !found {
		t.Errorf("governors = %v, want cuttlefish included", govs)
	}

	if _, _, err := c.Run(context.Background(), testSpec(1)); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != 1 || st.Workers != 1 {
		t.Errorf("stats = %+v, want misses=1 workers=1", st)
	}
}

// TestHTTPScenarios: GET /v1/scenarios serves the full workload registry
// — Table 1 benchmarks and synthetic scenarios — through the client.
func TestHTTPScenarios(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, Executor: (&stubExecutor{}).exec})
	c := &Client{BaseURL: srv.URL}

	infos, err := c.Scenarios(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]string{}
	for _, info := range infos {
		kinds[info.Name] = string(info.Kind)
	}
	if kinds["bursty"] != "synthetic" {
		t.Errorf("bursty kind = %q, want synthetic (got %v)", kinds["bursty"], kinds)
	}
	if kinds["Heat-irt"] != "bench" {
		t.Errorf("Heat-irt kind = %q, want bench", kinds["Heat-irt"])
	}
}

// TestClientRunRoundTrip: the remote client decodes the canonical report
// and surfaces the cache outcome.
func TestClientRunRoundTrip(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, Executor: (&stubExecutor{}).exec})
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	rep, outcome, err := c.Run(ctx, testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeMiss {
		t.Errorf("first outcome = %s, want miss", outcome)
	}
	if rep.Experiment != "run" || len(rep.Rows) != 1 {
		t.Errorf("report = %+v", rep)
	}
	_, outcome, err = c.Run(ctx, testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeHit {
		t.Errorf("second outcome = %s, want hit", outcome)
	}

	// Server-side errors surface with the server's message.
	if _, _, err := c.Run(ctx, RunSpec{Benchmark: "LINPACK"}); err == nil ||
		!strings.Contains(err.Error(), "LINPACK") {
		t.Errorf("remote validation error = %v, want benchmark named", err)
	}
}
