package service

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/store"
)

// newObsService builds a service with every observability feature on:
// metrics registry, trace store (ring + Chrome files), engine profiling.
func newObsService(t *testing.T, cfg Config) *Service {
	t.Helper()
	cfg.Metrics = obs.NewRegistry()
	cfg.Traces = obs.NewTraceStore(16, t.TempDir())
	cfg.Profile = true
	return newTestService(t, cfg)
}

func mustStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestObservabilityPreservesReportBytes is the determinism-boundary
// regression test: a fully instrumented service (tracing + metrics +
// engine profiling) must produce byte-identical canonical reports to an
// uninstrumented one on every path — cold miss, memo prefix resume, LRU
// hit and persistent-store hit. Observability is wall-clock-only; if any
// of it leaks into simulated state or report encoding, this fails.
func TestObservabilityPreservesReportBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	ctx := context.Background()
	plainDir, obsDir := t.TempDir(), t.TempDir()
	plain := newTestService(t, Config{Workers: 1, Memo: memo.New(0, nil), Store: mustStore(t, plainDir)})
	instr := newObsService(t, Config{Workers: 1, Memo: memo.New(0, nil), Store: mustStore(t, obsDir)})

	// Cold miss, then a second spec whose rep-0 resumes from the first's
	// memoized program end — the memo restore path under tracing.
	var lastInstr Result
	for _, spec := range []RunSpec{memoSpec(1), memoSpec(2)} {
		a, err := plain.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := instr.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if a.Outcome != OutcomeMiss || b.Outcome != OutcomeMiss {
			t.Fatalf("outcomes = %s/%s, want miss/miss", a.Outcome, b.Outcome)
		}
		if !bytes.Equal(a.Body, b.Body) {
			t.Fatalf("instrumented miss differs from plain for reps=%d", spec.Reps)
		}
		lastInstr = b
	}
	if lastInstr.Memo == nil || lastInstr.Memo.PrefixHits == 0 {
		t.Fatal("instrumented service never exercised the memo prefix-resume path")
	}

	// LRU hit path.
	a, err := plain.Submit(ctx, memoSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := instr.Submit(ctx, memoSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != OutcomeHit || b.Outcome != OutcomeHit {
		t.Fatalf("outcomes = %s/%s, want hit/hit", a.Outcome, b.Outcome)
	}
	if !bytes.Equal(a.Body, b.Body) {
		t.Fatal("instrumented cache hit differs from plain")
	}

	// Persistent-store path: fresh services over the same directories
	// have an empty LRU but a warm disk tier.
	plain2 := newTestService(t, Config{Workers: 1, Store: mustStore(t, plainDir)})
	instr2 := newObsService(t, Config{Workers: 1, Store: mustStore(t, obsDir)})
	a2, err := plain2.Submit(ctx, memoSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := instr2.Submit(ctx, memoSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if a2.Outcome != OutcomeDisk || b2.Outcome != OutcomeDisk {
		t.Fatalf("outcomes = %s/%s, want disk/disk", a2.Outcome, b2.Outcome)
	}
	if !bytes.Equal(a2.Body, b2.Body) {
		t.Fatal("instrumented disk hit differs from plain")
	}

	// Sanity: the instrumented service really was observing, not
	// silently disabled — traces were recorded and metrics moved.
	if instr.cfg.Traces.Len() == 0 {
		t.Error("instrumented service recorded no traces")
	}
	var buf bytes.Buffer
	if err := instr.cfg.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cf_cache_requests_total", "cf_exec_seconds_bucket", "cf_memo_prefix_hits_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics output missing %s", want)
		}
	}
}

// TestObservabilitySimWorkersByteIdentity crosses the tracing/profiling
// axis with the engine-parallelism axis: a sharded engine under full
// instrumentation must still emit the serial engine's exact bytes.
// (SimWorkers is part of the spec hash, so these are distinct cache
// entries; the bodies must nonetheless be identical.)
func TestObservabilitySimWorkersByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	ctx := context.Background()
	instr := newObsService(t, Config{Workers: 2})

	serial := memoSpec(1)
	serial.SimWorkers = 1
	sharded := memoSpec(1)
	sharded.SimWorkers = 4

	a, err := instr.Submit(ctx, serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := instr.Submit(ctx, sharded)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != OutcomeMiss || b.Outcome != OutcomeMiss {
		t.Fatalf("outcomes = %s/%s, want miss/miss (distinct hashes)", a.Outcome, b.Outcome)
	}
	if !bytes.Equal(a.Body, b.Body) {
		t.Fatal("sharded engine under instrumentation differs from serial engine")
	}
}
