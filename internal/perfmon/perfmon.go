// Package perfmon emulates the performance-monitoring hardware Cuttlefish
// profiles: the per-core INST_RETIRED.ANY fixed counter and the socket-wide
// TOR_INSERT occupancy counters with the MISS_LOCAL and MISS_REMOTE unit
// masks (§3.1). The simulator deposits retired instructions and TOR traffic
// here; the counters are published into the MSR file through live read
// handlers, so profiling software observes them exactly as it would through
// /dev/cpu/N/msr.
package perfmon

import (
	"sync"

	"repro/internal/msr"
)

// PMU aggregates counter state for one socket.
type PMU struct {
	mu          sync.Mutex
	instRetired []float64 // per core; fractional accumulation, floor published
	torLocal    float64
	torRemote   float64
}

// New creates a PMU for the given core count.
func New(cores int) *PMU {
	return &PMU{instRetired: make([]float64, cores)}
}

// AddRetired credits instructions to a core's fixed counter. Fractional
// amounts accumulate; the visible register exposes the integer part.
func (p *PMU) AddRetired(core int, instr float64) {
	p.mu.Lock()
	p.instRetired[core] += instr
	p.mu.Unlock()
}

// AddRetiredBatch credits every core's fixed counter in one locked pass —
// the simulation engine's batch-commit path, which replaces one lock
// acquisition per core per quantum with one per batch.
func (p *PMU) AddRetiredBatch(instr []float64) {
	p.mu.Lock()
	for i, v := range instr {
		p.instRetired[i] += v
	}
	p.mu.Unlock()
}

// AddTor credits TOR inserts split by locality.
func (p *PMU) AddTor(local, remote float64) {
	p.mu.Lock()
	p.torLocal += local
	p.torRemote += remote
	p.mu.Unlock()
}

// Retired returns the visible value of a core's INST_RETIRED.ANY counter.
func (p *PMU) Retired(core int) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return uint64(p.instRetired[core])
}

// RetiredAll returns the socket-wide sum of retired instructions, the
// quantity in TIPI's denominator.
func (p *PMU) RetiredAll() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var sum float64
	for _, v := range p.instRetired {
		sum += v
	}
	return uint64(sum)
}

// TorLocal returns the visible TOR_INSERT.MISS_LOCAL count.
func (p *PMU) TorLocal() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return uint64(p.torLocal)
}

// TorRemote returns the visible TOR_INSERT.MISS_REMOTE count.
func (p *PMU) TorRemote() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return uint64(p.torRemote)
}

// State exports the raw accumulator state for machine snapshots: the
// fractional per-core retirement accumulators (the visible registers are
// their floors) and both TOR aggregates. The slice is a copy.
func (p *PMU) State() (instRetired []float64, torLocal, torRemote float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	instRetired = append([]float64(nil), p.instRetired...)
	return instRetired, p.torLocal, p.torRemote
}

// SetState overwrites the accumulators from a snapshot taken by State.
// The core count must match the PMU's.
func (p *PMU) SetState(instRetired []float64, torLocal, torRemote float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(instRetired) != len(p.instRetired) {
		panic("perfmon: SetState core count mismatch")
	}
	copy(p.instRetired, instRetired)
	p.torLocal, p.torRemote = torLocal, torRemote
}

// InstallHandlers publishes the counters as live MSR reads: the fixed
// counter per core and the two TOR aggregates at package scope.
func (p *PMU) InstallHandlers(f *msr.File) {
	f.Install(msr.IA32FixedCtr0, msr.Handler{
		Read: func(core int) uint64 { return p.Retired(core) },
	})
	f.Install(msr.TorInsertMissLocal, msr.Handler{
		Read: func(int) uint64 { return p.TorLocal() },
	})
	f.Install(msr.TorInsertMissRemote, msr.Handler{
		Read: func(int) uint64 { return p.TorRemote() },
	})
}
