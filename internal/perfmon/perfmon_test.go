package perfmon

import (
	"testing"
	"testing/quick"

	"repro/internal/msr"
)

func TestRetiredAccumulatesFractions(t *testing.T) {
	p := New(2)
	for i := 0; i < 10; i++ {
		p.AddRetired(0, 0.25)
	}
	if got := p.Retired(0); got != 2 {
		t.Errorf("Retired = %d, want 2 (10 × 0.25 floored)", got)
	}
	if got := p.Retired(1); got != 0 {
		t.Errorf("core 1 leaked: %d", got)
	}
}

func TestRetiredAll(t *testing.T) {
	p := New(3)
	p.AddRetired(0, 100)
	p.AddRetired(1, 200)
	p.AddRetired(2, 0.5)
	if got := p.RetiredAll(); got != 300 {
		t.Errorf("RetiredAll = %d, want 300", got)
	}
}

func TestTorCounters(t *testing.T) {
	p := New(1)
	p.AddTor(10, 4)
	p.AddTor(1.5, 0.25)
	if got := p.TorLocal(); got != 11 {
		t.Errorf("TorLocal = %d, want 11", got)
	}
	if got := p.TorRemote(); got != 4 {
		t.Errorf("TorRemote = %d, want 4", got)
	}
}

func TestInstallHandlers(t *testing.T) {
	p := New(2)
	f := msr.NewFile(2)
	p.InstallHandlers(f)
	p.AddRetired(1, 42)
	p.AddTor(7, 3)

	v, err := f.Read(msr.IA32FixedCtr0, 1)
	if err != nil || v != 42 {
		t.Errorf("fixed ctr via MSR = %d,%v want 42", v, err)
	}
	v, err = f.Read(msr.TorInsertMissLocal, 0)
	if err != nil || v != 7 {
		t.Errorf("TOR local via MSR = %d,%v want 7", v, err)
	}
	v, err = f.Read(msr.TorInsertMissRemote, 0)
	if err != nil || v != 3 {
		t.Errorf("TOR remote via MSR = %d,%v want 3", v, err)
	}
}

// Property: counters are monotone under non-negative deposits and RetiredAll
// is never less than any single core's counter.
func TestMonotoneQuick(t *testing.T) {
	prop := func(deposits []uint16) bool {
		p := New(4)
		var prev uint64
		for i, d := range deposits {
			p.AddRetired(i%4, float64(d))
			all := p.RetiredAll()
			if all < prev || all < p.Retired(i%4) {
				return false
			}
			prev = all
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
