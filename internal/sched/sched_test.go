package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// drive simulates the machine's calling convention without the timing
// model: every core repeatedly asks for a segment and completes it
// immediately. It returns the number of segments executed per core.
func drive(t *testing.T, src workload.Source, cores, maxSteps int) []int {
	t.Helper()
	perCore := make([]int, cores)
	for step := 0; step < maxSteps; step++ {
		if src.Done() {
			return perCore
		}
		progress := false
		for c := 0; c < cores; c++ {
			if seg, ok := src.NextSegment(c, float64(step)); ok {
				if !seg.Valid() {
					t.Fatalf("invalid segment %v", seg)
				}
				src.Complete(c, float64(step))
				perCore[c]++
				progress = true
			}
		}
		if !progress && !src.Done() {
			t.Fatal("runtime wedged: no progress and not done")
		}
	}
	t.Fatal("runtime did not finish in step budget")
	return nil
}

func seg(n float64) workload.Segment {
	return workload.Segment{Instructions: n, IPC: 2}
}

func TestWorkSharingRunsAllChunks(t *testing.T) {
	const cores, chunks, iters = 4, 10, 3
	ws := NewWorkSharing(cores, StaticProgram([]Region{{Seg: seg(100), Chunks: chunks}}, iters), 1)
	perCore := drive(t, ws, cores, 1000)
	total := 0
	for _, n := range perCore {
		total += n
	}
	if total != chunks*iters {
		t.Errorf("executed %d chunks, want %d", total, chunks*iters)
	}
	regions, chunksRun := ws.Stats()
	if regions != iters || chunksRun != chunks*iters {
		t.Errorf("stats = %d regions %d chunks, want %d/%d", regions, chunksRun, iters, chunks*iters)
	}
}

func TestWorkSharingStaticAssignment(t *testing.T) {
	// With chunks == cores each core runs exactly one chunk per region.
	const cores = 5
	ws := NewWorkSharing(cores, StaticProgram([]Region{{Seg: seg(10), Chunks: cores}}, 4), 1)
	perCore := drive(t, ws, cores, 100)
	for c, n := range perCore {
		if n != 4 {
			t.Errorf("core %d ran %d chunks, want 4", c, n)
		}
	}
}

func TestWorkSharingBarrier(t *testing.T) {
	// A core that finished its share must get nothing until the region
	// completes: with 2 cores and 3 chunks, core 1 has one chunk, core 0
	// has two; after core 1's chunk completes it must wait.
	ws := NewWorkSharing(2, StaticProgram([]Region{{Seg: seg(10), Chunks: 3}}, 2), 1)
	if _, ok := ws.NextSegment(1, 0); !ok {
		t.Fatal("core 1 should get chunk 1")
	}
	ws.Complete(1, 0)
	if _, ok := ws.NextSegment(1, 0); ok {
		t.Fatal("core 1 must wait at the barrier, region not complete")
	}
	// Core 0 drains its two chunks; barrier opens a new region.
	for i := 0; i < 2; i++ {
		if _, ok := ws.NextSegment(0, 0); !ok {
			t.Fatalf("core 0 denied chunk %d", i)
		}
		ws.Complete(0, 0)
	}
	// The release takes effect at the next timestamp (the one-quantum
	// barrier wake-up latency that keeps results independent of the order
	// cores step in): same-time claims are refused, later ones succeed.
	if _, ok := ws.NextSegment(1, 0); ok {
		t.Fatal("claim at the release timestamp must wait out the barrier latency")
	}
	if _, ok := ws.NextSegment(1, 0.0005); !ok {
		t.Fatal("barrier should have opened the second region for core 1")
	}
}

func TestWorkSharingJitterPerturbsWithinBounds(t *testing.T) {
	ws := NewWorkSharing(1, StaticProgram([]Region{{Seg: seg(1000), Chunks: 50, JitterFrac: 0.2}}, 1), 7)
	sawDifferent := false
	for i := 0; i < 50; i++ {
		s, ok := ws.NextSegment(0, 0)
		if !ok {
			t.Fatal("ran out of chunks")
		}
		if s.Instructions < 800-1e-9 || s.Instructions > 1200+1e-9 {
			t.Errorf("jittered instructions %.1f outside ±20%%", s.Instructions)
		}
		if s.Instructions != 1000 {
			sawDifferent = true
		}
		ws.Complete(0, 0)
	}
	if !sawDifferent {
		t.Error("jitter produced no variation")
	}
}

func TestWorkSharingEmptyProgram(t *testing.T) {
	ws := NewWorkSharing(2, StaticProgram(nil, 5), 1)
	if !ws.Done() {
		t.Error("empty program must be done immediately")
	}
	if _, ok := ws.NextSegment(0, 0); ok {
		t.Error("empty program handed out work")
	}
}

func TestDequeLIFOOwnerFIFOThief(t *testing.T) {
	var d deque
	for i := 0; i < 5; i++ {
		d.pushBottom(Task{Seg: seg(float64(i))})
	}
	if top, _ := d.stealTop(); top.Seg.Instructions != 0 {
		t.Errorf("thief got %g, want oldest (0)", top.Seg.Instructions)
	}
	if bot, _ := d.popBottom(); bot.Seg.Instructions != 4 {
		t.Errorf("owner got %g, want newest (4)", bot.Seg.Instructions)
	}
	if d.size() != 3 {
		t.Errorf("size = %d, want 3", d.size())
	}
}

func TestDequeGrowthPreservesOrder(t *testing.T) {
	var d deque
	const n = 1000
	for i := 0; i < n; i++ {
		d.pushBottom(Task{Seg: seg(float64(i))})
		if i%3 == 0 {
			d.stealTop() // interleave steals to exercise compaction
		}
	}
	prev := -1.0
	for {
		task, ok := d.stealTop()
		if !ok {
			break
		}
		if task.Seg.Instructions <= prev {
			t.Fatalf("steal order broken: %g after %g", task.Seg.Instructions, prev)
		}
		prev = task.Seg.Instructions
	}
}

func TestDequeEmpty(t *testing.T) {
	var d deque
	if _, ok := d.popBottom(); ok {
		t.Error("popBottom on empty deque returned a task")
	}
	if _, ok := d.stealTop(); ok {
		t.Error("stealTop on empty deque returned a task")
	}
}

// binaryTree builds an Expand hook producing a binary tree of the given
// depth; returns total node count.
func binaryTree(depth int) (Task, int) {
	var mk func(d int) Task
	mk = func(d int) Task {
		t := Task{Seg: seg(100)}
		if d > 0 {
			t.Expand = func(r *rand.Rand) []Task {
				return []Task{mk(d - 1), mk(d - 1)}
			}
		}
		return t
	}
	return mk(depth), 1<<(depth+1) - 1
}

func TestWorkStealingExecutesWholeTree(t *testing.T) {
	root, want := binaryTree(8)
	ws := NewWorkStealing(4, SingleRound([]Task{root}), 42)
	drive(t, ws, 4, 100000)
	tasks, steals, _ := ws.Stats()
	if tasks != want {
		t.Errorf("executed %d tasks, want %d", tasks, want)
	}
	if steals == 0 {
		t.Error("a 4-worker tree execution should steal at least once")
	}
}

func TestWorkStealingDistributesLoad(t *testing.T) {
	root, want := binaryTree(10)
	const cores = 4
	ws := NewWorkStealing(cores, SingleRound([]Task{root}), 7)
	perCore := drive(t, ws, cores, 1000000)
	for c, n := range perCore {
		if n < want/cores/4 {
			t.Errorf("core %d ran only %d of %d tasks; stealing failed to balance", c, n, want)
		}
	}
}

func TestWorkStealingRounds(t *testing.T) {
	// Three rounds of 8 leaf tasks: round r+1 must not start before round r
	// drains (finish semantics). We detect ordering via the generator call
	// sequence.
	var started []int
	gen := func(round int) ([]Task, bool) {
		if round >= 3 {
			return nil, false
		}
		started = append(started, round)
		tasks := make([]Task, 8)
		for i := range tasks {
			tasks[i] = Task{Seg: seg(10)}
		}
		return tasks, true
	}
	ws := NewWorkStealing(2, gen, 1)
	drive(t, ws, 2, 10000)
	if len(started) != 3 {
		t.Errorf("rounds started = %v, want [0 1 2]", started)
	}
	tasks, _, _ := ws.Stats()
	if tasks != 24 {
		t.Errorf("tasks = %d, want 24", tasks)
	}
}

func TestWorkStealingStealOverheadCharged(t *testing.T) {
	// Worker 1 must steal its first task from worker 0's deque; the segment
	// it receives carries the steal overhead.
	tasks := []Task{{Seg: seg(100)}, {Seg: seg(100)}}
	// Both roots land on different deques (round-robin); force both onto
	// deque 0 by using 1 root that expands into 2.
	root := Task{Seg: seg(1), Expand: func(r *rand.Rand) []Task { return tasks }}
	ws := NewWorkStealing(2, SingleRound([]Task{root}), 3)
	s0, ok := ws.NextSegment(0, 0)
	if !ok || s0.Instructions != 1 {
		t.Fatalf("root segment = %v %v", s0, ok)
	}
	ws.Complete(0, 0) // children pushed to deque 0
	s1, ok := ws.NextSegment(1, 0)
	if !ok {
		t.Fatal("worker 1 failed to steal")
	}
	if s1.Instructions != 100+ws.StealOverheadInstr {
		t.Errorf("stolen segment = %g instr, want %g", s1.Instructions, 100+ws.StealOverheadInstr)
	}
	s0b, ok := ws.NextSegment(0, 0)
	if !ok {
		t.Fatal("worker 0 denied local task")
	}
	if s0b.Instructions != 100 {
		t.Errorf("local segment = %g instr, want 100 (no overhead)", s0b.Instructions)
	}
}

func TestWorkStealingEmptyProgram(t *testing.T) {
	ws := NewWorkStealing(2, func(int) ([]Task, bool) { return nil, false }, 1)
	if !ws.Done() {
		t.Error("empty program must be done")
	}
}

func TestWorkStealingSkipsEmptyRounds(t *testing.T) {
	gen := func(round int) ([]Task, bool) {
		switch round {
		case 0:
			return []Task{}, true // empty round: skip
		case 1:
			return []Task{{Seg: seg(5)}}, true
		default:
			return nil, false
		}
	}
	ws := NewWorkStealing(1, gen, 1)
	drive(t, ws, 1, 100)
	tasks, _, _ := ws.Stats()
	if tasks != 1 {
		t.Errorf("tasks = %d, want 1", tasks)
	}
}

// Property: for random small trees, work stealing with any worker count
// executes exactly the tree's node count.
func TestWorkStealingConservationQuick(t *testing.T) {
	prop := func(depthRaw, coresRaw uint8) bool {
		depth := int(depthRaw % 6)
		cores := 1 + int(coresRaw%8)
		root, want := binaryTree(depth)
		ws := NewWorkStealing(cores, SingleRound([]Task{root}), int64(depthRaw)*31+int64(coresRaw))
		for steps := 0; !ws.Done(); steps++ {
			if steps > 100000 {
				return false
			}
			for c := 0; c < cores; c++ {
				if _, ok := ws.NextSegment(c, 0); ok {
					ws.Complete(c, 0)
				}
			}
		}
		tasks, _, _ := ws.Stats()
		return tasks == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
