// Package sched implements the two parallel runtimes the paper evaluates
// Cuttlefish under: an OpenMP-style work-sharing runtime (static loop
// partitioning with barriers between parallel regions) and an HClib-style
// async–finish work-stealing runtime (per-worker deques, random victim
// selection, rounds joined by finish scopes).
//
// Cuttlefish itself never sees either runtime — that is the paper's central
// claim of programming-model obliviousness — but the runtimes shape when
// and where the machine retires instructions and generates TOR traffic,
// which is everything the daemon observes.
package sched

import (
	"fmt"
	"sync"

	"repro/internal/workload"
)

// Region is one work-sharing parallel region: Chunks independent pieces of
// work, each described by Seg, separated from the next region by an implied
// barrier. JitterFrac, if nonzero, perturbs each chunk's instruction count
// by a uniform ±JitterFrac factor to model load imbalance.
type Region struct {
	Seg        workload.Segment
	Chunks     int
	JitterFrac float64
}

// RegionGen produces the region for a given step, or ok == false when the
// program is over. Iterative benchmarks return their per-iteration regions
// in sequence.
type RegionGen func(step int) (Region, bool)

// StaticProgram builds a RegionGen that cycles the given regions for the
// given number of iterations.
func StaticProgram(regions []Region, iterations int) RegionGen {
	n := len(regions)
	return func(step int) (Region, bool) {
		if n == 0 || step >= n*iterations {
			return Region{}, false
		}
		return regions[step%n], true
	}
}

// WorkSharing executes a sequence of parallel regions with static chunk
// assignment: chunk c of a region belongs to core c mod P, exactly like
// OpenMP schedule(static) with chunk granularity. A region's barrier
// releases only when every chunk has completed, and the release takes
// effect at the next simulation timestamp: cores asking at the same `now`
// the barrier opened are refused. That one-quantum release latency (a real
// barrier's wake-up cost) is what makes the runtime independent of the
// order cores step in within a quantum — the engine's sharded workers and
// the serial driver observe identical state transitions, so results are
// bit-identical across engine worker counts.
type WorkSharing struct {
	mu        sync.Mutex
	cores     int
	gen       RegionGen
	seed      int64
	step      int
	cur       Region
	curOK     bool
	claimed   []int // per-core chunks taken in the current region
	completed int
	inFlight  int
	done      bool

	// openAt is the simulation time the current region became claimable;
	// claims at the same timestamp wait out the barrier release latency.
	openAt float64

	// regionsDone counts fully completed regions — the runtime's barrier
	// boundary counter, which the engine polls to stop batches exactly at
	// region boundaries (see machine.BoundarySource).
	regionsDone int

	// stats
	regionsRun int
	chunksRun  int
}

// NewWorkSharing creates the runtime for the given core count. The seed
// drives jitter only; a jitter-free program is fully deterministic, and a
// jittered one is too — each chunk's jitter is a pure function of
// (seed, region, chunk), never a sequential draw, so results are
// independent of the order cores claim chunks in (the engine's sharded
// workers call NextSegment concurrently).
func NewWorkSharing(cores int, gen RegionGen, seed int64) *WorkSharing {
	if cores <= 0 {
		panic(fmt.Sprintf("sched: invalid core count %d", cores))
	}
	ws := &WorkSharing{cores: cores, gen: gen, seed: seed, openAt: -1}
	ws.advanceLocked()
	return ws
}

// IndexJitter returns a uniform value in [0, 1) derived from a seed and
// two indices — splitmix64 over the triple. Being a pure function (never
// a sequential draw), every perturbation is stable no matter which core
// or engine worker asks first; the work-sharing runtime uses it for
// chunk jitter and the scenario DSL for its (domain-separated) phase
// jitter, so there is exactly one implementation to keep deterministic.
func IndexJitter(seed int64, a, b int) float64 {
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	x ^= uint64(a)*0xbf58476d1ce4e5b9 + uint64(b)*0x94d049bb133111eb
	// splitmix64 finalizer
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// chunkJitter derives chunk jitter from the runtime seed, the region's
// program step and the chunk index.
func chunkJitter(seed int64, step, chunk int) float64 {
	return IndexJitter(seed, step, chunk)
}

// advanceLocked loads the next region or marks the program done.
func (w *WorkSharing) advanceLocked() {
	w.cur, w.curOK = w.gen(w.step)
	w.step++
	w.completed = 0
	w.claimed = make([]int, w.cores)
	if !w.curOK {
		w.done = true
		return
	}
	if w.cur.Chunks <= 0 {
		panic(fmt.Sprintf("sched: region %d has %d chunks", w.step-1, w.cur.Chunks))
	}
	w.regionsRun++
}

// NextSegment hands core its next statically assigned chunk (chunks core,
// core+P, core+2P, ... of the region, in order). Cores whose share of the
// region is exhausted wait at the barrier (ok == false) until every chunk
// has completed.
func (w *WorkSharing) NextSegment(core int, now float64) (workload.Segment, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return workload.Segment{}, false
	}
	if now <= w.openAt {
		return workload.Segment{}, false // barrier release latency
	}
	idx := core + w.claimed[core]*w.cores
	if idx >= w.cur.Chunks {
		return workload.Segment{}, false // barrier wait
	}
	w.claimed[core]++
	seg := w.cur.Seg
	if j := w.cur.JitterFrac; j > 0 {
		seg.Instructions *= 1 + (chunkJitter(w.seed, w.step, idx)*2-1)*j
	}
	w.inFlight++
	w.chunksRun++
	return seg, true
}

// Complete retires one chunk; the last chunk of a region opens the barrier.
func (w *WorkSharing) Complete(core int, now float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return
	}
	w.inFlight--
	w.completed++
	if w.completed == w.cur.Chunks {
		w.regionsDone++
		w.claimed = nil
		w.openAt = now
		w.advanceLocked()
	}
}

// BoundaryCount returns the number of fully completed regions. It
// implements machine.BoundarySource: the engine compares it across quanta
// to end batches exactly at barrier boundaries, which is what makes
// region-boundary machine snapshots land on identical floating-point
// state whether or not a run was resumed.
func (w *WorkSharing) BoundaryCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.regionsDone
}

// WSCheckpoint is the runtime's complete mutable state at a region
// boundary: how many regions have completed, the barrier-release
// timestamp, and the chunk counter. Together with the (pure) RegionGen,
// seed and core count it reconstructs the runtime exactly — the claimed
// and completion maps are empty at a boundary by construction.
type WSCheckpoint struct {
	RegionsDone int
	OpenAt      float64
	Chunks      int
}

// Checkpoint captures the runtime state at a region boundary. ok is false
// when the runtime is mid-region (chunks claimed or in flight), where the
// state is not reconstructible from a checkpoint.
func (w *WorkSharing) Checkpoint() (WSCheckpoint, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.inFlight != 0 || w.completed != 0 {
		return WSCheckpoint{}, false
	}
	return WSCheckpoint{RegionsDone: w.regionsDone, OpenAt: w.openAt, Chunks: w.chunksRun}, true
}

// NewWorkSharingAt reconstructs a runtime at a region boundary previously
// captured by Checkpoint. The gen, seed and core count must be the ones
// the original runtime was built with; chunk jitter is a pure function of
// (seed, step, chunk), so the resumed runtime hands out bit-identical
// segments.
func NewWorkSharingAt(cores int, gen RegionGen, seed int64, cp WSCheckpoint) *WorkSharing {
	if cores <= 0 {
		panic(fmt.Sprintf("sched: invalid core count %d", cores))
	}
	ws := &WorkSharing{cores: cores, gen: gen, seed: seed, step: cp.RegionsDone, openAt: cp.OpenAt}
	ws.advanceLocked()
	ws.regionsDone = cp.RegionsDone
	ws.regionsRun = cp.RegionsDone
	if ws.curOK {
		ws.regionsRun++
	}
	ws.chunksRun = cp.Chunks
	return ws
}

// Done reports whether every region has run to completion.
func (w *WorkSharing) Done() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.done
}

// Stats returns regions and chunks executed so far.
func (w *WorkSharing) Stats() (regions, chunks int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.regionsRun, w.chunksRun
}
