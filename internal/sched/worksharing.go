// Package sched implements the two parallel runtimes the paper evaluates
// Cuttlefish under: an OpenMP-style work-sharing runtime (static loop
// partitioning with barriers between parallel regions) and an HClib-style
// async–finish work-stealing runtime (per-worker deques, random victim
// selection, rounds joined by finish scopes).
//
// Cuttlefish itself never sees either runtime — that is the paper's central
// claim of programming-model obliviousness — but the runtimes shape when
// and where the machine retires instructions and generates TOR traffic,
// which is everything the daemon observes.
package sched

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/workload"
)

// Region is one work-sharing parallel region: Chunks independent pieces of
// work, each described by Seg, separated from the next region by an implied
// barrier. JitterFrac, if nonzero, perturbs each chunk's instruction count
// by a uniform ±JitterFrac factor to model load imbalance.
type Region struct {
	Seg        workload.Segment
	Chunks     int
	JitterFrac float64
}

// RegionGen produces the region for a given step, or ok == false when the
// program is over. Iterative benchmarks return their per-iteration regions
// in sequence.
type RegionGen func(step int) (Region, bool)

// StaticProgram builds a RegionGen that cycles the given regions for the
// given number of iterations.
func StaticProgram(regions []Region, iterations int) RegionGen {
	n := len(regions)
	return func(step int) (Region, bool) {
		if n == 0 || step >= n*iterations {
			return Region{}, false
		}
		return regions[step%n], true
	}
}

// WorkSharing executes a sequence of parallel regions with static chunk
// assignment: chunk c of a region belongs to core c mod P, exactly like
// OpenMP schedule(static) with chunk granularity. A region's barrier
// releases only when every chunk has completed.
type WorkSharing struct {
	mu        sync.Mutex
	cores     int
	gen       RegionGen
	rng       *rand.Rand
	step      int
	cur       Region
	curOK     bool
	claimed   []int // per-core chunks taken in the current region
	completed int
	inFlight  int
	done      bool

	// stats
	regionsRun int
	chunksRun  int
}

// NewWorkSharing creates the runtime for the given core count. The seed
// drives jitter only; a jitter-free program is fully deterministic.
func NewWorkSharing(cores int, gen RegionGen, seed int64) *WorkSharing {
	if cores <= 0 {
		panic(fmt.Sprintf("sched: invalid core count %d", cores))
	}
	ws := &WorkSharing{cores: cores, gen: gen, rng: rand.New(rand.NewSource(seed))}
	ws.advanceLocked()
	return ws
}

// advanceLocked loads the next region or marks the program done.
func (w *WorkSharing) advanceLocked() {
	w.cur, w.curOK = w.gen(w.step)
	w.step++
	w.completed = 0
	w.claimed = make([]int, w.cores)
	if !w.curOK {
		w.done = true
		return
	}
	if w.cur.Chunks <= 0 {
		panic(fmt.Sprintf("sched: region %d has %d chunks", w.step-1, w.cur.Chunks))
	}
	w.regionsRun++
}

// NextSegment hands core its next statically assigned chunk (chunks core,
// core+P, core+2P, ... of the region, in order). Cores whose share of the
// region is exhausted wait at the barrier (ok == false) until every chunk
// has completed.
func (w *WorkSharing) NextSegment(core int, now float64) (workload.Segment, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return workload.Segment{}, false
	}
	idx := core + w.claimed[core]*w.cores
	if idx >= w.cur.Chunks {
		return workload.Segment{}, false // barrier wait
	}
	w.claimed[core]++
	seg := w.cur.Seg
	if j := w.cur.JitterFrac; j > 0 {
		seg.Instructions *= 1 + (w.rng.Float64()*2-1)*j
	}
	w.inFlight++
	w.chunksRun++
	return seg, true
}

// Complete retires one chunk; the last chunk of a region opens the barrier.
func (w *WorkSharing) Complete(core int, now float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return
	}
	w.inFlight--
	w.completed++
	if w.completed == w.cur.Chunks {
		w.claimed = nil
		w.advanceLocked()
	}
}

// Done reports whether every region has run to completion.
func (w *WorkSharing) Done() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.done
}

// Stats returns regions and chunks executed so far.
func (w *WorkSharing) Stats() (regions, chunks int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.regionsRun, w.chunksRun
}
