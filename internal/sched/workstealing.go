package sched

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/workload"
)

// Task is one async task in the async–finish model: a segment of work plus
// an optional Expand hook that produces the children spawned by the task's
// body. Expansion happens when the task completes, which unfolds the same
// DAG as body-time spawning with slightly coarser interleaving.
type Task struct {
	Seg    workload.Segment
	Expand func(r *rand.Rand) []Task
}

// RoundGen supplies the root task set of each finish scope ("round"), or
// ok == false when the program ends. Iterative benchmarks (Heat, SOR) have
// one round per outer iteration; UTS has a single round holding the tree
// root.
type RoundGen func(round int) ([]Task, bool)

// SingleRound wraps a fixed task set as a one-round program.
func SingleRound(tasks []Task) RoundGen {
	return func(round int) ([]Task, bool) {
		if round > 0 {
			return nil, false
		}
		return tasks, true
	}
}

// Per-model steal-path costs in instructions — the §5.2 calibration
// charged on every successful steal. They live here, next to the
// runtime that charges them, so the bench task builders and the
// scenario DSL's task-DAG decomposition share one source of truth:
// libomp's locked task queues vs HClib's lean work-first deques.
const (
	StealOverheadOpenMP = 700
	StealOverheadHClib  = 300
)

// WorkStealing is the HClib-style runtime: each worker owns a deque, pushes
// spawned children at the bottom, executes depth-first, and steals from the
// top of random victims when empty. A finish scope joins each round: the
// next round's roots are released only when every task of the current round
// has completed.
type WorkStealing struct {
	mu      sync.Mutex
	cores   int
	gen     RoundGen
	rng     *rand.Rand
	deques  []deque
	current []Task // task executing on each core
	running []bool
	queued  int // tasks sitting in deques (released, not yet picked up)
	pending int // tasks released but not completed in this round
	round   int
	done    bool

	// StealOverheadInstr is charged as extra instructions on every
	// successful steal, modelling deque CAS traffic and cache misses on the
	// migrated task's working set.
	StealOverheadInstr float64

	steals      int
	failedTries int
	tasksRun    int
}

// NewWorkStealing creates the runtime. The seed drives victim selection
// and any randomness in task expansion.
func NewWorkStealing(cores int, gen RoundGen, seed int64) *WorkStealing {
	if cores <= 0 {
		panic(fmt.Sprintf("sched: invalid core count %d", cores))
	}
	w := &WorkStealing{
		cores:              cores,
		gen:                gen,
		rng:                rand.New(rand.NewSource(seed)),
		deques:             make([]deque, cores),
		current:            make([]Task, cores),
		running:            make([]bool, cores),
		StealOverheadInstr: 400,
	}
	w.startRoundLocked()
	return w
}

// startRoundLocked releases the next round's roots, distributing them
// round-robin across the deques (HClib seeds the root at worker 0; we
// spread multi-root rounds to shorten ramp-up the way its loop-fork does).
func (w *WorkStealing) startRoundLocked() {
	roots, ok := w.gen(w.round)
	w.round++
	if !ok {
		w.done = true
		return
	}
	if len(roots) == 0 {
		// An empty round completes immediately; recurse to the next.
		w.startRoundLocked()
		return
	}
	for i, t := range roots {
		w.deques[i%w.cores].pushBottom(t)
	}
	w.queued += len(roots)
	w.pending = len(roots)
}

// NextSegment pops local work or steals. It returns ok == false when the
// worker found nothing this attempt (it will retry next quantum) or the
// round is draining toward its finish barrier.
func (w *WorkStealing) NextSegment(core int, now float64) (workload.Segment, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done || w.queued == 0 {
		// Nothing anywhere to pop or steal: fail fast without burning RNG
		// draws on victim selection. Idle cores poll every quantum, so this
		// path dominates ramp-up and finish-barrier drains.
		return workload.Segment{}, false
	}
	t, ok := w.deques[core].popBottom()
	stole := false
	if !ok {
		t, ok = w.stealLocked(core)
		stole = ok
	}
	if !ok {
		return workload.Segment{}, false
	}
	w.queued--
	w.current[core] = t
	w.running[core] = true
	w.tasksRun++
	seg := t.Seg
	if stole {
		seg.Instructions += w.StealOverheadInstr
	}
	return seg, true
}

// stealLocked tries up to cores-1 random victims.
func (w *WorkStealing) stealLocked(thief int) (Task, bool) {
	if w.cores == 1 {
		return Task{}, false
	}
	for tries := 0; tries < w.cores-1; tries++ {
		victim := w.rng.Intn(w.cores)
		if victim == thief {
			continue
		}
		if t, ok := w.deques[victim].stealTop(); ok {
			w.steals++
			return t, true
		}
		w.failedTries++
	}
	return Task{}, false
}

// Complete finishes the task on core: its children are spawned onto the
// core's own deque, and the finish barrier releases the next round when the
// last task of this round retires.
func (w *WorkStealing) Complete(core int, now float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.running[core] {
		return
	}
	t := w.current[core]
	w.current[core] = Task{}
	w.running[core] = false
	if t.Expand != nil {
		children := t.Expand(w.rng)
		for _, c := range children {
			w.deques[core].pushBottom(c)
		}
		w.queued += len(children)
		w.pending += len(children)
	}
	w.pending--
	if w.pending == 0 {
		w.startRoundLocked()
	}
}

// Done reports whether every round has completed.
func (w *WorkStealing) Done() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.done
}

// Stats returns scheduler counters: tasks executed, successful steals and
// failed steal attempts.
func (w *WorkStealing) Stats() (tasks, steals, failed int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tasksRun, w.steals, w.failedTries
}
