package sched

// deque is a grow-able double-ended work queue in the Chase–Lev layout:
// the owning worker pushes and pops at the bottom (LIFO, cache-friendly
// depth-first execution), thieves steal from the top (FIFO, stealing the
// oldest and typically largest subtree). The simulator serialises access
// under the runtime's lock, so the structure carries the semantics rather
// than the lock-freedom of the original.
type deque struct {
	buf    []Task
	top    int // next steal position
	bottom int // next push position
}

// size returns the number of queued tasks.
func (d *deque) size() int { return d.bottom - d.top }

// pushBottom adds a task at the owner's end.
func (d *deque) pushBottom(t Task) {
	if d.bottom == len(d.buf) {
		d.grow()
	}
	d.buf[d.bottom] = t
	d.bottom++
}

// popBottom removes the most recently pushed task (owner's end).
func (d *deque) popBottom() (Task, bool) {
	if d.size() == 0 {
		return Task{}, false
	}
	d.bottom--
	t := d.buf[d.bottom]
	d.buf[d.bottom] = Task{} // release references
	return t, true
}

// stealTop removes the oldest task (thief's end).
func (d *deque) stealTop() (Task, bool) {
	if d.size() == 0 {
		return Task{}, false
	}
	t := d.buf[d.top]
	d.buf[d.top] = Task{}
	d.top++
	return t, true
}

// grow compacts the live region to the front and doubles capacity when
// needed, amortising both the stolen prefix and true growth.
func (d *deque) grow() {
	n := d.size()
	if d.top > 0 && n <= len(d.buf)/2 {
		copy(d.buf, d.buf[d.top:d.bottom])
		for i := n; i < d.bottom; i++ {
			d.buf[i] = Task{}
		}
	} else {
		next := make([]Task, max(16, 2*len(d.buf)))
		copy(next, d.buf[d.top:d.bottom])
		d.buf = next
	}
	d.top, d.bottom = 0, n
}
