package machine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/freq"
	"repro/internal/perfmon"
	"repro/internal/power"
	"repro/internal/workload"
)

// engine executes simulation quanta for one Machine. It owns the hot path:
// a persistent worker pool (no per-step goroutine spawn), per-core state
// sharded into engine-local buffers so core stepping runs lock-free on a
// snapshot/commit protocol, and run-to-next-event batching that executes
// many quanta per dispatch.
//
// Concurrency protocol: the Machine snapshots its state into the engine,
// dispatches one batch, then commits the engine's results back under its
// own mutex. During a batch no other code touches machine state (MSR
// handlers, components and the public accessors all run between batches),
// so core stepping needs no locks at all. Cross-core coupling — the miss
// demand EWMA, the queueing-model stall cost, package power and the
// firmware uncore governor — is updated once per quantum by whichever
// participant reaches the quantum barrier last, in deterministic core-index
// order, so Workers=1 and Workers=N walk bit-identical arithmetic.
type engine struct {
	cfg  Config
	pmu  *perfmon.PMU
	rapl *power.Rapl

	// Batch inputs, written by the snapshot and read by all participants.
	src       workload.Source
	firmware  UncoreFirmware
	boundary  BoundarySource // src when it counts boundaries, else nil
	boundaryN int            // boundary count when the batch started
	dt        float64
	snaps     []coreSnap
	runs      []coreRun

	// Quantum-evolving globals. Only the barrier reducer writes these; the
	// barrier's release edge publishes them to the other participants.
	now                  float64
	demandEWMA           float64
	uncore               freq.Ratio
	uncoreMin, uncoreMax freq.Ratio
	stall                float64 // seconds per exposed miss this quantum
	quanta               int     // batch budget
	quantum              int     // quanta executed so far in this batch
	batchOver            bool

	// Batch accumulators committed to the Machine when the batch ends.
	totInstr, totMissL, totMissR float64
	uncoreGHzSecs                float64
	deltas                       []quantumDelta // reusable per-quantum buffer
	accum                        []quantumDelta // per-core totals over the batch
	retired                      []float64      // reusable PMU batch-update buffer

	// Wall-clock self-accounting (Config.Profile). profBusy[w] is cumulative
	// nanoseconds worker w spent stepping cores (not barrier waits). Workers
	// write their own slot during a batch; the Machine reads between batches,
	// after wg.Wait establishes the ordering.
	profile  bool
	profBusy []int64

	// Persistent worker pool (spawned lazily on the first parallel batch).
	workers    int
	shards     [][2]int
	bar        barrier
	wake       []chan struct{}
	wg         sync.WaitGroup // batch checkout: workers still inside runShard
	stopCh     chan struct{}
	spawned    bool
	closeMu    sync.Once
	closedFlag atomic.Bool
}

// coreSnap is the per-core input of one batch, immutable while it runs:
// frequencies and DDCM duty only change through MSR writes, which happen
// between batches.
type coreSnap struct {
	hz     float64 // core clock in Hz
	ghz    float64 // core clock in GHz (power model input)
	duty   float64 // DDCM duty, sanitised to (0, 1]
	stolen float64 // daemon tax charged against the batch's first quantum
}

// coreRun is the per-core mutable execution state during a batch; it is
// written only by the worker that owns the core's shard. invCompute and
// stallCoef cache the segment's per-instruction cost coefficients so the
// steady state (same segment across many quanta) pays one division per
// quantum instead of two plus a branch.
type coreRun struct {
	seg        workload.Segment
	segLeft    float64
	haveSeg    bool
	invCompute float64 // seconds of issue time per instruction
	stallCoef  float64 // exposed misses per instruction
}

func newEngine(cfg Config, pmu *perfmon.PMU, rapl *power.Rapl) *engine {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > cfg.Cores {
		workers = cfg.Cores
	}
	e := &engine{
		cfg:     cfg,
		pmu:     pmu,
		rapl:    rapl,
		snaps:   make([]coreSnap, cfg.Cores),
		runs:    make([]coreRun, cfg.Cores),
		deltas:  make([]quantumDelta, cfg.Cores),
		accum:   make([]quantumDelta, cfg.Cores),
		retired: make([]float64, cfg.Cores),
		workers: workers,
		profile: cfg.Profile,
	}
	e.profBusy = make([]int64, workers)
	e.shards = make([][2]int, workers)
	for w := 0; w < workers; w++ {
		e.shards[w] = [2]int{w * cfg.Cores / workers, (w + 1) * cfg.Cores / workers}
	}
	return e
}

// run executes the prepared batch to completion.
func (e *engine) run() {
	if e.workers <= 1 || e.closed() {
		for !e.batchOver {
			first := e.quantum == 0
			var t0 time.Time
			if e.profile {
				t0 = time.Now() //cfvet:allow(detsource) profiling wall-clock behind Config.Profile; profBusy is excluded from reports, spec hashes and memo keys
			}
			for i := range e.runs {
				e.stepCoreFree(i, first, &e.deltas[i])
			}
			if e.profile {
				e.profBusy[0] += time.Since(t0).Nanoseconds() //cfvet:allow(detsource) profiling wall-clock behind Config.Profile; never feeds simulated state
			}
			e.reduce()
		}
		return
	}
	e.ensureWorkers()
	e.wg.Add(e.workers - 1)
	for w := 1; w < e.workers; w++ {
		e.wake[w] <- struct{}{}
	}
	e.runShard(0)
	// Wait for every worker to leave runShard before the caller reuses the
	// batch state: a worker that has passed the final barrier but not yet
	// read batchOver must not observe the next batch's reset of it.
	e.wg.Wait()
}

// runShard steps the cores of one shard through the batch, synchronising
// with the other shards at the per-quantum barrier. The last participant to
// arrive performs the global reduction while the rest wait.
func (e *engine) runShard(w int) {
	lo, hi := e.shards[w][0], e.shards[w][1]
	for {
		first := e.quantum == 0
		var t0 time.Time
		if e.profile {
			t0 = time.Now() //cfvet:allow(detsource) profiling wall-clock behind Config.Profile; profBusy is excluded from reports, spec hashes and memo keys
		}
		for i := lo; i < hi; i++ {
			e.stepCoreFree(i, first, &e.deltas[i])
		}
		if e.profile {
			e.profBusy[w] += time.Since(t0).Nanoseconds() //cfvet:allow(detsource) profiling wall-clock behind Config.Profile; never feeds simulated state
		}
		e.bar.await(e.reduce)
		if e.batchOver {
			return
		}
	}
}

// reduce merges one quantum: per-core deltas into batch accumulators, the
// socket-wide miss demand EWMA, package power into RAPL, and the firmware
// uncore governor. It runs with every other participant parked at the
// barrier, and always walks cores in index order so the floating-point
// result is independent of the worker count.
func (e *engine) reduce() {
	dt := e.dt
	var instr, missL, missR, corePower float64
	anySeg := false
	for i := range e.deltas {
		d := &e.deltas[i]
		instr += d.instr
		missL += d.missLocal
		missR += d.missRemote
		a := &e.accum[i]
		a.instr += d.instr
		a.computeSec += d.computeSec
		a.stallSec += d.stallSec
		a.idleSec += d.idleSec
		// Under DDCM the stretched compute time switches transistors only
		// duty of the time; voltage and leakage are untouched, which is
		// the knob's classic energy disadvantage vs DVFS.
		s := &e.snaps[i]
		activity := (d.computeSec*s.duty + e.cfg.StallActivity*d.stallSec) / dt
		corePower += e.cfg.Power.CorePower(s.ghz, activity)
		if e.runs[i].haveSeg {
			anySeg = true
		}
	}
	missRate := (missL + missR) / dt
	alpha := e.cfg.TrafficAlpha
	e.demandEWMA = alpha*missRate + (1-alpha)*e.demandEWMA
	rho := e.cfg.Mem.Utilization(e.demandEWMA, e.uncore.GHz())
	pkgPower := corePower + e.cfg.Power.UncorePower(e.uncore.GHz(), rho) + e.cfg.Power.Base
	e.totInstr += instr
	e.totMissL += missL
	e.totMissR += missR
	e.uncoreGHzSecs += e.uncore.GHz() * dt
	e.now += dt
	e.rapl.Deposit(pkgPower*dt, e.now)

	// Firmware moves the uncore within the 0x620 range once per quantum.
	if e.firmware != nil && e.uncoreMin < e.uncoreMax {
		e.uncore = e.cfg.UncoreGrid.Clamp(e.firmware.Target(e.demandEWMA, e.uncoreMin, e.uncoreMax))
		if e.uncore < e.uncoreMin {
			e.uncore = e.uncoreMin
		}
		if e.uncore > e.uncoreMax {
			e.uncore = e.uncoreMax
		}
	}
	e.stall = e.cfg.Mem.StallPerMiss(e.uncore.GHz(), e.demandEWMA)

	e.quantum++
	if e.quantum >= e.quanta {
		e.batchOver = true
	}
	// Source drained and no core holds an in-flight segment: the machine is
	// finished, stop the batch early regardless of its quantum budget.
	if !anySeg {
		if e.src != nil && e.src.Done() {
			e.batchOver = true
		}
		// A boundary source crossed a region boundary this quantum (the
		// barrier's release latency guarantees no segment of the next
		// region is in flight yet): end the batch here so the commit
		// lands exactly on the boundary. Always on — see BoundarySource.
		if e.boundary != nil && e.boundary.BoundaryCount() != e.boundaryN {
			e.batchOver = true
		}
	}
}

// stepCoreFree executes core i for one quantum, writing its accounting to
// d. It touches only engine-local state and the (concurrency-safe) workload
// source — no machine locks on this path.
func (e *engine) stepCoreFree(i int, first bool, d *quantumDelta) {
	s := &e.snaps[i]
	r := &e.runs[i]
	budget := e.dt
	if first {
		budget -= s.stolen
	}
	*d = quantumDelta{}
	if budget <= 0 {
		// The daemon ate the whole quantum (pathological Tinv); the core
		// makes no progress and the overdraft is dropped.
		return
	}
	now := e.now
	src := e.src
	stallPerMiss := e.stall
	for budget > 1e-12 {
		if !r.haveSeg {
			if src == nil {
				break
			}
			seg, ok := src.NextSegment(i, now)
			if !ok {
				break
			}
			if !seg.Valid() {
				panic(fmt.Sprintf("machine: invalid segment %v from source", seg))
			}
			r.seg = seg
			r.segLeft = seg.Instructions
			r.haveSeg = true
			if r.segLeft <= 0 {
				r.haveSeg = false
				src.Complete(i, now)
				continue
			}
			ipc := seg.IPC
			if ipc <= 0 {
				ipc = e.cfg.BaseIPC
			}
			// DDCM gating stretches issue time by 1/duty (the clock only
			// runs duty of the time) while in-flight memory accesses drain
			// at full speed — the knob throttles compute without touching
			// voltage.
			r.invCompute = 1 / (ipc * s.hz * s.duty)
			r.stallCoef = seg.MissPerInstr * seg.StallFraction()
		}
		perInstrCompute := r.invCompute
		perInstrStall := r.stallCoef * stallPerMiss
		perInstr := perInstrCompute + perInstrStall
		instr := budget / perInstr
		finished := false
		if instr >= r.segLeft {
			instr = r.segLeft
			r.haveSeg = false
			finished = true
		}
		r.segLeft -= instr
		budget -= instr * perInstr
		d.instr += instr
		d.computeSec += instr * perInstrCompute
		d.stallSec += instr * perInstrStall
		miss := instr * r.seg.MissPerInstr
		d.missRemote += miss * r.seg.RemoteFrac
		d.missLocal += miss * (1 - r.seg.RemoteFrac)
		if finished {
			r.segLeft = 0
			src.Complete(i, now)
		}
	}
	if budget > 0 {
		d.idleSec += budget
	}
}

// ensureWorkers spawns the persistent pool on first use: workers-1
// goroutines parked on wake channels, shard 0 always executed by the
// dispatching goroutine.
func (e *engine) ensureWorkers() {
	if e.spawned {
		return
	}
	e.spawned = true
	e.stopCh = make(chan struct{})
	e.bar.participants = int32(e.workers)
	e.wake = make([]chan struct{}, e.workers)
	for w := 1; w < e.workers; w++ {
		e.wake[w] = make(chan struct{}, 1)
		go e.workerLoop(w)
	}
}

func (e *engine) workerLoop(w int) {
	for {
		select {
		case <-e.stopCh:
			return
		case <-e.wake[w]:
		}
		e.runShard(w)
		e.wg.Done()
	}
}

// close releases the worker pool. Safe to call multiple times and from the
// runtime cleanup goroutine; a closed engine falls back to the serial path.
func (e *engine) close() {
	e.closeMu.Do(func() {
		e.closedFlag.Store(true)
		if e.spawned {
			close(e.stopCh)
		}
	})
}

func (e *engine) closed() bool { return e.closedFlag.Load() }

// closedFlag is separate from closeMu so run() can check it without
// synchronising against a concurrent runtime cleanup (which only fires once
// the Machine is unreachable, i.e. when no run() can be in flight).

// barrier is a sense-reversing spin barrier. The last participant to arrive
// runs the reduction while the others wait for the generation flip; the
// atomic flip publishes everything the reduction wrote.
type barrier struct {
	participants int32
	count        atomic.Int32
	gen          atomic.Uint32
}

func (b *barrier) await(reduce func()) {
	gen := b.gen.Load()
	if b.count.Add(1) == b.participants {
		b.count.Store(0)
		reduce()
		b.gen.Add(1)
		return
	}
	for b.gen.Load() == gen {
		runtime.Gosched()
	}
}
