package machine

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/workload"
)

// laneSource gives every core its own fixed segment list — scheduling is a
// pure function of the core index, so results cannot depend on the order in
// which cores are stepped. This is the determinism contract the engine
// preserves across worker counts.
type laneSource struct {
	mu    sync.Mutex
	lanes [][]workload.Segment
	pos   []int
}

func newLaneSource(cores, perCore int, seg workload.Segment) *laneSource {
	s := &laneSource{lanes: make([][]workload.Segment, cores), pos: make([]int, cores)}
	for c := range s.lanes {
		lane := make([]workload.Segment, perCore)
		for i := range lane {
			// Vary the mix per core and per segment so every core's power
			// and miss profile differs — a stricter determinism probe than
			// identical segments.
			v := seg
			v.Instructions *= 1 + 0.1*float64(c) + 0.01*float64(i)
			v.MissPerInstr *= 1 + 0.05*float64((c+i)%3)
			lane[i] = v
		}
		s.lanes[c] = lane
	}
	return s
}

func (s *laneSource) NextSegment(core int, now float64) (workload.Segment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pos[core] >= len(s.lanes[core]) {
		return workload.Segment{}, false
	}
	seg := s.lanes[core][s.pos[core]]
	s.pos[core]++
	return seg, true
}

func (s *laneSource) Complete(core int, now float64) {}

func (s *laneSource) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.pos {
		if s.pos[c] < len(s.lanes[c]) {
			return false
		}
	}
	return true
}

// engineRun executes a fixed workload with the given engine configuration
// and returns the exact totals.
func engineRun(t *testing.T, workers, batchQuanta int) (instr, joules, now float64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cores = 8
	cfg.Workers = workers
	cfg.BatchQuanta = batchQuanta
	m := MustNew(cfg)
	defer m.Close()
	// A daemon-like component taxing core 0 plus the Auto-style firmware
	// exercise the event queue and the per-quantum governor during the run.
	m.SetFirmware(pinFirmware{target: 24})
	m.Schedule(&Component{Period: 10e-3, Core: 0, Tick: func(float64) float64 { return 20e-6 }}, 10e-3)
	m.SetSource(newLaneSource(cfg.Cores, 40, workload.Segment{Instructions: 3e6, MissPerInstr: 0.02, IPC: 2}))
	m.Run(120)
	if !m.Finished() {
		t.Fatal("workload did not finish")
	}
	return m.TotalInstructions(), m.TotalEnergy(), m.Now()
}

// TestEngineDeterministicAcrossWorkers is the sharded-engine determinism
// contract: for a source whose scheduling is independent of cross-core call
// order, Workers=1 and Workers=N produce bit-identical totals.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	refInstr, refJoules, refNow := engineRun(t, 1, 0)
	if refInstr <= 0 || refJoules <= 0 {
		t.Fatalf("degenerate reference run: %g instr, %g J", refInstr, refJoules)
	}
	for _, workers := range []int{2, 4, 8} {
		instr, joules, now := engineRun(t, workers, 0)
		if instr != refInstr || joules != refJoules || now != refNow {
			t.Errorf("workers=%d diverged: instr %v vs %v, joules %v vs %v, now %v vs %v",
				workers, instr, refInstr, joules, refJoules, now, refNow)
		}
	}
}

// TestEngineDeterministicAcrossBatching: the run-to-next-event batching
// must not change physics — every quantum's arithmetic (and hence energy
// and the clock) is identical for any BatchQuanta. Lifetime instruction
// totals are accumulated per batch, so their float additions group
// differently across settings; they may differ by an ulp, no more.
func TestEngineDeterministicAcrossBatching(t *testing.T) {
	refInstr, refJoules, refNow := engineRun(t, 1, 1)
	check := func(label string, instr, joules, now float64) {
		t.Helper()
		if joules != refJoules || now != refNow {
			t.Errorf("%s diverged: joules %v vs %v, now %v vs %v", label, joules, refJoules, now, refNow)
		}
		if math.Abs(instr-refInstr) > 1e-9*refInstr {
			t.Errorf("%s instruction total %v vs %v beyond summation-order slack", label, instr, refInstr)
		}
	}
	for _, bq := range []int{0, 7, 40} {
		instr, joules, now := engineRun(t, 1, bq)
		check(fmt.Sprintf("batchQuanta=%d", bq), instr, joules, now)
	}
	// And batching composes with sharding.
	instr, joules, now := engineRun(t, 4, 16)
	check("workers=4/batch=16", instr, joules, now)
}

// TestStepMatchesRun: driving the machine by hand with Step must agree with
// the batched Run driver.
func TestStepMatchesRun(t *testing.T) {
	build := func() *Machine {
		cfg := DefaultConfig()
		cfg.Cores = 4
		m := MustNew(cfg)
		m.Schedule(&Component{Period: 5e-3, Core: 0, Tick: func(float64) float64 { return 10e-6 }}, 5e-3)
		m.SetSource(newLaneSource(cfg.Cores, 10, workload.Segment{Instructions: 2e6, MissPerInstr: 0.03, IPC: 2}))
		return m
	}
	a := build()
	for !a.Finished() {
		a.Step()
	}
	b := build()
	b.Run(120)
	// Step is a batch of one quantum, so instruction totals group their
	// additions differently from Run's batches — ulp slack only.
	if ai, bi := a.TotalInstructions(), b.TotalInstructions(); math.Abs(ai-bi) > 1e-9*ai {
		t.Errorf("instructions: step-driven %v vs run-driven %v", ai, bi)
	}
	if aj, bj := a.TotalEnergy(), b.TotalEnergy(); aj != bj {
		t.Errorf("energy: step-driven %v vs run-driven %v", aj, bj)
	}
	if an, bn := a.Now(), b.Now(); an != bn {
		t.Errorf("clock: step-driven %v vs run-driven %v", an, bn)
	}
}

// stealingSource hands out segments from a single shared pool, so parallel
// workers contend on NextSegment/Complete — the concurrency shape the
// engine must drive race-free (run under -race in CI).
type stealingSource struct {
	mu       sync.Mutex
	remain   int
	inFlight int
	seg      workload.Segment
}

func (s *stealingSource) NextSegment(core int, now float64) (workload.Segment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.remain == 0 {
		return workload.Segment{}, false
	}
	s.remain--
	s.inFlight++
	return s.seg, true
}

func (s *stealingSource) Complete(core int, now float64) {
	s.mu.Lock()
	s.inFlight--
	s.mu.Unlock()
}

func (s *stealingSource) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remain == 0 && s.inFlight == 0
}

// TestEngineParallelSharedSource exercises the sharded engine against a
// contended source and checks work conservation. Under -race this is the
// regression test for the snapshot/commit protocol and the quantum barrier.
func TestEngineParallelSharedSource(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 8
	cfg.Workers = 4
	m := MustNew(cfg)
	defer m.Close()
	const nSeg, perSeg = 96, 1e6
	src := &stealingSource{remain: nSeg, seg: workload.Segment{Instructions: perSeg, MissPerInstr: 0.01, IPC: 2}}
	m.SetSource(src)
	m.Schedule(&Component{Period: 20e-3, Tick: func(float64) float64 { return 0 }}, 20e-3)
	m.Run(60)
	if !m.Finished() {
		t.Fatal("shared-pool workload did not finish")
	}
	if got, want := m.TotalInstructions(), float64(nSeg)*perSeg; math.Abs(got-want) > 1 {
		t.Errorf("retired %.0f instructions, want %.0f", got, want)
	}
}

// TestEngineWorkerPoolReuse: repeated batches must reuse the persistent
// pool; this is a smoke test that dispatch survives many Run/Step cycles
// and that Close is idempotent.
func TestEngineWorkerPoolReuse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.Workers = 4
	m := MustNew(cfg)
	for round := 0; round < 5; round++ {
		src := newLaneSource(cfg.Cores, 4, workload.Segment{Instructions: 1e6, IPC: 2})
		m.SetSource(src)
		m.Run(30)
		if !src.Done() {
			t.Fatalf("round %d did not drain", round)
		}
	}
	m.Close()
	m.Close() // idempotent
	// After Close the machine still runs (serial fallback).
	src := newLaneSource(cfg.Cores, 2, workload.Segment{Instructions: 1e6, IPC: 2})
	m.SetSource(src)
	m.Run(30)
	if !src.Done() {
		t.Fatal("post-Close run did not drain")
	}
}

// TestUnscheduleStopsComponent: an unscheduled component never fires again
// and its deadline no longer bounds the batch size.
func TestUnscheduleStopsComponent(t *testing.T) {
	m := MustNew(smallConfig())
	var fires int
	c := &Component{Period: 10e-3, Tick: func(float64) float64 { fires++; return 0 }}
	m.Schedule(c, 10e-3)
	for m.Now() < 0.0501 {
		m.Step()
	}
	if fires != 5 {
		t.Fatalf("component fired %d times in 50 ms, want 5", fires)
	}
	if !m.Unschedule(c) {
		t.Fatal("Unschedule reported the component missing")
	}
	if m.Unschedule(c) {
		t.Error("second Unschedule should report false")
	}
	for m.Now() < 0.2 {
		m.Step()
	}
	if fires != 5 {
		t.Errorf("unscheduled component fired %d more times", fires-5)
	}
}

// TestUnscheduleInterleavedComponents: removing one of several components
// leaves the others firing on schedule (heap removal correctness).
func TestUnscheduleInterleavedComponents(t *testing.T) {
	m := MustNew(smallConfig())
	counts := make([]int, 3)
	comps := make([]*Component, 3)
	for i := range comps {
		i := i
		comps[i] = &Component{Period: float64(i+1) * 5e-3, Tick: func(float64) float64 { counts[i]++; return 0 }}
		m.Schedule(comps[i], comps[i].Period)
	}
	for m.Now() < 0.0301 {
		m.Step()
	}
	if !m.Unschedule(comps[0]) {
		t.Fatal("failed to unschedule")
	}
	before := counts[0]
	for m.Now() < 0.1201 {
		m.Step()
	}
	if counts[0] != before {
		t.Errorf("removed component kept firing (%d extra)", counts[0]-before)
	}
	// 10 ms component: fires at 10,20,...,120 ms → 12; 15 ms: at 15,...,120 → 8.
	if counts[1] != 12 || counts[2] != 8 {
		t.Errorf("remaining components fired %d/%d times, want 12/8", counts[1], counts[2])
	}
}
