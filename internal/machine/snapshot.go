package machine

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/freq"
	"repro/internal/msr"
	"repro/internal/power"
	"repro/internal/workload"
)

// BoundarySource is a workload source with countable execution boundaries
// (the work-sharing runtime's barrier-delimited regions). When the
// attached source implements it, the engine ends every batch at a
// boundary crossing — unconditionally, whether or not the run is being
// memoized. That matters because the engine deposits PMU totals once per
// batch and floating-point addition is not associative: if batch splits
// depended on memoization being enabled, a memoized and a plain run of
// the same spec would diverge in the last ulp. With boundary batching
// always on, the machine state at a region boundary is a well-defined
// point of the simulation that Snapshot can capture and Restore can
// resume from bit-identically.
type BoundarySource interface {
	workload.Source
	// BoundaryCount returns how many boundaries (completed regions) have
	// occurred; the engine stops the current batch when it changes.
	BoundaryCount() int
}

// CoreSnapshot is one core's complete mutable state.
type CoreSnapshot struct {
	Ratio    freq.Ratio
	Duty     float64
	Seg      workload.Segment
	SegLeft  float64
	HaveSeg  bool
	Stolen   float64
	BusySec  float64
	StallSec float64
	IdleSec  float64
}

// ComponentSnapshot records a scheduled component's identity (period and
// pinned core, which Restore validates against the live machine) and its
// next deadline (which Restore realigns).
type ComponentSnapshot struct {
	Period float64
	Core   int
	Next   float64
}

// Snapshot is the complete post-batch state of a Machine: everything the
// next quantum's arithmetic can observe. Restoring it into a freshly
// booted machine (with the same configuration, governor attachment and
// source position) makes the remainder of the run bit-identical to never
// having stopped — the property the prefix-resume cache (internal/memo)
// is built on.
type Snapshot struct {
	Now           float64
	DemandEWMA    float64
	UncoreMin     freq.Ratio
	UncoreMax     freq.Ratio
	UncoreRatio   freq.Ratio
	Cores         []CoreSnapshot
	TotalInstr    float64
	TotalMissL    float64
	TotalMissR    float64
	UncoreGHzSecs float64
	MSR           msr.Snapshot
	PMUInstr      []float64
	PMUTorLocal   float64
	PMUTorRemote  float64
	Rapl          power.RaplState
	Components    []ComponentSnapshot
}

// Snapshot captures the machine's complete mutable state. It must be
// called between batches (after Run or Step returns), which is the only
// time the state is not checked out into the engine.
func (m *Machine) Snapshot() *Snapshot {
	msrSnap := m.file.Snapshot()
	instr, torL, torR := m.pmu.State()
	raplState := m.rapl.State()
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &Snapshot{
		Now:           m.now,
		DemandEWMA:    m.demandEWMA,
		UncoreMin:     m.uncoreMin,
		UncoreMax:     m.uncoreMax,
		UncoreRatio:   m.uncoreRatio,
		Cores:         make([]CoreSnapshot, len(m.cores)),
		TotalInstr:    m.totalInstr,
		TotalMissL:    m.totalMissL,
		TotalMissR:    m.totalMissR,
		UncoreGHzSecs: m.uncoreGHzSecs,
		MSR:           msrSnap,
		PMUInstr:      instr,
		PMUTorLocal:   torL,
		PMUTorRemote:  torR,
		Rapl:          raplState,
		Components:    m.events.snapshotBySeq(),
	}
	for i := range m.cores {
		c := &m.cores[i]
		s.Cores[i] = CoreSnapshot{
			Ratio:    c.ratio,
			Duty:     c.duty,
			Seg:      c.seg,
			SegLeft:  c.segLeft,
			HaveSeg:  c.haveSeg,
			Stolen:   c.stolen,
			BusySec:  c.busySec,
			StallSec: c.stallSec,
			IdleSec:  c.idleSec,
		}
	}
	return s
}

// Restore overwrites the machine's mutable state from a snapshot. The
// machine must have the same configuration and the same set of scheduled
// components (same count, periods and pinned cores, in scheduling order)
// as the machine the snapshot was taken from — in practice: boot a fresh
// machine, attach the same governor, then Restore. MSR cells are restored
// raw (no handler side effects): the handlers' backing state — core
// ratios, duty, uncore range, PMU, RAPL — is restored directly, so
// re-actuating writes would be redundant at best.
func (m *Machine) Restore(s *Snapshot) error {
	if len(s.Cores) != m.cfg.Cores {
		return fmt.Errorf("machine: snapshot has %d cores, config has %d", len(s.Cores), m.cfg.Cores)
	}
	if len(s.PMUInstr) != m.cfg.Cores {
		return fmt.Errorf("machine: snapshot PMU has %d cores, config has %d", len(s.PMUInstr), m.cfg.Cores)
	}
	m.mu.Lock()
	comps := m.events.componentsBySeq()
	if len(comps) != len(s.Components) {
		m.mu.Unlock()
		return fmt.Errorf("machine: snapshot has %d components, machine has %d", len(s.Components), len(comps))
	}
	for i, c := range comps {
		cs := s.Components[i]
		if c.Period != cs.Period || c.Core != cs.Core {
			m.mu.Unlock()
			return fmt.Errorf("machine: component %d mismatch: snapshot (period %g, core %d) vs live (period %g, core %d)",
				i, cs.Period, cs.Core, c.Period, c.Core)
		}
	}
	for i, c := range comps {
		c.next = s.Components[i].Next
	}
	m.events.reinit()
	for i := range m.cores {
		cs := s.Cores[i]
		m.cores[i] = coreState{
			ratio:    cs.Ratio,
			duty:     cs.Duty,
			seg:      cs.Seg,
			segLeft:  cs.SegLeft,
			haveSeg:  cs.HaveSeg,
			stolen:   cs.Stolen,
			busySec:  cs.BusySec,
			stallSec: cs.StallSec,
			idleSec:  cs.IdleSec,
		}
	}
	m.uncoreMin, m.uncoreMax, m.uncoreRatio = s.UncoreMin, s.UncoreMax, s.UncoreRatio
	m.now = s.Now
	m.demandEWMA = s.DemandEWMA
	m.totalInstr = s.TotalInstr
	m.totalMissL = s.TotalMissL
	m.totalMissR = s.TotalMissR
	m.uncoreGHzSecs = s.UncoreGHzSecs
	m.mu.Unlock()
	if err := m.file.RestoreRaw(s.MSR); err != nil {
		return err
	}
	m.pmu.SetState(s.PMUInstr, s.PMUTorLocal, s.PMUTorRemote)
	m.rapl.SetState(s.Rapl)
	return nil
}

// snapshotMagic versions the canonical encoding; bump it on any layout
// change so stale disk snapshots decode as corrupt (= a cache miss)
// instead of as wrong state.
const snapshotMagic = "cfsnap1\n"

// Encode serializes the snapshot canonically: fixed field order, sorted
// MSR addresses, IEEE-754 bit patterns for floats, and a SHA-256 trailer
// over the payload. Two snapshots of identical machine state encode to
// identical bytes, and any bit flip in storage fails the checksum.
func (s *Snapshot) Encode() []byte {
	var w encBuf
	w.bytes([]byte(snapshotMagic))
	w.f64(s.Now)
	w.f64(s.DemandEWMA)
	w.u8(uint8(s.UncoreMin))
	w.u8(uint8(s.UncoreMax))
	w.u8(uint8(s.UncoreRatio))
	w.u32(uint32(len(s.Cores)))
	for i := range s.Cores {
		c := &s.Cores[i]
		w.u8(uint8(c.Ratio))
		w.f64(c.Duty)
		w.f64(c.Seg.Instructions)
		w.f64(c.Seg.MissPerInstr)
		w.f64(c.Seg.IPC)
		w.f64(c.Seg.RemoteFrac)
		w.f64(c.Seg.Exposure)
		w.f64(c.SegLeft)
		w.bool(c.HaveSeg)
		w.f64(c.Stolen)
		w.f64(c.BusySec)
		w.f64(c.StallSec)
		w.f64(c.IdleSec)
	}
	w.f64(s.TotalInstr)
	w.f64(s.TotalMissL)
	w.f64(s.TotalMissR)
	w.f64(s.UncoreGHzSecs)
	w.msrBank(s.MSR.Pkg)
	w.u32(uint32(len(s.MSR.PerCore)))
	for _, bank := range s.MSR.PerCore {
		w.msrBank(bank)
	}
	w.u32(uint32(len(s.PMUInstr)))
	for _, v := range s.PMUInstr {
		w.f64(v)
	}
	w.f64(s.PMUTorLocal)
	w.f64(s.PMUTorRemote)
	w.f64(s.Rapl.PendingJ)
	w.f64(s.Rapl.ResidualJ)
	w.u32(s.Rapl.Counter)
	w.f64(s.Rapl.LastPublish)
	w.f64(s.Rapl.TotalJ)
	w.u32(uint32(len(s.Components)))
	for _, c := range s.Components {
		w.f64(c.Period)
		w.i64(int64(c.Core))
		w.f64(c.Next)
	}
	sum := sha256.Sum256(w.b)
	return append(w.b, sum[:]...)
}

// DecodeSnapshot parses bytes produced by Encode, verifying the magic and
// the checksum. Any truncation, corruption or version mismatch returns an
// error — callers treat that as a cache miss.
func DecodeSnapshot(raw []byte) (*Snapshot, error) {
	if len(raw) < len(snapshotMagic)+sha256.Size {
		return nil, fmt.Errorf("machine: snapshot truncated (%d bytes)", len(raw))
	}
	payload, sum := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	if want := sha256.Sum256(payload); string(want[:]) != string(sum) {
		return nil, fmt.Errorf("machine: snapshot checksum mismatch")
	}
	if string(payload[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("machine: bad snapshot magic")
	}
	r := decBuf{b: payload[len(snapshotMagic):]}
	s := &Snapshot{}
	s.Now = r.f64()
	s.DemandEWMA = r.f64()
	s.UncoreMin = freq.Ratio(r.u8())
	s.UncoreMax = freq.Ratio(r.u8())
	s.UncoreRatio = freq.Ratio(r.u8())
	nCores := int(r.u32())
	if r.err == nil && nCores > maxSnapshotCores {
		return nil, fmt.Errorf("machine: snapshot claims %d cores", nCores)
	}
	if r.err == nil {
		s.Cores = make([]CoreSnapshot, nCores)
		for i := range s.Cores {
			c := &s.Cores[i]
			c.Ratio = freq.Ratio(r.u8())
			c.Duty = r.f64()
			c.Seg = workload.Segment{
				Instructions: r.f64(),
				MissPerInstr: r.f64(),
				IPC:          r.f64(),
				RemoteFrac:   r.f64(),
				Exposure:     r.f64(),
			}
			c.SegLeft = r.f64()
			c.HaveSeg = r.bool()
			c.Stolen = r.f64()
			c.BusySec = r.f64()
			c.StallSec = r.f64()
			c.IdleSec = r.f64()
		}
	}
	s.TotalInstr = r.f64()
	s.TotalMissL = r.f64()
	s.TotalMissR = r.f64()
	s.UncoreGHzSecs = r.f64()
	s.MSR.Pkg = r.msrBank()
	nBanks := int(r.u32())
	if r.err == nil && nBanks > maxSnapshotCores {
		return nil, fmt.Errorf("machine: snapshot claims %d MSR banks", nBanks)
	}
	if r.err == nil {
		s.MSR.PerCore = make([]map[uint32]uint64, nBanks)
		for i := range s.MSR.PerCore {
			s.MSR.PerCore[i] = r.msrBank()
		}
	}
	nPMU := int(r.u32())
	if r.err == nil && nPMU > maxSnapshotCores {
		return nil, fmt.Errorf("machine: snapshot claims %d PMU counters", nPMU)
	}
	if r.err == nil {
		s.PMUInstr = make([]float64, nPMU)
		for i := range s.PMUInstr {
			s.PMUInstr[i] = r.f64()
		}
	}
	s.PMUTorLocal = r.f64()
	s.PMUTorRemote = r.f64()
	s.Rapl.PendingJ = r.f64()
	s.Rapl.ResidualJ = r.f64()
	s.Rapl.Counter = r.u32()
	s.Rapl.LastPublish = r.f64()
	s.Rapl.TotalJ = r.f64()
	nComp := int(r.u32())
	if r.err == nil && nComp > maxSnapshotComponents {
		return nil, fmt.Errorf("machine: snapshot claims %d components", nComp)
	}
	if r.err == nil {
		s.Components = make([]ComponentSnapshot, nComp)
		for i := range s.Components {
			s.Components[i] = ComponentSnapshot{
				Period: r.f64(),
				Core:   int(r.i64()),
				Next:   r.f64(),
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("machine: %d trailing snapshot bytes", len(r.b))
	}
	return s, nil
}

// Sanity bounds for decoded lengths: generous multiples of anything a real
// configuration produces, so a corrupt length field can't drive a huge
// allocation (the checksum already catches random corruption; this guards
// the adversarial case).
const (
	maxSnapshotCores      = 1 << 16
	maxSnapshotComponents = 1 << 16
)

// encBuf is a minimal canonical binary writer (big-endian, IEEE-754 bits).
type encBuf struct{ b []byte }

func (w *encBuf) bytes(p []byte) { w.b = append(w.b, p...) }
func (w *encBuf) u8(v uint8)     { w.b = append(w.b, v) }
func (w *encBuf) u32(v uint32)   { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *encBuf) u64(v uint64)   { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *encBuf) i64(v int64)    { w.u64(uint64(v)) }
func (w *encBuf) f64(v float64)  { w.u64(math.Float64bits(v)) }
func (w *encBuf) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *encBuf) msrBank(bank map[uint32]uint64) {
	addrs := make([]uint32, 0, len(bank))
	for a := range bank {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.u32(uint32(len(addrs)))
	for _, a := range addrs {
		w.u32(a)
		w.u64(bank[a])
	}
}

// decBuf is the matching reader; the first short read latches err and
// zero-fills every subsequent read.
type decBuf struct {
	b   []byte
	err error
}

func (r *decBuf) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("machine: snapshot truncated mid-field")
		return nil
	}
	p := r.b[:n]
	r.b = r.b[n:]
	return p
}

func (r *decBuf) u8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *decBuf) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

func (r *decBuf) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

func (r *decBuf) i64() int64   { return int64(r.u64()) }
func (r *decBuf) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *decBuf) bool() bool   { return r.u8() != 0 }

func (r *decBuf) msrBank() map[uint32]uint64 {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n > 1<<20 {
		r.err = fmt.Errorf("machine: snapshot claims %d MSR cells", n)
		return nil
	}
	bank := make(map[uint32]uint64, n)
	for i := 0; i < n; i++ {
		a := r.u32()
		v := r.u64()
		if r.err != nil {
			return nil
		}
		bank[a] = v
	}
	return bank
}
