package machine

import (
	"math"
	"sync"
	"testing"

	"repro/internal/freq"
	"repro/internal/msr"
	"repro/internal/workload"
)

// poolSource hands out identical segments until a budget is exhausted.
type poolSource struct {
	mu      sync.Mutex
	seg     workload.Segment
	remain  int
	started int
}

func newPool(seg workload.Segment, n int) *poolSource {
	return &poolSource{seg: seg, remain: n}
}

func (p *poolSource) NextSegment(core int, now float64) (workload.Segment, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.remain == 0 {
		return workload.Segment{}, false
	}
	p.remain--
	p.started++
	return p.seg, true
}

func (p *poolSource) Complete(core int, now float64) {}

func (p *poolSource) Done() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.remain == 0
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Cores = 4
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Cores = 0
	if _, err := New(bad); err == nil {
		t.Error("zero cores must be rejected")
	}
	bad = DefaultConfig()
	bad.QuantumSec = -1
	if _, err := New(bad); err == nil {
		t.Error("negative quantum must be rejected")
	}
	bad = DefaultConfig()
	bad.TrafficAlpha = 2
	if _, err := New(bad); err == nil {
		t.Error("alpha > 1 must be rejected")
	}
}

func TestResetFrequencies(t *testing.T) {
	m := MustNew(smallConfig())
	if m.CoreRatio(0) != m.Config().CoreGrid.Max {
		t.Errorf("cores must boot at max ratio, got %v", m.CoreRatio(0))
	}
	if m.UncoreRatio() != m.Config().UncoreGrid.Max {
		t.Errorf("uncore must boot at max ratio, got %v", m.UncoreRatio())
	}
}

func TestPerfCtlActuatesDVFS(t *testing.T) {
	m := MustNew(smallConfig())
	if err := m.Device().Write(msr.IA32PerfCtl, 2, msr.PerfCtlRaw(15)); err != nil {
		t.Fatal(err)
	}
	if got := m.CoreRatio(2); got != 15 {
		t.Errorf("core 2 ratio = %v, want 1.5GHz", got)
	}
	if got := m.CoreRatio(0); got != m.Config().CoreGrid.Max {
		t.Errorf("core 0 must be unaffected, got %v", got)
	}
	// Status register reflects the operating point.
	v, err := m.Device().Read(msr.IA32PerfStatus, 2)
	if err != nil || msr.PerfCtlRatio(v) != 15 {
		t.Errorf("perf status = %d,%v want ratio 15", msr.PerfCtlRatio(v), err)
	}
}

func TestPerfCtlClampsToGrid(t *testing.T) {
	m := MustNew(smallConfig())
	m.Device().Write(msr.IA32PerfCtl, 0, msr.PerfCtlRaw(50))
	if got := m.CoreRatio(0); got != m.Config().CoreGrid.Max {
		t.Errorf("over-grid request should clamp to max, got %v", got)
	}
	m.Device().Write(msr.IA32PerfCtl, 0, msr.PerfCtlRaw(1))
	if got := m.CoreRatio(0); got != m.Config().CoreGrid.Min {
		t.Errorf("under-grid request should clamp to min, got %v", got)
	}
}

func TestUncoreLimitPinsUFS(t *testing.T) {
	m := MustNew(smallConfig())
	if err := m.Device().Write(msr.UncoreRatioLimit, 0, msr.UncoreLimitRaw(22, 22)); err != nil {
		t.Fatal(err)
	}
	if got := m.UncoreRatio(); got != 22 {
		t.Errorf("uncore = %v, want 2.2GHz", got)
	}
	// Rejects inverted ranges.
	if err := m.Device().Write(msr.UncoreRatioLimit, 0, msr.UncoreLimitRaw(25, 20)); err == nil {
		t.Error("min > max must be rejected")
	}
}

func TestIdleMachineBurnsIdlePower(t *testing.T) {
	m := MustNew(smallConfig())
	for i := 0; i < 200; i++ { // 100 ms
		m.Step()
	}
	e := m.TotalEnergy()
	if e <= 0 {
		t.Fatal("idle machine must still leak energy")
	}
	p := e / m.Now()
	if p > 60 {
		t.Errorf("idle power = %.1f W, implausibly high", p)
	}
	if m.TotalInstructions() != 0 {
		t.Error("idle machine retired instructions")
	}
}

func TestWorkConservation(t *testing.T) {
	// Every instruction handed out is eventually retired, exactly once.
	const perSeg = 1e6
	const nSeg = 64
	src := newPool(workload.Segment{Instructions: perSeg, MissPerInstr: 0.002, IPC: 2}, nSeg)
	m := MustNew(smallConfig())
	m.SetSource(src)
	m.Run(10)
	if !src.Done() {
		t.Fatal("source not drained in 10 simulated seconds")
	}
	got := m.TotalInstructions()
	want := float64(nSeg) * perSeg
	if math.Abs(got-want) > 1 {
		t.Errorf("retired %.0f instructions, want %.0f", got, want)
	}
	if got := m.PMU().RetiredAll(); math.Abs(float64(got)-want) > float64(nSeg) {
		t.Errorf("PMU retired %d, want ≈ %.0f", got, want)
	}
}

func TestTorSplitLocalRemote(t *testing.T) {
	src := newPool(workload.Segment{Instructions: 1e6, MissPerInstr: 0.05, IPC: 2, RemoteFrac: 0.25}, 8)
	m := MustNew(smallConfig())
	m.SetSource(src)
	m.Run(10)
	local, remote := m.TotalMisses()
	totalMiss := 8e6 * 0.05
	if math.Abs(local+remote-totalMiss) > 1 {
		t.Errorf("total misses = %.0f, want %.0f", local+remote, totalMiss)
	}
	if math.Abs(remote/(local+remote)-0.25) > 1e-6 {
		t.Errorf("remote fraction = %.3f, want 0.25", remote/(local+remote))
	}
}

func TestHigherCoreFrequencyIsFasterForCompute(t *testing.T) {
	run := func(ratio freq.Ratio) float64 {
		src := newPool(workload.Segment{Instructions: 5e6, IPC: 2}, 32)
		m := MustNew(smallConfig())
		for c := 0; c < m.Config().Cores; c++ {
			m.Device().Write(msr.IA32PerfCtl, c, msr.PerfCtlRaw(uint8(ratio)))
		}
		m.SetSource(src)
		return m.Run(30)
	}
	fast, slow := run(23), run(12)
	if fast >= slow {
		t.Errorf("2.3GHz run (%.3fs) not faster than 1.2GHz (%.3fs)", fast, slow)
	}
	// Compute-bound scaling should be close to the frequency ratio.
	if r := slow / fast; r < 1.7 || r > 2.1 {
		t.Errorf("speedup = %.2f, want ≈ 23/12 = 1.92", r)
	}
}

func TestMemoryBoundInsensitiveToCoreFrequency(t *testing.T) {
	run := func(ratio freq.Ratio) float64 {
		src := newPool(workload.Segment{Instructions: 5e6, MissPerInstr: 0.15, IPC: 2}, 32)
		m := MustNew(smallConfig())
		for c := 0; c < m.Config().Cores; c++ {
			m.Device().Write(msr.IA32PerfCtl, c, msr.PerfCtlRaw(uint8(ratio)))
		}
		m.SetSource(src)
		return m.Run(60)
	}
	fast, slow := run(23), run(12)
	if r := slow / fast; r > 1.45 {
		t.Errorf("memory-bound CF speedup = %.2f, should be far below 1.92", r)
	}
}

func TestUncoreFrequencyHelpsMemoryBound(t *testing.T) {
	run := func(uf freq.Ratio) float64 {
		src := newPool(workload.Segment{Instructions: 5e6, MissPerInstr: 0.15, IPC: 2}, 32)
		m := MustNew(smallConfig())
		m.Device().Write(msr.UncoreRatioLimit, 0, msr.UncoreLimitRaw(uint8(uf), uint8(uf)))
		m.SetSource(src)
		return m.Run(60)
	}
	if fast, slow := run(30), run(12); fast >= slow {
		t.Errorf("high UF (%.3fs) not faster than low UF (%.3fs) for memory-bound", fast, slow)
	}
}

func TestComponentTicksAtPeriod(t *testing.T) {
	m := MustNew(smallConfig())
	var fires []float64
	m.Schedule(&Component{
		Period: 20e-3,
		Tick:   func(now float64) float64 { fires = append(fires, now); return 0 },
	}, 20e-3)
	for m.Now() < 0.1001 {
		m.Step()
	}
	if len(fires) != 5 {
		t.Fatalf("component fired %d times in 100 ms at 20 ms period, want 5", len(fires))
	}
	for i, f := range fires {
		want := 0.02 * float64(i+1)
		if math.Abs(f-want) > 1e-9 {
			t.Errorf("fire %d at %g, want %g", i, f, want)
		}
	}
}

func TestDaemonTaxSlowsPinnedCore(t *testing.T) {
	run := func(tax float64) float64 {
		src := newPool(workload.Segment{Instructions: 5e6, IPC: 2}, 32)
		m := MustNew(smallConfig())
		m.Schedule(&Component{
			Period: 1e-3,
			Core:   0,
			Tick:   func(float64) float64 { return tax },
		}, 1e-3)
		m.SetSource(src)
		return m.Run(60)
	}
	// A daemon eating 20% of core 0 must slow the run measurably but far
	// less than 20% (work moves to other cores only via the source pool).
	none, taxed := run(0), run(0.2e-3)
	if taxed <= none {
		t.Errorf("taxed run (%.4fs) not slower than untaxed (%.4fs)", taxed, none)
	}
	if taxed > none*1.2 {
		t.Errorf("tax overhead %.1f%% too large", 100*(taxed/none-1))
	}
}

func TestParallelDriverMatchesSerialTotals(t *testing.T) {
	run := func(workers int) (float64, float64) {
		src := newPool(workload.Segment{Instructions: 2e6, MissPerInstr: 0.03, IPC: 2}, 64)
		cfg := smallConfig()
		cfg.Workers = workers
		m := MustNew(cfg)
		m.SetSource(src)
		elapsed := m.Run(60)
		return m.TotalInstructions(), elapsed
	}
	si, st := run(1)
	pi, pt := run(4)
	if math.Abs(si-pi) > 1 {
		t.Errorf("instruction totals differ: serial %.0f parallel %.0f", si, pi)
	}
	if math.Abs(st-pt)/st > 0.02 {
		t.Errorf("elapsed differs: serial %.4f parallel %.4f", st, pt)
	}
}

func TestRaplVisibleThroughMSR(t *testing.T) {
	src := newPool(workload.Segment{Instructions: 1e7, IPC: 2}, 16)
	m := MustNew(smallConfig())
	m.SetSource(src)
	m.Run(1)
	v, err := m.Device().Read(msr.PkgEnergyStatus, 0)
	if err != nil {
		t.Fatal(err)
	}
	unitRaw, _ := m.Device().Read(msr.RaplPowerUnit, 0)
	joules := float64(v) * msr.EnergyUnitJoules(unitRaw)
	if joules <= 0 {
		t.Fatal("RAPL MSR shows no energy")
	}
	if math.Abs(joules-m.TotalEnergy()) > 0.01*m.TotalEnergy() {
		t.Errorf("RAPL MSR %.3f J vs ground truth %.3f J", joules, m.TotalEnergy())
	}
}

func TestClockModulationThrottlesCompute(t *testing.T) {
	run := func(level uint8) float64 {
		src := newPool(workload.Segment{Instructions: 5e6, IPC: 2}, 32)
		m := MustNew(smallConfig())
		for c := 0; c < m.Config().Cores; c++ {
			if err := m.Device().Write(msr.IA32ClockModulation, c, msr.ClockModRaw(level)); err != nil {
				t.Fatal(err)
			}
		}
		m.SetSource(src)
		return m.Run(60)
	}
	full, half := run(0), run(4) // 100% vs 50% duty
	if r := half / full; r < 1.8 || r > 2.2 {
		t.Errorf("50%% duty slowdown = %.2fx, want ≈ 2x for compute-bound", r)
	}
}

func TestClockModulationKeepsLeakage(t *testing.T) {
	// DDCM's defining inefficiency: halving duty halves dynamic power but
	// leaves voltage and leakage untouched, so energy per instruction for
	// a compute-bound run must rise.
	run := func(level uint8) float64 {
		src := newPool(workload.Segment{Instructions: 5e6, IPC: 2}, 32)
		m := MustNew(smallConfig())
		for c := 0; c < m.Config().Cores; c++ {
			m.Device().Write(msr.IA32ClockModulation, c, msr.ClockModRaw(level))
		}
		m.SetSource(src)
		m.Run(60)
		return m.TotalEnergy() / m.TotalInstructions()
	}
	if full, half := run(0), run(4); half <= full {
		t.Errorf("DDCM energy/instruction %.3g should exceed unmodulated %.3g", half, full)
	}
}

type pinFirmware struct{ target freq.Ratio }

func (p pinFirmware) Target(_ float64, min, max freq.Ratio) freq.Ratio { return p.target }

func TestFirmwareControlsUncoreOnlyWithinRange(t *testing.T) {
	m := MustNew(smallConfig())
	m.SetFirmware(pinFirmware{target: 25})
	m.Step()
	if got := m.UncoreRatio(); got != 25 {
		t.Errorf("firmware target ignored: %v", got)
	}
	// Pinning 0x620 (min == max) locks the firmware out.
	m.Device().Write(msr.UncoreRatioLimit, 0, msr.UncoreLimitRaw(13, 13))
	m.Step()
	if got := m.UncoreRatio(); got != 13 {
		t.Errorf("pinned uncore moved by firmware: %v", got)
	}
}
