package machine

import (
	"bytes"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

// midRunMachine boots a machine on a work-sharing source and advances it
// partway through the program, so its snapshot carries non-trivial core,
// PMU, RAPL and uncore state.
func midRunMachine(t *testing.T) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cores = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	regions := []sched.Region{
		{Seg: workload.Segment{Instructions: 4e8, MissPerInstr: 1e-3, IPC: 1.5, RemoteFrac: 0.2, Exposure: 0.5}, Chunks: 8, JitterFrac: 0.1},
		{Seg: workload.Segment{Instructions: 2e8, MissPerInstr: 8e-3, IPC: 0.7, RemoteFrac: 0.4, Exposure: 0.9}, Chunks: 8, JitterFrac: 0.1},
	}
	m.SetSource(sched.NewWorkSharing(cfg.Cores, sched.StaticProgram(regions, 4), 1))
	m.Run(0.02) // deadline mid-program: state is live, not final
	if m.Finished() {
		t.Fatal("workload finished before the snapshot point; enlarge it")
	}
	return m
}

// TestSnapshotEncodeDecodeRoundTrip pins the canonical serialization:
// decode(encode(s)) re-encodes to the identical byte sequence.
func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	m := midRunMachine(t)
	raw := m.Snapshot().Encode()
	s, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if again := s.Encode(); !bytes.Equal(raw, again) {
		t.Errorf("decode/encode is not a fixed point: %d vs %d bytes", len(raw), len(again))
	}
}

// TestSnapshotRestoreReproducesState restores a mid-run snapshot into a
// freshly booted machine and requires the restored machine's own snapshot
// to be byte-identical — every field the future depends on survived.
func TestSnapshotRestoreReproducesState(t *testing.T) {
	m := midRunMachine(t)
	raw := m.Snapshot().Encode()
	s, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Cores = 4
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if err := m2.Restore(s); err != nil {
		t.Fatal(err)
	}
	if got := m2.Snapshot().Encode(); !bytes.Equal(raw, got) {
		t.Error("restored machine re-snapshots differently")
	}
	if m2.Now() != m.Now() {
		t.Errorf("restored Now = %g, want %g", m2.Now(), m.Now())
	}
}

// TestDecodeSnapshotRejectsCorruption flips single bytes and truncates
// the encoding at several points; the checksum trailer must catch every
// one rather than restoring silently wrong state.
func TestDecodeSnapshotRejectsCorruption(t *testing.T) {
	raw := midRunMachine(t).Snapshot().Encode()
	if _, err := DecodeSnapshot(raw); err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 10, len(raw) / 2, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[pos] ^= 0xff
		if _, err := DecodeSnapshot(bad); err == nil {
			t.Errorf("flip at byte %d decoded without error", pos)
		}
	}
	for _, n := range []int{0, 7, len(raw) / 3, len(raw) - 1} {
		if _, err := DecodeSnapshot(raw[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded without error", n)
		}
	}
}
