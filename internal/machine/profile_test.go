package machine

import (
	"testing"

	"repro/internal/workload"
)

// profiledRun executes a short workload with Profile on or off and returns
// the exact totals plus the profile.
func profiledRun(t *testing.T, workers int, profile bool) (instr, joules float64, p Profile) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cores = 8
	cfg.Workers = workers
	cfg.Profile = profile
	m := MustNew(cfg)
	defer m.Close()
	m.SetSource(newLaneSource(cfg.Cores, 10, workload.Segment{Instructions: 2e6, MissPerInstr: 0.02, IPC: 2}))
	m.Run(30)
	if !m.Finished() {
		t.Fatal("workload did not finish")
	}
	return m.TotalInstructions(), m.TotalEnergy(), m.Profile()
}

// TestProfileAccounting: with Profile on, the machine reports batch counts,
// quanta and per-worker busy time; busy time never exceeds total dispatch
// wall time.
func TestProfileAccounting(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, _, p := profiledRun(t, workers, true)
		if !p.Enabled {
			t.Fatalf("workers=%d: profile not enabled", workers)
		}
		if p.Batches <= 0 || p.Quanta <= 0 || p.RunWallNs <= 0 {
			t.Errorf("workers=%d: empty accounting %+v", workers, p)
		}
		want := workers
		if workers > 8 {
			want = 8
		}
		if len(p.WorkerBusyNs) != want {
			t.Fatalf("workers=%d: %d busy slots, want %d", workers, len(p.WorkerBusyNs), want)
		}
		for w, busy := range p.WorkerBusyNs {
			if busy <= 0 {
				t.Errorf("workers=%d: worker %d recorded no busy time", workers, w)
			}
			if busy > p.RunWallNs {
				t.Errorf("workers=%d: worker %d busy %d ns exceeds wall %d ns", workers, w, busy, p.RunWallNs)
			}
		}
	}
}

// TestProfileDoesNotPerturbResults is the determinism-boundary contract at
// the engine layer: profiling must leave simulated state bit-identical.
func TestProfileDoesNotPerturbResults(t *testing.T) {
	refInstr, refJoules, refP := profiledRun(t, 1, false)
	if refP.Enabled || refP.RunWallNs != 0 || refP.WorkerBusyNs != nil {
		t.Fatalf("profile off must report a zero Profile, got %+v", refP)
	}
	for _, workers := range []int{1, 4} {
		instr, joules, _ := profiledRun(t, workers, true)
		if instr != refInstr || joules != refJoules {
			t.Errorf("workers=%d profiled run diverged: instr %v vs %v, joules %v vs %v",
				workers, instr, refInstr, joules, refJoules)
		}
	}
}
