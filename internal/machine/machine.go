// Package machine is the discrete-time simulator of a multicore Intel-style
// socket: per-core DVFS, a socket-wide uncore frequency, an analytic
// memory-path model, a CMOS power model feeding an emulated RAPL counter,
// and a PMU exposing INST_RETIRED and TOR_INSERT through the MSR file.
//
// Software under test (the parallel runtimes and the Cuttlefish daemon)
// interacts with the machine only the way it would with real hardware:
// work is supplied as instruction/miss segments, frequencies are requested
// by writing IA32_PERF_CTL and MSR 0x620 through the msr-safe device, and
// the daemon reads the PMU and RAPL registers. This keeps the control path
// under study identical to the paper's.
//
// Execution is driven by an internal engine (engine.go): quanta run in
// batches between component deadlines on a snapshot/commit protocol, with
// an optional persistent worker pool sharding cores across host goroutines
// (Config.Workers) and a min-heap event queue ordering the components.
package machine

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/freq"
	"repro/internal/msr"
	"repro/internal/perfmon"
	"repro/internal/power"
	"repro/internal/timeline"
	"repro/internal/workload"
)

// coreState is one simulated core.
type coreState struct {
	ratio   freq.Ratio
	duty    float64 // DDCM duty fraction (1.0 = unmodulated)
	seg     workload.Segment
	segLeft float64 // instructions remaining in seg
	haveSeg bool
	stolen  float64 // seconds of the next quantum consumed by a daemon

	// lifetime accounting (simulation ground truth, not PMU-visible)
	busySec  float64
	stallSec float64
	idleSec  float64
}

// quantumDelta is the per-core result of executing one quantum, merged into
// machine state after all cores ran (keeping the parallel driver race-free).
type quantumDelta struct {
	instr      float64
	missLocal  float64
	missRemote float64
	computeSec float64
	stallSec   float64
	idleSec    float64
}

// Component is stepped at a fixed simulated period; the Cuttlefish daemon
// and trace recorders are components. Tick returns the CPU time the
// component consumed on its pinned core, which the machine steals from that
// core's next quantum (the paper's daemon time-shares core 0).
type Component struct {
	Period float64
	Core   int
	Tick   func(now float64) (cpuTax float64)

	next float64
	seq  uint64 // scheduling order, breaks deadline ties deterministically
	idx  int    // position in the event heap, -1 when unscheduled
}

// Machine is one simulated socket executing a workload source.
type Machine struct {
	cfg    Config
	file   *msr.File
	dev    *msr.Device
	pmu    *perfmon.PMU
	rapl   *power.Rapl
	engine *engine

	mu          sync.Mutex
	cores       []coreState
	uncoreMin   freq.Ratio // firmware floor from MSR 0x620
	uncoreMax   freq.Ratio // firmware ceiling from MSR 0x620
	uncoreRatio freq.Ratio // actual operating point
	firmware    UncoreFirmware
	now         float64
	demandEWMA  float64 // misses/second arriving at the uncore
	events      eventQueue
	src         workload.Source
	boundary    BoundarySource // src when it counts boundaries, else nil

	totalInstr    float64
	totalMissL    float64
	totalMissR    float64
	uncoreGHzSecs float64 // ∫ uncore frequency dt, for time-weighted averages

	// wall-clock self-accounting, populated only when cfg.Profile is set
	profWallNs int64
	profBatch  int64
	profQuanta int64

	dueBuf []*Component // reusable due-component buffer

	// timeline is the optional flight recorder. It is runtime wiring, not
	// configuration: it lives outside Config so snapshots, spec hashes and
	// memo keys never see it, and a nil recorder costs nothing.
	timeline *timeline.Recorder
}

// Profile is the engine's wall-clock self-accounting: how long batch
// dispatches took and how much of that each worker spent actually stepping
// cores (the remainder is barrier wait plus snapshot/commit — the
// parallelization overhead). All fields are zero unless Config.Profile.
type Profile struct {
	Enabled bool `json:"enabled"`
	// RunWallNs is total wall time inside batch dispatch (snapshot, step,
	// commit) since boot.
	RunWallNs int64 `json:"run_wall_ns"`
	// Batches and Quanta count engine dispatches and simulated quanta.
	Batches int64 `json:"batches"`
	Quanta  int64 `json:"quanta"`
	// WorkerBusyNs[w] is wall time worker w spent stepping its core shard;
	// RunWallNs - WorkerBusyNs[w] is that worker's idle (wait) time.
	WorkerBusyNs []int64 `json:"worker_busy_ns"`
}

// Profile returns the accumulated wall-clock accounting. Zero-valued (with
// Enabled false) unless the machine was built with Config.Profile.
func (m *Machine) Profile() Profile {
	if !m.cfg.Profile {
		return Profile{}
	}
	m.mu.Lock()
	p := Profile{
		Enabled:      true,
		RunWallNs:    m.profWallNs,
		Batches:      m.profBatch,
		Quanta:       m.profQuanta,
		WorkerBusyNs: append([]int64(nil), m.engine.profBusy...),
	}
	m.mu.Unlock()
	return p
}

// UncoreFirmware decides the uncore operating point each millisecond when
// MSR 0x620 leaves it a range to move in (the Default execution's "Auto"
// BIOS mode, §2). A nil firmware pins the uncore at the range maximum.
type UncoreFirmware interface {
	// Target returns the desired uncore ratio given the smoothed miss
	// demand (misses/second) and the legal range.
	Target(demand float64, min, max freq.Ratio) freq.Ratio
}

// New creates a machine. The source may be nil (all cores idle); it can be
// attached later with SetSource.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		file:  msr.NewFile(cfg.Cores),
		pmu:   perfmon.New(cfg.Cores),
		rapl:  power.NewHaswellRapl(),
		cores: make([]coreState, cfg.Cores),
	}
	m.dev = msr.NewDevice(m.file, msr.DefaultAllowlist())
	for i := range m.cores {
		m.cores[i].ratio = cfg.CoreGrid.Max
		m.cores[i].duty = 1.0
		// Seed the stored register image to the boot state so msr-safe
		// Save/Restore brackets capture real values.
		m.file.Poke(msr.IA32PerfCtl, i, msr.PerfCtlRaw(uint8(cfg.CoreGrid.Max)))
	}
	m.uncoreMin = cfg.UncoreGrid.Min
	m.uncoreMax = cfg.UncoreGrid.Max
	m.uncoreRatio = cfg.UncoreGrid.Max
	m.file.Poke(msr.UncoreRatioLimit, 0, msr.UncoreLimitRaw(uint8(cfg.UncoreGrid.Min), uint8(cfg.UncoreGrid.Max)))
	m.pmu.InstallHandlers(m.file)
	m.installFrequencyHandlers()
	m.installRaplHandler()
	m.engine = newEngine(cfg, m.pmu, m.rapl)
	if m.engine.workers > 1 {
		// Safety net for machines that are dropped without Close: release
		// the worker pool when the Machine becomes unreachable. The engine
		// deliberately holds no back-pointer to the Machine, so the workers
		// never keep it alive.
		runtime.AddCleanup(m, func(e *engine) { e.close() }, m.engine)
	}
	return m, nil
}

// MustNew is New for configurations known good at compile time.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Close releases the engine's persistent worker pool. It is idempotent and
// only needed for deterministic teardown of Workers > 1 machines; machines
// dropped without Close are cleaned up when garbage-collected.
func (m *Machine) Close() { m.engine.close() }

// SetSource attaches the workload. It must be called before Run. Sources
// implementing BoundarySource additionally get boundary batching: every
// batch ends at a region boundary, making those points snapshotable.
func (m *Machine) SetSource(s workload.Source) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.src = s
	m.boundary, _ = s.(BoundarySource)
}

func (m *Machine) installFrequencyHandlers() {
	m.file.Install(msr.IA32PerfCtl, msr.Handler{
		Write: func(core int, v uint64) error {
			r := m.cfg.CoreGrid.Clamp(freq.Ratio(msr.PerfCtlRatio(v)))
			m.mu.Lock()
			m.cores[core].ratio = r
			m.mu.Unlock()
			return nil
		},
	})
	m.file.Install(msr.IA32PerfStatus, msr.Handler{
		Read: func(core int) uint64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return msr.PerfCtlRaw(uint8(m.cores[core].ratio))
		},
	})
	m.file.Install(msr.IA32ClockModulation, msr.Handler{
		Write: func(core int, v uint64) error {
			m.mu.Lock()
			m.cores[core].duty = msr.ClockModDuty(v)
			m.mu.Unlock()
			return nil
		},
	})
	m.file.Install(msr.UncoreRatioLimit, msr.Handler{
		Write: func(_ int, v uint64) error {
			lo, hi := msr.UncoreLimitRatios(v)
			if lo > hi {
				return fmt.Errorf("machine: uncore limit min %d > max %d", lo, hi)
			}
			m.mu.Lock()
			m.uncoreMin = m.cfg.UncoreGrid.Clamp(freq.Ratio(lo))
			m.uncoreMax = m.cfg.UncoreGrid.Clamp(freq.Ratio(hi))
			// Snap the operating point into the new range immediately, as
			// hardware does; the firmware may move it within range later.
			if m.uncoreRatio < m.uncoreMin {
				m.uncoreRatio = m.uncoreMin
			}
			if m.uncoreRatio > m.uncoreMax {
				m.uncoreRatio = m.uncoreMax
			}
			m.mu.Unlock()
			return nil
		},
		Read: func(int) uint64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return msr.UncoreLimitRaw(uint8(m.uncoreMin), uint8(m.uncoreMax))
		},
	})
}

func (m *Machine) installRaplHandler() {
	m.file.Install(msr.PkgEnergyStatus, msr.Handler{
		Read: func(int) uint64 { return uint64(m.rapl.Counter()) },
	})
}

// SetFirmware installs the Auto-mode uncore governor used by Default runs.
func (m *Machine) SetFirmware(fw UncoreFirmware) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.firmware = fw
}

// Schedule registers a periodic component starting at time start.
func (m *Machine) Schedule(c *Component, start float64) {
	if c.Period <= 0 {
		panic("machine: component period must be positive")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c.next = start
	m.events.schedule(c)
}

// Unschedule removes a component from the machine so it never ticks again.
// It reports whether the component was scheduled. Stopping a daemon without
// unscheduling its component leaves a dead event firing every period.
func (m *Machine) Unschedule(c *Component) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events.unschedule(c)
}

// Device returns the msr-safe access path software should use.
func (m *Machine) Device() *msr.Device { return m.dev }

// File returns the raw register file (hardware-model use only).
func (m *Machine) File() *msr.File { return m.file }

// PMU returns the performance-monitoring unit.
func (m *Machine) PMU() *perfmon.PMU { return m.pmu }

// Rapl returns the package energy counter.
func (m *Machine) Rapl() *power.Rapl { return m.rapl }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Now returns the simulation time in seconds.
func (m *Machine) Now() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// UncoreRatio returns the current uncore operating point.
func (m *Machine) UncoreRatio() freq.Ratio {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.uncoreRatio
}

// CoreRatio returns core i's current frequency ratio.
func (m *Machine) CoreRatio(i int) freq.Ratio {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cores[i].ratio
}

// DemandEWMA returns the smoothed LLC-miss demand in misses/second.
func (m *Machine) DemandEWMA() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.demandEWMA
}

// TotalInstructions returns the exact count of retired instructions.
func (m *Machine) TotalInstructions() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalInstr
}

// TotalEnergy returns the exact package energy in joules.
func (m *Machine) TotalEnergy() float64 { return m.rapl.TotalJoules() }

// AvgUncoreGHz returns the time-weighted average uncore frequency since
// boot — what the paper's Table 2 reports as the Default execution's
// effective uncore setting.
func (m *Machine) AvgUncoreGHz() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.now == 0 {
		return m.uncoreRatio.GHz()
	}
	return m.uncoreGHzSecs / m.now
}

// TotalMisses returns the exact local and remote TOR insert counts.
func (m *Machine) TotalMisses() (local, remote float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalMissL, m.totalMissR
}

// Utilization returns the lifetime busy fraction of core i.
func (m *Machine) Utilization(i int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &m.cores[i]
	total := c.busySec + c.stallSec + c.idleSec
	if total == 0 {
		return 0
	}
	return (c.busySec + c.stallSec) / total
}

// SetTimeline attaches a flight recorder. Like SetSource it is runtime
// wiring: the recorder is invisible to snapshots and machine identity.
// A nil recorder disables recording.
func (m *Machine) SetTimeline(rec *timeline.Recorder) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.timeline = rec
}

// Timeline returns the attached flight recorder (nil when disabled).
// Governors fetch it at attach time to record their decision events.
func (m *Machine) Timeline() *timeline.Recorder {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.timeline
}

// RecordTimeline captures one machine sample into the attached recorder.
// Call it at quiescent cuts (between batches, no lock held) — the same
// points RunBoundaries fires its callback. A nil recorder makes this a
// no-op with no allocation.
func (m *Machine) RecordTimeline() {
	m.mu.Lock()
	rec := m.timeline
	if rec == nil {
		m.mu.Unlock()
		return
	}
	s := timeline.Sample{
		T:          m.now,
		Cores:      make([]int, len(m.cores)),
		Uncore:     int(m.uncoreRatio),
		Instr:      m.totalInstr,
		MissLocal:  m.totalMissL,
		MissRemote: m.totalMissR,
		DemandEWMA: m.demandEWMA,
	}
	for i := range m.cores {
		s.Cores[i] = int(m.cores[i].ratio)
		s.SumCoreGHz += m.cores[i].ratio.GHz()
	}
	b := m.boundary
	m.mu.Unlock()
	if b != nil {
		s.Boundary = b.BoundaryCount()
	}
	s.EnergyJ = m.rapl.TotalJoules()
	rec.AddSample(s)
}

// StealCoreTime removes sec seconds from core i's next quantum; used by
// daemon components to model time-sharing with the application.
func (m *Machine) StealCoreTime(i int, sec float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cores[i].stolen += sec
}

// Run advances the simulation until the source reports done and every core
// has drained its in-flight segment, or maxSim seconds have elapsed,
// whichever comes first. It returns the elapsed simulated time.
//
// Run executes quanta in batches: the event queue bounds each batch at the
// next component deadline, so the hot loop dispatches once per deadline
// window instead of once per quantum (Config.BatchQuanta caps the window).
func (m *Machine) Run(maxSim float64) float64 { return m.run(maxSim, nil) }

// RunBoundaries is Run with a region-boundary callback for sources that
// implement BoundarySource: every time the boundary count advances, fn is
// invoked (between batches, with no machine lock held and any due
// components already fired) with the new count — the exact state Snapshot
// can capture. Returning false stops further callbacks; the simulation
// itself continues. The callback never fires for the count observed at
// entry, so a resumed run does not re-snapshot its own restore point.
func (m *Machine) RunBoundaries(maxSim float64, fn func(regions int) bool) float64 {
	return m.run(maxSim, fn)
}

func (m *Machine) run(maxSim float64, fn func(int) bool) float64 {
	start := m.Now()
	deadline := start + maxSim
	dt := m.cfg.QuantumSec
	lastRegions := 0
	if fn != nil {
		if n, ok := m.boundaryCount(); ok {
			lastRegions = n
		} else {
			fn = nil
		}
	}
	for {
		if fn != nil {
			if n, _ := m.boundaryCount(); n != lastRegions {
				lastRegions = n
				if !fn(n) {
					fn = nil
				}
			}
		}
		if m.Finished() {
			break
		}
		now := m.Now()
		if now-start >= maxSim {
			break
		}
		k := quantaUntil(now, deadline, dt)
		if next, ok := m.nextEvent(); ok {
			if ke := quantaUntil(now, next-1e-12, dt); ke < k {
				k = ke
			}
		}
		if bq := m.cfg.BatchQuanta; bq > 0 && k > bq {
			k = bq
		}
		m.runBatch(k)
		m.fireDue()
	}
	return m.Now() - start
}

// quantaUntil returns how many quanta of length dt it takes to advance from
// now to at least target (minimum one — the driver always makes progress).
func quantaUntil(now, target, dt float64) int {
	k := math.Ceil((target - now) / dt)
	if k < 1 {
		return 1
	}
	if k > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(k)
}

// boundaryCount reads the attached BoundarySource's completed-region
// count; ok is false when the source counts no boundaries.
func (m *Machine) boundaryCount() (int, bool) {
	m.mu.Lock()
	b := m.boundary
	m.mu.Unlock()
	if b == nil {
		return 0, false
	}
	return b.BoundaryCount(), true
}

func (m *Machine) nextEvent() (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.events.peek()
}

// Finished reports whether the workload is complete: the source has no more
// work and no core holds a partially executed segment.
func (m *Machine) Finished() bool {
	m.mu.Lock()
	src := m.src
	for i := range m.cores {
		if m.cores[i].haveSeg {
			m.mu.Unlock()
			return false
		}
	}
	m.mu.Unlock()
	return src != nil && src.Done()
}

// Step advances one quantum: execute all cores, merge accounting into the
// PMU, integrate power into RAPL, step the firmware governor and fire due
// components.
func (m *Machine) Step() {
	m.runBatch(1)
	m.fireDue()
}

// runBatch snapshots machine state into the engine, executes up to quanta
// quanta lock-free, and commits the results. Between snapshot and commit no
// component or MSR handler runs, which is what makes the lock-free core
// stepping sound.
func (m *Machine) runBatch(quanta int) {
	e := m.engine
	var profT0 time.Time
	if m.cfg.Profile {
		profT0 = time.Now() //cfvet:allow(detsource) profiling wall-clock behind Config.Profile; profWallNs is excluded from reports, spec hashes and memo keys
	}
	m.mu.Lock()
	for i := range m.cores {
		c := &m.cores[i]
		duty := c.duty
		if duty <= 0 || duty > 1 {
			duty = 1
		}
		e.snaps[i] = coreSnap{hz: c.ratio.Hz(), ghz: c.ratio.GHz(), duty: duty, stolen: c.stolen}
		c.stolen = 0
		r := coreRun{seg: c.seg, segLeft: c.segLeft, haveSeg: c.haveSeg}
		if r.haveSeg {
			// Refresh the cached cost coefficients for a segment carried
			// across the batch boundary: DVFS or DDCM writes between
			// batches must take effect on its remaining instructions.
			ipc := r.seg.IPC
			if ipc <= 0 {
				ipc = m.cfg.BaseIPC
			}
			r.invCompute = 1 / (ipc * e.snaps[i].hz * duty)
			r.stallCoef = r.seg.MissPerInstr * r.seg.StallFraction()
		}
		e.runs[i] = r
		e.accum[i] = quantumDelta{}
	}
	e.src = m.src
	e.firmware = m.firmware
	e.boundary = m.boundary
	e.dt = m.cfg.QuantumSec
	e.now = m.now
	e.demandEWMA = m.demandEWMA
	e.uncore = m.uncoreRatio
	e.uncoreMin, e.uncoreMax = m.uncoreMin, m.uncoreMax
	e.stall = m.cfg.Mem.StallPerMiss(e.uncore.GHz(), e.demandEWMA)
	e.quanta = quanta
	e.quantum = 0
	e.batchOver = false
	e.totInstr, e.totMissL, e.totMissR, e.uncoreGHzSecs = 0, 0, 0, 0
	m.mu.Unlock()
	if e.boundary != nil {
		e.boundaryN = e.boundary.BoundaryCount()
	}

	e.run()

	// Drop the borrowed references immediately: a source or firmware that
	// points back at the Machine would otherwise make the Machine reachable
	// from the engine and defeat the runtime.AddCleanup safety net that
	// releases the worker pool.
	e.src = nil
	e.firmware = nil
	e.boundary = nil

	m.mu.Lock()
	for i := range m.cores {
		c := &m.cores[i]
		r := &e.runs[i]
		c.seg, c.segLeft, c.haveSeg = r.seg, r.segLeft, r.haveSeg
		a := &e.accum[i]
		c.busySec += a.computeSec
		c.stallSec += a.stallSec
		c.idleSec += a.idleSec
	}
	m.now = e.now
	m.demandEWMA = e.demandEWMA
	m.uncoreRatio = e.uncore
	m.totalInstr += e.totInstr
	m.totalMissL += e.totMissL
	m.totalMissR += e.totMissR
	m.uncoreGHzSecs += e.uncoreGHzSecs
	if m.cfg.Profile {
		m.profWallNs += time.Since(profT0).Nanoseconds() //cfvet:allow(detsource) profiling wall-clock behind Config.Profile; never feeds simulated state
		m.profBatch++
		m.profQuanta += int64(e.quantum)
	}
	m.mu.Unlock()

	// Counter hardware is only observed at batch boundaries (components and
	// software run between batches), so one deposit per batch is
	// observation-equivalent to the former per-quantum updates — and 40×
	// cheaper at the default Tinv.
	if e.totMissL > 0 || e.totMissR > 0 {
		m.pmu.AddTor(e.totMissL, e.totMissR)
	}
	if e.totInstr > 0 {
		for i := range e.accum {
			e.retired[i] = e.accum[i].instr
		}
		m.pmu.AddRetiredBatch(e.retired)
	}
}

// fireDue pops every component whose deadline has passed and ticks it. The
// machine mutex is not held across Tick: daemons write MSRs (whose handlers
// lock) and steal core time from inside their tick.
func (m *Machine) fireDue() {
	m.mu.Lock()
	now := m.now
	m.dueBuf = m.events.popDue(now, m.dueBuf[:0])
	due := m.dueBuf
	m.mu.Unlock()
	for _, c := range due {
		if tax := c.Tick(now); tax > 0 {
			m.StealCoreTime(c.Core, tax)
		}
	}
}
